package main_test

import (
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildDriver compiles simvet once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simvet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building simvet: %v\n%s", err, out)
	}
	return bin
}

func fixtureDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "analysis", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestDriverGatesOnViolations runs the built driver against the seeded
// fixture module: it must exit 1 and emit machine-readable findings.
func TestDriverGatesOnViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)

	cmd := exec.Command(bin, "-json", "compmig/internal/analysis/fixtures/...")
	cmd.Dir = fixtureDir(t)
	out, err := cmd.Output()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("want exit code 1 on fixture violations, got err=%v\n%s", err, out)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	seen := map[string]bool{}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("finding missing position or message: %+v", f)
		}
		seen[f.Analyzer] = true
	}
	for _, name := range []string{"nodeterminism", "maporder", "simpurity", "seededrand", "cyclecharge", "directive"} {
		if !seen[name] {
			t.Errorf("no %s finding over the fixture tree; analyzer dead?", name)
		}
	}
}

// TestDriverCleanTree runs the driver on the compliant fixture package
// and expects a zero exit.
func TestDriverCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)
	cmd := exec.Command(bin, "compmig/internal/analysis/fixtures/clean")
	cmd.Dir = fixtureDir(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("want clean exit on compliant package, got %v\n%s", err, out)
	}
}
