// Command simvet runs the simulator's determinism and simulation-purity
// analyzers (internal/analysis) over a set of packages, in the style of a
// go/analysis multichecker:
//
//	simvet [-json] [packages]
//
// With no package patterns it checks ./... . Exit status is 0 when the
// tree is clean, 1 when any analyzer reported findings, and 2 when the
// packages could not be loaded. -json emits findings as a JSON array for
// machine consumption (dashboards, CI annotations):
//
//	[{"analyzer":"maporder","file":"internal/x/y.go","line":12,"col":2,"message":"..."}]
//
// A finding is suppressed by a `//simvet:allow <reason>` comment on the
// same line or the line above; the reason is mandatory. See the
// "Determinism invariants and simvet" section of DESIGN.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compmig/internal/analysis"
)

type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simvet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analysis.Suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "simvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
		if len(diags) == 0 {
			fmt.Printf("simvet: %d package(s) clean\n", len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
