package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles kv once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "kv")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building kv: %v\n%s", err, out)
	}
	return bin
}

// smallLoad keeps driver runs to a fraction of a second.
var smallLoad = []string{"-workload", "keys=64,ops=300,period=150"}

// TestDriverExitCodes audits the exit-code contract: 0 = clean run,
// 1 = runtime failure (invariant violation, unwritable output), 2 = bad
// flags. Each row runs the built binary and checks both the code and a
// few output substrings.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)
	cases := []struct {
		name string
		args []string
		exit int
		want []string
	}{
		{"clean run", smallLoad, 0, []string{"scheme", "throughput", "invariants        ok"}},
		{"durable forced on", append([]string{"-durable"}, smallLoad...), 0,
			[]string{"durability        appends:", "invariants        ok"}},
		{"wipe recovery", append([]string{"-faults", "wipe=p2@20000+5000,ckpt=10000,seed=7"}, smallLoad...), 0,
			[]string{"durability        appends:", "crash recovery    wipes:1", "invariants        ok"}},
		{"bad workload", []string{"-workload", "nope"}, 2, []string{"kv:"}},
		{"bad hetero", []string{"-hetero", "nope"}, 2, []string{"kv:"}},
		{"bad scheme", []string{"-scheme", "xyz"}, 2, nil},
		{"om unsupported", []string{"-scheme", "om"}, 2, []string{"object migration"}},
		{"bad faults", []string{"-faults", "wipe=oops"}, 2, []string{"kv:"}},
		{"bad policy", []string{"-policy", "nope"}, 2, []string{"kv:"}},
		{"policy-stats without policy", []string{"-policy-stats", "x.json"}, 2, []string{"-policy"}},
		{"nonpositive store", []string{"-store", "0"}, 2, []string{"positive"}},
		{"unwritable policy-stats", append([]string{"-policy", "costmodel", "-policy-stats", "/nonexistent-dir/x.json"}, smallLoad...), 1,
			[]string{"writing policy stats"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			code := 0
			if err != nil {
				var exitErr *exec.ExitError
				if !errors.As(err, &exitErr) {
					t.Fatalf("running driver: %v\n%s", err, out)
				}
				code = exitErr.ExitCode()
			}
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\n%s", code, tc.exit, out)
			}
			for _, w := range tc.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q\n%s", w, out)
				}
			}
		})
	}
}
