// Command kv runs one open-loop distributed KV/session-store experiment
// and prints the measured row: throughput, tail latency, the mechanism
// decision mix, and the invariant verdict.
//
// The workload is open-loop (-workload, internal/load grammar): arrivals
// do not wait for completions, so a slow configuration accumulates
// queueing delay instead of throttling the offered load. The machine may
// be heterogeneous (-hetero, internal/cost grammar): the partitions live
// on the low-numbered processors, so bimodal slowness lands on the
// storage tier.
//
// Examples:
//
//	kv -workload keys=512,ops=4000,period=220,zipf=0.99,mix=70:25:5
//	kv -hetero gradient:1:4 -policy costmodel
//	kv -scheme sm -hetero bimodal:4:0.5 -faults drop=0.01,seed=7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compmig/internal/apps/kv"
	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/harness"
	"compmig/internal/load"
	"compmig/internal/policy"
)

func main() {
	workloadSpec := flag.String("workload", "", "open-loop workload, e.g. keys=512,ops=4000,period=220,zipf=0.99,mix=70:25:5,hot=0.25:60000,burst=3:40000:30000 (empty = defaults)")
	heteroSpec := flag.String("hetero", "", "processor speed profile: uniform, bimodal:FACTOR:FRAC, or gradient:MIN:MAX (empty = uniform)")
	schemeSpec := flag.String("scheme", "cm", "scheme: rpc|cm|sm (object migration is not supported by the store)")
	policySpec := flag.String("policy", "", "online mechanism selection: static:<rpc|cm|sm>, costmodel, or bandit[:eps]")
	policyStats := flag.String("policy-stats", "", "write the policy engine's live statistics as JSON to this file (requires -policy)")
	store := flag.Int("store", 8, "storage processors (= partitions)")
	front := flag.Int("front", 4, "frontend processors receiving arrivals")
	touches := flag.Int("touches", 3, "record accesses per point operation")
	access := flag.Uint64("access", 40, "user-code cycles per record access")
	frontWork := flag.Uint64("frontwork", 50, "frontend parse/dispatch cycles per request")
	faultsSpec := flag.String("faults", "", "fault plan, e.g. drop=0.01,delay=0:40,wipe=p2@60000+8000,ckpt=20000,seed=7 (empty = no faults)")
	durable := flag.Bool("durable", false, "force the per-processor WAL/checkpoint store on (wipe= windows switch it on automatically)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	if *store <= 0 || *front <= 0 || *touches <= 0 || *access == 0 {
		fmt.Fprintf(os.Stderr, "kv: -store, -front, -touches, and -access must be positive (got %d, %d, %d, %d)\n",
			*store, *front, *touches, *access)
		os.Exit(2)
	}
	spec, err := load.ParseSpec(*workloadSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kv:", err)
		os.Exit(2)
	}
	hetero, err := cost.ParseHetero(*heteroSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kv:", err)
		os.Exit(2)
	}
	scheme, err := harness.ParseScheme(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if scheme.Mechanism == core.ObjMigrate {
		fmt.Fprintln(os.Stderr, "kv: the store does not support object migration (-scheme om); use rpc, cm, or sm")
		os.Exit(2)
	}
	faults, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kv:", err)
		os.Exit(2)
	}
	if *policyStats != "" && *policySpec == "" {
		fmt.Fprintln(os.Stderr, "kv: -policy-stats requires -policy")
		os.Exit(2)
	}
	if *policySpec != "" {
		if err := policy.Validate(*policySpec); err != nil {
			fmt.Fprintln(os.Stderr, "kv:", err)
			os.Exit(2)
		}
	}

	r := kv.RunExperiment(kv.Config{
		StoreProcs: *store, FrontProcs: *front, Touches: *touches,
		AccessCycles: *access, FrontWork: *frontWork,
		Scheme: scheme, Policy: *policySpec,
		Load: spec, Hetero: hetero, Faults: faults,
		Durable: *durable, Seed: *seed,
	})
	if *policyStats != "" {
		data, err := json.MarshalIndent(r.PolicyStats, "", "  ")
		if err == nil {
			err = os.WriteFile(*policyStats, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "kv: writing policy stats:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("scheme            %s\n", r.Scheme)
	if r.Policy != "" {
		fmt.Printf("policy            %s (decisions rpc:%d cm:%d sm:%d om:%d)\n",
			r.Policy, r.Decisions[0], r.Decisions[1], r.Decisions[2], r.Decisions[3])
	}
	if spec.String() != "" {
		fmt.Printf("workload          %s\n", spec)
	}
	if hetero.Enabled() {
		fmt.Printf("hetero            %s\n", hetero)
	}
	fmt.Printf("operations        %d (get:%d put:%d scan:%d)\n", r.Ops, r.Gets, r.Puts, r.Scans)
	fmt.Printf("makespan          %d cycles\n", r.Makespan)
	fmt.Printf("throughput        %.3f requests/1000 cycles\n", r.Throughput)
	fmt.Printf("mean latency      %.0f cycles\n", r.MeanLatency)
	fmt.Printf("p50 latency       <= %d cycles\n", r.P50)
	fmt.Printf("p95 latency       <= %d cycles\n", r.P95)
	fmt.Printf("p99 latency       <= %d cycles\n", r.P99)
	fmt.Printf("words/op          %.1f\n", r.WordsPerOp)
	if r.HitRate > 0 {
		fmt.Printf("cache hit rate    %.1f%%\n", r.HitRate*100)
	}
	if r.Fault != nil {
		fmt.Printf("faults injected   drop:%d dup:%d crash:%d pause:%d\n",
			r.Fault.Dropped, r.Fault.Duplicated, r.Fault.CrashDropped, r.Fault.PauseDelayed)
		fmt.Printf("fault recovery    retransmits:%d timeouts:%d dup-suppressed:%d giveups:%d\n",
			r.Fault.Retransmits, r.Fault.Timeouts, r.Fault.DupSuppressed, r.Fault.GiveUps)
	}
	if r.Recovery != nil {
		fmt.Printf("durability        appends:%d fsyncs:%d checkpoints:%d ckpt-words:%d\n",
			r.Recovery.Appends, r.Recovery.Fsyncs, r.Recovery.Checkpoints, r.Recovery.CheckpointWords)
		fmt.Printf("crash recovery    wipes:%d restores:%d replays:%d rereg:%d cycles:%d\n",
			r.Recovery.Wipes, r.Recovery.Restores, r.Recovery.Replays, r.Recovery.Reregistered, r.Recovery.RecoveryCycles)
	}
	if r.InvariantErr != "" {
		fmt.Fprintln(os.Stderr, "kv: INVARIANT VIOLATED:", r.InvariantErr)
		os.Exit(1)
	}
	fmt.Printf("invariants        ok\n")
}
