package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles paperfigs once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "paperfigs")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building paperfigs: %v\n%s", err, out)
	}
	return bin
}

// TestDriverExitCodes audits the exit-code contract: 0 = experiment ran,
// 2 = bad flags. The one exit-0 row doubles as the CLI path through the
// recovery sweep: every point must hold its invariants or the renderer
// panics the run.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)
	cases := []struct {
		name string
		args []string
		exit int
		want []string
	}{
		{"recovery sweep", []string{"-exp", "ext-recovery", "-quick"}, 0,
			[]string{"EXT-RECOVERY", "wipes=2,ckpt=10k", "ok"}},
		{"unknown experiment", []string{"-exp", "nope"}, 2, []string{"nope"}},
		{"bad format", []string{"-format", "xml"}, 2, []string{"-format"}},
		{"bad faults", []string{"-faults", "wipe=oops"}, 2, []string{"paperfigs:"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			code := 0
			if err != nil {
				var exitErr *exec.ExitError
				if !errors.As(err, &exitErr) {
					t.Fatalf("running driver: %v\n%s", err, out)
				}
				code = exitErr.ExitCode()
			}
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\n%s", code, tc.exit, out)
			}
			for _, w := range tc.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q\n%s", w, out)
				}
			}
		})
	}
}
