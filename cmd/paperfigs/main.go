// Command paperfigs regenerates the tables and figures of the paper's
// evaluation section on the simulated machine.
//
// Usage:
//
//	paperfigs [-exp all|fig1|fig2|fig3|table1|table2|table3|table4|table5|smallnode] [-quick] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"compmig/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, fig2, fig3, table1..table5, smallnode, all")
	quick := flag.Bool("quick", false, "short measurement windows (smoke run)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	format := flag.String("format", "text", "output format: text or md")
	flag.Parse()

	tables, err := harness.Run(*exp, harness.Options{Quick: *quick, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "md":
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.String())
		}
	}
}
