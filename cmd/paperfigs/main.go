// Command paperfigs regenerates the tables and figures of the paper's
// evaluation section on the simulated machine.
//
// Usage:
//
//	paperfigs [-exp all|fig1|fig2|fig3|table1|table2|table3|table4|table5|smallnode|ext-objmig|ext-policy|ext-fault|ext-kv|ext-recovery|scale]
//	          [-quick] [-seed N] [-format text|md] [-workers N] [-shards N] [-bench-json out.json]
//	          [-faults SPEC] [-profile] [-cpuprofile out.pb] [-memprofile out.pb] [-fastpath=false]
//
// Independent simulation jobs run on a pool of -workers host goroutines
// (default: one per CPU); the rendered tables are byte-identical for any
// worker count. -bench-json runs each selected experiment at workers=1
// and at -workers, verifies the outputs match, and writes wall-clock +
// allocation + fast-path statistics to the given file.
//
// -shards N runs parallel-eligible simulations (the countnet CM/RPC
// points) on N sharded event engines synchronized by conservative
// lookahead; rendered tables are identical for any N >= 1 (and differ
// from the N=0 serial engine's). With -bench-json, a nonzero -shards
// switches the report to a shards=1 vs shards=N comparison — including
// per-shard window/null-message counters — instead of the worker sweep.
//
// -profile prints per-subsystem host-time counters (shared-memory fast
// and slow paths, network sends, event-heap pushes) to stderr after the
// run; -cpuprofile/-memprofile write standard pprof profiles. -fastpath
// =false forces every memory access through the event-driven protocol —
// the rendered tables must not change, only the host-side speed.
//
// -faults applies a deterministic fault plan (internal/fault grammar,
// e.g. drop=0.01,dup=0.005,delay=0:40,seed=7) to every config-driven
// experiment; the ext-fault experiment runs its own rate sweep and
// ignores the flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"compmig/internal/harness"
	"compmig/internal/mem"
	"compmig/internal/profile"
	"compmig/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1, fig2, fig3, table1..table5, smallnode, ext-objmig, ext-policy, ext-fault, ext-kv, ext-recovery, all")
	quick := flag.Bool("quick", false, "short measurement windows (smoke run)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	format := flag.String("format", "text", "output format: text or md")
	workers := flag.Int("workers", 0, "worker goroutines for independent simulation jobs (0 = one per CPU, 1 = serial)")
	shards := flag.Int("shards", 0, "sharded event engines per parallel-eligible simulation (0 = serial engine)")
	benchJSON := flag.String("bench-json", "", "write wall-clock + allocation stats per experiment to this JSON file")
	prof := flag.Bool("profile", false, "print per-subsystem host-time counters to stderr after the run")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile to this file")
	fastPath := flag.Bool("fastpath", true, "enable the shared-memory inline fast paths (disable for A/B checks)")
	faultsSpec := flag.String("faults", "", "fault plan applied to config-driven experiments, e.g. drop=0.01,dup=0.005,delay=0:40 (empty = no faults)")
	flag.Parse()

	if *format != "text" && *format != "md" {
		fmt.Fprintf(os.Stderr, "paperfigs: -format wants text or md, got %q\n", *format)
		os.Exit(2)
	}
	faults, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(2)
	}

	mem.SetFastPath(*fastPath)
	if *prof {
		profile.Enable(true)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
		if *prof {
			fmt.Fprint(os.Stderr, profile.Report(nil))
		}
	}()

	o := harness.Options{Quick: *quick, Seed: *seed, Workers: *workers, Faults: faults, Shards: *shards}

	if *benchJSON != "" {
		if err := runBench(*benchJSON, *exp, o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	tables, err := harness.Run(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "md":
			fmt.Print(t.Markdown())
		default:
			fmt.Print(t.String())
		}
	}
}

// benchEntry is one measured (experiment, workers) cell of the report.
// FastHits counts line accesses completed by the shared-memory inline
// fast paths (cache hits plus home-local misses); SlowMisses counts the
// accesses that went through the event-driven protocol.
type benchEntry struct {
	Experiment string  `json:"experiment"`
	Workers    int     `json:"workers"`
	Shards     int     `json:"shards"`
	WallMS     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`
	AllocBytes uint64  `json:"alloc_bytes"`
	FastHits   uint64  `json:"fast_hits"`
	SlowMisses uint64  `json:"slow_misses"`
	// Sharded-engine synchronization counters (zero on serial runs):
	// windows is the number of lookahead windows the clusters executed,
	// events the simulation events processed across lanes, nulls the
	// lane-windows that processed nothing (pure synchronization cost),
	// and cross the messages routed between lanes.
	ShardWindows uint64 `json:"shard_windows"`
	ShardEvents  uint64 `json:"shard_events"`
	ShardNulls   uint64 `json:"shard_nulls"`
	ShardCross   uint64 `json:"shard_cross"`
	// Durability-store counters (zero unless the experiment ran with the
	// WAL on — today only ext-recovery does): WAL records appended, bytes
	// written by checkpoint folds, records replayed during crash
	// recovery, and simulated cycles spent recovering.
	WalAppends      uint64 `json:"wal_appends"`
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	ReplayEvents    uint64 `json:"replay_events"`
	RecoveryCycles  uint64 `json:"recovery_cycles"`
	// Simulated per-request latency percentiles in cycles, merged across
	// every table the experiment rendered. Zero when the experiment does
	// not measure per-request latency (only ext-kv does today).
	LatencyP50 uint64 `json:"latency_p50,omitempty"`
	LatencyP95 uint64 `json:"latency_p95,omitempty"`
	LatencyP99 uint64 `json:"latency_p99,omitempty"`
	Tables     int    `json:"tables"`
}

type benchReport struct {
	Date        string       `json:"date"`
	GoMaxProcs  int          `json:"gomaxprocs"`
	GoVersion   string       `json:"go_version"`
	Quick       bool         `json:"quick"`
	Seed        uint64       `json:"seed"`
	Experiments []benchEntry `json:"experiments"`
}

// runBench measures each selected experiment at workers=1 and at the
// requested worker count, verifies the rendered tables are identical,
// and writes the report to path. With Options.Shards set, the
// comparison axis is the sharded engine instead: each experiment runs
// at shards=1 and at the requested shard count (same workers), again
// verified byte-identical.
func runBench(path, exp string, o harness.Options) error {
	ids := []string{exp}
	if exp == "all" {
		// One id per independent sweep (fig3 shares fig2's, table2/4
		// share table1/3's), plus the full suite.
		ids = []string{"fig1", "fig2", "table1", "table3", "table5", "smallnode", "ext-objmig", "ext-policy", "ext-fault", "all"}
	}
	base := harness.Options{Quick: o.Quick, Seed: o.Seed, Workers: o.Workers, Faults: o.Faults, Shards: o.Shards}
	variant := base
	axis := "workers"
	if o.Shards > 0 {
		// Shard counters come through the profile package; recording is
		// gated on profiling being enabled.
		profile.Enable(true)
		axis = "shards"
		base.Shards = 1
	} else {
		base.Workers = 1
	}

	report := benchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Quick:      o.Quick,
		Seed:       serialSeed(o.Seed),
	}
	for _, id := range ids {
		se, sOut, err := measure(id, base)
		if err != nil {
			return err
		}
		report.Experiments = append(report.Experiments, se)
		pe, pOut, err := measure(id, variant)
		if err != nil {
			return err
		}
		if pe.Workers != se.Workers || pe.Shards != se.Shards {
			report.Experiments = append(report.Experiments, pe)
		}
		if sOut != pOut {
			return fmt.Errorf("paperfigs: experiment %q rendered differently at %s=%d vs %s=%d",
				id, axis, pick(axis, se), axis, pick(axis, pe))
		}
		fmt.Fprintf(os.Stderr, "%-12s %s=%-2d %8.1f ms   %s=%-2d %8.1f ms\n",
			id, axis, pick(axis, se), se.WallMS, axis, pick(axis, pe), pe.WallMS)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func pick(axis string, e benchEntry) int {
	if axis == "shards" {
		return e.Shards
	}
	return e.Workers
}

func serialSeed(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// measure runs one experiment and samples wall clock, allocation, and
// fast-path counter deltas around it. The mem systems flush their
// fast/slow access counts into the profile package on Release, which
// every experiment defers, so snapshotting the profile counters brackets
// the run exactly.
func measure(id string, o harness.Options) (benchEntry, string, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	pBefore := profile.Snapshot()
	shBefore := profile.ShardSnapshot()
	start := time.Now()
	tables, err := harness.Run(id, o)
	wall := time.Since(start)
	pAfter := profile.Snapshot()
	shAfter := profile.ShardSnapshot()
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchEntry{}, "", err
	}
	var fastHits, slowMisses uint64
	var walAppends, ckptBytes, replays, recCycles uint64
	for i, s := range pAfter {
		d := s.Count - pBefore[i].Count
		switch s.Name {
		case "mem.fast_hits", "mem.fast_local":
			fastHits += d
		case "mem.slow":
			slowMisses += d
		case "store.wal_appends":
			walAppends += d
		case "store.checkpoint_bytes":
			ckptBytes += d
		case "store.replay_events":
			replays += d
		case "store.recovery_cycles":
			recCycles += d
		}
	}
	var b strings.Builder
	lat := &stats.Histogram{}
	for _, t := range tables {
		b.WriteString(t.String())
		if t.Latency != nil {
			lat.AddFrom(t.Latency)
		}
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return benchEntry{
		Experiment:      id,
		Workers:         workers,
		Shards:          o.Shards,
		WallMS:          float64(wall.Microseconds()) / 1000,
		Allocs:          after.Mallocs - before.Mallocs,
		AllocBytes:      after.TotalAlloc - before.TotalAlloc,
		FastHits:        fastHits,
		SlowMisses:      slowMisses,
		ShardWindows:    shAfter.Windows - shBefore.Windows,
		ShardEvents:     sumDelta(shAfter.Events, shBefore.Events),
		ShardNulls:      sumDelta(shAfter.Nulls, shBefore.Nulls),
		ShardCross:      sumDelta(shAfter.Cross, shBefore.Cross),
		WalAppends:      walAppends,
		CheckpointBytes: ckptBytes,
		ReplayEvents:    replays,
		RecoveryCycles:  recCycles,
		LatencyP50:      lat.Quantile(0.50),
		LatencyP95:      lat.Quantile(0.95),
		LatencyP99:      lat.Quantile(0.99),
		Tables:          len(tables),
	}, b.String(), nil
}

// sumDelta sums the growth of per-lane counters between two snapshots
// (the after snapshot may have widened to more lanes).
func sumDelta(after, before []uint64) uint64 {
	var d uint64
	for i, v := range after {
		d += v
		if i < len(before) {
			d -= before[i]
		}
	}
	return d
}
