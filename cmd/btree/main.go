// Command btree runs one distributed B-tree experiment (the paper's
// second application) and prints the measured row.
//
// Example:
//
//	btree -threads 16 -think 0 -scheme cm+repl+hw -fanout 100
//	btree -threads 16 -policy costmodel -policy-stats stats.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compmig/internal/apps/btree"
	"compmig/internal/harness"
	"compmig/internal/policy"
	"compmig/internal/sim"
)

func main() {
	fanout := flag.Int("fanout", 100, "maximum keys per node")
	keys := flag.Int("keys", 10000, "initial keys")
	procs := flag.Int("nodeprocs", 48, "processors holding tree nodes")
	threads := flag.Int("threads", 16, "requesting threads, one per processor")
	think := flag.Uint64("think", 0, "cycles between requests")
	lookup := flag.Float64("lookups", 0.5, "fraction of operations that are lookups")
	schemeSpec := flag.String("scheme", "cm", "scheme: rpc|cm|sm|om with +hw/+repl (e.g. cm+repl+hw)")
	policySpec := flag.String("policy", "", "online mechanism selection: static:<rpc|cm|sm|om>, costmodel, or bandit[:eps]")
	policyStats := flag.String("policy-stats", "", "write the policy engine's live statistics as JSON to this file (requires -policy)")
	faultsSpec := flag.String("faults", "", "fault plan, e.g. drop=0.01,delay=0:40,crash=p3@50000+20000,wipe=p2@60000+8000,ckpt=20000,seed=7 (empty = no faults)")
	durable := flag.Bool("durable", false, "force the per-processor WAL/checkpoint store on (wipe= windows switch it on automatically)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	warmup := flag.Uint64("warmup", 20000, "warmup cycles before measuring")
	measure := flag.Uint64("measure", 200000, "measurement window in cycles")
	trace := flag.Int("trace", 0, "dump the last N simulation events to stderr")
	shards := flag.Int("shards", 0, "accepted for parity with countnet; the B-tree always runs on the serial engine")
	flag.Parse()

	if *shards > 1 {
		fmt.Fprintf(os.Stderr, "btree: -shards %d ignored: every B-tree operation descends through the shared root, so the tree cannot be partitioned into independent lanes; running on the serial engine\n", *shards)
	}
	if *fanout <= 0 || *keys <= 0 || *procs <= 0 || *threads <= 0 {
		fmt.Fprintf(os.Stderr, "btree: -fanout, -keys, -nodeprocs, and -threads must be positive (got %d, %d, %d, %d)\n",
			*fanout, *keys, *procs, *threads)
		os.Exit(2)
	}
	if *lookup < 0 || *lookup > 1 {
		fmt.Fprintf(os.Stderr, "btree: -lookups wants a fraction in [0,1], got %g\n", *lookup)
		os.Exit(2)
	}
	scheme, err := harness.ParseScheme(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "btree:", err)
		os.Exit(2)
	}
	if *policyStats != "" && *policySpec == "" {
		fmt.Fprintln(os.Stderr, "btree: -policy-stats requires -policy")
		os.Exit(2)
	}
	if *policySpec != "" {
		if err := policy.Validate(*policySpec); err != nil {
			fmt.Fprintln(os.Stderr, "btree:", err)
			os.Exit(2)
		}
	}
	p := btree.DefaultParams()
	p.Fanout = *fanout
	p.NodeProcs = *procs
	r := btree.RunExperiment(btree.Config{
		Params: p, InitialKeys: *keys, Threads: *threads, Think: *think,
		LookupFrac: *lookup, Scheme: scheme, Seed: *seed,
		Warmup: sim.Time(*warmup), Measure: sim.Time(*measure),
		TraceCap: *trace, Policy: *policySpec, Faults: faults,
		Durable: *durable, Shards: *shards,
	})
	if *policyStats != "" {
		data, err := json.MarshalIndent(r.PolicyStats, "", "  ")
		if err == nil {
			err = os.WriteFile(*policyStats, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "btree: writing policy stats:", err)
			os.Exit(1)
		}
	}
	if r.Trace != nil {
		if err := r.Trace.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	fmt.Printf("scheme            %s\n", r.Scheme)
	if r.Policy != "" {
		fmt.Printf("policy            %s (decisions rpc:%d cm:%d sm:%d om:%d)\n",
			r.Policy, r.Decisions[0], r.Decisions[1], r.Decisions[2], r.Decisions[3])
	}
	fmt.Printf("think time        %d cycles\n", r.Think)
	fmt.Printf("throughput        %.3f ops/1000 cycles\n", r.Throughput)
	fmt.Printf("bandwidth         %.3f words/10 cycles\n", r.Bandwidth)
	fmt.Printf("operations        %d\n", r.Ops)
	fmt.Printf("mean latency      %.0f cycles\n", r.MeanLatency)
	fmt.Printf("p95 latency       <= %d cycles\n", r.P95Latency)
	fmt.Printf("root proc util    %.1f%%\n", r.RootUtilization*100)
	fmt.Printf("words/op          %.1f\n", r.WordsPerOp)
	fmt.Printf("tree height       %d\n", r.Height)
	fmt.Printf("root children     %d\n", r.RootChildren)
	if r.HitRate > 0 {
		fmt.Printf("cache hit rate    %.1f%%\n", r.HitRate*100)
	}
	if r.Fault != nil {
		fmt.Printf("faults injected   drop:%d dup:%d crash:%d pause:%d\n",
			r.Fault.Dropped, r.Fault.Duplicated, r.Fault.CrashDropped, r.Fault.PauseDelayed)
		fmt.Printf("fault recovery    retransmits:%d timeouts:%d dup-suppressed:%d giveups:%d\n",
			r.Fault.Retransmits, r.Fault.Timeouts, r.Fault.DupSuppressed, r.Fault.GiveUps)
	}
	if r.Recovery != nil {
		fmt.Printf("durability        appends:%d fsyncs:%d checkpoints:%d ckpt-words:%d\n",
			r.Recovery.Appends, r.Recovery.Fsyncs, r.Recovery.Checkpoints, r.Recovery.CheckpointWords)
		fmt.Printf("crash recovery    wipes:%d restores:%d replays:%d rereg:%d cycles:%d\n",
			r.Recovery.Wipes, r.Recovery.Restores, r.Recovery.Replays, r.Recovery.Reregistered, r.Recovery.RecoveryCycles)
	}
	if r.Fault != nil || r.Recovery != nil {
		if r.InvariantErr != "" {
			fmt.Fprintln(os.Stderr, "btree: INVARIANT VIOLATED:", r.InvariantErr)
			os.Exit(1)
		}
		fmt.Printf("invariants        ok\n")
	}
}
