package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles btree once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "btree")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building btree: %v\n%s", err, out)
	}
	return bin
}

// smallRun keeps driver runs to a fraction of a second.
var smallRun = []string{"-keys", "1000", "-threads", "4", "-warmup", "5000", "-measure", "40000"}

// TestDriverExitCodes audits the exit-code contract: 0 = clean run,
// 1 = runtime failure (invariant violation, unwritable output), 2 = bad
// flags. Each row runs the built binary and checks both the code and a
// few output substrings.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)
	cases := []struct {
		name string
		args []string
		exit int
		want []string
	}{
		{"clean run", smallRun, 0, []string{"scheme", "throughput", "tree height"}},
		{"durable forced on", append([]string{"-durable"}, smallRun...), 0,
			[]string{"durability        appends:", "invariants        ok"}},
		{"wipe recovery", append([]string{"-faults", "wipe=p2@20000+5000,ckpt=10000,seed=7"}, smallRun...), 0,
			[]string{"durability        appends:", "crash recovery    wipes:1", "invariants        ok"}},
		{"bad lookups fraction", []string{"-lookups", "1.5"}, 2, []string{"fraction"}},
		{"nonpositive fanout", []string{"-fanout", "0"}, 2, []string{"positive"}},
		{"bad scheme", []string{"-scheme", "xyz"}, 2, nil},
		{"bad faults", []string{"-faults", "ckpt=oops"}, 2, []string{"btree:"}},
		{"bad policy", []string{"-policy", "nope"}, 2, []string{"btree:"}},
		{"policy-stats without policy", []string{"-policy-stats", "x.json"}, 2, []string{"-policy"}},
		{"unwritable policy-stats", append([]string{"-policy", "costmodel", "-policy-stats", "/nonexistent-dir/x.json"}, smallRun...), 1,
			[]string{"writing policy stats"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			code := 0
			if err != nil {
				var exitErr *exec.ExitError
				if !errors.As(err, &exitErr) {
					t.Fatalf("running driver: %v\n%s", err, out)
				}
				code = exitErr.ExitCode()
			}
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\n%s", code, tc.exit, out)
			}
			for _, w := range tc.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q\n%s", w, out)
				}
			}
		})
	}
}
