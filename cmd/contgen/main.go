// Command contgen generates the word-level wire stubs
// (MarshalWords/UnmarshalWords) for struct types annotated with
// //compmig:record — the role the Prelude compiler plays in §3 of the
// paper. Point it at a source file; it writes a *_gen.go companion.
//
// Usage:
//
//	contgen -in internal/apps/btree/ops_cm.go
//	contgen -in file.go -out custom_name.go
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"compmig/internal/contgen"
)

func main() {
	in := flag.String("in", "", "annotated Go source file")
	out := flag.String("out", "", "output file (default: <in>_gen.go)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "contgen: -in is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contgen:", err)
		os.Exit(1)
	}
	gen, err := contgen.Generate(*in, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contgen:", err)
		os.Exit(1)
	}
	if gen == nil {
		fmt.Fprintf(os.Stderr, "contgen: no //compmig:record types in %s\n", *in)
		os.Exit(1)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(*in, ".go") + "_gen.go"
	}
	if err := os.WriteFile(dst, gen, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "contgen:", err)
		os.Exit(1)
	}
	fmt.Printf("contgen: wrote %s\n", dst)
}
