// Command advise runs the §6-style mechanism advisor: given a call
// site's profile (consecutive accesses per object, record sizes), it
// predicts the cost of each remote-access mechanism — RPC, computation
// migration (CM), and cache-coherent shared memory (SM) — under a chosen
// machine model and prints the recommendation and the crossover run
// length. (Emerald-style object migration has no offline estimator; run
// it with -scheme om in the app CLIs to measure it.)
//
// Profiles come from flags, or from a live-statistics JSON file dumped
// by a policy run (-policy-stats in cmd/countnet and cmd/btree), so the
// offline predictions can be cross-checked against what the online
// policy engine actually decided:
//
//	advise -from-stats stats.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compmig/internal/advisor"
	"compmig/internal/cost"
	"compmig/internal/mem"
	"compmig/internal/policy"
)

func main() {
	n := flag.Float64("n", 1, "mean consecutive accesses per object visit")
	m := flag.Float64("m", 1, "objects visited in sequence (amortizes the return)")
	argW := flag.Uint64("args", 2, "argument record size, 32-bit words")
	repW := flag.Uint64("reply", 2, "reply record size, words")
	contW := flag.Uint64("cont", 8, "continuation record size (live variables), words")
	short := flag.Bool("short", false, "the access is a short method under RPC")
	hw := flag.Bool("hw", false, "use the hardware-support cost model")
	fromStats := flag.String("from-stats", "", "read per-site live profiles from a policy-stats JSON file instead of flags")
	flag.Parse()

	model := cost.Software()
	label := "software"
	if *hw {
		model = cost.Hardware()
		label = "hardware-assisted"
	}
	a := advisor.New(model)

	if *fromStats != "" {
		if err := adviseFromStats(a, model, label, *fromStats); err != nil {
			fmt.Fprintln(os.Stderr, "advise:", err)
			os.Exit(1)
		}
		return
	}

	p := advisor.SiteProfile{
		AccessesPerVisit: *n, ArgWords: *argW, ReplyWords: *repW,
		ContWords: *contW, ShortMethod: *short, ChainLength: *m,
	}
	fmt.Printf("model:            %s (Table 5 costs)\n", label)
	fmt.Printf("profile:          n=%.1f accesses/visit, m=%.0f objects, cont=%dw, args=%dw, reply=%dw\n",
		p.AccessesPerVisit, p.ChainLength, p.ContWords, p.ArgWords, p.ReplyWords)
	fmt.Printf("estimated cost:   RPC %.0f cycles, migration %.0f cycles per visit\n",
		a.EstimateRPC(p), a.EstimateMigrate(p))
	fmt.Printf("recommendation:   %v\n", a.Choose(p))
	if x := a.CrossoverAccesses(p, 10000); x > 0 {
		fmt.Printf("crossover:        migration wins from %.0f accesses/visit\n", x)
	} else {
		fmt.Println("crossover:        migration never wins for this profile")
		os.Exit(0)
	}
}

// formatByMech renders a per-mechanism map in the fixed mechanism order
// rather than Go's random map order.
func formatByMech[V any](m map[string]V, format func(V) string) string {
	var b []byte
	for _, k := range []string{"RPC", "CM", "SM", "OM"} {
		v, ok := m[k]
		if !ok {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, k...)
		b = append(b, ':')
		b = append(b, format(v)...)
	}
	if len(b) == 0 {
		return fmt.Sprint(m) // unknown keys: fall back to map formatting
	}
	return string(b)
}

// adviseFromStats re-runs the advisor math offline over every call
// site's live profile from a policy-stats dump, alongside the policy's
// own online decisions and the shared-memory estimate at the dump's
// sampled pressure.
func adviseFromStats(a *advisor.Advisor, model cost.Model, label, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st policy.Stats
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(st.Sites) == 0 {
		return fmt.Errorf("%s: no sites in stats dump", path)
	}
	fmt.Printf("model:            %s (Table 5 costs)\n", label)
	fmt.Printf("online policy:    %s (sampled sm miss rate %.2f, inval rate %.2f)\n",
		st.Policy, st.MissRate, st.InvalRate)
	mp := mem.DefaultParams()
	for _, s := range st.Sites {
		p := advisor.SiteProfile{
			AccessesPerVisit: s.AccessesPerVisit,
			ArgWords:         s.ArgWords, ReplyWords: s.ReplyWords,
			ContWords: s.ContWords, ShortMethod: s.ShortMethod,
			ChainLength: s.ChainLength,
		}
		chain := p.ChainLength
		if chain < 1 {
			chain = 1
		}
		sm := policy.EstimateSM(model, mp, p, st.MissRate, st.InvalRate)
		fmt.Printf("\nsite %s (%d ops observed):\n", s.Name, s.Ops)
		fmt.Printf("  live profile:   n=%.2f accesses/visit, m=%.2f objects, cont=%dw, args=%dw, reply=%dw\n",
			p.AccessesPerVisit, p.ChainLength, p.ContWords, p.ArgWords, p.ReplyWords)
		fmt.Printf("  per operation:  RPC %.0f, CM %.0f, SM %.0f cycles\n",
			a.EstimateRPC(p)*chain, a.EstimateMigrate(p)*chain, sm*chain)
		fmt.Printf("  offline choice: %v\n", a.Choose(p))
		if len(s.Decisions) > 0 {
			fmt.Printf("  online choices: %s\n", formatByMech(s.Decisions, func(v uint64) string {
				return fmt.Sprintf("%d", v)
			}))
		}
		if len(s.MeanCycles) > 0 {
			fmt.Printf("  observed mean:  %s cycles/op\n", formatByMech(s.MeanCycles, func(v float64) string {
				return fmt.Sprintf("%.0f", v)
			}))
		}
	}
	return nil
}
