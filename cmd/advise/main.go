// Command advise runs the §6-style mechanism advisor: given a call
// site's profile (consecutive accesses per object, record sizes), it
// predicts RPC vs computation-migration cost under a chosen machine
// model and prints the recommendation and the crossover run length.
package main

import (
	"flag"
	"fmt"
	"os"

	"compmig/internal/advisor"
	"compmig/internal/cost"
)

func main() {
	n := flag.Float64("n", 1, "mean consecutive accesses per object visit")
	m := flag.Float64("m", 1, "objects visited in sequence (amortizes the return)")
	argW := flag.Uint64("args", 2, "argument record size, 32-bit words")
	repW := flag.Uint64("reply", 2, "reply record size, words")
	contW := flag.Uint64("cont", 8, "continuation record size (live variables), words")
	short := flag.Bool("short", false, "the access is a short method under RPC")
	hw := flag.Bool("hw", false, "use the hardware-support cost model")
	flag.Parse()

	model := cost.Software()
	label := "software"
	if *hw {
		model = cost.Hardware()
		label = "hardware-assisted"
	}
	a := advisor.New(model)
	p := advisor.SiteProfile{
		AccessesPerVisit: *n, ArgWords: *argW, ReplyWords: *repW,
		ContWords: *contW, ShortMethod: *short, ChainLength: *m,
	}
	fmt.Printf("model:            %s (Table 5 costs)\n", label)
	fmt.Printf("profile:          n=%.1f accesses/visit, m=%.0f objects, cont=%dw, args=%dw, reply=%dw\n",
		p.AccessesPerVisit, p.ChainLength, p.ContWords, p.ArgWords, p.ReplyWords)
	fmt.Printf("estimated cost:   RPC %.0f cycles, migration %.0f cycles per visit\n",
		a.EstimateRPC(p), a.EstimateMigrate(p))
	fmt.Printf("recommendation:   %v\n", a.Choose(p))
	if x := a.CrossoverAccesses(p, 10000); x > 0 {
		fmt.Printf("crossover:        migration wins from %.0f accesses/visit\n", x)
	} else {
		fmt.Println("crossover:        migration never wins for this profile")
		os.Exit(0)
	}
}
