// Command countnet runs one counting-network experiment (the paper's
// first application) and prints the measured point.
//
// Example:
//
//	countnet -threads 64 -think 0 -scheme cm+hw
package main

import (
	"flag"
	"fmt"
	"os"

	"compmig/internal/apps/countnet"
	"compmig/internal/harness"
	"compmig/internal/sim"
)

func main() {
	width := flag.Int("width", 8, "counting network width (power of two)")
	threads := flag.Int("threads", 8, "requesting threads, one per processor")
	think := flag.Uint64("think", 0, "cycles between requests")
	schemeSpec := flag.String("scheme", "cm", "scheme: rpc|cm|sm with +hw (e.g. cm+hw)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	warmup := flag.Uint64("warmup", 20000, "warmup cycles before measuring")
	measure := flag.Uint64("measure", 200000, "measurement window in cycles")
	trace := flag.Int("trace", 0, "dump the last N simulation events to stderr")
	flag.Parse()

	scheme, err := harness.ParseScheme(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	r := countnet.RunExperiment(countnet.Config{
		Width: *width, Threads: *threads, Think: *think, Scheme: scheme,
		Seed: *seed, Warmup: sim.Time(*warmup), Measure: sim.Time(*measure),
		TraceCap: *trace,
	})
	if r.Trace != nil {
		if err := r.Trace.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	fmt.Printf("scheme            %s\n", r.Scheme)
	fmt.Printf("threads           %d\n", r.Threads)
	fmt.Printf("think time        %d cycles\n", r.Think)
	fmt.Printf("throughput        %.3f requests/1000 cycles\n", r.Throughput)
	fmt.Printf("bandwidth         %.3f words/10 cycles\n", r.Bandwidth)
	fmt.Printf("requests          %d\n", r.Ops)
	fmt.Printf("mean latency      %.0f cycles\n", r.MeanLatency)
	fmt.Printf("p95 latency       <= %d cycles\n", r.P95Latency)
	fmt.Printf("entry-stage util  %.1f%%\n", r.EntryUtilization*100)
	fmt.Printf("messages          %d\n", r.Messages)
	fmt.Printf("words/request     %.1f\n", r.WordsPerOp)
	if r.HitRate > 0 {
		fmt.Printf("cache hit rate    %.1f%%\n", r.HitRate*100)
	}
}
