// Command countnet runs one counting-network experiment (the paper's
// first application) and prints the measured point.
//
// Example:
//
//	countnet -threads 64 -think 0 -scheme cm+hw
//	countnet -threads 64 -policy costmodel -policy-stats stats.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"compmig/internal/apps/countnet"
	"compmig/internal/harness"
	"compmig/internal/policy"
	"compmig/internal/sim"
)

func main() {
	width := flag.Int("width", 8, "counting network width (power of two)")
	threads := flag.Int("threads", 8, "requesting threads, one per processor")
	think := flag.Uint64("think", 0, "cycles between requests")
	schemeSpec := flag.String("scheme", "cm", "scheme: rpc|cm|sm|om with +hw (e.g. cm+hw)")
	policySpec := flag.String("policy", "", "online mechanism selection: static:<rpc|cm|sm|om>, costmodel, or bandit[:eps]")
	policyStats := flag.String("policy-stats", "", "write the policy engine's live statistics as JSON to this file (requires -policy)")
	faultsSpec := flag.String("faults", "", "fault plan, e.g. drop=0.01,delay=0:40,crash=p3@50000+20000,wipe=p2@60000+8000,ckpt=20000,seed=7 (empty = no faults)")
	durable := flag.Bool("durable", false, "force the per-processor WAL/checkpoint store on (wipe= windows switch it on automatically)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	warmup := flag.Uint64("warmup", 20000, "warmup cycles before measuring")
	measure := flag.Uint64("measure", 200000, "measurement window in cycles")
	trace := flag.Int("trace", 0, "dump the last N simulation events to stderr")
	shards := flag.Int("shards", 0, "sharded event engines (0 = serial; CM/RPC schemes only, output identical for any N >= 1)")
	flag.Parse()

	if *width <= 0 || *threads <= 0 {
		fmt.Fprintf(os.Stderr, "countnet: -width and -threads must be positive (got %d, %d)\n", *width, *threads)
		os.Exit(2)
	}
	scheme, err := harness.ParseScheme(*schemeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faults, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "countnet:", err)
		os.Exit(2)
	}
	if *policyStats != "" && *policySpec == "" {
		fmt.Fprintln(os.Stderr, "countnet: -policy-stats requires -policy")
		os.Exit(2)
	}
	if *policySpec != "" {
		if err := policy.Validate(*policySpec); err != nil {
			fmt.Fprintln(os.Stderr, "countnet:", err)
			os.Exit(2)
		}
	}
	r := countnet.RunExperiment(countnet.Config{
		Width: *width, Threads: *threads, Think: *think, Scheme: scheme,
		Seed: *seed, Warmup: sim.Time(*warmup), Measure: sim.Time(*measure),
		TraceCap: *trace, Policy: *policySpec, Faults: faults,
		Durable: *durable, Shards: *shards,
	})
	if *policyStats != "" {
		data, err := json.MarshalIndent(r.PolicyStats, "", "  ")
		if err == nil {
			err = os.WriteFile(*policyStats, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "countnet: writing policy stats:", err)
			os.Exit(1)
		}
	}
	if r.Trace != nil {
		if err := r.Trace.Dump(os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	fmt.Printf("scheme            %s\n", r.Scheme)
	if r.Policy != "" {
		fmt.Printf("policy            %s (decisions rpc:%d cm:%d sm:%d om:%d)\n",
			r.Policy, r.Decisions[0], r.Decisions[1], r.Decisions[2], r.Decisions[3])
	}
	fmt.Printf("threads           %d\n", r.Threads)
	fmt.Printf("think time        %d cycles\n", r.Think)
	fmt.Printf("throughput        %.3f requests/1000 cycles\n", r.Throughput)
	fmt.Printf("bandwidth         %.3f words/10 cycles\n", r.Bandwidth)
	fmt.Printf("requests          %d\n", r.Ops)
	fmt.Printf("mean latency      %.0f cycles\n", r.MeanLatency)
	fmt.Printf("p95 latency       <= %d cycles\n", r.P95Latency)
	fmt.Printf("entry-stage util  %.1f%%\n", r.EntryUtilization*100)
	fmt.Printf("messages          %d\n", r.Messages)
	fmt.Printf("words/request     %.1f\n", r.WordsPerOp)
	if r.HitRate > 0 {
		fmt.Printf("cache hit rate    %.1f%%\n", r.HitRate*100)
	}
	if r.Fault != nil {
		fmt.Printf("faults injected   drop:%d dup:%d crash:%d pause:%d\n",
			r.Fault.Dropped, r.Fault.Duplicated, r.Fault.CrashDropped, r.Fault.PauseDelayed)
		fmt.Printf("fault recovery    retransmits:%d timeouts:%d dup-suppressed:%d giveups:%d\n",
			r.Fault.Retransmits, r.Fault.Timeouts, r.Fault.DupSuppressed, r.Fault.GiveUps)
	}
	if r.Recovery != nil {
		fmt.Printf("durability        appends:%d fsyncs:%d checkpoints:%d ckpt-words:%d\n",
			r.Recovery.Appends, r.Recovery.Fsyncs, r.Recovery.Checkpoints, r.Recovery.CheckpointWords)
		fmt.Printf("crash recovery    wipes:%d restores:%d replays:%d rereg:%d cycles:%d\n",
			r.Recovery.Wipes, r.Recovery.Restores, r.Recovery.Replays, r.Recovery.Reregistered, r.Recovery.RecoveryCycles)
	}
	if r.Fault != nil || r.Recovery != nil {
		if r.InvariantErr != "" {
			fmt.Fprintln(os.Stderr, "countnet: INVARIANT VIOLATED:", r.InvariantErr)
			os.Exit(1)
		}
		fmt.Printf("invariants        ok\n")
	}
}
