// Command benchdiff compares two benchmark reports written by
// paperfigs -bench-json and prints per-experiment wall-clock and
// allocation deltas.
//
// Usage:
//
//	benchdiff [-threshold PCT] old.json new.json
//
// Entries are matched by (experiment, workers, shards). With -threshold
// set, benchdiff exits 1 if any matched experiment's wall clock
// regressed by more than PCT percent — suitable as a CI gate.
// Wall-clock deltas on sub-millisecond entries are noise, so the gate
// only considers entries whose baseline is at least 50 ms.
//
// Entries carrying sharded-engine counters (shards >= 1 runs) get a
// second line comparing synchronization work: lookahead windows, events
// processed, null windows (a lane synchronized but had nothing to run),
// and cross-lane messages.
//
// Entries carrying durability counters (runs with the per-processor WAL
// on — today only ext-recovery) get a detail line comparing logging and
// replay work: WAL appends, checkpoint bytes, replay events, and
// simulated recovery cycles. Like the latency percentiles, these are
// simulation results: a changed count means the simulated behavior
// changed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type entry struct {
	Experiment   string  `json:"experiment"`
	Workers      int     `json:"workers"`
	Shards       int     `json:"shards"`
	WallMS       float64 `json:"wall_ms"`
	Allocs       uint64  `json:"allocs"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	FastHits     uint64  `json:"fast_hits"`
	SlowMisses   uint64  `json:"slow_misses"`
	ShardWindows uint64  `json:"shard_windows"`
	ShardEvents  uint64  `json:"shard_events"`
	ShardNulls   uint64  `json:"shard_nulls"`
	ShardCross   uint64  `json:"shard_cross"`
	// Durability counters: zero unless the experiment ran with the
	// per-processor WAL on.
	WalAppends      uint64 `json:"wal_appends"`
	CheckpointBytes uint64 `json:"checkpoint_bytes"`
	ReplayEvents    uint64 `json:"replay_events"`
	RecoveryCycles  uint64 `json:"recovery_cycles"`
	// Simulated per-request latency percentiles in cycles (zero when the
	// experiment does not measure per-request latency). These are
	// simulation results, not host timings: a changed percentile means
	// the simulated behavior changed, which the identity suites treat as
	// a functional difference, not a performance one.
	LatencyP50 uint64 `json:"latency_p50"`
	LatencyP95 uint64 `json:"latency_p95"`
	LatencyP99 uint64 `json:"latency_p99"`
}

type report struct {
	Date        string  `json:"date"`
	GoVersion   string  `json:"go_version"`
	Quick       bool    `json:"quick"`
	Experiments []entry `json:"experiments"`
}

// gateFloorMS is the baseline wall clock below which the threshold gate
// ignores an entry: timing jitter on tiny runs dwarfs any real change.
const gateFloorMS = 50

func main() {
	threshold := flag.Float64("threshold", 0, "exit 1 if any wall clock regresses by more than this percent (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] old.json new.json")
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if oldRep.Quick != newRep.Quick {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: comparing quick=%v against quick=%v\n",
			oldRep.Quick, newRep.Quick)
	}

	type key struct {
		exp     string
		workers int
		shards  int
	}
	oldBy := make(map[key]entry, len(oldRep.Experiments))
	for _, e := range oldRep.Experiments {
		oldBy[key{e.Experiment, e.Workers, e.Shards}] = e
	}

	fmt.Printf("%-12s %3s %3s  %10s %10s %8s  %12s %8s\n",
		"experiment", "w", "s", "old ms", "new ms", "wall", "new allocs", "allocs")
	regressed := false
	matched := 0
	for _, n := range newRep.Experiments {
		k := key{n.Experiment, n.Workers, n.Shards}
		o, ok := oldBy[k]
		if !ok {
			fmt.Printf("%-12s %3d %3d  %10s %10.1f %8s  %12d %8s\n",
				n.Experiment, n.Workers, n.Shards, "-", n.WallMS, "new", n.Allocs, "new")
			printShardCounters(n)
			printDurability(entry{}, n)
			printLatency(entry{}, n)
			continue
		}
		matched++
		delete(oldBy, k)
		wallPct := pctDelta(o.WallMS, n.WallMS)
		allocPct := pctDelta(float64(o.Allocs), float64(n.Allocs))
		fmt.Printf("%-12s %3d %3d  %10.1f %10.1f %+7.1f%%  %12d %+7.1f%%\n",
			n.Experiment, n.Workers, n.Shards, o.WallMS, n.WallMS, wallPct, n.Allocs, allocPct)
		printShardCounters(n)
		printDurability(o, n)
		printLatency(o, n)
		if *threshold > 0 && o.WallMS >= gateFloorMS && wallPct > *threshold {
			fmt.Fprintf(os.Stderr, "benchdiff: %s workers=%d shards=%d wall clock regressed %.1f%% (limit %.1f%%)\n",
				n.Experiment, n.Workers, n.Shards, wallPct, *threshold)
			regressed = true
		}
	}
	for k := range oldBy {
		fmt.Printf("%-12s %3d %3d  entry missing from new report\n", k.exp, k.workers, k.shards)
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no experiments in common")
		os.Exit(2)
	}
	if regressed {
		os.Exit(1)
	}
}

// printShardCounters renders an entry's sharded-engine synchronization
// counters on a detail line; serial entries (no windows) print nothing.
func printShardCounters(e entry) {
	if e.ShardWindows == 0 {
		return
	}
	nullPct := 0.0
	if lw := e.ShardWindows * uint64(e.Shards); lw > 0 {
		nullPct = float64(e.ShardNulls) / float64(lw) * 100
	}
	fmt.Printf("%-12s      windows=%d events=%d nulls=%d (%.1f%% of lane-windows) cross=%d\n",
		"", e.ShardWindows, e.ShardEvents, e.ShardNulls, nullPct, e.ShardCross)
}

// printDurability renders an entry's WAL/recovery counters on a detail
// line, flagging any counter that moved against the old report; entries
// that never switched the store on print nothing.
func printDurability(o, n entry) {
	if n.WalAppends == 0 && n.CheckpointBytes == 0 && n.ReplayEvents == 0 && n.RecoveryCycles == 0 {
		return
	}
	changed := ""
	if o.WalAppends != 0 && (o.WalAppends != n.WalAppends || o.CheckpointBytes != n.CheckpointBytes ||
		o.ReplayEvents != n.ReplayEvents || o.RecoveryCycles != n.RecoveryCycles) {
		changed = fmt.Sprintf("  (was appends=%d ckpt-bytes=%d replays=%d rec-cycles=%d — simulated behavior changed)",
			o.WalAppends, o.CheckpointBytes, o.ReplayEvents, o.RecoveryCycles)
	}
	fmt.Printf("%-12s      wal appends=%d ckpt-bytes=%d replays=%d rec-cycles=%d%s\n",
		"", n.WalAppends, n.CheckpointBytes, n.ReplayEvents, n.RecoveryCycles, changed)
}

// printLatency renders an entry's simulated latency percentiles on a
// detail line, flagging any percentile that moved against the old
// report; entries without latency data print nothing.
func printLatency(o, n entry) {
	if n.LatencyP50 == 0 && n.LatencyP95 == 0 && n.LatencyP99 == 0 {
		return
	}
	changed := ""
	if o.LatencyP50 != 0 && (o.LatencyP50 != n.LatencyP50 || o.LatencyP95 != n.LatencyP95 || o.LatencyP99 != n.LatencyP99) {
		changed = fmt.Sprintf("  (was p50=%d p95=%d p99=%d — simulated behavior changed)",
			o.LatencyP50, o.LatencyP95, o.LatencyP99)
	}
	fmt.Printf("%-12s      latency cycles p50=%d p95=%d p99=%d%s\n",
		"", n.LatencyP50, n.LatencyP95, n.LatencyP99, changed)
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Experiments) == 0 {
		return r, fmt.Errorf("%s: no experiments in report", path)
	}
	return r, nil
}

// pctDelta returns the percent change from old to new (positive =
// regression for costs like wall clock and allocations).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}
