package main_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDriver compiles benchdiff once into the test's temp dir.
func buildDriver(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "benchdiff")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building benchdiff: %v\n%s", err, out)
	}
	return bin
}

// writeReport drops a bench-json fixture into dir and returns its path.
func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldReport = `{"quick":true,"experiments":[
 {"experiment":"fig1","workers":1,"shards":0,"wall_ms":100,"allocs":1000},
 {"experiment":"ext-recovery","workers":1,"shards":0,"wall_ms":200,"allocs":2000,
  "wal_appends":5000,"checkpoint_bytes":4096,"replay_events":40,"recovery_cycles":90000}
]}`

const newReport = `{"quick":true,"experiments":[
 {"experiment":"fig1","workers":1,"shards":0,"wall_ms":105,"allocs":1000},
 {"experiment":"ext-recovery","workers":1,"shards":0,"wall_ms":210,"allocs":2000,
  "wal_appends":5200,"checkpoint_bytes":4096,"replay_events":44,"recovery_cycles":95000}
]}`

const regressedReport = `{"quick":true,"experiments":[
 {"experiment":"fig1","workers":1,"shards":0,"wall_ms":200,"allocs":1000}
]}`

// TestDriverExitCodes audits the exit-code contract: 0 = reports
// compared, 1 = threshold gate tripped, 2 = unusable input. The
// durability rows also pin the WAL detail line: new counts always
// render, and a change against the old report is called out.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the driver")
	}
	bin := buildDriver(t)
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", oldReport)
	newPath := writeReport(t, dir, "new.json", newReport)
	regPath := writeReport(t, dir, "reg.json", regressedReport)
	badPath := writeReport(t, dir, "bad.json", "{not json")
	emptyPath := writeReport(t, dir, "empty.json", `{"experiments":[]}`)
	otherPath := writeReport(t, dir, "other.json",
		`{"experiments":[{"experiment":"table9","workers":1,"shards":0,"wall_ms":1}]}`)

	cases := []struct {
		name string
		args []string
		exit int
		want []string
	}{
		{"report only", []string{oldPath, newPath}, 0,
			[]string{"fig1", "ext-recovery",
				"wal appends=5200 ckpt-bytes=4096 replays=44 rec-cycles=95000",
				"was appends=5000"}},
		{"identical durability counters stay quiet", []string{newPath, newPath}, 0,
			[]string{"wal appends=5200"}},
		{"threshold trips", []string{"-threshold", "10", oldPath, regPath}, 1, []string{"regressed"}},
		{"threshold passes", []string{"-threshold", "10", oldPath, newPath}, 0, nil},
		{"missing args", nil, 2, []string{"usage"}},
		{"unreadable file", []string{oldPath, filepath.Join(dir, "absent.json")}, 2, nil},
		{"invalid json", []string{oldPath, badPath}, 2, nil},
		{"empty report", []string{oldPath, emptyPath}, 2, []string{"no experiments"}},
		{"nothing in common", []string{oldPath, otherPath}, 2, []string{"no experiments in common"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			code := 0
			if err != nil {
				var exitErr *exec.ExitError
				if !errors.As(err, &exitErr) {
					t.Fatalf("running driver: %v\n%s", err, out)
				}
				code = exitErr.ExitCode()
			}
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\n%s", code, tc.exit, out)
			}
			for _, w := range tc.want {
				if !strings.Contains(string(out), w) {
					t.Errorf("output missing %q\n%s", w, out)
				}
			}
		})
	}

	t.Run("identical reports flag nothing as changed", func(t *testing.T) {
		out, err := exec.Command(bin, newPath, newPath).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if strings.Contains(string(out), "simulated behavior changed") {
			t.Errorf("self-diff claims behavior changed:\n%s", out)
		}
	})
}
