// Command msgmodel prints the analytic message-count model of the
// paper's §2.5 (Figure 1): one thread making n consecutive accesses to
// each of m remote data items.
package main

import (
	"flag"
	"fmt"

	"compmig/internal/model"
)

func main() {
	n := flag.Int("n", 2, "consecutive accesses per data item")
	maxM := flag.Int("m", 8, "maximum number of data items")
	flag.Parse()

	fmt.Printf("messages for n=%d accesses to each of m data items\n\n", *n)
	fmt.Printf("%4s  %12s  %16s  %22s\n", "m", "RPC (2nm)", "data mig (2m)", "computation mig (m+1)")
	for m := 1; m <= *maxM; m++ {
		fmt.Printf("%4d  %12d  %16d  %22d\n", m,
			model.Messages(model.RPC, *n, m),
			model.Messages(model.DataMigration, *n, m),
			model.Messages(model.ComputationMigration, *n, m))
	}
	fmt.Printf("\ncheapest mechanism for (n=%d, m=%d): %v\n", *n, *maxM, model.Winner(*n, *maxM))
}
