// Benchmarks: one per table and figure in the paper's evaluation
// section. Each benchmark runs the corresponding experiment end to end
// and reports the paper's metric (requests or ops per 1000 simulated
// cycles; words per 10 cycles) via b.ReportMetric, so `go test -bench`
// regenerates the paper's numbers alongside wall-clock costs.
//
// The -quick-scale windows are used so a full -bench=. run stays fast;
// cmd/paperfigs produces the full-scale tables.
package compmig

import (
	"testing"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/harness"
	"compmig/internal/model"
	"compmig/internal/sim"
)

func countnetConfig(scheme core.Scheme, threads int, think uint64) countnet.Config {
	return countnet.Config{
		Threads: threads, Think: think, Scheme: scheme,
		Warmup: 10000, Measure: 60000,
	}
}

func btreeConfig(scheme core.Scheme, think uint64) btree.Config {
	return btree.Config{
		Scheme: scheme, Think: think,
		Warmup: 10000, Measure: 60000,
	}
}

// BenchmarkFig1MessageModel reproduces Figure 1: the §2.5 message-count
// model, cross-validated against the simulator inside the harness.
func BenchmarkFig1MessageModel(b *testing.B) {
	var last int
	for i := 0; i < b.N; i++ {
		for m := 1; m <= 16; m++ {
			last = model.Messages(model.RPC, 2, m) +
				model.Messages(model.DataMigration, 2, m) +
				model.Messages(model.ComputationMigration, 2, m)
		}
	}
	b.ReportMetric(float64(last), "msgs_at_m16")
	b.ReportMetric(float64(model.Messages(model.ComputationMigration, 2, 16)), "cm_msgs_m16")
}

// BenchmarkFig2CountnetThroughput reproduces Figure 2's throughput
// curves: counting network requests/1000 cycles per scheme.
func BenchmarkFig2CountnetThroughput(b *testing.B) {
	for _, s := range []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.RPC},
	} {
		for _, think := range []uint64{0, 10000} {
			name := s.Name() + "/think=" + itoa(think)
			b.Run(name, func(b *testing.B) {
				var r countnet.Result
				for i := 0; i < b.N; i++ {
					r = countnet.RunExperiment(countnetConfig(s, 32, think))
				}
				b.ReportMetric(r.Throughput, "req/1000cyc")
			})
		}
	}
}

// BenchmarkFig3CountnetBandwidth reproduces Figure 3's bandwidth curves:
// words/10 cycles per scheme.
func BenchmarkFig3CountnetBandwidth(b *testing.B) {
	for _, s := range []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			var r countnet.Result
			for i := 0; i < b.N; i++ {
				r = countnet.RunExperiment(countnetConfig(s, 32, 0))
			}
			b.ReportMetric(r.Bandwidth, "words/10cyc")
		})
	}
}

var table12Schemes = []core.Scheme{
	{Mechanism: core.SharedMem},
	{Mechanism: core.RPC},
	{Mechanism: core.RPC, HWMessaging: true},
	{Mechanism: core.RPC, Replication: true},
	{Mechanism: core.RPC, Replication: true, HWMessaging: true},
	{Mechanism: core.Migrate},
	{Mechanism: core.Migrate, HWMessaging: true},
	{Mechanism: core.Migrate, Replication: true},
	{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
}

// BenchmarkTable1BtreeThroughput reproduces Table 1: B-tree throughput
// at zero think time for all nine schemes.
func BenchmarkTable1BtreeThroughput(b *testing.B) {
	for _, s := range table12Schemes {
		b.Run(s.Name(), func(b *testing.B) {
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(btreeConfig(s, 0))
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
		})
	}
}

// BenchmarkTable2BtreeBandwidth reproduces Table 2: B-tree bandwidth at
// zero think time.
func BenchmarkTable2BtreeBandwidth(b *testing.B) {
	for _, s := range table12Schemes {
		b.Run(s.Name(), func(b *testing.B) {
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(btreeConfig(s, 0))
			}
			b.ReportMetric(r.Bandwidth, "words/10cyc")
		})
	}
}

var table34Schemes = []core.Scheme{
	{Mechanism: core.SharedMem},
	{Mechanism: core.Migrate, Replication: true},
	{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
}

// BenchmarkTable3BtreeLowContention reproduces Table 3: B-tree
// throughput at 10000-cycle think time.
func BenchmarkTable3BtreeLowContention(b *testing.B) {
	for _, s := range table34Schemes {
		b.Run(s.Name(), func(b *testing.B) {
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(btreeConfig(s, 10000))
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
		})
	}
}

// BenchmarkTable4BtreeLowContentionBW reproduces Table 4: B-tree
// bandwidth at 10000-cycle think time.
func BenchmarkTable4BtreeLowContentionBW(b *testing.B) {
	for _, s := range table34Schemes {
		b.Run(s.Name(), func(b *testing.B) {
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(btreeConfig(s, 10000))
			}
			b.ReportMetric(r.Bandwidth, "words/10cyc")
		})
	}
}

// BenchmarkTable5MigrationBreakdown reproduces Table 5: the per-category
// cycle breakdown of one migration in the counting network.
func BenchmarkTable5MigrationBreakdown(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		tb := harness.Table5(harness.Options{Quick: true})
		total = parseLeadingFloat(tb.Rows[0][1])
	}
	b.ReportMetric(total, "cycles/migration")
}

// BenchmarkSmallNodeBtree reproduces the §4.2 fanout-10 experiment where
// the gap between SM and CP w/repl. narrows.
func BenchmarkSmallNodeBtree(b *testing.B) {
	for _, s := range []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			p := btree.DefaultParams()
			p.Fanout = 10
			var r btree.Result
			for i := 0; i < b.N; i++ {
				cfg := btreeConfig(s, 0)
				cfg.Params = p
				r = btree.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
		})
	}
}

// benchSuite runs the whole quick-scale evaluation suite — every table
// and figure — with the given worker count.
func benchSuite(b *testing.B, workers int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run("all", harness.Options{Quick: true, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial measures the full quick-scale suite executed
// serially (workers=1), the pre-worker-pool behavior.
func BenchmarkSuiteSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel measures the full quick-scale suite on one
// worker per CPU. Output is byte-identical to the serial run; only the
// wall clock changes.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

// BenchmarkSuiteEngineSleep measures the simulator's uncontended
// sleep path: a single thread sleeping repeatedly, which the engine can
// satisfy by fast-advancing the clock with no event allocation or
// channel handoff.
func BenchmarkSuiteEngineSleep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		eng.Spawn("sleeper", 0, func(th *sim.Thread) {
			for k := 0; k < 1000; k++ {
				th.Sleep(10)
			}
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteEngineContendedSleep measures the event-heap slow path:
// two threads whose sleeps always interleave, so every wakeup goes
// through a (pooled) event and the park/resume handoff.
func BenchmarkSuiteEngineContendedSleep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		for t := 0; t < 2; t++ {
			eng.Spawn("sleeper", 0, func(th *sim.Thread) {
				for k := 0; k < 500; k++ {
					th.Sleep(10)
				}
			})
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func parseLeadingFloat(s string) float64 {
	var v float64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + float64(c-'0')
	}
	return v
}
