module compmig

go 1.22
