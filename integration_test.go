package compmig

import (
	"testing"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/repl"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// TestTwoApplicationsOneMachine hosts the counting network and the
// B-tree on the SAME simulated machine and runtime, with their
// requesters interleaving: method registries, continuation registries,
// reply slots, and processor scheduling must all coexist. Both
// applications' invariants are checked at quiescence.
func TestTwoApplicationsOneMachine(t *testing.T) {
	eng := sim.NewEngine(31)
	scheme := core.Scheme{Mechanism: core.Migrate}
	model := scheme.Model()
	// 24 balancer procs + 16 tree-node procs + 8 requesters.
	mach := sim.NewMachine(eng, 24+16+8)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)

	cn := countnet.Build(rt, nil, scheme, 8)
	p := btree.Params{Fanout: 10, NodeProcs: 16, Fill: 0.7}
	// Tree nodes land on procs [0,16) — overlapping the balancer procs,
	// which is fine: both services share those CPUs.
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i+1) * 5
	}
	tr := btree.Build(rt, nil, nil, scheme, p, keys)

	const perThread = 12
	var values []uint64
	inserted := 0
	for i := 0; i < 8; i++ {
		i := i
		eng.Spawn("mixed", sim.Time(i*3), func(th *sim.Thread) {
			task := rt.NewTask(th, 40+i)
			for k := 0; k < perThread; k++ {
				if (i+k)%2 == 0 {
					values = append(values, cn.Traverse(task, (i+k)%8))
				} else {
					if tr.Insert(task, uint64(10000+i*100+k)) {
						inserted++
					}
					tr.Lookup(task, uint64(i*25+5))
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Counting network: gap-free values.
	seen := make(map[uint64]bool)
	for _, v := range values {
		if v >= uint64(len(values)) || seen[v] {
			t.Fatalf("counting value %d duplicated or out of range (m=%d)", v, len(values))
		}
		seen[v] = true
	}
	// B-tree: structure intact, all inserts present.
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.KeyCount(); got != 200+inserted {
		t.Fatalf("key count = %d, want %d", got, 200+inserted)
	}
	if inserted == 0 {
		t.Fatal("no inserts happened; workload degenerate")
	}
}

// TestEverythingEverywhereAllAtOnce is the kitchen-sink stress run: a
// migrating B-tree workload, object pulls against dedicated cells, and
// shared-memory traffic, all under one engine, finishing with coherence
// and structure checks.
func TestEverythingEverywhereAllAtOnce(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		eng := sim.NewEngine(seed)
		scheme := core.Scheme{Mechanism: core.Migrate}
		model := scheme.Model()
		mach := sim.NewMachine(eng, 20)
		col := stats.NewCollector()
		net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
		rt := core.New(eng, mach, net, col, model)
		shm := mem.New(eng, mach, net, col, mem.DefaultParams())
		tbl := repl.NewTable(rt)

		p := btree.Params{Fanout: 6, NodeProcs: 12, Fill: 0.7}
		keys := make([]uint64, 60)
		for i := range keys {
			keys[i] = uint64(i+1) * 9
		}
		// Replicated-root migrating tree.
		tr := btree.Build(rt, nil, tbl, core.Scheme{Mechanism: core.Migrate, Replication: true}, p, keys)

		// Mobile cells for object pulls.
		type blob struct{ hits int }
		objs := make([]*blob, 6)
		gidlist := make([]gid.GID, 6)
		for i := range objs {
			objs[i] = &blob{}
			gidlist[i] = rt.Objects.New(i, objs[i])
		}

		// Shared-memory scratch lines.
		lines := make([]mem.Addr, 10)
		for i := range lines {
			lines[i] = shm.Alloc(i%12, 16)
		}

		rng := sim.NewPRNG(seed * 97)
		for w := 0; w < 6; w++ {
			w := w
			eng.Spawn("storm", sim.Time(w), func(th *sim.Thread) {
				task := rt.NewTask(th, 14+(w%6))
				for k := 0; k < 40; k++ {
					switch rng.Intn(4) {
					case 0:
						tr.Insert(task, 1+rng.Uint64n(4000))
					case 1:
						tr.Lookup(task, 1+rng.Uint64n(4000))
					case 2:
						g := gidlist[rng.Intn(len(gidlist))]
						for !task.IsLocal(g) {
							task.PullObject(g, 16)
						}
						rt.Objects.State(g).(*blob).hits++
					default:
						a := lines[rng.Intn(len(lines))]
						if rng.Intn(2) == 0 {
							shm.Read(th, task.Proc(), a, 16)
						} else {
							shm.Write(th, task.Proc(), a, 8)
						}
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := shm.CheckCoherence(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		totalHits := 0
		for _, b := range objs {
			totalHits += b.hits
		}
		if totalHits == 0 {
			t.Fatalf("seed %d: no object pulls happened", seed)
		}
	}
}
