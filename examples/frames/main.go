// Frames: the paper's §6 says flexible control over what migrates is
// "essential" — single frames, multiple frames, and partial frames. A
// procedure with a heavy local buffer must probe a remote table five
// times. Its choices:
//
//   - rpc: stay home and pay a round trip per probe;
//   - whole-frame: migrate to the table — the probes become local, but
//     the heavy buffer (live state of the frame) crosses the wire;
//   - partial: split the frame (MigratePartial) — a small probe
//     continuation migrates and runs its five accesses locally, while
//     the buffer half stays home and combines the result on return.
//
// Run with: go run ./examples/frames
package main

import (
	"fmt"

	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

const (
	bufWords = 200 // the caller's working buffer (live, but heavy)
	probes   = 5   // accesses the procedure makes to the remote table
)

type table struct{ rows uint64 }

type numReply struct{ v uint64 }

func (r *numReply) MarshalWords(w *msg.Writer)          { w.PutU64(r.v) }
func (r *numReply) UnmarshalWords(rd *msg.Reader) error { r.v = rd.U64(); return rd.Err() }

// scanCont is the callee: it scans the remote table and returns a count.
type scanCont struct {
	env *env
	tbl gid.GID
}

func (c *scanCont) MarshalWords(w *msg.Writer)         { w.PutU64(uint64(c.tbl)) }
func (c *scanCont) UnmarshalWords(r *msg.Reader) error { c.tbl = gid.GID(r.U64()); return r.Err() }

func (c *scanCont) Run(t *core.Task) {
	if !t.IsLocal(c.tbl) {
		t.Migrate(c.tbl, c.env.scanID, c)
		return
	}
	var rows uint64
	for i := 0; i < probes; i++ {
		rows += t.State(c.tbl).(*table).rows
		t.Work(80)
	}
	t.Return(&numReply{v: rows})
}

// combine is the caller's second half: fold the scan result into the
// buffer summary. As a Resumable it can either ride along (multi-frame)
// or stay behind (partial).
type combine struct {
	env *env
	buf []uint32
}

func (c *combine) MarshalWords(w *msg.Writer)         { w.PutU32s(c.buf) }
func (c *combine) UnmarshalWords(r *msg.Reader) error { c.buf = r.U32s(); return r.Err() }
func (c *combine) Run(t *core.Task)                   { panic("combine is resumed, not run") }

func (c *combine) Resume(t *core.Task, result *msg.Reader) {
	var rep numReply
	if err := rep.UnmarshalWords(result); err != nil {
		panic(err)
	}
	t.Work(30)
	t.Return(&numReply{v: rep.v + uint64(len(c.buf))})
}

type env struct {
	eng       *sim.Engine
	col       *stats.Collector
	rt        *core.Runtime
	tbl       gid.GID
	mProbe    core.MethodID
	scanID    core.ContID
	combineID core.ContID
}

func build() *env {
	eng := sim.NewEngine(4)
	mach := sim.NewMachine(eng, 2)
	col := stats.NewCollector()
	model := core.Scheme{Mechanism: core.Migrate}.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)
	e := &env{eng: eng, col: col, rt: rt}
	e.tbl = rt.Objects.New(1, &table{rows: 1000})
	e.mProbe = rt.RegisterMethod("frames.probe", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			t.Work(80)
			reply.PutU64(self.(*table).rows)
		})
	e.scanID = rt.RegisterCont("frames.scan", func() core.Continuation { return &scanCont{env: e} })
	e.combineID = rt.RegisterCont("frames.combine", func() core.Continuation { return &combine{env: e} })
	return e
}

// entry kicks off the computation under the chosen granularity.
type entry struct {
	env  *env
	mode string
}

func (en *entry) MarshalWords(w *msg.Writer)         { w.PutU32(0) }
func (en *entry) UnmarshalWords(r *msg.Reader) error { r.U32(); return r.Err() }

func (en *entry) Run(t *core.Task) {
	e := en.env
	buf := make([]uint32, bufWords)
	scan := &scanCont{env: e, tbl: e.tbl}
	switch en.mode {
	case "rpc":
		var rows uint64
		for i := 0; i < probes; i++ {
			var rep numReply
			if err := t.Call(e.tbl, e.mProbe, nil, &rep); err != nil {
				panic(err)
			}
			rows += rep.v
		}
		t.Work(30)
		t.Return(&numReply{v: rows + uint64(len(buf))})
	case "whole-frame":
		// The buffer is live state of this frame: migrating the whole
		// frame means it rides along.
		t.PushFrame(e.combineID, &combine{env: e, buf: buf})
		scan.Run(t)
	case "partial":
		t.MigratePartial(e.tbl, e.scanID, scan, e.combineID, &combine{env: e, buf: buf})
	}
}

func run(mode string) (result uint64, cycles sim.Time, words uint64) {
	e := build()
	e.eng.Spawn("client", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, 0)
		start := th.Now()
		var rep numReply
		if err := task.Do(&entry{env: e, mode: mode}, &rep); err != nil {
			panic(err)
		}
		result = rep.v
		cycles = th.Now() - start
	})
	if err := e.eng.Run(); err != nil {
		panic(err)
	}
	return result, cycles, e.col.WordsSent
}

func main() {
	fmt.Printf("probe a remote table %d times, then combine with a %d-word local buffer\n\n", probes, bufWords)
	fmt.Printf("%-14s %8s %10s %12s\n", "granularity", "result", "cycles", "wire words")
	for _, mode := range []string{"rpc", "whole-frame", "partial"} {
		res, cyc, words := run(mode)
		fmt.Printf("%-14s %8d %10d %12d\n", mode, res, cyc, words)
	}
	fmt.Println()
	fmt.Println("RPC pays a round trip per probe; whole-frame migration drags the buffer")
	fmt.Println("across the wire; partial migration ships only the probe and keeps the")
	fmt.Println("buffer home — the flexibility §6 argues a migration system must expose.")
}
