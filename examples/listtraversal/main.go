// Listtraversal: the paper's motivating scenario — a thread traverses a
// distributed data structure, touching a series of objects that live on
// different processors. We sum a distributed linked list under all three
// remote-access mechanisms and print the cost of each.
//
// Run with: go run ./examples/listtraversal
package main

import (
	"fmt"

	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

const (
	listLen  = 32
	nprocs   = 8
	nodeWork = 40 // user-code cycles to process one list node
)

// listNode is one element of the distributed list.
type listNode struct {
	value uint64
	next  gid.GID
	addr  mem.Addr // shared-memory image (SM runs only)
}

// nodeReply carries (value, next) to an RPC caller.
type nodeReply struct {
	value uint64
	next  gid.GID
}

func (r *nodeReply) MarshalWords(w *msg.Writer) {
	w.PutU64(r.value)
	w.PutU64(uint64(r.next))
}

func (r *nodeReply) UnmarshalWords(rd *msg.Reader) error {
	r.value = rd.U64()
	r.next = gid.GID(rd.U64())
	return rd.Err()
}

// sumReply is the traversal's final result.
type sumReply struct{ sum uint64 }

func (r *sumReply) MarshalWords(w *msg.Writer)          { w.PutU64(r.sum) }
func (r *sumReply) UnmarshalWords(rd *msg.Reader) error { r.sum = rd.U64(); return rd.Err() }

// sumCont is the migrating traversal: live variables are the running sum
// and the current node.
type sumCont struct {
	contID core.ContID
	cur    gid.GID
	sum    uint64
}

func (c *sumCont) MarshalWords(w *msg.Writer) {
	w.PutU64(uint64(c.cur))
	w.PutU64(c.sum)
}

func (c *sumCont) UnmarshalWords(r *msg.Reader) error {
	c.cur = gid.GID(r.U64())
	c.sum = r.U64()
	return r.Err()
}

func (c *sumCont) Run(t *core.Task) {
	for !c.cur.IsNil() {
		if !t.IsLocal(c.cur) {
			t.Migrate(c.cur, c.contID, c)
			return
		}
		nd := t.State(c.cur).(*listNode)
		t.Work(nodeWork)
		c.sum += nd.value
		c.cur = nd.next
	}
	t.Return(&sumReply{sum: c.sum})
}

type world struct {
	eng  *sim.Engine
	col  *stats.Collector
	rt   *core.Runtime
	shm  *mem.System
	head gid.GID

	mRead  core.MethodID
	contID core.ContID
}

func build(scheme core.Scheme) *world {
	eng := sim.NewEngine(7)
	mach := sim.NewMachine(eng, nprocs+1) // +1 for the traversing thread
	col := stats.NewCollector()
	model := scheme.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)
	w := &world{eng: eng, col: col, rt: rt}
	if scheme.Mechanism == core.SharedMem {
		w.shm = mem.New(eng, mach, net, col, mem.DefaultParams())
	}

	// Lay the list out round-robin across the processors — worst-case
	// locality, like a structure built by many different threads.
	next := gid.Nil
	for i := listLen - 1; i >= 0; i-- {
		nd := &listNode{value: uint64(i + 1), next: next}
		home := i % nprocs
		if w.shm != nil {
			nd.addr = w.shm.Alloc(home, 16)
		}
		next = rt.Objects.New(home, nd)
	}
	w.head = next

	w.mRead = rt.RegisterMethod("list.read", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			nd := self.(*listNode)
			t.Work(nodeWork)
			(&nodeReply{value: nd.value, next: nd.next}).MarshalWords(reply)
		})
	w.contID = rt.RegisterCont("list.sum",
		func() core.Continuation { return &sumCont{contID: w.contID} })
	return w
}

func traverse(scheme core.Scheme) (sum uint64, cycles sim.Time, messages, words uint64) {
	w := build(scheme)
	w.eng.Spawn("walker", 0, func(th *sim.Thread) {
		task := w.rt.NewTask(th, nprocs) // thread on its own processor
		start := th.Now()
		switch scheme.Mechanism {
		case core.RPC:
			cur := w.head
			for !cur.IsNil() {
				var rep nodeReply
				if err := task.Call(cur, w.mRead, nil, &rep); err != nil {
					panic(err)
				}
				sum += rep.value
				cur = rep.next
			}
		case core.Migrate:
			var rep sumReply
			if err := task.Do(&sumCont{contID: w.contID, cur: w.head}, &rep); err != nil {
				panic(err)
			}
			sum = rep.sum
		case core.SharedMem:
			cur := w.head
			for !cur.IsNil() {
				nd := w.rt.Objects.State(cur).(*listNode)
				w.shm.Read(th, nprocs, nd.addr, 16)
				task.Work(nodeWork)
				sum += nd.value
				cur = nd.next
			}
		}
		cycles = th.Now() - start
	})
	if err := w.eng.Run(); err != nil {
		panic(err)
	}
	return sum, cycles, w.col.TotalMessages(), w.col.WordsSent
}

func main() {
	fmt.Printf("summing a %d-node list scattered over %d processors\n\n", listLen, nprocs)
	fmt.Printf("%-24s %10s %10s %10s %8s\n", "mechanism", "sum", "cycles", "messages", "words")
	for _, s := range []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate},
		{Mechanism: core.Migrate, HWMessaging: true},
	} {
		sum, cyc, msgs, words := traverse(s)
		fmt.Printf("%-24s %10d %10d %10d %8d\n", s.Name(), sum, cyc, msgs, words)
	}
	fmt.Println()
	fmt.Println("the pointer chase is where computation migration shines: one message")
	fmt.Println("per hop and a single short-circuited return, instead of a round trip")
	fmt.Println("(RPC) or a line fetch (shared memory) per node.")
}
