// FFT: the paper's §2.4 counterpoint. "Some applications require very
// little locality management: the computation of Fast Fourier Transform,
// in fact, requires data to be migrated exactly once during the entire
// computation; all accesses are local."
//
// This example runs a real distributed FFT (transpose algorithm: local
// column FFTs, twiddle scaling, ONE all-to-all transpose, local row
// FFTs) on the simulated machine and prices the transpose under three
// mechanisms:
//
//   - bulk data migration: each processor ships each peer one block —
//     the single exchange the paper describes;
//   - RPC: fetch every remote point with a call — per-access round trips;
//   - computation migration: a gather frame hops across the owners,
//     accumulating its row — fewer messages than RPC, but the frame
//     grows as it collects data, so bulk exchange still wins.
//
// The numeric result is checked against a direct DFT, so the simulated
// program really computes the transform it charges for.
//
// Run with: go run ./examples/fft
package main

import (
	"fmt"
	"math"
	"math/cmplx"

	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

const (
	p       = 8     // processors
	n       = p * p // points, arranged as a p×p matrix
	ptWords = 4     // wire words per complex point
	flopCyc = 10    // cycles per butterfly operation
)

// fft computes an in-place radix-2 DIT FFT of a power-of-two slice.
func fft(a []complex128) {
	m := len(a)
	// Bit reversal.
	for i, j := 1, 0; i < m; i++ {
		bit := m >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= m; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < m; i += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := a[i+k]
				v := a[i+k+length/2] * w
				a[i+k] = u + v
				a[i+k+length/2] = u - v
				w *= wl
			}
		}
	}
}

// dft is the O(N²) oracle.
func dft(in []complex128) []complex128 {
	out := make([]complex128, len(in))
	for k := range out {
		for t, x := range in {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(len(in))
			out[k] += x * cmplx.Rect(1, ang)
		}
	}
	return out
}

// transposeFFT runs the four-step algorithm on the simulated machine,
// exchanging the matrix under the chosen mechanism, and returns the
// result in natural order plus the simulation's cost readings.
func transposeFFT(input []complex128, mechanism string) ([]complex128, sim.Time, uint64, uint64) {
	eng := sim.NewEngine(1)
	mach := sim.NewMachine(eng, p)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, 17, 0)

	// cols[j] lives on processor j: column j of the p×p matrix, x[i*p+j].
	cols := make([][]complex128, p)
	for j := 0; j < p; j++ {
		cols[j] = make([]complex128, p)
		for i := 0; i < p; i++ {
			cols[j][i] = input[i*p+j]
		}
	}
	rows := make([][]complex128, p) // after the exchange: row i on proc i

	barrier := sim.NewBarrier(p)
	charge := func(th *sim.Thread, proc, cycles int) {
		col.AddCycles(stats.CatUserCode, uint64(cycles))
		th.Exec(mach.Proc(proc), sim.Time(cycles))
	}
	// One message of the transpose traffic, payload sized in points.
	send := func(kind string, src, dst, points, overhead int, deliver func()) {
		payload := make([]uint32, points*ptWords+overhead)
		net.Send(&network.Message{Src: src, Dst: dst, Kind: kind, Payload: payload},
			func(*network.Message) { deliver() })
	}

	for j := 0; j < p; j++ {
		j := j
		eng.Spawn("worker", 0, func(th *sim.Thread) {
			// Step 1: local FFT of this processor's column.
			fft(cols[j])
			charge(th, j, p*flopCyc*4)
			// Step 2: twiddle scaling W^(i*j).
			for i := range cols[j] {
				ang := -2 * math.Pi * float64(i) * float64(j) / float64(n)
				cols[j][i] *= cmplx.Rect(1, ang)
			}
			charge(th, j, p*flopCyc)
			barrier.Arrive(th)

			// Step 3: the exchange. Processor j needs row j: element i of
			// every column. Mechanism choice prices it differently; the
			// data itself moves host-side when each variant completes.
			switch mechanism {
			case "bulk":
				// One block message to each peer (the paper's single
				// data migration): element j of our column to proc i...
				// symmetric all-to-all, one message per (src,dst) pair.
				for dst := 0; dst < p; dst++ {
					if dst != j {
						send("fft-block", j, dst, 1, 1, func() {})
					}
				}
			case "rpc":
				// Fetch each remote point with a call round trip.
				for src := 0; src < p; src++ {
					if src != j {
						done := &sim.Future{}
						send("fft-req", j, src, 0, 4, func() {
							send("fft-pt", src, j, 1, 1, func() { done.Complete(nil) })
						})
						done.Wait(th)
					}
				}
			case "migrate":
				// A gather frame hops owner to owner, growing by one
				// point per hop, then returns home with the full row.
				done := &sim.Future{}
				hop := 0
				carried := 1
				var next func()
				next = func() {
					if hop == p-1 {
						send("fft-return", (j+hop)%p, j, carried, 2, func() { done.Complete(nil) })
						return
					}
					hop++
					carried++
					send("fft-migrate", (j+hop-1)%p, (j+hop)%p, carried, 3, next)
				}
				next()
				done.Wait(th)
			}
			barrier.Arrive(th)

			// Host-side completion of the transpose, then step 4: local
			// FFT of the gathered row.
			rows[j] = make([]complex128, p)
			for i := 0; i < p; i++ {
				rows[j][i] = cols[i][j]
			}
			fft(rows[j])
			charge(th, j, p*flopCyc*4)
			barrier.Arrive(th)
		})
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}

	// Assemble the natural-order spectrum: X[k2 + p*k1] = rows[k2][k1]
	// (four-step output indexing: proc k2 computes the FFT over j1).
	out := make([]complex128, n)
	for k2 := 0; k2 < p; k2++ {
		for k1 := 0; k1 < p; k1++ {
			out[k2+p*k1] = rows[k2][k1]
		}
	}
	return out, eng.Now(), col.TotalMessages(), col.WordsSent
}

func main() {
	input := make([]complex128, n)
	for i := range input {
		input[i] = complex(math.Sin(0.3*float64(i))+0.2*math.Cos(1.7*float64(i)), 0)
	}
	want := dft(input)

	fmt.Printf("%d-point FFT on %d processors (transpose algorithm)\n\n", n, p)
	fmt.Printf("%-10s %10s %10s %8s %10s\n", "exchange", "cycles", "messages", "words", "max error")
	for _, mech := range []string{"bulk", "rpc", "migrate"} {
		got, cycles, msgs, words := transposeFFT(input, mech)
		maxErr := 0.0
		for i := range got {
			if d := cmplx.Abs(got[i] - want[i]); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("%-10s %10d %10d %8d %10.2e\n", mech, cycles, msgs, words, maxErr)
	}
	fmt.Println()
	fmt.Println("exactly the paper's §2.4 point: the FFT moves its data once and every")
	fmt.Println("other access is local, so the plain bulk exchange beats both per-access")
	fmt.Println("RPC and a migrating gather — fancy locality management buys nothing here.")
}
