// Tuning: the paper's §3.1 claim in action — the migration annotation is
// a performance knob, not a semantic one. A two-phase procedure makes
// many accesses to object A and then one access to object B. We try all
// placements of the annotation and show the answer never changes while
// the cost does; the best placement migrates where the access run is
// long (A) and uses RPC where it is short (B).
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"

	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

const (
	accessesA = 12 // long run of accesses to A
	accessesB = 1  // single access to B
	workA     = 20
	workB     = 20
)

type record struct{ hits uint64 }

// phaseReply returns the combined count.
type phaseReply struct{ total uint64 }

func (r *phaseReply) MarshalWords(w *msg.Writer)          { w.PutU64(r.total) }
func (r *phaseReply) UnmarshalWords(rd *msg.Reader) error { r.total = rd.U64(); return rd.Err() }

// plan says where the procedure migrates: at its accesses to A, to B,
// both, or neither (pure RPC).
type plan struct {
	migrateA bool
	migrateB bool
}

func (p plan) String() string {
	switch {
	case p.migrateA && p.migrateB:
		return "migrate at A and at B"
	case p.migrateA:
		return "migrate at A, RPC to B"
	case p.migrateB:
		return "RPC to A, migrate at B"
	default:
		return "RPC everywhere"
	}
}

// phaseCont is the migratable two-phase procedure. Its live variables:
// which phase it is in, the running total, and the object ids.
type phaseCont struct {
	w     *world
	p     plan
	phase uint32 // 0: at A, 1: at B
	total uint64
	a, b  gid.GID
}

func (c *phaseCont) MarshalWords(w *msg.Writer) {
	w.PutU32(boolsToWord(c.p.migrateA, c.p.migrateB))
	w.PutU32(c.phase)
	w.PutU64(c.total)
	w.PutU64(uint64(c.a))
	w.PutU64(uint64(c.b))
}

func (c *phaseCont) UnmarshalWords(r *msg.Reader) error {
	flags := r.U32()
	c.p.migrateA = flags&1 != 0
	c.p.migrateB = flags&2 != 0
	c.phase = r.U32()
	c.total = r.U64()
	c.a = gid.GID(r.U64())
	c.b = gid.GID(r.U64())
	return r.Err()
}

func boolsToWord(a, b bool) uint32 {
	var v uint32
	if a {
		v |= 1
	}
	if b {
		v |= 2
	}
	return v
}

func (c *phaseCont) Run(t *core.Task) {
	w := c.w
	if c.phase == 0 {
		if c.p.migrateA && !t.IsLocal(c.a) {
			t.Migrate(c.a, w.cont, c)
			return
		}
		for i := 0; i < accessesA; i++ {
			c.total += w.touch(t, c.a, w.mTouchA)
		}
		c.phase = 1
	}
	if c.p.migrateB && !t.IsLocal(c.b) {
		t.Migrate(c.b, w.cont, c)
		return
	}
	for i := 0; i < accessesB; i++ {
		c.total += w.touch(t, c.b, w.mTouchB)
	}
	t.Return(&phaseReply{total: c.total})
}

type world struct {
	eng  *sim.Engine
	col  *stats.Collector
	rt   *core.Runtime
	a, b gid.GID

	mTouchA core.MethodID
	mTouchB core.MethodID
	cont    core.ContID
}

// touch performs one access: local when the task is at the object (the
// migrated case), a remote call otherwise.
func (w *world) touch(t *core.Task, g gid.GID, m core.MethodID) uint64 {
	var rep phaseReply
	if err := t.Call(g, m, nil, &rep); err != nil {
		panic(err)
	}
	return rep.total
}

func build() *world {
	eng := sim.NewEngine(11)
	mach := sim.NewMachine(eng, 3) // thread on 0, A on 1, B on 2
	col := stats.NewCollector()
	model := core.Scheme{Mechanism: core.Migrate}.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)
	w := &world{eng: eng, col: col, rt: rt}
	w.a = rt.Objects.New(1, &record{})
	w.b = rt.Objects.New(2, &record{})
	w.mTouchA = rt.RegisterMethod("tuning.touchA", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			rec := self.(*record)
			t.Work(workA)
			rec.hits++
			reply.PutU64(1)
		})
	w.mTouchB = rt.RegisterMethod("tuning.touchB", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			rec := self.(*record)
			t.Work(workB)
			rec.hits++
			reply.PutU64(1)
		})
	w.cont = rt.RegisterCont("tuning.phase",
		func() core.Continuation { return &phaseCont{w: w} })
	return w
}

func main() {
	fmt.Printf("two-phase procedure: %d accesses to A (proc 1), then %d to B (proc 2)\n\n",
		accessesA, accessesB)
	fmt.Printf("%-26s %8s %10s %10s\n", "annotation placement", "result", "cycles", "messages")
	for _, p := range []plan{
		{false, false},
		{false, true},
		{true, false},
		{true, true},
	} {
		w := build()
		var total uint64
		var cycles sim.Time
		w.eng.Spawn("client", 0, func(th *sim.Thread) {
			task := w.rt.NewTask(th, 0)
			start := th.Now()
			var rep phaseReply
			if err := task.Do(&phaseCont{w: w, p: p, a: w.a, b: w.b}, &rep); err != nil {
				panic(err)
			}
			total = rep.total
			cycles = th.Now() - start
		})
		if err := w.eng.Run(); err != nil {
			panic(err)
		}
		fmt.Printf("%-26s %8d %10d %10d\n", p, total, cycles, w.col.TotalMessages())
	}
	fmt.Println()
	fmt.Println("every placement computes the same result; only the cost moves.")
	fmt.Println("changing the annotation is a one-line tuning edit (§3.1).")
}
