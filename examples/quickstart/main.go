// Quickstart: build a small simulated distributed-memory machine, place
// an object on a remote processor, and access it first with RPC and then
// with computation migration, printing what each mechanism cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// account is our object: a balance that can be read and added to.
type account struct{ balance uint64 }

// addArgs is the marshaled argument record for the deposit method — the
// stub a compiler would generate.
type addArgs struct{ amount uint64 }

func (a *addArgs) MarshalWords(w *msg.Writer)         { w.PutU64(a.amount) }
func (a *addArgs) UnmarshalWords(r *msg.Reader) error { a.amount = r.U64(); return r.Err() }

// balanceReply carries the balance back.
type balanceReply struct{ balance uint64 }

func (b *balanceReply) MarshalWords(w *msg.Writer)         { w.PutU64(b.balance) }
func (b *balanceReply) UnmarshalWords(r *msg.Reader) error { b.balance = r.U64(); return r.Err() }

// auditCont is a migratable procedure: it moves to the account and makes
// several accesses locally, then returns the final balance directly to
// the caller. Its fields are the live variables at the migration point.
type auditCont struct {
	rt      *core.Runtime
	contID  core.ContID
	target  gid.GID
	deposit uint64
	rounds  uint32
}

func (c *auditCont) MarshalWords(w *msg.Writer) {
	w.PutU64(uint64(c.target))
	w.PutU64(c.deposit)
	w.PutU32(c.rounds)
}

func (c *auditCont) UnmarshalWords(r *msg.Reader) error {
	c.target = gid.GID(r.U64())
	c.deposit = r.U64()
	c.rounds = r.U32()
	return r.Err()
}

func (c *auditCont) Run(t *core.Task) {
	if !t.IsLocal(c.target) {
		t.Migrate(c.target, c.contID, c) // ship this frame to the data
		return
	}
	acct := t.State(c.target).(*account)
	for i := uint32(0); i < c.rounds; i++ {
		t.Work(25)
		acct.balance += c.deposit
	}
	t.Return(&balanceReply{balance: acct.balance})
}

func run(useMigration bool) (balance uint64, cycles sim.Time, messages, words uint64) {
	eng := sim.NewEngine(1)
	mach := sim.NewMachine(eng, 4)
	col := stats.NewCollector()
	scheme := core.Scheme{Mechanism: core.RPC}
	if useMigration {
		scheme.Mechanism = core.Migrate
	}
	model := scheme.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)

	// The account lives on processor 3; our thread runs on processor 0.
	acct := rt.Objects.New(3, &account{balance: 100})

	deposit := rt.RegisterMethod("account.deposit", false,
		func(t *core.Task, self any, args *msg.Reader, reply *msg.Writer) {
			a := self.(*account)
			t.Work(25)
			a.balance += args.U64()
			reply.PutU64(a.balance)
		})
	var env auditCont
	env.contID = rt.RegisterCont("account.audit",
		func() core.Continuation { return &auditCont{rt: rt, contID: env.contID} })

	const rounds = 5
	eng.Spawn("client", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 0)
		start := th.Now()
		if useMigration {
			var rep balanceReply
			err := task.Do(&auditCont{rt: rt, contID: env.contID,
				target: acct, deposit: 10, rounds: rounds}, &rep)
			if err != nil {
				panic(err)
			}
			balance = rep.balance
		} else {
			var rep balanceReply
			for i := 0; i < rounds; i++ {
				if err := task.Call(acct, deposit, &addArgs{amount: 10}, &rep); err != nil {
					panic(err)
				}
			}
			balance = rep.balance
		}
		cycles = th.Now() - start
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return balance, cycles, col.TotalMessages(), col.WordsSent
}

func main() {
	fmt.Println("five deposits into an account on a remote processor:")
	fmt.Println()
	for _, mode := range []struct {
		name    string
		migrate bool
	}{
		{"RPC (each access remote)", false},
		{"computation migration (frame moves to the data)", true},
	} {
		bal, cyc, msgs, words := run(mode.migrate)
		fmt.Printf("%-50s balance=%d  cycles=%d  messages=%d  words=%d\n",
			mode.name, bal, cyc, msgs, words)
	}
	fmt.Println()
	fmt.Println("same result either way — the annotation changes only performance (§3.1).")
}
