// Autotune: the paper's §6 closes with "we are also developing compiler
// analysis techniques for automatically choosing among the remote access
// mechanisms". This example plays that role: a procedure visits a chain
// of objects, making a different number of consecutive accesses to each.
// The advisor predicts, per object, whether shipping the frame beats
// calling remotely — and the mixed plan it produces beats both pure
// policies.
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"

	"compmig/internal/advisor"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// accesses[i] is how many consecutive accesses the procedure makes to
// object i: some objects are touched once, some hammered.
var accesses = []int{1, 9, 1, 6, 12, 1, 2, 8}

const (
	touchWork = 15
	// The procedure carries a scratch buffer (partial results) as live
	// state: migrating means shipping it on every hop, which is what
	// makes the choice interesting — with a tiny frame, §2.5's model
	// says migration simply always wins.
	scratchWords = 120
)

type item struct{ touches int }

type touchReply struct{ v uint64 }

func (r *touchReply) MarshalWords(w *msg.Writer)          { w.PutU64(r.v) }
func (r *touchReply) UnmarshalWords(rd *msg.Reader) error { r.v = rd.U64(); return rd.Err() }

// visitCont walks the chain under a per-object plan: bit i set means
// "migrate to object i", clear means "access it remotely via RPC".
type visitCont struct {
	env     *env
	plan    uint32
	idx     uint32
	acc     uint64
	scratch []uint32 // live working buffer, travels with the frame
}

func (c *visitCont) MarshalWords(w *msg.Writer) {
	w.PutU32(c.plan)
	w.PutU32(c.idx)
	w.PutU64(c.acc)
	w.PutU32s(c.scratch)
}

func (c *visitCont) UnmarshalWords(r *msg.Reader) error {
	c.plan = r.U32()
	c.idx = r.U32()
	c.acc = r.U64()
	c.scratch = r.U32s()
	return r.Err()
}

func (c *visitCont) Run(t *core.Task) {
	e := c.env
	for int(c.idx) < len(e.items) {
		g := e.items[c.idx]
		migrate := c.plan&(1<<c.idx) != 0
		if migrate && !t.IsLocal(g) {
			t.Migrate(g, e.cont, c)
			return
		}
		n := accesses[c.idx]
		if t.IsLocal(g) {
			it := t.State(g).(*item)
			for k := 0; k < n; k++ {
				t.Work(touchWork)
				it.touches++
				c.acc++
			}
		} else {
			for k := 0; k < n; k++ {
				var rep touchReply
				if err := t.Call(g, e.mTouch, nil, &rep); err != nil {
					panic(err)
				}
				c.acc += rep.v
			}
		}
		c.idx++
	}
	t.Return(&touchReply{v: c.acc})
}

type env struct {
	eng    *sim.Engine
	col    *stats.Collector
	rt     *core.Runtime
	items  []gid.GID
	mTouch core.MethodID
	cont   core.ContID
}

func build() *env {
	eng := sim.NewEngine(2)
	mach := sim.NewMachine(eng, len(accesses)+1)
	col := stats.NewCollector()
	model := core.Scheme{Mechanism: core.Migrate}.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)
	e := &env{eng: eng, col: col, rt: rt}
	for i := range accesses {
		e.items = append(e.items, rt.Objects.New(i+1, &item{}))
	}
	e.mTouch = rt.RegisterMethod("autotune.touch", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			t.Work(touchWork)
			self.(*item).touches++
			reply.PutU64(1)
		})
	e.cont = rt.RegisterCont("autotune.visit",
		func() core.Continuation { return &visitCont{env: e} })
	return e
}

func run(plan uint32) (result uint64, cycles sim.Time, messages uint64) {
	e := build()
	e.eng.Spawn("client", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, 0)
		start := th.Now()
		var rep touchReply
		entry := &visitCont{env: e, plan: plan, scratch: make([]uint32, scratchWords)}
		if err := task.Do(entry, &rep); err != nil {
			panic(err)
		}
		result = rep.v
		cycles = th.Now() - start
	})
	if err := e.eng.Run(); err != nil {
		panic(err)
	}
	return result, cycles, e.col.TotalMessages()
}

func main() {
	adv := advisor.New(core.Scheme{Mechanism: core.Migrate}.Model())

	var advised uint32
	fmt.Println("advisor decisions (per object):")
	for i, n := range accesses {
		p := advisor.SiteProfile{
			AccessesPerVisit: float64(n),
			ArgWords:         0, ReplyWords: 2,
			ContWords:   5 + scratchWords, // plan+idx+acc+len prefix+buffer
			ShortMethod: true, ChainLength: float64(len(accesses)),
		}
		choice := adv.Choose(p)
		if choice == core.Migrate {
			advised |= 1 << i
		}
		fmt.Printf("  object %d: %2d accesses -> %-8v (%s)\n", i, n, choice, adv.Explain(p))
	}
	fmt.Println()

	allRPC := uint32(0)
	allMig := uint32(1<<len(accesses)) - 1
	fmt.Printf("%-18s %8s %10s %10s\n", "plan", "result", "cycles", "messages")
	for _, p := range []struct {
		name string
		plan uint32
	}{
		{"all RPC", allRPC},
		{"all migrate", allMig},
		{"advisor mix", advised},
	} {
		res, cyc, msgs := run(p.plan)
		fmt.Printf("%-18s %8d %10d %10d\n", p.name, res, cyc, msgs)
	}
	fmt.Println()
	fmt.Println("the advisor migrates only where the access run pays for the move.")
}
