package core

import (
	"testing"

	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/sim"
)

// probeCont is the small migrated half: it reads one cell remotely.
type probeCont struct {
	r   *rig
	id  ContID
	cur gid.GID
}

func (c *probeCont) MarshalWords(w *msg.Writer)         { w.PutU64(uint64(c.cur)) }
func (c *probeCont) UnmarshalWords(r *msg.Reader) error { c.cur = gid.GID(r.U64()); return r.Err() }

func (c *probeCont) Run(t *Task) {
	if !t.IsLocal(c.cur) {
		t.Migrate(c.cur, c.id, c)
		return
	}
	st := t.State(c.cur).(*cell)
	t.Work(10)
	t.Return(&cellReply{val: st.val})
}

// heavyResidual is the stay-behind half: it owns a large working buffer
// that never leaves its processor and combines it with the probe result.
type heavyResidual struct {
	r      *rig
	weight uint64
	buf    []uint32 // the big local state that stays home
}

func (h *heavyResidual) MarshalWords(w *msg.Writer) {
	w.PutU64(h.weight)
	w.PutU32s(h.buf)
}

func (h *heavyResidual) UnmarshalWords(r *msg.Reader) error {
	h.weight = r.U64()
	h.buf = r.U32s()
	return r.Err()
}

func (h *heavyResidual) Run(t *Task) { panic("residuals are resumed, not run") }

func (h *heavyResidual) Resume(t *Task, result *msg.Reader) {
	var rep cellReply
	if err := rep.UnmarshalWords(result); err != nil {
		panic(err)
	}
	t.Work(20)
	t.Return(&cellReply{val: rep.val*h.weight + uint64(len(h.buf))})
}

func TestMigratePartialKeepsHeavyStateHome(t *testing.T) {
	r := newRig(t, 3, cost.Software())
	probeID := r.rt.RegisterCont("partial.probe", func() Continuation { return &probeCont{r: r} })
	residID := r.rt.RegisterCont("partial.residual", func() Continuation { return &heavyResidual{r: r} })

	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		id, fut := r.rt.newReply()
		child := &Task{rt: r.rt, th: th, proc: task.proc, reply: replyHandle{proc: 0, id: id}}
		child.MigratePartial(r.cells[2], probeID,
			&probeCont{r: r, id: probeID, cur: r.cells[2]},
			residID, &heavyResidual{r: r, weight: 100, buf: make([]uint32, 500)})
		words := fut.Wait(th).([]uint32)
		var rep cellReply
		if err := msg.Decode(words, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	// cell[2].val = 3; 3*100 + 500 = 800.
	if got != 800 {
		t.Fatalf("got %d, want 800", got)
	}
	// The 500-word buffer never crossed the network: total traffic is the
	// small probe + its reply (and the residual's final local delivery).
	if r.col.WordsSent > 60 {
		t.Errorf("partial migration moved %d words; heavy state leaked onto the wire", r.col.WordsSent)
	}
	if r.col.Messages["migrate"] != 1 || r.col.Messages["reply"] != 1 {
		t.Errorf("messages = %v", r.col.Messages)
	}
}

func TestMigratePartialLocalInline(t *testing.T) {
	r := newRig(t, 3, cost.Software())
	probeID := r.rt.RegisterCont("partial.probe2", func() Continuation { return &probeCont{r: r} })
	residID := r.rt.RegisterCont("partial.residual2", func() Continuation { return &heavyResidual{r: r} })

	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 2) // co-located with the target
		id, fut := r.rt.newReply()
		child := &Task{rt: r.rt, th: th, proc: task.proc, reply: replyHandle{proc: 2, id: id}}
		child.MigratePartial(r.cells[2], probeID,
			&probeCont{r: r, id: probeID, cur: r.cells[2]},
			residID, &heavyResidual{r: r, weight: 2, buf: nil})
		words := fut.Wait(th).([]uint32)
		var rep cellReply
		if err := msg.Decode(words, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 6 { // 3*2 + 0
		t.Fatalf("got %d, want 6", got)
	}
	if r.col.TotalMessages() != 0 {
		t.Errorf("local partial migration sent %d messages", r.col.TotalMessages())
	}
}

// TestPartialVsFullFrameTradeoff quantifies the tuning knob: with a
// heavy frame, partial migration moves far fewer words than pushing the
// whole frame along.
func TestPartialVsFullFrameTradeoff(t *testing.T) {
	fullWords := func() uint64 {
		r := newRig(t, 3, cost.Software())
		probeID := r.rt.RegisterCont("pf.probe", func() Continuation { return &probeCont{r: r} })
		residID := r.rt.RegisterCont("pf.resid", func() Continuation { return &heavyResidual{r: r} })
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			id, fut := r.rt.newReply()
			child := &Task{rt: r.rt, th: th, proc: r.m.Proc(0), reply: replyHandle{proc: 0, id: id}}
			child.PushFrame(residID, &heavyResidual{r: r, weight: 1, buf: make([]uint32, 400)})
			(&probeCont{r: r, id: probeID, cur: r.cells[2]}).Run(child)
			fut.Wait(th)
		})
		r.run(t)
		return r.col.WordsSent
	}()
	partialWords := func() uint64 {
		r := newRig(t, 3, cost.Software())
		probeID := r.rt.RegisterCont("pp.probe", func() Continuation { return &probeCont{r: r} })
		residID := r.rt.RegisterCont("pp.resid", func() Continuation { return &heavyResidual{r: r} })
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			id, fut := r.rt.newReply()
			child := &Task{rt: r.rt, th: th, proc: r.m.Proc(0), reply: replyHandle{proc: 0, id: id}}
			child.MigratePartial(r.cells[2], probeID,
				&probeCont{r: r, id: probeID, cur: r.cells[2]},
				residID, &heavyResidual{r: r, weight: 1, buf: make([]uint32, 400)})
			fut.Wait(th)
		})
		r.run(t)
		return r.col.WordsSent
	}()
	if partialWords*4 > fullWords {
		t.Errorf("partial (%d words) not well below full-frame (%d words)", partialWords, fullWords)
	}
}
