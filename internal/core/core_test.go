package core

import (
	"testing"

	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// rig is a small machine with one "cell" object per processor.
type rig struct {
	eng *sim.Engine
	m   *sim.Machine
	col *stats.Collector
	rt  *Runtime

	cells  []gid.GID
	mGet   MethodID
	mAdd   MethodID
	mShort MethodID
	cSum   ContID
}

type cell struct {
	val   uint64
	reads int
}

// cellArg / cellReply are the marshaled argument and result records the
// stub compiler would generate.
type cellArg struct{ delta uint64 }

func (a *cellArg) MarshalWords(w *msg.Writer)         { w.PutU64(a.delta) }
func (a *cellArg) UnmarshalWords(r *msg.Reader) error { a.delta = r.U64(); return r.Err() }

type cellReply struct{ val uint64 }

func (a *cellReply) MarshalWords(w *msg.Writer)         { w.PutU64(a.val) }
func (a *cellReply) UnmarshalWords(r *msg.Reader) error { a.val = r.U64(); return r.Err() }

// sumCont is a migratable procedure: it visits a list of cells in order,
// accumulating their values, migrating to each cell's home processor.
type sumCont struct {
	r     *rig
	idx   uint32
	cells []gid.GID
	acc   uint64
}

// MarshalWords ships only the live variables: the cells not yet visited
// and the running sum — consumed prefix entries are dead and stay home.
func (c *sumCont) MarshalWords(w *msg.Writer) {
	rest := c.cells[c.idx:]
	w.PutU32(uint32(len(rest)))
	for _, g := range rest {
		w.PutU64(uint64(g))
	}
	w.PutU64(c.acc)
}

func (c *sumCont) UnmarshalWords(r *msg.Reader) error {
	c.idx = 0
	c.cells = make([]gid.GID, int(r.U32()))
	for i := range c.cells {
		c.cells[i] = gid.GID(r.U64())
	}
	c.acc = r.U64()
	return r.Err()
}

func (c *sumCont) Run(t *Task) {
	for int(c.idx) < len(c.cells) {
		g := c.cells[c.idx]
		if !t.IsLocal(g) {
			t.Migrate(g, c.r.cSum, c)
			return // frame is dead; the continuation resumes at g's home
		}
		st := t.State(g).(*cell)
		t.Work(10)
		c.acc += st.val
		st.reads++
		c.idx++
	}
	t.Return(&cellReply{val: c.acc})
}

func newRig(t *testing.T, nprocs int, model cost.Model) *rig {
	t.Helper()
	eng := sim.NewEngine(11)
	m := sim.NewMachine(eng, nprocs)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := New(eng, m, net, col, model)
	r := &rig{eng: eng, m: m, col: col, rt: rt}

	r.mGet = rt.RegisterMethod("cell.get", false, func(t *Task, self any, _ *msg.Reader, reply *msg.Writer) {
		c := self.(*cell)
		t.Work(10)
		c.reads++
		reply.PutU64(c.val)
	})
	r.mAdd = rt.RegisterMethod("cell.add", false, func(t *Task, self any, args *msg.Reader, reply *msg.Writer) {
		c := self.(*cell)
		t.Work(10)
		c.val += args.U64()
		reply.PutU64(c.val)
	})
	r.mShort = rt.RegisterMethod("cell.peek", true, func(t *Task, self any, _ *msg.Reader, reply *msg.Writer) {
		reply.PutU64(self.(*cell).val)
	})
	r.cSum = rt.RegisterCont("sum", func() Continuation { return &sumCont{r: r} })

	for p := 0; p < nprocs; p++ {
		r.cells = append(r.cells, rt.Objects.New(p, &cell{val: uint64(p + 1)}))
	}
	return r
}

func (r *rig) run(t *testing.T) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalCallNoMessages(t *testing.T) {
	r := newRig(t, 4, cost.Software())
	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 2)
		var rep cellReply
		if err := task.Call(r.cells[2], r.mGet, nil, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 3 {
		t.Errorf("got %d, want 3", got)
	}
	if r.col.TotalMessages() != 0 {
		t.Errorf("local call sent %d messages", r.col.TotalMessages())
	}
	if r.col.Cycles(stats.CatMarshal) != 0 {
		t.Error("local call charged marshal cycles")
	}
}

func TestRemoteRPCRoundTrip(t *testing.T) {
	r := newRig(t, 4, cost.Software())
	var got uint64
	var elapsed sim.Time
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		start := th.Now()
		var rep cellReply
		if err := task.Call(r.cells[3], r.mAdd, &cellArg{delta: 5}, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
		elapsed = th.Now() - start
	})
	r.run(t)
	if got != 4+5 {
		t.Errorf("got %d, want 9", got)
	}
	if r.col.Messages["rpc"] != 1 || r.col.Messages["reply"] != 1 {
		t.Errorf("messages = %v, want 1 rpc + 1 reply", r.col.Messages)
	}
	// Cost must include two transits, both stub paths, and 10 cycles of
	// user code — i.e. several hundred cycles in the software model.
	if elapsed < 300 {
		t.Errorf("remote RPC took %d cycles, implausibly cheap", elapsed)
	}
	if r.col.Cycles(stats.CatThreadCreation) == 0 {
		t.Error("long method did not charge thread creation")
	}
	// State actually mutated at the home.
	if st := r.rt.Objects.State(r.cells[3]).(*cell); st.val != 9 {
		t.Errorf("remote state = %d", st.val)
	}
}

func TestShortMethodSkipsThreadCreation(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Call(r.cells[1], r.mShort, nil, &rep); err != nil {
			t.Error(err)
		}
	})
	r.run(t)
	if r.col.Cycles(stats.CatThreadCreation) != 0 {
		t.Error("short method charged thread creation")
	}
	if r.col.ShortCalls != 1 {
		t.Errorf("short calls = %d", r.col.ShortCalls)
	}
}

func TestMigrateLocalRunsInline(t *testing.T) {
	r := newRig(t, 4, cost.Software())
	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 1)
		var rep cellReply
		entry := &sumCont{r: r, cells: []gid.GID{r.cells[1]}}
		if err := task.Do(entry, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 2 {
		t.Errorf("got %d, want 2", got)
	}
	if r.col.TotalMessages() != 0 {
		t.Errorf("local migration sent %d messages", r.col.TotalMessages())
	}
	if r.col.MigrationsSent != 0 {
		t.Error("local run counted as migration")
	}
}

// TestMigrationChainShortCircuits is the §2.5 model in miniature: one
// thread visits m remote objects once each; computation migration must
// use exactly m+1 messages (m migrates + 1 direct return), while RPC uses
// 2m.
func TestMigrationChainShortCircuits(t *testing.T) {
	const m = 5
	r := newRig(t, m+1, cost.Software())
	targets := r.cells[1:] // procs 1..5; requester on proc 0
	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		entry := &sumCont{r: r, cells: targets}
		if err := task.Do(entry, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	want := uint64(2 + 3 + 4 + 5 + 6)
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if r.col.Messages["migrate"] != m {
		t.Errorf("migrate messages = %d, want %d", r.col.Messages["migrate"], m)
	}
	if r.col.Messages["reply"] != 1 {
		t.Errorf("reply messages = %d, want 1 (short-circuit return)", r.col.Messages["reply"])
	}
	if r.col.MigrationsSent != m {
		t.Errorf("MigrationsSent = %d", r.col.MigrationsSent)
	}
	// Every cell was actually visited at its home.
	for i, g := range targets {
		if st := r.rt.Objects.State(g).(*cell); st.reads != 1 {
			t.Errorf("cell %d reads = %d, want 1", i, st.reads)
		}
	}
}

// TestRPCVsMigrationMessageCounts reproduces Figure 1's message asymmetry
// inside the runtime: n accesses to each of m remote data items.
func TestRPCVsMigrationMessageCounts(t *testing.T) {
	const mObjs, nAcc = 4, 3

	// RPC: 2*n*m messages.
	r1 := newRig(t, mObjs+1, cost.Software())
	r1.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r1.rt.NewTask(th, 0)
		for _, g := range r1.cells[1:] {
			for a := 0; a < nAcc; a++ {
				var rep cellReply
				if err := task.Call(g, r1.mGet, nil, &rep); err != nil {
					t.Error(err)
				}
			}
		}
	})
	r1.run(t)
	if got := r1.col.TotalMessages(); got != 2*nAcc*mObjs {
		t.Errorf("RPC messages = %d, want %d", got, 2*nAcc*mObjs)
	}

	// Computation migration: the n accesses happen locally after one
	// migration per object: m+1 messages total.
	r2 := newRig(t, mObjs+1, cost.Software())
	var seq []gid.GID
	for _, g := range r2.cells[1:] {
		for a := 0; a < nAcc; a++ {
			seq = append(seq, g)
		}
	}
	r2.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r2.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Do(&sumCont{r: r2, cells: seq}, &rep); err != nil {
			t.Error(err)
		}
	})
	r2.run(t)
	if got := r2.col.TotalMessages(); got != mObjs+1 {
		t.Errorf("CM messages = %d, want %d", got, mObjs+1)
	}
	if r2.col.WordsSent >= r1.col.WordsSent {
		t.Errorf("CM words (%d) not below RPC words (%d)", r2.col.WordsSent, r1.col.WordsSent)
	}
}

func TestMigrationChargesTable5Categories(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Do(&sumCont{r: r, cells: []gid.GID{r.cells[1]}}, &rep); err != nil {
			t.Error(err)
		}
	})
	r.run(t)
	for _, c := range []stats.Category{
		stats.CatSendLinkage, stats.CatSendAllocPacket, stats.CatMessageSend,
		stats.CatMarshal, stats.CatNetworkTransit, stats.CatCopyPacket,
		stats.CatThreadCreation, stats.CatRecvLinkage, stats.CatUnmarshal,
		stats.CatGIDTranslation, stats.CatScheduler, stats.CatForwardingCheck,
		stats.CatRecvAllocPacket, stats.CatUserCode,
	} {
		if r.col.Cycles(c) == 0 {
			t.Errorf("category %v never charged during a migration", c)
		}
	}
}

func TestHardwareModelCheaper(t *testing.T) {
	elapsed := func(model cost.Model) sim.Time {
		r := newRig(t, 6, model)
		var d sim.Time
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := r.rt.NewTask(th, 0)
			start := th.Now()
			var rep cellReply
			if err := task.Do(&sumCont{r: r, cells: r.cells[1:]}, &rep); err != nil {
				t.Error(err)
			}
			d = th.Now() - start
		})
		r.run(t)
		return d
	}
	sw, hw := elapsed(cost.Software()), elapsed(cost.Hardware())
	if hw >= sw {
		t.Errorf("hardware model (%d) not faster than software (%d)", hw, sw)
	}
	saving := float64(sw-hw) / float64(sw)
	if saving < 0.15 || saving > 0.45 {
		t.Errorf("hardware saving = %.0f%%, expected roughly 20-30%%", saving*100)
	}
}

func TestStatePanicsOffHome(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	caught := false
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		defer func() { caught = recover() != nil }()
		task := r.rt.NewTask(th, 0)
		_ = task.State(r.cells[1])
	})
	r.run(t)
	if !caught {
		t.Fatal("State on remote object did not panic")
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	r := newRig(t, 3, cost.Software())
	// A method on cell[1] that itself RPCs cell[2] — the "client stub
	// waits" structure.
	relay := r.rt.RegisterMethod("cell.relay", false, func(t *Task, self any, _ *msg.Reader, reply *msg.Writer) {
		var rep cellReply
		if err := t.Call(r.cells[2], r.mGet, nil, &rep); err != nil {
			panic(err)
		}
		reply.PutU64(rep.val + self.(*cell).val)
	})
	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Call(r.cells[1], relay, nil, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 3+2 {
		t.Errorf("nested call result = %d, want 5", got)
	}
	if r.col.Messages["rpc"] != 2 {
		t.Errorf("rpc messages = %d, want 2", r.col.Messages["rpc"])
	}
}

// TestCallFromContinuation exercises a migrated activation performing a
// blocking RPC (the paper's mixed-mechanism tuning case).
type callCont struct {
	r      *rig
	target gid.GID
	peer   gid.GID
}

func (c *callCont) MarshalWords(w *msg.Writer) {
	w.PutU64(uint64(c.target))
	w.PutU64(uint64(c.peer))
}

func (c *callCont) UnmarshalWords(r *msg.Reader) error {
	c.target = gid.GID(r.U64())
	c.peer = gid.GID(r.U64())
	return r.Err()
}

func (c *callCont) Run(t *Task) {
	if !t.IsLocal(c.target) {
		t.Migrate(c.target, t.rt.ContIDOf("callcont"), c)
		return
	}
	local := t.State(c.target).(*cell).val
	var rep cellReply
	if err := t.Call(c.peer, c.r.mGet, nil, &rep); err != nil {
		panic(err)
	}
	t.Return(&cellReply{val: local + rep.val})
}

func TestCallFromContinuation(t *testing.T) {
	r := newRig(t, 3, cost.Software())
	r.rt.RegisterCont("callcont", func() Continuation { return &callCont{r: r} })
	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		err := task.Do(&callCont{r: r, target: r.cells[1], peer: r.cells[2]}, &rep)
		if err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 2+3 {
		t.Errorf("got %d, want 5", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	trial := func() (uint64, uint64, sim.Time) {
		r := newRig(t, 8, cost.Software())
		for i := 0; i < 4; i++ {
			i := i
			r.eng.Spawn("req", 0, func(th *sim.Thread) {
				task := r.rt.NewTask(th, i)
				for round := 0; round < 3; round++ {
					var rep cellReply
					g := r.cells[(i+round+1)%8]
					if err := task.Call(g, r.mAdd, &cellArg{delta: 1}, &rep); err != nil {
						t.Error(err)
					}
					th.Sleep(sim.Time(r.eng.Rand().Intn(100)))
				}
			})
		}
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return r.col.WordsSent, r.col.TotalCycles(), r.eng.Now()
	}
	w1, c1, t1 := trial()
	w2, c2, t2 := trial()
	if w1 != w2 || c1 != c2 || t1 != t2 {
		t.Fatalf("nondeterministic run: (%d,%d,%d) vs (%d,%d,%d)", w1, c1, t1, w2, c2, t2)
	}
}

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{Scheme{Mechanism: SharedMem}, "SM"},
		{Scheme{Mechanism: RPC}, "RPC"},
		{Scheme{Mechanism: RPC, HWMessaging: true}, "RPC w/HW"},
		{Scheme{Mechanism: RPC, Replication: true}, "RPC w/repl."},
		{Scheme{Mechanism: RPC, Replication: true, HWMessaging: true}, "RPC w/repl. & HW"},
		{Scheme{Mechanism: Migrate}, "CP"},
		{Scheme{Mechanism: Migrate, HWMessaging: true}, "CP w/HW"},
		{Scheme{Mechanism: Migrate, Replication: true, HWMessaging: true}, "CP w/repl. & HW"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestSchemeModel(t *testing.T) {
	plain := Scheme{Mechanism: Migrate}.Model()
	if plain.HWMessaging || plain.HWTranslation {
		t.Error("plain scheme has hardware flags")
	}
	hw := Scheme{Mechanism: Migrate, HWMessaging: true}.Model()
	if !hw.HWMessaging || !hw.HWTranslation {
		t.Error("w/HW scheme should bundle both hardware estimates")
	}
	if hw.SendAllocPacket != 0 || hw.GIDTranslation != 0 {
		t.Error("hardware reductions not applied")
	}
}

func TestTaskAccessors(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	r.eng.Spawn("req", 3, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 1)
		if task.Runtime() != r.rt {
			t.Error("Runtime accessor wrong")
		}
		if task.Thread() != th {
			t.Error("Thread accessor wrong")
		}
		if task.Proc() != 1 {
			t.Error("Proc accessor wrong")
		}
		before := task.Now()
		task.Think(100)
		if task.Now() != before+100 {
			t.Errorf("Think advanced %d cycles", task.Now()-before)
		}
	})
	r.run(t)
}
