package core

import (
	"fmt"

	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
)

// Multi-activation migration — the flexibility §6 calls essential ("we
// are designing annotations to allow a programmer to express migration
// of multiple and partial activations"). A procedure that wants its own
// frame to travel with its callee pushes a Resumable: the continuation
// of the *caller* from the point after the callee returns. Migrations
// then carry the whole pushed-frame stack; a Return pops the top frame
// and resumes it wherever the computation currently is, and only the
// bottom of the migrated stack returns to the original caller.

// Resumable is a caller activation frame that can migrate along with
// its callee. It is a Continuation (so it can be marshaled and
// registered) whose Resume method continues the caller with the
// callee's marshaled result.
type Resumable interface {
	Continuation
	// Resume continues the frame with the callee's result words.
	Resume(t *Task, result *msg.Reader)
}

// pendingFrame is one caller frame riding along with the computation.
type pendingFrame struct {
	id    ContID
	frame Resumable
}

// PushFrame declares that the caller's remaining work (frame) migrates
// together with whatever the task does next — the compiler artifact for
// a multi-frame migration annotation. The frame is resumed, possibly on
// a different processor, when the callee calls Return. The caller must
// tail-run its callee and return immediately (CPS discipline, as with
// Migrate).
func (t *Task) PushFrame(id ContID, frame Resumable) {
	if t.isMethod {
		panic("core: instance method activations may not migrate (§3.1)")
	}
	if int(id) >= len(t.rt.conts) {
		panic(fmt.Sprintf("core: unknown continuation id %d", id))
	}
	t.frames = append(t.frames, pendingFrame{id: id, frame: frame})
}

// FrameDepth returns how many caller frames are currently riding with
// the task (for tests and tracing).
func (t *Task) FrameDepth() int { return len(t.frames) }

// packContHeader squeezes a continuation id and the riding-frame count
// into one wire word (16 bits each).
func packContHeader(id ContID, frames int) uint32 {
	if id >= 1<<16 {
		panic("core: continuation id does not fit header packing")
	}
	if frames < 0 || frames >= 1<<16 {
		panic("core: frame count does not fit header packing")
	}
	return uint32(id)<<16 | uint32(frames)
}

// unpackContHeader reverses packContHeader.
func unpackContHeader(w uint32) (ContID, int) {
	return ContID(w >> 16), int(w & 0xffff)
}

// marshalFrameBodies appends the pending frame stack to a migration
// payload, each frame as (contID, length-prefixed words); the count
// travels packed in the record header.
func (t *Task) marshalFrameBodies(w *msg.Writer) {
	for _, pf := range t.frames {
		w.PutU32(uint32(pf.id))
		w.PutU32s(msg.Encode(pf.frame))
	}
}

// unmarshalFrames reconstructs a frame stack of n entries.
func (rt *Runtime) unmarshalFrames(r *msg.Reader, n int) []pendingFrame {
	frames := make([]pendingFrame, 0, n)
	for i := 0; i < n; i++ {
		id := ContID(r.U32())
		words := r.U32s()
		if int(id) >= len(rt.conts) {
			panic(fmt.Sprintf("core: unknown frame continuation id %d", id))
		}
		c := rt.conts[id].factory()
		f, ok := c.(Resumable)
		if !ok {
			panic("core: migrated frame " + rt.conts[id].name + " is not Resumable")
		}
		if err := msg.Decode(words, f); err != nil {
			panic("core: corrupt frame record: " + err.Error())
		}
		frames = append(frames, pendingFrame{id: id, frame: f})
	}
	return frames
}

// popFrame resumes the topmost riding frame with the result words,
// charging the local linkage a frame switch costs.
func (t *Task) popFrame(resultWords []uint32) {
	pf := t.frames[len(t.frames)-1]
	t.frames = t.frames[:len(t.frames)-1]
	t.th.Exec(t.proc, t.rt.Model.RecvLinkage/2+1)
	pf.frame.Resume(t, msg.NewReader(resultWords))
}

// MigrateThread ships the ENTIRE thread to object g's home — the
// paper's §2.3 comparison point. Semantically it is a Migrate, but the
// message additionally carries the thread's full suspended state
// (stackWords of stack and register context), so the cost scales with
// thread size instead of activation size. Like Migrate, it is
// conditional on locality and the caller must return immediately.
func (t *Task) MigrateThread(g gid.GID, contID ContID, next Continuation, stackWords uint64) {
	if t.migrated {
		panic("core: MigrateThread on a dead frame")
	}
	if t.IsLocal(g) {
		next.Run(t)
		return
	}
	t.migrated = true
	rt := t.rt
	rt.Col.MigrationsSent++

	w := msg.NewWriter(16)
	w.PutU64(uint64(g))
	w.PutU32(packContHeader(contID, len(t.frames)))
	w.PutU32(packLinkage(t.reply.proc, t.reply.id))
	t.marshalFrameBodies(w)
	next.MarshalWords(w)
	// The rest of the thread: stack segment plus register context.
	w.PutRaw(make([]uint32, stackWords))
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords

	t.th.Exec(t.proc, rt.chargeSend(words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: rt.locate(t.proc.ID(), g), Kind: "thread-migrate", Payload: payload},
		rt.deliverMigrate, rt.guard(t.reply.id))
}
