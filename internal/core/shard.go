package core

import (
	"fmt"

	"compmig/internal/sim"
	"compmig/internal/stats"
)

// laneState is one shard lane's slice of the runtime's mutable state:
// its statistics collector, its reply-slot table, and its activation
// count. Every field is touched only while that lane executes — reply
// slots are allocated and completed at the operation's originating
// processor, and charges go to the collector of the processor doing the
// charging — so lanes never contend.
type laneState struct {
	col         *stats.Collector
	replies     map[uint32]*sim.Future
	nextReplyID uint32
	freeIDs     []uint32
	activations uint64
}

// Shard routes the runtime over a lane cluster: cycle charges, message
// counters, reply-slot tables, and activation counts become per-lane
// (cols, by lane index), so the lanes can execute concurrently within a
// synchronization window. The object space, method/continuation tables,
// and location hints stay shared — the first two are immutable after
// setup and the hints are per-processor maps each touched only by its
// own processor's stream. Sharding composes with neither fault
// injection nor partial migration, whose recovery state is global.
func (rt *Runtime) Shard(cl *sim.Cluster, cols []*stats.Collector) {
	if rt.Net.FaultInjector() != nil {
		panic("core: cannot shard a runtime with a fault injector attached")
	}
	if len(cols) != cl.Shards() {
		panic(fmt.Sprintf("core: %d lane collectors for %d shards", len(cols), cl.Shards()))
	}
	rt.cl = cl
	rt.lanes = make([]laneState, cl.Shards())
	for i := range rt.lanes {
		rt.lanes[i] = laneState{col: cols[i], replies: make(map[uint32]*sim.Future)}
	}
	rt.colOf = make([]*stats.Collector, rt.Mach.N())
	for p := range rt.colOf {
		rt.colOf[p] = cols[cl.LaneOf(p)]
	}
}

// colAt returns the collector charges from processor proc's stream go
// to: the lane collector under sharding, the runtime collector serially.
func (rt *Runtime) colAt(proc int) *stats.Collector {
	if rt.colOf != nil {
		return rt.colOf[proc]
	}
	return rt.Col
}

// laneAt returns processor proc's lane state, or nil on a serial runtime.
func (rt *Runtime) laneAt(proc int) *laneState {
	if rt.lanes == nil {
		return nil
	}
	return &rt.lanes[rt.cl.LaneOf(proc)]
}

// newReplyAt allocates a reply slot owned by processor proc's lane (the
// processor the operation's reply will be delivered to). Serially it is
// exactly newReply.
func (rt *Runtime) newReplyAt(proc int) (uint32, *sim.Future) {
	ls := rt.laneAt(proc)
	if ls == nil {
		return rt.newReply()
	}
	var id uint32
	if n := len(ls.freeIDs); n > 0 {
		id = ls.freeIDs[n-1]
		ls.freeIDs = ls.freeIDs[:n-1]
	} else {
		ls.nextReplyID++
		id = ls.nextReplyID
	}
	f := &sim.Future{}
	ls.replies[id] = f
	return id, f
}

// completeReplyAt settles a reply slot owned by processor proc's lane.
// Serially it is exactly completeReply.
func (rt *Runtime) completeReplyAt(proc int, id uint32, words []uint32) {
	ls := rt.laneAt(proc)
	if ls == nil {
		rt.completeReply(id, words)
		return
	}
	f, ok := ls.replies[id]
	if !ok {
		panic(fmt.Sprintf("core: reply id %d unknown or already completed", id))
	}
	delete(ls.replies, id)
	ls.freeIDs = append(ls.freeIDs, id)
	f.Complete(words)
}

// bumpActivations counts a migration activation started on proc.
func (rt *Runtime) bumpActivations(proc int) {
	if ls := rt.laneAt(proc); ls != nil {
		ls.activations++
		return
	}
	rt.Activations++
}

// ActivationsTotal returns migration activations summed across lanes
// (or the serial count when the runtime is not sharded).
func (rt *Runtime) ActivationsTotal() uint64 {
	total := rt.Activations
	for i := range rt.lanes {
		total += rt.lanes[i].activations
	}
	return total
}
