package core

import (
	"testing"

	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/sim"
)

// twoPhase is a caller procedure whose frame migrates along with its
// callee: it sends a sumCont over some cells and, when that returns,
// multiplies the result using a second object — wherever the
// computation happens to be by then.
type twoPhase struct {
	r      *rig
	factor uint64
}

func (p *twoPhase) MarshalWords(w *msg.Writer)         { w.PutU64(p.factor) }
func (p *twoPhase) UnmarshalWords(r *msg.Reader) error { p.factor = r.U64(); return r.Err() }

// Run is unused: twoPhase frames are only ever resumed.
func (p *twoPhase) Run(t *Task) { panic("twoPhase frames are resumed, not run") }

func (p *twoPhase) Resume(t *Task, result *msg.Reader) {
	var rep cellReply
	if err := rep.UnmarshalWords(result); err != nil {
		panic(err)
	}
	t.Return(&cellReply{val: rep.val * p.factor})
}

func TestMultiFrameMigration(t *testing.T) {
	r := newRig(t, 5, cost.Software())
	frameID := r.rt.RegisterCont("twophase", func() Continuation { return &twoPhase{r: r} })

	// Entry: push the caller frame, then tail-run the summing callee.
	entry := r.rt.RegisterCont("twophase.entry", func() Continuation { return &sumCont{r: r} })
	_ = entry

	var got uint64
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		id, fut := r.rt.newReply()
		child := &Task{rt: r.rt, th: th, proc: task.proc,
			reply: replyHandle{proc: 0, id: id}}
		child.PushFrame(frameID, &twoPhase{r: r, factor: 10})
		if child.FrameDepth() != 1 {
			t.Error("frame not pushed")
		}
		(&sumCont{r: r, cells: r.cells[1:4]}).Run(child)
		words := fut.Wait(th).([]uint32)
		var rep cellReply
		if err := msg.Decode(words, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	// Sum of cells 1..3 is 2+3+4 = 9; the riding frame multiplies by 10.
	if got != 90 {
		t.Fatalf("got %d, want 90", got)
	}
	// The frame stack rode inside the migrate messages: 3 migrations,
	// one final reply — the caller-frame resume itself cost no message.
	if r.col.Messages["migrate"] != 3 {
		t.Errorf("migrate messages = %d, want 3", r.col.Messages["migrate"])
	}
	if r.col.Messages["reply"] != 1 {
		t.Errorf("reply messages = %d, want 1", r.col.Messages["reply"])
	}
}

func TestFrameStackGrowsMessage(t *testing.T) {
	// A migration carrying a frame must be strictly bigger on the wire
	// than the same migration without one.
	bare := newRig(t, 2, cost.Software())
	bare.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := bare.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Do(&sumCont{r: bare, cells: bare.cells[1:2]}, &rep); err != nil {
			t.Error(err)
		}
	})
	bare.run(t)

	framed := newRig(t, 2, cost.Software())
	frameID := framed.rt.RegisterCont("grow.frame", func() Continuation { return &twoPhase{r: framed} })
	framed.eng.Spawn("req", 0, func(th *sim.Thread) {
		id, fut := framed.rt.newReply()
		child := &Task{rt: framed.rt, th: th, proc: framed.m.Proc(0),
			reply: replyHandle{proc: 0, id: id}}
		child.PushFrame(frameID, &twoPhase{r: framed, factor: 2})
		(&sumCont{r: framed, cells: framed.cells[1:2]}).Run(child)
		fut.Wait(th)
	})
	framed.run(t)

	if framed.col.WordsSent <= bare.col.WordsSent {
		t.Errorf("framed migration words (%d) not above bare (%d)",
			framed.col.WordsSent, bare.col.WordsSent)
	}
}

func TestThreadMigrationCostsScaleWithStack(t *testing.T) {
	run := func(stackWords uint64) (uint64, sim.Time) {
		r := newRig(t, 3, cost.Software())
		contID := r.rt.ContIDOf("sum")
		var dur sim.Time
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := r.rt.NewTask(th, 0)
			id, fut := r.rt.newReply()
			child := &Task{rt: r.rt, th: th, proc: task.proc,
				reply: replyHandle{proc: 0, id: id}}
			start := th.Now()
			child.MigrateThread(r.cells[1], contID,
				&sumCont{r: r, idx: 0, cells: r.cells[1:2]}, stackWords)
			fut.Wait(th)
			dur = th.Now() - start
		})
		r.run(t)
		return r.col.WordsSent, dur
	}
	smallWords, smallTime := run(8)
	bigWords, bigTime := run(512)
	if bigWords <= smallWords+400 {
		t.Errorf("thread migration words: big=%d small=%d, want ~504 more", bigWords, smallWords)
	}
	if bigTime <= smallTime {
		t.Errorf("thread migration time: big=%d small=%d", bigTime, smallTime)
	}
}

func TestThreadMigrationLocalRunsInline(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	contID := r.rt.ContIDOf("sum")
	r.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 1)
		id, fut := r.rt.newReply()
		child := &Task{rt: r.rt, th: th, proc: task.proc,
			reply: replyHandle{proc: 1, id: id}}
		child.MigrateThread(r.cells[1], contID,
			&sumCont{r: r, cells: []gid.GID{r.cells[1]}}, 256)
		fut.Wait(th)
	})
	r.run(t)
	if r.col.TotalMessages() != 0 {
		t.Errorf("local thread migration sent %d messages", r.col.TotalMessages())
	}
}

func TestActiveMessagesModelCheaper(t *testing.T) {
	am := cost.Software().WithActiveMessages()
	if am.ThreadCreation != 0 {
		t.Error("active messages still create threads")
	}
	sw := cost.Software()
	if am.RecvOverhead(8, false) >= sw.RecvOverhead(8, false) {
		t.Error("active-message receive not cheaper")
	}
	// And it composes with the hardware estimates.
	both := cost.Hardware().WithActiveMessages()
	if both.RecvOverhead(8, false) >= am.RecvOverhead(8, false) {
		t.Error("AM+HW not cheaper than AM alone")
	}
}
