// Package core is the paper's contribution: a Prelude-like object-based
// runtime for a distributed-memory machine offering RPC, data migration
// via cache-coherent shared memory, and computation migration of
// activation frames — plus, as extensions, Emerald-style whole-object
// migration with forwarding, multi-frame migration, and partial-frame
// migration.
//
// The programming model mirrors what the Prelude compiler emits. An
// application procedure that may migrate is written as a chain of
// Continuation records: each record's fields are exactly the live
// variables at the potential migration point, and its Run method is the
// continuation of the procedure from that point (§3.2: "The continuation
// procedure's body is the continuation of the migrating procedure at the
// point of migration; its arguments are the live variables at that
// point"). Go cannot serialize closures, so these records are explicit
// structs with word-level marshalers — the same artifacts the Prelude
// compiler generates from an annotation.
package core

import (
	"fmt"

	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/object"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Mechanism selects how remote accesses are performed.
type Mechanism int

const (
	// RPC performs each access remotely via a call/reply message pair.
	RPC Mechanism = iota
	// Migrate ships the current activation to the data (computation
	// migration).
	Migrate
	// SharedMem leaves the thread in place and accesses data through
	// cache-coherent shared memory (data migration).
	SharedMem
	// ObjMigrate moves whole objects to the accessing processor without
	// replication, as in Emerald — the comparison §4 wanted to run.
	ObjMigrate
)

// String names the mechanism as in the paper's tables.
func (m Mechanism) String() string {
	switch m {
	case RPC:
		return "RPC"
	case Migrate:
		return "CM"
	case SharedMem:
		return "SM"
	case ObjMigrate:
		return "OM"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Scheme is one column of the paper's tables: a mechanism plus optional
// hardware support and software replication.
type Scheme struct {
	Mechanism   Mechanism
	HWMessaging bool // register-mapped network interface estimate [HJ92]
	HWTranslate bool // hardware GID translation estimate [DCC+87]
	Replication bool // software replication of hot objects [WW90]
}

// Name renders the scheme label used in the paper ("CP w/repl. & HW").
func (s Scheme) Name() string {
	n := s.Mechanism.String()
	if s.Mechanism == Migrate {
		n = "CP" // the paper's tables abbreviate computation migration as CP
	}
	switch {
	case s.Replication && s.HWMessaging:
		return n + " w/repl. & HW"
	case s.Replication:
		return n + " w/repl."
	case s.HWMessaging:
		return n + " w/HW"
	default:
		return n
	}
}

// Model returns the cost model implied by the scheme's hardware flags.
func (s Scheme) Model() cost.Model {
	m := cost.Software()
	if s.HWMessaging {
		m = m.WithHWMessaging()
	}
	if s.HWTranslate || s.HWMessaging {
		// The paper's "w/HW" rows bundle both estimates.
		m = m.WithHWTranslation()
	}
	return m
}

// AccessObserver receives host-side notifications about remote accesses
// as the runtime dispatches them. Implementations must be simulation-
// inert: no events, no simulated cycles, no draws from the engine's PRNG
// — an observed run must stay byte-identical to an unobserved one. The
// origin argument is always the processor where the operation's reply
// linkage lives (the processor that started the operation), not the
// processor the hook happens to execute on.
type AccessObserver interface {
	// RemoteCall reports one RPC request/reply pair against object g.
	RemoteCall(origin int, g gid.GID, reqWords, replyWords int, short bool)
	// MigrateHop reports one computation-migration hop toward object g
	// carrying a continuation of contWords payload words.
	MigrateHop(origin int, g gid.GID, contWords int)
	// ObjectPull reports one Emerald-style whole-object move of g to
	// origin carrying stateWords of object state.
	ObjectPull(origin int, g gid.GID, stateWords int)
}

// MethodID names a registered instance method.
type MethodID uint32

// Handler is an instance-method body. It executes at the object's home
// processor with the object's private state; args arrive through the
// word-level reader and results leave through the writer.
type Handler func(t *Task, self any, args *msg.Reader, reply *msg.Writer)

type methodEntry struct {
	name    string
	short   bool // active-message fast path: no handler thread is created
	handler Handler
}

// ContID names a registered continuation procedure.
type ContID uint32

// Continuation is a migratable activation record: its fields are the live
// variables at the migration point and Run is the rest of the procedure.
type Continuation interface {
	msg.Marshaler
	msg.Unmarshaler
	// Run resumes the procedure. It must either call Task.Return exactly
	// once (possibly indirectly through further Migrate calls) before the
	// outermost frame finishes, and must return immediately after a
	// Migrate call that moved the computation away.
	Run(t *Task)
}

type contEntry struct {
	name    string
	factory func() Continuation
}

// Runtime wires the simulated machine, network, cost model, and object
// space into the Prelude-like runtime system.
type Runtime struct {
	Eng     *sim.Engine
	Mach    *sim.Machine
	Net     *network.Network
	Col     *stats.Collector
	Model   cost.Model
	Objects *object.Space

	methods  []methodEntry
	methodID map[string]MethodID
	conts    []contEntry
	contID   map[string]ContID

	replies     map[uint32]*sim.Future
	nextReplyID uint32
	freeIDs     []uint32
	// residuals holds the stay-behind halves of partially migrated
	// activations, keyed by the reply slot their migrated half answers.
	residuals map[uint32]*residualEntry

	// locHints[p] caches processor p's last known locations of objects
	// that have migrated away from their birth home.
	locHints []map[gid.GID]int

	// pins holds per-object pin deadlines: a freshly moved object cannot
	// be fetched away again until its pin expires, so its new holder is
	// guaranteed to get its access in (Emerald-style invocation pinning).
	pins map[gid.GID]sim.Time
	// PinCycles is the pin window applied after each object move.
	PinCycles sim.Time

	// Activations counts migration activations started here (for Table 5
	// averaging); Migrations counts migrate messages sent.
	Activations uint64

	// Obs, when non-nil, is notified of every remote access the runtime
	// dispatches (see AccessObserver). It must be simulation-inert.
	Obs AccessObserver

	// Sharded-engine routing, set by Shard (see shard.go). cl is the lane
	// cluster, lanes holds each lane's private slice of runtime state, and
	// colOf maps processor -> that lane's collector. All nil on a serial
	// runtime.
	cl    *sim.Cluster
	lanes []laneState
	colOf []*stats.Collector
}

// New creates a runtime over an existing machine and network.
func New(eng *sim.Engine, mach *sim.Machine, net *network.Network, col *stats.Collector, model cost.Model) *Runtime {
	return &Runtime{
		Eng: eng, Mach: mach, Net: net, Col: col, Model: model,
		Objects:   object.NewSpace(mach.N()),
		methodID:  make(map[string]MethodID),
		contID:    make(map[string]ContID),
		replies:   make(map[uint32]*sim.Future),
		residuals: make(map[uint32]*residualEntry),
		locHints:  make([]map[gid.GID]int, mach.N()),
		pins:      make(map[gid.GID]sim.Time),
		PinCycles: 200,
	}
}

// RegisterMethod installs an instance method under a unique name. Short
// methods use Prelude's active-message fast path: the handler runs in the
// message dispatch without creating a thread (§4.3), so it must not block.
func (rt *Runtime) RegisterMethod(name string, short bool, h Handler) MethodID {
	if _, dup := rt.methodID[name]; dup {
		panic("core: duplicate method " + name)
	}
	id := MethodID(len(rt.methods))
	rt.methods = append(rt.methods, methodEntry{name: name, short: short, handler: h})
	rt.methodID[name] = id
	return id
}

// RegisterCont installs a continuation procedure type. The factory
// produces an empty record for the receiving side to unmarshal into —
// this is the server stub the Prelude compiler would generate.
func (rt *Runtime) RegisterCont(name string, factory func() Continuation) ContID {
	if _, dup := rt.contID[name]; dup {
		panic("core: duplicate continuation " + name)
	}
	id := ContID(len(rt.conts))
	rt.conts = append(rt.conts, contEntry{name: name, factory: factory})
	rt.contID[name] = id
	return id
}

// ContIDOf looks up a registered continuation by name.
func (rt *Runtime) ContIDOf(name string) ContID {
	id, ok := rt.contID[name]
	if !ok {
		panic("core: unknown continuation " + name)
	}
	return id
}

// newReply allocates a reply slot. IDs are recycled through a free list
// so the live range stays small enough to pack into wire words together
// with the processor number — like real systems' bounded reply-slot
// tables.
func (rt *Runtime) newReply() (uint32, *sim.Future) {
	var id uint32
	if n := len(rt.freeIDs); n > 0 {
		id = rt.freeIDs[n-1]
		rt.freeIDs = rt.freeIDs[:n-1]
	} else {
		rt.nextReplyID++
		id = rt.nextReplyID
	}
	f := &sim.Future{}
	rt.replies[id] = f
	return id, f
}

func (rt *Runtime) completeReply(id uint32, words []uint32) {
	f, ok := rt.replies[id]
	if !ok {
		if inj := rt.Net.FaultInjector(); inj != nil {
			// Under faults a reply can outlive its slot: the request's
			// sender gave up (every ack lost) but the request did land and
			// the handler answered anyway.
			inj.Counters.LateReplies++
			return
		}
		panic(fmt.Sprintf("core: reply id %d unknown or already completed", id))
	}
	delete(rt.replies, id)
	if rt.Net.FaultInjector() == nil {
		// Under faults ids are not recycled: a retransmitted reply could
		// otherwise land after its id was reissued and complete the wrong
		// slot. The 20-bit id space outlasts any bounded run.
		rt.freeIDs = append(rt.freeIDs, id)
	}
	if ent, pending := rt.residuals[id]; pending {
		// The reply belongs to a partially migrated activation: wake its
		// stay-behind half instead of a waiting future.
		delete(rt.residuals, id)
		rt.resumeResidual(ent, words)
		return
	}
	f.Complete(words)
}

// failReply settles a reply slot with an error (the reliability layer
// gave up on a message the slot was waiting on). An already-settled
// slot is left alone: a late delivery may have won the race.
func (rt *Runtime) failReply(id uint32, err error) {
	f, ok := rt.replies[id]
	if !ok {
		return
	}
	delete(rt.replies, id)
	if _, pending := rt.residuals[id]; pending {
		// The stay-behind half of a partially migrated activation holds
		// processor state that only its reply can release; there is no
		// caller to hand the error to.
		panic(fmt.Sprintf("core: unrecoverable loss of reply %d owed to a partially migrated activation: %v", id, err))
	}
	f.Complete(err)
}

// guard returns the reliability layer's give-up callback for a reply
// slot, or nil on a fault-free network so the hot path allocates no
// closure.
func (rt *Runtime) guard(id uint32) func(*fault.GiveUpError) {
	if rt.Net.FaultInjector() == nil {
		return nil
	}
	return func(err *fault.GiveUpError) { rt.failReply(id, err) }
}

// waitWords blocks on a reply future and splits the outcome: reply
// words on success, the recovery error when the runtime gave up on a
// lost message.
func waitWords(fut *sim.Future, th *sim.Thread) ([]uint32, error) {
	switch v := fut.Wait(th).(type) {
	case nil:
		return nil, nil
	case []uint32:
		return v, nil
	case error:
		return nil, v
	default:
		panic(fmt.Sprintf("core: reply future completed with unexpected %T", v))
	}
}

// packLinkage squeezes a reply handle into one wire word: 12 bits of
// processor, 20 bits of recycled reply id.
func packLinkage(proc int, id uint32) uint32 {
	if proc < 0 || proc >= 1<<12 {
		panic(fmt.Sprintf("core: processor %d does not fit linkage packing", proc))
	}
	if id >= 1<<20 {
		panic(fmt.Sprintf("core: reply id %d does not fit linkage packing", id))
	}
	return uint32(proc)<<20 | id
}

// unpackLinkage reverses packLinkage.
func unpackLinkage(w uint32) (proc int, id uint32) {
	return int(w >> 20), w & (1<<20 - 1)
}

// WipeVolatile discards processor proc's volatile runtime state when a
// loss-inducing crash (a wipe fault window) hits it: the location-hint
// cache is cleared — hints are rediscovered through forwarding, exactly
// as after a cold start. Reply slots and residuals are origin-side
// state and live on the processors that issued the requests; requests
// the wiped processor owed answers to resolve through the reliability
// layer's retransmission and give-up machinery. It returns the number
// of live objects currently homed on proc, which recovery must
// re-register from the durable log.
func (rt *Runtime) WipeVolatile(proc int) int {
	rt.locHints[proc] = nil
	return rt.Objects.HomedAt(proc)
}

// chargeSend accounts the client-stub send path for a payload of words
// 32-bit words and returns its total cycle cost.
func (rt *Runtime) chargeSend(words uint64) uint64 {
	return rt.chargeSendTo(rt.Col, words)
}

// chargeSendTo is chargeSend with the charges routed to an explicit
// collector — the sending processor's lane collector under sharding.
func (rt *Runtime) chargeSendTo(col *stats.Collector, words uint64) uint64 {
	m := rt.Model
	col.AddCycles(stats.CatSendLinkage, m.SendLinkage)
	col.AddCycles(stats.CatSendAllocPacket, m.SendAllocPacket)
	col.AddCycles(stats.CatMessageSend, m.MessageSend)
	col.AddCycles(stats.CatMarshal, m.Marshal(words))
	return m.SendLinkage + m.SendAllocPacket + m.MessageSend + m.Marshal(words)
}

// chargeRecv accounts the server-side receive path (dispatch of an rpc or
// migrate message) and returns its total cycle cost.
func (rt *Runtime) chargeRecv(words uint64, short bool) uint64 {
	return rt.chargeRecvTo(rt.Col, words, short)
}

// chargeRecvTo is chargeRecv with the charges routed to an explicit
// collector — the receiving processor's lane collector under sharding.
func (rt *Runtime) chargeRecvTo(col *stats.Collector, words uint64, short bool) uint64 {
	m := rt.Model
	col.AddCycles(stats.CatCopyPacket, m.CopyPacket(words))
	col.AddCycles(stats.CatRecvLinkage, m.RecvLinkage)
	col.AddCycles(stats.CatUnmarshal, m.Unmarshal(words))
	col.AddCycles(stats.CatGIDTranslation, m.GIDTranslation)
	col.AddCycles(stats.CatScheduler, m.Scheduler)
	col.AddCycles(stats.CatForwardingCheck, m.ForwardingCheck)
	col.AddCycles(stats.CatRecvAllocPacket, m.RecvAllocPacket)
	total := m.CopyPacket(words) + m.RecvLinkage + m.Unmarshal(words) +
		m.GIDTranslation + m.Scheduler + m.ForwardingCheck + m.RecvAllocPacket
	if !short {
		col.AddCycles(stats.CatThreadCreation, m.ThreadCreation)
		total += m.ThreadCreation
	}
	return total
}

// ChargeSendPath exposes the client-stub send-path accounting to sibling
// runtime layers (the replication package prices its update broadcasts
// through the same model).
func (rt *Runtime) ChargeSendPath(words uint64) uint64 { return rt.chargeSend(words) }

// ChargeRecvReplyPath exposes the light receive-path accounting.
func (rt *Runtime) ChargeRecvReplyPath(words uint64) uint64 { return rt.chargeRecvReply(words) }

// chargeRecvReply accounts the client-stub path for an incoming reply.
// Prelude dispatches replies through the same general-purpose stubs as
// requests (§4.3), so the path pays copy, linkage, unmarshal, packet
// bookkeeping, and the scheduler wakeup — everything but object-ID
// translation, the forwarding check, and handler-thread creation.
func (rt *Runtime) chargeRecvReply(words uint64) uint64 {
	return rt.chargeRecvReplyTo(rt.Col, words)
}

// chargeRecvReplyTo is chargeRecvReply with the charges routed to an
// explicit collector.
func (rt *Runtime) chargeRecvReplyTo(col *stats.Collector, words uint64) uint64 {
	m := rt.Model
	col.AddCycles(stats.CatCopyPacket, m.CopyPacket(words))
	col.AddCycles(stats.CatRecvLinkage, m.RecvLinkage)
	col.AddCycles(stats.CatUnmarshal, m.Unmarshal(words))
	col.AddCycles(stats.CatScheduler, m.Scheduler)
	col.AddCycles(stats.CatRecvAllocPacket, m.RecvAllocPacket)
	return m.CopyPacket(words) + m.RecvLinkage + m.Unmarshal(words) +
		m.Scheduler + m.RecvAllocPacket
}
