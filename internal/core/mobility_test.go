package core

import (
	"testing"

	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/sim"
)

func TestPullObjectMovesState(t *testing.T) {
	r := newRig(t, 4, cost.Software())
	g := r.cells[3]
	r.eng.Spawn("puller", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		if task.IsLocal(g) {
			t.Error("object local before pull")
		}
		task.PullObject(g, 16)
		if !task.IsLocal(g) {
			t.Error("object not local after pull")
		}
		// Local access now works without messages.
		before := r.col.TotalMessages()
		var rep cellReply
		if err := task.Call(g, r.mGet, nil, &rep); err != nil {
			t.Error(err)
		}
		if rep.val != 4 {
			t.Errorf("state lost in move: %d", rep.val)
		}
		if r.col.TotalMessages() != before {
			t.Error("local call after pull sent messages")
		}
	})
	r.run(t)
	if r.rt.Objects.Home(g) != 0 {
		t.Errorf("object home = %d, want 0", r.rt.Objects.Home(g))
	}
	if !r.rt.Objects.HasMoved(g) {
		t.Error("HasMoved false after pull")
	}
	// Fetch + move = two messages.
	if r.col.Messages["obj-fetch"] != 1 || r.col.Messages["obj-move"] != 1 {
		t.Errorf("messages = %v", r.col.Messages)
	}
}

func TestPullLocalIsNoop(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	r.eng.Spawn("puller", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 1)
		task.PullObject(r.cells[1], 16)
	})
	r.run(t)
	if r.col.TotalMessages() != 0 {
		t.Errorf("local pull sent %d messages", r.col.TotalMessages())
	}
}

// TestRPCForwardsToMovedObject: a call addressed with a stale location is
// forwarded by the old home and still completes; the caller learns the
// new location so the next call goes direct.
func TestRPCForwardsToMovedObject(t *testing.T) {
	r := newRig(t, 4, cost.Software())
	g := r.cells[3]
	done := &sim.Future{}
	r.eng.Spawn("mover", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 2)
		task.PullObject(g, 8) // object now lives on proc 2
		done.Complete(nil)
	})
	var first, second uint64
	r.eng.Spawn("caller", 0, func(th *sim.Thread) {
		done.Wait(th)
		task := r.rt.NewTask(th, 0)
		// Proc 0 has no hint: addresses proc 3, which must forward.
		var rep cellReply
		if err := task.Call(g, r.mAdd, &cellArg{delta: 1}, &rep); err != nil {
			t.Error(err)
		}
		first = r.col.Forwards
		// Second call: the caller learned the location, no forward.
		if err := task.Call(g, r.mAdd, &cellArg{delta: 1}, &rep); err != nil {
			t.Error(err)
		}
		second = r.col.Forwards
	})
	r.run(t)
	if first != 1 {
		t.Errorf("first call forwards = %d, want 1", first)
	}
	if second != first {
		t.Errorf("second call forwarded again (%d -> %d): location not learned", first, second)
	}
	// The object's state was updated at its new home.
	if st := r.rt.Objects.State(g).(*cell); st.val != 4+2 {
		t.Errorf("state = %d, want 6", st.val)
	}
}

// TestMigrationForwardsToMovedObject: a computation migration chasing a
// moved object is forwarded and still produces the right answer with a
// short-circuited return.
func TestMigrationForwardsToMovedObject(t *testing.T) {
	r := newRig(t, 5, cost.Software())
	g := r.cells[4]
	done := &sim.Future{}
	r.eng.Spawn("mover", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 1)
		task.PullObject(g, 8)
		done.Complete(nil)
	})
	var got uint64
	r.eng.Spawn("walker", 0, func(th *sim.Thread) {
		done.Wait(th)
		task := r.rt.NewTask(th, 0)
		var rep cellReply
		if err := task.Do(&sumCont{r: r, cells: []gid.GID{g}}, &rep); err != nil {
			t.Error(err)
		}
		got = rep.val
	})
	r.run(t)
	if got != 5 {
		t.Errorf("sum = %d, want 5", got)
	}
	if r.col.Forwards != 1 {
		t.Errorf("forwards = %d, want 1", r.col.Forwards)
	}
}

func TestObjectPingPong(t *testing.T) {
	// Two processors repeatedly pull the same object back and forth: the
	// write-shared pathology of whole-object migration (§2.2's "data
	// migration can perform poorly ... for write-shared data").
	r := newRig(t, 3, cost.Software())
	g := r.cells[2]
	const rounds = 10
	for p := 0; p < 2; p++ {
		p := p
		r.eng.Spawn("puller", sim.Time(p*7), func(th *sim.Thread) {
			task := r.rt.NewTask(th, p)
			for i := 0; i < rounds; i++ {
				for !task.IsLocal(g) {
					task.PullObject(g, 32)
				}
				// Touch the object locally (no yield between the check
				// and the access, so locality holds).
				r.rt.Objects.State(g).(*cell).reads++
				th.Sleep(50)
			}
		})
	}
	r.run(t)
	if got := r.rt.Objects.State(g).(*cell).reads; got != 2*rounds {
		t.Errorf("touches = %d, want %d", got, 2*rounds)
	}
	if r.col.Messages["obj-move"] < rounds/2 {
		t.Errorf("object moved only %d times; expected ping-pong", r.col.Messages["obj-move"])
	}
}

func TestLinkagePacking(t *testing.T) {
	for _, c := range []struct {
		proc int
		id   uint32
	}{{0, 1}, {87, 1023}, {4095, 1<<20 - 1}} {
		p, id := unpackLinkage(packLinkage(c.proc, c.id))
		if p != c.proc || id != c.id {
			t.Errorf("linkage round trip (%d,%d) -> (%d,%d)", c.proc, c.id, p, id)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized proc accepted")
		}
	}()
	packLinkage(1<<12, 0)
}

func TestContHeaderPacking(t *testing.T) {
	id, n := unpackContHeader(packContHeader(ContID(513), 7))
	if id != 513 || n != 7 {
		t.Errorf("cont header round trip -> (%d,%d)", id, n)
	}
}

func TestReplyIDsRecycled(t *testing.T) {
	r := newRig(t, 2, cost.Software())
	r.eng.Spawn("caller", 0, func(th *sim.Thread) {
		task := r.rt.NewTask(th, 0)
		for i := 0; i < 500; i++ {
			var rep cellReply
			if err := task.Call(r.cells[1], r.mGet, nil, &rep); err != nil {
				t.Error(err)
			}
		}
	})
	r.run(t)
	if r.rt.nextReplyID > 4 {
		t.Errorf("500 sequential calls consumed %d reply ids; free list not reused", r.rt.nextReplyID)
	}
}
