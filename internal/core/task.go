package core

import (
	"fmt"

	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// replyHandle is the linkage information that travels with a migrating
// computation: where the operation's final result must be delivered. It
// is what lets a chain of migrations "in the end return directly to its
// caller" (§3.2).
type replyHandle struct {
	proc int
	id   uint32
}

// Task is an executing activation: a simulated thread positioned on a
// processor, plus the linkage for the current operation's result. A Task
// moves when the computation migrates.
type Task struct {
	rt   *Runtime
	th   *sim.Thread
	proc *sim.Proc

	reply    replyHandle
	atBase   bool // true for a remote activation (frame at the base of its stack)
	isMethod bool // true inside an instance-method handler
	migrated bool // set once the activation has migrated away
	returned bool // set once Return has delivered the result

	// frames are caller activations riding along with the computation
	// (multi-activation migration; see frames.go).
	frames []pendingFrame
}

// NewTask binds a requester thread running on processor proc.
func (rt *Runtime) NewTask(th *sim.Thread, proc int) *Task {
	return &Task{rt: rt, th: th, proc: rt.Mach.Proc(proc)}
}

// Runtime returns the owning runtime.
func (t *Task) Runtime() *Runtime { return t.rt }

// Thread returns the simulated thread currently backing this task.
func (t *Task) Thread() *sim.Thread { return t.th }

// Proc returns the processor the task is currently executing on.
func (t *Task) Proc() int { return t.proc.ID() }

// Now returns the simulated time.
func (t *Task) Now() sim.Time { return t.th.Now() }

// Work charges n cycles of application computation on the current
// processor (Table 5 "User code").
func (t *Task) Work(n uint64) {
	t.rt.colAt(t.proc.ID()).AddCycles(stats.CatUserCode, n)
	t.th.Exec(t.proc, n)
}

// Think suspends the task without occupying the processor (the paper's
// "think time" between requests).
func (t *Task) Think(n uint64) { t.th.Sleep(n) }

// IsLocal reports whether object g currently lives on this processor —
// the check the runtime performs on every instance method call. It
// consults the object table, so it stays authoritative after the object
// migrates.
func (t *Task) IsLocal(g gid.GID) bool { return t.rt.Objects.Home(g) == t.proc.ID() }

// State returns the private state of a local object. It panics when
// invoked away from the object's home: instance state may only be touched
// by code running at the object ("instance methods always execute at the
// object on which they are invoked", §3.1).
func (t *Task) State(g gid.GID) any {
	if !t.IsLocal(g) {
		panic(fmt.Sprintf("core: touching state of object on proc %d from proc %d",
			t.rt.Objects.Home(g), t.proc.ID()))
	}
	return t.rt.Objects.State(g)
}

// Do executes a migratable procedure. The entry continuation starts on
// the current processor (procedures begin where they are called) and may
// migrate any number of times; Do blocks until some hop calls Return,
// then decodes the result into out (which may be nil when the procedure
// returns no values).
func (t *Task) Do(entry Continuation, out msg.Unmarshaler) error {
	if t.isMethod {
		panic("core: instance method activations may not start migratable procedures")
	}
	id, fut := t.rt.newReplyAt(t.proc.ID())
	child := &Task{rt: t.rt, th: t.th, proc: t.proc, reply: replyHandle{proc: t.proc.ID(), id: id}}
	entry.Run(child)
	// Either the procedure completed locally (future already done) or it
	// migrated away and this thread is now the waiting client stub.
	words, err := waitWords(fut, t.th)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return msg.Decode(words, out)
}

// Migrate moves the remainder of the current procedure to object g's
// home processor. Migration is conditional on location (§3.1): when g is
// local the continuation simply runs here, at zero added cost. Otherwise
// next's live variables are marshaled into a single message, the current
// frame dies, and a fresh activation continues at the destination. The
// caller must return immediately after Migrate.
func (t *Task) Migrate(g gid.GID, contID ContID, next Continuation) {
	if t.isMethod {
		panic("core: instance method activations may not migrate (§3.1)")
	}
	if t.migrated {
		panic("core: Migrate on a dead frame (missing return after Migrate?)")
	}
	if t.IsLocal(g) {
		next.Run(t)
		return
	}
	t.migrated = true
	rt := t.rt
	rt.colAt(t.proc.ID()).MigrationsSent++
	if rt.Eng.Tracing() {
		rt.Eng.Tracef("migrate", "frame -> p%d (obj %#x)", rt.Objects.Home(g), uint64(g))
	}

	// Build the wire record: target object + continuation id + linkage +
	// any riding caller frames + live variables. The target GID is what
	// the receiving runtime translates and forward-checks (Table 5).
	w := msg.NewWriter(10)
	w.PutU64(uint64(g))
	w.PutU32(packContHeader(contID, len(t.frames)))
	w.PutU32(packLinkage(t.reply.proc, t.reply.id))
	t.marshalFrameBodies(w)
	next.MarshalWords(w)
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords
	if rt.Obs != nil {
		// The reply linkage identifies the operation's originating
		// processor regardless of how many hops the chain has taken.
		rt.Obs.MigrateHop(t.reply.proc, g, len(payload))
	}

	// Client-stub send path runs on the current processor.
	t.th.Exec(t.proc, rt.chargeSendTo(rt.colAt(t.proc.ID()), words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: rt.locate(t.proc.ID(), g), Kind: "migrate", Payload: payload},
		rt.deliverMigrate, rt.guard(t.reply.id))
	// The frame at this processor is now dead. If it was itself a remote
	// activation, the thread is destroyed when Run returns; if it was the
	// original caller's frame, Do is waiting on the reply future.
}

// deliverMigrate is the server stub for an arriving migration: it charges
// the receive path on the destination processor, creates the activation
// thread, reconstructs the continuation record, and resumes it.
func (rt *Runtime) deliverMigrate(m *network.Message) {
	target := gid.GID(msg.NewReader(m.Payload).U64())
	if actual := rt.Objects.Home(target); actual != m.Dst {
		rt.forward(m, actual, rt.deliverMigrate)
		return
	}
	dst := rt.Mach.Proc(m.Dst)
	words := uint64(len(m.Payload)) + network.HeaderWords
	overhead := rt.chargeRecvTo(rt.colAt(m.Dst), words, false)
	dst.ExecAsync(overhead, func() {
		rt.bumpActivations(m.Dst)
		dst.Spawn("activation", 0, func(th *sim.Thread) {
			r := msg.NewReader(m.Payload)
			r.U64() // target gid, checked before dispatch
			contID, nframes := unpackContHeader(r.U32())
			proc, id := unpackLinkage(r.U32())
			rh := replyHandle{proc: proc, id: id}
			if int(contID) >= len(rt.conts) {
				panic(fmt.Sprintf("core: unknown continuation id %d", contID))
			}
			frames := rt.unmarshalFrames(r, nframes)
			next := rt.conts[contID].factory()
			if err := next.UnmarshalWords(r); err != nil {
				panic("core: corrupt continuation record: " + err.Error())
			}
			if err := r.Err(); err != nil {
				panic("core: continuation payload mismatch: " + err.Error())
			}
			// A thread migration carries the rest of the thread's state as
			// trailing words; a plain migration must consume everything.
			if m.Kind != "thread-migrate" && r.Remaining() != 0 {
				panic(fmt.Sprintf("core: %d trailing words in migration payload", r.Remaining()))
			}
			task := &Task{rt: rt, th: th, proc: dst, reply: rh, atBase: true, frames: frames}
			next.Run(task)
			if !task.migrated && !task.returned {
				panic("core: activation " + rt.conts[contID].name + " finished without Return or Migrate")
			}
			// Activation thread dies here — the paper's "destroy the
			// original thread" for frames at the base of their stack.
		})
	})
}

// Return delivers the procedure's result to the operation's caller. When
// the computation has migrated, this short-circuits: one message travels
// directly from the final processor to the original caller, skipping
// every intermediate hop.
func (t *Task) Return(result msg.Marshaler) {
	if t.returned {
		panic("core: double Return")
	}
	rt := t.rt
	var resultWords []uint32
	if result != nil {
		resultWords = msg.Encode(result)
	}
	if len(t.frames) > 0 {
		// A caller frame migrated along with this computation: resume it
		// here instead of returning — no message at all.
		t.popFrame(resultWords)
		return
	}
	t.returned = true
	if t.reply.proc == t.proc.ID() {
		// Local completion: the procedure never left (or returned home);
		// results pass in registers, no messages.
		rt.completeReplyAt(t.proc.ID(), t.reply.id, resultWords)
		return
	}
	w := msg.NewWriter(1 + len(resultWords))
	w.PutU32(t.reply.id)
	w.PutRaw(resultWords)
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords
	t.th.Exec(t.proc, rt.chargeSendTo(rt.colAt(t.proc.ID()), words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: t.reply.proc, Kind: "reply", Payload: payload},
		rt.deliverReply, rt.guard(t.reply.id))
}

// deliverReply is the client-stub receive path for a returning result.
func (rt *Runtime) deliverReply(m *network.Message) {
	dst := rt.Mach.Proc(m.Dst)
	words := uint64(len(m.Payload)) + network.HeaderWords
	overhead := rt.chargeRecvReplyTo(rt.colAt(m.Dst), words)
	dst.ExecAsync(overhead, func() {
		r := msg.NewReader(m.Payload)
		id := r.U32()
		rest := make([]uint32, r.Remaining())
		copy(rest, m.Payload[1:])
		rt.completeReplyAt(m.Dst, id, rest)
	})
}
