package core

import (
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/stats"
)

// Object mobility — the Emerald-style mechanism the paper wanted to
// compare against ("our group has not finished implementing object
// migration in Prelude yet", §4). Objects can relocate; senders address
// messages at their last known location, and a message that arrives
// where the object no longer lives is forwarded — which is what the
// Table 5 "forwarding check" on every receive path is for.

// locate returns proc's best guess of g's home: a learned location if
// one is cached, the birth processor otherwise.
func (rt *Runtime) locate(proc int, g gid.GID) int {
	if hints := rt.locHints[proc]; hints != nil {
		if h, ok := hints[g]; ok {
			return h
		}
	}
	return g.Home()
}

// learn records a location hint for proc (piggybacked on replies and
// completed pulls in a real system).
func (rt *Runtime) learn(proc int, g gid.GID, home int) {
	if home == g.Home() {
		if hints := rt.locHints[proc]; hints != nil {
			delete(hints, g)
		}
		return
	}
	if rt.locHints[proc] == nil {
		rt.locHints[proc] = make(map[gid.GID]int)
	}
	rt.locHints[proc][g] = home
}

// forward re-sends a message that arrived at a stale location toward the
// object's current home, charging the forwarding path on the stale
// processor.
func (rt *Runtime) forward(m *network.Message, actual int, arrive func(*network.Message)) {
	rt.Col.Forwards++
	stale := rt.Mach.Proc(m.Dst)
	cost := rt.Model.ForwardingCheck + rt.Model.MessageSend
	rt.Col.AddCycles(stats.CatForwardingCheck, rt.Model.ForwardingCheck)
	rt.Col.AddCycles(stats.CatMessageSend, rt.Model.MessageSend)
	stale.ExecAsync(cost, func() {
		rt.Net.Send(&network.Message{Src: m.Dst, Dst: actual, Kind: m.Kind, Payload: m.Payload}, arrive)
	})
}

// PullObject relocates object g to the calling task's processor —
// whole-object data migration without replication, as in Emerald. The
// object's state (stateWords on the wire) travels in one message after
// a fetch request; subsequent accesses from this processor are local
// until someone else pulls the object away. No-op when already local.
// The error is non-nil only when a fault plan is active and the
// recovery protocol gave up on the fetch (a *fault.GiveUpError).
func (t *Task) PullObject(g gid.GID, stateWords uint64) error {
	rt := t.rt
	if rt.Objects.Home(g) == t.proc.ID() {
		return nil
	}
	id, fut := rt.newReply()
	w := msg.NewWriter(5)
	w.PutU64(uint64(g))
	w.PutU32(packLinkage(t.proc.ID(), id))
	w.PutU32(uint32(stateWords))
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords

	t.th.Exec(t.proc, rt.chargeSend(words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: rt.locate(t.proc.ID(), g), Kind: "obj-fetch", Payload: payload},
		rt.deliverFetch, rt.guard(id))
	if _, err := waitWords(fut, t.th); err != nil {
		return err
	}
	if rt.Obs != nil {
		rt.Obs.ObjectPull(t.proc.ID(), g, int(stateWords))
	}
	rt.learn(t.proc.ID(), g, t.proc.ID())
	return nil
}

// deliverFetch handles an object-fetch at (what the sender believed was)
// the object's home: forward if the object moved on, wait out the pin
// window if the object just arrived (Emerald pins an object while an
// invocation runs on it, which also prevents two pullers live-locking by
// stealing it back and forth before either touches it), and otherwise
// ship the object's state to the requester.
func (rt *Runtime) deliverFetch(m *network.Message) {
	r := msg.NewReader(m.Payload)
	g := gid.GID(r.U64())
	requester, replyID := unpackLinkage(r.U32())
	stateWords := uint64(r.U32())

	actual := rt.Objects.Home(g)
	if actual != m.Dst {
		rt.forward(m, actual, rt.deliverFetch)
		return
	}
	if until, pinned := rt.pins[g]; pinned && until > rt.Eng.Now() {
		rt.Eng.Schedule(until-rt.Eng.Now(), func() { rt.deliverFetch(m) })
		return
	}
	here := rt.Mach.Proc(m.Dst)
	words := uint64(len(m.Payload)) + network.HeaderWords
	overhead := rt.chargeRecv(words, true)
	here.ExecAsync(overhead, func() {
		// Move now: accesses racing in behind us forward to the new home.
		// The object arrives pinned so its new holder gets to use it.
		rt.Objects.Move(g, requester)
		rt.pins[g] = rt.Eng.Now() + rt.PinCycles
		w := msg.NewWriter(int(stateWords) + 3)
		w.PutU32(replyID)
		w.PutU64(uint64(g))
		w.PutRaw(make([]uint32, stateWords))
		payload := w.Words()
		outWords := uint64(len(payload)) + network.HeaderWords
		rt.Col.AddCycles(stats.CatMarshal, rt.Model.Marshal(outWords))
		rt.Col.AddCycles(stats.CatMessageSend, rt.Model.MessageSend)
		here.ExecAsync(rt.Model.Marshal(outWords)+rt.Model.MessageSend, func() {
			rt.Net.SendGuarded(&network.Message{Src: m.Dst, Dst: requester, Kind: "obj-move", Payload: payload},
				rt.deliverObject, rt.guard(replyID))
		})
	})
}

// deliverObject installs a moved object at its new home and wakes the
// puller.
func (rt *Runtime) deliverObject(m *network.Message) {
	words := uint64(len(m.Payload)) + network.HeaderWords
	overhead := rt.chargeRecvReply(words)
	rt.Mach.Proc(m.Dst).ExecAsync(overhead, func() {
		r := msg.NewReader(m.Payload)
		id := r.U32()
		rt.completeReply(id, nil)
	})
}
