package core

import (
	"errors"
	"reflect"
	"testing"

	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/gid"
	"compmig/internal/sim"
)

// newFaultRig builds the standard rig with a fault injector attached.
// The plan injects nothing on its own — callers script faults onto it —
// so a scripted run and an unscripted control pay identical framing and
// ack charges and differ only in the scripted fault.
func newFaultRig(t *testing.T, nprocs int) (*rig, *fault.Injector) {
	t.Helper()
	r := newRig(t, nprocs, cost.Software())
	inj := fault.NewInjector(&fault.Spec{RTO: 500, RTOMax: 2000})
	r.rt.Net.AttachFaults(inj)
	return r, inj
}

// outcome captures everything a fault must not change: the caller's
// answer plus every cell's value, read count, and current home.
type outcome struct {
	answer uint64
	vals   []uint64
	reads  []int
	homes  []int
}

func (r *rig) outcome(answer uint64) outcome {
	o := outcome{answer: answer}
	for _, g := range r.cells {
		c := r.rt.Objects.State(g).(*cell)
		o.vals = append(o.vals, c.val)
		o.reads = append(o.reads, c.reads)
		o.homes = append(o.homes, r.rt.Objects.Home(g))
	}
	return o
}

// Each recovery scenario drops or duplicates one protocol message and
// must converge to the exact answer, object state, and placement of the
// unscripted control run.
func TestRecoveryConvergesToFaultFreeOutcome(t *testing.T) {
	driveRPC := func(t *testing.T, r *rig) uint64 {
		var got uint64
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := r.rt.NewTask(th, 0)
			var rep cellReply
			if err := task.Call(r.cells[3], r.mAdd, &cellArg{delta: 5}, &rep); err != nil {
				t.Error(err)
			}
			got = rep.val
		})
		r.run(t)
		return got
	}
	driveMigrate := func(t *testing.T, r *rig) uint64 {
		var got uint64
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := r.rt.NewTask(th, 0)
			var rep cellReply
			entry := &sumCont{r: r, cells: []gid.GID{r.cells[1], r.cells[2], r.cells[3]}}
			if err := task.Do(entry, &rep); err != nil {
				t.Error(err)
			}
			got = rep.val
		})
		r.run(t)
		return got
	}
	drivePull := func(t *testing.T, r *rig) uint64 {
		var got uint64
		r.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := r.rt.NewTask(th, 0)
			if err := task.PullObject(r.cells[3], 16); err != nil {
				t.Error(err)
				return
			}
			var rep cellReply
			if err := task.Call(r.cells[3], r.mGet, nil, &rep); err != nil {
				t.Error(err)
			}
			got = rep.val
		})
		r.run(t)
		return got
	}

	cases := []struct {
		name   string
		script func(*fault.Injector)
		drive  func(*testing.T, *rig) uint64
	}{
		{"dropped rpc request", func(i *fault.Injector) { i.ScriptDrop("rpc", 1) }, driveRPC},
		{"dropped rpc reply", func(i *fault.Injector) { i.ScriptDrop("reply", 1) }, driveRPC},
		{"duplicated migration", func(i *fault.Injector) { i.ScriptDup("migrate", 1) }, driveMigrate},
		{"dropped migration", func(i *fault.Injector) { i.ScriptDrop("migrate", 2) }, driveMigrate},
		{"duplicated object fetch", func(i *fault.Injector) { i.ScriptDup("obj-fetch", 1) }, drivePull},
		{"dropped object move", func(i *fault.Injector) { i.ScriptDrop("obj-move", 1) }, drivePull},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			control, _ := newFaultRig(t, 4)
			want := control.outcome(c.drive(t, control))

			faulty, inj := newFaultRig(t, 4)
			c.script(inj)
			got := faulty.outcome(c.drive(t, faulty))

			if !reflect.DeepEqual(got, want) {
				t.Errorf("faulty run diverged:\n got %+v\nwant %+v", got, want)
			}
			rec := inj.Counters.Retransmits + inj.Counters.DupSuppressed
			if rec == 0 {
				t.Errorf("scripted fault exercised no recovery: %+v", inj.Counters)
			}
		})
	}
}

// Under 100% drop every remote protocol must end in a typed give-up
// error after its bounded attempt budget — and the event loop must
// drain, not hang.
func TestTimeoutStormEndsInGiveUp(t *testing.T) {
	cases := []struct {
		name string
		op   func(*testing.T, *rig, *Task) error
	}{
		{"rpc", func(t *testing.T, r *rig, task *Task) error {
			var rep cellReply
			return task.Call(r.cells[1], r.mGet, nil, &rep)
		}},
		{"migrate", func(t *testing.T, r *rig, task *Task) error {
			var rep cellReply
			return task.Do(&sumCont{r: r, cells: []gid.GID{r.cells[1]}}, &rep)
		}},
		{"object pull", func(t *testing.T, r *rig, task *Task) error {
			return task.PullObject(r.cells[1], 16)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newRig(t, 2, cost.Software())
			inj := fault.NewInjector(&fault.Spec{Drop: 1, RTO: 100, RTOMax: 200, MaxAttempts: 3})
			r.rt.Net.AttachFaults(inj)

			var err error
			r.eng.Spawn("req", 0, func(th *sim.Thread) {
				err = c.op(t, r, r.rt.NewTask(th, 0))
			})
			r.run(t) // the loop drains — a hang here is the bug

			var gu *fault.GiveUpError
			if !errors.As(err, &gu) {
				t.Fatalf("error = %v (%T), want *fault.GiveUpError", err, err)
			}
			if gu.Attempts != 3 {
				t.Errorf("gave up after %d attempts, want 3", gu.Attempts)
			}
			if inj.Counters.GiveUps != 1 {
				t.Errorf("counters = %+v", inj.Counters)
			}
		})
	}
}
