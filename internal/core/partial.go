package core

import (
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Partial-activation migration — the other half of §6's "migration of
// multiple and partial activations". Where PushFrame sends a caller
// frame along with the computation, MigratePartial does the opposite
// split within one activation: only the live variables the remote part
// needs travel (next); the rest of the frame (residual) stays on this
// processor and resumes here when the migrated part returns. A frame
// with a large local working set can therefore ship a small probe
// instead of its whole state.
//
// The cost structure differs from PushFrame in exactly the way a
// programmer would tune between: the migrated record stays small, but
// the return is a real message back to this processor (no
// short-circuit), after which the residual's own Return pays the
// remaining path to the original caller.

// residualEntry is a frame half waiting for its migrated half.
type residualEntry struct {
	frame     Resumable
	origReply replyHandle
	proc      int
}

// MigratePartial ships next to object g's home while residual stays
// here. When the migrated part calls Return, its result is delivered to
// THIS processor and residual.Resume runs here (on a fresh activation
// thread), still owing the operation's final Return. When g is local,
// next runs inline and residual resumes directly — the annotation costs
// nothing for local access, like Migrate. The caller must return
// immediately after this call.
func (t *Task) MigratePartial(g gid.GID, contID ContID, next Continuation, residualID ContID, residual Resumable) {
	if t.isMethod {
		panic("core: instance method activations may not migrate (§3.1)")
	}
	if t.migrated {
		panic("core: MigratePartial on a dead frame")
	}
	rt := t.rt

	if t.IsLocal(g) {
		// Local: run the probe inline; its Return must come back to the
		// residual, so interpose a local reply that resumes it in place.
		sub := &Task{rt: rt, th: t.th, proc: t.proc, reply: t.reply, frames: t.frames}
		sub.frames = append(sub.frames, pendingFrame{id: residualID, frame: residual})
		next.Run(sub)
		return
	}

	// Remote: the migrated part replies to a residual slot on this proc.
	id, _ := rt.newReply()
	here := t.proc.ID()
	rt.residuals[id] = &residualEntry{frame: residual, origReply: t.reply, proc: here}
	sub := &Task{rt: rt, th: t.th, proc: t.proc, reply: replyHandle{proc: here, id: id}}
	sub.Migrate(g, contID, next)
	t.migrated = true
}

// resumeResidual is invoked when a reply lands in a residual slot: the
// waiting frame half continues on its own processor, carrying the
// operation's original linkage.
func (rt *Runtime) resumeResidual(ent *residualEntry, words []uint32) {
	proc := rt.Mach.Proc(ent.proc)
	// The residual resumes as a fresh activation: thread creation plus
	// dispatch, like any incoming continuation.
	rt.Col.AddCycles(stats.CatThreadCreation, rt.Model.ThreadCreation)
	proc.ExecAsync(rt.Model.ThreadCreation+rt.Model.Scheduler, func() {
		rt.Eng.Spawn("residual", 0, func(th *sim.Thread) {
			task := &Task{rt: rt, th: th, proc: proc, reply: ent.origReply, atBase: true}
			ent.frame.Resume(task, msg.NewReader(words))
			if !task.migrated && !task.returned {
				panic("core: residual finished without Return or Migrate")
			}
		})
	})
}
