package core

import (
	"fmt"

	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
)

// Call invokes an instance method on object g, blocking until the reply
// arrives, and decodes the result into out (which may be nil). A local
// call dispatches directly with no messaging cost; a remote call takes
// the full client-stub / server-stub path of §2.1 — two messages per
// access, which is exactly what makes RPC lose to computation migration
// on repeated remote accesses.
func (t *Task) Call(g gid.GID, method MethodID, args msg.Marshaler, out msg.Unmarshaler) error {
	if int(method) >= len(t.rt.methods) {
		panic(fmt.Sprintf("core: unknown method id %d", method))
	}
	ent := &t.rt.methods[method]
	var argWords []uint32
	if args != nil {
		argWords = msg.Encode(args)
	}

	if t.IsLocal(g) {
		// Local call: run the handler inline on this thread. The words
		// round-trip through the codec for a single code path, but no
		// marshal cycles are charged — a local call passes arguments in
		// registers.
		return t.dispatchLocal(g, ent, argWords, out)
	}

	rt := t.rt
	col := rt.colAt(t.proc.ID())
	col.RPCCalls++
	if ent.short {
		col.ShortCalls++
	}
	id, fut := rt.newReplyAt(t.proc.ID())
	w := msg.NewWriter(4 + len(argWords))
	w.PutU32(uint32(method))
	w.PutU64(uint64(g))
	w.PutU32(packLinkage(t.proc.ID(), id))
	w.PutRaw(argWords)
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords

	t.th.Exec(t.proc, rt.chargeSendTo(col, words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: rt.locate(t.proc.ID(), g), Kind: "rpc", Payload: payload},
		rt.deliverRPC, rt.guard(id))

	reply, err := waitWords(fut, t.th)
	if err != nil {
		return err
	}
	if rt.Obs != nil {
		rt.Obs.RemoteCall(t.proc.ID(), g, len(payload), len(reply), ent.short)
	}
	// Piggybacked location information: the reply tells the caller where
	// the object really was.
	rt.learn(t.proc.ID(), g, rt.Objects.Home(g))
	if out == nil {
		return nil
	}
	return msg.Decode(reply, out)
}

func (t *Task) dispatchLocal(g gid.GID, ent *methodEntry, argWords []uint32, out msg.Unmarshaler) error {
	self := t.rt.Objects.State(g)
	r := msg.NewReader(argWords)
	w := msg.NewWriter(4)
	sub := &Task{rt: t.rt, th: t.th, proc: t.proc, isMethod: true}
	ent.handler(sub, self, r, w)
	if err := r.Err(); err != nil {
		return fmt.Errorf("core: method %s argument decode: %w", ent.name, err)
	}
	if out == nil {
		return nil
	}
	return msg.Decode(w.Words(), out)
}

// deliverRPC is the server stub: it charges the receive path on the
// object's home processor, runs the handler (in a fresh handler thread,
// unless the method is short and takes the active-message fast path), and
// sends the reply back.
func (rt *Runtime) deliverRPC(m *network.Message) {
	dst := rt.Mach.Proc(m.Dst)
	r := msg.NewReader(m.Payload)
	method := MethodID(r.U32())
	g := gid.GID(r.U64())
	if actual := rt.Objects.Home(g); actual != m.Dst {
		rt.forward(m, actual, rt.deliverRPC)
		return
	}
	callerProc, replyID := unpackLinkage(r.U32())
	argWords := make([]uint32, r.Remaining())
	copy(argWords, m.Payload[len(m.Payload)-len(argWords):])
	ent := &rt.methods[method]

	words := uint64(len(m.Payload)) + network.HeaderWords
	overhead := rt.chargeRecvTo(rt.colAt(m.Dst), words, ent.short)

	runHandler := func(th *sim.Thread) {
		self := rt.Objects.State(g)
		args := msg.NewReader(argWords)
		reply := msg.NewWriter(4)
		task := &Task{rt: rt, th: th, proc: dst, isMethod: true, atBase: true}
		ent.handler(task, self, args, reply)
		rt.sendReply(task, callerProc, replyID, reply.Words())
	}

	dst.ExecAsync(overhead, func() {
		// Both paths run on a simulated thread so handlers can block on
		// locks or charge work; the cost difference (thread creation) was
		// applied in chargeRecv. Spawning via the destination processor
		// keeps the handler on that processor's shard lane.
		dst.Spawn("handler:"+ent.name, 0, runHandler)
	})
}

// sendReply returns a method result to the caller, or completes the
// future directly when the caller is co-located.
func (rt *Runtime) sendReply(t *Task, callerProc int, replyID uint32, resultWords []uint32) {
	if callerProc == t.proc.ID() {
		rt.completeReplyAt(callerProc, replyID, resultWords)
		return
	}
	w := msg.NewWriter(1 + len(resultWords))
	w.PutU32(replyID)
	w.PutRaw(resultWords)
	payload := w.Words()
	words := uint64(len(payload)) + network.HeaderWords
	t.th.Exec(t.proc, rt.chargeSendTo(rt.colAt(t.proc.ID()), words))
	rt.Net.SendGuarded(&network.Message{Src: t.proc.ID(), Dst: callerProc, Kind: "reply", Payload: payload},
		rt.deliverReply, rt.guard(replyID))
}
