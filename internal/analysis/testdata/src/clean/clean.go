// Package clean is a fully compliant fixture: the driver must exit zero
// when pointed at it alone.
//
//simvet:package sim-charged
package clean

// Sum folds values order-insensitively.
func Sum(xs []uint64) uint64 {
	var total uint64
	for _, x := range xs {
		total += x
	}
	return total
}
