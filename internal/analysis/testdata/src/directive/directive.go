// Package directive is a fixture for the directive grammar itself: a
// bare //simvet:allow (no justification) and an unknown directive are
// unconditional findings, and a bare allow suppresses nothing. The
// expectations live in TestDirectiveErrors, not in want comments,
// because the findings land on the directive lines themselves.
//
//simvet:package sim-charged
package directive

import "time"

// Bare tries to use the escape hatch without a justification; the
// directive is rejected, so the time.Now use below it still fires.
func Bare() time.Time {
	//simvet:allow
	return time.Now()
}

//simvet:nosuchthing
