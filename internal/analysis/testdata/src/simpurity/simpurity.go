// Package simpurity is an analysistest fixture: a package declared
// host-side (simulation-inert) that nevertheless schedules events,
// sends messages, and charges cycles — plus the observation-only calls
// it is allowed to make.
//
//simvet:package host-side
package simpurity

import (
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// BadSchedule perturbs the simulation from an observer.
func BadSchedule(eng *sim.Engine) {
	eng.Schedule(10, func() {}) // want `host-side package calls compmig/internal/sim.Schedule`
}

// BadWake wakes a simulated thread.
func BadWake(th *sim.Thread) {
	th.Unpark() // want `host-side package calls compmig/internal/sim.Unpark`
}

// BadSend injects a message.
func BadSend(n *network.Network, m *network.Message) {
	n.Send(m, nil) // want `host-side package calls compmig/internal/network.Send`
}

// BadCharge bills simulated cycles.
func BadCharge(col *stats.Collector) {
	col.AddCycles(stats.CatUserCode, 5) // want `host-side package calls compmig/internal/stats.AddCycles`
}

// GoodObserve reads simulation state without touching it: clocks,
// counters, and utilization are all fair game for a policy input.
func GoodObserve(eng *sim.Engine, p *sim.Proc) (uint64, float64) {
	return eng.Now(), p.Utilization()
}
