// Package maporder is an analysistest fixture for the map-iteration
// analyzer: bodies that reach event scheduling or leak iteration order
// are violations; the collect-then-sort idiom is the compliant variant.
//
//simvet:package sim-charged
package maporder

import (
	"sort"

	"compmig/internal/network"
	"compmig/internal/sim"
)

// BadDirect schedules an event per map entry: event sequence numbers
// follow Go's randomized iteration order.
func BadDirect(eng *sim.Engine, pending map[int]func()) {
	for _, fn := range pending {
		eng.Schedule(1, fn) // want `Schedule called inside map iteration`
	}
}

// relay reaches a send sink; calling it from a map range is as bad as
// sending directly.
func relay(n *network.Network, m *network.Message) {
	n.Send(m, nil)
}

// BadIndirect reaches the network through a package-local helper.
func BadIndirect(n *network.Network, inflight map[int]*network.Message) {
	for _, m := range inflight {
		relay(n, m) // want `reaches event scheduling or message sends`
	}
}

// BadAccumulate leaks map order through a slice that is never sorted.
func BadAccumulate(counts map[int]uint64) []uint64 {
	var out []uint64
	for _, c := range counts {
		out = append(out, c) // want `append to out inside map iteration`
	}
	return out
}

// GoodSorted is the canonical fix: collect keys, sort, then do
// order-sensitive work over the sorted slice.
func GoodSorted(eng *sim.Engine, pending map[int]func()) {
	keys := make([]int, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		eng.Schedule(1, pending[k])
	}
}

// GoodCommutative folds map entries into an order-insensitive value;
// nothing here needs an ordering.
func GoodCommutative(counts map[int]uint64) uint64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// GoodKeyed accumulates into a keyed destination: placement is by key,
// so iteration order cannot escape.
func GoodKeyed(counts map[int]uint64) map[int]uint64 {
	double := make(map[int]uint64, len(counts))
	for k, c := range counts {
		double[k] = 2 * c
	}
	return double
}
