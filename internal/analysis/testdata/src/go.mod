// The fixture module is named under compmig/internal so its packages
// may import the real simulation packages (Go's internal-visibility
// rule is import-path based): the analyzers' sink sets then behave
// identically on fixtures and on the shipped tree.
module compmig/internal/analysis/fixtures

go 1.22

require compmig v0.0.0-00010101000000-000000000000

replace compmig => ../../../..
