// Package nodeterminism is an analysistest fixture: a package that opts
// into the simulation-charged class and commits (and suppresses) every
// kind of host-nondeterminism violation.
//
//simvet:package sim-charged
package nodeterminism

import (
	"math/rand" // want `import of "math/rand"`
	"os"
	"sync" // want `import of "sync"`
	"time"
)

// Bad trips every per-use check.
func Bad() time.Duration {
	start := time.Now()   // want `use of time.Now`
	_ = os.Getenv("SEED") // want `use of os.Getenv`
	go func() {}()        // want `goroutine spawn`
	var mu sync.Mutex
	mu.Lock()
	_ = rand.Int()
	mu.Unlock()
	return time.Since(start) // want `use of time.Since`
}

// Allowed demonstrates the escape hatch: the directive must carry a
// justification, and covers only its own line and the next.
func Allowed() {
	_ = time.Now() //simvet:allow fixture: profiling-only measurement that cannot perturb event order
	//simvet:allow fixture: covers the next line
	_ = time.Now()
}

// Good is the compliant variant: simulated time is a plain uint64 fed by
// the engine clock, and time.Duration is a unit, not a clock read.
func Good(now uint64, d time.Duration) uint64 {
	return now + uint64(d/time.Microsecond)
}
