// Package cyclecharge is an analysistest fixture: a package opted into
// the cycle-charged runtime class, where every message send must be
// priced through the internal/cost model.
//
//simvet:package cycle-charged
package cyclecharge

import (
	"compmig/internal/cost"
	"compmig/internal/network"
	"compmig/internal/sim"
)

// BadFree injects a message with no cost-model charge anywhere in the
// function: free bandwidth that would skew every mechanism comparison.
func BadFree(n *network.Network, m *network.Message) {
	n.Send(m, nil) // want `sends a message via compmig/internal/network.Send without charging cycles`
}

// BadFreeDelayed is the SendAfter flavor.
func BadFreeDelayed(n *network.Network, m *network.Message) {
	n.SendAfter(m, 30, nil) // want `sends a message via compmig/internal/network.SendAfter without charging cycles`
}

// GoodCharged prices the send path before injecting, Table 5 style.
func GoodCharged(n *network.Network, th *sim.Thread, p *sim.Proc, m *network.Message) {
	model := cost.Software()
	th.Exec(p, model.SendLinkage+model.MessageSend)
	n.Send(m, nil)
}

// chargeHelper centralizes the pricing arithmetic.
func chargeHelper(words uint64) uint64 {
	model := cost.Software()
	return model.MarshalBase + model.MarshalPerWord*words + model.MessageSend
}

// GoodIndirect charges through a package-local helper; the analyzer's
// taint follows the call.
func GoodIndirect(n *network.Network, th *sim.Thread, p *sim.Proc, m *network.Message) {
	th.Exec(p, chargeHelper(m.Words()))
	n.Send(m, nil)
}

// BadFreeCross reaches the sharded engine's inter-lane channel without a
// charge: CrossSend bypasses the network package's priced wrappers, so a
// direct call is a free message like any other.
func BadFreeCross(cl *sim.Cluster, eng *sim.Engine, dst int) {
	cl.CrossSend(eng, 40, dst, func() {}) // want `sends a message via compmig/internal/sim.CrossSend without charging cycles`
}

// GoodChargedCross prices the software send path before crossing lanes.
func GoodChargedCross(cl *sim.Cluster, eng *sim.Engine, th *sim.Thread, p *sim.Proc, dst int) {
	model := cost.Software()
	th.Exec(p, model.SendLinkage+model.MessageSend)
	cl.CrossSend(eng, 40, dst, func() {})
}
