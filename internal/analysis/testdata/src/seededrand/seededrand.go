// Package seededrand is an analysistest fixture: randomness must flow
// from explicitly seeded sim.PRNG streams, never from math/rand's
// process-global generator. No class directive is needed — the rule
// applies to every package in the module.
package seededrand

import (
	"math/rand" // want `import of "math/rand"`

	"compmig/internal/sim"
)

// BadShuffle draws from the process-global generator: two identical runs
// of the same seed can differ.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// GoodShuffle is the compliant variant: the caller supplies a stream
// forked from the run seed, so the permutation is part of the experiment
// configuration.
func GoodShuffle(rng *sim.PRNG, xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
