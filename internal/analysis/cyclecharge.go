package analysis

import "go/ast"

// CycleCharge audits the software-messaging runtime: any function in a
// cycle-charged package (core) that injects a message into the network
// must price the send through the internal/cost model, the way every
// Table 5 reproduction does (Exec(chargeSend(words)) before Send). The
// check is a package-local taint: a function is "charging" if its body
// mentions any object from internal/cost — a Model field, a constant,
// a helper — or calls a same-package function that does. A send
// reachable only from non-charging functions is a free message: it would
// show up in the paper's tables as bandwidth without CPU cost, quietly
// skewing every mechanism comparison.
var CycleCharge = &Analyzer{
	Name: "cyclecharge",
	Doc: "require message sends in cycle-charged runtime packages to " +
		"charge cycles through the internal/cost model",
	Run: runCycleCharge,
}

func runCycleCharge(p *Pass) error {
	if !p.Class.CycleCharged {
		return nil
	}
	decls := funcDecls(p)
	charging := taintedFuncs(p, decls, func(fd *ast.FuncDecl) bool {
		return mentionsPackage(p, fd.Body, costPath)
	})
	for fn, fd := range decls {
		if charging[fn] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, ok := calleeKey(p, call); ok && sendSinks[key] {
				p.Reportf(call.Pos(), "%s sends a message via %s.%s without charging cycles: no internal/cost value flows into this function; charge the send path (e.g. Exec(chargeSend(words))) first", fd.Name.Name, key.pkg, key.name)
			}
			return true
		})
	}
	return nil
}
