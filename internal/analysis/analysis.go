// Package analysis is simvet's analysis framework: a small, dependency-free
// reimplementation of the golang.org/x/tools/go/analysis surface (Analyzer,
// Pass, Diagnostic) plus the simvet-specific machinery shared by the five
// determinism analyzers — package classification (see manifest.go), the
// //simvet:allow escape hatch, and an offline package loader built on
// `go list -export` and the standard library's gc export-data importer
// (see load.go).
//
// The framework exists because this repository pins zero third-party
// modules: the loader and the analyzers use only the standard library, so
// `make simvet` works in a hermetic build environment with no module
// downloads. The API mirrors x/tools closely enough that an analyzer body
// could be ported to the real driver by changing imports.
//
// # Directives
//
// Two comment directives drive the suite:
//
//	//simvet:allow <justification>
//
// suppresses any simvet diagnostic reported on the same line or on the
// line directly below the comment. The justification is mandatory; a bare
// //simvet:allow is itself an error that cannot be suppressed.
//
//	//simvet:package <class>
//
// adds a classification (sim-charged, host-side, cycle-charged) to the
// enclosing package, overriding the path manifest. The checked-in tree is
// classified by manifest.go; the directive exists so analysis fixtures and
// future out-of-tree packages can opt in.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one simvet check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -json output.
	Name string

	// Doc is the analyzer's help text; the first line is the summary.
	Doc string

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Class is the package's simvet classification (manifest plus any
	// //simvet:package directives).
	Class Class

	pkg  *Package
	diag *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //simvet:allow directive
// covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.pkg.allowed(position.Filename, position.Line) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ObjectOf is Info.ObjectOf with a nil guard for identifiers the checker
// did not resolve.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// Callee resolves the called function or method of a call expression, or
// nil for calls through function-typed values and conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// allowRe matches the allow directive; the justification is group 1.
var allowRe = regexp.MustCompile(`^//simvet:allow(?:[ \t]+(.*))?$`)

// packageRe matches the package-classification directive.
var packageRe = regexp.MustCompile(`^//simvet:package[ \t]+([a-z-]+)[ \t]*$`)

// directives holds the parsed simvet comments of one package.
type directives struct {
	// allow maps file name to the set of source lines covered by an
	// //simvet:allow directive (the directive's own line and the next).
	allow map[string]map[int]bool

	// classes lists the //simvet:package classifications declared by any
	// file of the package.
	classes []string

	// errs are malformed directives (missing justification, unknown
	// class); they are unconditional diagnostics.
	errs []Diagnostic
}

// parseDirectives scans every comment of every file.
func parseDirectives(fset *token.FileSet, files []*ast.File) *directives {
	d := &directives{allow: map[string]map[int]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimRight(c.Text, " \t")
				if !strings.HasPrefix(text, "//simvet:") {
					continue
				}
				pos := fset.Position(c.Pos())
				if m := allowRe.FindStringSubmatch(text); m != nil {
					if strings.TrimSpace(m[1]) == "" {
						d.errs = append(d.errs, Diagnostic{
							Analyzer: "directive",
							Pos:      pos,
							Message:  "//simvet:allow requires a justification (\"//simvet:allow <reason>\")",
						})
						continue
					}
					lines := d.allow[pos.Filename]
					if lines == nil {
						lines = map[int]bool{}
						d.allow[pos.Filename] = lines
					}
					lines[pos.Line] = true
					lines[pos.Line+1] = true
					continue
				}
				if m := packageRe.FindStringSubmatch(text); m != nil {
					if _, ok := classByName[m[1]]; !ok {
						d.errs = append(d.errs, Diagnostic{
							Analyzer: "directive",
							Pos:      pos,
							Message:  fmt.Sprintf("unknown //simvet:package class %q (want %s)", m[1], strings.Join(classNames(), ", ")),
						})
						continue
					}
					d.classes = append(d.classes, m[1])
					continue
				}
				d.errs = append(d.errs, Diagnostic{
					Analyzer: "directive",
					Pos:      pos,
					Message:  fmt.Sprintf("unknown simvet directive %q", text),
				})
			}
		}
	}
	return d
}

// Run applies each analyzer to each package and returns all diagnostics
// ordered by position. Malformed directives are reported as analyzer
// "directive" findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, pkg.dirs.errs...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Class:    pkg.Class,
				pkg:      pkg,
				diag:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
