// The checked-in classification manifest. DESIGN.md ("Determinism
// invariants and simvet") documents the invariant each class carries;
// this file is the machine-readable source of truth the analyzers
// enforce it from, so adding a package to a class is a reviewed change.
package analysis

import "strings"

// Class is a package's simvet classification. A package may belong to
// several classes (core is both simulation-charged and cycle-charged).
type Class struct {
	// SimCharged marks packages whose code runs inside the simulated
	// machine: all of their control flow is ordered by the event heap, so
	// host time, host randomness, ambient environment, and host
	// concurrency primitives are forbidden (nodeterminism, maporder).
	SimCharged bool

	// HostSide marks packages declared simulation-inert: they observe the
	// simulation but must never schedule events or charge cycles
	// (simpurity). This is the structural form of the policy layer's
	// "decisions take zero simulated time" contract.
	HostSide bool

	// CycleCharged marks runtime packages whose message sends must be
	// priced through the internal/cost model (cyclecharge).
	CycleCharged bool
}

var classByName = map[string]func(*Class){
	"sim-charged":   func(c *Class) { c.SimCharged = true },
	"host-side":     func(c *Class) { c.HostSide = true },
	"cycle-charged": func(c *Class) { c.CycleCharged = true },
}

func classNames() []string {
	return []string{"sim-charged", "host-side", "cycle-charged"}
}

// Package paths used by the sink and source sets below. The fixture
// modules under testdata import these same packages, so the analyzers
// behave identically on fixtures and on the real tree.
const (
	simPath     = "compmig/internal/sim"
	networkPath = "compmig/internal/network"
	statsPath   = "compmig/internal/stats"
	costPath    = "compmig/internal/cost"
)

// simChargedPaths lists the packages whose code executes under the event
// heap. internal/harness is deliberately absent: it is the host-parallel
// orchestration layer (worker pools, spec fan-out) and owns real
// concurrency; each worker drives a private engine.
var simChargedPaths = []string{
	simPath,
	"compmig/internal/core",
	"compmig/internal/mem",
	networkPath,
	"compmig/internal/msg",
	"compmig/internal/fault",
	"compmig/internal/gid",
	"compmig/internal/object",
	"compmig/internal/repl",
	// The durability store's appends and recovery replays are charged in
	// simulated cycles on the logging processor, so its control flow is
	// event-heap ordered like the rest of the runtime.
	"compmig/internal/store",
	"compmig/internal/apps/...",
	// The workload generator's event stream is part of the simulation's
	// deterministic input: its draws must come from forked sim.PRNG
	// streams only.
	"compmig/internal/load",
}

// hostSidePaths lists the packages declared simulation-inert.
var hostSidePaths = []string{
	"compmig/internal/policy",
	"compmig/internal/profile",
	statsPath,
	"compmig/internal/advisor",
}

// cycleChargedPaths lists the runtime packages whose sends must flow
// through the cost model. The network package itself is the definer of
// the send primitives (it charges wire time, not software overhead) and
// is therefore not in this set.
var cycleChargedPaths = []string{
	"compmig/internal/core",
}

// matchPath reports whether path matches pattern, where a trailing
// "/..." matches the package and any subpackage.
func matchPath(path, pattern string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

func matchAny(path string, patterns []string) bool {
	for _, p := range patterns {
		if matchPath(path, p) {
			return true
		}
	}
	return false
}

// classify computes a package's classes from the manifest and any
// //simvet:package directives found in its files.
func classify(path string, dirs *directives) Class {
	var c Class
	if matchAny(path, simChargedPaths) {
		c.SimCharged = true
	}
	if matchAny(path, hostSidePaths) {
		c.HostSide = true
	}
	if matchAny(path, cycleChargedPaths) {
		c.CycleCharged = true
	}
	for _, name := range dirs.classes {
		classByName[name](&c)
	}
	return c
}

// funcKey names a function or method for the sink sets: the package it
// is declared in plus its bare name (method receiver types are not
// needed at this granularity — the named packages are small and their
// send/schedule names unambiguous).
type funcKey struct {
	pkg  string
	name string
}

// schedulingSinks are the event-scheduling and cycle-charging entry
// points of the simulation core. A map-range body must not reach them
// (maporder), and host-side packages must not call them at all
// (simpurity).
var schedulingSinks = map[funcKey]bool{
	// Event scheduling and thread control.
	{simPath, "Schedule"}:     true,
	{simPath, "At"}:           true,
	{simPath, "schedule"}:     true,
	{simPath, "scheduleWake"}: true,
	{simPath, "Spawn"}:        true,
	{simPath, "ScheduleOn"}:   true,
	{simPath, "CrossSend"}:    true,
	{simPath, "AtBarrier"}:    true,
	{simPath, "Unpark"}:       true,
	{simPath, "UnparkAt"}:     true,
	{simPath, "Sleep"}:        true,
	{simPath, "Park"}:         true,
	{simPath, "Yield"}:        true,
	{simPath, "TryAdvance"}:   true,
	// Processor time.
	{simPath, "Exec"}:      true,
	{simPath, "ExecAsync"}: true,
	// Message injection.
	{networkPath, "Send"}:        true,
	{networkPath, "SendAfter"}:   true,
	{networkPath, "SendGuarded"}: true,
}

// chargingSinks extends schedulingSinks with the accounting calls that
// charge simulated cycles or traffic; host-side packages (simpurity)
// must avoid these too.
var chargingSinks = map[funcKey]bool{
	{statsPath, "AddCycles"}:    true,
	{statsPath, "CountMessage"}: true,
}

// sendSinks are the message-send primitives audited by cyclecharge.
// Cluster.CrossSend is the sharded engine's inter-lane channel: it
// bypasses the network package's Send wrappers, so a cycle-charged
// package reaching it directly must price the send itself.
var sendSinks = map[funcKey]bool{
	{networkPath, "Send"}:        true,
	{networkPath, "SendAfter"}:   true,
	{networkPath, "SendGuarded"}: true,
	{simPath, "CrossSend"}:       true,
}

// randSourcePaths are the packages allowed to implement randomness; all
// other randomness must flow from the seeded sim.PRNG streams they
// provide (seededrand).
var randSourcePaths = []string{
	simPath,
}
