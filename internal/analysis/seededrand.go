package analysis

import "strconv"

// SeededRand enforces the single-source-of-randomness rule everywhere in
// the module, not just in simulation-charged code: every random draw must
// flow from a sim.PRNG stream seeded by the run configuration, because
// that is what makes a (program, seed) pair a complete description of an
// experiment. math/rand's package-level generator is process-global and
// (since Go 1.20) seeded randomly at startup, so even a harness-side use
// silently breaks reproducibility.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "require all randomness to flow from seeded sim.PRNG streams; " +
		"ban math/rand everywhere in the module",
	Run: runSeededRand,
}

var randImports = []string{"math/rand", "math/rand/v2"}

func runSeededRand(p *Pass) error {
	if matchAny(p.Pkg.Path(), randSourcePaths) {
		// The designated randomness provider: internal/sim implements the
		// explicitly seeded xoshiro256** generator (and in fact imports
		// no rand package at all, so the stream is stable across Go
		// releases — but the exemption belongs to it, not to its
		// implementation detail).
		return nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			for _, banned := range randImports {
				if path == banned {
					p.Reportf(imp.Pos(), "import of %q: all randomness must come from seeded sim.PRNG streams (internal/sim), never a package-level generator", path)
				}
			}
		}
	}
	return nil
}
