package analysis

import "go/ast"

// SimPurity makes the "zero simulated cycles" guarantee of the host-side
// layers structural: packages declared simulation-inert in the manifest
// (policy, profile, stats, advisor) observe the simulation but must never
// schedule events, wake threads, send messages, or charge cycles. The
// policy A/B identity contract — a static policy renders byte-identical
// tables to the hard-wired scheme — holds only because a policy decision
// cannot perturb the machine; this analyzer turns that argument from
// prose in the package doc into a build failure.
var SimPurity = &Analyzer{
	Name: "simpurity",
	Doc: "forbid event scheduling, message sends, and cycle charging in " +
		"packages declared host-side (simulation-inert)",
	Run: runSimPurity,
}

func runSimPurity(p *Pass) error {
	if !p.Class.HostSide {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.Callee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
				// Unresolved, builtin, or the package's own API (a
				// host-side package may define charging primitives; the
				// charged packages that call them are audited elsewhere).
				return true
			}
			key := funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}
			if schedulingSinks[key] || chargingSinks[key] {
				p.Reportf(call.Pos(), "host-side package calls %s.%s: simulation-inert packages must not schedule events, send messages, or charge cycles", key.pkg, key.name)
			}
			return true
		})
	}
	return nil
}
