package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `range` statements over maps whose loop body can
// influence simulated state in iteration order: a body that schedules
// events, sends messages, or charges processor time per entry makes the
// execution depend on Go's randomized map order, which is exactly the
// class of bug the byte-identity A/B suites cannot catch until a hash
// seed changes. Accumulating map entries into a slice is allowed when
// the slice is deterministically sorted later in the same function (the
// standard collect-then-sort idiom used throughout the tree).
//
// The reachability check is a package-local taint approximation: a body
// call is a violation if its statically resolved callee is one of the
// simulator's scheduling/send entry points, or a same-package function
// that transitively reaches one. Calls through function values and
// interfaces are not resolved; use //simvet:allow with a justification
// where the heuristic misses context.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body reaches event scheduling, message " +
		"sends, or order-sensitive accumulation without a deterministic sort",
	Run: runMapOrder,
}

// sortFuncs recognizes the deterministic-ordering calls that launder an
// accumulated slice: anything in sort, plus the slices package's Sort*
// family.
func isSortCall(key funcKey) bool {
	if key.pkg == "sort" {
		return true
	}
	return key.pkg == "slices" && len(key.name) >= 4 && key.name[:4] == "Sort"
}

func runMapOrder(p *Pass) error {
	if !p.Class.SimCharged {
		return nil
	}
	decls := funcDecls(p)
	reachesSink := taintedFuncs(p, decls, func(fd *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if key, ok := calleeKey(p, call); ok && schedulingSinks[key] {
					found = true
				}
			}
			return true
		})
		return found
	})

	for _, fd := range decls {
		fd := fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := p.Info.TypeOf(rs.X); t == nil || !isMapType(t) {
				return true
			}
			checkMapRangeBody(p, fd, rs, reachesSink)
			return true
		})
	}
	return nil
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports order-sensitive operations inside the body
// of a range over a map.
func checkMapRangeBody(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, reachesSink map[*types.Func]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			key, ok := calleeKey(p, n)
			if !ok {
				return true
			}
			if schedulingSinks[key] {
				p.Reportf(n.Pos(), "%s.%s called inside map iteration: event order would follow Go's randomized map order; iterate over sorted keys instead", key.pkg, key.name)
				return true
			}
			if fn := p.Callee(n); fn != nil && reachesSink[fn] {
				p.Reportf(n.Pos(), "call to %s inside map iteration reaches event scheduling or message sends; iterate over sorted keys instead", fn.Name())
			}
		case *ast.AssignStmt:
			checkOrderedAppend(p, fd, rs, n)
		}
		return true
	})
}

// checkOrderedAppend flags `x = append(x, ...)` inside a map range when
// x outlives the loop and is never deterministically sorted afterwards
// in the same function: the slice's element order would then leak the
// map's randomized iteration order into whatever consumes it.
func checkOrderedAppend(p *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(as.Lhs) <= i {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if obj := p.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				continue // a user-defined append shadows the builtin
			}
		}
		// Resolve the destination; only plain variables (and field
		// selections) carry order out of the loop — a map-indexed
		// destination is keyed, not ordered.
		var destID *ast.Ident
		switch lhs := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			destID = lhs
		case *ast.SelectorExpr:
			destID = lhs.Sel
		default:
			continue
		}
		obj := p.ObjectOf(destID)
		if obj == nil {
			continue
		}
		// A destination declared inside the loop body dies with the
		// iteration; order cannot escape.
		if rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
			continue
		}
		if sortedAfter(p, fd, obj, rs.End()) {
			continue
		}
		p.Reportf(as.Pos(), "append to %s inside map iteration leaks randomized map order (no deterministic sort of %s follows in %s); sort before use", obj.Name(), obj.Name(), fd.Name.Name)
	}
}

// sortedAfter reports whether a sort/slices ordering call mentioning obj
// appears in fd's body after position after.
func sortedAfter(p *Pass, fd *ast.FuncDecl, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		key, ok := calleeKey(p, call)
		if !ok || !isSortCall(key) {
			return true
		}
		for _, arg := range call.Args {
			usesObject(p, arg, obj, &found)
			if found {
				return false
			}
		}
		return true
	})
	return found
}

func usesObject(p *Pass, n ast.Node, obj types.Object, found *bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if *found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			*found = true
		}
		return true
	})
}
