package analysis_test

import (
	"testing"

	"compmig/internal/analysis"
)

// TestShippedTreeIsClean runs the full suite over every package of the
// module, so a future violation is a test failure and not just a
// CI-only break. The allowlist is part of the contract: if this test
// fails, either fix the code (sort the keys, seed the stream, charge
// the send) or add a justified //simvet:allow and account for it in
// DESIGN.md — never widen the manifest to dodge a finding.
func TestShippedTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go toolchain to load the whole module")
	}
	pkgs, err := analysis.Load("", "compmig/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.Suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(pkgs) < 30 {
		t.Errorf("suite audited only %d packages; expected the whole module (pattern or loader regression?)", len(pkgs))
	}
}
