package analysis

// Suite is the full simvet analyzer suite in reporting order.
var Suite = []*Analyzer{
	NoDeterminism,
	MapOrder,
	SimPurity,
	SeededRand,
	CycleCharge,
}
