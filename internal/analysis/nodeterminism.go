package analysis

import (
	"go/ast"
	"strconv"
)

// NoDeterminism enforces the DESIGN.md contract that simulation-charged
// code has no nondeterministic inputs: host clocks, ambient environment,
// unseeded randomness, and host concurrency primitives are all forbidden.
// The engine's coroutine handoff channels are deliberately NOT flagged —
// channel operations are how the single-runner discipline is implemented
// — but the goroutine spawns that create them are, so each spawn site
// carries an explicit //simvet:allow justification.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc: "forbid host time, ambient environment, unseeded randomness, and " +
		"host concurrency in simulation-charged packages",
	Run: runNoDeterminism,
}

// forbiddenFuncs are host-nondeterminism entry points banned at each use
// site (calls and method values alike).
var forbiddenFuncs = map[funcKey]string{
	{"time", "Now"}:       "host wall clock",
	{"time", "Since"}:     "host wall clock",
	{"time", "Until"}:     "host wall clock",
	{"time", "Sleep"}:     "host blocking sleep",
	{"time", "After"}:     "host timer",
	{"time", "AfterFunc"}: "host timer",
	{"time", "Tick"}:      "host timer",
	{"time", "NewTimer"}:  "host timer",
	{"time", "NewTicker"}: "host timer",
	{"os", "Getenv"}:      "ambient environment",
	{"os", "LookupEnv"}:   "ambient environment",
	{"os", "Environ"}:     "ambient environment",
}

// forbiddenImports are whole packages banned from simulation-charged
// code; the finding is reported once, at the import declaration, so one
// //simvet:allow on the import line covers a file's justified uses.
var forbiddenImports = map[string]string{
	"sync":        "host synchronization",
	"sync/atomic": "host synchronization",
	"math/rand":   "unseeded process-global randomness",
	"math/rand/v2": "unseeded process-global randomness; use the engine's " +
		"sim.PRNG streams",
}

func runNoDeterminism(p *Pass) error {
	if !p.Class.SimCharged {
		return nil
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				p.Reportf(imp.Pos(), "import of %q (%s) in simulation-charged package; event order must not depend on the host", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "goroutine spawn in simulation-charged package; only the engine's single-runner threads may execute simulated work")
			case *ast.SelectorExpr:
				obj := p.ObjectOf(n.Sel)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				key := funcKey{pkg: obj.Pkg().Path(), name: obj.Name()}
				if why, ok := forbiddenFuncs[key]; ok {
					p.Reportf(n.Pos(), "use of %s.%s (%s) in simulation-charged package; derive time from the engine clock", key.pkg, key.name, why)
				}
			}
			return true
		})
	}
	return nil
}
