// Package analysistest runs a simvet analyzer over fixture packages and
// checks its diagnostics against `// want` expectations, mirroring the
// x/tools package of the same name.
//
// An expectation is a trailing comment on the line the diagnostic is
// reported at, holding one or more regular expressions in double quotes
// or backquotes:
//
//	eng.Schedule(1, fn) // want `Schedule called inside map iteration`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by exactly one diagnostic; anything else
// fails the test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"compmig/internal/analysis"
)

// TestData returns the fixture module root conventionally used by the
// simvet tests: testdata/src under the calling test's working directory.
func TestData(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(wd, "testdata", "src")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture module not found: %v", err)
	}
	return dir
}

// want holds one parsed expectation.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")

// Run loads the packages matched by patterns from the fixture module at
// dir, applies analyzer a, and reports any mismatch between diagnostics
// and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					res, err := parseWant(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, re := range res {
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matched %q", w.file, w.line, a.Name, w.re)
		}
	}
}

// parseWant splits a want payload into its quoted regular expressions.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw, rest string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			raw, rest = s[1:1+end], s[2+end:]
		case '"':
			// Find the closing quote, honoring escapes, then unquote.
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			var err error
			raw, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			rest = s[end+1:]
		default:
			return nil, fmt.Errorf("want expectation must be quoted or backquoted, got %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
		s = strings.TrimSpace(rest)
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return res, nil
}
