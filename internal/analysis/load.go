package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Class Class

	dirs *directives
}

// allowed reports whether an //simvet:allow directive covers file:line.
func (p *Package) allowed(file string, line int) bool {
	return p.dirs.allow[file][line]
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolving imports
// from compiler export data so no network access or third-party loader
// is needed. dir is the directory `go list` runs in (it selects the Go
// module; "" means the current directory). Only the packages named by
// the patterns are returned; their dependencies are loaded as export
// data for type information.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pp := p
			targets = append(targets, &pp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		dirs := parseDirectives(fset, files)
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
			Class: classify(t.ImportPath, dirs),
			dirs:  dirs,
		})
	}
	return pkgs, nil
}
