package analysis

import (
	"go/ast"
	"go/types"
)

// funcDecls maps each function or method declared in the package (with a
// body) to its declaration.
func funcDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	return decls
}

// taintedFuncs computes the set of package functions that are seed-tainted
// or (transitively, through statically resolved same-package calls) call a
// tainted function. It is the package-local approximation of SSA
// reachability the maporder and cyclecharge analyzers use: calls through
// function values and interfaces are not resolved, which both analyzers
// accept as a documented heuristic (the escape hatch covers the rest).
func taintedFuncs(p *Pass, decls map[*types.Func]*ast.FuncDecl, seed func(*ast.FuncDecl) bool) map[*types.Func]bool {
	tainted := map[*types.Func]bool{}
	for fn, fd := range decls {
		if seed(fd) {
			tainted[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if tainted[fn] {
				continue
			}
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := p.Callee(call); callee != nil && tainted[callee] {
						found = true
					}
				}
				return true
			})
			if found {
				tainted[fn] = true
				changed = true
			}
		}
	}
	return tainted
}

// calleeKey returns the (package path, name) key of a call's statically
// resolved callee, or ok=false for unresolved calls and builtins.
func calleeKey(p *Pass, call *ast.CallExpr) (funcKey, bool) {
	fn := p.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return funcKey{}, false
	}
	return funcKey{pkg: fn.Pkg().Path(), name: fn.Name()}, true
}

// mentionsPackage reports whether any identifier under n resolves to an
// object declared in package path.
func mentionsPackage(p *Pass, n ast.Node, path string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.Info.Uses[id]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path {
			found = true
		}
		return true
	})
	return found
}
