package analysis_test

import (
	"strings"
	"testing"

	"compmig/internal/analysis"
	"compmig/internal/analysis/analysistest"
)

// TestAnalyzers drives each analyzer over its fixture package: every
// `// want` line must fire and nothing else may (the fixtures' Good*
// functions are the compliant variants).
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		a   *analysis.Analyzer
		pkg string
	}{
		{analysis.NoDeterminism, "compmig/internal/analysis/fixtures/nodeterminism"},
		{analysis.MapOrder, "compmig/internal/analysis/fixtures/maporder"},
		{analysis.SimPurity, "compmig/internal/analysis/fixtures/simpurity"},
		{analysis.SeededRand, "compmig/internal/analysis/fixtures/seededrand"},
		{analysis.CycleCharge, "compmig/internal/analysis/fixtures/cyclecharge"},
	}
	for _, tc := range tests {
		t.Run(tc.a.Name, func(t *testing.T) {
			analysistest.Run(t, analysistest.TestData(t), tc.a, tc.pkg)
		})
	}
}

// TestDirectiveErrors checks the escape-hatch grammar: a bare
// //simvet:allow and an unknown directive are findings in their own
// right, and a bare allow suppresses nothing (the host-clock use under
// it still fires).
func TestDirectiveErrors(t *testing.T) {
	pkgs, err := analysis.Load(analysistest.TestData(t), "compmig/internal/analysis/fixtures/directive")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, analysis.Suite)
	if err != nil {
		t.Fatal(err)
	}
	var missing, unknown, clock bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "requires a justification"):
			missing = true
		case d.Analyzer == "directive" && strings.Contains(d.Message, "unknown simvet directive"):
			unknown = true
		case d.Analyzer == "nodeterminism" && strings.Contains(d.Message, "time.Now"):
			clock = true
		}
	}
	if !missing || !unknown || !clock {
		t.Errorf("want justification-missing, unknown-directive, and unsuppressed time.Now findings; got:\n%v", diags)
	}
	if len(diags) != 3 {
		t.Errorf("want exactly 3 findings, got %d:\n%v", len(diags), diags)
	}
}

// TestClassify pins the manifest: the simulation core must be
// sim-charged, the policy layer host-side, and the runtime
// cycle-charged, or the analyzers silently stop auditing them.
func TestClassify(t *testing.T) {
	pkgs, err := analysis.Load("", "compmig/internal/sim", "compmig/internal/core", "compmig/internal/policy", "compmig/internal/apps/btree")
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]analysis.Class{}
	for _, p := range pkgs {
		classes[p.Path] = p.Class
	}
	if !classes["compmig/internal/sim"].SimCharged {
		t.Error("internal/sim must be sim-charged")
	}
	if c := classes["compmig/internal/core"]; !c.SimCharged || !c.CycleCharged {
		t.Errorf("internal/core must be sim-charged and cycle-charged, got %+v", c)
	}
	if c := classes["compmig/internal/policy"]; !c.HostSide || c.SimCharged {
		t.Errorf("internal/policy must be host-side only, got %+v", c)
	}
	if !classes["compmig/internal/apps/btree"].SimCharged {
		t.Error("internal/apps/btree must be sim-charged (apps/... pattern)")
	}
}
