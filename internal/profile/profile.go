// Package profile collects host-side (wall clock, not simulated)
// per-subsystem counters so the simulator's own performance is
// observable: how often each fast path fires, how much protocol work
// still takes the event-driven slow path, and where host nanoseconds go.
//
// Counts are cheap and collected unconditionally — subsystems either
// increment a process-wide atomic directly or batch per-run tallies and
// flush them once (see internal/mem). Nanosecond timing is only recorded
// while Enable(true) is in effect (the paperfigs -profile flag), because
// calling time.Now around hot paths is itself a measurable cost.
package profile

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

var enabled atomic.Bool

// Enable turns nanosecond timing on or off process-wide.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether timing is being collected.
func Enabled() bool { return enabled.Load() }

// Section is one profiled subsystem entry point.
type Section struct {
	Count atomic.Uint64
	Ns    atomic.Int64
}

// Add records n entries.
func (s *Section) Add(n uint64) { s.Count.Add(n) }

// AddTimed records n entries that took d of host time.
func (s *Section) AddTimed(n uint64, d time.Duration) {
	s.Count.Add(n)
	s.Ns.Add(d.Nanoseconds())
}

// Time starts a host-time measurement and returns the stop function that
// records n entries with the elapsed time; the intended use is
// `defer sec.Time(1)()`. Keeping the time.Now calls inside this package
// is part of the simvet nodeterminism contract: simulation-charged
// packages never touch the host clock directly, they only bracket a
// region with a profile timer that is inert (and cheap) unless the
// -profile flag enabled timing. Host timing can never perturb simulated
// event order either way — it observes the run, the event heap orders it.
func (s *Section) Time(n uint64) func() {
	start := time.Now()
	return func() { s.AddTimed(n, time.Since(start)) }
}

// TimeNs is Time for call sites that batch their counts separately: the
// stop function adds only the elapsed nanoseconds.
func (s *Section) TimeNs() func() {
	start := time.Now()
	return func() { s.Ns.Add(time.Since(start).Nanoseconds()) }
}

// The profiled sections. Mem counts are line-granularity accesses; the
// slow-path timing is inclusive — under the engine's direct-handoff
// dispatch a blocked access pumps other events on its own goroutine, so
// overlapping slow accesses double-count wall time. Use the counts for
// exact attribution and the timings for relative weight.
var (
	MemFastHits  Section // accesses satisfied by the inline all-hit path
	MemFastLocal Section // misses completed inline at the home module
	MemSlow      Section // accesses through the event-driven protocol
	NetSends     Section // messages injected into the simulated network
	HeapOps      Section // event-heap pushes
	PolicyRPC    Section // policy decisions that chose RPC
	PolicyCM     Section // policy decisions that chose computation migration
	PolicySM     Section // policy decisions that chose shared memory
	PolicyOM     Section // policy decisions that chose object migration

	FaultDrops       Section // injected message losses (incl. crash windows, acks)
	FaultDups        Section // injected message duplications
	FaultRetransmits Section // reliability-layer retransmissions
	FaultTimeouts    Section // retransmission timer firings
	FaultGiveUps     Section // messages abandoned after the attempt budget

	ShardFallbacks Section // runs that requested shards but fell back to the serial engine

	StoreAppends         Section // WAL records appended
	StoreCheckpointBytes Section // bytes written by checkpoint folds
	StoreReplays         Section // records re-applied during crash recovery
	StoreRecoveryCycles  Section // simulated cycles spent restoring + replaying
)

// Stat is one row of a snapshot.
type Stat struct {
	Name  string
	Count uint64
	Ns    int64
}

// Snapshot returns the current totals in a fixed order.
func Snapshot() []Stat {
	return []Stat{
		{"mem.fast_hits", MemFastHits.Count.Load(), MemFastHits.Ns.Load()},
		{"mem.fast_local", MemFastLocal.Count.Load(), MemFastLocal.Ns.Load()},
		{"mem.slow", MemSlow.Count.Load(), MemSlow.Ns.Load()},
		{"net.sends", NetSends.Count.Load(), NetSends.Ns.Load()},
		{"engine.heap_pushes", HeapOps.Count.Load(), HeapOps.Ns.Load()},
		{"policy.rpc", PolicyRPC.Count.Load(), PolicyRPC.Ns.Load()},
		{"policy.cm", PolicyCM.Count.Load(), PolicyCM.Ns.Load()},
		{"policy.sm", PolicySM.Count.Load(), PolicySM.Ns.Load()},
		{"policy.om", PolicyOM.Count.Load(), PolicyOM.Ns.Load()},
		{"fault.drops", FaultDrops.Count.Load(), FaultDrops.Ns.Load()},
		{"fault.dups", FaultDups.Count.Load(), FaultDups.Ns.Load()},
		{"fault.retransmits", FaultRetransmits.Count.Load(), FaultRetransmits.Ns.Load()},
		{"fault.timeouts", FaultTimeouts.Count.Load(), FaultTimeouts.Ns.Load()},
		{"fault.giveups", FaultGiveUps.Count.Load(), FaultGiveUps.Ns.Load()},
		{"shard.fallbacks", ShardFallbacks.Count.Load(), ShardFallbacks.Ns.Load()},
		{"store.wal_appends", StoreAppends.Count.Load(), StoreAppends.Ns.Load()},
		{"store.checkpoint_bytes", StoreCheckpointBytes.Count.Load(), StoreCheckpointBytes.Ns.Load()},
		{"store.replay_events", StoreReplays.Count.Load(), StoreReplays.Ns.Load()},
		{"store.recovery_cycles", StoreRecoveryCycles.Count.Load(), StoreRecoveryCycles.Ns.Load()},
	}
}

// Report formats totals (optionally deltas against a prior snapshot from
// the same process) as an aligned table.
func Report(since []Stat) string {
	cur := Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %12s %12s\n", "section", "count", "host ms")
	for i, s := range cur {
		count, ns := s.Count, s.Ns
		if since != nil {
			count -= since[i].Count
			ns -= since[i].Ns
		}
		fmt.Fprintf(&b, "%-20s %12d %12.1f\n", s.Name, count, float64(ns)/1e6)
	}
	return b.String()
}
