package profile

import (
	"sync"
	"time"
)

// ShardCounters are one clustered run's per-lane statistics: how many
// simulated events each lane executed, how many synchronization windows
// it sat out ("null windows" — the window-barrier analogue of PDES null
// messages), how many cross-lane messages it originated, and how many
// host nanoseconds it spent finished-and-waiting at window barriers.
// The slices are indexed by lane; all fields are written only by the
// cluster coordinator or, for the barrier stamps, by each lane's own
// driver goroutine with the coordinator's channel barrier ordering the
// reads.
type ShardCounters struct {
	Shards    int
	Windows   uint64
	Events    []uint64
	Nulls     []uint64
	Cross     []uint64
	BlockedNs []int64

	finishNs []int64 // per-window completion stamps, reset each window
}

// NewShardCounters returns zeroed counters for a cluster of shards lanes.
func NewShardCounters(shards int) *ShardCounters {
	return &ShardCounters{
		Shards:    shards,
		Events:    make([]uint64, shards),
		Nulls:     make([]uint64, shards),
		Cross:     make([]uint64, shards),
		BlockedNs: make([]int64, shards),
		finishNs:  make([]int64, shards),
	}
}

// LaneFinished stamps the host time lane completed the current window.
// Lane drivers call it from their own goroutines; keeping the time.Now
// inside this package upholds the nodeterminism contract for the sim
// package, and the stamp can never perturb simulated order.
func (c *ShardCounters) LaneFinished(lane int) {
	c.finishNs[lane] = time.Now().UnixNano()
}

// WindowDone folds the window's completion stamps into BlockedNs: each
// lane is charged the time between its own finish and the slowest
// lane's. The coordinator calls it after the window barrier, so the
// stamps are fully visible.
func (c *ShardCounters) WindowDone() {
	var last int64
	for _, ns := range c.finishNs {
		if ns > last {
			last = ns
		}
	}
	for i, ns := range c.finishNs {
		if ns != 0 && ns < last {
			c.BlockedNs[i] += last - ns
		}
		c.finishNs[i] = 0
	}
}

// Process-wide accumulation of clustered-run counters, for bench
// reports: RecordShard folds a finished run in, ShardSnapshot copies the
// totals out. Lanes are aligned by index; runs with different shard
// counts widen the slices.
var (
	shardMu  sync.Mutex
	shardAgg ShardCounters
)

// RecordShard adds one finished run's counters to the process totals.
func RecordShard(c *ShardCounters) {
	shardMu.Lock()
	defer shardMu.Unlock()
	if c.Shards > shardAgg.Shards {
		grow := func(s []uint64) []uint64 {
			return append(s, make([]uint64, c.Shards-len(s))...)
		}
		shardAgg.Events = grow(shardAgg.Events)
		shardAgg.Nulls = grow(shardAgg.Nulls)
		shardAgg.Cross = grow(shardAgg.Cross)
		shardAgg.BlockedNs = append(shardAgg.BlockedNs, make([]int64, c.Shards-len(shardAgg.BlockedNs))...)
		shardAgg.Shards = c.Shards
	}
	shardAgg.Windows += c.Windows
	for i := 0; i < c.Shards; i++ {
		shardAgg.Events[i] += c.Events[i]
		shardAgg.Nulls[i] += c.Nulls[i]
		shardAgg.Cross[i] += c.Cross[i]
		shardAgg.BlockedNs[i] += c.BlockedNs[i]
	}
}

// ShardSnapshot returns a copy of the process-wide clustered-run totals.
func ShardSnapshot() ShardCounters {
	shardMu.Lock()
	defer shardMu.Unlock()
	out := ShardCounters{Shards: shardAgg.Shards, Windows: shardAgg.Windows}
	out.Events = append([]uint64(nil), shardAgg.Events...)
	out.Nulls = append([]uint64(nil), shardAgg.Nulls...)
	out.Cross = append([]uint64(nil), shardAgg.Cross...)
	out.BlockedNs = append([]int64(nil), shardAgg.BlockedNs...)
	return out
}
