package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates values into power-of-two buckets — enough
// resolution for latency distributions without unbounded memory. The
// zero value is ready to use.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

func bucketOf(v uint64) int {
	b := 0
	for v > 0 {
		b++
		v >>= 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// AddFrom merges another histogram's observations into h, as if every
// value o observed had been observed by h. Merge order does not matter.
func (h *Histogram) AddFrom(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for b, n := range o.buckets {
		h.buckets[b] += n
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max return the observed extremes.
func (h *Histogram) Min() uint64 { return h.min }
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// top of the bucket containing it. Bucket widths are powers of two, so
// the answer is within 2x of exact — adequate for tail reporting.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for b, n := range h.buckets {
		seen += n
		if seen >= target {
			if b == 0 {
				return 0
			}
			top := uint64(1)<<b - 1
			if top > h.max {
				top = h.max
			}
			return top
		}
	}
	return h.max
}

// String renders a compact summary line.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no observations"
	}
	return fmt.Sprintf("n=%d mean=%.0f min=%d p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.min, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Bars renders an ASCII distribution over the occupied buckets.
func (h *Histogram) Bars(width int) string {
	if h.count == 0 {
		return "no observations\n"
	}
	lo, hi := -1, 0
	var peak uint64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if lo < 0 {
			lo = b
		}
		hi = b
		if n > peak {
			peak = n
		}
	}
	var sb strings.Builder
	for b := lo; b <= hi; b++ {
		n := h.buckets[b]
		bar := int(float64(width) * float64(n) / float64(peak))
		low := uint64(0)
		if b > 0 {
			low = 1 << (b - 1)
		}
		fmt.Fprintf(&sb, "%10d..%-10d %8d %s\n", low, uint64(1)<<b-1, n, strings.Repeat("#", bar))
	}
	return sb.String()
}
