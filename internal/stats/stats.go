// Package stats collects the measurements the paper reports: message and
// word counts (bandwidth), operation throughput, and per-category cycle
// breakdowns (Table 5). All counters are plain — the simulator runs one
// goroutine at a time, so no synchronization is needed.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Category labels a cycle-cost bucket. The set mirrors Table 5 of the
// paper, split into sender-side, transit, and receiver-side costs, plus
// user code.
type Category int

const (
	CatUserCode Category = iota
	CatNetworkTransit
	// Receiver-side.
	CatCopyPacket
	CatThreadCreation
	CatRecvLinkage
	CatUnmarshal
	CatGIDTranslation
	CatScheduler
	CatForwardingCheck
	CatRecvAllocPacket
	// Sender-side.
	CatSendLinkage
	CatSendAllocPacket
	CatMessageSend
	CatMarshal
	// Shared-memory substrate (not in Table 5; separate accounting).
	CatCacheAccess
	CatCoherence
	// Synchronization (lock spin/queue handling).
	CatSync
	// Durable store: WAL appends, fsync barriers, checkpoints, replay.
	CatDurability

	numCategories
)

var categoryNames = [numCategories]string{
	CatUserCode:        "User code",
	CatNetworkTransit:  "Network transit",
	CatCopyPacket:      "Copy packet",
	CatThreadCreation:  "Thread creation",
	CatRecvLinkage:     "Procedure linkage (recv)",
	CatUnmarshal:       "Unmarshaling",
	CatGIDTranslation:  "Object ID translation",
	CatScheduler:       "Scheduler",
	CatForwardingCheck: "Forwarding check",
	CatRecvAllocPacket: "Allocate packet (recv)",
	CatSendLinkage:     "Procedure linkage (send)",
	CatSendAllocPacket: "Allocate packet (send)",
	CatMessageSend:     "Message send",
	CatMarshal:         "Marshaling",
	CatCacheAccess:     "Cache access",
	CatCoherence:       "Coherence protocol",
	CatSync:            "Synchronization",
	CatDurability:      "Durability",
}

// String returns the human-readable category name used in Table 5.
func (c Category) String() string {
	if c < 0 || c >= numCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// ReceiverCategories lists the buckets Table 5 groups under "Receiver
// total", in the paper's order.
func ReceiverCategories() []Category {
	return []Category{
		CatCopyPacket, CatThreadCreation, CatRecvLinkage, CatUnmarshal,
		CatGIDTranslation, CatScheduler, CatForwardingCheck, CatRecvAllocPacket,
	}
}

// SenderCategories lists the buckets Table 5 groups under "Sender total".
func SenderCategories() []Category {
	return []Category{CatSendLinkage, CatSendAllocPacket, CatMessageSend, CatMarshal}
}

// Collector accumulates every measurement for one simulation run.
type Collector struct {
	cycles [numCategories]uint64

	// Messages counts runtime-level messages by kind.
	Messages map[string]uint64
	// WordsSent counts total 32-bit words put on the network.
	WordsSent uint64
	// Ops counts completed high-level operations (counting-network
	// requests, B-tree ops).
	Ops uint64
	// OpLatency accumulates total op latency in cycles, for mean latency.
	OpLatency uint64
	// Latency is the full operation-latency distribution.
	Latency Histogram

	// Window support for throughput/bandwidth over a measurement interval:
	// callers snapshot at interval start and subtract.
	startCycle uint64
	startWords uint64
	startOps   uint64

	// Cache statistics for the shared-memory substrate.
	CacheHits       uint64
	CacheMisses     uint64
	Invalidations   uint64
	ProtocolMsgs    uint64
	LimitlessTraps  uint64
	Prefetches      uint64
	PrefetchJoins   uint64
	ReplicaReads    uint64
	ReplicaWrites   uint64
	MigrationsSent  uint64
	MigrationsLocal uint64
	Forwards        uint64
	RPCCalls        uint64
	ShortCalls      uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{Messages: make(map[string]uint64)}
}

// AddFrom merges another collector's measurements into s: cycle
// categories, message counts, operations, latency distribution, and the
// named counters all add. The merge is commutative, which is what lets
// a sharded run keep one collector per lane and fold them into the
// serial collector's totals afterwards. Window marks (MarkWindow state)
// are not merged — windowed rates over merged collectors must be
// computed from summed snapshots, as the clustered experiment runners
// do at their barriers.
func (s *Collector) AddFrom(o *Collector) {
	for c := range s.cycles {
		s.cycles[c] += o.cycles[c]
	}
	for k, v := range o.Messages {
		s.Messages[k] += v
	}
	s.WordsSent += o.WordsSent
	s.Ops += o.Ops
	s.OpLatency += o.OpLatency
	s.Latency.AddFrom(&o.Latency)
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Invalidations += o.Invalidations
	s.ProtocolMsgs += o.ProtocolMsgs
	s.LimitlessTraps += o.LimitlessTraps
	s.Prefetches += o.Prefetches
	s.PrefetchJoins += o.PrefetchJoins
	s.ReplicaReads += o.ReplicaReads
	s.ReplicaWrites += o.ReplicaWrites
	s.MigrationsSent += o.MigrationsSent
	s.MigrationsLocal += o.MigrationsLocal
	s.Forwards += o.Forwards
	s.RPCCalls += o.RPCCalls
	s.ShortCalls += o.ShortCalls
}

// AddCycles charges n cycles to category c.
func (s *Collector) AddCycles(c Category, n uint64) { s.cycles[c] += n }

// Cycles returns the cycles charged to category c.
func (s *Collector) Cycles(c Category) uint64 { return s.cycles[c] }

// TotalCycles sums all categories.
func (s *Collector) TotalCycles() uint64 {
	var t uint64
	for _, v := range s.cycles {
		t += v
	}
	return t
}

// SumCycles sums the given categories.
func (s *Collector) SumCycles(cats []Category) uint64 {
	var t uint64
	for _, c := range cats {
		t += s.cycles[c]
	}
	return t
}

// CountMessage records one message of the given kind carrying words
// 32-bit words (header included).
func (s *Collector) CountMessage(kind string, words uint64) {
	s.Messages[kind]++
	s.WordsSent += words
}

// TotalMessages sums message counts across kinds.
func (s *Collector) TotalMessages() uint64 {
	var t uint64
	for _, v := range s.Messages {
		t += v
	}
	return t
}

// CountOp records one completed high-level operation and its latency.
func (s *Collector) CountOp(latency uint64) {
	s.Ops++
	s.OpLatency += latency
	s.Latency.Observe(latency)
}

// MeanOpLatency returns average operation latency in cycles.
func (s *Collector) MeanOpLatency() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.OpLatency) / float64(s.Ops)
}

// MarkWindow begins a measurement window at the given cycle; Throughput
// and Bandwidth report rates within the window. Use it to exclude warmup.
func (s *Collector) MarkWindow(nowCycle uint64) {
	s.startCycle = nowCycle
	s.startWords = s.WordsSent
	s.startOps = s.Ops
}

// Throughput returns operations per 1000 cycles within the window ending
// at nowCycle (the paper's Figure 2 / Tables 1 and 3 metric).
func (s *Collector) Throughput(nowCycle uint64) float64 {
	dt := nowCycle - s.startCycle
	if dt == 0 {
		return 0
	}
	return float64(s.Ops-s.startOps) * 1000 / float64(dt)
}

// Bandwidth returns words sent per 10 cycles within the window ending at
// nowCycle (the paper's Figure 3 / Tables 2 and 4 metric).
func (s *Collector) Bandwidth(nowCycle uint64) float64 {
	dt := nowCycle - s.startCycle
	if dt == 0 {
		return 0
	}
	return float64(s.WordsSent-s.startWords) * 10 / float64(dt)
}

// HitRate returns the cache hit fraction in [0,1].
func (s *Collector) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// BreakdownRow is one line of a Table 5-style report.
type BreakdownRow struct {
	Label   string
	Cycles  float64
	Percent float64
	Indent  int
}

// Breakdown renders per-migration average costs in the layout of Table 5.
// divisor is the number of migrations to average over.
func (s *Collector) Breakdown(divisor uint64) []BreakdownRow {
	if divisor == 0 {
		divisor = 1
	}
	d := float64(divisor)
	total := float64(s.TotalCycles()) / d
	row := func(label string, cyc float64, indent int) BreakdownRow {
		pct := 0.0
		if total > 0 {
			pct = cyc / total * 100
		}
		return BreakdownRow{Label: label, Cycles: cyc, Percent: pct, Indent: indent}
	}
	recv := float64(s.SumCycles(ReceiverCategories())) / d
	send := float64(s.SumCycles(SenderCategories())) / d
	rows := []BreakdownRow{
		row("Total time", total, 0),
		row("User code", float64(s.cycles[CatUserCode])/d, 0),
		row("Network transit", float64(s.cycles[CatNetworkTransit])/d, 0),
		row("Message overhead total", recv+send, 0),
		row("Receiver total", recv, 1),
	}
	for _, c := range ReceiverCategories() {
		rows = append(rows, row(c.String(), float64(s.cycles[c])/d, 2))
	}
	rows = append(rows, row("Sender total", send, 1))
	for _, c := range SenderCategories() {
		rows = append(rows, row(c.String(), float64(s.cycles[c])/d, 2))
	}
	return rows
}

// FormatBreakdown renders Breakdown as an aligned text table.
func (s *Collector) FormatBreakdown(divisor uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %8s %8s\n", "Category", "Cycles", "Percent")
	for _, r := range s.Breakdown(divisor) {
		fmt.Fprintf(&b, "%-34s %8.0f %7.0f%%\n",
			strings.Repeat("  ", r.Indent)+r.Label, r.Cycles, r.Percent)
	}
	return b.String()
}

// MessageKinds returns message kinds sorted by name (for stable output).
func (s *Collector) MessageKinds() []string {
	kinds := make([]string, 0, len(s.Messages))
	for k := range s.Messages {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
