package stats

import (
	"strings"
	"testing"
)

func TestCycleAccounting(t *testing.T) {
	c := NewCollector()
	c.AddCycles(CatMarshal, 22)
	c.AddCycles(CatMarshal, 22)
	c.AddCycles(CatUserCode, 150)
	if c.Cycles(CatMarshal) != 44 {
		t.Errorf("marshal = %d", c.Cycles(CatMarshal))
	}
	if c.TotalCycles() != 194 {
		t.Errorf("total = %d", c.TotalCycles())
	}
	if c.SumCycles(SenderCategories()) != 44 {
		t.Errorf("sender sum = %d", c.SumCycles(SenderCategories()))
	}
}

func TestMessageAccounting(t *testing.T) {
	c := NewCollector()
	c.CountMessage("rpc", 10)
	c.CountMessage("rpc", 10)
	c.CountMessage("migrate", 8)
	if c.TotalMessages() != 3 {
		t.Errorf("messages = %d", c.TotalMessages())
	}
	if c.WordsSent != 28 {
		t.Errorf("words = %d", c.WordsSent)
	}
	kinds := c.MessageKinds()
	if len(kinds) != 2 || kinds[0] != "migrate" || kinds[1] != "rpc" {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestWindowedThroughputAndBandwidth(t *testing.T) {
	c := NewCollector()
	// Warmup: 5 ops, 100 words before the window.
	for i := 0; i < 5; i++ {
		c.CountOp(10)
	}
	c.CountMessage("x", 100)
	c.MarkWindow(1000)
	// In-window: 20 ops, 500 words over 10000 cycles.
	for i := 0; i < 20; i++ {
		c.CountOp(10)
	}
	c.CountMessage("x", 500)
	if got := c.Throughput(11000); got != 2.0 {
		t.Errorf("throughput = %v, want 2.0 ops/1000cyc", got)
	}
	if got := c.Bandwidth(11000); got != 0.5 {
		t.Errorf("bandwidth = %v, want 0.5 words/10cyc", got)
	}
}

func TestZeroWindowSafe(t *testing.T) {
	c := NewCollector()
	c.MarkWindow(100)
	if c.Throughput(100) != 0 || c.Bandwidth(100) != 0 {
		t.Error("zero-length window should report zero rates")
	}
}

func TestMeanOpLatency(t *testing.T) {
	c := NewCollector()
	if c.MeanOpLatency() != 0 {
		t.Error("empty collector latency nonzero")
	}
	c.CountOp(100)
	c.CountOp(300)
	if c.MeanOpLatency() != 200 {
		t.Errorf("mean latency = %v", c.MeanOpLatency())
	}
}

func TestHitRate(t *testing.T) {
	c := NewCollector()
	if c.HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
	c.CacheHits = 3
	c.CacheMisses = 1
	if c.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestBreakdownTable5Shape(t *testing.T) {
	c := NewCollector()
	// Table 5 numbers for one migration.
	c.AddCycles(CatUserCode, 150)
	c.AddCycles(CatNetworkTransit, 17)
	c.AddCycles(CatCopyPacket, 76)
	c.AddCycles(CatThreadCreation, 66)
	c.AddCycles(CatRecvLinkage, 66)
	c.AddCycles(CatUnmarshal, 51)
	c.AddCycles(CatGIDTranslation, 36)
	c.AddCycles(CatScheduler, 36)
	c.AddCycles(CatForwardingCheck, 23)
	c.AddCycles(CatRecvAllocPacket, 16)
	c.AddCycles(CatSendLinkage, 44)
	c.AddCycles(CatSendAllocPacket, 35)
	c.AddCycles(CatMessageSend, 23)
	c.AddCycles(CatMarshal, 22)

	rows := c.Breakdown(1)
	byLabel := map[string]BreakdownRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["Receiver total"].Cycles != 370 {
		t.Errorf("receiver total = %v", byLabel["Receiver total"].Cycles)
	}
	if byLabel["Sender total"].Cycles != 124 {
		t.Errorf("sender total = %v", byLabel["Sender total"].Cycles)
	}
	// Message overhead should dominate (paper: 74%).
	mo := byLabel["Message overhead total"]
	if mo.Percent < 60 || mo.Percent > 85 {
		t.Errorf("message overhead percent = %v, want ~74", mo.Percent)
	}
	// Dividing by 2 migrations halves the cycles.
	half := c.Breakdown(2)
	if half[0].Cycles*2 != rows[0].Cycles {
		t.Error("divisor not applied")
	}
	// Percentages unchanged by divisor.
	if half[1].Percent != rows[1].Percent {
		t.Error("percent should not depend on divisor")
	}
}

func TestFormatBreakdown(t *testing.T) {
	c := NewCollector()
	c.AddCycles(CatUserCode, 100)
	out := c.FormatBreakdown(1)
	if !strings.Contains(out, "User code") || !strings.Contains(out, "Receiver total") {
		t.Errorf("format missing rows:\n%s", out)
	}
}

func TestCategoryString(t *testing.T) {
	if CatMarshal.String() != "Marshaling" {
		t.Errorf("got %q", CatMarshal.String())
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("out-of-range category String not defensive")
	}
}
