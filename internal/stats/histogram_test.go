package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram not empty")
	}
	for _, v := range []uint64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Mean() != 25 {
		t.Errorf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 40 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	if err := quick.Check(func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var max uint64
		for _, v := range vals {
			h.Observe(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		// Quantiles are monotone and bounded by the max observation.
		q50, q95, q100 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(1.0)
		return q50 <= q95 && q95 <= q100 && q100 <= max*2+1 && q100 >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileUpperBound(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	// p50 of 1..1000 is 500; the bucketed bound may be up to the top of
	// its power-of-two bucket (511) but never below the true value.
	q := h.Quantile(0.5)
	if q < 500 || q > 1023 {
		t.Errorf("p50 bound = %d, want within [500,1023]", q)
	}
	if h.Quantile(1.0) != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", h.Quantile(1.0))
	}
}

func TestHistogramZeroValues(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(0)
	if h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("zeros: p50=%d max=%d", h.Quantile(0.5), h.Max())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	if h.String() != "no observations" {
		t.Error("empty string form")
	}
	h.Observe(100)
	for _, want := range []string{"n=1", "mean=100", "p95"} {
		if !strings.Contains(h.String(), want) {
			t.Errorf("summary %q missing %q", h.String(), want)
		}
	}
}

func TestHistogramBars(t *testing.T) {
	var h Histogram
	if !strings.Contains(h.Bars(10), "no observations") {
		t.Error("empty bars")
	}
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i * 7))
	}
	out := h.Bars(20)
	if !strings.Contains(out, "#") {
		t.Errorf("bars missing marks:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 3 {
		t.Errorf("suspiciously few bucket rows:\n%s", out)
	}
}
