// Package fault is a deterministic, seed-driven fault plan for the
// simulated machine: message drop, duplication, reorder (modeled as
// jitter that lets later messages overtake), delay jitter, and
// per-processor crash/pause windows. The injector draws from its own
// PRNG stream, so a fault plan never perturbs the engine's stream — a
// run with an all-zero plan is byte-identical to one with no plan at
// all, and two runs with the same plan and seed are identical.
//
// The network's reliability layer (internal/network, attached via
// AttachFaults) consults the injector per transmission and implements
// at-most-once delivery on top: sequence-numbered framing, receiver
// acks with duplicate suppression keyed by (source, sequence), and
// sender retransmission under a capped exponential backoff that ends in
// a typed GiveUpError after MaxAttempts transmissions.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"compmig/internal/profile"
	"compmig/internal/sim"
)

// Defaults for the recovery protocol when the spec leaves them zero.
const (
	// DefaultRTO is the initial retransmission timeout in cycles — a few
	// times the software-model round trip, so a lightly loaded machine
	// never retransmits spuriously.
	DefaultRTO = 4000
	// DefaultRTOMax caps the exponential backoff.
	DefaultRTOMax = 32000
	// DefaultMaxAttempts bounds total transmissions of one message. At a
	// 5% drop rate the chance of losing all ten attempts (message or its
	// ack) is under 1e-10, so give-ups are test artifacts, not noise.
	DefaultMaxAttempts = 10
)

// Window is one scheduled processor outage. A crash window drops every
// message delivered to the processor inside it (senders recover by
// retransmitting past the window); a pause window holds deliveries and
// releases them when the window closes. Both kinds also stall work
// segments booked on the processor (see sim.Proc down windows). A wipe
// window is a crash that additionally discards the processor's volatile
// state at the window start — location-hint caches, in-flight
// activations, and any object state not yet persisted — forcing the
// durable store (internal/store) to rebuild it from checkpoint + WAL.
type Window struct {
	Proc  int
	Start uint64
	Dur   uint64
	Pause bool // false = crash-restart, true = pause
	Wipe  bool // crash that loses volatile state (implies !Pause)
}

// End returns the first cycle after the outage.
func (w Window) End() uint64 { return w.Start + w.Dur }

// Spec is a parsed fault plan. The zero Spec (and a nil *Spec) injects
// nothing; see Enabled.
type Spec struct {
	Drop    float64 // per-transmission loss probability
	Dup     float64 // per-transmission duplication probability
	Reorder float64 // probability of overtaking jitter on a delivery
	// DelayMin/DelayMax bound a uniform per-delivery jitter in cycles.
	DelayMin, DelayMax uint64
	Windows            []Window
	// Seed seeds the injector's private PRNG stream; 0 means 1.
	Seed uint64

	// Recovery-protocol knobs; zero means the package default.
	RTO         uint64
	RTOMax      uint64
	MaxAttempts int

	// Ckpt is the durable store's checkpoint interval in cycles; zero
	// means cost.DefaultCkptInterval. It only matters when the run is
	// durable (a wipe window is present or the app forces -durable); a
	// ckpt-only spec injects nothing and leaves Enabled() false.
	Ckpt uint64
}

// HasWipe reports whether any window is a loss-inducing wipe. Apps use
// it to auto-enable the durable store: a wipe without a WAL would lose
// acknowledged state.
func (s *Spec) HasWipe() bool {
	if s == nil {
		return false
	}
	for _, w := range s.Windows {
		if w.Wipe {
			return true
		}
	}
	return false
}

// Enabled reports whether the plan can inject any fault at all. A
// disabled plan must not be attached to a network: the reliability
// framing itself (sequence words, acks) changes wire charges, so the
// byte-identity contract for fault-free runs is "no injector attached".
// CkptInterval returns the checkpoint interval the spec requests, in
// cycles. Zero (including a nil spec) means the store's default.
func (s *Spec) CkptInterval() uint64 {
	if s == nil {
		return 0
	}
	return s.Ckpt
}

func (s *Spec) Enabled() bool {
	if s == nil {
		return false
	}
	return s.Drop > 0 || s.Dup > 0 || s.Reorder > 0 || s.DelayMax > 0 || len(s.Windows) > 0
}

func (s *Spec) seed() uint64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

func (s *Spec) rto() uint64 {
	if s.RTO == 0 {
		return DefaultRTO
	}
	return s.RTO
}

func (s *Spec) rtoMax() uint64 {
	if s.RTOMax == 0 {
		return DefaultRTOMax
	}
	return s.RTOMax
}

func (s *Spec) maxAttempts() int {
	if s.MaxAttempts == 0 {
		return DefaultMaxAttempts
	}
	return s.MaxAttempts
}

// String renders the spec in the grammar ParseSpec accepts.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("drop", s.Drop)
	add("dup", s.Dup)
	add("reorder", s.Reorder)
	if s.DelayMax > 0 || s.DelayMin > 0 {
		parts = append(parts, fmt.Sprintf("delay=%d:%d", s.DelayMin, s.DelayMax))
	}
	for _, w := range s.Windows {
		kind := "crash"
		switch {
		case w.Pause:
			kind = "pause"
		case w.Wipe:
			kind = "wipe"
		}
		parts = append(parts, fmt.Sprintf("%s=p%d@%d+%d", kind, w.Proc, w.Start, w.Dur))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.RTO != 0 {
		parts = append(parts, fmt.Sprintf("rto=%d", s.RTO))
	}
	if s.RTOMax != 0 {
		parts = append(parts, fmt.Sprintf("rtomax=%d", s.RTOMax))
	}
	if s.MaxAttempts != 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", s.MaxAttempts))
	}
	if s.Ckpt != 0 {
		parts = append(parts, fmt.Sprintf("ckpt=%d", s.Ckpt))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault plan, e.g.
//
//	drop=0.01,dup=0.005,delay=0:40,crash=p3@50000+20000,seed=7
//
// Keys: drop/dup/reorder (probabilities in [0,1]), delay=MIN:MAX
// (uniform jitter in cycles), crash=pN@START+DUR, pause=pN@START+DUR
// and wipe=pN@START+DUR (repeatable outage windows; wipe is a crash
// that loses the processor's volatile state), seed, rto, rtomax,
// retries, ckpt=N (durable-store checkpoint interval in cycles). An
// empty string parses to a nil spec (no faults).
func ParseSpec(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	s := &Spec{}
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("fault: malformed token %q (want key=value)", tok)
		}
		switch key {
		case "drop", "dup", "reorder":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", key, val)
			}
			switch key {
			case "drop":
				s.Drop = p
			case "dup":
				s.Dup = p
			case "reorder":
				s.Reorder = p
			}
		case "delay":
			lo, hi, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("fault: delay wants MIN:MAX cycles, got %q", val)
			}
			min, err1 := strconv.ParseUint(lo, 10, 64)
			max, err2 := strconv.ParseUint(hi, 10, 64)
			if err1 != nil || err2 != nil || min > max {
				return nil, fmt.Errorf("fault: delay wants MIN:MAX with MIN <= MAX, got %q", val)
			}
			s.DelayMin, s.DelayMax = min, max
		case "crash", "pause", "wipe":
			w, err := parseWindow(val)
			if err != nil {
				return nil, err
			}
			w.Pause = key == "pause"
			w.Wipe = key == "wipe"
			s.Windows = append(s.Windows, w)
		case "seed", "rto", "rtomax", "ckpt":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || (key != "seed" && n == 0) {
				return nil, fmt.Errorf("fault: %s wants a positive integer, got %q", key, val)
			}
			switch key {
			case "seed":
				s.Seed = n
			case "rto":
				s.RTO = n
			case "rtomax":
				s.RTOMax = n
			case "ckpt":
				s.Ckpt = n
			}
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 1<<20 {
				return nil, fmt.Errorf("fault: retries wants a positive attempt count, got %q", val)
			}
			s.MaxAttempts = n
		default:
			return nil, fmt.Errorf("fault: unknown key %q (want drop, dup, reorder, delay, crash, pause, wipe, seed, rto, rtomax, retries, ckpt)", key)
		}
	}
	if s.RTOMax != 0 && s.RTOMax < s.rto() {
		return nil, fmt.Errorf("fault: rtomax %d below rto %d", s.RTOMax, s.rto())
	}
	return s, nil
}

// parseWindow parses "pN@START+DUR".
func parseWindow(val string) (Window, error) {
	fail := func() (Window, error) {
		return Window{}, fmt.Errorf("fault: outage window wants pN@START+DUR, got %q", val)
	}
	if !strings.HasPrefix(val, "p") {
		return fail()
	}
	procStr, rest, ok := strings.Cut(val[1:], "@")
	if !ok {
		return fail()
	}
	startStr, durStr, ok := strings.Cut(rest, "+")
	if !ok {
		return fail()
	}
	proc, err1 := strconv.Atoi(procStr)
	start, err2 := strconv.ParseUint(startStr, 10, 64)
	dur, err3 := strconv.ParseUint(durStr, 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || proc < 0 || dur == 0 {
		return fail()
	}
	return Window{Proc: proc, Start: start, Dur: dur}, nil
}

// GiveUpError reports that the reliability layer exhausted its
// retransmission budget for one message.
type GiveUpError struct {
	Kind     string
	Src, Dst int
	Attempts int
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("fault: gave up on %s p%d->p%d after %d attempts",
		e.Kind, e.Src, e.Dst, e.Attempts)
}

// Counters tallies injected faults and recovery-protocol activity for
// one run. Plain integers: a run is single-goroutine.
type Counters struct {
	Dropped       uint64 // transmissions lost on the wire
	Duplicated    uint64 // transmissions delivered twice
	Delayed       uint64 // deliveries that drew nonzero jitter
	Reordered     uint64 // deliveries given overtaking jitter
	CrashDropped  uint64 // deliveries into a crash window
	PauseDelayed  uint64 // deliveries held by a pause window
	Retransmits   uint64 // sender retransmissions
	Timeouts      uint64 // retransmission timer firings
	DupSuppressed uint64 // receiver-side duplicate deliveries discarded
	Acks          uint64 // acks sent
	AckDropped    uint64 // acks lost on the wire
	GiveUps       uint64 // messages abandoned after MaxAttempts
	LateReplies   uint64 // replies for already-settled reply slots
}

// Verdict is the injector's decision for one transmission.
type Verdict struct {
	Drop     bool
	Dup      bool
	Delay    uint64 // extra delivery delay for the message
	DupDelay uint64 // extra delay for the duplicate copy (valid when Dup)
}

type scriptOp int

const (
	opDrop scriptOp = iota
	opDup
)

type scriptAct struct {
	nth int // 1-based transmission index within the kind
	op  scriptOp
}

// Injector turns a Spec into per-transmission verdicts. It owns a
// private PRNG stream (never the engine's), so attaching one changes no
// draw any other component makes. One injector serves one run; the
// harness worker pool runs many runs concurrently, each with its own.
type Injector struct {
	spec     Spec
	rng      *sim.PRNG
	Counters Counters

	// scripts target the nth transmission of a message kind — test
	// hooks for deterministic single-fault scenarios.
	scripts map[string][]scriptAct
	sent    map[string]int
}

// NewInjector builds an injector for the plan. Callers gate attachment
// on Spec.Enabled(); NewInjector itself accepts any spec so tests can
// build script-only injectors from a zero plan.
func NewInjector(s *Spec) *Injector {
	if s == nil {
		s = &Spec{}
	}
	return &Injector{spec: *s, rng: sim.NewPRNG(s.seed())}
}

// RTOInitial returns the initial retransmission timeout in cycles.
func (i *Injector) RTOInitial() uint64 { return i.spec.rto() }

// RTOMax returns the backoff cap in cycles.
func (i *Injector) RTOMax() uint64 { return i.spec.rtoMax() }

// MaxAttempts returns the transmission budget per message.
func (i *Injector) MaxAttempts() int { return i.spec.maxAttempts() }

// Windows returns the plan's outage windows.
func (i *Injector) Windows() []Window { return i.spec.Windows }

// ScriptDrop makes the nth (1-based) transmission of the given message
// kind be lost, regardless of probabilities.
func (i *Injector) ScriptDrop(kind string, nth int) { i.script(kind, nth, opDrop) }

// ScriptDup makes the nth (1-based) transmission of the given message
// kind be delivered twice.
func (i *Injector) ScriptDup(kind string, nth int) { i.script(kind, nth, opDup) }

func (i *Injector) script(kind string, nth int, op scriptOp) {
	if i.scripts == nil {
		i.scripts = make(map[string][]scriptAct)
		i.sent = make(map[string]int)
	}
	i.scripts[kind] = append(i.scripts[kind], scriptAct{nth: nth, op: op})
	sort.Slice(i.scripts[kind], func(a, b int) bool { return i.scripts[kind][a].nth < i.scripts[kind][b].nth })
}

// Judge decides the fate of one transmission of the given kind. Scripted
// faults take precedence and consume no PRNG draws.
func (i *Injector) Judge(kind string) Verdict {
	if i.scripts != nil {
		i.sent[kind]++
		n := i.sent[kind]
		for _, act := range i.scripts[kind] {
			if act.nth != n {
				continue
			}
			switch act.op {
			case opDrop:
				return Verdict{Drop: true}
			case opDup:
				return Verdict{Dup: true, DupDelay: 1}
			}
		}
	}
	var v Verdict
	if i.spec.Drop > 0 && i.rng.Float64() < i.spec.Drop {
		v.Drop = true
		// A dropped transmission draws nothing further: the wire ate it.
		return v
	}
	if i.spec.Dup > 0 && i.rng.Float64() < i.spec.Dup {
		v.Dup = true
	}
	v.Delay = i.jitter()
	if v.Delay > 0 {
		i.Counters.Delayed++
	}
	if i.spec.Reorder > 0 && i.rng.Float64() < i.spec.Reorder {
		// Overtaking jitter: enough spread that messages injected later
		// can land earlier.
		v.Delay += 1 + i.rng.Uint64n(64)
		i.Counters.Reordered++
	}
	if v.Dup {
		v.DupDelay = 1 + i.jitter()
	}
	return v
}

// jitter draws the uniform per-delivery delay.
func (i *Injector) jitter() uint64 {
	if i.spec.DelayMax == 0 && i.spec.DelayMin == 0 {
		return 0
	}
	if i.spec.DelayMax > i.spec.DelayMin {
		return i.spec.DelayMin + i.rng.Uint64n(i.spec.DelayMax-i.spec.DelayMin+1)
	}
	return i.spec.DelayMin
}

// DeliveryDown consults the outage windows for a delivery to proc at
// cycle at: drop reports a crash window ate it; otherwise resumeAt is
// the earliest cycle the delivery may land (at itself when no pause
// window covers it).
func (i *Injector) DeliveryDown(proc int, at uint64) (drop bool, resumeAt uint64) {
	resumeAt = at
	for _, w := range i.spec.Windows {
		if w.Proc != proc || resumeAt < w.Start || resumeAt >= w.End() {
			continue
		}
		if !w.Pause {
			return true, 0
		}
		resumeAt = w.End()
	}
	return false, resumeAt
}

// FlushProfile adds the run's fault counters to the process-wide
// profile sections (countable in paperfigs -profile and bench reports).
func (i *Injector) FlushProfile() {
	c := &i.Counters
	profile.FaultDrops.Add(c.Dropped + c.CrashDropped + c.AckDropped)
	profile.FaultDups.Add(c.Duplicated)
	profile.FaultRetransmits.Add(c.Retransmits)
	profile.FaultTimeouts.Add(c.Timeouts)
	profile.FaultGiveUps.Add(c.GiveUps)
}
