package fault

import "testing"

// FuzzParseSpec checks that every accepted plan renders back to a
// canonical string that re-parses to the same plan (String/ParseSpec
// are a fixed point), and that rejection never panics.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"drop=0.01,dup=0.005,delay=0:40,crash=p3@50000+20000,seed=7",
		"drop=1,rto=50,rtomax=100,retries=3",
		"pause=p0@100+50,pause=p1@0+1",
		"reorder=0.5,delay=10:10",
		"drop=0",
		"drop=0.5,drop=0.1",
		"seed=18446744073709551615",
		"delay=40:10",
		"crash=p-1@0+0",
		"retries=1048577",
		"drop=1e-3",
		" drop=0.1 , dup=0.2 ",
		"rtomax=2000",
		"bogus=1",
		"wipe=p2@30000+10000,ckpt=25000",
		"wipe=p0@0+1",
		"wipe=p2@0+0",
		"ckpt=4000",
		"ckpt=0",
		"crash=p1@0+10,wipe=p1@50+10,pause=p1@100+10",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, text, err)
		}
		if s2.String() != canon {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", text, canon, s2.String())
		}
	})
}
