package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecEmpty(t *testing.T) {
	for _, in := range []string{"", "   ", "\t"} {
		s, err := ParseSpec(in)
		if err != nil || s != nil {
			t.Errorf("ParseSpec(%q) = %v, %v; want nil, nil", in, s, err)
		}
	}
}

func TestParseSpecFull(t *testing.T) {
	s, err := ParseSpec("drop=0.01,dup=0.005,reorder=0.1,delay=0:40,crash=p3@50000+20000,pause=p1@100+50,wipe=p2@30000+10000,seed=7,rto=2000,rtomax=16000,retries=5,ckpt=25000")
	if err != nil {
		t.Fatal(err)
	}
	want := &Spec{
		Drop: 0.01, Dup: 0.005, Reorder: 0.1,
		DelayMin: 0, DelayMax: 40,
		Windows: []Window{
			{Proc: 3, Start: 50000, Dur: 20000},
			{Proc: 1, Start: 100, Dur: 50, Pause: true},
			{Proc: 2, Start: 30000, Dur: 10000, Wipe: true},
		},
		Seed: 7, RTO: 2000, RTOMax: 16000, MaxAttempts: 5,
		Ckpt: 25000,
	}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in, wantSub string
	}{
		{"drop", "malformed token"},
		{"drop=", "malformed token"},
		{"drop=1.5", "probability in [0,1]"},
		{"dup=-0.1", "probability in [0,1]"},
		{"reorder=x", "probability in [0,1]"},
		{"delay=40", "MIN:MAX"},
		{"delay=40:10", "MIN <= MAX"},
		{"delay=a:b", "MIN <= MAX"},
		{"crash=3@0+10", "pN@START+DUR"},
		{"crash=p3@0", "pN@START+DUR"},
		{"crash=p3@0+0", "pN@START+DUR"}, // zero-length outage
		{"pause=p-1@0+10", "pN@START+DUR"},
		{"wipe=p3@0+0", "pN@START+DUR"}, // zero-length wipe
		{"wipe=3@0+10", "pN@START+DUR"},
		{"ckpt=0", "positive integer"},
		{"ckpt=x", "positive integer"},
		{"seed=x", "positive integer"},
		{"rto=0", "positive integer"},
		{"rtomax=0", "positive integer"},
		{"retries=0", "positive attempt count"},
		{"retries=-3", "positive attempt count"},
		{"rto=100,rtomax=50", "rtomax 50 below rto 100"},
		{"rtomax=2000", "below rto"}, // below the 4000-cycle default
		{"bogus=1", "unknown key"},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) = %+v, want error", c.in, s)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) error %q, want substring %q", c.in, err, c.wantSub)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []*Spec{
		nil,
		{Drop: 0.05},
		{Drop: 0.01, Dup: 0.005, DelayMax: 40, Seed: 7},
		{Reorder: 0.25, DelayMin: 5, DelayMax: 30},
		{Windows: []Window{{Proc: 3, Start: 50000, Dur: 20000}, {Proc: 0, Start: 0, Dur: 1, Pause: true}}},
		{Windows: []Window{{Proc: 2, Start: 30000, Dur: 10000, Wipe: true}}, Ckpt: 25000},
		{Ckpt: 4000},
		{Drop: 1, RTO: 50, RTOMax: 100, MaxAttempts: 3},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", s.String(), err)
			continue
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("round trip of %q: got %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestSpecEnabled(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.Enabled() {
		t.Error("nil spec enabled")
	}
	if (&Spec{}).Enabled() || (&Spec{Seed: 7, RTO: 100}).Enabled() {
		t.Error("spec with no fault knobs enabled")
	}
	// A checkpoint interval alone injects nothing: the byte-identity
	// contract for non-faulty durable runs is "no injector attached".
	if (&Spec{Ckpt: 5000}).Enabled() {
		t.Error("ckpt-only spec enabled")
	}
	for _, s := range []*Spec{
		{Drop: 0.01}, {Dup: 0.01}, {Reorder: 0.01}, {DelayMax: 1},
		{Windows: []Window{{Proc: 0, Start: 0, Dur: 1}}},
		{Windows: []Window{{Proc: 0, Start: 0, Dur: 1, Wipe: true}}},
	} {
		if !s.Enabled() {
			t.Errorf("%+v not enabled", s)
		}
	}
}

func TestHasWipe(t *testing.T) {
	var nilSpec *Spec
	if nilSpec.HasWipe() {
		t.Error("nil spec has wipe")
	}
	if (&Spec{Windows: []Window{{Proc: 1, Start: 0, Dur: 10}}}).HasWipe() {
		t.Error("crash-only spec has wipe")
	}
	s := &Spec{Windows: []Window{
		{Proc: 1, Start: 0, Dur: 10},
		{Proc: 2, Start: 5, Dur: 10, Wipe: true},
	}}
	if !s.HasWipe() {
		t.Error("wipe window not detected")
	}
}

func TestInjectorDefaults(t *testing.T) {
	i := NewInjector(&Spec{})
	if i.RTOInitial() != DefaultRTO || i.RTOMax() != DefaultRTOMax || i.MaxAttempts() != DefaultMaxAttempts {
		t.Errorf("defaults not applied: rto=%d rtomax=%d attempts=%d",
			i.RTOInitial(), i.RTOMax(), i.MaxAttempts())
	}
	i = NewInjector(&Spec{RTO: 10, RTOMax: 20, MaxAttempts: 2})
	if i.RTOInitial() != 10 || i.RTOMax() != 20 || i.MaxAttempts() != 2 {
		t.Errorf("overrides not applied: rto=%d rtomax=%d attempts=%d",
			i.RTOInitial(), i.RTOMax(), i.MaxAttempts())
	}
}

// Same spec, same seed: the verdict sequence is identical.
func TestJudgeDeterministic(t *testing.T) {
	spec := &Spec{Drop: 0.2, Dup: 0.1, Reorder: 0.05, DelayMin: 1, DelayMax: 30, Seed: 42}
	a, b := NewInjector(spec), NewInjector(spec)
	for n := 0; n < 1000; n++ {
		va, vb := a.Judge("req"), b.Judge("req")
		if va != vb {
			t.Fatalf("verdict %d diverged: %+v vs %+v", n, va, vb)
		}
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverged: %+v vs %+v", a.Counters, b.Counters)
	}
	if a.Counters.Delayed == 0 || a.Counters.Reordered == 0 {
		t.Errorf("plan injected nothing: %+v", a.Counters)
	}
}

// A dropped transmission draws nothing further from the stream — the
// fate of later messages must not depend on what the wire ate.
func TestJudgeDropShortCircuits(t *testing.T) {
	v := NewInjector(&Spec{Drop: 1, DelayMax: 1000}).Judge("req")
	if !v.Drop || v.Dup || v.Delay != 0 || v.DupDelay != 0 {
		t.Errorf("dropped verdict carries extra effects: %+v", v)
	}
}

// Script hooks hit exactly the nth transmission of their kind and
// consume no PRNG draws.
func TestScriptHooks(t *testing.T) {
	i := NewInjector(&Spec{})
	i.ScriptDrop("req", 2)
	i.ScriptDup("req", 3)
	i.ScriptDrop("ack", 1)

	before := i.rng.State()
	var verdicts []Verdict
	for n := 0; n < 4; n++ {
		verdicts = append(verdicts, i.Judge("req"))
	}
	ack := i.Judge("ack")
	if i.rng.State() != before {
		t.Error("scripted faults consumed PRNG draws")
	}
	want := []Verdict{{}, {Drop: true}, {Dup: true, DupDelay: 1}, {}}
	if !reflect.DeepEqual(verdicts, want) {
		t.Errorf("req verdicts = %+v, want %+v", verdicts, want)
	}
	if !ack.Drop {
		t.Errorf("ack verdict = %+v, want drop", ack)
	}
}

func TestDeliveryDown(t *testing.T) {
	i := NewInjector(&Spec{Windows: []Window{
		{Proc: 1, Start: 100, Dur: 50},              // crash [100,150)
		{Proc: 2, Start: 100, Dur: 50, Pause: true}, // pause [100,150)
		{Proc: 2, Start: 150, Dur: 50, Pause: true}, // back-to-back pause [150,200)
		{Proc: 4, Start: 100, Dur: 50, Wipe: true},  // wipe [100,150)
	}})
	cases := []struct {
		proc     int
		at       uint64
		drop     bool
		resumeAt uint64
	}{
		{1, 99, false, 99},   // before the window
		{1, 100, true, 0},    // crash eats it
		{1, 149, true, 0},    // last covered cycle
		{1, 150, false, 150}, // window is half-open
		{2, 120, false, 200}, // pause chains into the next pause
		{2, 200, false, 200},
		{3, 120, false, 120}, // other procs unaffected
		{4, 120, true, 0},    // wipe drops deliveries like a crash
		{4, 150, false, 150},
	}
	for _, c := range cases {
		drop, resume := i.DeliveryDown(c.proc, c.at)
		if drop != c.drop || (!drop && resume != c.resumeAt) {
			t.Errorf("DeliveryDown(%d, %d) = %v, %d; want %v, %d",
				c.proc, c.at, drop, resume, c.drop, c.resumeAt)
		}
	}
}

func TestGiveUpErrorMessage(t *testing.T) {
	e := &GiveUpError{Kind: "rpc-req", Src: 0, Dst: 3, Attempts: 10}
	msg := e.Error()
	for _, want := range []string{"rpc-req", "p0->p3", "10 attempts"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q lacks %q", msg, want)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	i := NewInjector(&Spec{DelayMin: 5, DelayMax: 9, Seed: 3})
	seen := map[uint64]bool{}
	for n := 0; n < 500; n++ {
		v := i.Judge("req")
		if v.Delay < 5 || v.Delay > 9 {
			t.Fatalf("jitter %d outside [5,9]", v.Delay)
		}
		seen[v.Delay] = true
	}
	if len(seen) != 5 {
		t.Errorf("500 draws hit %d of 5 possible delays", len(seen))
	}
}
