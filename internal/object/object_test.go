package object

import "testing"

func TestNewAndState(t *testing.T) {
	s := NewSpace(4)
	type payload struct{ x int }
	g := s.New(2, &payload{x: 7})
	if s.Home(g) != 2 {
		t.Errorf("home = %d", s.Home(g))
	}
	if got := s.State(g).(*payload); got.x != 7 {
		t.Errorf("state = %+v", got)
	}
	if !s.Exists(g) {
		t.Error("object missing")
	}
	if s.Len() != 1 || s.Procs() != 4 {
		t.Errorf("len=%d procs=%d", s.Len(), s.Procs())
	}
}

func TestDistinctGIDs(t *testing.T) {
	s := NewSpace(8)
	seen := map[any]bool{}
	for i := 0; i < 100; i++ {
		g := s.New(i%8, i)
		if seen[g] {
			t.Fatal("duplicate gid")
		}
		seen[g] = true
	}
}

func TestHomeOutOfRangePanics(t *testing.T) {
	s := NewSpace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad home accepted")
		}
	}()
	s.New(5, nil)
}

func TestUnknownStatePanics(t *testing.T) {
	s := NewSpace(2)
	g := s.New(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown gid accepted")
		}
	}()
	s.State(g + 12345)
}

func TestMoveAndHome(t *testing.T) {
	s := NewSpace(4)
	g := s.New(1, "payload")
	if s.Home(g) != 1 || s.HasMoved(g) {
		t.Fatal("fresh object in wrong place")
	}
	s.Move(g, 3)
	if s.Home(g) != 3 || !s.HasMoved(g) {
		t.Fatalf("after move: home=%d moved=%v", s.Home(g), s.HasMoved(g))
	}
	if s.Moves != 1 {
		t.Errorf("moves = %d", s.Moves)
	}
	// Moving back to the birth processor clears the override.
	s.Move(g, 1)
	if s.HasMoved(g) {
		t.Error("move home did not clear the override")
	}
	if s.Home(g) != 1 {
		t.Errorf("home = %d", s.Home(g))
	}
}

func TestMoveValidation(t *testing.T) {
	s := NewSpace(2)
	g := s.New(0, nil)
	for _, fn := range []func(){
		func() { s.Move(g, 7) },     // out of range
		func() { s.Move(g+999, 1) }, // unknown object
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid move accepted")
				}
			}()
			fn()
		}()
	}
}
