// Package object implements the distributed object space of the
// Prelude-like runtime: every object has a global identifier, a home
// processor, and private state that only code executing on the home
// processor may touch (instance methods "always execute at the object on
// which they are invoked", §3.1).
package object

import (
	"fmt"

	"compmig/internal/gid"
)

// Space is the machine-wide object table. The simulator runs one
// goroutine at a time, so the table needs no locking; in a real system
// this would be a per-processor structure plus a name service.
type Space struct {
	alloc  gid.Allocator
	states map[gid.GID]any
	nprocs int

	// moved maps objects that have migrated away from their birth
	// processor (Emerald-style object mobility) to their current home.
	moved map[gid.GID]int
	// Moves counts object relocations.
	Moves uint64
}

// NewSpace creates an object space for a machine with nprocs processors.
func NewSpace(nprocs int) *Space {
	if nprocs <= 0 {
		panic("object: need at least one processor")
	}
	return &Space{states: make(map[gid.GID]any), moved: make(map[gid.GID]int), nprocs: nprocs}
}

// New places an object with the given state on processor home and
// returns its GID.
func (s *Space) New(home int, state any) gid.GID {
	if home < 0 || home >= s.nprocs {
		panic(fmt.Sprintf("object: home %d out of range [0,%d)", home, s.nprocs))
	}
	g := s.alloc.Next(home)
	s.states[g] = state
	return g
}

// State returns the object's private state. Callers in the runtime must
// already be executing on the object's home processor; the runtime
// enforces that invariant.
func (s *Space) State(g gid.GID) any {
	st, ok := s.states[g]
	if !ok {
		panic(fmt.Sprintf("object: unknown gid %#x", uint64(g)))
	}
	return st
}

// Exists reports whether g names a live object.
func (s *Space) Exists(g gid.GID) bool {
	_, ok := s.states[g]
	return ok
}

// Home returns the object's current home processor — its birth
// processor unless it has migrated since.
func (s *Space) Home(g gid.GID) int {
	if h, ok := s.moved[g]; ok {
		return h
	}
	return g.Home()
}

// Move relocates an object to a new home (the Emerald-style mobility
// the paper wanted to compare against). The GID is unchanged: senders
// holding stale locations are corrected by forwarding.
func (s *Space) Move(g gid.GID, newHome int) {
	if !s.Exists(g) {
		panic(fmt.Sprintf("object: moving unknown gid %#x", uint64(g)))
	}
	if newHome < 0 || newHome >= s.nprocs {
		panic(fmt.Sprintf("object: move to processor %d out of range", newHome))
	}
	if newHome == g.Home() {
		delete(s.moved, g)
	} else {
		s.moved[g] = newHome
	}
	s.Moves++
}

// HasMoved reports whether g lives away from its birth processor.
func (s *Space) HasMoved(g gid.GID) bool {
	_, ok := s.moved[g]
	return ok
}

// Len returns the number of live objects.
func (s *Space) Len() int { return len(s.states) }

// Procs returns the machine size the space was created for.
func (s *Space) Procs() int { return s.nprocs }
