// Package object implements the distributed object space of the
// Prelude-like runtime: every object has a global identifier, a home
// processor, and private state that only code executing on the home
// processor may touch (instance methods "always execute at the object on
// which they are invoked", §3.1).
package object

import (
	"fmt"

	"compmig/internal/gid"
)

// Space is the machine-wide object table. The simulator runs one
// goroutine at a time, so the table needs no locking; in a real system
// this would be a per-processor structure plus a name service.
type Space struct {
	alloc  gid.Allocator
	states map[gid.GID]any
	nprocs int

	// moved maps objects that have migrated away from their birth
	// processor (Emerald-style object mobility) to their current home.
	moved map[gid.GID]int
	// Moves counts object relocations.
	Moves uint64

	// journal, when set, observes creations and moves (see Journal).
	journal Journal
}

// Journal observes the object space's structural events so a durability
// layer (internal/store) can log them. Hooks run host-side at the
// mutation point; any simulated cycle cost they imply is the journal's
// to charge.
type Journal interface {
	// ObjectNew reports a new object placed on processor home.
	ObjectNew(g gid.GID, home int)
	// ObjectMove reports an object relocating from processor from to
	// processor to; it runs after the move, so Home(g) already answers to.
	ObjectMove(g gid.GID, from, to int)
}

// SetJournal installs (or clears, with nil) the space's journal.
func (s *Space) SetJournal(j Journal) { s.journal = j }

// NewSpace creates an object space for a machine with nprocs processors.
func NewSpace(nprocs int) *Space {
	if nprocs <= 0 {
		panic("object: need at least one processor")
	}
	return &Space{states: make(map[gid.GID]any), moved: make(map[gid.GID]int), nprocs: nprocs}
}

// New places an object with the given state on processor home and
// returns its GID.
func (s *Space) New(home int, state any) gid.GID {
	if home < 0 || home >= s.nprocs {
		panic(fmt.Sprintf("object: home %d out of range [0,%d)", home, s.nprocs))
	}
	g := s.alloc.Next(home)
	s.states[g] = state
	if s.journal != nil {
		s.journal.ObjectNew(g, home)
	}
	return g
}

// State returns the object's private state. Callers in the runtime must
// already be executing on the object's home processor; the runtime
// enforces that invariant.
func (s *Space) State(g gid.GID) any {
	st, ok := s.states[g]
	if !ok {
		panic(fmt.Sprintf("object: unknown gid %#x", uint64(g)))
	}
	return st
}

// Exists reports whether g names a live object.
func (s *Space) Exists(g gid.GID) bool {
	_, ok := s.states[g]
	return ok
}

// Home returns the object's current home processor — its birth
// processor unless it has migrated since.
func (s *Space) Home(g gid.GID) int {
	if h, ok := s.moved[g]; ok {
		return h
	}
	return g.Home()
}

// Move relocates an object to a new home (the Emerald-style mobility
// the paper wanted to compare against). The GID is unchanged: senders
// holding stale locations are corrected by forwarding.
func (s *Space) Move(g gid.GID, newHome int) {
	if !s.Exists(g) {
		panic(fmt.Sprintf("object: moving unknown gid %#x", uint64(g)))
	}
	if newHome < 0 || newHome >= s.nprocs {
		panic(fmt.Sprintf("object: move to processor %d out of range", newHome))
	}
	from := s.Home(g)
	if newHome == g.Home() {
		delete(s.moved, g)
	} else {
		s.moved[g] = newHome
	}
	s.Moves++
	if s.journal != nil {
		s.journal.ObjectMove(g, from, newHome)
	}
}

// HomedAt counts live objects whose current home is processor p — the
// population a wiped processor must re-register during recovery.
func (s *Space) HomedAt(p int) int {
	n := 0
	for g := range s.states {
		if s.Home(g) == p {
			n++
		}
	}
	return n
}

// HasMoved reports whether g lives away from its birth processor.
func (s *Space) HasMoved(g gid.GID) bool {
	_, ok := s.moved[g]
	return ok
}

// Len returns the number of live objects.
func (s *Space) Len() int { return len(s.states) }

// Procs returns the machine size the space was created for.
func (s *Space) Procs() int { return s.nprocs }
