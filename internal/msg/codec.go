// Package msg provides the word-oriented wire encoding used by the
// simulated runtime. The paper's machine moves 32-bit words; bandwidth is
// reported in words, and marshaling costs scale with words. Encoding
// argument records through this codec (rather than passing Go values
// around) means payload sizes — and therefore the bandwidth numbers in
// Figures 3 and Tables 2/4 — derive from real encodings.
package msg

import (
	"errors"
	"fmt"
)

// Writer builds a payload of 32-bit words.
type Writer struct {
	words []uint32
}

// NewWriter returns a Writer with capacity for n words.
func NewWriter(n int) *Writer { return &Writer{words: make([]uint32, 0, n)} }

// PutU32 appends one word.
func (w *Writer) PutU32(v uint32) { w.words = append(w.words, v) }

// PutU64 appends v as two words, high word first.
func (w *Writer) PutU64(v uint64) {
	w.words = append(w.words, uint32(v>>32), uint32(v))
}

// PutI64 appends a signed 64-bit value.
func (w *Writer) PutI64(v int64) { w.PutU64(uint64(v)) }

// PutBool appends a boolean as one word.
func (w *Writer) PutBool(v bool) {
	if v {
		w.PutU32(1)
	} else {
		w.PutU32(0)
	}
}

// PutRaw appends words verbatim, with no length prefix. Callers use it to
// splice an already-encoded record into a larger payload.
func (w *Writer) PutRaw(vs []uint32) { w.words = append(w.words, vs...) }

// PutU32s appends a length-prefixed vector of words.
func (w *Writer) PutU32s(vs []uint32) {
	w.PutU32(uint32(len(vs)))
	w.words = append(w.words, vs...)
}

// Len returns the number of words written so far.
func (w *Writer) Len() int { return len(w.words) }

// Words returns the encoded payload. The Writer must not be reused after.
func (w *Writer) Words() []uint32 { return w.words }

// ErrShortPayload is returned when a Reader runs out of words.
var ErrShortPayload = errors.New("msg: payload too short")

// Reader decodes a payload of 32-bit words. Errors are sticky: after the
// first failure every subsequent Get returns zero and Err reports it.
type Reader struct {
	words []uint32
	pos   int
	err   error
}

// NewReader returns a Reader over the payload.
func NewReader(words []uint32) *Reader { return &Reader{words: words} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread words.
func (r *Reader) Remaining() int { return len(r.words) - r.pos }

func (r *Reader) fail() uint32 {
	if r.err == nil {
		r.err = ErrShortPayload
	}
	return 0
}

// U32 reads one word.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.pos >= len(r.words) {
		return r.fail()
	}
	v := r.words[r.pos]
	r.pos++
	return v
}

// U64 reads two words written by PutU64.
func (r *Reader) U64() uint64 {
	hi := r.U32()
	lo := r.U32()
	return uint64(hi)<<32 | uint64(lo)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads a boolean word.
func (r *Reader) Bool() bool { return r.U32() != 0 }

// U32s reads a length-prefixed vector.
func (r *Reader) U32s() []uint32 {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.words) {
		r.fail()
		return nil
	}
	vs := make([]uint32, n)
	copy(vs, r.words[r.pos:r.pos+n])
	r.pos += n
	return vs
}

// Marshaler is implemented by argument records, reply records, and
// continuation records (the "live variables at the point of migration").
type Marshaler interface {
	MarshalWords(w *Writer)
}

// Unmarshaler reconstructs a record from wire words.
type Unmarshaler interface {
	UnmarshalWords(r *Reader) error
}

// Encode marshals m into a fresh word slice.
func Encode(m Marshaler) []uint32 {
	w := NewWriter(8)
	m.MarshalWords(w)
	return w.Words()
}

// Decode unmarshals words into u, insisting the payload is fully consumed.
func Decode(words []uint32, u Unmarshaler) error {
	r := NewReader(words)
	if err := u.UnmarshalWords(r); err != nil {
		return err
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("msg: %d trailing words after decode", r.Remaining())
	}
	return nil
}
