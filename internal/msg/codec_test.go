package msg

import (
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(8)
	w.PutU32(0xdeadbeef)
	w.PutU64(0x0123456789abcdef)
	w.PutI64(-42)
	w.PutBool(true)
	w.PutBool(false)

	r := NewReader(w.Words())
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("u32 = %x", got)
	}
	if got := r.U64(); got != 0x0123456789abcdef {
		t.Errorf("u64 = %x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("i64 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("bools corrupted")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestRoundTripVector(t *testing.T) {
	w := NewWriter(8)
	w.PutU32s([]uint32{1, 2, 3})
	w.PutU32s(nil)
	w.PutU32(7)
	r := NewReader(w.Words())
	v := r.U32s()
	if len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("vector = %v", v)
	}
	if e := r.U32s(); len(e) != 0 {
		t.Errorf("empty vector = %v", e)
	}
	if r.U32() != 7 {
		t.Error("trailing word lost")
	}
}

func TestShortPayloadSticky(t *testing.T) {
	r := NewReader([]uint32{5})
	_ = r.U64() // needs 2 words
	if r.Err() != ErrShortPayload {
		t.Fatalf("err = %v", r.Err())
	}
	if r.U32() != 0 {
		t.Error("read after error should return zero")
	}
}

func TestVectorLengthOverrun(t *testing.T) {
	r := NewReader([]uint32{10, 1, 2}) // claims 10 elements, has 2
	if v := r.U32s(); v != nil {
		t.Errorf("overrun vector = %v", v)
	}
	if r.Err() == nil {
		t.Error("overrun not detected")
	}
}

type pair struct {
	A uint64
	B uint32
}

func (p *pair) MarshalWords(w *Writer) {
	w.PutU64(p.A)
	w.PutU32(p.B)
}

func (p *pair) UnmarshalWords(r *Reader) error {
	p.A = r.U64()
	p.B = r.U32()
	return r.Err()
}

func TestEncodeDecode(t *testing.T) {
	in := &pair{A: 1 << 40, B: 9}
	words := Encode(in)
	if len(words) != 3 {
		t.Fatalf("encoded %d words, want 3", len(words))
	}
	var out pair
	if err := Decode(words, &out); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip: %+v != %+v", out, *in)
	}
}

func TestDecodeRejectsTrailingWords(t *testing.T) {
	in := &pair{A: 1, B: 2}
	words := append(Encode(in), 99)
	var out pair
	if err := Decode(words, &out); err == nil {
		t.Fatal("trailing words not rejected")
	}
}

func TestPropertyU64RoundTrip(t *testing.T) {
	if err := quick.Check(func(v uint64) bool {
		w := NewWriter(2)
		w.PutU64(v)
		return NewReader(w.Words()).U64() == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVectorRoundTrip(t *testing.T) {
	if err := quick.Check(func(vs []uint32) bool {
		w := NewWriter(len(vs) + 1)
		w.PutU32s(vs)
		got := NewReader(w.Words()).U32s()
		if len(got) != len(vs) {
			return false
		}
		for i := range vs {
			if got[i] != vs[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyI64RoundTrip(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		w := NewWriter(2)
		w.PutI64(v)
		return NewReader(w.Words()).I64() == v
	}, nil); err != nil {
		t.Fatal(err)
	}
}
