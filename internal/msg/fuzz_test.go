package msg

import "testing"

// FuzzReaderNeverPanics feeds arbitrary word streams through every
// decoding operation: a corrupt or truncated payload must surface as a
// sticky error, never a panic or out-of-bounds access.
func FuzzReaderNeverPanics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4})
	f.Add([]byte{7, 0, 0, 0, 0, 0, 0, 9, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint32, len(raw)/4)
		for i := range words {
			words[i] = uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
		}
		r := NewReader(words)
		// Exercise every accessor in a fixed pattern; none may panic.
		_ = r.U32()
		_ = r.U64()
		_ = r.Bool()
		_ = r.U32s()
		_ = r.I64()
		_ = r.U32s()
		if r.Err() == nil && r.Remaining() < 0 {
			t.Fatal("negative remaining without error")
		}
	})
}

// FuzzWriterReaderRoundTrip checks that anything written comes back
// identically, whatever the interleaving of types.
func FuzzWriterReaderRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(2), true, []byte{3, 4, 5})
	f.Add(uint32(0), ^uint64(0), false, []byte{})
	f.Fuzz(func(t *testing.T, a uint32, b uint64, c bool, vecRaw []byte) {
		vec := make([]uint32, len(vecRaw))
		for i, v := range vecRaw {
			vec[i] = uint32(v) * 0x01010101
		}
		w := NewWriter(4 + len(vec))
		w.PutU32(a)
		w.PutU64(b)
		w.PutBool(c)
		w.PutU32s(vec)
		r := NewReader(w.Words())
		if r.U32() != a || r.U64() != b || r.Bool() != c {
			t.Fatal("scalar round trip failed")
		}
		got := r.U32s()
		if len(got) != len(vec) {
			t.Fatalf("vector length %d != %d", len(got), len(vec))
		}
		for i := range vec {
			if got[i] != vec[i] {
				t.Fatalf("vector element %d mismatch", i)
			}
		}
		if r.Err() != nil || r.Remaining() != 0 {
			t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
		}
	})
}
