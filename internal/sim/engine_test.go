package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested schedule times = %v, want [10 15]", times)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock after RunUntil = %d, want 25", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("Run after RunUntil fired %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("processed %d events after Stop at 3", count)
	}
}

func TestMaxEvents(t *testing.T) {
	e := NewEngine(1)
	e.MaxEvents = 5
	var reschedule func()
	reschedule = func() { e.Schedule(1, reschedule) }
	e.Schedule(1, reschedule)
	if err := e.Run(); err == nil {
		t.Fatal("runaway loop not caught by MaxEvents")
	}
}

func TestThreadSleepAndClock(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("t", 0, func(th *Thread) {
		th.Sleep(100)
		wake = th.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 100 {
		t.Fatalf("thread woke at %d, want 100", wake)
	}
	if e.Live() != 0 {
		t.Fatalf("live threads = %d after Run", e.Live())
	}
}

func TestThreadsInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		e := NewEngine(42)
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn("t", 0, func(th *Thread) {
				for j := 0; j < 3; j++ {
					th.Sleep(Time(1 + e.Rand().Intn(5)))
					order = append(order, i)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("wrong lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic interleaving at %d: %v vs %v", i, a, b)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("stuck", 0, func(th *Thread) {
		th.Park("nowhere")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked list = %v", de.Blocked)
	}
}

func TestUnparkRoundTrip(t *testing.T) {
	e := NewEngine(1)
	var sleeper *Thread
	hits := 0
	sleeper = e.Spawn("sleeper", 0, func(th *Thread) {
		th.Park("wait-for-poke")
		hits++
	})
	e.Spawn("poker", 0, func(th *Thread) {
		th.Sleep(50)
		sleeper.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatal("sleeper never resumed")
	}
}

func TestProcSerializesSegments(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 2)
	p := m.Proc(0)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", 0, func(th *Thread) {
			th.Exec(p, 100)
			ends = append(ends, th.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ends) != 3 {
		t.Fatalf("got %d completions", len(ends))
	}
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("serialized ends = %v, want %v", ends, want)
		}
	}
	if p.Busy != 300 {
		t.Fatalf("busy = %d, want 300", p.Busy)
	}
}

func TestProcsRunInParallel(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 2)
	var ends []Time
	for i := 0; i < 2; i++ {
		p := m.Proc(i)
		e.Spawn("w", 0, func(th *Thread) {
			th.Exec(p, 100)
			ends = append(ends, th.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, end := range ends {
		if end != 100 {
			t.Fatalf("parallel procs: ends = %v, want both 100", ends)
		}
	}
}

func TestExecAsync(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 1)
	var done Time
	m.Proc(0).ExecAsync(77, func() { done = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 77 {
		t.Fatalf("async segment finished at %d, want 77", done)
	}
}

func TestProcUtilization(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 1)
	e.Spawn("w", 0, func(th *Thread) {
		th.Exec(m.Proc(0), 50)
		th.Sleep(50)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := m.Proc(0).Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(7), NewPRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed PRNGs diverged")
		}
	}
	c := NewPRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewPRNG(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatal("different seeds produce suspiciously similar streams")
	}
}

func TestPRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		p := NewPRNG(seed)
		for i := 0; i < 50; i++ {
			v := p.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		p := NewPRNG(seed)
		perm := p.Perm(32)
		seen := make([]bool, 32)
		for _, v := range perm {
			if v < 0 || v >= 32 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRNGFloat64Range(t *testing.T) {
	p := NewPRNG(3)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	e := NewEngine(1)
	e.Spawn("lost", 0, func(th *Thread) { th.Park("the-void") })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "the-void") {
		t.Fatalf("deadlock error %v does not name the block site", err)
	}
}

func TestUnparkAtDelays(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	th := e.Spawn("sleeper", 0, func(th *Thread) {
		th.Park("wait")
		woke = th.Now()
	})
	e.Schedule(10, func() { th.UnparkAt(90) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 100 {
		t.Fatalf("woke at %d, want 100", woke)
	}
}

func TestMachineAccessors(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 3)
	if m.N() != 3 || len(m.Procs()) != 3 {
		t.Fatalf("N=%d procs=%d", m.N(), len(m.Procs()))
	}
	if m.Proc(2).ID() != 2 {
		t.Errorf("proc id = %d", m.Proc(2).ID())
	}
	if m.Proc(1).FreeAt() != 0 {
		t.Errorf("fresh proc free at %d", m.Proc(1).FreeAt())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range proc accepted")
		}
	}()
	m.Proc(9)
}

func TestPRNGUint64nAndFork(t *testing.T) {
	p := NewPRNG(5)
	for i := 0; i < 100; i++ {
		if v := p.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
	child := p.Fork()
	if child.Uint64() == p.Uint64() {
		// Not impossible, but with independent streams a collision on
		// the first draw is a red flag for aliased state.
		t.Error("forked PRNG mirrors its parent")
	}
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) accepted")
		}
	}()
	p.Uint64n(0)
}

func TestIntnNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) accepted")
		}
	}()
	NewPRNG(1).Intn(0)
}
