package sim

import "testing"

// TestProcSpeedStretchesWork pins the heterogeneity contract: a segment
// of n cycles on a num/den processor occupies ceil(n*num/den) cycles,
// through both the thread path (Exec) and the inline paths (ReserveAt,
// ExecAsync).
func TestProcSpeedStretchesWork(t *testing.T) {
	eng := NewEngine(1)
	m := NewMachine(eng, 2)
	slow, fast := m.Proc(0), m.Proc(1)
	slow.SetSpeed(250, 100) // 2.5x slower

	var slowDone, fastDone Time
	eng.Spawn("slow", 0, func(th *Thread) {
		th.Exec(slow, 100)
		slowDone = th.Now()
	})
	eng.Spawn("fast", 0, func(th *Thread) {
		th.Exec(fast, 100)
		fastDone = th.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fastDone != 100 {
		t.Fatalf("full-speed segment took %d cycles, want 100", fastDone)
	}
	if slowDone != 250 {
		t.Fatalf("2.5x-slow segment took %d cycles, want 250", slowDone)
	}
	if slow.Busy != 250 || fast.Busy != 100 {
		t.Fatalf("busy = %d/%d, want 250/100", slow.Busy, fast.Busy)
	}
}

func TestProcSpeedCeilingAndReserveAt(t *testing.T) {
	eng := NewEngine(1)
	m := NewMachine(eng, 1)
	p := m.Proc(0)
	p.SetSpeed(150, 100)
	// ceil(7 * 150/100) = ceil(10.5) = 11.
	if end := p.ReserveAt(0, 7); end != 11 {
		t.Fatalf("ReserveAt scaled end = %d, want 11", end)
	}
	// Zero-cycle segments stay zero.
	if end := p.ReserveAt(11, 0); end != 11 {
		t.Fatalf("zero segment end = %d, want 11", end)
	}
	// Restoring 1:1 disables scaling.
	p.SetSpeed(1, 1)
	if num, den := p.Speed(); num != 1 || den != 1 {
		t.Fatalf("Speed() = %d/%d, want 1/1", num, den)
	}
	if end := p.ReserveAt(11, 7); end != 18 {
		t.Fatalf("unscaled end = %d, want 18", end)
	}
}

func TestSetSpeedRejectsBadRatios(t *testing.T) {
	eng := NewEngine(1)
	p := NewMachine(eng, 1).Proc(0)
	for _, r := range [][2]Time{{0, 1}, {1, 0}, {99, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetSpeed(%d, %d) did not panic", r[0], r[1])
				}
			}()
			p.SetSpeed(r[0], r[1])
		}()
	}
}
