package sim

// PRNG is a small deterministic pseudo-random generator (xoshiro256**)
// seeded explicitly so that every experiment is reproducible bit-for-bit.
// We avoid math/rand so the stream is stable across Go releases.
type PRNG struct {
	s [4]uint64
}

// NewPRNG returns a generator seeded from seed via splitmix64, which also
// handles the all-zero-state hazard.
func NewPRNG(seed uint64) *PRNG {
	p := &PRNG{}
	x := seed
	for i := range p.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.s[i] = z ^ (z >> 31)
	}
	return p
}

// State returns the generator's internal state. Two generators with
// equal state produce identical streams; callers use this to memoize
// derived values (e.g. generated workloads) keyed by the exact stream.
func (p *PRNG) State() [4]uint64 { return p.s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (p *PRNG) Uint64() uint64 {
	result := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (p *PRNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return p.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (p *PRNG) Perm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Fork derives an independent generator from this one, so subsystems can
// own private streams without perturbing each other's sequences.
func (p *PRNG) Fork() *PRNG { return NewPRNG(p.Uint64()) }
