package sim

import (
	"errors"
	"testing"
)

// TestEventPoolReusesFiredEvents asserts that an event object is
// recycled for a later Schedule once it has fired, and that the recycled
// event carries the new callback, not the old one.
func TestEventPoolReusesFiredEvents(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	first := e.Schedule(10, func() { fired = append(fired, "first") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	second := e.Schedule(10, func() { fired = append(fired, "second") })
	if first != second {
		t.Error("fired event was not recycled by the next Schedule")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("fired = %v, want [first second]", fired)
	}
}

// TestEventPoolNeverResurrectsCancelledEvent asserts that cancelling an
// event removes it from the heap eagerly and that reusing its object for
// a new event cannot fire the cancelled callback.
func TestEventPoolNeverResurrectsCancelledEvent(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	dead := e.Schedule(10, func() { fired = append(fired, "dead") })
	e.Schedule(20, func() { fired = append(fired, "live") })
	dead.Cancel()
	if len(e.heap) != 1 {
		t.Fatalf("heap holds %d events after Cancel, want 1 (eager removal)", len(e.heap))
	}
	dead.Cancel() // second cancel of the same pending handle is a no-op
	if len(e.heap) != 1 {
		t.Fatalf("double Cancel removed a live event: heap len %d", len(e.heap))
	}
	reused := e.Schedule(30, func() { fired = append(fired, "reused") })
	if reused != dead {
		t.Error("cancelled event was not recycled by the next Schedule")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != "live" || fired[1] != "reused" {
		t.Fatalf("fired = %v, want [live reused] and never the cancelled fn", fired)
	}
}

// TestMaxEventsTypedError asserts both run loops surface the runaway
// guard as a *MaxEventsError.
func TestMaxEventsTypedError(t *testing.T) {
	for _, until := range []Time{0, 100} {
		e := NewEngine(1)
		e.MaxEvents = 5
		var reschedule func()
		reschedule = func() { e.Schedule(1, reschedule) }
		e.Schedule(1, reschedule)
		var err error
		if until == 0 {
			err = e.Run()
		} else {
			err = e.RunUntil(until)
		}
		var me *MaxEventsError
		if !errors.As(err, &me) {
			t.Fatalf("RunUntil=%d: got %v, want *MaxEventsError", until, err)
		}
		if me.Max != 5 {
			t.Errorf("MaxEventsError.Max = %d, want 5", me.Max)
		}
	}
}

// TestMaxEventsCatchesFastPathLoop asserts the runaway guard still trips
// when a thread spins on fast-path sleeps that never re-enter the event
// loop.
func TestMaxEventsCatchesFastPathLoop(t *testing.T) {
	e := NewEngine(1)
	e.MaxEvents = 100
	e.Spawn("spinner", 0, func(th *Thread) {
		for {
			th.Sleep(1)
		}
	})
	var me *MaxEventsError
	if err := e.Run(); !errors.As(err, &me) {
		t.Fatalf("got %v, want *MaxEventsError", err)
	}
}

// TestRunUntilHoldsFastPathAtLimit asserts a sleeping thread cannot
// fast-advance the clock past a RunUntil limit: its wakeup stays queued
// for a later Run.
func TestRunUntilHoldsFastPathAtLimit(t *testing.T) {
	e := NewEngine(1)
	var woke Time
	e.Spawn("s", 0, func(th *Thread) {
		th.Sleep(1000)
		woke = th.Now()
	})
	if err := e.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if woke != 0 {
		t.Fatalf("thread woke at %d inside RunUntil(100)", woke)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d after RunUntil(100)", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 1000 {
		t.Fatalf("thread woke at %d, want 1000", woke)
	}
}

// TestSleepFastPathSkipsHeap asserts an uncontended sleep advances the
// clock without queueing an event.
func TestSleepFastPathSkipsHeap(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	var heapLen int
	e.Spawn("t", 0, func(th *Thread) {
		th.Sleep(250)
		heapLen = len(e.heap)
		wake = th.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 250 {
		t.Fatalf("woke at %d, want 250", wake)
	}
	if heapLen != 0 {
		t.Fatalf("fast-path sleep queued %d event(s)", heapLen)
	}
}

// TestYieldRunsBehindQueuedEvents asserts Yield still defers to an event
// already queued at the current time (the slow path), while remaining a
// no-op when nothing else is due.
func TestYieldRunsBehindQueuedEvents(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("t", 0, func(th *Thread) {
		e.Schedule(0, func() { order = append(order, "event") })
		th.Yield()
		order = append(order, "thread")
		th.Yield() // heap now empty: fast path, stays running
		order = append(order, "after")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"event", "thread", "after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSpawnFromDyingThread is the regression test for the thread-exit
// path: a body whose final action spawns another thread must leave the
// engine's current-thread bookkeeping consistent, and the child must
// still run.
func TestSpawnFromDyingThread(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Spawn("parent", 0, func(th *Thread) {
		order = append(order, "parent")
		e.Spawn("child", 0, func(*Thread) {
			order = append(order, "child")
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "parent" || order[1] != "child" {
		t.Fatalf("order = %v, want [parent child]", order)
	}
	if e.Live() != 0 {
		t.Fatalf("live threads = %d after Run", e.Live())
	}
	if e.current != nil {
		t.Fatal("Engine.current not cleared after all threads exited")
	}
}

// TestExecFastPathKeepsSerialization asserts the Exec fast path does not
// break processor-queueing semantics when other events are due first.
func TestExecFastPathKeepsSerialization(t *testing.T) {
	e := NewEngine(1)
	m := NewMachine(e, 1)
	p := m.Proc(0)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", 0, func(th *Thread) {
			th.Exec(p, 100)
			ends = append(ends, th.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}
