package sim

import "fmt"

// Proc models one processor of the simulated distributed-memory machine.
// Work segments issued against a Proc serialize in issue order: a segment
// issued while the processor is busy starts when the processor frees up.
// This is what produces the paper's resource-contention effects (e.g. the
// B-tree root bottleneck, where activations arrive at the root's processor
// faster than it can retire them).
type Proc struct {
	eng       *Engine
	id        int
	free      Time   // the cycle at which the processor next becomes idle
	execWhere string // park label for Exec, built once

	// Busy accumulates total busy cycles for utilization reporting.
	Busy Time
	// Segments counts work segments executed.
	Segments uint64

	// speedNum/speedDen, when set, scale every booked work segment by
	// num/den (ceiling division) — a slow processor takes num/den times
	// as long to retire the same cycles. Zero den means full speed; the
	// fields stay zero on homogeneous machines so the scaling costs one
	// predictable branch.
	speedNum, speedDen Time

	// downs are scheduled outage windows (fault injection): work segments
	// booked inside a window start when it closes. Empty on the fault-free
	// path, so reserve pays one length check.
	downs []downWindow
}

type downWindow struct{ start, end Time }

// AddDownWindow schedules an outage on the processor: any work segment
// that would start inside [start, end) is pushed to end. Windows are
// kept sorted by start so a forward scan resolves chains of windows.
func (p *Proc) AddDownWindow(start, end Time) {
	if end <= start {
		panic(fmt.Sprintf("sim: down window [%d,%d) on p%d is empty", start, end, p.id))
	}
	p.downs = append(p.downs, downWindow{start: start, end: end})
	for i := len(p.downs) - 1; i > 0 && p.downs[i].start < p.downs[i-1].start; i-- {
		p.downs[i], p.downs[i-1] = p.downs[i-1], p.downs[i]
	}
}

// skipDown pushes t past any outage window covering it.
func (p *Proc) skipDown(t Time) Time {
	for _, w := range p.downs {
		if t >= w.start && t < w.end {
			t = w.end
		}
	}
	return t
}

// Machine is a fixed set of processors.
type Machine struct {
	eng   *Engine
	procs []*Proc
}

// NewMachine creates n processors attached to e.
func NewMachine(e *Engine, n int) *Machine {
	if n <= 0 {
		panic("sim: machine needs at least one processor")
	}
	m := &Machine{eng: e, procs: make([]*Proc, n)}
	for i := range m.procs {
		m.procs[i] = &Proc{eng: e, id: i, execWhere: fmt.Sprintf("exec(p%d)", i)}
	}
	return m
}

// N returns the number of processors.
func (m *Machine) N() int { return len(m.procs) }

// Proc returns processor i.
func (m *Machine) Proc(i int) *Proc {
	if i < 0 || i >= len(m.procs) {
		panic(fmt.Sprintf("sim: proc %d out of range [0,%d)", i, len(m.procs)))
	}
	return m.procs[i]
}

// Procs returns the processor slice (callers must not mutate it).
func (m *Machine) Procs() []*Proc { return m.procs }

// ID returns the processor number.
func (p *Proc) ID() int { return p.id }

// Engine returns the engine the processor's events execute on: the
// machine's engine, or the processor's shard lane on a clustered machine.
func (p *Proc) Engine() *Engine { return p.eng }

// Spawn creates a simulated thread bound to processor p's event stream,
// beginning at p's engine time plus delay. On a clustered machine the
// wakeup lands on p's shard lane; on a serial engine this is identical
// to Engine.Spawn.
func (p *Proc) Spawn(name string, delay Time, body func(*Thread)) *Thread {
	return p.eng.spawnAt(name, delay, body, int32(p.id))
}

// FreeAt returns the cycle at which the processor next becomes idle.
func (p *Proc) FreeAt() Time { return p.free }

// SetSpeed gives the processor a heterogeneous speed: every work
// segment booked on it is stretched by num/den (ceiling division), so
// num=250, den=100 models a processor 2.5x slower than the baseline.
// num == den restores full speed. Charged cycle *statistics* are not
// scaled — the cost model still prices an operation identically
// everywhere; only the processor's occupancy stretches, which is what
// per-processor clock speed means.
func (p *Proc) SetSpeed(num, den Time) {
	if num == 0 || den == 0 {
		panic(fmt.Sprintf("sim: p%d speed %d/%d needs positive numerator and denominator", p.id, num, den))
	}
	if num < den {
		panic(fmt.Sprintf("sim: p%d speed %d/%d would be faster than the baseline; express speedups by slowing the others", p.id, num, den))
	}
	if num == den {
		p.speedNum, p.speedDen = 0, 0
		return
	}
	p.speedNum, p.speedDen = num, den
}

// Speed returns the processor's slowdown ratio (num, den); (1, 1) for a
// full-speed processor.
func (p *Proc) Speed() (num, den Time) {
	if p.speedDen == 0 {
		return 1, 1
	}
	return p.speedNum, p.speedDen
}

// scale stretches a work segment by the processor's speed ratio.
func (p *Proc) scale(cycles Time) Time {
	if p.speedDen == 0 || cycles == 0 {
		return cycles
	}
	return (cycles*p.speedNum + p.speedDen - 1) / p.speedDen
}

// Utilization returns busy cycles divided by elapsed cycles, in [0,1].
func (p *Proc) Utilization() float64 {
	if p.eng.now == 0 {
		return 0
	}
	return float64(p.Busy) / float64(p.eng.now)
}

// reserve books cycles of exclusive processor time and returns the cycle
// at which the segment completes. The booked duration is stretched by
// the processor's speed ratio (heterogeneous machines).
func (p *Proc) reserve(cycles Time) Time {
	cycles = p.scale(cycles)
	start := p.free
	if start < p.eng.now {
		start = p.eng.now
	}
	if len(p.downs) != 0 {
		start = p.skipDown(start)
	}
	end := start + cycles
	p.free = end
	p.Busy += cycles
	p.Segments++
	return end
}

// Exec runs cycles of work for thread th on processor p, blocking the
// thread until the work completes (including any queueing delay while the
// processor drains earlier segments). Like Sleep, it advances the clock
// directly when no other event fires at or before the completion time.
func (th *Thread) Exec(p *Proc, cycles Time) {
	if cycles == 0 {
		return
	}
	if th.eng != p.eng {
		panic(fmt.Sprintf("sim: thread %s executing on p%d of another shard lane", th, p.id))
	}
	end := p.reserve(cycles)
	if th.eng.fastAdvance(end) {
		return
	}
	th.eng.scheduleWake(end, th)
	th.park(p.execWhere)
}

// ReserveAt books cycles of exclusive processor time starting no earlier
// than at (later if the processor is still draining earlier segments),
// without blocking any thread or scheduling any event. It returns the
// completion cycle. Inline fast paths use it to account occupancy for
// work they have already decided completes synchronously.
func (p *Proc) ReserveAt(at, cycles Time) Time {
	cycles = p.scale(cycles)
	start := p.free
	if start < at {
		start = at
	}
	if len(p.downs) != 0 {
		start = p.skipDown(start)
	}
	end := start + cycles
	p.free = end
	p.Busy += cycles
	p.Segments++
	return end
}

// ExecAsync books cycles of work on p without a thread attached (e.g. a
// hardware handler or an interrupt-level message dispatch) and invokes fn
// when the work completes. fn may be nil.
func (p *Proc) ExecAsync(cycles Time, fn func()) {
	end := p.reserve(cycles)
	if fn != nil {
		ev := p.eng.At(end, fn)
		ev.exec = int32(p.id)
	}
}
