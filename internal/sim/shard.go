// Sharded event engines with conservative lookahead (classic
// conservative PDES, in the null-message family of Chandy/Misra/Bryant).
//
// A Cluster couples several engines ("lanes") into one logical
// simulation. Processors are partitioned into contiguous lane groups;
// each lane owns its own event heap, thread pool, and clock. The
// coordinator advances the simulation in windows [T, T+L): T is the
// earliest pending event across all lanes and L is the lookahead — the
// minimum latency any cross-lane message can have, derived from the
// network topology (network.Lookahead). Within a window the lanes are
// causally independent (nothing a lane sends can arrive before T+L), so
// they may run concurrently on host goroutines; between windows the
// coordinator flushes the inter-lane outboxes into the destination
// heaps. Instead of per-link null messages, the window barrier plays the
// null-message role: a lane with no events inside a window contributes a
// "null window" (counted in the per-shard profile) and just waits.
//
// Determinism and shard-invariance: every event carries a merge key
// (at, stream, seq) where stream identifies the scheduling context (the
// processor an event was scheduled from, or stream 0 for setup and
// coordinator context) and seq comes from that stream's cluster-wide
// counter. A stream's counter is only ever advanced while that stream
// executes — which happens on exactly one lane — so the keys are
// race-free, and because they name the scheduling context rather than
// the lane layout, a given program computes identical keys at every
// shard count. Each lane pops its heap in key order, the window
// protocol guarantees no event arrives behind a lane's progress, and
// per-processor state is only touched by that processor's stream, so
// the per-processor event sequences — and any order-insensitive merge
// of per-lane measurements — are byte-identical at shard-count 1 vs N.
package sim

import (
	"fmt"
	"runtime"
	"sort"

	"compmig/internal/profile"
)

// Cluster is a set of engine lanes advancing in conservative lookahead
// windows. Build one with NewCluster, attach processors with
// NewMachine, set the lookahead from the network topology, and drive
// the whole simulation with Run.
type Cluster struct {
	lanes  []*Engine
	laneOf []int // processor id -> lane index
	groups [][]int

	// ctrs[s] is the next merge-key sequence number of stream s: slot 0
	// is the setup/coordinator stream, slot p+1 is processor p's stream.
	// Each slot is written only while its stream executes (or during
	// single-threaded setup), so concurrent lanes never share a slot.
	ctrs []uint64

	lookahead Time
	globals   []globalFn
	outbox    [][][]crossEvent // outbox[src lane][dst lane] = pending sends

	counters *profile.ShardCounters
}

// globalFn is a coordinator-side callback fired at a window barrier once
// every lane has passed time at (see AtBarrier).
type globalFn struct {
	at Time
	fn func()
}

// crossEvent is one cross-lane message parked in an outbox between
// windows, carrying the merge key computed at send time.
type crossEvent struct {
	at     Time
	stream int32
	seq    uint64
	exec   int32
	fn     func()
}

// NewCluster creates shards engine lanes. Lane 0 is the root lane: it is
// seeded exactly like a serial NewEngine(seed), so setup code drawing
// from Root().Rand() sees the same stream at every shard count. The
// other lanes get deterministic per-lane streams forked from the seed
// (unused by workloads that draw randomness only during setup).
func NewCluster(seed uint64, shards int) *Cluster {
	if shards <= 0 {
		panic(fmt.Sprintf("sim: cluster needs at least one shard, got %d", shards))
	}
	cl := &Cluster{lanes: make([]*Engine, shards)}
	for i := range cl.lanes {
		e := NewEngine(seed)
		if i > 0 {
			// Distinct deterministic seed per lane (splitmix64 inside
			// NewPRNG decorrelates them); lane 0 keeps the serial seed.
			e.rng = NewPRNG(seed + uint64(i)*0x9E3779B97F4A7C15)
		}
		e.cluster, e.lane, e.curStream = cl, i, -1
		cl.lanes[i] = e
	}
	cl.outbox = make([][][]crossEvent, shards)
	for i := range cl.outbox {
		cl.outbox[i] = make([][]crossEvent, shards)
	}
	return cl
}

// Shards returns the number of lanes.
func (cl *Cluster) Shards() int { return len(cl.lanes) }

// Root returns lane 0, the engine setup code should build against.
func (cl *Cluster) Root() *Engine { return cl.lanes[0] }

// Lane returns lane i.
func (cl *Cluster) Lane(i int) *Engine { return cl.lanes[i] }

// LaneOf returns the lane index owning processor p.
func (cl *Cluster) LaneOf(p int) int { return cl.laneOf[p] }

// Groups returns the processor ids of each lane, in lane order. The
// network layer derives the lookahead from these via MinHops.
func (cl *Cluster) Groups() [][]int { return cl.groups }

// NewMachine creates n processors partitioned into contiguous lane
// groups (processor p lives on lane p*shards/n) and sizes the cluster's
// merge-key counter table. Call it once per cluster, before any events
// are scheduled.
func (cl *Cluster) NewMachine(n int) *Machine {
	if n <= 0 {
		panic("sim: machine needs at least one processor")
	}
	if cl.laneOf != nil {
		panic("sim: cluster already has a machine")
	}
	shards := len(cl.lanes)
	if shards > n {
		panic(fmt.Sprintf("sim: %d shards for %d processors", shards, n))
	}
	cl.laneOf = make([]int, n)
	cl.groups = make([][]int, shards)
	cl.ctrs = make([]uint64, n+1)
	m := &Machine{eng: cl.lanes[0], procs: make([]*Proc, n)}
	for i := range m.procs {
		lane := i * shards / n
		cl.laneOf[i] = lane
		cl.groups[lane] = append(cl.groups[lane], i)
		m.procs[i] = &Proc{eng: cl.lanes[lane], id: i, execWhere: fmt.Sprintf("exec(p%d)", i)}
	}
	return m
}

// SetLookahead fixes the conservative window length: the minimum latency
// of any cross-lane message. Cross-lane sends with a smaller delay
// panic. Zero (the default) is only meaningful on a single-lane cluster,
// where windows are unbounded; a multi-lane cluster falls back to
// one-cycle windows, which is correct but slow.
func (cl *Cluster) SetLookahead(l Time) { cl.lookahead = l }

// Lookahead returns the configured lookahead.
func (cl *Cluster) Lookahead() Time { return cl.lookahead }

// AtBarrier registers fn to run on the coordinator once every lane has
// executed all events before time at — the clustered analogue of a
// setup-scheduled marker event, which likewise fires before any
// runtime event at the same cycle. fn must not schedule events or touch
// lane state other than reading it; callbacks at equal times fire in
// registration order.
func (cl *Cluster) AtBarrier(at Time, fn func()) {
	cl.globals = append(cl.globals, globalFn{at: at, fn: fn})
}

// CrossSend schedules fn to run as processor dst's event stream at
// src.Now()+delay, crossing lanes through the deterministic inter-lane
// channel: the merge key is computed at send time from the sending
// stream, the event is parked in the src→dst outbox, and the
// coordinator flushes it into dst's heap at the next window barrier.
// delay must be at least the cluster's lookahead — that is what makes
// the barrier flush safe.
func (cl *Cluster) CrossSend(src *Engine, delay Time, dst int, fn func()) {
	if delay < cl.lookahead {
		panic(fmt.Sprintf("sim: cross-lane send with delay %d below lookahead %d", delay, cl.lookahead))
	}
	stream := src.curStream + 1
	seq := cl.ctrs[stream]
	cl.ctrs[stream] = seq + 1
	to := cl.laneOf[dst]
	cl.outbox[src.lane][to] = append(cl.outbox[src.lane][to], crossEvent{
		at: src.now + delay, stream: stream, seq: seq, exec: int32(dst), fn: fn,
	})
	if cl.counters != nil {
		cl.counters.Cross[src.lane]++
	}
}

// inject pushes a flushed cross-lane event straight onto the lane's
// heap, bypassing schedule: the merge key was already drawn at send
// time. Only the coordinator calls it, between windows.
func (e *Engine) inject(ce crossEvent) {
	if ce.at < e.now {
		panic(fmt.Sprintf("sim: cross-lane event at %d behind lane clock %d", ce.at, e.now))
	}
	if profile.Enabled() {
		profile.HeapOps.Add(1)
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		ev.at, ev.seq, ev.fn, ev.th = ce.at, ce.seq, ce.fn, nil
		ev.stream, ev.exec = ce.stream, ce.exec
	} else {
		ev = &Event{at: ce.at, seq: ce.seq, fn: ce.fn, stream: ce.stream, exec: ce.exec, eng: e, index: -1}
	}
	e.heap.push(ev)
}

// flush moves every parked cross-lane event into its destination heap.
func (cl *Cluster) flush() {
	for src := range cl.outbox {
		for dst, box := range cl.outbox[src] {
			if len(box) == 0 {
				continue
			}
			lane := cl.lanes[dst]
			for i := range box {
				lane.inject(box[i])
				box[i].fn = nil
			}
			cl.outbox[src][dst] = box[:0]
		}
	}
}

// minTop returns the earliest pending event time across all lanes.
func (cl *Cluster) minTop() (Time, bool) {
	var top Time
	ok := false
	for _, e := range cl.lanes {
		if len(e.heap) == 0 {
			continue
		}
		if t := e.heap[0].at; !ok || t < top {
			top, ok = t, true
		}
	}
	return top, ok
}

// minGlobal returns the earliest pending barrier-callback time.
func (cl *Cluster) minGlobal() (Time, bool) {
	var at Time
	ok := false
	for _, g := range cl.globals {
		if !ok || g.at < at {
			at, ok = g.at, true
		}
	}
	return at, ok
}

// fireGlobals aligns every lane clock to at and runs the barrier
// callbacks registered for it, in registration order.
func (cl *Cluster) fireGlobals(at Time) {
	for _, e := range cl.lanes {
		if e.now < at {
			e.now = at
		}
	}
	kept := cl.globals[:0]
	for _, g := range cl.globals {
		if g.at == at {
			g.fn()
		} else {
			kept = append(kept, g)
		}
	}
	cl.globals = kept
}

// Run drives every lane to completion: windows of conservative
// lookahead, lane execution (concurrently on multi-CPU hosts), outbox
// flushes, and barrier callbacks, until every heap drains. Like
// Engine.Run it returns a *DeadlockError if threads are still parked
// when events run out, and a *MaxEventsError if any lane's runaway
// guard trips.
func (cl *Cluster) Run() error {
	defer func() {
		for _, e := range cl.lanes {
			e.drainThreadPool()
		}
	}()
	if profile.Enabled() {
		cl.counters = profile.NewShardCounters(len(cl.lanes))
		defer func() {
			profile.RecordShard(cl.counters)
			cl.counters = nil
		}()
	}
	var drivers []laneDriver
	if len(cl.lanes) > 1 && runtime.GOMAXPROCS(0) > 1 {
		drivers = cl.startDrivers()
		defer func() {
			for _, d := range drivers {
				close(d.work)
			}
		}()
	}
	before := make([]uint64, len(cl.lanes))
	for {
		top, ok := cl.minTop()
		gAt, gok := cl.minGlobal()
		if !ok && !gok {
			break
		}
		if gok && (!ok || gAt <= top) {
			cl.fireGlobals(gAt)
			continue
		}
		var end Time
		switch {
		case len(cl.lanes) == 1 && cl.lookahead == 0:
			end = ^Time(0) // serial cluster: run to the next barrier or dry
		case cl.lookahead == 0:
			end = top + 1
		default:
			end = top + cl.lookahead
		}
		if gok && gAt < end {
			end = gAt
		}
		if end <= top {
			end = top + 1
		}
		limit := end - 1
		for i, e := range cl.lanes {
			before[i] = e.processed
		}
		err := cl.runLanes(drivers, limit)
		if c := cl.counters; c != nil {
			c.Windows++
			for i, e := range cl.lanes {
				d := e.processed - before[i]
				c.Events[i] += d
				if d == 0 {
					c.Nulls[i]++
				}
			}
		}
		if err != nil {
			return err
		}
		cl.flush()
		stopped := false
		for _, e := range cl.lanes {
			stopped = stopped || e.stopped
		}
		if stopped {
			break
		}
	}
	live := 0
	var maxNow Time
	for _, e := range cl.lanes {
		live += e.liveThreads
		if e.now > maxNow {
			maxNow = e.now
		}
	}
	for _, e := range cl.lanes {
		if e.now < maxNow {
			e.now = maxNow
		}
	}
	if live > 0 {
		var blocked []string
		for _, e := range cl.lanes {
			for th := range e.allThreads {
				blocked = append(blocked, th.String())
			}
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: maxNow, Blocked: blocked}
	}
	return nil
}

// runLanes executes one window on every lane: through the persistent
// drivers when the host is multi-CPU, in lane order otherwise (the two
// are semantically identical — lanes share nothing within a window).
// The first failing lane's error wins, deterministically by lane index.
func (cl *Cluster) runLanes(drivers []laneDriver, limit Time) error {
	if drivers == nil {
		for _, e := range cl.lanes {
			if len(e.heap) == 0 || e.heap[0].at > limit {
				continue
			}
			if err := e.runWindow(limit); err != nil {
				return err
			}
		}
		return nil
	}
	for _, d := range drivers {
		d.work <- limit
	}
	var first error
	for _, d := range drivers {
		if err := <-d.done; err != nil && first == nil {
			first = err
		}
	}
	if c := cl.counters; c != nil {
		c.WindowDone()
	}
	return first
}

// laneDriver is the persistent host goroutine owning one lane's window
// execution in parallel mode; work carries window limits, done carries
// the per-window result back to the coordinator barrier.
type laneDriver struct {
	work chan Time
	done chan error
}

// startDrivers launches one host goroutine per lane. This is
// host-parallel orchestration in the harness worker-pool sense: within
// a window the lanes are causally independent and share no simulation
// state, and the coordinator's channel barrier separates lane execution
// from every cross-lane mutation (outbox flush, barrier callbacks).
func (cl *Cluster) startDrivers() []laneDriver {
	drivers := make([]laneDriver, len(cl.lanes))
	for i := range drivers {
		drivers[i] = laneDriver{work: make(chan Time), done: make(chan error)}
		e := cl.lanes[i]
		d := drivers[i]
		lane := i
		go func() { //simvet:allow shard-lane driver; lanes share no state within a window and the coordinator's channel barrier orders all cross-lane effects
			for limit := range d.work {
				var err error
				if len(e.heap) > 0 && e.heap[0].at <= limit {
					err = e.runWindow(limit)
				}
				if c := cl.counters; c != nil {
					c.LaneFinished(lane)
				}
				d.done <- err
			}
		}()
	}
	return drivers
}
