package sim

// Mutex is a FIFO mutual-exclusion lock for simulated threads. Lock and
// Unlock take zero simulated time themselves; callers charge processor
// cycles separately through the cost model.
type Mutex struct {
	owner   *Thread
	waiters []*Thread
	// Contended counts Lock calls that had to wait.
	Contended uint64
	// Acquired counts successful acquisitions.
	Acquired uint64
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(th *Thread) bool {
	if m.owner == nil {
		m.owner = th
		m.Acquired++
		return true
	}
	return false
}

// Lock blocks th until it holds the mutex. Waiters are served FIFO.
func (m *Mutex) Lock(th *Thread) {
	if m.owner == th {
		panic("sim: recursive Mutex.Lock")
	}
	if m.owner == nil {
		m.owner = th
		m.Acquired++
		return
	}
	m.Contended++
	m.waiters = append(m.waiters, th)
	th.park("mutex")
	// The unlocker set us as owner before waking us.
	if m.owner != th {
		panic("sim: woke from Mutex.Lock without ownership")
	}
	m.Acquired++
}

// Unlock releases the mutex and wakes the longest-waiting thread, if any.
func (m *Mutex) Unlock(th *Thread) {
	if m.owner != th {
		panic("sim: Mutex.Unlock by non-owner")
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	m.owner = next
	next.Unpark()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// WaitQueue is a simple condition-style queue: threads Wait on it and are
// released in FIFO order by Signal/Broadcast.
type WaitQueue struct {
	waiters []*Thread
}

// Wait parks th on the queue. The where label appears in deadlock reports.
func (q *WaitQueue) Wait(th *Thread, where string) {
	q.waiters = append(q.waiters, th)
	th.park(where)
}

// Signal wakes the longest-waiting thread and reports whether one existed.
func (q *WaitQueue) Signal() bool {
	if len(q.waiters) == 0 {
		return false
	}
	next := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	next.Unpark()
	return true
}

// Broadcast wakes every waiting thread.
func (q *WaitQueue) Broadcast() int {
	n := len(q.waiters)
	for _, th := range q.waiters {
		th.Unpark()
	}
	q.waiters = q.waiters[:0]
	return n
}

// Len returns the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Future is a single-assignment result slot used to model call/reply
// rendezvous (an RPC reply, or a short-circuited migration return).
type Future struct {
	done bool
	val  any
	q    WaitQueue
}

// Complete stores val and wakes all waiters. Completing twice panics:
// a reply must arrive exactly once.
func (f *Future) Complete(val any) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.val = val
	f.q.Broadcast()
}

// Done reports whether the future has been completed.
func (f *Future) Done() bool { return f.done }

// Reset returns the future to its unset state so it can rendezvous
// again, keeping the waiter queue's storage. Resetting with parked
// waiters would strand them, so it panics.
func (f *Future) Reset() {
	if f.q.Len() > 0 {
		panic("sim: Future.Reset with parked waiters")
	}
	f.done = false
	f.val = nil
}

// Wait blocks th until the future completes and returns the value.
func (f *Future) Wait(th *Thread) any {
	if !f.done {
		f.q.Wait(th, "future")
	}
	if !f.done {
		panic("sim: woke from Future.Wait before completion")
	}
	return f.val
}

// Barrier releases all arriving threads once count of them have arrived.
type Barrier struct {
	need    int
	arrived int
	q       WaitQueue
}

// NewBarrier returns a barrier for count threads.
func NewBarrier(count int) *Barrier {
	if count <= 0 {
		panic("sim: barrier count must be positive")
	}
	return &Barrier{need: count}
}

// Arrive blocks th until count threads have arrived, then releases the
// whole generation and resets the barrier for reuse.
func (b *Barrier) Arrive(th *Thread) {
	b.arrived++
	if b.arrived == b.need {
		b.arrived = 0
		b.q.Broadcast()
		return
	}
	b.q.Wait(th, "barrier")
}

// Semaphore is a counting semaphore with FIFO waiters.
type Semaphore struct {
	count int
	q     WaitQueue
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("sim: negative semaphore count")
	}
	return &Semaphore{count: n}
}

// Acquire blocks th until a unit is available.
func (s *Semaphore) Acquire(th *Thread) {
	for s.count == 0 {
		s.q.Wait(th, "semaphore")
	}
	s.count--
}

// Release returns a unit and wakes one waiter.
func (s *Semaphore) Release() {
	s.count++
	s.q.Signal()
}
