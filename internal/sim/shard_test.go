package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// runSyntheticCluster drives a small message-passing workload on a
// clustered machine and returns one event log per processor. Each
// processor's log is appended only while its own lane executes, so the
// logs are race-free under parallel lane drivers and — the property
// under test — must be identical at every shard count.
func runSyntheticCluster(t *testing.T, shards int) [][]string {
	t.Helper()
	const nprocs, lookahead = 8, 10
	cl := NewCluster(42, shards)
	mach := cl.NewMachine(nprocs)
	cl.SetLookahead(lookahead)
	logs := make([][]string, nprocs)

	// send routes like the sharded network layer: same-lane messages
	// through the lane's own heap, cross-lane messages through the
	// cluster's timestamp-ordered channel.
	send := func(src *Proc, delay Time, dst int, tag string) {
		eng := src.Engine()
		fn := func() {
			logs[dst] = append(logs[dst], fmt.Sprintf("t=%d %s", mach.Proc(dst).Engine().Now(), tag))
		}
		if cl.LaneOf(src.ID()) == cl.LaneOf(dst) {
			eng.ScheduleOn(delay, dst, fn)
			return
		}
		cl.CrossSend(eng, delay, dst, fn)
	}

	for p := 0; p < nprocs; p++ {
		p := p
		mach.Proc(p).Spawn("worker", Time(p), func(th *Thread) {
			for i := 0; i < 6; i++ {
				th.Exec(mach.Proc(p), uint64(3+p%3))
				send(mach.Proc(p), Time(lookahead+i), (p+3)%nprocs, fmt.Sprintf("msg %d.%d from p%d", p, i, p))
				th.Sleep(Time(5 + (p+i)%4))
			}
		})
	}
	cl.AtBarrier(40, func() {
		for p := range logs {
			logs[p] = append(logs[p], "barrier@40")
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatalf("shards=%d: Run: %v", shards, err)
	}
	return logs
}

// TestClusterShardCountIdentity pins the engine-level determinism
// contract: per-processor event orderings do not depend on how
// processors are grouped into lanes.
func TestClusterShardCountIdentity(t *testing.T) {
	base := runSyntheticCluster(t, 1)
	for _, shards := range []int{2, 3, 4, 8} {
		got := runSyntheticCluster(t, shards)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("shards=%d: per-proc logs diverged from shards=1:\n 1: %v\n %d: %v", shards, base, shards, got)
		}
	}
}

// TestClusterBarrierOrder checks barrier callbacks fire in registration
// order once every lane has passed the barrier time, with all lane
// clocks aligned to it.
func TestClusterBarrierOrder(t *testing.T) {
	cl := NewCluster(1, 2)
	mach := cl.NewMachine(4)
	cl.SetLookahead(5)
	for p := 0; p < 4; p++ {
		p := p
		mach.Proc(p).Spawn("w", 0, func(th *Thread) { th.Exec(mach.Proc(p), 100) })
	}
	var order []string
	cl.AtBarrier(50, func() {
		order = append(order, "first")
		for i := 0; i < cl.Shards(); i++ {
			if now := cl.Lane(i).Now(); now != 50 {
				t.Errorf("lane %d clock at barrier: %d, want 50", i, now)
			}
		}
	})
	cl.AtBarrier(50, func() { order = append(order, "second") })
	cl.AtBarrier(20, func() { order = append(order, "early") })
	if err := cl.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"early", "first", "second"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("barrier order %v, want %v", order, want)
	}
}

// TestClusterDeadlockReported checks a thread that can never be woken
// surfaces as a deadlock error, as on the serial engine.
func TestClusterDeadlockReported(t *testing.T) {
	for _, shards := range []int{1, 4} {
		cl := NewCluster(1, shards)
		mach := cl.NewMachine(4)
		cl.SetLookahead(5)
		fut := &Future{}
		mach.Proc(2).Spawn("stuck", 0, func(th *Thread) { fut.Wait(th) })
		if err := cl.Run(); err == nil {
			t.Errorf("shards=%d: Run returned nil for a parked-forever thread", shards)
		}
	}
}

// TestCrossSendBelowLookaheadPanics pins the conservative protocol's
// precondition: no cross-lane message may undercut the lookahead.
func TestCrossSendBelowLookaheadPanics(t *testing.T) {
	cl := NewCluster(1, 2)
	mach := cl.NewMachine(4)
	cl.SetLookahead(10)
	defer func() {
		if recover() == nil {
			t.Error("CrossSend below the lookahead did not panic")
		}
	}()
	cl.CrossSend(mach.Proc(0).Engine(), 9, 3, func() {})
}

// TestClusterMachineShape checks lane assignment is contiguous and
// covers every processor, and that misuse panics.
func TestClusterMachineShape(t *testing.T) {
	cl := NewCluster(1, 3)
	mach := cl.NewMachine(8)
	if mach.N() != 8 {
		t.Fatalf("machine has %d procs, want 8", mach.N())
	}
	prev := 0
	for p := 0; p < 8; p++ {
		l := cl.LaneOf(p)
		if l < prev || l >= cl.Shards() {
			t.Errorf("proc %d on lane %d after lane %d: lanes must be contiguous", p, l, prev)
		}
		prev = l
	}
	total := 0
	for i, g := range cl.Groups() {
		if len(g) == 0 {
			t.Errorf("lane %d owns no processors", i)
		}
		total += len(g)
	}
	if total != 8 {
		t.Errorf("groups cover %d processors, want 8", total)
	}
	defer func() {
		if recover() == nil {
			t.Error("second NewMachine on one cluster did not panic")
		}
	}()
	cl.NewMachine(8)
}
