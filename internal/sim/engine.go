// Package sim implements a deterministic discrete-event simulator with
// coroutine-style simulated threads, in the spirit of the Proteus
// parallel-architecture simulator used by the paper.
//
// The engine owns a virtual clock measured in processor cycles. Simulated
// threads are real goroutines, but exactly one of them runs at any moment.
// Control is passed by direct handoff: the goroutine that pops an event
// dispatches it in place, and only when the event is another thread's
// wakeup does control move (over that thread's resume channel). A waiting
// thread therefore drives the event loop itself — it pops and runs
// protocol callbacks inline and parts with its host goroutine only to run
// a different simulated thread. All simulation state is still mutated by
// at most one goroutine at a time, and the event heap is ordered by
// (time, sequence number), so a given program and seed always produce the
// same execution regardless of which goroutine happens to be driving.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"compmig/internal/profile"
)

// Time is a point on the simulated clock, in cycles.
type Time = uint64

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
//
// Event objects are pooled: once an event has fired (or been cancelled)
// the engine recycles it for a later Schedule/At call. Retain the handle
// only while the event is pending.
type Event struct {
	at  Time
	seq uint64
	fn  func()
	th  *Thread // wakeup event: hand control to th instead of calling fn
	eng *Engine

	// stream and exec only matter on a clustered engine (Cluster). stream
	// is the merge-key stream the event was scheduled from (scheduling
	// ambient + 1, so slot 0 is setup/coordinator context); seq is then
	// drawn from the cluster-wide per-stream counter instead of the
	// engine-local one, which makes (at, stream, seq) a total order that
	// does not depend on how processors are partitioned into lanes. exec
	// is the ambient stream installed when the event dispatches (the
	// processor the event logically runs on). Both stay zero on a serial
	// engine, where ordering degenerates to the classic (at, seq).
	stream int32
	exec   int32

	index int // heap index, -1 when not queued (fired, cancelled, or pooled)
}

// Cancel removes a pending event from the heap so it never fires.
// Cancelling an event that has already fired or been cancelled is a no-op;
// do not call Cancel on a handle kept across the event's firing, because
// the engine may have recycled the object for an unrelated event by then.
func (ev *Event) Cancel() {
	if ev.index < 0 {
		return
	}
	ev.eng.heap.remove(ev.index)
	ev.eng.release(ev)
}

// Engine is the simulation core: a clock, an event heap, and the set of
// live simulated threads.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap
	pool []*Event // free list of fired/cancelled events, for reuse by At

	current *Thread
	handoff chan struct{} // a driving thread signals here to return control to Run

	liveThreads int
	allThreads  map[*Thread]struct{}
	nextTID     int
	threadPool  []*Thread // exited threads (goroutine parked in loop), for reuse by Spawn

	rng     *PRNG
	stopped bool
	tracer  *Tracer

	// cluster and lane wire the engine into a sharded Cluster as one of
	// its lanes; both stay zero on the classic serial engine. curStream
	// is the ambient stream id of the event currently executing (-1 in
	// setup/coordinator context); it feeds the cluster-wide merge keys.
	cluster   *Cluster
	lane      int
	curStream int32

	// limited/runLimit are set while RunUntil is draining events, so
	// neither a driving thread nor the fast path can advance the clock
	// past the limit.
	limited  bool
	runLimit Time

	// MaxEvents bounds the number of events processed by Run as a runaway
	// guard; zero means no bound.
	MaxEvents uint64
	processed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose PRNG is
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		handoff:    make(chan struct{}),
		allThreads: make(map[*Thread]struct{}),
		rng:        NewPRNG(seed),
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *PRNG { return e.rng }

// Live returns the number of simulated threads that have been spawned and
// have not yet exited.
func (e *Engine) Live() int { return e.liveThreads }

// Schedule queues fn to run when the clock reaches e.Now()+delay. It
// returns the event so the caller may cancel it.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// At queues fn at absolute time at, which must not be in the past.
func (e *Engine) At(at Time, fn func()) *Event {
	return e.schedule(at, fn, nil)
}

// ScheduleOn queues fn at e.Now()+delay to run as processor proc's event
// stream. On a clustered engine this is how a same-lane message delivery
// installs the destination's ambient stream before the callback runs; on
// a serial engine it is identical to Schedule.
func (e *Engine) ScheduleOn(delay Time, proc int, fn func()) *Event {
	ev := e.schedule(e.now+delay, fn, nil)
	ev.exec = int32(proc)
	return ev
}

// scheduleWake queues a wakeup for th at absolute time at. Wakeups are
// tagged with the thread rather than wrapped in a closure so dispatchers
// can hand control over directly.
func (e *Engine) scheduleWake(at Time, th *Thread) *Event {
	return e.schedule(at, nil, th)
}

func (e *Engine) schedule(at Time, fn func(), th *Thread) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	if profile.Enabled() {
		profile.HeapOps.Add(1)
	}
	var stream int32
	var seq uint64
	exec := e.curStream
	if th != nil {
		exec = th.stream
	}
	if cl := e.cluster; cl != nil {
		// Merge keys come from the scheduling stream's cluster-wide
		// counter, never from engine-local state, so two events at the
		// same cycle sort the same way at every shard count.
		stream = e.curStream + 1
		seq = cl.ctrs[stream]
		cl.ctrs[stream] = seq + 1
	} else {
		e.seq++
		seq = e.seq
	}
	var ev *Event
	if n := len(e.pool); n > 0 {
		ev = e.pool[n-1]
		e.pool[n-1] = nil
		e.pool = e.pool[:n-1]
		ev.at, ev.seq, ev.fn, ev.th = at, seq, fn, th
		ev.stream, ev.exec = stream, exec
	} else {
		ev = &Event{at: at, seq: seq, fn: fn, th: th, stream: stream, exec: exec, eng: e, index: -1}
	}
	e.heap.push(ev)
	return ev
}

// release returns a fired or cancelled event to the free list.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.th = nil
	e.pool = append(e.pool, ev)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// DeadlockError reports that events ran dry while threads were still parked.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d: %d thread(s) blocked forever: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, ", "))
}

// MaxEventsError reports that the engine processed Engine.MaxEvents events
// without the heap draining — the runaway guard tripped.
type MaxEventsError struct {
	Max uint64
	Now Time
}

func (m *MaxEventsError) Error() string {
	return fmt.Sprintf("sim: exceeded MaxEvents=%d at cycle %d", m.Max, m.Now)
}

// dispatch processes one popped event in the caller's goroutine: a plain
// event runs its callback in place; a thread wakeup hands control to the
// thread and blocks until some driver returns control over e.handoff.
func (e *Engine) dispatch(ev *Event) {
	if ev.at < e.now {
		panic("sim: event heap time went backwards")
	}
	e.now = ev.at
	e.processed++
	if e.cluster != nil {
		e.curStream = ev.exec
	}
	if th := ev.th; th != nil {
		e.release(ev)
		e.current = th
		th.resume <- struct{}{}
		<-e.handoff
		return
	}
	fn := ev.fn
	e.release(ev)
	fn()
}

// Run processes events until the heap is empty or Stop is called. It
// returns a *DeadlockError if the heap drains while simulated threads are
// still parked (they can never be woken again), a *MaxEventsError if the
// runaway guard trips, and nil otherwise.
func (e *Engine) Run() error {
	defer e.drainThreadPool()
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		e.dispatch(e.heap.pop())
		if e.MaxEvents != 0 && e.processed >= e.MaxEvents {
			return &MaxEventsError{Max: e.MaxEvents, Now: e.now}
		}
	}
	if !e.stopped && e.liveThreads > 0 {
		var blocked []string
		for th := range e.allThreads {
			blocked = append(blocked, th.String())
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// RunUntil processes events with timestamps <= limit, then returns. Events
// beyond the limit stay queued; the clock is advanced to limit.
func (e *Engine) RunUntil(limit Time) error {
	defer e.drainThreadPool()
	e.stopped = false
	e.limited, e.runLimit = true, limit
	defer func() { e.limited = false }()
	for len(e.heap) > 0 && !e.stopped && e.heap[0].at <= limit {
		e.dispatch(e.heap.pop())
		if e.MaxEvents != 0 && e.processed >= e.MaxEvents {
			return &MaxEventsError{Max: e.MaxEvents, Now: e.now}
		}
	}
	if e.now < limit {
		e.now = limit
	}
	return nil
}

// runWindow processes events with timestamps <= limit and returns,
// leaving parked threads parked and the thread pool intact: unlike
// RunUntil it neither drains the pool nor clamps the clock forward,
// because the lane will be re-entered for the next synchronization
// window. Only Cluster.Run calls it.
func (e *Engine) runWindow(limit Time) error {
	e.stopped = false
	e.limited, e.runLimit = true, limit
	defer func() { e.limited = false }()
	for len(e.heap) > 0 && !e.stopped && e.heap[0].at <= limit {
		e.dispatch(e.heap.pop())
		if e.MaxEvents != 0 && e.processed >= e.MaxEvents {
			return &MaxEventsError{Max: e.MaxEvents, Now: e.now}
		}
	}
	return nil
}

// fastAdvance reports whether the clock can jump straight to at without
// dispatching any other event, and performs the jump when it can. A
// running thread uses this to skip the schedule-pump round trip entirely
// when its own wakeup would be the very next event processed: the
// observable execution order is exactly the slow path's.
func (e *Engine) fastAdvance(at Time) bool {
	if e.stopped || (e.MaxEvents != 0 && e.processed >= e.MaxEvents) {
		return false
	}
	if e.limited && at > e.runLimit {
		return false
	}
	if len(e.heap) > 0 && e.heap[0].at <= at {
		return false
	}
	e.now = at
	e.processed++
	return true
}

// TryAdvance reports whether the clock can jump straight to at without
// dispatching any other event, and performs the jump when it can. It is
// the hook inline fast paths (e.g. the shared-memory substrate's
// home-local miss path) use to complete a whole future transaction
// synchronously: when it returns true, nothing else in the simulation can
// observe an intermediate point of [Now, at], so state mutations that
// would have happened inside that window may be applied immediately.
func (e *Engine) TryAdvance(at Time) bool { return e.fastAdvance(at) }

// drainThreadPool terminates the goroutines of pooled (exited) threads.
// Run calls it on exit so an abandoned engine does not pin parked
// goroutines; a pooled thread has no pending body, so the bare wakeup
// makes its loop return without a handoff.
func (e *Engine) drainThreadPool() {
	for i, th := range e.threadPool {
		th.resume <- struct{}{}
		e.threadPool[i] = nil
	}
	e.threadPool = e.threadPool[:0]
}

// eventHeap is a binary min-heap ordered by (at, stream, seq) — stream
// is zero everywhere on a serial engine, so its order there is the
// classic (at, seq). It is hand-rolled
// rather than built on container/heap: the sift loops below run for every
// event the simulator processes, and the interface-based version's
// indirect Less/Swap calls were a measurable share of total run time.
// (An inline-key 4-ary layout was measured and lost: the heap stays
// shallow enough that wider fan-out doesn't pay for the extra copies.)
type eventHeap []*Event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].stream != h[j].stream {
		return h[i].stream < h[j].stream
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *Event) {
	ev.index = len(*h)
	*h = append(*h, ev)
	h.up(ev.index)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	old[0].index = 0
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return ev
}

// remove deletes the event at index i, preserving heap order.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old[i], old[n] = old[n], old[i]
		old[i].index = i
	}
	old[n].index = -1
	old[n] = nil
	*h = old[:n]
	if i != n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		h[i].index = i
		h[parent].index = parent
		i = parent
	}
}

// down sifts the event at i toward the leaves, reporting whether it moved.
func (h eventHeap) down(i int) bool {
	start := i
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		next := left
		if right := left + 1; right < n && h.less(right, left) {
			next = right
		}
		if !h.less(next, i) {
			break
		}
		h[i], h[next] = h[next], h[i]
		h[i].index = i
		h[next].index = next
		i = next
	}
	return i > start
}
