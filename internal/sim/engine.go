// Package sim implements a deterministic discrete-event simulator with
// coroutine-style simulated threads, in the spirit of the Proteus
// parallel-architecture simulator used by the paper.
//
// The engine owns a virtual clock measured in processor cycles. Simulated
// threads are real goroutines, but exactly one of them runs at any moment:
// the engine hands control to a thread over a channel and blocks until the
// thread parks itself again. All simulation state is therefore mutated by
// at most one goroutine at a time, and the event heap is ordered by
// (time, sequence number), so a given program and seed always produce the
// same execution.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is a point on the simulated clock, in cycles.
type Time = uint64

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled.
type Event struct {
	at  Time
	seq uint64
	fn  func()

	index     int // heap index, -1 when not queued
	cancelled bool
}

// Cancel prevents a pending event from firing. Cancelling an event that has
// already fired is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Engine is the simulation core: a clock, an event heap, and the set of
// live simulated threads.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap

	current *Thread
	handoff chan struct{} // a running thread signals here when it parks or exits

	liveThreads int
	allThreads  map[*Thread]struct{}
	nextTID     int

	rng     *PRNG
	stopped bool
	tracer  *Tracer

	// MaxEvents bounds the number of events processed by Run as a runaway
	// guard; zero means no bound.
	MaxEvents uint64
	processed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose PRNG is
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		handoff:    make(chan struct{}),
		allThreads: make(map[*Thread]struct{}),
		rng:        NewPRNG(seed),
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic PRNG.
func (e *Engine) Rand() *PRNG { return e.rng }

// Live returns the number of simulated threads that have been spawned and
// have not yet exited.
func (e *Engine) Live() int { return e.liveThreads }

// Schedule queues fn to run when the clock reaches e.Now()+delay. It
// returns the event so the caller may cancel it.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// At queues fn at absolute time at, which must not be in the past.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, index: -1}
	heap.Push(&e.heap, ev)
	return ev
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// DeadlockError reports that events ran dry while threads were still parked.
type DeadlockError struct {
	Now     Time
	Blocked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d: %d thread(s) blocked forever: %s",
		d.Now, len(d.Blocked), strings.Join(d.Blocked, ", "))
}

// Run processes events until the heap is empty or Stop is called. It
// returns a *DeadlockError if the heap drains while simulated threads are
// still parked (they can never be woken again), and nil otherwise.
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic("sim: event heap time went backwards")
		}
		e.now = ev.at
		ev.fn()
		e.processed++
		if e.MaxEvents != 0 && e.processed >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at cycle %d", e.MaxEvents, e.now)
		}
	}
	if !e.stopped && e.liveThreads > 0 {
		var blocked []string
		for th := range e.allThreads {
			blocked = append(blocked, th.String())
		}
		sort.Strings(blocked)
		return &DeadlockError{Now: e.now, Blocked: blocked}
	}
	return nil
}

// RunUntil processes events with timestamps <= limit, then returns. Events
// beyond the limit stay queued; the clock is advanced to limit.
func (e *Engine) RunUntil(limit Time) error {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped && e.heap[0].at <= limit {
		ev := heap.Pop(&e.heap).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		e.processed++
		if e.MaxEvents != 0 && e.processed >= e.MaxEvents {
			return fmt.Errorf("sim: exceeded MaxEvents=%d at cycle %d", e.MaxEvents, e.now)
		}
	}
	if e.now < limit {
		e.now = limit
	}
	return nil
}

// resume hands control to th and blocks until it parks or exits.
func (e *Engine) resume(th *Thread) {
	prev := e.current
	e.current = th
	th.resume <- struct{}{}
	<-e.handoff
	e.current = prev
}

// eventHeap implements container/heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
