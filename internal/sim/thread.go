package sim

import "fmt"

// Thread is a simulated lightweight thread (in the sense of a threads
// package, per the paper's footnote 1 — heavier than TAM threads). Each
// Thread is backed by a goroutine, but the engine guarantees only one runs
// at a time, so thread bodies may freely touch shared simulation state.
type Thread struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	state  threadState
	where  string // description of the blocking site, for deadlock reports
}

type threadState int

const (
	threadRunnable threadState = iota
	threadRunning
	threadParked
	threadDone
)

// Spawn creates a simulated thread that begins executing body at time
// e.Now()+delay. The body runs under engine control; it must only interact
// with the simulation through the Thread it receives.
func (e *Engine) Spawn(name string, delay Time, body func(*Thread)) *Thread {
	e.nextTID++
	th := &Thread{
		eng:    e,
		id:     e.nextTID,
		name:   name,
		resume: make(chan struct{}),
	}
	e.liveThreads++
	e.allThreads[th] = struct{}{}
	go func() {
		<-th.resume // wait for first dispatch
		th.state = threadRunning
		body(th)
		th.state = threadDone
		e.liveThreads--
		delete(e.allThreads, th)
		e.handoff <- struct{}{}
	}()
	e.Schedule(delay, func() { e.resume(th) })
	return th
}

// Engine returns the engine this thread belongs to.
func (th *Thread) Engine() *Engine { return th.eng }

// ID returns the thread's unique id (1-based, in spawn order).
func (th *Thread) ID() int { return th.id }

// Name returns the name given at spawn.
func (th *Thread) Name() string { return th.name }

// Now returns the current simulated time.
func (th *Thread) Now() Time { return th.eng.now }

func (th *Thread) String() string {
	return fmt.Sprintf("%s#%d@%s", th.name, th.id, th.where)
}

// park yields control back to the engine and blocks until some event
// resumes this thread. The caller must have arranged for a wakeup.
func (th *Thread) park(where string) {
	if th.eng.current != th {
		panic("sim: park called from a thread that is not running")
	}
	th.state = threadParked
	th.where = where
	th.eng.handoff <- struct{}{}
	<-th.resume
	th.state = threadRunning
	th.where = ""
}

// Park blocks the thread indefinitely; it runs again only when another
// party calls Unpark. The where string labels the block site in deadlock
// reports.
func (th *Thread) Park(where string) { th.park(where) }

// Unpark schedules th to resume at the current time. It must only be
// called for a thread that is parked (or about to park within the current
// event); the engine's single-runner discipline makes this race-free.
func (th *Thread) Unpark() {
	th.eng.Schedule(0, func() { th.eng.resume(th) })
}

// UnparkAt schedules th to resume after delay cycles.
func (th *Thread) UnparkAt(delay Time) {
	th.eng.Schedule(delay, func() { th.eng.resume(th) })
}

// Sleep advances the thread's virtual time by d cycles without occupying
// any processor (used for "think time" in the paper's workloads).
func (th *Thread) Sleep(d Time) {
	if d == 0 {
		return
	}
	th.eng.Schedule(d, func() { th.eng.resume(th) })
	th.park("sleep")
}

// Yield reschedules the thread at the current time behind already-queued
// events.
func (th *Thread) Yield() {
	th.eng.Schedule(0, func() { th.eng.resume(th) })
	th.park("yield")
}
