package sim

import "fmt"

// Thread is a simulated lightweight thread (in the sense of a threads
// package, per the paper's footnote 1 — heavier than TAM threads). Each
// Thread is backed by a goroutine, but the engine guarantees only one runs
// at a time, so thread bodies may freely touch shared simulation state.
//
// Thread objects (and their goroutines) are pooled: once a body returns,
// the engine recycles the thread for a later Spawn. Retain the handle
// only while the thread is live; an exited thread's object may already
// be running an unrelated body.
type Thread struct {
	eng    *Engine
	id     int
	name   string
	body   func(*Thread) // pending body; nil tells loop to terminate
	resume chan struct{}
	wake   func() // cached resume callback, so wakeups allocate no closure
	state  threadState
	where  string // description of the blocking site, for deadlock reports
}

type threadState int

const (
	threadRunnable threadState = iota
	threadRunning
	threadParked
	threadDone
)

// Spawn creates a simulated thread that begins executing body at time
// e.Now()+delay. The body runs under engine control; it must only interact
// with the simulation through the Thread it receives.
func (e *Engine) Spawn(name string, delay Time, body func(*Thread)) *Thread {
	e.nextTID++
	var th *Thread
	if n := len(e.threadPool); n > 0 {
		th = e.threadPool[n-1]
		e.threadPool[n-1] = nil
		e.threadPool = e.threadPool[:n-1]
		th.id, th.name, th.body = e.nextTID, name, body
		th.state, th.where = threadRunnable, ""
	} else {
		th = &Thread{
			eng:    e,
			id:     e.nextTID,
			name:   name,
			body:   body,
			resume: make(chan struct{}),
		}
		th.wake = func() { e.resume(th) }
		go th.loop()
	}
	e.liveThreads++
	e.allThreads[th] = struct{}{}
	e.Schedule(delay, th.wake)
	return th
}

// loop is the goroutine behind a Thread for its whole pooled lifetime:
// run the pending body, retire into the pool, block until the engine
// hands it a new body, repeat. A wakeup with no pending body is the
// engine's drain signal and terminates the goroutine.
func (th *Thread) loop() {
	for {
		<-th.resume // wait for first dispatch of the current body
		body := th.body
		if body == nil {
			return
		}
		th.body = nil
		th.state = threadRunning
		body(th)
		th.exit()
	}
}

// exit retires the thread and hands control back to the engine. It
// mirrors park's bookkeeping: the thread must be the engine's current
// runner, and Engine.current is cleared rather than left pointing at a
// dead thread during the handoff window. The object goes back to the
// spawn pool; its goroutine survives in loop.
func (th *Thread) exit() {
	e := th.eng
	if e.current != th {
		panic("sim: thread exiting while not the current runner")
	}
	th.state = threadDone
	th.where = "exited"
	e.liveThreads--
	delete(e.allThreads, th)
	e.threadPool = append(e.threadPool, th)
	e.current = nil
	e.handoff <- struct{}{}
}

// Engine returns the engine this thread belongs to.
func (th *Thread) Engine() *Engine { return th.eng }

// ID returns the thread's unique id (1-based, in spawn order).
func (th *Thread) ID() int { return th.id }

// Name returns the name given at spawn.
func (th *Thread) Name() string { return th.name }

// Now returns the current simulated time.
func (th *Thread) Now() Time { return th.eng.now }

func (th *Thread) String() string {
	return fmt.Sprintf("%s#%d@%s", th.name, th.id, th.where)
}

// park yields control back to the engine and blocks until some event
// resumes this thread. The caller must have arranged for a wakeup.
func (th *Thread) park(where string) {
	if th.eng.current != th {
		panic("sim: park called from a thread that is not running")
	}
	th.state = threadParked
	th.where = where
	th.eng.handoff <- struct{}{}
	<-th.resume
	th.state = threadRunning
	th.where = ""
}

// Park blocks the thread indefinitely; it runs again only when another
// party calls Unpark. The where string labels the block site in deadlock
// reports.
func (th *Thread) Park(where string) { th.park(where) }

// Unpark schedules th to resume at the current time. It must only be
// called for a thread that is parked (or about to park within the current
// event); the engine's single-runner discipline makes this race-free.
func (th *Thread) Unpark() {
	th.eng.Schedule(0, th.wake)
}

// UnparkAt schedules th to resume after delay cycles.
func (th *Thread) UnparkAt(delay Time) {
	th.eng.Schedule(delay, th.wake)
}

// Sleep advances the thread's virtual time by d cycles without occupying
// any processor (used for "think time" in the paper's workloads). When no
// other event fires at or before the wakeup time, the thread advances the
// clock itself and keeps running, skipping the park/resume handoff.
func (th *Thread) Sleep(d Time) {
	if d == 0 {
		return
	}
	if th.eng.fastAdvance(th.eng.now + d) {
		return
	}
	th.eng.Schedule(d, th.wake)
	th.park("sleep")
}

// Yield reschedules the thread at the current time behind already-queued
// events. When no event is queued at the current time, it is a no-op.
func (th *Thread) Yield() {
	if th.eng.fastAdvance(th.eng.now) {
		return
	}
	th.eng.Schedule(0, th.wake)
	th.park("yield")
}
