package sim

import "fmt"

// Thread is a simulated lightweight thread (in the sense of a threads
// package, per the paper's footnote 1 — heavier than TAM threads). Each
// Thread is backed by a goroutine, but the engine guarantees only one runs
// at a time, so thread bodies may freely touch shared simulation state.
//
// Thread objects (and their goroutines) are pooled: once a body returns,
// the engine recycles the thread for a later Spawn. Retain the handle
// only while the thread is live; an exited thread's object may already
// be running an unrelated body.
type Thread struct {
	eng    *Engine
	id     int
	name   string
	body   func(*Thread) // pending body; nil tells loop to terminate
	resume chan struct{}
	state  threadState
	where  string // description of the blocking site, for deadlock reports

	// stream is the event stream the thread's wakeups execute as: the
	// processor the thread is bound to on a clustered engine (set by
	// Proc.Spawn), or the spawner's ambient stream. Zero and unused on a
	// serial engine.
	stream int32

	// scratch is the future handed out by ScratchFuture.
	scratch Future
}

type threadState int

const (
	threadRunnable threadState = iota
	threadRunning
	threadParked
	threadDone
)

// Spawn creates a simulated thread that begins executing body at time
// e.Now()+delay. The body runs under engine control; it must only interact
// with the simulation through the Thread it receives.
func (e *Engine) Spawn(name string, delay Time, body func(*Thread)) *Thread {
	return e.spawnAt(name, delay, body, e.curStream)
}

// spawnAt is Spawn with an explicit stream binding: the thread's wakeup
// events execute as stream (processor id on a clustered engine).
func (e *Engine) spawnAt(name string, delay Time, body func(*Thread), stream int32) *Thread {
	e.nextTID++
	var th *Thread
	if n := len(e.threadPool); n > 0 {
		th = e.threadPool[n-1]
		e.threadPool[n-1] = nil
		e.threadPool = e.threadPool[:n-1]
		th.id, th.name, th.body = e.nextTID, name, body
		th.state, th.where = threadRunnable, ""
		th.stream = stream
	} else {
		th = &Thread{
			eng:    e,
			id:     e.nextTID,
			name:   name,
			body:   body,
			resume: make(chan struct{}),
			stream: stream,
		}
		// The goroutine is the coroutine substrate itself: the engine's
		// single-runner handoff (resume/handoff channels) guarantees at
		// most one simulated thread executes at a time, so spawning here
		// cannot introduce scheduling nondeterminism (see package doc).
		go th.loop() //simvet:allow coroutine substrate; single-runner handoff keeps execution deterministic
	}
	e.liveThreads++
	e.allThreads[th] = struct{}{}
	e.scheduleWake(e.now+delay, th)
	return th
}

// loop is the goroutine behind a Thread for its whole pooled lifetime:
// run the pending body, retire into the pool, block until the engine
// hands it a new body, repeat. A wakeup with no pending body is the
// engine's drain signal and terminates the goroutine.
func (th *Thread) loop() {
	for {
		<-th.resume // wait for first dispatch of the current body
		body := th.body
		if body == nil {
			return
		}
		th.body = nil
		th.state = threadRunning
		body(th)
		th.exit()
	}
}

// exit retires the thread and hands control back to the engine. It
// mirrors park's bookkeeping: the thread must be the engine's current
// runner, and Engine.current is cleared rather than left pointing at a
// dead thread during the handoff window. The object goes back to the
// spawn pool; its goroutine survives in loop.
func (th *Thread) exit() {
	e := th.eng
	if e.current != th {
		panic("sim: thread exiting while not the current runner")
	}
	th.state = threadDone
	th.where = "exited"
	e.liveThreads--
	delete(e.allThreads, th)
	e.threadPool = append(e.threadPool, th)
	e.current = nil
	e.handoff <- struct{}{}
}

// Engine returns the engine this thread belongs to.
func (th *Thread) Engine() *Engine { return th.eng }

// ID returns the thread's unique id (1-based, in spawn order).
func (th *Thread) ID() int { return th.id }

// Name returns the name given at spawn.
func (th *Thread) Name() string { return th.name }

// Now returns the current simulated time.
func (th *Thread) Now() Time { return th.eng.now }

func (th *Thread) String() string {
	return fmt.Sprintf("%s#%d@%s", th.name, th.id, th.where)
}

// ScratchFuture resets and returns a future owned by the thread, for
// rendezvous whose lifetimes never overlap (e.g. one demand miss at a
// time): each call invalidates the value of the previous one. Callers
// that can have several in flight must allocate their own futures.
func (th *Thread) ScratchFuture() *Future {
	th.scratch.Reset()
	return &th.scratch
}

// park blocks the thread until some event resumes it. The caller must
// have arranged for a wakeup.
//
// Rather than bouncing control back to the engine goroutine on every
// block, the parking thread becomes the driver: it pumps events in place.
// Plain callbacks run inline; its own wakeup lets it fall straight
// through and keep running on the same goroutine; another thread's wakeup
// hands control to that thread directly. The engine goroutine is involved
// only when the loop must end (stop, empty heap, run limit, event bound).
// Event order comes solely from the heap, so the execution is identical
// to engine-driven dispatch — only the goroutine doing the popping
// changes.
func (th *Thread) park(where string) {
	e := th.eng
	if e.current != th {
		panic("sim: park called from a thread that is not running")
	}
	th.state = threadParked
	th.where = where
	e.current = nil
	for {
		if e.stopped || len(e.heap) == 0 ||
			(e.limited && e.heap[0].at > e.runLimit) ||
			(e.MaxEvents != 0 && e.processed >= e.MaxEvents) {
			// The engine loop must take back over: to return, to honor
			// the run limit, or to report deadlock / the event bound.
			e.handoff <- struct{}{}
			<-th.resume
			break
		}
		ev := e.heap.pop()
		if ev.at < e.now {
			panic("sim: event heap time went backwards")
		}
		e.now = ev.at
		e.processed++
		if e.cluster != nil {
			e.curStream = ev.exec
		}
		if tw := ev.th; tw != nil {
			e.release(ev)
			if tw == th {
				break // own wakeup: resume in place, no goroutine switch
			}
			e.current = tw
			tw.resume <- struct{}{}
			<-th.resume
			break
		}
		fn := ev.fn
		e.release(ev)
		fn()
	}
	e.current = th
	th.state = threadRunning
	th.where = ""
}

// Park blocks the thread indefinitely; it runs again only when another
// party calls Unpark. The where string labels the block site in deadlock
// reports.
func (th *Thread) Park(where string) { th.park(where) }

// Unpark schedules th to resume at the current time. It must only be
// called for a thread that is parked (or about to park within the current
// event); the engine's single-runner discipline makes this race-free.
func (th *Thread) Unpark() {
	th.eng.scheduleWake(th.eng.now, th)
}

// UnparkAt schedules th to resume after delay cycles.
func (th *Thread) UnparkAt(delay Time) {
	th.eng.scheduleWake(th.eng.now+delay, th)
}

// Sleep advances the thread's virtual time by d cycles without occupying
// any processor (used for "think time" in the paper's workloads). When no
// other event fires at or before the wakeup time, the thread advances the
// clock itself and keeps running, skipping the park/resume handoff.
func (th *Thread) Sleep(d Time) {
	if d == 0 {
		return
	}
	if th.eng.fastAdvance(th.eng.now + d) {
		return
	}
	th.eng.scheduleWake(th.eng.now+d, th)
	th.park("sleep")
}

// Yield reschedules the thread at the current time behind already-queued
// events. When no event is queued at the current time, it is a no-op.
func (th *Thread) Yield() {
	if th.eng.fastAdvance(th.eng.now) {
		return
	}
	th.eng.scheduleWake(th.eng.now, th)
	th.park("yield")
}
