package sim

import (
	"fmt"
	"io"
)

// TraceEvent is one record of the simulation's execution trace.
type TraceEvent struct {
	At     Time
	Kind   string
	Detail string
}

// Tracer captures a bounded ring of trace events. Tracing is off by
// default; EnableTrace attaches a tracer to the engine, after which
// instrumented subsystems (network sends, migrations, misses) record
// what they do. The ring keeps the most recent events, so a trace of a
// long run ends with the part you usually care about.
type Tracer struct {
	ring  []TraceEvent
	next  int
	total uint64
	full  bool
}

// EnableTrace attaches a tracer ring holding up to capacity events and
// returns it. Calling it again replaces the previous tracer.
func (e *Engine) EnableTrace(capacity int) *Tracer {
	if capacity <= 0 {
		panic("sim: trace capacity must be positive")
	}
	e.tracer = &Tracer{ring: make([]TraceEvent, capacity)}
	return e.tracer
}

// Tracing reports whether a tracer is attached.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// Tracef records an event when tracing is enabled; otherwise it is a
// cheap no-op (the formatting happens only when enabled).
func (e *Engine) Tracef(kind, format string, args ...any) {
	tr := e.tracer
	if tr == nil {
		return
	}
	tr.ring[tr.next] = TraceEvent{At: e.now, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	tr.next++
	tr.total++
	if tr.next == len(tr.ring) {
		tr.next = 0
		tr.full = true
	}
}

// Total returns how many events were recorded over the run (including
// ones that have rotated out of the ring).
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []TraceEvent {
	if !t.full {
		out := make([]TraceEvent, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]TraceEvent, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes the retained trace to w, one event per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "%10d %-10s %s\n", ev.At, ev.Kind, ev.Detail); err != nil {
			return err
		}
	}
	return nil
}
