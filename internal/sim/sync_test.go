package sim

import "testing"

func TestMutexExclusionAndFIFO(t *testing.T) {
	e := NewEngine(1)
	var mu Mutex
	var order []int
	inside := 0
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn("w", Time(i), func(th *Thread) {
			mu.Lock(th)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, i)
			th.Sleep(100)
			inside--
			mu.Unlock(th)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("lock handoff not FIFO: %v", order)
		}
	}
	if mu.Contended != 3 {
		t.Fatalf("contended = %d, want 3", mu.Contended)
	}
	if mu.Locked() {
		t.Fatal("mutex still held at end")
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine(1)
	var mu Mutex
	e.Spawn("a", 0, func(th *Thread) {
		if !mu.TryLock(th) {
			t.Error("TryLock on free mutex failed")
		}
		th.Sleep(10)
		mu.Unlock(th)
	})
	e.Spawn("b", 5, func(th *Thread) {
		if mu.TryLock(th) {
			t.Error("TryLock on held mutex succeeded")
		}
		th.Sleep(10)
		if !mu.TryLock(th) {
			t.Error("TryLock after release failed")
		}
		mu.Unlock(th)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	e := NewEngine(1)
	var mu Mutex
	e.Spawn("a", 0, func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Unlock by non-owner did not panic")
			}
			// Re-signal engine handoff correctness by exiting normally.
		}()
		mu.Unlock(th)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureCompleteBeforeWait(t *testing.T) {
	e := NewEngine(1)
	f := &Future{}
	f.Complete(99)
	var got any
	e.Spawn("w", 0, func(th *Thread) { got = f.Wait(th) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("got %v, want 99", got)
	}
}

func TestFutureWaitBeforeComplete(t *testing.T) {
	e := NewEngine(1)
	f := &Future{}
	var got any
	var when Time
	e.Spawn("w", 0, func(th *Thread) {
		got = f.Wait(th)
		when = th.Now()
	})
	e.Schedule(500, func() { f.Complete("hi") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hi" || when != 500 {
		t.Fatalf("got %v at %d", got, when)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	f := &Future{}
	f.Complete(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Complete did not panic")
		}
	}()
	f.Complete(2)
}

func TestWaitQueueSignalOrder(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", Time(i), func(th *Thread) {
			q.Wait(th, "test")
			order = append(order, i)
		})
	}
	e.Schedule(100, func() { q.Signal() })
	e.Schedule(200, func() { q.Signal() })
	e.Schedule(300, func() { q.Signal() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("signal order not FIFO: %v", order)
		}
	}
}

func TestWaitQueueBroadcast(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	released := 0
	for i := 0; i < 5; i++ {
		e.Spawn("w", 0, func(th *Thread) {
			q.Wait(th, "test")
			released++
		})
	}
	e.Schedule(10, func() {
		if n := q.Broadcast(); n != 5 {
			t.Errorf("broadcast released %d, want 5", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 5 {
		t.Fatalf("released = %d, want 5", released)
	}
}

func TestBarrier(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(3)
	var crossed []Time
	for i := 0; i < 3; i++ {
		d := Time(i * 100)
		e.Spawn("w", d, func(th *Thread) {
			b.Arrive(th)
			crossed = append(crossed, th.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(crossed) != 3 {
		t.Fatalf("crossed = %v", crossed)
	}
	for _, c := range crossed {
		if c != 200 {
			t.Fatalf("thread crossed at %d, want all at 200: %v", c, crossed)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	e := NewEngine(1)
	b := NewBarrier(2)
	gens := 0
	for i := 0; i < 2; i++ {
		e.Spawn("w", 0, func(th *Thread) {
			for g := 0; g < 3; g++ {
				th.Sleep(10)
				b.Arrive(th)
			}
			gens++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if gens != 2 {
		t.Fatalf("threads finished = %d", gens)
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("w", 0, func(th *Thread) {
			s.Acquire(th)
			inside++
			if inside > peak {
				peak = inside
			}
			th.Sleep(10)
			inside--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("semaphore peak occupancy = %d, want 2", peak)
	}
}

func TestWaitQueueLenAndFutureDone(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	f := &Future{}
	if f.Done() {
		t.Error("fresh future done")
	}
	e.Spawn("w", 0, func(th *Thread) {
		q.Wait(th, "x")
	})
	e.Schedule(5, func() {
		if q.Len() != 1 {
			t.Errorf("queue len = %d", q.Len())
		}
		q.Broadcast()
		f.Complete(nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !f.Done() {
		t.Error("completed future not done")
	}
	if q.Len() != 0 {
		t.Errorf("queue len after broadcast = %d", q.Len())
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-count barrier accepted")
		}
	}()
	NewBarrier(0)
}

func TestSemaphoreValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative semaphore accepted")
		}
	}()
	NewSemaphore(-1)
}
