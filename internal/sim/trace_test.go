package sim

import (
	"strings"
	"testing"
)

func TestTraceDisabledByDefault(t *testing.T) {
	e := NewEngine(1)
	if e.Tracing() {
		t.Fatal("tracing on by default")
	}
	e.Tracef("x", "should be dropped")
	// No panic, no state: attach a tracer and confirm it starts empty.
	tr := e.EnableTrace(4)
	if tr.Total() != 0 || len(tr.Events()) != 0 {
		t.Fatal("fresh tracer not empty")
	}
}

func TestTraceRecordsInOrder(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTrace(16)
	e.Schedule(10, func() { e.Tracef("a", "first") })
	e.Schedule(20, func() { e.Tracef("b", "second %d", 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].At != 10 || evs[0].Kind != "a" {
		t.Errorf("first event %+v", evs[0])
	}
	if evs[1].Detail != "second 2" {
		t.Errorf("formatting lost: %q", evs[1].Detail)
	}
}

func TestTraceRingWraps(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTrace(3)
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Time(i+1), func() { e.Tracef("k", "event %d", i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 10 {
		t.Errorf("total = %d", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	// Most recent three, oldest first.
	for i, want := range []string{"event 7", "event 8", "event 9"} {
		if evs[i].Detail != want {
			t.Errorf("retained[%d] = %q, want %q", i, evs[i].Detail, want)
		}
	}
}

func TestTraceDump(t *testing.T) {
	e := NewEngine(1)
	tr := e.EnableTrace(8)
	e.Schedule(5, func() { e.Tracef("send", "rpc p0->p1") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rpc p0->p1") {
		t.Errorf("dump output %q", sb.String())
	}
}

func TestTraceCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewEngine(1).EnableTrace(0)
}
