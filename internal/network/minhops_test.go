package network

import "testing"

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestCrossbarMinHops(t *testing.T) {
	c := Crossbar{}
	if got := c.MinHops([]int{0, 1}, []int{2, 3}); got != 1 {
		t.Errorf("disjoint groups: got %d hops, want 1", got)
	}
	if got := c.MinHops([]int{0, 1}, []int{1, 2}); got != 0 {
		t.Errorf("overlapping groups: got %d hops, want 0", got)
	}
	mustPanic(t, "MinHops with empty groupA", func() { c.MinHops(nil, []int{0}) })
	mustPanic(t, "MinHops with empty groupB", func() { c.MinHops([]int{0}, nil) })
}

func TestMeshMinHops(t *testing.T) {
	m := NewMesh(4, 4)
	// Proc 0 is cell (0,0); procs 10 and 15 are cells (2,2) and (3,3),
	// at Manhattan distances 4 and 6 — the minimum wins.
	if got := m.MinHops([]int{0}, []int{10, 15}); got != 4 {
		t.Errorf("got %d hops, want 4", got)
	}
	// Adjacent cells dominate the minimum: 5 (1,1) and 6 (1,2).
	if got := m.MinHops([]int{0, 5}, []int{6, 15}); got != 1 {
		t.Errorf("got %d hops, want 1", got)
	}
	if got := m.MinHops([]int{7}, []int{7}); got != 0 {
		t.Errorf("shared proc: got %d hops, want 0", got)
	}
	mustPanic(t, "MinHops with empty group", func() { m.MinHops([]int{0}, nil) })
	mustPanic(t, "MinHops with out-of-range proc", func() { m.MinHops([]int{0}, []int{16}) })
	mustPanic(t, "MinHops with negative proc", func() { m.MinHops([]int{-1}, []int{0}) })
}

func TestLookahead(t *testing.T) {
	m := NewMesh(4, 2)
	// Contiguous halves: closest cross pair is 3 <-> 4? No: 3 is (0,3),
	// 4 is (1,0) -> 4 hops; but 3 <-> 7 is (0,3)-(1,3) -> 1 hop.
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if got := Lookahead(m, groups, 10, 2); got != 12 {
		t.Errorf("got lookahead %d, want 12 (base 10 + 2*1 hop)", got)
	}
	if got := Lookahead(m, groups[:1], 10, 2); got != 0 {
		t.Errorf("single group: got lookahead %d, want 0", got)
	}
	// Asymmetric bases do not matter (Lookahead minimizes over ordered
	// pairs of the same symmetric MinHops), but more distant groupings do.
	far := [][]int{{0}, {7}}
	if got := Lookahead(m, far, 10, 2); got != 18 {
		t.Errorf("corner groups: got lookahead %d, want 18 (base 10 + 2*4 hops)", got)
	}
	if got := Lookahead(Crossbar{}, groups, 17, 0); got != 17 {
		t.Errorf("crossbar: got lookahead %d, want 17", got)
	}
}
