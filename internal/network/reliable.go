package network

import (
	"compmig/internal/fault"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// frameWords is the wire cost of the reliability framing per message:
// one word of sequence number and one word of protocol flags/route for
// the ack. Charged on every transmission so retried traffic stays
// cycle-meaningful.
const frameWords = 2

// ackWireWords is the payload size of an ack (the echoed sequence
// number); the header is charged on top as for any message.
const ackWireWords = 1

// reliability implements at-most-once delivery over a faulty wire:
// sequence-numbered framing, receiver acks with duplicate suppression
// keyed by (source proc, sequence), and sender retransmission under a
// capped exponential backoff. It exists only while a fault injector is
// attached; the fault-free path never allocates any of this.
type reliability struct {
	n   *Network
	inj *fault.Injector

	nextSeq uint64
	pending map[uint64]*relPending
	// seen records delivered (source, seq) pairs for duplicate
	// suppression. Never swept: one experiment run is bounded, and a
	// retransmit can arrive arbitrarily late relative to its ack.
	seen map[dedupKey]struct{}
}

type dedupKey struct {
	src int
	seq uint64
}

// relPending is one logical message awaiting its ack. The embedded
// Message is a clone of the caller's — senders like mem's pooled
// ctrlMsg reuse their message structs immediately, so the in-flight
// copy must be private.
type relPending struct {
	r         *reliability
	m         Message
	recvDelay uint64
	arrive    func(*Message)
	onGiveUp  func(*fault.GiveUpError)
	attempts  int
	rto       uint64
	timer     *sim.Event
	fire      func() // bound onTimeout, built once
}

func newReliability(n *Network, inj *fault.Injector) *reliability {
	return &reliability{
		n:       n,
		inj:     inj,
		pending: make(map[uint64]*relPending),
		seen:    make(map[dedupKey]struct{}),
	}
}

// send frames, transmits, and arms the retransmission timer for one
// logical message.
func (r *reliability) send(m *Message, recvDelay uint64, arrive func(*Message), onGiveUp func(*fault.GiveUpError)) {
	r.nextSeq++
	p := &relPending{
		r:         r,
		m:         *m,
		recvDelay: recvDelay,
		arrive:    arrive,
		onGiveUp:  onGiveUp,
		rto:       r.inj.RTOInitial(),
	}
	p.m.Seq = r.nextSeq
	p.m.ExtraWords += frameWords
	p.fire = p.onTimeout
	r.pending[p.m.Seq] = p
	r.transmit(p)
	p.timer = r.n.eng.Schedule(p.rto, p.fire)
}

// transmit puts one copy of p's message on the wire: full word and
// transit-cycle charges every time (a retransmission consumes the same
// machine resources as the original), then the injector's verdict.
func (r *reliability) transmit(p *relPending) {
	p.attempts++
	if p.attempts > 1 {
		r.inj.Counters.Retransmits++
	}
	n := r.n
	words := p.m.Words()
	n.col.CountMessage(p.m.Kind, words)
	lat := n.Latency(p.m.Src, p.m.Dst, words)
	n.col.AddCycles(stats.CatNetworkTransit, lat)
	if n.eng.Tracing() {
		n.eng.Tracef("send", "%s p%d->p%d %dw seq=%d try=%d",
			p.m.Kind, p.m.Src, p.m.Dst, words, p.m.Seq, p.attempts)
	}
	v := r.inj.Judge(p.m.Kind)
	if v.Drop {
		// The wire ate it after the sender paid for it; the timer will
		// retransmit.
		r.inj.Counters.Dropped++
		if n.eng.Tracing() {
			n.eng.Tracef("fault", "drop %s p%d->p%d seq=%d", p.m.Kind, p.m.Src, p.m.Dst, p.m.Seq)
		}
		return
	}
	r.deliverAfter(p, lat+p.recvDelay+v.Delay)
	if v.Dup {
		r.inj.Counters.Duplicated++
		r.deliverAfter(p, lat+p.recvDelay+v.DupDelay)
	}
}

// deliverAfter lands one copy of p's message at the destination after
// delay, subject to the destination's outage windows.
func (r *reliability) deliverAfter(p *relPending, delay uint64) {
	at := uint64(r.n.eng.Now()) + delay
	drop, resume := r.inj.DeliveryDown(p.m.Dst, at)
	if drop {
		r.inj.Counters.CrashDropped++
		return
	}
	if resume > at {
		r.inj.Counters.PauseDelayed++
		delay += resume - at
	}
	r.n.eng.Schedule(delay, func() { r.deliver(p) })
}

// deliver runs at arrival time: ack first (even for duplicates — the
// first ack may have been lost), then suppress duplicates, then hand
// the message to the caller's arrive exactly once.
func (r *reliability) deliver(p *relPending) {
	n := r.n
	n.Delivered++
	if n.eng.Tracing() {
		n.eng.Tracef("deliver", "%s p%d->p%d seq=%d", p.m.Kind, p.m.Src, p.m.Dst, p.m.Seq)
	}
	r.sendAck(p)
	key := dedupKey{src: p.m.Src, seq: p.m.Seq}
	if _, dup := r.seen[key]; dup {
		r.inj.Counters.DupSuppressed++
		return
	}
	r.seen[key] = struct{}{}
	p.arrive(&p.m)
}

// sendAck sends the receiver's ack back to the sender, itself subject
// to loss, duplication, and the sender's outage windows.
func (r *reliability) sendAck(p *relPending) {
	n := r.n
	r.inj.Counters.Acks++
	words := uint64(HeaderWords + ackWireWords)
	n.col.CountMessage("ack", words)
	lat := n.Latency(p.m.Dst, p.m.Src, words)
	n.col.AddCycles(stats.CatNetworkTransit, lat)
	v := r.inj.Judge("ack")
	if v.Drop {
		r.inj.Counters.AckDropped++
		return
	}
	seq := p.m.Seq
	r.ackAfter(p, seq, lat+v.Delay)
	if v.Dup {
		r.inj.Counters.Duplicated++
		r.ackAfter(p, seq, lat+v.DupDelay)
	}
}

// ackAfter lands one ack copy at the original sender after delay,
// subject to the sender's outage windows.
func (r *reliability) ackAfter(p *relPending, seq, delay uint64) {
	at := uint64(r.n.eng.Now()) + delay
	drop, resume := r.inj.DeliveryDown(p.m.Src, at)
	if drop {
		r.inj.Counters.AckDropped++
		return
	}
	if resume > at {
		r.inj.Counters.PauseDelayed++
		delay += resume - at
	}
	r.n.eng.Schedule(delay, func() { r.onAck(seq) })
}

// onAck settles the pending entry. Late and duplicate acks find nothing
// and are ignored.
func (r *reliability) onAck(seq uint64) {
	p, ok := r.pending[seq]
	if !ok {
		return
	}
	delete(r.pending, seq)
	if p.timer != nil {
		p.timer.Cancel()
		p.timer = nil
	}
}

// onTimeout fires when an ack has not arrived within the current RTO:
// back off and retransmit, or give up after the attempt budget.
func (p *relPending) onTimeout() {
	p.timer = nil // this event just fired; it must not be cancelled later
	r := p.r
	r.inj.Counters.Timeouts++
	if p.attempts >= r.inj.MaxAttempts() {
		delete(r.pending, p.m.Seq)
		r.inj.Counters.GiveUps++
		err := &fault.GiveUpError{Kind: p.m.Kind, Src: p.m.Src, Dst: p.m.Dst, Attempts: p.attempts}
		if p.onGiveUp == nil {
			// Protocol traffic with no recovery slot (coherence,
			// forwarding). At sane fault rates the attempt budget makes
			// this astronomically unlikely; a silent drop would deadlock
			// the event loop, so fail loudly instead.
			panic("network: unrecoverable message loss: " + err.Error())
		}
		p.onGiveUp(err)
		return
	}
	if p.rto < r.inj.RTOMax() {
		p.rto *= 2
		if p.rto > r.inj.RTOMax() {
			p.rto = r.inj.RTOMax()
		}
	}
	r.transmit(p)
	p.timer = r.n.eng.Schedule(p.rto, p.fire)
}
