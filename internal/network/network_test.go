package network

import (
	"testing"
	"testing/quick"

	"compmig/internal/sim"
	"compmig/internal/stats"
)

func TestCrossbarHops(t *testing.T) {
	var c Crossbar
	if c.Hops(3, 3) != 0 {
		t.Error("local hop count not zero")
	}
	if c.Hops(0, 5) != 1 || c.Hops(5, 0) != 1 {
		t.Error("remote hop count not one")
	}
}

func TestMeshHops(t *testing.T) {
	m := NewMesh(4, 4)
	cases := []struct {
		a, b int
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6}, // (0,0) -> (3,3)
		{15, 0, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Degenerate 1×N and N×1 meshes are lines: the hop count must be the
// absolute index distance in both orientations.
func TestMeshHopsDegenerate(t *testing.T) {
	row := NewMesh(7, 1) // 1 row of 7
	col := NewMesh(1, 7) // 1 column of 7
	for a := 0; a < 7; a++ {
		for b := 0; b < 7; b++ {
			want := uint64(a - b)
			if a < b {
				want = uint64(b - a)
			}
			if got := row.Hops(a, b); got != want {
				t.Errorf("mesh7x1 Hops(%d,%d) = %d, want %d", a, b, got, want)
			}
			if got := col.Hops(a, b); got != want {
				t.Errorf("mesh1x7 Hops(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestMeshHopsDegenerateProperty(t *testing.T) {
	for _, m := range []Mesh{NewMesh(13, 1), NewMesh(1, 13)} {
		m := m
		if err := quick.Check(func(a, b uint8) bool {
			x, y := int(a)%13, int(b)%13
			d := x - y
			if d < 0 {
				d = -d
			}
			return m.Hops(x, y) == uint64(d)
		}, nil); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

// A proc id outside [0, W*H) has no mesh position; Hops must panic with
// a clear message instead of computing a wrong distance.
func TestMeshHopsOutOfRangePanics(t *testing.T) {
	m := NewMesh(4, 4)
	for _, c := range []struct{ src, dst int }{
		{-1, 0}, {0, -1}, {16, 0}, {0, 16}, {100, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hops(%d,%d) did not panic", c.src, c.dst)
				}
			}()
			m.Hops(c.src, c.dst)
		}()
	}
}

func TestMeshHopsSymmetric(t *testing.T) {
	m := NewMesh(6, 4)
	if err := quick.Check(func(a, b uint8) bool {
		x, y := int(a)%24, int(b)%24
		return m.Hops(x, y) == m.Hops(y, x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshTriangleInequality(t *testing.T) {
	m := NewMesh(5, 5)
	if err := quick.Check(func(a, b, c uint8) bool {
		x, y, z := int(a)%25, int(b)%25, int(c)%25
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendLatencyAndAccounting(t *testing.T) {
	e := sim.NewEngine(1)
	col := stats.NewCollector()
	n := New(e, Crossbar{}, col, 17, 0)

	var arrivedAt sim.Time
	var got *Message
	n.Send(&Message{Src: 0, Dst: 1, Kind: "test", Payload: []uint32{1, 2, 3}},
		func(m *Message) {
			arrivedAt = e.Now()
			got = m
		})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivedAt != 17 {
		t.Errorf("arrival at %d, want 17", arrivedAt)
	}
	if got == nil || len(got.Payload) != 3 {
		t.Fatal("payload lost in transit")
	}
	if col.WordsSent != HeaderWords+3 {
		t.Errorf("words = %d, want %d", col.WordsSent, HeaderWords+3)
	}
	if col.Messages["test"] != 1 {
		t.Errorf("message count = %v", col.Messages)
	}
	if col.Cycles(stats.CatNetworkTransit) != 17 {
		t.Errorf("transit cycles = %d", col.Cycles(stats.CatNetworkTransit))
	}
}

func TestMeshLatencyScalesWithDistance(t *testing.T) {
	e := sim.NewEngine(1)
	col := stats.NewCollector()
	n := New(e, NewMesh(4, 4), col, 10, 2)

	var near, far sim.Time
	n.Send(&Message{Src: 0, Dst: 1, Kind: "a"}, func(*Message) { near = e.Now() })
	n.Send(&Message{Src: 0, Dst: 15, Kind: "a"}, func(*Message) { far = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if near != 12 { // 10 + 2*1
		t.Errorf("near latency = %d, want 12", near)
	}
	if far != 22 { // 10 + 2*6
		t.Errorf("far latency = %d, want 22", far)
	}
}

func TestMessagesDeliverInOrderPerLatency(t *testing.T) {
	e := sim.NewEngine(1)
	col := stats.NewCollector()
	n := New(e, Crossbar{}, col, 5, 0)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		n.Send(&Message{Src: 0, Dst: 1, Kind: "k"}, func(*Message) { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-latency messages reordered: %v", order)
		}
	}
	if n.Delivered != 4 {
		t.Errorf("delivered = %d", n.Delivered)
	}
}

func TestPerWordWireCycles(t *testing.T) {
	e := sim.NewEngine(1)
	col := stats.NewCollector()
	n := New(e, Crossbar{}, col, 10, 0)
	n.PerWordWireCycles = 1
	var at sim.Time
	n.Send(&Message{Src: 0, Dst: 1, Kind: "k", Payload: make([]uint32, 8)},
		func(*Message) { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10+HeaderWords+8 {
		t.Errorf("arrival = %d, want %d", at, 10+HeaderWords+8)
	}
}
