// Package network models the interconnect of the simulated
// distributed-memory machine: message transit latency and word-level
// bandwidth accounting. Software overheads (stubs, marshaling, handler
// dispatch) are charged by the runtime layers above; the network charges
// only wire time and counts words, which is what the paper's
// bandwidth figures (Figure 3, Tables 2 and 4) measure.
package network

import (
	"fmt"

	"compmig/internal/fault"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// HeaderWords is the per-message header size in 32-bit words: source,
// destination, kind/handler index, and payload length.
const HeaderWords = 2

// Topology computes the hop distance between two processors, and the
// minimum hop distance between two processor groups (the lookahead
// primitive of the sharded engine).
type Topology interface {
	Hops(src, dst int) uint64
	MinHops(groupA, groupB []int) uint64
	Name() string
}

// Crossbar is a constant-latency interconnect: every remote pair is one
// hop. This matches the paper's flat transit cost (17 cycles).
type Crossbar struct{}

// Hops returns 0 for local delivery and 1 otherwise.
func (Crossbar) Hops(src, dst int) uint64 {
	if src == dst {
		return 0
	}
	return 1
}

// MinHops returns the minimum Hops over pairs drawn from the two groups:
// 0 when the groups share a processor, 1 otherwise. Like Mesh.MinHops it
// panics on an empty group, for which no minimum exists.
func (c Crossbar) MinHops(groupA, groupB []int) uint64 {
	if len(groupA) == 0 || len(groupB) == 0 {
		panic("network: crossbar MinHops on an empty group")
	}
	for _, a := range groupA {
		for _, b := range groupB {
			if a == b {
				return 0
			}
		}
	}
	return 1
}

// Name identifies the topology in reports.
func (Crossbar) Name() string { return "crossbar" }

// Mesh is a 2D mesh with dimension-ordered routing distance.
type Mesh struct {
	W, H int
}

// NewMesh returns a W×H mesh topology.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic("network: mesh dimensions must be positive")
	}
	return Mesh{W: w, H: h}
}

// Hops returns the Manhattan distance between the procs' mesh positions.
// Proc ids outside [0, W*H) have no mesh position: computing with one
// would silently return a wrong distance, so Hops panics instead.
func (m Mesh) Hops(src, dst int) uint64 {
	if n := m.W * m.H; src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("network: %s has procs [0,%d), got hop query src=%d dst=%d",
			m.Name(), n, src, dst))
	}
	sx, sy := src%m.W, src/m.W
	dx, dy := dst%m.W, dst/m.W
	abs := func(a int) int {
		if a < 0 {
			return -a
		}
		return a
	}
	return uint64(abs(sx-dx) + abs(sy-dy))
}

// MinHops returns the minimum Manhattan distance over pairs drawn from
// the two groups — the shortest wire any message between the groups can
// take, which is what bounds a shard pair's lookahead. Like Hops it
// panics on proc ids outside [0, W*H), and on an empty group, for which
// no minimum exists.
func (m Mesh) MinHops(groupA, groupB []int) uint64 {
	if len(groupA) == 0 || len(groupB) == 0 {
		panic(fmt.Sprintf("network: %s MinHops on an empty group", m.Name()))
	}
	best := ^uint64(0)
	for _, a := range groupA {
		for _, b := range groupB {
			if h := m.Hops(a, b); h < best {
				best = h
			}
		}
	}
	return best
}

// Name identifies the topology in reports.
func (m Mesh) Name() string { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }

// Lookahead returns the conservative synchronization window for lane
// groups over topo: the minimum wire latency of any cross-group message,
// base + perHop * MinHops minimized over ordered group pairs. With
// fewer than two groups there is no cross-group message and no
// constraint; the result is 0 (unbounded windows).
func Lookahead(topo Topology, groups [][]int, transitBase, transitPerHop uint64) uint64 {
	if len(groups) < 2 {
		return 0
	}
	best := ^uint64(0)
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			l := transitBase + transitPerHop*topo.MinHops(groups[i], groups[j])
			if l < best {
				best = l
			}
		}
	}
	return best
}

// Message is one packet in flight.
type Message struct {
	Src, Dst int
	Kind     string   // accounting label ("rpc", "migrate", "coherence", ...)
	Payload  []uint32 // wire words (header charged separately)

	// ExtraWords models payload words that are charged on the wire but
	// never materialized: protocol messages whose content the receiver
	// ignores (the cache-coherence traffic) set this instead of
	// allocating a Payload slice.
	ExtraWords uint64

	// Seq is the reliability layer's sequence number, stamped when a
	// fault injector is attached; 0 otherwise.
	Seq uint64
}

// Words returns the total wire size of the message including header.
func (m *Message) Words() uint64 { return HeaderWords + uint64(len(m.Payload)) + m.ExtraWords }

// Network delivers messages with a latency function and counts traffic.
type Network struct {
	eng  *sim.Engine
	topo Topology
	col  *stats.Collector

	// TransitBase and TransitPerHop price wire latency in cycles.
	TransitBase   uint64
	TransitPerHop uint64

	// PerWordWireCycles adds serialization delay per payload word (0 by
	// default: the paper folds size effects into marshal/copy costs).
	PerWordWireCycles uint64

	// Delivered counts messages that have arrived.
	Delivered uint64

	// pool recycles delivery adapters so a Send costs no allocation for
	// the in-flight bookkeeping (the simulator processes millions of
	// messages per experiment).
	pool []*delivery

	// rel is the at-most-once reliability layer, attached only when a
	// fault injector is in effect. The fault-free hot path pays one nil
	// check.
	rel *reliability

	// cl and lanes are set by Shard: sends then charge the source lane's
	// collector and route deliveries to the destination's lane engine,
	// crossing lanes through the cluster's deterministic channel.
	cl    *sim.Cluster
	lanes []laneNet
}

// laneNet is one shard lane's slice of the network: its engine, its
// collector, its delivery-adapter pool, and its arrival count. Each is
// touched only while its lane executes.
type laneNet struct {
	eng       *sim.Engine
	col       *stats.Collector
	pool      []*laneDelivery
	delivered uint64
}

// laneDelivery is the per-lane analogue of delivery for same-lane
// flights under sharding.
type laneDelivery struct {
	ln     *laneNet
	m      *Message
	arrive func(*Message)
	fn     func()
}

func (d *laneDelivery) run() {
	ln, m, arrive := d.ln, d.m, d.arrive
	d.m, d.arrive = nil, nil
	ln.pool = append(ln.pool, d)
	ln.delivered++
	arrive(m)
}

// delivery carries one in-flight message from Send to its arrival
// callback. The fn field is the adapter's bound method value, built once
// when the adapter is created and reused for every flight afterwards.
type delivery struct {
	n      *Network
	m      *Message
	arrive func(*Message)
	fn     func()
}

// run fires at arrival time: it returns the adapter to the pool first
// (the saved locals keep the flight's state), so arrive may itself Send
// and reuse this adapter immediately.
func (d *delivery) run() {
	n, m, arrive := d.n, d.m, d.arrive
	d.m, d.arrive = nil, nil
	n.pool = append(n.pool, d)
	n.Delivered++
	if n.eng.Tracing() {
		n.eng.Tracef("deliver", "%s p%d->p%d", m.Kind, m.Src, m.Dst)
	}
	arrive(m)
}

// New returns a network over topology topo, reporting into col.
func New(eng *sim.Engine, topo Topology, col *stats.Collector, transitBase, transitPerHop uint64) *Network {
	return &Network{
		eng: eng, topo: topo, col: col,
		TransitBase: transitBase, TransitPerHop: transitPerHop,
	}
}

// Collector returns the stats sink this network reports into.
func (n *Network) Collector() *stats.Collector { return n.col }

// Shard routes the network over a lane cluster: message and cycle
// accounting go to the sending processor's lane collector (cols, by
// lane index) and deliveries land on the destination's lane engine —
// directly for same-lane pairs, through the cluster's deterministic
// cross-lane channel otherwise. Sharding composes with neither the
// reliability layer nor tracing, whose state is engine-global.
func (n *Network) Shard(cl *sim.Cluster, cols []*stats.Collector) {
	if n.rel != nil {
		panic("network: cannot shard a network with a fault injector attached")
	}
	if len(cols) != cl.Shards() {
		panic(fmt.Sprintf("network: %d lane collectors for %d shards", len(cols), cl.Shards()))
	}
	n.cl = cl
	n.lanes = make([]laneNet, cl.Shards())
	for i := range n.lanes {
		n.lanes[i] = laneNet{eng: cl.Lane(i), col: cols[i]}
	}
}

// DeliveredTotal returns arrived-message counts summed across lanes (or
// the serial Delivered count when the network is not sharded).
func (n *Network) DeliveredTotal() uint64 {
	total := n.Delivered
	for i := range n.lanes {
		total += n.lanes[i].delivered
	}
	return total
}

// sendSharded is the SendAfter body under Shard.
func (n *Network) sendSharded(m *Message, recvDelay uint64, arrive func(*Message)) {
	if profile.Enabled() {
		defer profile.NetSends.Time(1)()
	}
	srcLane := n.cl.LaneOf(m.Src)
	src := &n.lanes[srcLane]
	words := m.Words()
	src.col.CountMessage(m.Kind, words)
	lat := n.Latency(m.Src, m.Dst, words)
	src.col.AddCycles(stats.CatNetworkTransit, lat)
	dstLane := n.cl.LaneOf(m.Dst)
	if dstLane == srcLane {
		var d *laneDelivery
		if k := len(src.pool); k > 0 {
			d = src.pool[k-1]
			src.pool[k-1] = nil
			src.pool = src.pool[:k-1]
		} else {
			d = &laneDelivery{ln: src}
			d.fn = d.run
		}
		d.m, d.arrive = m, arrive
		src.eng.ScheduleOn(lat+recvDelay, m.Dst, d.fn)
		return
	}
	dst := &n.lanes[dstLane]
	n.cl.CrossSend(src.eng, lat+recvDelay, m.Dst, func() {
		dst.delivered++
		arrive(m)
	})
}

// Latency returns the wire latency for a message of size words from src
// to dst.
func (n *Network) Latency(src, dst int, words uint64) uint64 {
	return n.TransitBase + n.TransitPerHop*n.topo.Hops(src, dst) + n.PerWordWireCycles*words
}

// Send injects m and invokes arrive at the destination after transit
// latency. Word and message accounting happens at injection; transit
// cycles are charged to the network-transit category.
func (n *Network) Send(m *Message, arrive func(*Message)) {
	n.SendAfter(m, 0, arrive)
}

// SendAfter is Send with an additional fixed delay charged at the
// receiving end (e.g. controller handling time) before arrive runs.
// Folding the delay into the delivery event instead of scheduling a
// second hop at arrival halves the event-heap traffic of protocol-heavy
// workloads.
func (n *Network) SendAfter(m *Message, recvDelay uint64, arrive func(*Message)) {
	if n.rel != nil {
		n.rel.send(m, recvDelay, arrive, nil)
		return
	}
	if n.cl != nil {
		n.sendSharded(m, recvDelay, arrive)
		return
	}
	if profile.Enabled() {
		defer profile.NetSends.Time(1)()
	}
	words := m.Words()
	n.col.CountMessage(m.Kind, words)
	lat := n.Latency(m.Src, m.Dst, words)
	n.col.AddCycles(stats.CatNetworkTransit, lat)
	if n.eng.Tracing() {
		n.eng.Tracef("send", "%s p%d->p%d %dw", m.Kind, m.Src, m.Dst, words)
	}
	var d *delivery
	if k := len(n.pool); k > 0 {
		d = n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
	} else {
		d = &delivery{n: n}
		d.fn = d.run
	}
	d.m, d.arrive = m, arrive
	n.eng.Schedule(lat+recvDelay, d.fn)
}

// SendGuarded is Send for callers that can recover from message loss:
// when a fault injector is attached and the reliability layer exhausts
// its retransmission budget, onGiveUp receives the typed error instead
// of the network panicking. Without an injector it is exactly Send.
func (n *Network) SendGuarded(m *Message, arrive func(*Message), onGiveUp func(*fault.GiveUpError)) {
	if n.rel != nil {
		n.rel.send(m, 0, arrive, onGiveUp)
		return
	}
	n.SendAfter(m, 0, arrive)
}

// AttachFaults places the network under a fault plan: every message now
// travels through the at-most-once reliability layer (sequence framing,
// acks, retransmission) and the injector decides each transmission's
// fate. Callers gate on Spec.Enabled() — attaching an injector changes
// wire charges (framing and acks), so the fault-free byte-identity
// contract is "no injector attached".
func (n *Network) AttachFaults(inj *fault.Injector) {
	if inj == nil {
		panic("network: AttachFaults(nil)")
	}
	n.rel = newReliability(n, inj)
}

// FaultInjector returns the attached injector, or nil on a fault-free
// network.
func (n *Network) FaultInjector() *fault.Injector {
	if n.rel == nil {
		return nil
	}
	return n.rel.inj
}
