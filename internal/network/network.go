// Package network models the interconnect of the simulated
// distributed-memory machine: message transit latency and word-level
// bandwidth accounting. Software overheads (stubs, marshaling, handler
// dispatch) are charged by the runtime layers above; the network charges
// only wire time and counts words, which is what the paper's
// bandwidth figures (Figure 3, Tables 2 and 4) measure.
package network

import (
	"fmt"

	"compmig/internal/fault"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// HeaderWords is the per-message header size in 32-bit words: source,
// destination, kind/handler index, and payload length.
const HeaderWords = 2

// Topology computes the hop distance between two processors.
type Topology interface {
	Hops(src, dst int) uint64
	Name() string
}

// Crossbar is a constant-latency interconnect: every remote pair is one
// hop. This matches the paper's flat transit cost (17 cycles).
type Crossbar struct{}

// Hops returns 0 for local delivery and 1 otherwise.
func (Crossbar) Hops(src, dst int) uint64 {
	if src == dst {
		return 0
	}
	return 1
}

// Name identifies the topology in reports.
func (Crossbar) Name() string { return "crossbar" }

// Mesh is a 2D mesh with dimension-ordered routing distance.
type Mesh struct {
	W, H int
}

// NewMesh returns a W×H mesh topology.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic("network: mesh dimensions must be positive")
	}
	return Mesh{W: w, H: h}
}

// Hops returns the Manhattan distance between the procs' mesh positions.
// Proc ids outside [0, W*H) have no mesh position: computing with one
// would silently return a wrong distance, so Hops panics instead.
func (m Mesh) Hops(src, dst int) uint64 {
	if n := m.W * m.H; src < 0 || src >= n || dst < 0 || dst >= n {
		panic(fmt.Sprintf("network: %s has procs [0,%d), got hop query src=%d dst=%d",
			m.Name(), n, src, dst))
	}
	sx, sy := src%m.W, src/m.W
	dx, dy := dst%m.W, dst/m.W
	abs := func(a int) int {
		if a < 0 {
			return -a
		}
		return a
	}
	return uint64(abs(sx-dx) + abs(sy-dy))
}

// Name identifies the topology in reports.
func (m Mesh) Name() string { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }

// Message is one packet in flight.
type Message struct {
	Src, Dst int
	Kind     string   // accounting label ("rpc", "migrate", "coherence", ...)
	Payload  []uint32 // wire words (header charged separately)

	// ExtraWords models payload words that are charged on the wire but
	// never materialized: protocol messages whose content the receiver
	// ignores (the cache-coherence traffic) set this instead of
	// allocating a Payload slice.
	ExtraWords uint64

	// Seq is the reliability layer's sequence number, stamped when a
	// fault injector is attached; 0 otherwise.
	Seq uint64
}

// Words returns the total wire size of the message including header.
func (m *Message) Words() uint64 { return HeaderWords + uint64(len(m.Payload)) + m.ExtraWords }

// Network delivers messages with a latency function and counts traffic.
type Network struct {
	eng  *sim.Engine
	topo Topology
	col  *stats.Collector

	// TransitBase and TransitPerHop price wire latency in cycles.
	TransitBase   uint64
	TransitPerHop uint64

	// PerWordWireCycles adds serialization delay per payload word (0 by
	// default: the paper folds size effects into marshal/copy costs).
	PerWordWireCycles uint64

	// Delivered counts messages that have arrived.
	Delivered uint64

	// pool recycles delivery adapters so a Send costs no allocation for
	// the in-flight bookkeeping (the simulator processes millions of
	// messages per experiment).
	pool []*delivery

	// rel is the at-most-once reliability layer, attached only when a
	// fault injector is in effect. The fault-free hot path pays one nil
	// check.
	rel *reliability
}

// delivery carries one in-flight message from Send to its arrival
// callback. The fn field is the adapter's bound method value, built once
// when the adapter is created and reused for every flight afterwards.
type delivery struct {
	n      *Network
	m      *Message
	arrive func(*Message)
	fn     func()
}

// run fires at arrival time: it returns the adapter to the pool first
// (the saved locals keep the flight's state), so arrive may itself Send
// and reuse this adapter immediately.
func (d *delivery) run() {
	n, m, arrive := d.n, d.m, d.arrive
	d.m, d.arrive = nil, nil
	n.pool = append(n.pool, d)
	n.Delivered++
	if n.eng.Tracing() {
		n.eng.Tracef("deliver", "%s p%d->p%d", m.Kind, m.Src, m.Dst)
	}
	arrive(m)
}

// New returns a network over topology topo, reporting into col.
func New(eng *sim.Engine, topo Topology, col *stats.Collector, transitBase, transitPerHop uint64) *Network {
	return &Network{
		eng: eng, topo: topo, col: col,
		TransitBase: transitBase, TransitPerHop: transitPerHop,
	}
}

// Collector returns the stats sink this network reports into.
func (n *Network) Collector() *stats.Collector { return n.col }

// Latency returns the wire latency for a message of size words from src
// to dst.
func (n *Network) Latency(src, dst int, words uint64) uint64 {
	return n.TransitBase + n.TransitPerHop*n.topo.Hops(src, dst) + n.PerWordWireCycles*words
}

// Send injects m and invokes arrive at the destination after transit
// latency. Word and message accounting happens at injection; transit
// cycles are charged to the network-transit category.
func (n *Network) Send(m *Message, arrive func(*Message)) {
	n.SendAfter(m, 0, arrive)
}

// SendAfter is Send with an additional fixed delay charged at the
// receiving end (e.g. controller handling time) before arrive runs.
// Folding the delay into the delivery event instead of scheduling a
// second hop at arrival halves the event-heap traffic of protocol-heavy
// workloads.
func (n *Network) SendAfter(m *Message, recvDelay uint64, arrive func(*Message)) {
	if n.rel != nil {
		n.rel.send(m, recvDelay, arrive, nil)
		return
	}
	if profile.Enabled() {
		defer profile.NetSends.Time(1)()
	}
	words := m.Words()
	n.col.CountMessage(m.Kind, words)
	lat := n.Latency(m.Src, m.Dst, words)
	n.col.AddCycles(stats.CatNetworkTransit, lat)
	if n.eng.Tracing() {
		n.eng.Tracef("send", "%s p%d->p%d %dw", m.Kind, m.Src, m.Dst, words)
	}
	var d *delivery
	if k := len(n.pool); k > 0 {
		d = n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
	} else {
		d = &delivery{n: n}
		d.fn = d.run
	}
	d.m, d.arrive = m, arrive
	n.eng.Schedule(lat+recvDelay, d.fn)
}

// SendGuarded is Send for callers that can recover from message loss:
// when a fault injector is attached and the reliability layer exhausts
// its retransmission budget, onGiveUp receives the typed error instead
// of the network panicking. Without an injector it is exactly Send.
func (n *Network) SendGuarded(m *Message, arrive func(*Message), onGiveUp func(*fault.GiveUpError)) {
	if n.rel != nil {
		n.rel.send(m, 0, arrive, onGiveUp)
		return
	}
	n.SendAfter(m, 0, arrive)
}

// AttachFaults places the network under a fault plan: every message now
// travels through the at-most-once reliability layer (sequence framing,
// acks, retransmission) and the injector decides each transmission's
// fate. Callers gate on Spec.Enabled() — attaching an injector changes
// wire charges (framing and acks), so the fault-free byte-identity
// contract is "no injector attached".
func (n *Network) AttachFaults(inj *fault.Injector) {
	if inj == nil {
		panic("network: AttachFaults(nil)")
	}
	n.rel = newReliability(n, inj)
}

// FaultInjector returns the attached injector, or nil on a fault-free
// network.
func (n *Network) FaultInjector() *fault.Injector {
	if n.rel == nil {
		return nil
	}
	return n.rel.inj
}
