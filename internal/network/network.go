// Package network models the interconnect of the simulated
// distributed-memory machine: message transit latency and word-level
// bandwidth accounting. Software overheads (stubs, marshaling, handler
// dispatch) are charged by the runtime layers above; the network charges
// only wire time and counts words, which is what the paper's
// bandwidth figures (Figure 3, Tables 2 and 4) measure.
package network

import (
	"fmt"
	"time"

	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// HeaderWords is the per-message header size in 32-bit words: source,
// destination, kind/handler index, and payload length.
const HeaderWords = 2

// Topology computes the hop distance between two processors.
type Topology interface {
	Hops(src, dst int) uint64
	Name() string
}

// Crossbar is a constant-latency interconnect: every remote pair is one
// hop. This matches the paper's flat transit cost (17 cycles).
type Crossbar struct{}

// Hops returns 0 for local delivery and 1 otherwise.
func (Crossbar) Hops(src, dst int) uint64 {
	if src == dst {
		return 0
	}
	return 1
}

// Name identifies the topology in reports.
func (Crossbar) Name() string { return "crossbar" }

// Mesh is a 2D mesh with dimension-ordered routing distance.
type Mesh struct {
	W, H int
}

// NewMesh returns a W×H mesh topology.
func NewMesh(w, h int) Mesh {
	if w <= 0 || h <= 0 {
		panic("network: mesh dimensions must be positive")
	}
	return Mesh{W: w, H: h}
}

// Hops returns the Manhattan distance between the procs' mesh positions.
func (m Mesh) Hops(src, dst int) uint64 {
	sx, sy := src%m.W, src/m.W
	dx, dy := dst%m.W, dst/m.W
	abs := func(a int) int {
		if a < 0 {
			return -a
		}
		return a
	}
	return uint64(abs(sx-dx) + abs(sy-dy))
}

// Name identifies the topology in reports.
func (m Mesh) Name() string { return fmt.Sprintf("mesh%dx%d", m.W, m.H) }

// Message is one packet in flight.
type Message struct {
	Src, Dst int
	Kind     string   // accounting label ("rpc", "migrate", "coherence", ...)
	Payload  []uint32 // wire words (header charged separately)

	// ExtraWords models payload words that are charged on the wire but
	// never materialized: protocol messages whose content the receiver
	// ignores (the cache-coherence traffic) set this instead of
	// allocating a Payload slice.
	ExtraWords uint64
}

// Words returns the total wire size of the message including header.
func (m *Message) Words() uint64 { return HeaderWords + uint64(len(m.Payload)) + m.ExtraWords }

// Network delivers messages with a latency function and counts traffic.
type Network struct {
	eng  *sim.Engine
	topo Topology
	col  *stats.Collector

	// TransitBase and TransitPerHop price wire latency in cycles.
	TransitBase   uint64
	TransitPerHop uint64

	// PerWordWireCycles adds serialization delay per payload word (0 by
	// default: the paper folds size effects into marshal/copy costs).
	PerWordWireCycles uint64

	// Delivered counts messages that have arrived.
	Delivered uint64

	// pool recycles delivery adapters so a Send costs no allocation for
	// the in-flight bookkeeping (the simulator processes millions of
	// messages per experiment).
	pool []*delivery
}

// delivery carries one in-flight message from Send to its arrival
// callback. The fn field is the adapter's bound method value, built once
// when the adapter is created and reused for every flight afterwards.
type delivery struct {
	n      *Network
	m      *Message
	arrive func(*Message)
	fn     func()
}

// run fires at arrival time: it returns the adapter to the pool first
// (the saved locals keep the flight's state), so arrive may itself Send
// and reuse this adapter immediately.
func (d *delivery) run() {
	n, m, arrive := d.n, d.m, d.arrive
	d.m, d.arrive = nil, nil
	n.pool = append(n.pool, d)
	n.Delivered++
	if n.eng.Tracing() {
		n.eng.Tracef("deliver", "%s p%d->p%d", m.Kind, m.Src, m.Dst)
	}
	arrive(m)
}

// New returns a network over topology topo, reporting into col.
func New(eng *sim.Engine, topo Topology, col *stats.Collector, transitBase, transitPerHop uint64) *Network {
	return &Network{
		eng: eng, topo: topo, col: col,
		TransitBase: transitBase, TransitPerHop: transitPerHop,
	}
}

// Collector returns the stats sink this network reports into.
func (n *Network) Collector() *stats.Collector { return n.col }

// Latency returns the wire latency for a message of size words from src
// to dst.
func (n *Network) Latency(src, dst int, words uint64) uint64 {
	return n.TransitBase + n.TransitPerHop*n.topo.Hops(src, dst) + n.PerWordWireCycles*words
}

// Send injects m and invokes arrive at the destination after transit
// latency. Word and message accounting happens at injection; transit
// cycles are charged to the network-transit category.
func (n *Network) Send(m *Message, arrive func(*Message)) {
	n.SendAfter(m, 0, arrive)
}

// SendAfter is Send with an additional fixed delay charged at the
// receiving end (e.g. controller handling time) before arrive runs.
// Folding the delay into the delivery event instead of scheduling a
// second hop at arrival halves the event-heap traffic of protocol-heavy
// workloads.
func (n *Network) SendAfter(m *Message, recvDelay uint64, arrive func(*Message)) {
	if profile.Enabled() {
		start := time.Now()
		defer func() { profile.NetSends.AddTimed(1, time.Since(start)) }()
	}
	words := m.Words()
	n.col.CountMessage(m.Kind, words)
	lat := n.Latency(m.Src, m.Dst, words)
	n.col.AddCycles(stats.CatNetworkTransit, lat)
	if n.eng.Tracing() {
		n.eng.Tracef("send", "%s p%d->p%d %dw", m.Kind, m.Src, m.Dst, words)
	}
	var d *delivery
	if k := len(n.pool); k > 0 {
		d = n.pool[k-1]
		n.pool[k-1] = nil
		n.pool = n.pool[:k-1]
	} else {
		d = &delivery{n: n}
		d.fn = d.run
	}
	d.m, d.arrive = m, arrive
	n.eng.Schedule(lat+recvDelay, d.fn)
}
