package network

import (
	"strings"
	"testing"

	"compmig/internal/fault"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// faultyNet builds a network with an injector attached for the given
// plan (script-only plans pass a zero Spec).
func faultyNet(t *testing.T, spec *fault.Spec) (*sim.Engine, *Network, *fault.Injector) {
	t.Helper()
	e := sim.NewEngine(1)
	col := stats.NewCollector()
	n := New(e, Crossbar{}, col, 17, 0)
	inj := fault.NewInjector(spec)
	n.AttachFaults(inj)
	return e, n, inj
}

// A scripted drop of the first transmission must be recovered by a
// retransmission, and the message must arrive exactly once.
func TestReliableRetransmitsDroppedMessage(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{RTO: 100})
	inj.ScriptDrop("req", 1)

	arrivals := 0
	var at sim.Time
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req", Payload: []uint32{7}},
		func(m *Message) {
			arrivals++
			at = e.Now()
			if len(m.Payload) != 1 || m.Payload[0] != 7 {
				t.Errorf("payload corrupted in retransmission: %v", m.Payload)
			}
		})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d, want exactly 1", arrivals)
	}
	if at != 100+17 { // timer at RTO, retransmit flies one transit
		t.Errorf("arrival at %d, want %d", at, 100+17)
	}
	c := inj.Counters
	if c.Dropped != 1 || c.Retransmits != 1 || c.Timeouts != 1 {
		t.Errorf("counters = %+v", c)
	}
}

// A scripted duplication must be suppressed at the receiver: arrive
// runs once, and the duplicate is counted.
func TestReliableSuppressesDuplicate(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{RTO: 1000})
	inj.ScriptDup("req", 1)

	arrivals := 0
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req"}, func(*Message) { arrivals++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d, want exactly 1", arrivals)
	}
	c := inj.Counters
	if c.Duplicated == 0 || c.DupSuppressed == 0 {
		t.Errorf("counters = %+v", c)
	}
	if c.Retransmits != 0 {
		t.Errorf("duplicate caused %d retransmits, want 0", c.Retransmits)
	}
}

// A lost ack must trigger a retransmission whose delivery is then
// suppressed as a duplicate — the arrive callback still runs once.
func TestReliableAckLossRetransmitThenDedup(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{RTO: 100})
	inj.ScriptDrop("ack", 1)

	arrivals := 0
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req"}, func(*Message) { arrivals++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d, want exactly 1", arrivals)
	}
	c := inj.Counters
	if c.AckDropped != 1 || c.Retransmits != 1 || c.DupSuppressed != 1 {
		t.Errorf("counters = %+v", c)
	}
}

// Deliveries into a crash window are lost; the sender's backoff carries
// the retransmissions past the window and the message lands after the
// processor restarts — exactly once.
func TestReliableRecoversAcrossCrashWindow(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{
		Windows: []fault.Window{{Proc: 1, Start: 0, Dur: 500}},
		RTO:     100, RTOMax: 400,
	})
	arrivals := 0
	var at sim.Time
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req"}, func(*Message) { arrivals++; at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if arrivals != 1 {
		t.Fatalf("arrivals = %d, want exactly 1", arrivals)
	}
	if at < 500 {
		t.Errorf("delivered at %d, inside the crash window [0,500)", at)
	}
	if inj.Counters.CrashDropped == 0 || inj.Counters.Retransmits == 0 {
		t.Errorf("counters = %+v", inj.Counters)
	}
}

// A pause window holds deliveries and releases them at its end instead
// of dropping them.
func TestReliablePauseWindowDelaysDelivery(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{
		Windows: []fault.Window{{Proc: 1, Start: 0, Dur: 300, Pause: true}},
	})
	var at sim.Time
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req"}, func(*Message) { at = e.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 300 {
		t.Errorf("delivered at %d, want released at window end 300", at)
	}
	if inj.Counters.PauseDelayed == 0 {
		t.Errorf("counters = %+v", inj.Counters)
	}
	if inj.Counters.CrashDropped != 0 {
		t.Errorf("pause window dropped a delivery: %+v", inj.Counters)
	}
}

// Under 100% drop the sender must give up after its bounded attempt
// budget with a typed error — and the event loop must drain, not hang.
func TestReliableGiveUpBounded(t *testing.T) {
	e, n, inj := faultyNet(t, &fault.Spec{Drop: 1, RTO: 50, RTOMax: 100, MaxAttempts: 3})
	var got *fault.GiveUpError
	n.SendGuarded(&Message{Src: 0, Dst: 1, Kind: "req"},
		func(*Message) { t.Error("message arrived despite 100% drop") },
		func(err *fault.GiveUpError) { got = err })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no give-up error delivered")
	}
	if got.Kind != "req" || got.Attempts != 3 {
		t.Errorf("give-up error = %+v", got)
	}
	if inj.Counters.GiveUps != 1 || inj.Counters.Dropped != 3 {
		t.Errorf("counters = %+v", inj.Counters)
	}
}

// A give-up with no recovery callback must fail loudly — a silent drop
// would deadlock the simulation.
func TestReliableGiveUpWithoutGuardPanics(t *testing.T) {
	e, n, _ := faultyNet(t, &fault.Spec{Drop: 1, RTO: 50, MaxAttempts: 2})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("unguarded give-up did not panic")
		}
		if !strings.Contains(r.(string), "unrecoverable") {
			t.Errorf("panic message %q lacks context", r)
		}
	}()
	n.Send(&Message{Src: 0, Dst: 1, Kind: "coherence"}, func(*Message) {})
	_ = e.Run()
}

// The reliability framing charges its sequence/ack words on the wire:
// a framed message costs more than an unframed one, and acks show up in
// the per-kind message counts.
func TestReliableFramingIsCharged(t *testing.T) {
	e, n, _ := faultyNet(t, &fault.Spec{DelayMax: 1})
	n.Send(&Message{Src: 0, Dst: 1, Kind: "req", Payload: []uint32{1}}, func(*Message) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	col := n.Collector()
	wantReq := uint64(HeaderWords + 1 + frameWords)
	wantAck := uint64(HeaderWords + ackWireWords)
	if col.WordsSent != wantReq+wantAck {
		t.Errorf("words sent = %d, want %d message + %d ack", col.WordsSent, wantReq, wantAck)
	}
	if col.Messages["ack"] != 1 || col.Messages["req"] != 1 {
		t.Errorf("message counts = %v", col.Messages)
	}
}

// Same plan, same seed, twice: identical counter trajectories. The
// injector draws only from its own stream.
func TestReliableDeterministic(t *testing.T) {
	run := func() fault.Counters {
		e, n, inj := faultyNet(t, &fault.Spec{Drop: 0.2, Dup: 0.1, DelayMax: 30, Seed: 9, RTO: 200})
		for i := 0; i < 200; i++ {
			n.Send(&Message{Src: i % 4, Dst: (i + 1) % 4, Kind: "req"}, func(*Message) {})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return inj.Counters
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Dropped == 0 || a.Retransmits == 0 {
		t.Errorf("plan injected nothing: %+v", a)
	}
}
