package countnet

import (
	"testing"
	"testing/quick"
)

func TestBitonic8Shape(t *testing.T) {
	stages := Bitonic(8).Stages
	if len(stages) != 6 {
		t.Fatalf("Bitonic[8] depth = %d, want 6 (the paper's six-stage pipeline)", len(stages))
	}
	total := 0
	for si, st := range stages {
		if len(st) != 4 {
			t.Errorf("stage %d has %d balancers, want 4", si, len(st))
		}
		total += len(st)
		// Each stage must touch every wire exactly once.
		seen := make([]int, 8)
		for _, b := range st {
			if b.A == b.B {
				t.Errorf("degenerate balancer %+v", b)
			}
			seen[b.A]++
			seen[b.B]++
		}
		for w, c := range seen {
			if c != 1 {
				t.Errorf("stage %d touches wire %d %d times", si, w, c)
			}
		}
	}
	if total != 24 {
		t.Fatalf("Bitonic[8] has %d balancers, want 24", total)
	}
}

func TestBitonicWidths(t *testing.T) {
	// Depth of Bitonic[2^k] is k(k+1)/2; balancers per stage = w/2.
	for _, w := range []int{2, 4, 8, 16, 32} {
		k := 0
		for 1<<k < w {
			k++
		}
		stages := Bitonic(w).Stages
		if len(stages) != k*(k+1)/2 {
			t.Errorf("Bitonic[%d] depth = %d, want %d", w, len(stages), k*(k+1)/2)
		}
		for si, st := range stages {
			if len(st) != w/2 {
				t.Errorf("Bitonic[%d] stage %d width = %d, want %d", w, si, len(st), w/2)
			}
		}
	}
}

func TestBitonicRejectsBadWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 6, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", w)
				}
			}()
			Bitonic(w)
		}()
	}
}

// TestStepProperty drives the sequential oracle with tokens on arbitrary
// input wires and checks the counting-network step property: output wire
// exit counts are a "staircase" — wire i gets ceil((m-i)/w) tokens.
func TestStepProperty(t *testing.T) {
	if err := quick.Check(func(seedWires []uint8) bool {
		s := newSequential(8)
		for _, sw := range seedWires {
			s.traverse(int(sw) % 8)
		}
		m := len(seedWires)
		for i, c := range s.counts {
			want := (m - i + 7) / 8
			if want < 0 {
				want = 0
			}
			if c != want {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSequentialValuesGapFree checks that m traversals draw exactly the
// values 0..m-1, each once — the defining property of shared counting.
func TestSequentialValuesGapFree(t *testing.T) {
	s := newSequential(8)
	const m = 100
	seen := make([]bool, m)
	for i := 0; i < m; i++ {
		_, v := s.traverse(i % 5) // lopsided input distribution
		if v < 0 || v >= m || seen[v] {
			t.Fatalf("token %d drew value %d (dup or out of range)", i, v)
		}
		seen[v] = true
	}
}

func TestStepPropertyWidth16(t *testing.T) {
	s := newSequential(16)
	for i := 0; i < 777; i++ {
		s.traverse(i % 3)
	}
	for i, c := range s.counts {
		want := (777 - i + 15) / 16
		if c != want {
			t.Fatalf("wire %d count = %d, want %d", i, c, want)
		}
	}
}
