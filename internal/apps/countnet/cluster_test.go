package countnet

import (
	"reflect"
	"testing"

	"compmig/internal/core"
)

// TestClusterShardCountIdentity is the sharded engine's core contract:
// the same configuration produces identical results at every shard
// count, for both parallel-eligible schemes.
func TestClusterShardCountIdentity(t *testing.T) {
	for _, scheme := range []core.Scheme{{Mechanism: core.Migrate}, {Mechanism: core.RPC}} {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			var base Result
			for i, shards := range []int{1, 2, 4, 8} {
				cfg := Config{
					Threads: 16, Scheme: scheme, Seed: 7,
					Warmup: 5000, Measure: 30000, Shards: shards,
				}
				res := RunExperiment(cfg)
				if res.Ops == 0 {
					t.Fatalf("shards=%d completed no operations", shards)
				}
				if i == 0 {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Errorf("shards=%d diverged from shards=1:\n  1: %+v\n  %d: %+v",
						shards, base, shards, res)
				}
			}
		})
	}
}

// TestClusterMeshIdentity covers the mesh topology, whose per-hop
// latencies give each lane pair a different lookahead contribution.
func TestClusterMeshIdentity(t *testing.T) {
	var base Result
	for i, shards := range []int{1, 3, 8} {
		cfg := Config{
			Threads: 16, Scheme: core.Scheme{Mechanism: core.Migrate}, Seed: 11,
			Warmup: 5000, Measure: 30000, Mesh: true, Shards: shards,
		}
		res := RunExperiment(cfg)
		if res.Ops == 0 {
			t.Fatalf("shards=%d completed no operations", shards)
		}
		if i == 0 {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Errorf("mesh shards=%d diverged from shards=1:\n  1: %+v\n  %d: %+v",
				shards, base, shards, res)
		}
	}
}

// TestClusterIneligibleFallsBackToSerial pins the fallback rule: a
// configuration the sharded engine does not support ignores Shards and
// reproduces the serial engine's output exactly.
func TestClusterIneligibleFallsBackToSerial(t *testing.T) {
	cfg := Config{
		Threads: 8, Scheme: core.Scheme{Mechanism: core.SharedMem}, Seed: 3,
		Warmup: 5000, Measure: 20000,
	}
	serial := RunExperiment(cfg)
	cfg.Shards = 4
	sharded := RunExperiment(cfg)
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("SM run with Shards=4 did not fall back to the serial engine:\n  serial:  %+v\n  sharded: %+v",
			serial, sharded)
	}
}
