package countnet

import (
	"bytes"
	"strings"
	"testing"

	"compmig/internal/core"
	"compmig/internal/fault"
	"compmig/internal/profile"
)

// TestShardFallbackNotice pins the loud-fallback contract: a run that
// requests the sharded engine but is not eligible for it bumps the
// profile counter and emits a one-line notice naming the disqualifying
// feature; an eligible run emits nothing.
func TestShardFallbackNotice(t *testing.T) {
	var buf bytes.Buffer
	old := FallbackNotice
	FallbackNotice = &buf
	defer func() { FallbackNotice = old }()

	cfg := Config{
		Threads: 8, Scheme: core.Scheme{Mechanism: core.SharedMem},
		Seed: 1, Warmup: 1000, Measure: 5000, Shards: 4,
	}
	before := profile.ShardFallbacks.Count.Load()
	if res := RunExperiment(cfg); res.Ops == 0 {
		t.Fatal("fallback run did nothing")
	}
	if got := profile.ShardFallbacks.Count.Load() - before; got != 1 {
		t.Errorf("fallback counter advanced by %d, want 1", got)
	}
	notice := buf.String()
	if !strings.Contains(notice, "shards=4 ignored") || !strings.Contains(notice, "SM") {
		t.Errorf("notice %q does not name the shard count and the disqualifying scheme", notice)
	}
	if strings.Count(notice, "\n") != 1 {
		t.Errorf("notice is not one line: %q", notice)
	}

	// An eligible configuration runs clustered: no notice, no counter.
	buf.Reset()
	before = profile.ShardFallbacks.Count.Load()
	cfg.Scheme = core.Scheme{Mechanism: core.Migrate}
	RunExperiment(cfg)
	if buf.Len() != 0 {
		t.Errorf("eligible run emitted a notice: %q", buf.String())
	}
	if got := profile.ShardFallbacks.Count.Load() - before; got != 0 {
		t.Errorf("eligible run advanced the fallback counter by %d", got)
	}
}

// TestIneligibleReasonNamesFeature checks each disqualifying feature is
// named by the reason string.
func TestIneligibleReasonNamesFeature(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{Scheme: core.Scheme{Mechanism: core.SharedMem}}, "SM"},
		{Config{Scheme: core.Scheme{Mechanism: core.ObjMigrate}}, "OM"},
		{Config{Scheme: core.Scheme{Mechanism: core.Migrate, Replication: true}}, "replication"},
		{Config{Scheme: core.Scheme{Mechanism: core.RPC}, Policy: "costmodel"}, "policy"},
		{Config{Scheme: core.Scheme{Mechanism: core.RPC}, Faults: &fault.Spec{Drop: 0.1}}, "fault"},
		{Config{Scheme: core.Scheme{Mechanism: core.RPC}, TraceCap: 10}, "trac"},
	}
	for _, c := range cases {
		if c.cfg.parallelEligible() {
			t.Errorf("config %+v unexpectedly eligible", c.cfg)
			continue
		}
		if got := c.cfg.ineligibleReason(); !strings.Contains(got, c.want) {
			t.Errorf("ineligibleReason(%+v) = %q, want it to mention %q", c.cfg, got, c.want)
		}
	}
}
