package countnet

import (
	"testing"

	"compmig/internal/core"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

type testEnv struct {
	eng *sim.Engine
	col *stats.Collector
	rt  *core.Runtime
	shm *mem.System
	net *Network
}

func buildEnv(t *testing.T, scheme core.Scheme, threads int) *testEnv {
	t.Helper()
	eng := sim.NewEngine(5)
	model := scheme.Model()
	mach := sim.NewMachine(eng, 24+threads)
	col := stats.NewCollector()
	nw := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, nw, col, model)
	var shm *mem.System
	if scheme.Mechanism == core.SharedMem {
		shm = mem.New(eng, mach, nw, col, mem.DefaultParams())
	}
	return &testEnv{eng: eng, col: col, rt: rt, shm: shm, net: Build(rt, shm, scheme, 8)}
}

// checkGapFree drives tokens from several threads and verifies the drawn
// values are exactly 0..m-1 at quiescence — for every mechanism.
func checkGapFree(t *testing.T, scheme core.Scheme) {
	t.Helper()
	const threads, perThread = 6, 20
	env := buildEnv(t, scheme, threads)
	var values []uint64
	for i := 0; i < threads; i++ {
		i := i
		env.eng.Spawn("req", sim.Time(i*13), func(th *sim.Thread) {
			task := env.rt.NewTask(th, 24+i)
			for k := 0; k < perThread; k++ {
				values = append(values, env.net.Traverse(task, (i+k)%8))
			}
		})
	}
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	m := threads * perThread
	if len(values) != m {
		t.Fatalf("%d values drawn, want %d", len(values), m)
	}
	seen := make([]bool, m)
	for _, v := range values {
		if v >= uint64(m) || seen[v] {
			t.Fatalf("scheme %s: value %d duplicated or out of range", scheme.Name(), v)
		}
		seen[v] = true
	}
}

func TestGapFreeRPC(t *testing.T)     { checkGapFree(t, core.Scheme{Mechanism: core.RPC}) }
func TestGapFreeMigrate(t *testing.T) { checkGapFree(t, core.Scheme{Mechanism: core.Migrate}) }
func TestGapFreeSharedMem(t *testing.T) {
	checkGapFree(t, core.Scheme{Mechanism: core.SharedMem})
}
func TestGapFreeMigrateHW(t *testing.T) {
	checkGapFree(t, core.Scheme{Mechanism: core.Migrate, HWMessaging: true})
}

// TestMessageCountsPerTraversal checks the §2.5 message model against the
// real network: RPC pays 2 messages per balancer access plus 2 for the
// counter; migration pays at most one per hop plus one return.
func TestMessageCountsPerTraversal(t *testing.T) {
	one := func(scheme core.Scheme) (msgs uint64) {
		env := buildEnv(t, scheme, 1)
		env.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := env.rt.NewTask(th, 24)
			env.net.Traverse(task, 0)
		})
		if err := env.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return env.col.TotalMessages()
	}
	rpc := one(core.Scheme{Mechanism: core.RPC})
	cm := one(core.Scheme{Mechanism: core.Migrate})
	if rpc != 4*(6+1) {
		t.Errorf("RPC messages = %d, want 28 (two per access, two accesses per object)", rpc)
	}
	// CM: one migrate per stage (6, all balancers on distinct procs; the
	// counter shares the final balancer's proc) + one short-circuit reply.
	if cm != 7 {
		t.Errorf("CM messages = %d, want 7", cm)
	}
}

func TestBalancersAreVisited(t *testing.T) {
	env := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, 2)
	const tokens = 16
	env.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := env.rt.NewTask(th, 24)
		for k := 0; k < tokens; k++ {
			env.net.Traverse(task, 0)
		}
	})
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Stage-0 balancer on wire 0 saw all tokens; its stage peers saw none.
	bi := env.net.balForWire[0][0]
	if got := env.net.Visits(0, bi); got != tokens {
		t.Errorf("entry balancer visits = %d, want %d", got, tokens)
	}
	// By stage 3 (after the 8-wide merger begins) tokens have spread.
	spread := 0
	for i := 0; i < 4; i++ {
		if env.net.Visits(3, i) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("tokens did not spread across the network (stage 3 spread=%d)", spread)
	}
}

func TestSharedMemGeneratesCoherenceOnly(t *testing.T) {
	env := buildEnv(t, core.Scheme{Mechanism: core.SharedMem}, 2)
	for i := 0; i < 2; i++ {
		i := i
		env.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := env.rt.NewTask(th, 24+i)
			for k := 0; k < 10; k++ {
				env.net.Traverse(task, i)
			}
		})
	}
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if env.col.Messages["rpc"] != 0 || env.col.Messages["migrate"] != 0 {
		t.Errorf("shared-memory run sent runtime messages: %v", env.col.Messages)
	}
	if env.col.Messages["coherence"] == 0 {
		t.Error("shared-memory run produced no coherence traffic")
	}
	// Balancers are write-shared: with two threads ping-ponging lines the
	// hit rate must be poor (the paper measured ~12%).
	if hr := env.col.HitRate(); hr > 0.5 {
		t.Errorf("hit rate = %.2f, expected low for write-shared balancers", hr)
	}
}

func TestExperimentRunsAllSchemes(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.SharedMem},
	} {
		res := RunExperiment(Config{
			Threads: 8, Think: 0, Scheme: scheme,
			Warmup: 5000, Measure: 30000,
		})
		if res.Ops == 0 {
			t.Errorf("%s: no operations completed", scheme.Name())
		}
		if res.Throughput <= 0 {
			t.Errorf("%s: throughput = %v", scheme.Name(), res.Throughput)
		}
		if scheme.Mechanism != core.SharedMem && res.Messages == 0 {
			t.Errorf("%s: no messages", scheme.Name())
		}
	}
}

// TestFigure2Ordering checks the headline shape of Figure 2 at high
// contention: CM beats RPC, hardware support helps each, and SM is
// competitive with CM w/HW.
func TestFigure2Ordering(t *testing.T) {
	run := func(scheme core.Scheme) float64 {
		return RunExperiment(Config{
			Threads: 16, Think: 0, Scheme: scheme,
			Warmup: 10000, Measure: 60000,
		}).Throughput
	}
	rpc := run(core.Scheme{Mechanism: core.RPC})
	rpcHW := run(core.Scheme{Mechanism: core.RPC, HWMessaging: true})
	cm := run(core.Scheme{Mechanism: core.Migrate})
	cmHW := run(core.Scheme{Mechanism: core.Migrate, HWMessaging: true})

	if cm <= rpc {
		t.Errorf("CM (%.3f) not above RPC (%.3f)", cm, rpc)
	}
	if cmHW <= cm {
		t.Errorf("CM w/HW (%.3f) not above CM (%.3f)", cmHW, cm)
	}
	if rpcHW <= rpc {
		t.Errorf("RPC w/HW (%.3f) not above RPC (%.3f)", rpcHW, rpc)
	}
}

// TestFigure3BandwidthOrdering checks the headline shape of Figure 3: SM
// consumes far more bandwidth than RPC, and CM consumes the least.
func TestFigure3BandwidthOrdering(t *testing.T) {
	run := func(scheme core.Scheme) float64 {
		return RunExperiment(Config{
			Threads: 16, Think: 0, Scheme: scheme,
			Warmup: 10000, Measure: 60000,
		}).Bandwidth
	}
	sm := run(core.Scheme{Mechanism: core.SharedMem})
	rpc := run(core.Scheme{Mechanism: core.RPC})
	cm := run(core.Scheme{Mechanism: core.Migrate})
	if cm >= rpc {
		t.Errorf("CM bandwidth (%.2f) not below RPC (%.2f)", cm, rpc)
	}
	if sm <= cm {
		t.Errorf("SM bandwidth (%.2f) not above CM (%.2f)", sm, cm)
	}
}

func TestDeterministicExperiment(t *testing.T) {
	cfg := Config{Threads: 8, Scheme: core.Scheme{Mechanism: core.Migrate},
		Warmup: 5000, Measure: 20000, Seed: 9}
	a := RunExperiment(cfg)
	b := RunExperiment(cfg)
	if a != b {
		t.Fatalf("experiment not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestGapFreeObjMigrate(t *testing.T) {
	checkGapFree(t, core.Scheme{Mechanism: core.ObjMigrate})
}

// TestObjMigratePingPongsUnderContention shows why the paper's §2.2
// warns about data migration for write-shared data: concurrent
// traversals keep stealing the balancers from each other.
func TestObjMigratePingPongsUnderContention(t *testing.T) {
	env := buildEnv(t, core.Scheme{Mechanism: core.ObjMigrate}, 4)
	for i := 0; i < 4; i++ {
		i := i
		env.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := env.rt.NewTask(th, 24+i)
			for k := 0; k < 10; k++ {
				env.net.Traverse(task, i%8)
			}
		})
	}
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if env.rt.Objects.Moves < 40 {
		t.Errorf("object moves = %d; expected heavy ping-pong", env.rt.Objects.Moves)
	}
	// Single-thread traversal after quiescence: everything it pulls
	// stays local for the rest of its walk only if wires repeat; with
	// objects scattered by the contention phase, forwards happened.
	if env.col.Forwards == 0 {
		t.Error("no forwarding despite migrating objects")
	}
}

// TestObjMigrateWorseThanCMUnderContention: whole-object migration of
// write-shared balancers loses to computation migration — the paper's
// §2 comparison in action.
func TestObjMigrateWorseThanCMUnderContention(t *testing.T) {
	run := func(scheme core.Scheme) float64 {
		return RunExperiment(Config{
			Threads: 16, Think: 0, Scheme: scheme,
			Warmup: 10000, Measure: 60000,
		}).Throughput
	}
	om := run(core.Scheme{Mechanism: core.ObjMigrate})
	cm := run(core.Scheme{Mechanism: core.Migrate})
	if om >= cm {
		t.Errorf("object migration (%.3f) not below computation migration (%.3f) on write-shared balancers", om, cm)
	}
}

func TestLayoutAccessors(t *testing.T) {
	env := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, 1)
	if env.net.NumBalancers() != 24 {
		t.Errorf("balancers = %d", env.net.NumBalancers())
	}
	if env.net.Stages() != 6 {
		t.Errorf("stages = %d", env.net.Stages())
	}
}

func TestTopologyHelper(t *testing.T) {
	if topology(false, 30).Name() != "crossbar" {
		t.Error("default topology not crossbar")
	}
	m := topology(true, 30)
	if m.Name() == "crossbar" {
		t.Error("mesh not selected")
	}
	// The mesh must cover all 30 procs (6x5 or larger).
	if m.Hops(0, 29) == 0 {
		t.Error("mesh distance degenerate")
	}
}

func TestMeshExperimentRuns(t *testing.T) {
	r := RunExperiment(Config{
		Threads: 4, Scheme: core.Scheme{Mechanism: core.Migrate},
		Mesh: true, Warmup: 3000, Measure: 15000,
	})
	if r.Ops == 0 {
		t.Fatal("mesh run completed no ops")
	}
}
