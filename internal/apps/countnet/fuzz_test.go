package countnet

import "testing"

// FuzzStepProperty feeds arbitrary token streams (any input-wire
// sequence) through the sequential oracle and checks the counting
// network's defining invariants: the step property on exit counts and
// gap-free value assignment.
func FuzzStepProperty(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, wires []byte) {
		if len(wires) > 4096 {
			wires = wires[:4096]
		}
		s := newSequential(8)
		seen := make(map[int]bool, len(wires))
		for _, w := range wires {
			_, v := s.traverse(int(w) % 8)
			if v < 0 || v >= len(wires) {
				t.Fatalf("value %d out of range for %d tokens", v, len(wires))
			}
			if seen[v] {
				t.Fatalf("value %d issued twice", v)
			}
			seen[v] = true
		}
		m := len(wires)
		for i, c := range s.counts {
			want := (m - i + 7) / 8
			if c != want {
				t.Fatalf("step property violated: rank %d count %d, want %d (m=%d)", i, c, want, m)
			}
		}
	})
}
