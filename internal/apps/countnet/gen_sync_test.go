package countnet

import (
	"os"
	"testing"

	"compmig/internal/contgen"
)

// TestGeneratedStubsInSync regenerates the traversal continuation's wire
// stubs from the annotated source and checks app_gen.go matches.
func TestGeneratedStubsInSync(t *testing.T) {
	src, err := os.ReadFile("app.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := contgen.Generate("app.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("app_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("app_gen.go is stale; rerun: go run ./cmd/contgen -in internal/apps/countnet/app.go")
	}
}
