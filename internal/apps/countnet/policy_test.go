package countnet

import (
	"fmt"
	"testing"

	"compmig/internal/core"
)

// TestPolicyStaticIdentity is the policy layer's core contract at the
// app level: a run under -policy static:<mech> simulates the exact same
// machine as a run hard-wired to <mech>'s scheme — every measured metric
// matches, not just the headline throughput.
func TestPolicyStaticIdentity(t *testing.T) {
	cases := []struct {
		spec string
		mech core.Mechanism
	}{
		{"static:rpc", core.RPC},
		{"static:cm", core.Migrate},
		{"static:sm", core.SharedMem},
		{"static:om", core.ObjMigrate},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			base := Config{Threads: 16, Think: 1000, Seed: 7,
				Warmup: 5000, Measure: 40000, Scheme: core.Scheme{Mechanism: tc.mech}}
			plain := RunExperiment(base)
			pol := base
			pol.Policy = tc.spec
			adapted := RunExperiment(pol)

			if got, want := metricString(adapted), metricString(plain); got != want {
				t.Fatalf("policy %s diverged from scheme run:\n policy: %s\n scheme: %s",
					tc.spec, got, want)
			}
			if adapted.Policy != tc.spec {
				t.Fatalf("Policy label = %q, want %q", adapted.Policy, tc.spec)
			}
			var other uint64
			for m, c := range adapted.Decisions {
				if core.Mechanism(m) != tc.mech {
					other += c
				}
			}
			if other != 0 || adapted.Decisions[tc.mech] == 0 {
				t.Fatalf("decisions = %v, want all under %v", adapted.Decisions, tc.mech)
			}
		})
	}
}

// metricString flattens every simulated metric of a Result for equality
// comparison (host-side fields like Policy and Trace excluded).
func metricString(r Result) string {
	return fmt.Sprintf("tput=%v bw=%v ops=%d lat=%v msgs=%d wpo=%v hit=%v p95=%d util=%v moves=%d fwd=%d",
		r.Throughput, r.Bandwidth, r.Ops, r.MeanLatency, r.Messages,
		r.WordsPerOp, r.HitRate, r.P95Latency, r.EntryUtilization,
		r.ObjectMoves, r.Forwards)
}

// TestPolicyAdaptiveRuns exercises the costmodel and bandit policies
// end to end: the run completes, every operation got a decision, and the
// costmodel's throughput is at least that of the worst static mechanism.
func TestPolicyAdaptiveRuns(t *testing.T) {
	base := Config{Threads: 16, Think: 1000, Seed: 7, Warmup: 5000, Measure: 40000}

	worst := -1.0
	best := -1.0
	for _, m := range []core.Mechanism{core.RPC, core.Migrate, core.SharedMem} {
		c := base
		c.Scheme = core.Scheme{Mechanism: m}
		r := RunExperiment(c)
		if worst < 0 || r.Throughput < worst {
			worst = r.Throughput
		}
		if r.Throughput > best {
			best = r.Throughput
		}
	}

	for _, spec := range []string{"costmodel", "bandit"} {
		c := base
		c.Policy = spec
		r := RunExperiment(c)
		var total uint64
		for _, n := range r.Decisions {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: no decisions recorded", spec)
		}
		if r.PolicyStats == nil || len(r.PolicyStats.Sites) == 0 {
			t.Fatalf("%s: missing policy stats", spec)
		}
		if spec == "costmodel" && r.Throughput <= worst {
			t.Fatalf("costmodel throughput %.3f does not beat worst static %.3f (best %.3f)",
				r.Throughput, worst, best)
		}
	}
}
