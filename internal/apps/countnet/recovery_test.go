package countnet

import (
	"reflect"
	"testing"

	"compmig/internal/core"
	"compmig/internal/fault"
)

// recoveryCfg wipes stage-0 balancer processor 2 mid-run: the network's
// hottest tier loses its toggles and visit counts and must rebuild them
// from checkpoint + WAL before post-window traffic arrives.
func recoveryCfg(mech core.Mechanism) Config {
	return Config{
		Threads: 8,
		Scheme:  core.Scheme{Mechanism: mech},
		Seed:    3,
		Warmup:  10000,
		Measure: 80000,
		Faults:  &fault.Spec{Windows: []fault.Window{{Proc: 2, Start: 60000, Dur: 6000, Wipe: true}}},
	}
}

// TestWipeRecoveryKeepsInvariants is the headline counting-network
// durability check: a loss-inducing crash of a balancer processor must
// not break token conservation or the step property, for every
// stay-at-home mechanism.
func TestWipeRecoveryKeepsInvariants(t *testing.T) {
	for _, mech := range []core.Mechanism{core.Migrate, core.RPC, core.SharedMem} {
		res := RunExperiment(recoveryCfg(mech))
		if res.InvariantErr != "" {
			t.Errorf("%v: %s", mech, res.InvariantErr)
		}
		if res.Recovery == nil {
			t.Fatalf("%v: wipe window did not switch durability on", mech)
		}
		if res.Recovery.Wipes != 1 {
			t.Errorf("%v: %d wipes recovered, want 1", mech, res.Recovery.Wipes)
		}
		if res.Recovery.Restores == 0 || res.Recovery.RecoveryCycles == 0 {
			t.Errorf("%v: recovery did no work: %+v", mech, *res.Recovery)
		}
		if res.Recovery.Appends == 0 {
			t.Errorf("%v: no WAL appends despite traversal traffic", mech)
		}
	}
}

// TestWipeRecoveryUnderObjectMigration wipes a requester processor —
// under the Emerald-style scheme the balancers have been pulled there —
// so recovery must honor the move-out/move-in journal when deciding
// which log entries still apply.
func TestWipeRecoveryUnderObjectMigration(t *testing.T) {
	cfg := recoveryCfg(core.ObjMigrate)
	numBal := 0
	for _, st := range Bitonic(8).Stages {
		numBal += len(st)
	}
	cfg.Faults = &fault.Spec{Windows: []fault.Window{{Proc: numBal, Start: 60000, Dur: 6000, Wipe: true}}}
	res := RunExperiment(cfg)
	if res.InvariantErr != "" {
		t.Errorf("objmigrate: %s", res.InvariantErr)
	}
	if res.Recovery == nil || res.Recovery.Wipes != 1 {
		t.Fatalf("objmigrate: wipe not recovered: %+v", res.Recovery)
	}
	if res.Recovery.Appends == 0 {
		t.Error("objmigrate: no WAL appends despite traversal traffic")
	}
	if res.ObjectMoves == 0 {
		t.Error("objmigrate: scheme moved nothing; the move-journal path went untested")
	}
}

// TestWipeRecoveryDeterministic re-runs an identical wipe config and
// requires identical results and recovery counters — the reproducible
// recovery-trace contract.
func TestWipeRecoveryDeterministic(t *testing.T) {
	a := RunExperiment(recoveryCfg(core.Migrate))
	b := RunExperiment(recoveryCfg(core.Migrate))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("wipe recovery runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestDurableNoWipeVerifies forces the WAL on without any fault: the
// run must log, never recover, and still pass the invariant checker
// (the WAL path must not perturb routing).
func TestDurableNoWipeVerifies(t *testing.T) {
	cfg := recoveryCfg(core.RPC)
	cfg.Faults = nil
	cfg.Durable = true
	res := RunExperiment(cfg)
	if res.InvariantErr != "" {
		t.Errorf("durable fault-free run failed invariants: %s", res.InvariantErr)
	}
	if res.Recovery == nil || res.Recovery.Appends == 0 {
		t.Fatal("durable run logged nothing")
	}
	if res.Recovery.Wipes != 0 {
		t.Errorf("no wipe scheduled but %d recoveries ran", res.Recovery.Wipes)
	}
}

// TestNonWipeCrashStaysNonDurable: a plain crash window (messages lost,
// state kept) must not switch the durability subsystem on — the A/B
// identity contract's trigger condition.
func TestNonWipeCrashStaysNonDurable(t *testing.T) {
	cfg := recoveryCfg(core.Migrate)
	cfg.Faults = &fault.Spec{Windows: []fault.Window{{Proc: 2, Start: 60000, Dur: 6000}}}
	res := RunExperiment(cfg)
	if res.Recovery != nil {
		t.Fatal("non-wipe crash window switched durability on")
	}
	if res.InvariantErr != "" {
		t.Errorf("crash-window run failed invariants: %s", res.InvariantErr)
	}
}

// lateWipeCfg puts the wipe just before the request cutoff so nearly
// every append precedes it; the negative tests scan backward from the
// last ordinal for a record whose loss is observable. Countnet traffic
// is dense (several records per traversal), so the scan cap is larger
// than the sparser kv/btree ones.
func lateWipeCfg() Config {
	cfg := recoveryCfg(core.RPC)
	cfg.Faults = &fault.Spec{Windows: []fault.Window{{Proc: 2, Start: 89000, Dur: 5000, Wipe: true}}}
	return cfg
}

const scanCap = 250

// TestDropAppendFiresChecker loses one routing decision's WAL record:
// after the wipe that balancer reverts a toggle and a visit, and token
// conservation or the step property must fail.
func TestDropAppendFiresChecker(t *testing.T) {
	cfg := lateWipeCfg()
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	// Determinism makes the scan sound: the clean run fixes the append
	// schedule, so ordinal n names the same record in every run.
	for n, tried := clean.Recovery.Appends, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthAppend = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if res.Recovery.AppendDropped != 1 {
			t.Errorf("AppendDropped = %d, want 1", res.Recovery.AppendDropped)
		}
		return
	}
	t.Fatalf("no dropped append detected within %d ordinals of %d", scanCap, clean.Recovery.Appends)
}

// TestDropReplayFiresChecker skips one record during recovery replay;
// the balancer or counter reverts to an older image and the checker
// must fire.
func TestDropReplayFiresChecker(t *testing.T) {
	cfg := lateWipeCfg()
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	if clean.Recovery.Replays == 0 {
		t.Fatal("clean run replayed nothing: wipe/checkpoint timing leaves no suffix to drop")
	}
	for n, tried := clean.Recovery.Replays, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthReplay = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if res.Recovery.ReplayDropped != 1 {
			t.Errorf("ReplayDropped = %d, want 1", res.Recovery.ReplayDropped)
		}
		return
	}
	t.Fatalf("no dropped replay detected within %d ordinals of %d", scanCap, clean.Recovery.Replays)
}
