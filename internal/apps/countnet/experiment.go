package countnet

import (
	"fmt"
	"io"
	"os"

	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/policy"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
	"compmig/internal/store"
)

// Config describes one counting-network run (one point of Figure 2/3).
type Config struct {
	Width   int    // 8 in the paper
	Threads int    // requesting threads, each on its own processor
	Think   uint64 // cycles between requests: 0 or 10000 in the paper
	Scheme  core.Scheme
	Seed    uint64

	Warmup  sim.Time // cycles before the measurement window opens
	Measure sim.Time // length of the measurement window

	// Ablation knobs (nil/false reproduce the paper's configuration).
	Model     *cost.Model // override the scheme-derived cost model
	Mesh      bool        // 2D mesh with per-hop latency instead of a crossbar
	MemParams *mem.Params // override the shared-memory substrate parameters
	// TraceCap, when positive, records the last TraceCap simulation
	// events into Result.Trace.
	TraceCap int
	// ThreadsPerProc co-locates several requester threads per processor
	// (default 1, the paper's layout). More threads per processor model
	// the Alewife multithreading the paper's machine omitted ("similar to
	// the Alewife machine, but without its multithreading capability"):
	// while one thread stalls on a miss or a reply, another runs.
	ThreadsPerProc int
	// Policy, when non-empty, selects the remote-access mechanism per
	// operation through an internal/policy engine instead of the static
	// scheme: "static:<mech>", "costmodel", or "bandit[:eps]". The
	// shared-memory substrate is always built so adaptive policies can
	// route through it. Scheme still supplies the cost model.
	Policy string
	// Faults, when it enables any fault, attaches a deterministic fault
	// injector to the network and runs the post-run invariant checker.
	Faults *fault.Spec
	// Durable forces the WAL/checkpoint store on; it also switches on
	// automatically whenever Faults schedules a wipe window.
	Durable bool
	// DropNthAppend / DropNthReplay are negative-test levers: lose the
	// nth WAL append or skip the nth replayed record, so the post-run
	// checker's teeth can be verified.
	DropNthAppend uint64
	DropNthReplay uint64
	// Shards, when >= 1, runs the simulation on that many sharded event
	// engines synchronized by conservative lookahead (see sim.Cluster).
	// Output is byte-identical across shard counts, but not to the
	// serial (Shards == 0) engine, whose event-ordering keys differ.
	// Configurations the sharded engine does not support — policies,
	// faults, tracing, shared-memory or object-migration schemes,
	// replication — silently fall back to the serial engine.
	Shards int
}

// WithDefaults fills unset fields with the paper's parameters.
func (c Config) WithDefaults() Config {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 20000
	}
	if c.Measure == 0 {
		c.Measure = 200000
	}
	if c.ThreadsPerProc == 0 {
		c.ThreadsPerProc = 1
	}
	return c
}

// Result is one measured point.
type Result struct {
	Scheme      string
	Threads     int
	Think       uint64
	Throughput  float64 // requests per 1000 cycles (Figure 2)
	Bandwidth   float64 // words sent per 10 cycles (Figure 3)
	Ops         uint64  // requests completed inside the window
	MeanLatency float64 // cycles per request over the whole run
	Messages    uint64  // total runtime+coherence messages
	WordsPerOp  float64 // words transmitted per high-level operation (§4.4)
	HitRate     float64 // shared-memory cache hit rate
	// P95Latency is the 95th-percentile request latency (upper bound).
	P95Latency uint64
	// EntryUtilization is the mean busy fraction of the first-stage
	// balancer processors — where requests pile up under contention.
	EntryUtilization float64
	// Trace holds the tail of the execution trace when Config.TraceCap
	// was set.
	Trace *sim.Tracer
	// ObjectMoves and Forwards report Emerald-style mobility activity
	// (nonzero only under the ObjMigrate scheme).
	ObjectMoves uint64
	Forwards    uint64
	// Policy names the policy a policy run used ("" for static schemes);
	// Decisions counts its per-mechanism choices indexed by
	// core.Mechanism; PolicyStats is the engine's final statistics dump.
	Policy      string
	Decisions   [4]uint64
	PolicyStats *policy.Stats
	// Fault holds the injected-fault and recovery counters of a faulty
	// run (nil when no fault plan was active); InvariantErr is the
	// post-run invariant checker's verdict ("" = all invariants held).
	Fault *fault.Counters
	// Recovery holds the durability-store counters of a durable run
	// (nil when the store was off).
	Recovery     *store.Counters
	InvariantErr string
}

// FallbackNotice receives the one-line notice RunExperiment emits when a
// run requested the sharded engine but the configuration requires the
// serial one. It defaults to stderr; tests may swap it out. Writes
// happen during host-side setup only, never on a simulated path.
var FallbackNotice io.Writer = os.Stderr

// RunExperiment builds a fresh machine, runs the workload, and reports
// windowed throughput and bandwidth.
func RunExperiment(cfg Config) Result {
	cfg = cfg.WithDefaults()
	if cfg.Shards >= 1 {
		if cfg.parallelEligible() {
			return runClustered(cfg)
		}
		// Fall back loudly: a silently ignored -shards makes serial
		// wall-clock look like a sharding regression.
		profile.ShardFallbacks.Add(1)
		fmt.Fprintf(FallbackNotice, "countnet: shards=%d ignored, running on the serial engine: %s\n",
			cfg.Shards, cfg.ineligibleReason())
	}
	eng := sim.NewEngine(cfg.Seed)
	var tracer *sim.Tracer
	if cfg.TraceCap > 0 {
		tracer = eng.EnableTrace(cfg.TraceCap)
	}
	model := cfg.Scheme.Model()
	if cfg.Model != nil {
		model = *cfg.Model
	}

	// Balancer processors first, then one processor per requester.
	numBal := 0
	for _, st := range Bitonic(cfg.Width).Stages {
		numBal += len(st)
	}
	reqProcs := (cfg.Threads + cfg.ThreadsPerProc - 1) / cfg.ThreadsPerProc
	mach := sim.NewMachine(eng, numBal+reqProcs)
	col := stats.NewCollector()
	topo := topology(cfg.Mesh, mach.N())
	perHop := model.NetTransitPerHop
	if cfg.Mesh && perHop == 0 {
		perHop = 2
	}
	net := network.New(eng, topo, col, model.NetTransitBase, perHop)
	var inj *fault.Injector
	if cfg.Faults.Enabled() {
		inj = fault.NewInjector(cfg.Faults)
		net.AttachFaults(inj)
		installWindows(inj, mach)
	}
	rt := core.New(eng, mach, net, col, model)

	mp := mem.DefaultParams()
	if cfg.MemParams != nil {
		mp = *cfg.MemParams
	}
	var shm *mem.System
	if cfg.Scheme.Mechanism == core.SharedMem || cfg.Policy != "" {
		// Policy runs always get a substrate: an adaptive decision may
		// route any operation through shared memory. Building it is
		// host-side only, so static:<mech> runs stay byte-identical to
		// their scheme-based counterparts.
		shm = mem.New(eng, mach, net, col, mp)
	}
	defer shm.Release()
	n := Build(rt, shm, cfg.Scheme, cfg.Width)

	// Durability wiring comes after Build so the built network seeds the
	// checkpoints for free instead of charging simulated append time for
	// initial state.
	var wal *store.Store
	if cfg.Durable || cfg.Faults.HasWipe() {
		wal = store.New(mach, col, cost.DefaultDurability(), cfg.Faults.CkptInterval(), rt.Objects.Home)
		n.EnableDurability(wal)
		rt.Objects.SetJournal(wal)
		if cfg.DropNthAppend > 0 {
			wal.ScriptDropAppend(cfg.DropNthAppend)
		}
		if cfg.DropNthReplay > 0 {
			wal.ScriptDropReplay(cfg.DropNthReplay)
		}
		if inj != nil {
			wal.ScheduleRecovery(eng, inj.Windows())
		}
	}

	var pol *policy.Engine
	if cfg.Policy != "" {
		var err error
		pol, err = policy.New(cfg.Policy, model, mp, eng, col, mach.N(), cfg.Seed)
		if err != nil {
			panic("countnet: " + err.Error())
		}
		pol.AttachMem(shm)
		rt.Obs = pol
		n.AttachPolicy(pol)
	}

	stop := cfg.Warmup + cfg.Measure
	rng := eng.Rand().Fork()
	opsStarted := uint64(0)
	for i := 0; i < cfg.Threads; i++ {
		i := i
		proc := numBal + i/cfg.ThreadsPerProc
		wire := i % cfg.Width
		delay := sim.Time(rng.Intn(200))
		eng.Spawn("requester", delay, func(th *sim.Thread) {
			task := rt.NewTask(th, proc)
			for th.Now() < stop {
				start := th.Now()
				opsStarted++
				n.Traverse(task, wire)
				col.CountOp(uint64(th.Now() - start))
				if cfg.Think > 0 {
					task.Think(cfg.Think)
				}
			}
		})
	}

	eng.Schedule(cfg.Warmup, func() { col.MarkWindow(uint64(cfg.Warmup)) })
	res := Result{Scheme: cfg.Scheme.Name(), Threads: cfg.Threads, Think: cfg.Think}
	eng.Schedule(stop, func() {
		res.Throughput = col.Throughput(uint64(stop))
		res.Bandwidth = col.Bandwidth(uint64(stop))
	})
	if err := eng.Run(); err != nil {
		panic("countnet: experiment did not quiesce: " + err.Error())
	}

	res.Ops = col.Ops
	res.MeanLatency = col.MeanOpLatency()
	res.Messages = col.TotalMessages()
	if col.Ops > 0 {
		res.WordsPerOp = float64(col.WordsSent) / float64(col.Ops)
	}
	res.HitRate = col.HitRate()
	res.P95Latency = col.Latency.Quantile(0.95)
	entry := len(Bitonic(cfg.Width).Stages[0])
	var u float64
	for p := 0; p < entry; p++ {
		u += mach.Proc(p).Utilization()
	}
	res.EntryUtilization = u / float64(entry)
	res.Trace = tracer
	res.ObjectMoves = rt.Objects.Moves
	res.Forwards = col.Forwards
	if pol != nil {
		res.Policy = pol.Name()
		res.Decisions = n.pol.Decisions()
		st := pol.Stats()
		res.PolicyStats = &st
	}
	if inj != nil {
		c := inj.Counters
		res.Fault = &c
		inj.FlushProfile()
	}
	if wal != nil {
		c := wal.Counters
		res.Recovery = &c
		wal.FlushProfile()
	}
	if inj != nil || wal != nil {
		if err := n.CheckInvariants(opsStarted); err != nil {
			res.InvariantErr = err.Error()
		}
	}
	return res
}

// installWindows applies a fault plan's processor outage windows to the
// machine: deliveries are handled by the network's reliability layer,
// and local work segments stall through the processor's down windows.
func installWindows(inj *fault.Injector, mach *sim.Machine) {
	for _, w := range inj.Windows() {
		if w.Proc < 0 || w.Proc >= mach.N() {
			panic(fmt.Sprintf("countnet: fault window targets proc %d, machine has [0,%d)", w.Proc, mach.N()))
		}
		mach.Proc(w.Proc).AddDownWindow(w.Start, w.End())
	}
}

// topology picks the interconnect: the paper's flat crossbar, or a
// near-square 2D mesh for the topology ablation.
func topology(mesh bool, nprocs int) network.Topology {
	if !mesh {
		return network.Crossbar{}
	}
	w := 1
	for w*w < nprocs {
		w++
	}
	h := (nprocs + w - 1) / w
	return network.NewMesh(w, h)
}
