package countnet

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/store"
)

// Durability: every balancer routing decision and counter take logs the
// object's full (tiny) state at its home processor. Records carry the
// absolute post-mutation values — visits/toggle for a balancer, next for
// a counter — so replay is idempotent and a second wipe of the same
// processor recovers to the same state.

// balancerRecord encodes a balancer's current state as a WAL record.
func balancerRecord(b *balancer) store.Record {
	var tog uint64
	if b.toggle {
		tog = 1
	}
	return store.Record{Kind: store.KindState, G: b.g, A: b.visits, B: tog}
}

// counterRecord encodes a counter's current state as a WAL record.
func counterRecord(c *counter) store.Record {
	return store.Record{Kind: store.KindState, G: c.g, A: c.next}
}

// logBalancer durably logs a balancer's post-route state. At the
// balancer's home (RPC handler, migrated frame, pulled object) the
// charge blocks the routing thread — the token is not acknowledged
// downstream until the log write is paid for; from a shared-memory
// frontend the home is charged asynchronously, with the record still
// registered before any yield.
func (n *Network) logBalancer(t *core.Task, b *balancer) {
	if n.wal == nil {
		return
	}
	n.wal.Append(t.Thread(), t.Proc(), balancerRecord(b))
}

// logCounter durably logs a counter's post-take state.
func (n *Network) logCounter(t *core.Task, c *counter) {
	if n.wal == nil {
		return
	}
	n.wal.Append(t.Thread(), t.Proc(), counterRecord(c))
}

// EnableDurability attaches the network to a WAL: every balancer and
// counter seeds the checkpoints with its built state (counters start at
// their logical rank, not zero, so seeding is mandatory), and the
// store's replay, wipe, and snapshot hooks are installed.
func (n *Network) EnableDurability(w *store.Store) {
	n.wal = w
	for _, gids := range n.balGID {
		for _, g := range gids {
			w.Seed(balancerRecord(n.rt.Objects.State(g).(*balancer)))
		}
	}
	for _, g := range n.counterGID {
		w.Seed(counterRecord(n.rt.Objects.State(g).(*counter)))
	}
	w.OnApply(n.applyRecord)
	w.OnSnapshot(n.snapshotBlob)
	w.OnWipe(func(proc int) int {
		n.wipeProc(proc)
		return n.rt.WipeVolatile(proc)
	})
}

// applyRecord reinstalls one logged record during recovery replay.
// State records carry scalars in A/B; move-in records carry the same
// values in the snapshot blob.
func (n *Network) applyRecord(r store.Record) {
	switch st := n.rt.Objects.State(r.G).(type) {
	case *balancer:
		visits, tog := r.A, r.B
		if r.Kind == store.KindMoveIn {
			visits, tog = r.Blob[0], r.Blob[1]
		}
		st.visits, st.toggle = visits, tog != 0
	case *counter:
		next := r.A
		if r.Kind == store.KindMoveIn {
			next = r.Blob[0]
		}
		st.next = next
	default:
		panic("countnet: replaying a record for an unknown object kind")
	}
}

// snapshotBlob encodes an object's state for a move record (the
// object-migration scheme pulls balancers and counters between
// processors).
func (n *Network) snapshotBlob(g gid.GID) []uint64 {
	switch st := n.rt.Objects.State(g).(type) {
	case *balancer:
		var tog uint64
		if st.toggle {
			tog = 1
		}
		return []uint64{st.visits, tog}
	case *counter:
		return []uint64{st.next}
	default:
		panic("countnet: snapshotting an unknown object kind")
	}
}

// wipeProc models the crash: every balancer and counter homed on proc
// loses its volatile state (toggle, visit count, dispensed position).
// The wiring spec, shared-memory address, and identity are allocation
// metadata and survive.
func (n *Network) wipeProc(proc int) {
	for _, gids := range n.balGID {
		for _, g := range gids {
			if n.rt.Objects.Home(g) != proc {
				continue
			}
			b := n.rt.Objects.State(g).(*balancer)
			b.toggle, b.visits = false, 0
		}
	}
	for _, g := range n.counterGID {
		if n.rt.Objects.Home(g) != proc {
			continue
		}
		n.rt.Objects.State(g).(*counter).next = 0
	}
}
