//go:generate go run compmig/cmd/contgen -in app.go

package countnet

import (
	"fmt"

	"compmig/internal/advisor"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/msg"
	"compmig/internal/policy"
	"compmig/internal/store"
)

// balancer is the private state of one balancer object: a two-by-two
// switch that alternately routes arriving tokens to its two output wires.
type balancer struct {
	spec   BalancerSpec
	toggle bool
	visits uint64
	addr   mem.Addr // toggle word, under shared memory
	g      gid.GID  // set at allocation, so a handler holding only the state pointer can name it
}

// route passes one token through and returns its output wire. The
// read-and-flip is atomic host code, so concurrent activations alternate
// correctly regardless of arrival interleaving.
func (b *balancer) route() int {
	b.visits++
	out := b.spec.A
	if b.toggle {
		out = b.spec.B
	}
	b.toggle = !b.toggle
	return out
}

// counter is the per-output-wire value dispenser: wire i hands out values
// i, i+width, i+2·width, ...
type counter struct {
	next  uint64
	width uint64
	addr  mem.Addr
	g     gid.GID
}

func (c *counter) take() uint64 {
	v := c.next
	c.next += c.width
	return v
}

// Network is a distributed counting network instance bound to a runtime.
type Network struct {
	rt     *core.Runtime
	shm    *mem.System // nil unless the scheme is SharedMem or a policy run
	scheme core.Scheme
	pol    *policy.Site // per-traversal mechanism selector (nil = static scheme)

	width        int
	layout       *Layout
	stages       []Stage
	balGID       [][]gid.GID // [stage][index]
	balForWire   [][]int     // [stage][wire] -> index into stage
	counterGID   []gid.GID   // [physical exit wire]
	BalancerWork uint64      // user-code cycles per balancer visit
	CounterWork  uint64      // user-code cycles to take a value

	// PeekWork prices the short record-read access that precedes each
	// RPC operation on a balancer or counter (the shared-memory-style
	// program reads the record, then updates it; under RPC every access
	// is a call — the per-access costing of §2.5).
	PeekWork uint64

	mPeek    core.MethodID
	mToggle  core.MethodID
	mNext    core.MethodID
	cTravers core.ContID

	wal *store.Store // nil unless durability is enabled
}

// Build lays a width-wide bitonic counting network out one balancer per
// processor, starting at processor 0 (the paper's 24-processor layout for
// width 8). Counters are co-located with the final-stage balancer of
// their wire.
func Build(rt *core.Runtime, shm *mem.System, scheme core.Scheme, width int) *Network {
	layout := Bitonic(width)
	n := &Network{
		rt: rt, shm: shm, scheme: scheme,
		width: width, layout: layout, stages: layout.Stages,
		BalancerWork: 150, CounterWork: 30, PeekWork: 20,
	}
	if scheme.Mechanism == core.SharedMem && shm == nil {
		panic("countnet: SharedMem scheme needs a mem.System")
	}

	proc := 0
	for _, st := range n.stages {
		gids := make([]gid.GID, len(st))
		wireMap := make([]int, width)
		for i := range wireMap {
			wireMap[i] = -1
		}
		for bi, spec := range st {
			b := &balancer{spec: spec}
			if shm != nil {
				b.addr = shm.Alloc(proc, 8)
			}
			gids[bi] = rt.Objects.New(proc, b)
			b.g = gids[bi]
			wireMap[spec.A] = bi
			wireMap[spec.B] = bi
			proc++
		}
		n.balGID = append(n.balGID, gids)
		n.balForWire = append(n.balForWire, wireMap)
	}

	// Counters live with the last-stage balancer of their exit wire; the
	// counter on physical wire OutWire[r] dispenses rank r's values.
	last := len(n.stages) - 1
	n.counterGID = make([]gid.GID, width)
	for r := 0; r < width; r++ {
		w := layout.OutWire[r]
		bi := n.balForWire[last][w]
		home := n.balGID[last][bi].Home()
		c := &counter{next: uint64(r), width: uint64(width)}
		if shm != nil {
			c.addr = shm.Alloc(home, 8)
		}
		n.counterGID[w] = rt.Objects.New(home, c)
		c.g = n.counterGID[w]
	}

	n.registerHandlers()
	return n
}

// NumBalancers returns the number of balancer processors the layout uses.
func (n *Network) NumBalancers() int {
	t := 0
	for _, st := range n.stages {
		t += len(st)
	}
	return t
}

// Stages returns the network depth.
func (n *Network) Stages() int { return len(n.stages) }

func (n *Network) registerHandlers() {
	n.mPeek = n.rt.RegisterMethod("countnet.peek", true,
		func(t *core.Task, _ any, _ *msg.Reader, reply *msg.Writer) {
			t.Work(n.PeekWork)
			reply.PutU32(0)
		})
	// Balancer toggle is one of Prelude's optimized short methods: no
	// handler thread is created under RPC (§4.4).
	n.mToggle = n.rt.RegisterMethod("countnet.toggle", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			b := self.(*balancer)
			t.Work(n.BalancerWork)
			out := b.route()
			n.logBalancer(t, b)
			reply.PutU32(uint32(out))
		})
	n.mNext = n.rt.RegisterMethod("countnet.next", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			c := self.(*counter)
			t.Work(n.CounterWork)
			v := c.take()
			n.logCounter(t, c)
			reply.PutU64(v)
		})
	n.cTravers = n.rt.RegisterCont("countnet.traverse",
		func() core.Continuation { return &traverseCont{net: n} })
}

// wireReply carries a balancer's routing decision back to an RPC caller.
type wireReply struct{ wire uint32 }

func (r *wireReply) MarshalWords(w *msg.Writer)          { w.PutU32(r.wire) }
func (r *wireReply) UnmarshalWords(rd *msg.Reader) error { r.wire = rd.U32(); return rd.Err() }

// valueReply carries the final counter value.
type valueReply struct{ value uint64 }

func (r *valueReply) MarshalWords(w *msg.Writer)          { w.PutU64(r.value) }
func (r *valueReply) UnmarshalWords(rd *msg.Reader) error { r.value = rd.U64(); return rd.Err() }

// traverseCont is the continuation for a migrating traversal: the live
// variables are just the current stage and wire. Its wire stubs are
// generated by cmd/contgen (app_gen.go) — the paper's §3 compiler role.
//
//compmig:record
type traverseCont struct {
	net   *Network
	stage uint32
	wire  uint32
}

func (c *traverseCont) Run(t *core.Task) {
	n := c.net
	for int(c.stage) < len(n.stages) {
		bi := n.balForWire[c.stage][c.wire]
		g := n.balGID[c.stage][bi]
		if !t.IsLocal(g) {
			t.Migrate(g, n.cTravers, c)
			return
		}
		b := t.State(g).(*balancer)
		t.Work(n.BalancerWork)
		c.wire = uint32(b.route())
		n.logBalancer(t, b)
		c.stage++
	}
	// The counter is co-located with the final balancer, so this is local.
	g := n.counterGID[c.wire]
	if !t.IsLocal(g) {
		t.Migrate(g, n.cTravers, c)
		return
	}
	ctr := t.State(g).(*counter)
	t.Work(n.CounterWork)
	v := ctr.take()
	n.logCounter(t, ctr)
	t.Return(&valueReply{value: v})
}

// AttachPolicy registers the traversal call site with a policy engine
// and routes every subsequent Traverse through its decisions. The site's
// static profile carries what the compiler would know: record sizes and
// the short-method flag, plus network-shape priors for run and chain
// length (each balancer is visited once; a traversal crosses stages+1
// objects).
func (n *Network) AttachPolicy(e *policy.Engine) {
	n.pol = e.NewSite("countnet.traverse", advisor.SiteProfile{
		AccessesPerVisit: 1,
		ReplyWords:       1,
		ContWords:        2, // stage + wire
		ShortMethod:      true,
		ChainLength:      float64(len(n.stages) + 1),
	})
}

// Traverse pushes one token in on the given input wire and returns the
// counter value it drew. The mechanism is the network's static scheme,
// or the attached policy's per-operation decision.
func (n *Network) Traverse(t *core.Task, wire int) uint64 {
	if wire < 0 || wire >= n.width {
		panic(fmt.Sprintf("countnet: wire %d out of range", wire))
	}
	mech := n.scheme.Mechanism
	if n.pol != nil {
		bi := n.balForWire[0][wire]
		mech = n.pol.Begin(t.Proc(), n.balGID[0][bi])
		start := t.Now()
		v := n.traverseWith(t, wire, mech)
		n.pol.End(t.Proc(), mech, uint64(t.Now()-start))
		return v
	}
	return n.traverseWith(t, wire, mech)
}

func (n *Network) traverseWith(t *core.Task, wire int, mech core.Mechanism) uint64 {
	switch mech {
	case core.Migrate:
		var rep valueReply
		if err := t.Do(&traverseCont{net: n, wire: uint32(wire)}, &rep); err != nil {
			panic("countnet: traverse failed: " + err.Error())
		}
		return rep.value
	case core.RPC:
		w := uint32(wire)
		for s := range n.stages {
			bi := n.balForWire[s][w]
			g := n.balGID[s][bi]
			n.peek(t, g)
			var rep wireReply
			if err := t.Call(g, n.mToggle, nil, &rep); err != nil {
				panic("countnet: toggle failed: " + err.Error())
			}
			w = rep.wire
		}
		n.peek(t, n.counterGID[w])
		var rep valueReply
		if err := t.Call(n.counterGID[w], n.mNext, nil, &rep); err != nil {
			panic("countnet: counter failed: " + err.Error())
		}
		return rep.value
	case core.SharedMem:
		w := wire
		th, proc := t.Thread(), t.Proc()
		for s := range n.stages {
			bi := n.balForWire[s][w]
			b := n.rt.Objects.State(n.balGID[s][bi]).(*balancer)
			n.shm.RMW(th, proc, b.addr)
			t.Work(n.BalancerWork)
			w = b.route()
			n.logBalancer(t, b)
		}
		c := n.rt.Objects.State(n.counterGID[w]).(*counter)
		n.shm.RMW(th, proc, c.addr)
		t.Work(n.CounterWork)
		v := c.take()
		n.logCounter(t, c)
		return v
	case core.ObjMigrate:
		// Emerald-style whole-object migration — the comparison the paper
		// wanted to run (§4). Every balancer is pulled to the requester
		// before being toggled; write-sharing makes the objects ping-pong.
		w := uint32(wire)
		for s := range n.stages {
			bi := n.balForWire[s][w]
			g := n.balGID[s][bi]
			// Route immediately after the pull, before any yield, so the
			// access is atomic even if the object is pulled away next.
			b := n.pullAndPin(t, g).(*balancer)
			w = uint32(b.route())
			n.logBalancer(t, b)
			t.Work(n.BalancerWork)
		}
		g := n.counterGID[w]
		ctr := n.pullAndPin(t, g).(*counter)
		v := ctr.take()
		n.logCounter(t, ctr)
		t.Work(n.CounterWork)
		return v
	default:
		panic("countnet: unknown mechanism")
	}
}

// pullAndPin pulls an object until it is local and returns its state.
// The caller must perform its atomic host-level access immediately (the
// routing/toggle happens with no intervening yield, so the interleaving
// is equivalent to holding the object for the access).
func (n *Network) pullAndPin(t *core.Task, g gid.GID) any {
	for !t.IsLocal(g) {
		if err := t.PullObject(g, balancerStateWords); err != nil {
			panic("countnet: object pull failed: " + err.Error())
		}
	}
	return n.rt.Objects.State(g)
}

// balancerStateWords is the wire size of a migrated balancer or counter
// object: state plus wiring descriptors.
const balancerStateWords = 8

// peek performs the short record-read access preceding an RPC update.
func (n *Network) peek(t *core.Task, g gid.GID) {
	var rep wireReply
	if err := t.Call(g, n.mPeek, nil, &rep); err != nil {
		panic("countnet: peek failed: " + err.Error())
	}
}

// Visits returns total tokens routed by balancer (stage, index).
func (n *Network) Visits(stage, index int) uint64 {
	return n.rt.Objects.State(n.balGID[stage][index]).(*balancer).visits
}
