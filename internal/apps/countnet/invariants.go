package countnet

import "fmt"

// CheckInvariants verifies the counting network's correctness conditions
// after a run that completed total traversals. Fault-injected runs call
// it to prove the recovery protocols preserved exactly-once semantics:
//
//   - token conservation per stage: every traversal visits exactly one
//     balancer in each stage, so each stage's visit counts sum to total;
//   - the step property at quiescence: the counter of logical rank r has
//     dispensed ceil((total-r)/width) values — output counts form a step,
//     never a gap or a double-take;
//   - value conservation: the counters together dispensed exactly total
//     values.
//
// A dropped message that was never retried shows up as a missing visit;
// a duplicate that slipped past suppression shows up as an extra one.
func (n *Network) CheckInvariants(total uint64) error {
	for s := range n.stages {
		var visits uint64
		for bi := range n.stages[s] {
			visits += n.Visits(s, bi)
		}
		if visits != total {
			return fmt.Errorf("countnet: stage %d routed %d tokens, want %d (token conservation violated)",
				s, visits, total)
		}
	}
	width := uint64(n.width)
	var dispensed uint64
	for w := 0; w < n.width; w++ {
		c := n.rt.Objects.State(n.counterGID[w]).(*counter)
		r := uint64(n.layout.RankOf[w])
		if c.next < r || (c.next-r)%width != 0 {
			return fmt.Errorf("countnet: counter rank %d (wire %d) at impossible value %d", r, w, c.next)
		}
		takes := (c.next - r) / width
		var want uint64
		if total > r {
			want = (total - r + width - 1) / width
		}
		if takes != want {
			return fmt.Errorf("countnet: counter rank %d dispensed %d values, want %d for %d traversals (step property violated)",
				r, takes, want, total)
		}
		dispensed += takes
	}
	if dispensed != total {
		return fmt.Errorf("countnet: counters dispensed %d values for %d traversals", dispensed, total)
	}
	return nil
}
