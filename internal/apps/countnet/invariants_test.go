package countnet

import (
	"strings"
	"testing"

	"compmig/internal/core"
	"compmig/internal/fault"
	"compmig/internal/sim"
)

// driveTraffic pushes threads*perThread traversals through the network
// and returns the total.
func driveTraffic(t *testing.T, env *testEnv, threads, perThread int) uint64 {
	t.Helper()
	for i := 0; i < threads; i++ {
		i := i
		env.eng.Spawn("req", sim.Time(i*13), func(th *sim.Thread) {
			task := env.rt.NewTask(th, 24+i)
			for k := 0; k < perThread; k++ {
				env.net.Traverse(task, (i+k)%8)
			}
		})
	}
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return uint64(threads * perThread)
}

// A clean run satisfies every invariant the checker knows, under each
// mechanism.
func TestCheckInvariantsCleanRun(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.RPC}, {Mechanism: core.Migrate}, {Mechanism: core.SharedMem},
	} {
		env := buildEnv(t, scheme, 6)
		total := driveTraffic(t, env, 6, 20)
		if err := env.net.CheckInvariants(total); err != nil {
			t.Errorf("%s: %v", scheme.Name(), err)
		}
	}
}

// The checker must actually catch corruption — otherwise the "ok"
// column in the fault sweep proves nothing. Each corruption models a
// fault the recovery protocols exist to prevent.
func TestCheckInvariantsCatchCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(*Network)
		wantSub string
	}{
		{
			// A duplicate counter access that slipped suppression: one
			// extra take on some counter.
			"double take",
			func(n *Network) {
				c := n.rt.Objects.State(n.counterGID[0]).(*counter)
				c.next += c.width
			},
			"step property violated",
		},
		{
			// A torn update: the counter value is off its residue class.
			"torn counter",
			func(n *Network) {
				n.rt.Objects.State(n.counterGID[3]).(*counter).next++
			},
			"impossible value",
		},
		{
			// A dropped balancer visit that was never retried.
			"lost token",
			func(n *Network) {
				n.rt.Objects.State(n.balGID[2][0]).(*balancer).visits--
			},
			"token conservation violated",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			env := buildEnv(t, core.Scheme{Mechanism: core.RPC}, 4)
			total := driveTraffic(t, env, 4, 10)
			c.corrupt(env.net)
			err := env.net.CheckInvariants(total)
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q lacks %q", err, c.wantSub)
			}
		})
	}
}

// RunExperiment under an enabled plan must attach the injector, report
// its counters, and come back with the invariant checker clean.
func TestRunExperimentReportsFaultCounters(t *testing.T) {
	res := RunExperiment(Config{
		Threads: 8, Scheme: core.Scheme{Mechanism: core.RPC},
		Seed: 1, Warmup: 20000, Measure: 100000,
		Faults: &fault.Spec{Drop: 0.03, Dup: 0.01, DelayMax: 20, Seed: 5},
	})
	if res.Fault == nil {
		t.Fatal("faulty run reported no fault counters")
	}
	if res.Fault.Dropped == 0 || res.Fault.Retransmits == 0 {
		t.Errorf("plan injected nothing: %+v", *res.Fault)
	}
	if res.InvariantErr != "" {
		t.Errorf("invariants violated: %s", res.InvariantErr)
	}

	clean := RunExperiment(Config{
		Threads: 8, Scheme: core.Scheme{Mechanism: core.RPC},
		Seed: 1, Warmup: 20000, Measure: 100000,
	})
	if clean.Fault != nil {
		t.Error("fault-free run reported fault counters")
	}
}
