// Package countnet implements the paper's first application: a bitonic
// counting network [AHS91], a distributed data structure for shared
// counting that trades single-request latency for throughput scalability.
// The paper's instance is the 8-wide network — six stages of four
// balancers — laid out one balancer per processor across 24 processors.
package countnet

import "fmt"

// BalancerSpec places one balancer on a pair of physical wires within a
// stage. The balancer's top output stays on wire A, bottom on wire B.
type BalancerSpec struct {
	A, B int
}

// Stage is a set of balancers that operate in parallel on disjoint wires.
type Stage []BalancerSpec

// Layout is a constructed counting network: the balancer stages plus the
// permutation from logical output rank to physical exit wire. Rank r
// dispenses the values r, r+w, r+2w, ... — in the Aspnes/Herlihy/Shavit
// construction the merger reorders positions between layers, so the rank
// of an exit wire is not the wire number itself.
type Layout struct {
	Width  int
	Stages []Stage
	// OutWire[r] is the physical wire carrying logical output rank r.
	OutWire []int
	// RankOf[w] is the logical rank of physical exit wire w.
	RankOf []int
}

// Bitonic constructs Bitonic[w] following Aspnes, Herlihy, and Shavit.
// Width must be a power of two; w=8 yields the paper's six-stage,
// four-balancer-wide pipeline.
func Bitonic(width int) *Layout {
	if width < 2 || width&(width-1) != 0 {
		panic(fmt.Sprintf("countnet: width %d is not a power of two >= 2", width))
	}
	wires := make([]int, width)
	for i := range wires {
		wires[i] = i
	}
	stages, out := bitonic(wires)
	l := &Layout{Width: width, Stages: stages, OutWire: out, RankOf: make([]int, width)}
	for r, w := range out {
		l.RankOf[w] = r
	}
	return l
}

// bitonic returns the stages of Bitonic on the given physical wires plus
// the physical wires of its logical outputs, in rank order.
func bitonic(wires []int) ([]Stage, []int) {
	n := len(wires)
	if n == 1 {
		return nil, wires
	}
	top, outTop := bitonic(wires[:n/2])
	bot, outBot := bitonic(wires[n/2:])
	stages := zip(top, bot)
	mStages, out := merger(append(append([]int{}, outTop...), outBot...))
	return append(stages, mStages...), out
}

// merger builds Merger[n]: its two input halves must each carry the step
// property. For n>2 it interleaves even/odd positions into two half-width
// mergers and joins their outputs pairwise with a final rank of
// balancers; balancer i's outputs become ranks 2i and 2i+1.
func merger(pos []int) ([]Stage, []int) {
	n := len(pos)
	if n == 2 {
		b := BalancerSpec{A: pos[0], B: pos[1]}
		return []Stage{{b}}, []int{pos[0], pos[1]}
	}
	x, y := pos[:n/2], pos[n/2:]
	var z1, z2 []int
	for i := 0; i < n/2; i++ {
		if i%2 == 0 {
			z1 = append(z1, x[i])
			z2 = append(z2, y[i])
		} else {
			z2 = append(z2, x[i])
			z1 = append(z1, y[i])
		}
	}
	s1, out1 := merger(z1)
	s2, out2 := merger(z2)
	stages := zip(s1, s2)
	var last Stage
	out := make([]int, 0, n)
	for i := 0; i < n/2; i++ {
		last = append(last, BalancerSpec{A: out1[i], B: out2[i]})
		out = append(out, out1[i], out2[i])
	}
	return append(stages, last), out
}

// zip runs two equally-deep sub-networks side by side, merging their
// stages pairwise.
func zip(a, b []Stage) []Stage {
	if len(a) != len(b) {
		panic("countnet: sub-networks of unequal depth")
	}
	out := make([]Stage, len(a))
	for i := range a {
		out[i] = append(append(Stage{}, a[i]...), b[i]...)
	}
	return out
}

// sequential is a host-level counting network used to validate the
// topology (step property) and as a test oracle for the distributed
// implementations.
type sequential struct {
	layout  *Layout
	toggles [][]bool // per stage, per balancer
	counts  []int    // tokens that exited each rank
	next    []int    // next value per rank
}

func newSequential(width int) *sequential {
	l := Bitonic(width)
	s := &sequential{layout: l}
	for _, st := range l.Stages {
		s.toggles = append(s.toggles, make([]bool, len(st)))
	}
	s.counts = make([]int, width)
	s.next = make([]int, width)
	for i := range s.next {
		s.next[i] = i
	}
	return s
}

// traverse pushes one token in on the given wire and returns (exit rank,
// counter value).
func (s *sequential) traverse(wire int) (int, int) {
	for si, st := range s.layout.Stages {
		for bi, b := range st {
			if b.A == wire || b.B == wire {
				if s.toggles[si][bi] {
					wire = b.B
				} else {
					wire = b.A
				}
				s.toggles[si][bi] = !s.toggles[si][bi]
				break
			}
		}
	}
	rank := s.layout.RankOf[wire]
	s.counts[rank]++
	v := s.next[rank]
	s.next[rank] += s.layout.Width
	return rank, v
}
