package countnet

import (
	"compmig/internal/core"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// parallelEligible reports whether this configuration can run on the
// sharded engine. The CM and RPC schemes qualify: every piece of
// simulated state they touch (balancer toggles, counters, reply slots)
// is accessed only at its home processor, so partitioning processors
// into lanes partitions the state. Shared-memory and object-migration
// schemes move state between processors through host-side structures,
// policies and fault plans keep global mutable state, and tracing
// requires one totally ordered event log — all of those stay serial.
func (c Config) parallelEligible() bool {
	switch c.Scheme.Mechanism {
	case core.Migrate, core.RPC:
	default:
		return false
	}
	return !c.Scheme.Replication && c.Policy == "" && !c.Faults.Enabled() &&
		!c.Durable && !c.Faults.HasWipe() && c.TraceCap == 0
}

// ineligibleReason names the first feature that disqualifies this
// configuration from the sharded engine (caller guarantees
// parallelEligible() is false).
func (c Config) ineligibleReason() string {
	switch c.Scheme.Mechanism {
	case core.Migrate, core.RPC:
	default:
		return "the " + c.Scheme.Mechanism.String() + " scheme moves state between processors through host-side structures"
	}
	switch {
	case c.Scheme.Replication:
		return "replication keeps read-only copies coherent across processors"
	case c.Policy != "":
		return "policy engines keep global mutable state"
	case c.Faults.Enabled():
		return "fault plans keep global mutable state"
	case c.Durable || c.Faults.HasWipe():
		return "the durability store keeps one machine-wide log sequence"
	default:
		return "tracing needs one totally ordered event log"
	}
}

// runClustered is RunExperiment on a sharded event-engine cluster. The
// workload construction mirrors the serial path exactly — same machine
// shape, same object placement, same requester start delays (drawn from
// the root lane's PRNG during setup) — so a result is a function of the
// configuration alone, not of the shard count.
//
// Measurements are kept in one collector per lane and folded together
// after the run. Windowed throughput and bandwidth cannot use the
// per-collector window marks (each lane sees only its slice of the
// traffic), so barrier callbacks snapshot the summed counters at the
// window edges and apply the same float arithmetic the serial
// Collector.Throughput/Bandwidth use; integer sums are shard-count
// invariant, which makes the reported floats bitwise identical across
// shard counts.
func runClustered(cfg Config) Result {
	model := cfg.Scheme.Model()
	if cfg.Model != nil {
		model = *cfg.Model
	}

	numBal := 0
	for _, st := range Bitonic(cfg.Width).Stages {
		numBal += len(st)
	}
	reqProcs := (cfg.Threads + cfg.ThreadsPerProc - 1) / cfg.ThreadsPerProc
	nprocs := numBal + reqProcs
	shards := cfg.Shards
	if shards > nprocs {
		shards = nprocs
	}

	cl := sim.NewCluster(cfg.Seed, shards)
	mach := cl.NewMachine(nprocs)
	cols := make([]*stats.Collector, shards)
	for i := range cols {
		cols[i] = stats.NewCollector()
	}
	topo := topology(cfg.Mesh, nprocs)
	perHop := model.NetTransitPerHop
	if cfg.Mesh && perHop == 0 {
		perHop = 2
	}
	net := network.New(cl.Root(), topo, cols[0], model.NetTransitBase, perHop)
	net.Shard(cl, cols)
	cl.SetLookahead(sim.Time(network.Lookahead(topo, cl.Groups(), model.NetTransitBase, perHop)))

	rt := core.New(cl.Root(), mach, net, cols[0], model)
	rt.Shard(cl, cols)
	n := Build(rt, nil, cfg.Scheme, cfg.Width)

	stop := cfg.Warmup + cfg.Measure
	rng := cl.Root().Rand().Fork()
	for i := 0; i < cfg.Threads; i++ {
		proc := numBal + i/cfg.ThreadsPerProc
		wire := i % cfg.Width
		delay := sim.Time(rng.Intn(200))
		lcol := cols[cl.LaneOf(proc)]
		p := mach.Proc(proc)
		p.Spawn("requester", delay, func(th *sim.Thread) {
			task := rt.NewTask(th, proc)
			for th.Now() < stop {
				start := th.Now()
				n.Traverse(task, wire)
				lcol.CountOp(uint64(th.Now() - start))
				if cfg.Think > 0 {
					task.Think(cfg.Think)
				}
			}
		})
	}

	var startOps, startWords uint64
	cl.AtBarrier(cfg.Warmup, func() {
		for _, c := range cols {
			startOps += c.Ops
			startWords += c.WordsSent
		}
	})
	res := Result{Scheme: cfg.Scheme.Name(), Threads: cfg.Threads, Think: cfg.Think}
	cl.AtBarrier(stop, func() {
		var ops, words uint64
		for _, c := range cols {
			ops += c.Ops
			words += c.WordsSent
		}
		dt := uint64(stop) - uint64(cfg.Warmup)
		res.Throughput = float64(ops-startOps) * 1000 / float64(dt)
		res.Bandwidth = float64(words-startWords) * 10 / float64(dt)
	})
	if err := cl.Run(); err != nil {
		panic("countnet: experiment did not quiesce: " + err.Error())
	}

	col := stats.NewCollector()
	for _, c := range cols {
		col.AddFrom(c)
	}
	res.Ops = col.Ops
	res.MeanLatency = col.MeanOpLatency()
	res.Messages = col.TotalMessages()
	if col.Ops > 0 {
		res.WordsPerOp = float64(col.WordsSent) / float64(col.Ops)
	}
	res.HitRate = col.HitRate()
	res.P95Latency = col.Latency.Quantile(0.95)
	entry := len(Bitonic(cfg.Width).Stages[0])
	var u float64
	for p := 0; p < entry; p++ {
		u += mach.Proc(p).Utilization()
	}
	res.EntryUtilization = u / float64(entry)
	res.ObjectMoves = rt.Objects.Moves
	res.Forwards = col.Forwards
	return res
}
