package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/repl"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

type env struct {
	eng *sim.Engine
	col *stats.Collector
	rt  *core.Runtime
	tr  *Tree
}

func buildEnv(t *testing.T, scheme core.Scheme, p Params, threads int, keys []uint64) *env {
	t.Helper()
	eng := sim.NewEngine(23)
	model := scheme.Model()
	mach := sim.NewMachine(eng, p.NodeProcs+threads)
	col := stats.NewCollector()
	nw := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, nw, col, model)
	var shm *mem.System
	if scheme.Mechanism == core.SharedMem {
		shm = mem.New(eng, mach, nw, col, mem.DefaultParams())
	}
	var tbl *repl.Table
	if scheme.Replication {
		tbl = repl.NewTable(rt)
	}
	return &env{eng: eng, col: col, rt: rt, tr: Build(rt, shm, tbl, scheme, p, keys)}
}

func seqKeys(n int, stride uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i+1) * stride
	}
	return out
}

// --- Host-level structure tests -------------------------------------

func TestBulkLoadShape(t *testing.T) {
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, DefaultParams(), 1,
		seqKeys(10000, 3))
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.tr.Height() != 3 {
		t.Errorf("height = %d, want 3 for 10k keys at fanout 100", e.tr.Height())
	}
	// 10000 keys at fill 0.6 -> 167 leaves -> 3 interior -> root with 3
	// children, matching the paper's description.
	if got := e.tr.RootChildren(); got != 3 {
		t.Errorf("root children = %d, want 3 (the paper's root bottleneck setup)", got)
	}
	if got := e.tr.KeyCount(); got != 10000 {
		t.Errorf("key count = %d", got)
	}
}

func TestBulkLoadSmallFanout(t *testing.T) {
	p := DefaultParams()
	p.Fanout = 10
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, p, 1, seqKeys(10000, 3))
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.tr.Height() < 5 {
		t.Errorf("height = %d, want a deeper tree at fanout 10", e.tr.Height())
	}
	if got := e.tr.RootChildren(); got < 2 || got > 6 {
		t.Errorf("root children = %d, want a few (paper: 4)", got)
	}
}

func TestBulkLoadTiny(t *testing.T) {
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, DefaultParams(), 1, seqKeys(5, 10))
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.tr.Height() != 1 {
		t.Errorf("5 keys should fit in a single leaf root, height=%d", e.tr.Height())
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, DefaultParams(), 1, nil)
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Functional tests across mechanisms ------------------------------

func checkLookups(t *testing.T, scheme core.Scheme) {
	t.Helper()
	keys := seqKeys(500, 7) // 7, 14, ..., 3500
	p := DefaultParams()
	p.Fanout = 20
	p.NodeProcs = 8
	e := buildEnv(t, scheme, p, 1, keys)
	hits, misses := 0, 0
	e.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, p.NodeProcs)
		for i := 1; i <= 100; i++ {
			if e.tr.Lookup(task, uint64(i)*7) {
				hits++
			}
			if !e.tr.Lookup(task, uint64(i)*7+1) {
				misses++
			}
		}
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 100 || misses != 100 {
		t.Fatalf("scheme %s: hits=%d misses=%d, want 100/100", scheme.Name(), hits, misses)
	}
}

func TestLookupRPC(t *testing.T) { checkLookups(t, core.Scheme{Mechanism: core.RPC}) }
func TestLookupCM(t *testing.T)  { checkLookups(t, core.Scheme{Mechanism: core.Migrate}) }
func TestLookupSM(t *testing.T)  { checkLookups(t, core.Scheme{Mechanism: core.SharedMem}) }
func TestLookupCMRepl(t *testing.T) {
	checkLookups(t, core.Scheme{Mechanism: core.Migrate, Replication: true})
}
func TestLookupRPCRepl(t *testing.T) {
	checkLookups(t, core.Scheme{Mechanism: core.RPC, Replication: true})
}

func checkInsertLookup(t *testing.T, scheme core.Scheme) {
	t.Helper()
	p := DefaultParams()
	p.Fanout = 8 // force plenty of splits
	p.NodeProcs = 6
	e := buildEnv(t, scheme, p, 4, seqKeys(40, 5))
	inserted := make(map[uint64]bool)
	rng := sim.NewPRNG(77)
	var all [][]uint64
	for i := 0; i < 4; i++ {
		mine := make([]uint64, 60)
		for k := range mine {
			mine[k] = 1 + rng.Uint64n(100000)
		}
		all = append(all, mine)
		for _, k := range mine {
			inserted[k] = true
		}
	}
	for i := 0; i < 4; i++ {
		i := i
		e.eng.Spawn("writer", sim.Time(i*11), func(th *sim.Thread) {
			task := e.rt.NewTask(th, p.NodeProcs+i)
			for _, k := range all[i] {
				e.tr.Insert(task, k)
			}
		})
	}
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatalf("scheme %s: %v", scheme.Name(), err)
	}
	// Every pre-loaded and inserted key must now be present.
	want := map[uint64]bool{}
	for _, k := range seqKeys(40, 5) {
		want[k] = true
	}
	for k := range inserted {
		want[k] = true
	}
	got := e.tr.AllKeys()
	if len(got) != len(want) {
		t.Fatalf("scheme %s: key count = %d, want %d", scheme.Name(), len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("scheme %s: leaf chain out of order", scheme.Name())
	}
	for _, k := range got {
		if !want[k] {
			t.Fatalf("scheme %s: phantom key %d", scheme.Name(), k)
		}
	}
}

func TestInsertRPC(t *testing.T) { checkInsertLookup(t, core.Scheme{Mechanism: core.RPC}) }
func TestInsertCM(t *testing.T)  { checkInsertLookup(t, core.Scheme{Mechanism: core.Migrate}) }
func TestInsertSM(t *testing.T)  { checkInsertLookup(t, core.Scheme{Mechanism: core.SharedMem}) }
func TestInsertCMRepl(t *testing.T) {
	checkInsertLookup(t, core.Scheme{Mechanism: core.Migrate, Replication: true})
}
func TestInsertRPCRepl(t *testing.T) {
	checkInsertLookup(t, core.Scheme{Mechanism: core.RPC, Replication: true})
}

// TestRootSplitGrowsTree drives enough inserts through a tiny tree to
// force repeated root splits under concurrency.
func TestRootSplitGrowsTree(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
	} {
		p := DefaultParams()
		p.Fanout = 4
		p.NodeProcs = 4
		e := buildEnv(t, scheme, p, 3, seqKeys(3, 2))
		h0 := e.tr.Height()
		for i := 0; i < 3; i++ {
			i := i
			e.eng.Spawn("writer", 0, func(th *sim.Thread) {
				task := e.rt.NewTask(th, p.NodeProcs+i)
				for k := 0; k < 80; k++ {
					e.tr.Insert(task, uint64(1000+i*1000+k*3))
				}
			})
		}
		if err := e.eng.Run(); err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if err := e.tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if e.tr.Height() <= h0 {
			t.Errorf("%s: tree did not grow (height %d -> %d)", scheme.Name(), h0, e.tr.Height())
		}
		if got := e.tr.KeyCount(); got != 3+3*80 {
			t.Errorf("%s: key count = %d, want %d", scheme.Name(), got, 3+3*80)
		}
	}
}

// TestDuplicateInsert checks inserts report newness correctly.
func TestDuplicateInsert(t *testing.T) {
	p := DefaultParams()
	p.NodeProcs = 4
	e := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, p, 1, seqKeys(100, 3))
	var first, second bool
	e.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, 4)
		first = e.tr.Insert(task, 1000001)
		second = e.tr.Insert(task, 1000001)
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("insert newness: first=%v second=%v", first, second)
	}
}

// TestCMUsesFewerMessagesThanRPC verifies the locality win on a descent.
func TestCMUsesFewerMessagesThanRPC(t *testing.T) {
	keys := seqKeys(2000, 3)
	run := func(scheme core.Scheme) uint64 {
		p := DefaultParams()
		p.Fanout = 10 // deep tree -> long descents
		e := buildEnv(t, scheme, p, 1, keys)
		e.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := e.rt.NewTask(th, p.NodeProcs)
			for i := 0; i < 20; i++ {
				e.tr.Lookup(task, uint64(i*291+7))
			}
		})
		if err := e.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return e.col.TotalMessages()
	}
	rpc := run(core.Scheme{Mechanism: core.RPC})
	cm := run(core.Scheme{Mechanism: core.Migrate})
	if cm >= rpc {
		t.Errorf("CM messages (%d) not below RPC (%d)", cm, rpc)
	}
	// The model says roughly half: one message per hop plus one return,
	// versus two per hop.
	if float64(cm) > 0.75*float64(rpc) {
		t.Errorf("CM/RPC message ratio = %.2f, want near 0.5", float64(cm)/float64(rpc))
	}
}

// TestReplicationRemovesRootTraffic confirms that with a replicated root,
// descents skip the root processor entirely.
func TestReplicationRemovesRootTraffic(t *testing.T) {
	keys := seqKeys(10000, 3)
	run := func(scheme core.Scheme) uint64 {
		e := buildEnv(t, scheme, DefaultParams(), 1, keys)
		e.eng.Spawn("req", 0, func(th *sim.Thread) {
			task := e.rt.NewTask(th, DefaultParams().NodeProcs)
			for i := 0; i < 30; i++ {
				e.tr.Lookup(task, uint64(i*997+1))
			}
		})
		if err := e.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return e.col.TotalMessages()
	}
	plain := run(core.Scheme{Mechanism: core.Migrate})
	repl := run(core.Scheme{Mechanism: core.Migrate, Replication: true})
	if repl >= plain {
		t.Errorf("replicated root should cut messages: %d vs %d", repl, plain)
	}
}

func TestGenKeysDistinctSorted(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewPRNG(seed)
		keys := GenKeys(rng, 500, 10000)
		if len(keys) != 500 {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyConcurrentInsertsPreserveTree runs randomized concurrent
// workloads under each mechanism and checks full structural invariants
// and key-set correctness at quiescence.
func TestPropertyConcurrentInsertsPreserveTree(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.Migrate},
		{Mechanism: core.SharedMem},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			p := DefaultParams()
			p.Fanout = 6
			p.NodeProcs = 5
			rng := sim.NewPRNG(seed)
			initial := GenKeys(rng.Fork(), 30, 5000)
			e := buildEnv(t, scheme, p, 4, initial)
			want := map[uint64]bool{}
			for _, k := range initial {
				want[k] = true
			}
			type batch struct{ keys []uint64 }
			batches := make([]batch, 4)
			for i := range batches {
				for k := 0; k < 50; k++ {
					key := 1 + rng.Uint64n(5000)
					batches[i].keys = append(batches[i].keys, key)
					want[key] = true
				}
			}
			for i := 0; i < 4; i++ {
				i := i
				e.eng.Spawn("w", sim.Time(i), func(th *sim.Thread) {
					task := e.rt.NewTask(th, p.NodeProcs+i)
					for _, k := range batches[i].keys {
						e.tr.Insert(task, k)
					}
				})
			}
			if err := e.eng.Run(); err != nil {
				t.Fatalf("%s seed %d: %v", scheme.Name(), seed, err)
			}
			if err := e.tr.CheckInvariants(); err != nil {
				t.Fatalf("%s seed %d: %v", scheme.Name(), seed, err)
			}
			got := e.tr.AllKeys()
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: %d keys, want %d", scheme.Name(), seed, len(got), len(want))
			}
		}
	}
}

func TestStatePrivacy(t *testing.T) {
	// Sanity: node states live at their GID's home.
	e := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, DefaultParams(), 1, seqKeys(1000, 3))
	if e.tr.Root().Home() >= DefaultParams().NodeProcs {
		t.Error("root not on a node processor")
	}
	_ = gid.Nil
}

func TestLookupOM(t *testing.T) { checkLookups(t, core.Scheme{Mechanism: core.ObjMigrate}) }
func TestInsertOM(t *testing.T) { checkInsertLookup(t, core.Scheme{Mechanism: core.ObjMigrate}) }

// TestOMPullsNodesAround verifies Emerald-style behaviour on the tree:
// concurrent requesters keep stealing the upper-level nodes.
func TestOMPullsNodesAround(t *testing.T) {
	r := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.ObjMigrate},
		Think:  0, Threads: 8, Warmup: 5000, Measure: 30000,
	})
	if r.Ops == 0 {
		t.Fatal("no operations completed")
	}
	cm := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.Migrate},
		Think:  0, Threads: 8, Warmup: 5000, Measure: 30000,
	})
	if r.Throughput >= cm.Throughput {
		t.Errorf("object migration (%.3f) not below computation migration (%.3f)",
			r.Throughput, cm.Throughput)
	}
}
