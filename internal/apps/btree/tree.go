package btree

import (
	"sort"

	"compmig/internal/advisor"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/policy"
	"compmig/internal/repl"
	"compmig/internal/sim"
	"compmig/internal/store"
)

// Params configures a tree instance.
type Params struct {
	Fanout    int     // maximum keys per node (paper: 100, and 10 in §4.2's variant)
	NodeProcs int     // nodes are placed uniformly on procs [0, NodeProcs) (paper: 48)
	Fill      float64 // bulk-load fill fraction (0.7 reproduces the paper's 3-child root)
}

// DefaultParams returns the paper's main configuration.
func DefaultParams() Params {
	return Params{Fanout: 100, NodeProcs: 48, Fill: 0.7}
}

// Tree is a distributed B-link tree bound to a runtime and a scheme.
type Tree struct {
	rt     *core.Runtime
	shm    *mem.System // SM scheme only
	repl   *repl.Table // "w/repl." schemes only
	scheme core.Scheme
	p      Params
	rng    *sim.PRNG // placement decisions

	root     gid.GID
	rootLock sim.Mutex
	height   int
	nnodes   int

	// wal, when set, receives a full node image on every committed
	// mutation (see durable.go); nodes lists every allocated node in
	// creation order so wipe/seed sweeps are deterministic.
	wal   *store.Store
	nodes []gid.GID

	// Cost knobs (user-code cycles).
	LockCycles   uint64
	InsertCycles uint64
	AllocCycles  uint64

	// SMPrefetch makes shared-memory descents prefetch a node's key
	// array on entry, overlapping the probe misses (§2.5's prefetching
	// factor). Off by default: the paper's machine did not prefetch.
	SMPrefetch bool

	// PeekWork prices the short "remote record access" read that the
	// RPC version performs before operating on a node (the paper's
	// shared-memory-style programs turn each access into a call; §4.4's
	// "extra calls performed using RPC").
	PeekWork uint64

	mPeek     core.MethodID
	mStep     core.MethodID
	mPut      core.MethodID
	mInsertUp core.MethodID
	mDelete   core.MethodID
	mScanStep core.MethodID
	cOp       core.ContID
	cLookup   core.ContID
	cDelete   core.ContID
	cScan     core.ContID

	// Per-call-site policy selectors (nil = static scheme dispatch).
	polLookup *policy.Site
	polInsert *policy.Site
}

// Build bulk-loads a tree with the given sorted-unique keys, placing
// nodes on random processors. When tbl is non-nil the root's content is
// replicated (the "w/repl." schemes).
func Build(rt *core.Runtime, shm *mem.System, tbl *repl.Table, scheme core.Scheme, p Params, keys []uint64) *Tree {
	if scheme.Mechanism == core.SharedMem && shm == nil {
		panic("btree: SharedMem scheme needs a mem.System")
	}
	tr := &Tree{
		rt: rt, shm: shm, repl: tbl, scheme: scheme, p: p,
		rng:        rt.Eng.Rand().Fork(),
		LockCycles: 20, InsertCycles: 30, AllocCycles: 50, PeekWork: 20,
	}
	tr.bulkLoad(keys)
	tr.register()
	if tbl != nil {
		tbl.Replicate(tr.root, tr.snapshotRoot(), tr.snapshotWords())
	}
	return tr
}

// Root returns the current root GID; Height the number of levels; Nodes
// the live node count.
func (tr *Tree) Root() gid.GID { return tr.root }
func (tr *Tree) Height() int   { return tr.height }
func (tr *Tree) Nodes() int    { return tr.nnodes }

// RootChildren returns the root's child count (the paper discusses 3 vs 4).
func (tr *Tree) RootChildren() int {
	nd := tr.rt.Objects.State(tr.root).(*node)
	if nd.leaf {
		return 0
	}
	return len(nd.children)
}

// newNode places state on a random node processor, allocating its
// shared-memory image when the scheme needs one.
func (tr *Tree) newNode(nd *node) gid.GID {
	home := tr.rng.Intn(tr.p.NodeProcs)
	if tr.shm != nil {
		cap := uint64(tr.p.Fanout + 1)
		nd.addrHeader = tr.shm.Alloc(home, 16)
		nd.addrKeys = tr.shm.Alloc(home, 8*cap)
		nd.addrKids = tr.shm.Alloc(home, 8*cap)
	}
	tr.nnodes++
	g := tr.rt.Objects.New(home, nd)
	nd.g = g
	tr.nodes = append(tr.nodes, g)
	return g
}

// bulkLoad builds the initial tree bottom-up at the configured fill.
func (tr *Tree) bulkLoad(keys []uint64) {
	per := int(float64(tr.p.Fanout) * tr.p.Fill)
	if per < 2 {
		per = 2
	}
	if len(keys) == 0 {
		tr.root = tr.newNode(&node{leaf: true, high: MaxKey})
		tr.height = 1
		return
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		panic("btree: bulk-load keys must be sorted")
	}

	// Leaves.
	type built struct {
		g    gid.GID
		nd   *node
		high uint64
	}
	var level []built
	for i := 0; i < len(keys); i += per {
		end := i + per
		if end > len(keys) {
			end = len(keys)
		}
		nd := &node{leaf: true, keys: append([]uint64{}, keys[i:end]...)}
		nd.high = nd.keys[len(nd.keys)-1]
		level = append(level, built{nd: nd, high: nd.high})
	}
	level[len(level)-1].nd.high = MaxKey
	level[len(level)-1].high = MaxKey
	for i := range level {
		level[i].g = tr.newNode(level[i].nd)
	}
	for i := 0; i+1 < len(level); i++ {
		level[i].nd.right = level[i+1].g
	}
	tr.height = 1

	// Interior levels.
	childrenAreLeaves := true
	for len(level) > 1 {
		var up []built
		for i := 0; i < len(level); i += per {
			end := i + per
			if end > len(level) {
				end = len(level)
			}
			nd := &node{kidsAreLeaves: childrenAreLeaves}
			for _, ch := range level[i:end] {
				nd.keys = append(nd.keys, ch.high)
				nd.children = append(nd.children, ch.g)
			}
			nd.high = nd.keys[len(nd.keys)-1]
			up = append(up, built{g: tr.newNode(nd), nd: nd, high: nd.high})
		}
		for i := 0; i+1 < len(up); i++ {
			up[i].nd.right = up[i+1].g
		}
		level = up
		tr.height++
		childrenAreLeaves = false
	}
	tr.root = level[0].g
}

// snapshotRoot clones the root node's content for the replication table.
func (tr *Tree) snapshotRoot() *node {
	nd := tr.rt.Objects.State(tr.root).(*node)
	return &node{
		leaf:          nd.leaf,
		keys:          append([]uint64{}, nd.keys...),
		children:      append([]gid.GID{}, nd.children...),
		right:         nd.right,
		high:          nd.high,
		kidsAreLeaves: nd.kidsAreLeaves,
	}
}

// snapshotWords is the wire size of a root snapshot broadcast.
func (tr *Tree) snapshotWords() uint64 {
	nd := tr.rt.Objects.State(tr.root).(*node)
	return uint64(4*len(nd.keys)) + 6
}

// republishRoot refreshes replicas after the root's content changed.
func (tr *Tree) republishRoot(t *core.Task) {
	if tr.repl == nil {
		return
	}
	tr.repl.Publish(t, tr.root, tr.snapshotRoot(), tr.snapshotWords())
}

// start picks the first hop of a descent. Under replication the root's
// content is read locally — the whole point of the "w/repl." schemes —
// so the descent proper starts at the second level.
func (tr *Tree) start(t *core.Task, key uint64) (cur gid.GID, path []gid.GID, isLeaf bool) {
	if tr.repl != nil && tr.repl.IsReplicated(tr.root) {
		snap := tr.repl.Read(t, tr.root).(*node)
		if !snap.leaf {
			t.Work(searchCycles(len(snap.keys)))
			next, lateral, _ := snap.route(key)
			if !lateral {
				return next, []gid.GID{tr.root}, snap.kidsAreLeaves
			}
		}
	}
	return tr.root, nil, tr.rt.Objects.State(tr.root).(*node).leaf
}

// growRoot replaces the root after a root split. It returns true when
// this call installed the new root; false means another writer already
// grew the tree and the caller must retry its insertUp against the new
// root.
func (tr *Tree) growRoot(t *core.Task, oldRoot gid.GID, info splitInfo, newChild gid.GID) bool {
	tr.rootLock.Lock(t.Thread())
	defer tr.rootLock.Unlock(t.Thread())
	if tr.root != oldRoot {
		return false
	}
	t.Work(tr.AllocCycles + tr.InsertCycles)
	nr := &node{
		keys:          []uint64{info.Sep, info.OldBound},
		children:      []gid.GID{oldRoot, newChild},
		high:          info.OldBound,
		kidsAreLeaves: tr.rt.Objects.State(oldRoot).(*node).leaf,
	}
	g := tr.newNode(nr)
	tr.logNode(t, nr)
	if tr.repl != nil && tr.repl.IsReplicated(oldRoot) {
		// Replicate the new root before exposing it so no reader ever
		// sees an unreplicated root. (Replicate is host-level: no yield.)
		clone := &node{keys: append([]uint64{}, nr.keys...),
			children: append([]gid.GID{}, nr.children...), high: nr.high}
		tr.repl.Replicate(g, clone, uint64(4*len(nr.keys))+6)
	}
	tr.root = g
	tr.height++
	if tr.repl != nil {
		tr.republishRoot(t) // broadcast the new-root announcement
	}
	return true
}

// splitLocked splits nd (lock held), allocates the sibling, and links it.
// The sibling allocation is host-level; its cost is charged as work (the
// paper's splits are rare enough not to shape the results).
func (tr *Tree) splitLocked(t *core.Task, nd *node) (gid.GID, splitInfo) {
	t.Work(tr.AllocCycles + uint64(5*len(nd.keys)/2))
	r, info := nd.split()
	g := tr.newNode(r)
	nd.right = g
	info.NewNode = g
	if tr.wal != nil {
		// Survivor and sibling images land in one append, so a wipe never
		// observes half a split.
		tr.wal.Append(t.Thread(), t.Proc(), nodeRecord(nd), nodeRecord(r))
	}
	return g, info
}

// Lookup reports whether key is present, using the tree's scheme.
func (tr *Tree) Lookup(t *core.Task, key uint64) bool {
	if tr.polLookup != nil {
		mech := tr.polLookup.Begin(t.Proc(), tr.root)
		start := t.Now()
		found := tr.lookupWith(t, key, mech)
		tr.polLookup.End(t.Proc(), mech, uint64(t.Now()-start))
		return found
	}
	return tr.lookupWith(t, key, tr.scheme.Mechanism)
}

func (tr *Tree) lookupWith(t *core.Task, key uint64, mech core.Mechanism) bool {
	switch mech {
	case core.Migrate:
		return tr.lookupCM(t, key)
	case core.RPC:
		return tr.lookupRPC(t, key)
	case core.SharedMem:
		return tr.lookupSM(t, key)
	case core.ObjMigrate:
		return tr.lookupOM(t, key)
	}
	panic("btree: unknown mechanism")
}

// Insert adds key, reporting whether it was new, using the tree's scheme.
func (tr *Tree) Insert(t *core.Task, key uint64) bool {
	if key == MaxKey {
		panic("btree: MaxKey is reserved")
	}
	if tr.polInsert != nil {
		mech := tr.polInsert.Begin(t.Proc(), tr.root)
		start := t.Now()
		added := tr.insertWith(t, key, mech)
		tr.polInsert.End(t.Proc(), mech, uint64(t.Now()-start))
		return added
	}
	return tr.insertWith(t, key, tr.scheme.Mechanism)
}

func (tr *Tree) insertWith(t *core.Task, key uint64, mech core.Mechanism) bool {
	switch mech {
	case core.Migrate:
		return tr.insertCM(t, key)
	case core.RPC:
		return tr.insertRPC(t, key)
	case core.SharedMem:
		return tr.insertSM(t, key)
	case core.ObjMigrate:
		return tr.insertOM(t, key)
	}
	panic("btree: unknown mechanism")
}

// AttachPolicy registers the tree's two operation call sites (lookup and
// insert) with a policy engine. The static profiles carry the record
// sizes and shape priors a compiler would emit: a descent visits height
// nodes, each probed with a short read plus the step/put access.
func (tr *Tree) AttachPolicy(e *policy.Engine) {
	chain := float64(tr.height)
	if chain < 1 {
		chain = 1
	}
	tr.polLookup = e.NewSite("btree.lookup", advisor.SiteProfile{
		AccessesPerVisit: 2, // peek + step under the per-access style
		ArgWords:         2, // key
		ReplyWords:       3, // next gid / found flag
		ContWords:        6, // key + cursor + bookkeeping
		ShortMethod:      true,
		ChainLength:      chain,
	})
	tr.polInsert = e.NewSite("btree.insert", advisor.SiteProfile{
		AccessesPerVisit: 2,
		ArgWords:         2,
		ReplyWords:       3,
		ContWords:        8, // key + cursor + split propagation state
		ShortMethod:      true,
		ChainLength:      chain,
	})
}

// CheckInvariants walks the whole tree (host-level) verifying B-link
// structure: sorted keys, bounds nested correctly, right links monotone.
// Tests call it at quiescence.
func (tr *Tree) CheckInvariants() error {
	return tr.checkNode(tr.root, 0, MaxKey, tr.height)
}
