package btree

import (
	"fmt"
	"slices"
	"sync" //simvet:allow host-side workload memoization (GenKeys cache) shared across harness workers; keys are a pure function of the PRNG state

	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/policy"
	"compmig/internal/repl"
	"compmig/internal/sim"
	"compmig/internal/stats"
	"compmig/internal/store"
)

// Config describes one B-tree run (one row of Tables 1-4).
type Config struct {
	Params
	InitialKeys int     // 10000 in the paper
	Threads     int     // 16, each on its own processor
	Think       uint64  // 0 or 10000 cycles
	LookupFrac  float64 // fraction of operations that are lookups
	KeySpace    uint64  // keys drawn uniformly from [1, KeySpace]
	Scheme      core.Scheme
	Seed        uint64

	Warmup  sim.Time
	Measure sim.Time

	// Ablation knobs (nil/false reproduce the paper's configuration).
	Model     *cost.Model // override the scheme-derived cost model
	Mesh      bool        // 2D mesh with per-hop latency instead of a crossbar
	MemParams *mem.Params // override the shared-memory substrate parameters
	// TraceCap, when positive, records the last TraceCap simulation
	// events into Result.Trace.
	TraceCap int
	// SMPrefetch enables key-array prefetching on shared-memory descents.
	SMPrefetch bool
	// HotOpFrac and HotKeyFrac skew the workload: HotOpFrac of the
	// operations draw their key from the bottom HotKeyFrac of the key
	// space (both zero = the paper's uniform workload).
	HotOpFrac  float64
	HotKeyFrac float64
	// Policy, when non-empty, selects the remote-access mechanism per
	// operation through an internal/policy engine instead of the static
	// scheme: "static:<mech>", "costmodel", or "bandit[:eps]". The
	// shared-memory substrate is always built so adaptive policies can
	// route through it. Scheme still supplies the cost model.
	Policy string
	// Faults, when it enables any fault, attaches a deterministic fault
	// injector to the network and runs the post-run invariant checker.
	Faults *fault.Spec
	// Durable forces the WAL/checkpoint store on. It also switches on
	// automatically whenever Faults schedules a wipe window — a
	// loss-inducing crash without durability would trivially violate the
	// key-set invariant.
	Durable bool
	// DropNthAppend / DropNthReplay are negative-test levers: lose the
	// nth WAL append (an acked write never reaching the log) or skip the
	// nth replayed record during recovery. The post-run checker must fire.
	DropNthAppend uint64
	DropNthReplay uint64
	// Shards is accepted for interface parity with countnet.Config but
	// the B-tree always runs on the serial engine: every operation
	// descends through the shared root (and splits rewrite ancestor
	// nodes under the tree lock), so processor-partitioned lanes would
	// all contend on the same objects and the sharded engine's
	// state-partitioning precondition does not hold.
	Shards int
}

// WithDefaults fills unset fields with the paper's parameters.
func (c Config) WithDefaults() Config {
	if c.Fanout == 0 {
		c.Params = DefaultParams()
	}
	if c.InitialKeys == 0 {
		c.InitialKeys = 10000
	}
	if c.Threads == 0 {
		c.Threads = 16
	}
	if c.LookupFrac == 0 {
		c.LookupFrac = 0.5
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Warmup == 0 {
		c.Warmup = 20000
	}
	if c.Measure == 0 {
		c.Measure = 200000
	}
	return c
}

// Result is one measured row.
type Result struct {
	Scheme       string
	Think        uint64
	Throughput   float64 // operations per 1000 cycles (Tables 1, 3)
	Bandwidth    float64 // words per 10 cycles (Tables 2, 4)
	Ops          uint64
	MeanLatency  float64
	HitRate      float64 // SM cache hit rate (paper: <7%)
	WordsPerOp   float64
	RootChildren int
	Height       int
	// P95Latency is the 95th-percentile operation latency (upper bound).
	P95Latency uint64
	// RootUtilization is the busy fraction of the root node's processor —
	// direct evidence of the paper's root-bottleneck analysis (§4.2).
	RootUtilization float64
	// Trace holds the tail of the execution trace when Config.TraceCap
	// was set.
	Trace *sim.Tracer
	// ObjectMoves and Forwards report Emerald-style mobility activity
	// (nonzero only under the ObjMigrate scheme).
	ObjectMoves uint64
	Forwards    uint64
	// Policy names the policy a policy run used ("" for static schemes);
	// Decisions sums its per-mechanism choices across the lookup and
	// insert sites, indexed by core.Mechanism; PolicyStats is the
	// engine's final statistics dump.
	Policy      string
	Decisions   [4]uint64
	PolicyStats *policy.Stats
	// Fault holds the injected-fault and recovery counters of a faulty
	// run (nil when no fault plan was active); InvariantErr is the
	// post-run integrity checker's verdict ("" = all invariants held).
	Fault        *fault.Counters
	InvariantErr string
	// Recovery holds the durability-store counters of a durable run
	// (nil when the store was off).
	Recovery *store.Counters
}

// RunExperiment builds a fresh machine and tree, runs the mixed
// lookup/insert workload, and reports windowed throughput and bandwidth.
func RunExperiment(cfg Config) Result {
	cfg = cfg.WithDefaults()
	eng := sim.NewEngine(cfg.Seed)
	var tracer *sim.Tracer
	if cfg.TraceCap > 0 {
		tracer = eng.EnableTrace(cfg.TraceCap)
	}
	model := cfg.Scheme.Model()
	if cfg.Model != nil {
		model = *cfg.Model
	}

	mach := sim.NewMachine(eng, cfg.NodeProcs+cfg.Threads)
	col := stats.NewCollector()
	topo := network.Topology(network.Crossbar{})
	perHop := model.NetTransitPerHop
	if cfg.Mesh {
		w := 1
		for w*w < mach.N() {
			w++
		}
		topo = network.NewMesh(w, (mach.N()+w-1)/w)
		if perHop == 0 {
			perHop = 2
		}
	}
	net := network.New(eng, topo, col, model.NetTransitBase, perHop)
	var inj *fault.Injector
	if cfg.Faults.Enabled() {
		inj = fault.NewInjector(cfg.Faults)
		net.AttachFaults(inj)
		for _, w := range inj.Windows() {
			if w.Proc < 0 || w.Proc >= mach.N() {
				panic(fmt.Sprintf("btree: fault window targets proc %d, machine has [0,%d)", w.Proc, mach.N()))
			}
			mach.Proc(w.Proc).AddDownWindow(w.Start, w.End())
		}
	}
	rt := core.New(eng, mach, net, col, model)

	mp := mem.DefaultParams()
	if cfg.MemParams != nil {
		mp = *cfg.MemParams
	}
	var shm *mem.System
	if cfg.Scheme.Mechanism == core.SharedMem || cfg.Policy != "" {
		// Policy runs always get a substrate: an adaptive decision may
		// route any operation through shared memory. Building it is
		// host-side only, so static:<mech> runs stay byte-identical to
		// their scheme-based counterparts.
		shm = mem.New(eng, mach, net, col, mp)
	}
	defer shm.Release()
	var tbl *repl.Table
	if cfg.Scheme.Replication {
		tbl = repl.NewTable(rt)
	}

	keyRNG := eng.Rand().Fork()
	initialKeys := GenKeys(keyRNG, cfg.InitialKeys, cfg.KeySpace)
	tr := Build(rt, shm, tbl, cfg.Scheme, cfg.Params, initialKeys)
	tr.SMPrefetch = cfg.SMPrefetch

	// inserted tracks keys the workload successfully added, for the
	// post-run key-set integrity check. Allocated only under faults or
	// durability so the plain path stays untouched.
	var inserted map[uint64]struct{}
	if inj != nil || cfg.Durable {
		inserted = make(map[uint64]struct{})
	}

	// Durability wiring comes after Build so the bulk-loaded tree seeds
	// the checkpoints for free instead of charging simulated append time
	// for pre-run population.
	var st *store.Store
	if cfg.Durable || cfg.Faults.HasWipe() {
		st = store.New(mach, col, cost.DefaultDurability(), cfg.Faults.CkptInterval(), rt.Objects.Home)
		tr.EnableDurability(st)
		rt.Objects.SetJournal(st)
		if tbl != nil {
			tbl.SetJournal(st)
		}
		if cfg.DropNthAppend > 0 {
			st.ScriptDropAppend(cfg.DropNthAppend)
		}
		if cfg.DropNthReplay > 0 {
			st.ScriptDropReplay(cfg.DropNthReplay)
		}
		if inj != nil {
			st.ScheduleRecovery(eng, inj.Windows())
		}
	}

	var pol *policy.Engine
	if cfg.Policy != "" {
		var err error
		pol, err = policy.New(cfg.Policy, model, mp, eng, col, mach.N(), cfg.Seed)
		if err != nil {
			panic("btree: " + err.Error())
		}
		pol.AttachMem(shm)
		rt.Obs = pol
		tr.AttachPolicy(pol)
	}

	stop := cfg.Warmup + cfg.Measure
	for i := 0; i < cfg.Threads; i++ {
		proc := cfg.NodeProcs + i
		rng := keyRNG.Fork()
		delay := sim.Time(rng.Intn(300))
		eng.Spawn("requester", delay, func(th *sim.Thread) {
			task := rt.NewTask(th, proc)
			for th.Now() < stop {
				start := th.Now()
				span := cfg.KeySpace
				if cfg.HotOpFrac > 0 && rng.Float64() < cfg.HotOpFrac {
					span = uint64(float64(cfg.KeySpace) * cfg.HotKeyFrac)
					if span == 0 {
						span = 1
					}
				}
				key := 1 + rng.Uint64n(span)
				if rng.Float64() < cfg.LookupFrac {
					tr.Lookup(task, key)
				} else if added := tr.Insert(task, key); added && inserted != nil {
					inserted[key] = struct{}{}
				}
				col.CountOp(uint64(th.Now() - start))
				if cfg.Think > 0 {
					task.Think(cfg.Think)
				}
			}
		})
	}

	eng.Schedule(cfg.Warmup, func() { col.MarkWindow(uint64(cfg.Warmup)) })
	res := Result{Scheme: cfg.Scheme.Name(), Think: cfg.Think}
	eng.Schedule(stop, func() {
		res.Throughput = col.Throughput(uint64(stop))
		res.Bandwidth = col.Bandwidth(uint64(stop))
	})
	if err := eng.Run(); err != nil {
		panic("btree: experiment did not quiesce: " + err.Error())
	}

	res.Ops = col.Ops
	res.MeanLatency = col.MeanOpLatency()
	res.HitRate = col.HitRate()
	if col.Ops > 0 {
		res.WordsPerOp = float64(col.WordsSent) / float64(col.Ops)
	}
	res.RootChildren = tr.RootChildren()
	res.Height = tr.Height()
	res.P95Latency = col.Latency.Quantile(0.95)
	res.RootUtilization = mach.Proc(tr.Root().Home()).Utilization()
	res.Trace = tracer
	res.ObjectMoves = rt.Objects.Moves
	res.Forwards = col.Forwards
	if pol != nil {
		res.Policy = pol.Name()
		ld, id := tr.polLookup.Decisions(), tr.polInsert.Decisions()
		for m := range res.Decisions {
			res.Decisions[m] = ld[m] + id[m]
		}
		st := pol.Stats()
		res.PolicyStats = &st
	}
	if inj != nil {
		c := inj.Counters
		res.Fault = &c
		inj.FlushProfile()
		if err := tr.VerifyKeySet(initialKeys, inserted); err != nil {
			res.InvariantErr = err.Error()
		}
	}
	if st != nil {
		c := st.Counters
		res.Recovery = &c
		st.FlushProfile()
		if inj == nil && res.InvariantErr == "" {
			// Durable fault-free runs still verify: the WAL path must not
			// perturb tree contents.
			if err := tr.VerifyKeySet(initialKeys, inserted); err != nil {
				res.InvariantErr = err.Error()
			}
		}
	}
	return res
}

// keyCache memoizes GenKeys results: every run of a table sweep draws
// the same workload from an identically-seeded fork, so the key set is
// generated once and copied out afterwards. The key is the generator's
// exact state plus the arguments, which fully determine the output.
// Guarded by a mutex because harness workers build experiments
// concurrently.
type keyCacheKey struct {
	state [4]uint64
	n     int
	space uint64
}

// keyCacheEntry records the generated keys and how many Uint64 draws
// producing them consumed (n plus duplicate retries), so a cache hit can
// leave rng in exactly the state generation would have: callers fork
// workload streams off the generator afterwards.
type keyCacheEntry struct {
	keys  []uint64
	draws int
}

var (
	keyCacheMu sync.Mutex
	keyCache   = map[keyCacheKey]keyCacheEntry{}
)

// GenKeys draws n distinct sorted keys uniformly from [1, space]. The
// result is a pure function of (rng state, n, space) and is memoized;
// rng is always left in the same state as an uncached generation.
func GenKeys(rng *sim.PRNG, n int, space uint64) []uint64 {
	ck := keyCacheKey{state: rng.State(), n: n, space: space}
	keyCacheMu.Lock()
	cached, hit := keyCache[ck]
	keyCacheMu.Unlock()
	if hit {
		for i := 0; i < cached.draws; i++ {
			rng.Uint64()
		}
		// Copy with capacity exactly n, matching what generation builds.
		out := make([]uint64, len(cached.keys))
		copy(out, cached.keys)
		return out
	}
	seen := make(map[uint64]struct{}, n)
	keys := make([]uint64, 0, n)
	draws := 0
	for len(keys) < n {
		k := 1 + rng.Uint64n(space)
		draws++
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	slices.Sort(keys)
	keyCacheMu.Lock()
	keyCache[ck] = keyCacheEntry{keys: slices.Clone(keys), draws: draws}
	keyCacheMu.Unlock()
	return keys
}
