package btree

import (
	"reflect"
	"strings"
	"testing"

	"compmig/internal/core"
	"compmig/internal/fault"
)

// wipeCfg is a small insert-heavy run with a wipe window over one of
// the node processors, late enough that most appends precede the wipe
// (so the negative tests can find a droppable record) but with post-wipe
// traffic still in the run.
func wipeCfg(mech core.Mechanism) Config {
	return Config{
		Params:      Params{Fanout: 10, NodeProcs: 8, Fill: 0.7},
		InitialKeys: 200,
		Threads:     3,
		LookupFrac:  0.2,
		KeySpace:    1 << 16,
		Scheme:      core.Scheme{Mechanism: mech},
		Warmup:      10000,
		Measure:     70000,
		Faults:      &fault.Spec{Windows: []fault.Window{{Proc: 2, Start: 60000, Dur: 6000, Wipe: true}}},
	}
}

// TestWipeRecoveryPreservesKeySet is the headline durability check: a
// loss-inducing crash of a node processor mid-run must not lose a
// single acked insert or resurrect a deleted one, for every mechanism.
func TestWipeRecoveryPreservesKeySet(t *testing.T) {
	for _, mech := range []core.Mechanism{core.Migrate, core.RPC, core.SharedMem, core.ObjMigrate} {
		res := RunExperiment(wipeCfg(mech))
		if res.InvariantErr != "" {
			t.Errorf("%v: %s", mech, res.InvariantErr)
		}
		if res.Recovery == nil {
			t.Fatalf("%v: wipe window did not switch durability on", mech)
		}
		if res.Recovery.Wipes != 1 {
			t.Errorf("%v: %d wipes recovered, want 1", mech, res.Recovery.Wipes)
		}
		if res.Recovery.Restores == 0 || res.Recovery.RecoveryCycles == 0 {
			t.Errorf("%v: recovery did no work: %+v", mech, *res.Recovery)
		}
		if res.Recovery.Appends == 0 {
			t.Errorf("%v: no WAL appends despite insert workload", mech)
		}
	}
}

// TestWipeRecoveryDeterministic re-runs an identical wipe config and
// requires byte-for-byte identical results and recovery counters — the
// reproducible-recovery-trace contract.
func TestWipeRecoveryDeterministic(t *testing.T) {
	a := RunExperiment(wipeCfg(core.Migrate))
	b := RunExperiment(wipeCfg(core.Migrate))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("wipe recovery runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestDurableNoWipeVerifies forces the WAL on without any fault: the
// run must log, never recover, and still pass full key-set
// verification (the WAL path must not perturb tree contents).
func TestDurableNoWipeVerifies(t *testing.T) {
	cfg := wipeCfg(core.RPC)
	cfg.Faults = nil
	cfg.Durable = true
	res := RunExperiment(cfg)
	if res.InvariantErr != "" {
		t.Errorf("durable fault-free run failed verification: %s", res.InvariantErr)
	}
	if res.Recovery == nil || res.Recovery.Appends == 0 {
		t.Fatalf("durable run logged nothing")
	}
	if res.Recovery.Wipes != 0 {
		t.Errorf("no wipe scheduled but %d recoveries ran", res.Recovery.Wipes)
	}
}

// TestNonWipeCrashStaysNonDurable: a plain crash window (messages lost,
// state kept) must not switch the durability subsystem on — that is the
// A/B identity contract's trigger condition.
func TestNonWipeCrashStaysNonDurable(t *testing.T) {
	cfg := wipeCfg(core.Migrate)
	cfg.Faults = &fault.Spec{Windows: []fault.Window{{Proc: 2, Start: 60000, Dur: 6000}}}
	res := RunExperiment(cfg)
	if res.Recovery != nil {
		t.Fatalf("non-wipe crash window switched durability on")
	}
	if res.InvariantErr != "" {
		t.Errorf("crash-window run failed verification: %s", res.InvariantErr)
	}
}

// scanCap bounds the negative tests' ordinal search; the wipe sits near
// the end of the run so a detectable pre-wipe record is close to the
// last ordinal.
const scanCap = 60

// TestDropAppendFiresChecker loses one acked insert's WAL record; after
// the wipe the tree reverts that mutation and VerifyKeySet must report
// the damage.
func TestDropAppendFiresChecker(t *testing.T) {
	cfg := wipeCfg(core.Migrate)
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	// Determinism makes the scan sound: the clean run fixes the append
	// schedule, so ordinal n names the same record in every run.
	for n, tried := clean.Recovery.Appends, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthAppend = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if !strings.Contains(res.InvariantErr, "lost") && !strings.Contains(res.InvariantErr, "key") {
			t.Errorf("unexpected verdict: %s", res.InvariantErr)
		}
		if res.Recovery.AppendDropped != 1 {
			t.Errorf("AppendDropped = %d, want 1", res.Recovery.AppendDropped)
		}
		return
	}
	t.Fatalf("no dropped append detected within %d ordinals of %d", scanCap, clean.Recovery.Appends)
}

// TestDropReplayFiresChecker skips one record during recovery replay;
// the node reverts to an older image and the checker must fire.
func TestDropReplayFiresChecker(t *testing.T) {
	cfg := wipeCfg(core.Migrate)
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	for n, tried := clean.Recovery.Replays, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthReplay = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if res.Recovery.ReplayDropped != 1 {
			t.Errorf("ReplayDropped = %d, want 1", res.Recovery.ReplayDropped)
		}
		return
	}
	t.Fatalf("no dropped replay detected within %d ordinals of %d", scanCap, clean.Recovery.Replays)
}
