package btree

import (
	"testing"

	"compmig/internal/core"
	"compmig/internal/sim"
)

func checkDelete(t *testing.T, scheme core.Scheme) {
	t.Helper()
	p := DefaultParams()
	p.Fanout = 12
	p.NodeProcs = 6
	keys := seqKeys(300, 4) // 4, 8, ..., 1200
	e := buildEnv(t, scheme, p, 1, keys)
	var gone, stayed, phantom int
	e.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, p.NodeProcs)
		for i := 1; i <= 100; i++ {
			if e.tr.Delete(task, uint64(i)*8) { // delete every other key
				gone++
			}
			if e.tr.Delete(task, uint64(i)*8+1) { // never present
				phantom++
			}
		}
		for i := 1; i <= 100; i++ {
			if e.tr.Lookup(task, uint64(i*8)) {
				stayed++ // should all be gone
			}
		}
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gone != 100 || phantom != 0 || stayed != 0 {
		t.Fatalf("scheme %s: gone=%d phantom=%d stayed=%d", scheme.Name(), gone, phantom, stayed)
	}
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatalf("scheme %s: %v", scheme.Name(), err)
	}
	if got := e.tr.KeyCount(); got != 200 {
		t.Fatalf("scheme %s: key count = %d, want 200", scheme.Name(), got)
	}
}

func TestDeleteCM(t *testing.T)  { checkDelete(t, core.Scheme{Mechanism: core.Migrate}) }
func TestDeleteRPC(t *testing.T) { checkDelete(t, core.Scheme{Mechanism: core.RPC}) }
func TestDeleteSM(t *testing.T)  { checkDelete(t, core.Scheme{Mechanism: core.SharedMem}) }
func TestDeleteOM(t *testing.T)  { checkDelete(t, core.Scheme{Mechanism: core.ObjMigrate}) }
func TestDeleteCMRepl(t *testing.T) {
	checkDelete(t, core.Scheme{Mechanism: core.Migrate, Replication: true})
}

// TestDeleteEmptiesLeaf drains a whole leaf: lazy deletion leaves the
// empty node in the chain and everything keeps working.
func TestDeleteEmptiesLeaf(t *testing.T) {
	p := DefaultParams()
	p.Fanout = 4
	p.NodeProcs = 3
	e := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, p, 1, seqKeys(20, 2))
	e.eng.Spawn("req", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, 3)
		for i := 1; i <= 20; i++ {
			e.tr.Delete(task, uint64(i)*2)
		}
		// The tree is now empty; inserts into drained leaves still work.
		for i := 1; i <= 20; i++ {
			if !e.tr.Insert(task, uint64(i)*3) {
				t.Errorf("re-insert %d failed", i*3)
			}
		}
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := e.tr.KeyCount(); got != 20 {
		t.Fatalf("key count = %d, want 20", got)
	}
}

// TestMixedInsertDeleteConcurrent interleaves all three operations from
// several threads and validates against the final key census.
func TestMixedInsertDeleteConcurrent(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.SharedMem},
	} {
		p := DefaultParams()
		p.Fanout = 6
		p.NodeProcs = 5
		e := buildEnv(t, scheme, p, 4, seqKeys(50, 10))
		for i := 0; i < 4; i++ {
			i := i
			e.eng.Spawn("mix", sim.Time(i*5), func(th *sim.Thread) {
				task := e.rt.NewTask(th, p.NodeProcs+i)
				// Each thread owns a disjoint key range so the final
				// census is deterministic despite interleaving.
				base := uint64(100000 * (i + 1))
				for k := uint64(0); k < 30; k++ {
					e.tr.Insert(task, base+k)
				}
				for k := uint64(0); k < 30; k += 2 {
					e.tr.Delete(task, base+k)
				}
				e.tr.Lookup(task, base+1)
			})
		}
		if err := e.eng.Run(); err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		if err := e.tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", scheme.Name(), err)
		}
		// 50 initial + 4 threads × (30 inserted − 15 deleted).
		if got := e.tr.KeyCount(); got != 50+4*15 {
			t.Fatalf("%s: key count = %d, want %d", scheme.Name(), got, 50+4*15)
		}
	}
}
