package btree

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
)

// Shared-memory operations: the requesting thread stays on its own
// processor and walks the tree through its hardware cache. Node metadata
// is read via the header line, binary-search probes touch individual key
// lines, and the chosen child pointer touches one child line — so a
// descent moves a handful of 16-byte lines instead of whole nodes, and
// repeated traversals hit only if those lines survive in the 64K cache
// (the paper measured <7% hits on the 10k-key tree).

// chargeProbeReads prices the cache-line traffic of a binary search.
func (tr *Tree) chargeProbeReads(t *core.Task, nd *node, touched []int) {
	th, proc := t.Thread(), t.Proc()
	for _, ln := range keyLines(touched) {
		tr.shm.Read(th, proc, nd.addrKeys+mem.Addr(ln*mem.LineBytes), 8)
	}
}

// keyLineAddr returns the address of the key line holding index i.
func keyLineAddr(nd *node, i int) mem.Addr {
	return nd.addrKeys + mem.Addr(i*8/mem.LineBytes*mem.LineBytes)
}

// prefetchProbes starts fetching the lines binary search will touch
// first. The opening probe positions are data-independent (mid, then one
// of the quarter points, ...), so the first few levels of the probe tree
// can be fetched before the comparisons run — §2.5's prefetching,
// without flooding the home module with the whole array.
func (tr *Tree) prefetchProbes(proc int, nd *node) {
	n := len(nd.keys)
	if n == 0 {
		return
	}
	for _, pos := range []int{n / 2, n / 4, 3 * n / 4} {
		if pos < n {
			tr.shm.Prefetch(proc, keyLineAddr(nd, pos), 8)
		}
	}
}

func (tr *Tree) lookupSM(t *core.Task, key uint64) bool {
	th, proc := t.Thread(), t.Proc()
	cur := tr.root
	for hops := 0; ; hops++ {
		nd := tr.rt.Objects.State(cur).(*node)
		if tr.SMPrefetch {
			tr.prefetchProbes(proc, nd)
		}
		tr.shm.Read(th, proc, nd.addrHeader, 16)
		t.Work(searchCycles(len(nd.keys)))
		if nd.leaf {
			found, lat, touched := nd.leafContains(key)
			tr.chargeProbeReads(t, nd, touched)
			if !lat.IsNil() {
				cur = lat
				continue
			}
			return found
		}
		next, lateral, touched := nd.route(key)
		tr.chargeProbeReads(t, nd, touched)
		if !lateral {
			i, _ := probe(nd.keys, key)
			tr.shm.Read(th, proc, nd.addrKids+mem.Addr(i*8), 8)
		}
		cur = next
		if hops > 1000 {
			panic("btree: SM descent did not terminate")
		}
	}
}

// lockSM acquires a node's writer lock through shared memory: an atomic
// RMW on the header line models test-and-set; the sim mutex models the
// blocking behaviour under contention.
func (tr *Tree) lockSM(t *core.Task, nd *node) {
	tr.shm.RMW(t.Thread(), t.Proc(), nd.addrHeader)
	t.Work(tr.LockCycles)
	nd.lock.Lock(t.Thread())
}

func (tr *Tree) unlockSM(t *core.Task, nd *node) {
	nd.lock.Unlock(t.Thread())
	tr.shm.Write(t.Thread(), t.Proc(), nd.addrHeader, 8)
}

// splitSM splits a locked node and charges the write traffic of
// populating the sibling's lines and updating both headers.
func (tr *Tree) splitSM(t *core.Task, nd *node) (gid.GID, splitInfo) {
	g, info := tr.splitLocked(t, nd)
	r := tr.rt.Objects.State(g).(*node)
	th, proc := t.Thread(), t.Proc()
	tr.shm.Write(th, proc, r.addrHeader, 16)
	tr.shm.Write(th, proc, r.addrKeys, uint64(8*len(r.keys)))
	if !r.leaf {
		tr.shm.Write(th, proc, r.addrKids, uint64(8*len(r.children)))
	}
	tr.shm.Write(th, proc, nd.addrHeader, 16)
	return g, info
}

func (tr *Tree) insertSM(t *core.Task, key uint64) bool {
	th, proc := t.Thread(), t.Proc()
	cur := tr.root
	var path []gid.GID
	phase := phaseDescend
	var oldBound, sep uint64
	var newChild gid.GID
	inserted := false

	// ascend routes a finished split toward the parent level, growing the
	// tree at the root. It returns (done, nextCur).
	ascend := func(info splitInfo) (bool, gid.GID) {
		oldBound, sep, newChild = info.OldBound, info.Sep, info.NewNode
		phase = phaseUp
		if len(path) > 0 {
			next := path[len(path)-1]
			path = path[:len(path)-1]
			return false, next
		}
		if tr.growRoot(t, cur, info, info.NewNode) {
			return true, gid.Nil
		}
		return false, tr.root
	}

	for hops := 0; ; hops++ {
		if hops > 4000 {
			panic("btree: SM insert did not terminate")
		}
		nd := tr.rt.Objects.State(cur).(*node)
		tr.shm.Read(th, proc, nd.addrHeader, 16)

		if phase == phaseUp {
			if oldBound > nd.high {
				cur = nd.right
				continue
			}
			tr.lockSM(t, nd)
			if oldBound > nd.high {
				tr.unlockSM(t, nd)
				cur = nd.right
				continue
			}
			t.Work(searchCycles(len(nd.keys)) + tr.InsertCycles)
			i, touched := probe(nd.keys, oldBound)
			tr.chargeProbeReads(t, nd, touched)
			tr.shm.Write(th, proc, keyLineAddr(nd, i), 16)
			tr.shm.Write(th, proc, nd.addrKids+mem.Addr(i*8), 16)
			if !nd.insertChild(oldBound, sep, newChild) {
				tr.unlockSM(t, nd)
				cur = nd.right
				continue
			}
			if len(nd.keys) <= tr.p.Fanout {
				tr.logNode(t, nd)
				tr.unlockSM(t, nd)
				return inserted
			}
			_, info := tr.splitSM(t, nd)
			tr.unlockSM(t, nd)
			done, next := ascend(info)
			if done {
				return inserted
			}
			cur = next
			continue
		}

		if !nd.leaf {
			t.Work(searchCycles(len(nd.keys)))
			next, lateral, touched := nd.route(key)
			tr.chargeProbeReads(t, nd, touched)
			if !lateral {
				i, _ := probe(nd.keys, key)
				tr.shm.Read(th, proc, nd.addrKids+mem.Addr(i*8), 8)
				path = append(path, cur)
			}
			cur = next
			continue
		}

		// Leaf insert.
		if key > nd.high {
			cur = nd.right
			continue
		}
		tr.lockSM(t, nd)
		if key > nd.high {
			tr.unlockSM(t, nd)
			cur = nd.right
			continue
		}
		t.Work(searchCycles(len(nd.keys)) + tr.InsertCycles)
		i, touched := probe(nd.keys, key)
		tr.chargeProbeReads(t, nd, touched)
		tr.shm.Write(th, proc, keyLineAddr(nd, i), 16)
		inserted = nd.leafInsert(key)
		if len(nd.keys) <= tr.p.Fanout {
			if inserted {
				tr.logNode(t, nd)
			}
			tr.unlockSM(t, nd)
			return inserted
		}
		_, info := tr.splitSM(t, nd)
		tr.unlockSM(t, nd)
		done, next := ascend(info)
		if done {
			return inserted
		}
		cur = next
	}
}
