// Package btree implements the paper's second application: a distributed
// B-tree in the style of Wang [Wan91] — a B-link tree supporting
// concurrent lookup and insert (no delete, matching the paper's
// simplification), with nodes laid out randomly across processors.
//
// Every node covers a half-open key interval (low, high]; an interior
// node's keys are the inclusive upper bounds of its children, and the
// rightmost bound of the rightmost spine is MaxKey. Nodes carry right
// sibling links, so a descent that lands on a node whose range has
// shrunk (because of a concurrent split it did not see) recovers by
// moving laterally — the classic B-link trick Wang's algorithm relies
// on. This keeps writers from locking whole root-to-leaf paths.
package btree

import (
	"sort"

	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/sim"
)

// MaxKey is the sentinel upper bound of the rightmost spine.
const MaxKey = ^uint64(0)

// node is the private state of one B-tree node object.
type node struct {
	leaf     bool
	keys     []uint64  // leaf: stored keys; interior: child upper bounds
	children []gid.GID // interior only, len == len(keys)
	right    gid.GID   // right sibling (Nil at the end of a level)
	high     uint64    // inclusive upper bound of this node's range
	// kidsAreLeaves lets a descent step tell its caller whether the next
	// hop is a leaf; splits never change a node's level, so it is stable.
	kidsAreLeaves bool

	// g is the node's own GID, set at allocation, so code holding only
	// the state pointer (RPC handler bodies, the durability layer) can
	// name the node without a reverse lookup.
	g gid.GID

	lock sim.Mutex // writer lock

	// Shared-memory layout (SM scheme only).
	addrHeader mem.Addr
	addrKeys   mem.Addr
	addrKids   mem.Addr
}

// searchCycles models the user-code cost of a bounded binary search over
// n keys: a fixed part plus a per-probe part. Smaller nodes are cheaper
// to service — the effect the paper leans on in the fanout-10 experiment.
func searchCycles(n int) uint64 {
	probes := uint64(1)
	for m := 1; m < n; m *= 2 {
		probes++
	}
	return 20 + 10*probes
}

// probe runs binary search for the first index i with key <= keys[i],
// recording the probed indices (for shared-memory line charging).
// It returns (index, touched); index == len(keys) when key exceeds all.
func probe(keys []uint64, key uint64) (int, []int) {
	var touched []int
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		touched = append(touched, mid)
		if key <= keys[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, touched
}

// route returns the next hop for key from an interior node: either a
// child, or the right sibling when the key lies beyond this node's range
// (a lateral B-link move). The touched probe indices are also returned.
func (nd *node) route(key uint64) (next gid.GID, lateral bool, touched []int) {
	if key > nd.high {
		return nd.right, true, nil
	}
	i, touched := probe(nd.keys, key)
	if i >= len(nd.children) {
		i = len(nd.children) - 1 // defensive: high bound guarantees i in range
	}
	return nd.children[i], false, touched
}

// leafContains reports whether the leaf stores key (with probe trace).
// When key is beyond the leaf's range it returns the right sibling.
func (nd *node) leafContains(key uint64) (found bool, lateral gid.GID, touched []int) {
	if key > nd.high {
		return false, nd.right, nil
	}
	i, touched := probe(nd.keys, key)
	return i < len(nd.keys) && nd.keys[i] == key, gid.Nil, touched
}

// leafInsert adds key to the leaf, reporting whether it was new. The
// caller must hold the node lock and have verified key <= high.
func (nd *node) leafInsert(key uint64) bool {
	i, _ := probe(nd.keys, key)
	if i < len(nd.keys) && nd.keys[i] == key {
		return false
	}
	nd.keys = append(nd.keys, 0)
	copy(nd.keys[i+1:], nd.keys[i:])
	nd.keys[i] = key
	return true
}

// insertChild installs a freshly split sibling into an interior node:
// the child whose bound was oldBound now ends at newSep, and newChild
// covers (newSep, oldBound]. The caller must hold the node lock.
// It reports false when oldBound is not found (the entry moved right
// under a concurrent split; the caller retries laterally).
func (nd *node) insertChild(oldBound, newSep uint64, newChild gid.GID) bool {
	i := sort.Search(len(nd.keys), func(j int) bool { return nd.keys[j] >= oldBound })
	if i >= len(nd.keys) || nd.keys[i] != oldBound {
		return false
	}
	nd.keys[i] = newSep
	nd.keys = append(nd.keys, 0)
	nd.children = append(nd.children, gid.Nil)
	copy(nd.keys[i+2:], nd.keys[i+1:])
	copy(nd.children[i+2:], nd.children[i+1:])
	nd.keys[i+1] = oldBound
	nd.children[i+1] = newChild
	return true
}

// splitInfo describes the outcome of a node split: the surviving node now
// ends at Sep, and NewNode covers (Sep, OldBound].
type splitInfo struct {
	Sep      uint64
	OldBound uint64
	NewNode  gid.GID
}

// split moves the upper half of nd into a fresh node and returns that
// node's state plus the split description. The caller must hold the
// lock, allocate a GID for the new state, and link it via nd.right.
func (nd *node) split() (*node, splitInfo) {
	mid := len(nd.keys) / 2
	r := &node{
		leaf:          nd.leaf,
		keys:          append([]uint64{}, nd.keys[mid:]...),
		high:          nd.high,
		kidsAreLeaves: nd.kidsAreLeaves,
	}
	if !nd.leaf {
		r.children = append([]gid.GID{}, nd.children[mid:]...)
	}
	r.right = nd.right
	info := splitInfo{Sep: nd.keys[mid-1], OldBound: nd.high}
	nd.keys = nd.keys[:mid:mid]
	if !nd.leaf {
		nd.children = nd.children[:mid:mid]
	}
	nd.high = info.Sep
	return r, info
}

// keyLines returns the distinct cache-line offsets (within the key
// array) covering the given probed positions; used for SM charging.
func keyLines(touched []int) []int {
	seen := map[int]bool{}
	var lines []int
	for _, pos := range touched {
		ln := pos * 8 / mem.LineBytes
		if !seen[ln] {
			seen[ln] = true
			lines = append(lines, ln)
		}
	}
	return lines
}
