package btree

import (
	"testing"

	"compmig/internal/core"
	"compmig/internal/sim"
)

// expectScan counts keys >= lo in the sorted population, capped at limit
// — the oracle every mechanism must match.
func expectScan(keys []uint64, lo uint64, limit int) int {
	n := 0
	for _, k := range keys {
		if k >= lo {
			n++
			if n == limit {
				break
			}
		}
	}
	return n
}

func runScan(t *testing.T, e *env, lo uint64, limit int) int {
	t.Helper()
	p := e.tr.p
	got := -1
	e.eng.Spawn("scan", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, p.NodeProcs)
		got = e.tr.Scan(task, lo, limit)
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestScanMatchesOracle checks every scan mechanism against the sorted
// population, across range starts that begin mid-leaf, at a stored key,
// between keys, and beyond the population.
func TestScanMatchesOracle(t *testing.T) {
	p := DefaultParams()
	p.NodeProcs = 8
	keys := seqKeys(2000, 3)
	cases := []struct {
		lo    uint64
		limit int
	}{
		{1, 10},       // before the first key
		{3, 1},        // exactly the first key
		{2999, 64},    // mid-population, between keys
		{3000, 64},    // mid-population, stored key
		{5994, 10},    // near the end: fewer than limit remain
		{6001, 5},     // beyond every key
		{0, 2000},     // the whole population
		{4000, 10000}, // limit exceeds the remainder
	}
	for _, scheme := range []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.Migrate},
		{Mechanism: core.SharedMem},
	} {
		for _, c := range cases {
			e := buildEnv(t, scheme, p, 1, keys)
			got := runScan(t, e, c.lo, c.limit)
			want := expectScan(keys, c.lo, c.limit)
			if got != want {
				t.Errorf("%v scan(lo=%d, limit=%d) = %d, want %d",
					scheme.Mechanism, c.lo, c.limit, got, want)
			}
		}
	}
}

// TestScanAfterInserts checks scans see keys added through the normal
// insert path (splits included).
func TestScanAfterInserts(t *testing.T) {
	p := DefaultParams()
	p.Fanout = 10
	p.NodeProcs = 8
	e := buildEnv(t, core.Scheme{Mechanism: core.Migrate}, p, 1, seqKeys(100, 10))
	e.eng.Spawn("writer", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, p.NodeProcs)
		for k := uint64(5); k < 1000; k += 10 {
			e.tr.Insert(task, k)
		}
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Population is now {5,10,15,...,995,1000}: 200 keys.
	if got := runScan(t, e, 0, 1000); got != 200 {
		t.Fatalf("scan over grown tree = %d, want 200", got)
	}
	if got := runScan(t, e, 500, 20); got != 20 {
		t.Fatalf("bounded scan = %d, want 20", got)
	}
}

// TestScanViaPanicsOnObjMigrate pins the unsupported-mechanism contract.
func TestScanViaPanicsOnObjMigrate(t *testing.T) {
	p := DefaultParams()
	p.NodeProcs = 4
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, p, 1, seqKeys(100, 3))
	e.eng.Spawn("scan", 0, func(th *sim.Thread) {
		task := e.rt.NewTask(th, p.NodeProcs)
		defer func() {
			if recover() == nil {
				t.Error("ScanVia(ObjMigrate) did not panic")
			}
		}()
		e.tr.ScanVia(task, 1, 10, core.ObjMigrate)
	})
	if err := e.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
