package btree

import (
	"testing"

	"compmig/internal/core"
)

// TestRootBottleneckRelievedByReplication demonstrates §4.2's analysis
// directly: under computation migration at zero think time, the root's
// processor saturates ("activations arrive at a rate greater than the
// rate at which the processor completes each activation"); replicating
// the root's content pulls its utilization down and lifts throughput.
func TestRootBottleneckRelievedByReplication(t *testing.T) {
	run := func(repl bool) Result {
		return RunExperiment(Config{
			Scheme: core.Scheme{Mechanism: core.Migrate, Replication: repl},
			Think:  0, Warmup: 10000, Measure: 60000,
		})
	}
	plain := run(false)
	replicated := run(true)

	if plain.RootUtilization < 0.7 {
		t.Errorf("plain CM root utilization = %.2f, expected a saturated root", plain.RootUtilization)
	}
	if replicated.RootUtilization > plain.RootUtilization/2 {
		t.Errorf("replication left root utilization at %.2f (plain %.2f)",
			replicated.RootUtilization, plain.RootUtilization)
	}
	if replicated.Throughput <= plain.Throughput {
		t.Errorf("replication did not lift throughput: %.3f vs %.3f",
			replicated.Throughput, plain.Throughput)
	}
	if replicated.P95Latency >= plain.P95Latency {
		t.Errorf("replication did not cut tail latency: %d vs %d",
			replicated.P95Latency, plain.P95Latency)
	}
}

// TestRPCRootAlsoSaturates checks the same bottleneck binds RPC, as the
// paper states ("it is the limiting factor for RPC and computation
// migration throughput").
func TestRPCRootAlsoSaturates(t *testing.T) {
	r := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.RPC},
		Think:  0, Warmup: 10000, Measure: 60000,
	})
	if r.RootUtilization < 0.7 {
		t.Errorf("RPC root utilization = %.2f, expected saturation", r.RootUtilization)
	}
}

// TestThinkTimeDrainsBottleneck confirms that 10000-cycle think time
// (Tables 3/4) takes the root out of saturation — the precondition for
// the paper's CP ≈ SM parity result.
func TestThinkTimeDrainsBottleneck(t *testing.T) {
	r := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.Migrate, Replication: true},
		Think:  10000, Warmup: 10000, Measure: 60000,
	})
	if r.RootUtilization > 0.5 {
		t.Errorf("root utilization = %.2f at think=10000, expected light load", r.RootUtilization)
	}
}
