package btree

import (
	"os"
	"testing"

	"compmig/internal/contgen"
)

// TestGeneratedStubsInSync regenerates the continuation wire stubs from
// the annotated source and checks the committed ops_cm_gen.go matches —
// so hand edits to either side cannot drift apart silently.
func TestGeneratedStubsInSync(t *testing.T) {
	src, err := os.ReadFile("ops_cm.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := contgen.Generate("ops_cm.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("ops_cm_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("ops_cm_gen.go is stale; rerun: go run ./cmd/contgen -in internal/apps/btree/ops_cm.go")
	}
}

// TestGeneratedRPCStubsInSync does the same for the RPC argument/reply
// records in ops_rpc.go.
func TestGeneratedRPCStubsInSync(t *testing.T) {
	src, err := os.ReadFile("ops_rpc.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := contgen.Generate("ops_rpc.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("ops_rpc_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("ops_rpc_gen.go is stale; rerun: go run ./cmd/contgen -in internal/apps/btree/ops_rpc.go")
	}
}

// TestGeneratedDeleteStubsInSync covers delete.go's generated record.
func TestGeneratedDeleteStubsInSync(t *testing.T) {
	src, err := os.ReadFile("delete.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := contgen.Generate("delete.go", src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("delete_gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("delete_gen.go is stale; rerun: go run ./cmd/contgen -in internal/apps/btree/delete.go")
	}
}
