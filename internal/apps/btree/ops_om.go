package btree

import (
	"compmig/internal/core"
	"compmig/internal/gid"
)

// Object-migration operations (the Emerald-style mechanism the paper
// wanted to compare, here as an extension): every node the operation
// touches is pulled to the requesting processor first, then accessed
// locally. Upper-level nodes are touched by everyone, so concurrent
// requesters steal them from each other — whole-object migration
// behaves like data migration without replication, which is exactly
// what §2.2 predicts makes it a poor fit for shared structures.

// nodeStateWords sizes a node's wire image: keys, children, header.
func nodeStateWords(nd *node) uint64 {
	words := uint64(2*len(nd.keys)) + 8
	if !nd.leaf {
		words += uint64(2 * len(nd.children))
	}
	return words
}

// pullNode brings a node to the requester and returns its state. The
// caller must do its host-level access immediately after (no yield), so
// the access is atomic even if the node is stolen right away.
func (tr *Tree) pullNode(t *core.Task, g gid.GID) *node {
	for !t.IsLocal(g) {
		nd := tr.rt.Objects.State(g).(*node)
		if err := t.PullObject(g, nodeStateWords(nd)); err != nil {
			panic("btree: node pull failed: " + err.Error())
		}
	}
	return tr.rt.Objects.State(g).(*node)
}

func (tr *Tree) lookupOM(t *core.Task, key uint64) bool {
	cur := tr.root
	for hops := 0; ; hops++ {
		if hops > 1000 {
			panic("btree: OM descent did not terminate")
		}
		nd := tr.pullNode(t, cur)
		if nd.leaf {
			found, lat, _ := nd.leafContains(key)
			t.Work(searchCycles(len(nd.keys)))
			if !lat.IsNil() {
				cur = lat
				continue
			}
			return found
		}
		next, _, _ := nd.route(key)
		t.Work(searchCycles(len(nd.keys)))
		cur = next
	}
}

func (tr *Tree) insertOM(t *core.Task, key uint64) bool {
	cur := tr.root
	var path []gid.GID
	phase := phaseDescend
	var oldBound, sep uint64
	var newChild gid.GID
	inserted := false

	for hops := 0; ; hops++ {
		if hops > 4000 {
			panic("btree: OM insert did not terminate")
		}
		nd := tr.pullNode(t, cur)

		if phase == phaseUp {
			if oldBound > nd.high {
				cur = nd.right
				continue
			}
			t.Work(tr.LockCycles)
			nd.lock.Lock(t.Thread())
			if oldBound > nd.high {
				nd.lock.Unlock(t.Thread())
				cur = nd.right
				continue
			}
			t.Work(searchCycles(len(nd.keys)) + tr.InsertCycles)
			if !nd.insertChild(oldBound, sep, newChild) {
				nd.lock.Unlock(t.Thread())
				cur = nd.right
				continue
			}
			if len(nd.keys) <= tr.p.Fanout {
				tr.logNode(t, nd)
				nd.lock.Unlock(t.Thread())
				return inserted
			}
			_, info := tr.splitLocked(t, nd)
			nd.lock.Unlock(t.Thread())
			oldBound, sep, newChild = info.OldBound, info.Sep, info.NewNode
			if len(path) > 0 {
				cur = path[len(path)-1]
				path = path[:len(path)-1]
				continue
			}
			if tr.growRoot(t, cur, info, info.NewNode) {
				return inserted
			}
			cur = tr.root
			continue
		}

		if !nd.leaf {
			next, lateral, _ := nd.route(key)
			t.Work(searchCycles(len(nd.keys)))
			if !lateral {
				path = append(path, cur)
			}
			cur = next
			continue
		}

		if key > nd.high {
			cur = nd.right
			continue
		}
		t.Work(tr.LockCycles)
		nd.lock.Lock(t.Thread())
		if key > nd.high {
			nd.lock.Unlock(t.Thread())
			cur = nd.right
			continue
		}
		t.Work(searchCycles(len(nd.keys)) + tr.InsertCycles)
		inserted = nd.leafInsert(key)
		if len(nd.keys) <= tr.p.Fanout {
			if inserted {
				tr.logNode(t, nd)
			}
			nd.lock.Unlock(t.Thread())
			return inserted
		}
		_, info := tr.splitLocked(t, nd)
		nd.lock.Unlock(t.Thread())
		oldBound, sep, newChild = info.OldBound, info.Sep, info.NewNode
		phase = phaseUp
		if len(path) > 0 {
			cur = path[len(path)-1]
			path = path[:len(path)-1]
			continue
		}
		if tr.growRoot(t, cur, info, info.NewNode) {
			return inserted
		}
		cur = tr.root
	}
}
