package btree

import (
	"fmt"

	"compmig/internal/gid"
)

// checkNode validates the subtree rooted at g against its advertised key
// interval (low, high] and leaf depth. It is host-level and intended for
// tests at quiescence, when all splits have fully propagated.
func (tr *Tree) checkNode(g gid.GID, low, high uint64, depth int) error {
	nd := tr.rt.Objects.State(g).(*node)
	if nd.high != high {
		return fmt.Errorf("node %#x: high=%d, parent bound %d", uint64(g), nd.high, high)
	}
	if len(nd.keys) == 0 {
		if nd.leaf {
			return nil // empty leaf: legal after lazy deletes (or empty tree)
		}
		return fmt.Errorf("node %#x: empty interior node", uint64(g))
	}
	for i := 1; i < len(nd.keys); i++ {
		if nd.keys[i-1] >= nd.keys[i] {
			return fmt.Errorf("node %#x: keys not strictly increasing at %d", uint64(g), i)
		}
	}
	if nd.leaf {
		if depth != 1 {
			return fmt.Errorf("node %#x: leaf at depth %d levels above bottom", uint64(g), depth)
		}
		for _, k := range nd.keys {
			if k <= low && low != 0 || k > high {
				return fmt.Errorf("leaf %#x: key %d outside (%d,%d]", uint64(g), k, low, high)
			}
		}
		return nil
	}
	if depth == 1 {
		return fmt.Errorf("node %#x: interior at leaf depth", uint64(g))
	}
	if len(nd.children) != len(nd.keys) {
		return fmt.Errorf("node %#x: %d children for %d keys", uint64(g), len(nd.children), len(nd.keys))
	}
	if nd.keys[len(nd.keys)-1] != nd.high {
		return fmt.Errorf("node %#x: last key %d != high %d", uint64(g), nd.keys[len(nd.keys)-1], nd.high)
	}
	prev := low
	for i, ch := range nd.children {
		if err := tr.checkNode(ch, prev, nd.keys[i], depth-1); err != nil {
			return err
		}
		prev = nd.keys[i]
	}
	return nil
}

// AllKeys walks the leaf level (host-level) and returns every stored key
// in order. Used as a test oracle.
func (tr *Tree) AllKeys() []uint64 {
	g := tr.root
	for {
		nd := tr.rt.Objects.State(g).(*node)
		if nd.leaf {
			break
		}
		g = nd.children[0]
	}
	var keys []uint64
	for !g.IsNil() {
		nd := tr.rt.Objects.State(g).(*node)
		keys = append(keys, nd.keys...)
		g = nd.right
	}
	return keys
}

// KeyCount returns the number of stored keys.
func (tr *Tree) KeyCount() int { return len(tr.AllKeys()) }

// VerifyKeySet checks the tree's full post-run integrity: structural
// B-link invariants (CheckInvariants), plus exact key-set equality
// against the initial load and the host-tracked set of successfully
// inserted keys. Fault-injected runs use it to prove recovery preserved
// exactly-once semantics — a lost insert shows up as a missing key, a
// replayed one as a duplicate.
func (tr *Tree) VerifyKeySet(initial []uint64, inserted map[uint64]struct{}) error {
	if err := tr.CheckInvariants(); err != nil {
		return err
	}
	got := tr.AllKeys()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			return fmt.Errorf("btree: leaf keys not strictly increasing: %d then %d (duplicate insert?)",
				got[i-1], got[i])
		}
	}
	gotSet := make(map[uint64]struct{}, len(got))
	for _, k := range got {
		gotSet[k] = struct{}{}
	}
	// Iterate the expectations in deterministic order so a given failure
	// always reports the same key.
	for _, k := range initial {
		if _, ok := gotSet[k]; !ok {
			return fmt.Errorf("btree: initial key %d lost", k)
		}
	}
	lost := uint64(0)
	for k := range inserted {
		if _, ok := gotSet[k]; !ok && (lost == 0 || k < lost) {
			lost = k
		}
	}
	if lost != 0 {
		return fmt.Errorf("btree: inserted key %d lost", lost)
	}
	want := len(inserted)
	for _, k := range initial {
		if _, dup := inserted[k]; !dup {
			want++
		}
	}
	if len(got) != want {
		return fmt.Errorf("btree: tree holds %d keys, want %d (phantom insert?)", len(got), want)
	}
	return nil
}
