package btree

import (
	"fmt"
	"testing"

	"compmig/internal/core"
)

// TestPolicyStaticIdentity: a B-tree run under -policy static:<mech>
// must simulate the exact same machine as a run hard-wired to <mech>'s
// scheme — every measured metric matches.
func TestPolicyStaticIdentity(t *testing.T) {
	cases := []struct {
		spec string
		mech core.Mechanism
	}{
		{"static:rpc", core.RPC},
		{"static:cm", core.Migrate},
		{"static:sm", core.SharedMem},
		{"static:om", core.ObjMigrate},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			base := Config{InitialKeys: 2000, Threads: 8, Think: 1000, Seed: 11,
				Warmup: 5000, Measure: 40000, Scheme: core.Scheme{Mechanism: tc.mech}}
			plain := RunExperiment(base)
			pol := base
			pol.Policy = tc.spec
			adapted := RunExperiment(pol)

			if got, want := metricString(adapted), metricString(plain); got != want {
				t.Fatalf("policy %s diverged from scheme run:\n policy: %s\n scheme: %s",
					tc.spec, got, want)
			}
			var other uint64
			for m, c := range adapted.Decisions {
				if core.Mechanism(m) != tc.mech {
					other += c
				}
			}
			if other != 0 || adapted.Decisions[tc.mech] == 0 {
				t.Fatalf("decisions = %v, want all under %v", adapted.Decisions, tc.mech)
			}
		})
	}
}

// metricString flattens every simulated metric of a Result for equality
// comparison (host-side fields like Policy and Trace excluded).
func metricString(r Result) string {
	return fmt.Sprintf("tput=%v bw=%v ops=%d lat=%v hit=%v wpo=%v rc=%d h=%d p95=%d util=%v moves=%d fwd=%d",
		r.Throughput, r.Bandwidth, r.Ops, r.MeanLatency, r.HitRate,
		r.WordsPerOp, r.RootChildren, r.Height, r.P95Latency,
		r.RootUtilization, r.ObjectMoves, r.Forwards)
}

// TestPolicyAdaptiveRuns: adaptive policies complete with a valid tree
// and the costmodel beats the worst static mechanism.
func TestPolicyAdaptiveRuns(t *testing.T) {
	base := Config{InitialKeys: 2000, Threads: 8, Think: 1000, Seed: 11,
		Warmup: 5000, Measure: 40000}

	worst := -1.0
	for _, m := range []core.Mechanism{core.RPC, core.Migrate, core.SharedMem} {
		c := base
		c.Scheme = core.Scheme{Mechanism: m}
		r := RunExperiment(c)
		if worst < 0 || r.Throughput < worst {
			worst = r.Throughput
		}
	}

	for _, spec := range []string{"costmodel", "bandit"} {
		c := base
		c.Policy = spec
		r := RunExperiment(c)
		var total uint64
		for _, n := range r.Decisions {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: no decisions recorded", spec)
		}
		if spec == "costmodel" && r.Throughput <= worst {
			t.Fatalf("costmodel throughput %.3f does not beat worst static %.3f",
				r.Throughput, worst)
		}
	}
}
