package btree

import (
	"sort"
	"strings"
	"testing"

	"compmig/internal/core"
)

// VerifyKeySet must accept a tree that holds exactly the claimed keys
// and reject every way the claimed and stored sets can disagree.
func TestVerifyKeySet(t *testing.T) {
	initial := seqKeys(500, 3) // 3, 6, ..., 1500
	inserted := map[uint64]struct{}{50: {}, 100: {}, 1501: {}}
	all := append(append([]uint64{}, initial...), 50, 100, 1501)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, DefaultParams(), 1, all)

	if err := e.tr.VerifyKeySet(initial, inserted); err != nil {
		t.Errorf("exact key set rejected: %v", err)
	}

	cases := []struct {
		name     string
		initial  []uint64
		inserted map[uint64]struct{}
		wantSub  string
	}{
		{"lost initial key", append(append([]uint64{}, initial...), 2000), inserted, "initial key 2000 lost"},
		{"lost inserted key", initial, map[uint64]struct{}{50: {}, 100: {}, 1501: {}, 4000: {}}, "inserted key 4000 lost"},
		{"phantom key", initial, map[uint64]struct{}{50: {}, 100: {}}, "phantom insert?"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := e.tr.VerifyKeySet(c.initial, c.inserted)
			if err == nil {
				t.Fatal("disagreement not detected")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q lacks %q", err, c.wantSub)
			}
		})
	}
}

// Re-claiming an initially loaded key as an insert must not double-count
// it in the expected size.
func TestVerifyKeySetInsertOfExistingKey(t *testing.T) {
	initial := seqKeys(100, 1)
	e := buildEnv(t, core.Scheme{Mechanism: core.RPC}, DefaultParams(), 1, initial)
	if err := e.tr.VerifyKeySet(initial, map[uint64]struct{}{7: {}}); err != nil {
		t.Errorf("re-inserted existing key rejected: %v", err)
	}
}
