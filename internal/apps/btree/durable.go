package btree

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/store"
)

// Durability: every committed node mutation logs the node's full image
// into its home processor's WAL (internal/store), so a wipe fault can
// discard node contents and recovery rebuilds them from checkpoint +
// suffix. Full images rather than deltas keep replay idempotent — a
// second wipe of the same processor replays to the same state — at a
// log-bandwidth cost the cycle model charges like any other work.

// encodeNode flattens a node's durable content into log words. The
// layout is versionless and self-sizing: flags, bounds, key count, keys,
// then children for interior nodes. Identity (g), the writer lock, and
// the shared-memory layout addresses are deliberately excluded: they are
// allocation metadata the wipe model preserves, not replayable state.
func encodeNode(nd *node) []uint64 {
	flags := uint64(0)
	if nd.leaf {
		flags |= 1
	}
	if nd.kidsAreLeaves {
		flags |= 2
	}
	blob := make([]uint64, 0, 4+len(nd.keys)+len(nd.children))
	blob = append(blob, flags, nd.high, uint64(nd.right), uint64(len(nd.keys)))
	blob = append(blob, nd.keys...)
	if !nd.leaf {
		for _, ch := range nd.children {
			blob = append(blob, uint64(ch))
		}
	}
	return blob
}

// decodeNodeInto reinstalls an encoded image into nd in place,
// preserving identity, lock state, and shared-memory addresses.
func decodeNodeInto(nd *node, blob []uint64) {
	flags := blob[0]
	nd.leaf = flags&1 != 0
	nd.kidsAreLeaves = flags&2 != 0
	nd.high = blob[1]
	nd.right = gid.GID(blob[2])
	n := int(blob[3])
	nd.keys = append(nd.keys[:0], blob[4:4+n]...)
	nd.children = nd.children[:0]
	if !nd.leaf {
		for _, w := range blob[4+n : 4+2*n] {
			nd.children = append(nd.children, gid.GID(w))
		}
	}
}

// nodeRecord builds the WAL image record for nd's current content.
func nodeRecord(nd *node) store.Record {
	return store.Record{Kind: store.KindState, G: nd.g, Blob: encodeNode(nd)}
}

// logNode durably logs nd's current image at its home, blocking the
// mutating thread when it runs at the home (ack-after-durable) and
// charging the home asynchronously otherwise (a shared-memory frontend
// mutating a remote node). No-op without a WAL.
func (tr *Tree) logNode(t *core.Task, nd *node) {
	if tr.wal == nil {
		return
	}
	tr.wal.Append(t.Thread(), t.Proc(), nodeRecord(nd))
}

// EnableDurability attaches the tree to a store: base images of the
// bulk-loaded nodes seed the checkpoints (loaded state, free of charge),
// and the store's replay/wipe/snapshot hooks are pointed at the tree.
// Apps embedding a tree alongside their own durable state (internal/
// apps/kv) install their own hooks and delegate to SeedImages /
// ApplyRecord / WipeProc instead.
func (tr *Tree) EnableDurability(w *store.Store) {
	tr.wal = w
	tr.SeedImages(w)
	w.OnApply(tr.ApplyRecord)
	w.OnSnapshot(tr.SnapshotBlob)
	w.OnWipe(func(proc int) int {
		tr.WipeProc(proc)
		return tr.rt.WipeVolatile(proc)
	})
}

// SetWAL makes the tree log mutations to w without installing store
// hooks — the embedded-index case where the embedding app owns the
// hooks. SeedImages must be called separately.
func (tr *Tree) SetWAL(w *store.Store) { tr.wal = w }

// SeedImages installs a base image of every current node into its home
// checkpoint. Call at build time, before any simulated mutation.
func (tr *Tree) SeedImages(w *store.Store) {
	for _, g := range tr.nodes {
		w.Seed(nodeRecord(tr.rt.Objects.State(g).(*node)))
	}
}

// ApplyRecord reinstalls one logged node image during recovery replay.
// KindState and KindMoveIn records both carry full images.
func (tr *Tree) ApplyRecord(r store.Record) {
	decodeNodeInto(tr.rt.Objects.State(r.G).(*node), r.Blob)
}

// SnapshotBlob encodes a node's state for a move-in record (object-
// migration schemes pull nodes across processors while durable).
func (tr *Tree) SnapshotBlob(g gid.GID) []uint64 {
	return encodeNode(tr.rt.Objects.State(g).(*node))
}

// WipeProc models the crash: the contents of every node homed on proc
// are discarded. Recovery replay (store.Store) reinstalls the images;
// node identity, locks, and shared-memory layout addresses survive, as
// allocation metadata would in a system that recovers in place.
func (tr *Tree) WipeProc(proc int) {
	for _, g := range tr.nodes {
		if tr.rt.Objects.Home(g) != proc {
			continue
		}
		nd := tr.rt.Objects.State(g).(*node)
		nd.keys = nil
		nd.children = nil
		nd.right = gid.Nil
		nd.high = 0
		nd.leaf = false
		nd.kidsAreLeaves = false
	}
}
