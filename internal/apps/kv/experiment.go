package kv

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/load"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/policy"
	"compmig/internal/sim"
	"compmig/internal/stats"
	"compmig/internal/store"
)

// Config describes one open-loop KV run.
type Config struct {
	StoreProcs int // storage processors / partitions (default 8)
	FrontProcs int // frontend processors receiving arrivals (default 4)
	Touches    int // record accesses per point op (default 3)
	// AccessCycles is the user-code cost of one record access in cycles
	// (default Store's 40). It is charged wherever the access executes —
	// the storage processor under RPC and migration, the requesting
	// frontend under shared memory — so it sets how much the machine's
	// speed profile matters.
	AccessCycles uint64
	// FrontWork is the frontend's per-request parse/dispatch cost in
	// cycles; it makes frontends a real queueing stage (default 50).
	FrontWork uint64
	// KeySpace is the value space the key population is drawn from
	// (default 1<<20).
	KeySpace uint64
	// IndexFanout sizes the range-scan index nodes (default 16).
	IndexFanout int

	Scheme core.Scheme
	// Policy, when non-empty, routes every operation through an
	// internal/policy engine: "static:<mech>", "costmodel", "bandit[:eps]".
	Policy string
	// Load is the open-loop workload (nil = load.Spec defaults).
	Load *load.Spec
	// Hetero gives per-processor speed factors; partitions live on the
	// low-numbered processors, so bimodal slowness lands on the storage
	// tier (nil = uniform machine).
	Hetero *cost.Hetero
	// Faults attaches a deterministic fault injector (nil = none).
	Faults *fault.Spec
	// Durable forces the WAL/checkpoint store on; it also switches on
	// automatically whenever Faults schedules a wipe window.
	Durable bool
	// DropNthAppend / DropNthReplay are negative-test levers: lose the
	// nth WAL append or skip the nth replayed record, so the post-run
	// checker's teeth can be verified.
	DropNthAppend uint64
	DropNthReplay uint64
	Seed          uint64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.StoreProcs == 0 {
		c.StoreProcs = 8
	}
	if c.FrontProcs == 0 {
		c.FrontProcs = 4
	}
	if c.Touches == 0 {
		c.Touches = 3
	}
	if c.FrontWork == 0 {
		c.FrontWork = 50
	}
	if c.KeySpace == 0 {
		c.KeySpace = 1 << 20
	}
	if c.IndexFanout == 0 {
		c.IndexFanout = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one measured run.
type Result struct {
	Scheme string
	Policy string

	Ops        uint64  // completed requests
	Makespan   uint64  // cycle of the last completion
	Throughput float64 // requests per 1000 cycles over the makespan

	MeanLatency   float64 // cycles per request (arrival to completion)
	P50, P95, P99 uint64  // latency percentile upper bounds, cycles
	// Latency is the full latency distribution (harness tables merge it
	// into bench output).
	Latency *stats.Histogram

	WordsPerOp float64
	HitRate    float64

	Gets, Puts, Scans uint64

	Decisions   [4]uint64
	PolicyStats *policy.Stats

	Fault *fault.Counters
	// Recovery holds the durability-store counters of a durable run
	// (nil when the store was off).
	Recovery *store.Counters
	// InvariantErr is the post-run checker's verdict ("" = every
	// invariant held: no lost updates, reads monotone per key).
	InvariantErr string
}

// RunExperiment builds a fresh machine, replays the workload open-loop,
// and reports throughput, tail latency, and the invariant verdict.
func RunExperiment(cfg Config) Result {
	cfg = cfg.WithDefaults()
	eng := sim.NewEngine(cfg.Seed)
	model := cfg.Scheme.Model()
	mach := sim.NewMachine(eng, cfg.StoreProcs+cfg.FrontProcs)
	if cfg.Hetero.Enabled() {
		for i, f := range cfg.Hetero.Factors(mach.N()) {
			mach.Proc(i).SetSpeed(sim.Time(f), cost.SpeedDen)
		}
	}
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	var inj *fault.Injector
	if cfg.Faults.Enabled() {
		inj = fault.NewInjector(cfg.Faults)
		net.AttachFaults(inj)
		for _, w := range inj.Windows() {
			if w.Proc < 0 || w.Proc >= mach.N() {
				panic(fmt.Sprintf("kv: fault window targets proc %d, machine has [0,%d)", w.Proc, mach.N()))
			}
			mach.Proc(w.Proc).AddDownWindow(w.Start, w.End())
		}
	}
	rt := core.New(eng, mach, net, col, model)

	var shm *mem.System
	if cfg.Scheme.Mechanism == core.SharedMem || cfg.Policy != "" {
		shm = mem.New(eng, mach, net, col, mem.DefaultParams())
	}
	defer shm.Release()

	// The key population: distinct sorted values, a pure function of the
	// seed (btree.GenKeys memoizes on the PRNG state).
	nkeys := cfg.Load.NumKeys()
	population := btree.GenKeys(eng.Rand().Fork(), int(nkeys), cfg.KeySpace)
	st := Build(rt, shm, cfg.Scheme,
		Params{StoreProcs: cfg.StoreProcs, Touches: cfg.Touches, IndexFanout: cfg.IndexFanout},
		population)
	if cfg.AccessCycles != 0 {
		st.AccessCycles = cfg.AccessCycles
	}

	// Durability wiring comes after Build so the loaded index seeds the
	// checkpoints for free instead of charging simulated append time for
	// pre-run population.
	var wal *store.Store
	if cfg.Durable || cfg.Faults.HasWipe() {
		wal = store.New(mach, col, cost.DefaultDurability(), cfg.Faults.CkptInterval(), rt.Objects.Home)
		st.EnableDurability(wal)
		rt.Objects.SetJournal(wal)
		if cfg.DropNthAppend > 0 {
			wal.ScriptDropAppend(cfg.DropNthAppend)
		}
		if cfg.DropNthReplay > 0 {
			wal.ScriptDropReplay(cfg.DropNthReplay)
		}
		if inj != nil {
			wal.ScheduleRecovery(eng, inj.Windows())
		}
	}

	var pol *policy.Engine
	if cfg.Policy != "" {
		var err error
		pol, err = policy.New(cfg.Policy, model, mem.DefaultParams(), eng, col, mach.N(), cfg.Seed)
		if err != nil {
			panic("kv: " + err.Error())
		}
		pol.AttachMem(shm)
		if cfg.Hetero.Enabled() {
			factors := cfg.Hetero.Factors(mach.N())
			speeds := make([]float64, len(factors))
			for i, f := range factors {
				speeds[i] = float64(f) / float64(cost.SpeedDen)
			}
			pol.SetSpeeds(speeds)
		}
		rt.Obs = pol
		st.AttachPolicy(pol)
	}

	// Open loop: every arrival is scheduled before the run starts, so a
	// slow server accumulates queueing delay instead of throttling the
	// offered load.
	events := load.NewGen(cfg.Load, cfg.Seed).Events()
	issued := make([]uint64, nkeys) // puts issued per key
	acked := make([]uint64, nkeys)  // highest version acked per key
	monotonic := 0                  // reads that went backwards
	var lastDone sim.Time
	res := Result{Scheme: cfg.Scheme.Name()}
	for i, ev := range events {
		i, ev := i, ev
		proc := cfg.StoreProcs + i%cfg.FrontProcs
		eng.Spawn("kv.req", ev.At, func(th *sim.Thread) {
			task := rt.NewTask(th, proc)
			arrive := th.Now()
			task.Work(cfg.FrontWork)
			key := ev.Op.Key
			switch ev.Op.Kind {
			case load.KindPut:
				issued[key]++
				v := st.Put(task, key)
				if v > acked[key] {
					acked[key] = v
				}
				res.Puts++
			case load.KindGet:
				before := acked[key]
				if st.Get(task, key) < before {
					monotonic++
				}
				res.Gets++
			case load.KindScan:
				st.Scan(task, key, ev.Op.ScanLen)
				res.Scans++
			}
			col.CountOp(uint64(th.Now() - arrive))
			if th.Now() > lastDone {
				lastDone = th.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		panic("kv: experiment did not quiesce: " + err.Error())
	}

	res.Ops = col.Ops
	res.Makespan = uint64(lastDone)
	if lastDone > 0 {
		res.Throughput = float64(col.Ops) * 1000 / float64(lastDone)
	}
	res.MeanLatency = col.MeanOpLatency()
	res.P50 = col.Latency.Quantile(0.50)
	res.P95 = col.Latency.Quantile(0.95)
	res.P99 = col.Latency.Quantile(0.99)
	hist := &stats.Histogram{}
	hist.AddFrom(&col.Latency)
	res.Latency = hist
	if col.Ops > 0 {
		res.WordsPerOp = float64(col.WordsSent) / float64(col.Ops)
	}
	res.HitRate = col.HitRate()
	if pol != nil {
		res.Policy = pol.Name()
		res.Decisions = st.Decisions()
		ps := pol.Stats()
		res.PolicyStats = &ps
	}
	if inj != nil {
		c := inj.Counters
		res.Fault = &c
		inj.FlushProfile()
	}
	if wal != nil {
		c := wal.Counters
		res.Recovery = &c
		wal.FlushProfile()
	}
	res.InvariantErr = checkInvariants(st, issued, acked, monotonic, inj != nil)
	return res
}

// checkInvariants verifies the store's end state against the host-side
// ledgers: every acked write must be present (no lost updates), the
// store must not exceed what was issued, and — on a fault-free run,
// where the runtime completes every request exactly once — the applied
// count must equal the issued count. Reads must never go backwards.
func checkInvariants(st *Store, issued, acked []uint64, monotonic int, faulty bool) string {
	for id := range issued {
		v := st.Value(uint64(id))
		if acked[id] > v {
			return fmt.Sprintf("lost update on key %d: acked version %d, stored %d", id, acked[id], v)
		}
		if v > issued[id] {
			return fmt.Sprintf("over-applied key %d: %d puts issued, version %d stored", id, issued[id], v)
		}
		if !faulty && v != issued[id] {
			return fmt.Sprintf("key %d: %d puts issued but version %d stored", id, issued[id], v)
		}
	}
	if monotonic > 0 {
		return fmt.Sprintf("%d reads went backwards (read-your-writes violated)", monotonic)
	}
	return ""
}
