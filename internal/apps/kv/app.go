//go:generate go run compmig/cmd/contgen -in app.go

// Package kv is a hash-partitioned key/value (session) store on the
// core runtime — the serving-system counterpart to the paper's two
// closed-loop apps. Records are homed by key partition on the storage
// processors; every point operation makes Touches record accesses at
// the partition's home (session header, value, metadata), which is the
// access run the mechanism tradeoff prices: per-access RPCs, one
// migration of the request frame, or cache-line reads through shared
// memory. Range scans run over a B-link tree index of the key
// population (internal/apps/btree).
package kv

import (
	"fmt"

	"compmig/internal/advisor"
	"compmig/internal/apps/btree"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/msg"
	"compmig/internal/policy"
	"compmig/internal/store"
)

// Params configures a store instance.
type Params struct {
	StoreProcs  int // partitions, one per storage processor [0, StoreProcs)
	Touches     int // record accesses per point operation
	IndexFanout int // fanout of the range-scan index
}

// DefaultParams returns the serving-system defaults: eight storage
// processors, three record accesses per operation (header, value,
// metadata), and a fanout-16 index.
func DefaultParams() Params {
	return Params{StoreProcs: 8, Touches: 3, IndexFanout: 16}
}

// partState is one partition's host state: the version counter per key
// and, under shared memory, the record-line image.
type partState struct {
	vals map[uint64]uint64 // keyID -> version (0 = never written)
	slot map[uint64]int    // keyID -> record slot in the SM image
	base mem.Addr          // SM image base (Touches lines per record)
}

// Store is a distributed KV store bound to a runtime and a scheme.
type Store struct {
	rt     *core.Runtime
	shm    *mem.System // nil unless the scheme is SharedMem or a policy run
	scheme core.Scheme
	p      Params

	parts  []gid.GID // partition objects, parts[i] homed on processor i
	states []*partState
	byGID  map[gid.GID]*partState
	keys   []uint64 // keyID -> indexed key value (sorted unique)
	index  *btree.Tree

	// wal, when set, receives a version record on every acked put and
	// node images from the index (see durable.go).
	wal *store.Store

	// AccessCycles is the user-code cost of one record access.
	AccessCycles uint64

	mTouch core.MethodID
	mGet   core.MethodID
	mPut   core.MethodID
	cOp    core.ContID

	// Per-call-site policy selectors (nil = static scheme dispatch).
	polGet  *policy.Site
	polPut  *policy.Site
	polScan *policy.Site
}

// Build creates the store over the given sorted-unique key population.
// Key i of the population is addressed by keyID i in [0, len(keys)).
// The range-scan index lives on the same storage processors as the
// partitions.
func Build(rt *core.Runtime, shm *mem.System, scheme core.Scheme, p Params, keys []uint64) *Store {
	if scheme.Mechanism == core.ObjMigrate {
		panic("kv: object migration is not a supported scheme")
	}
	if scheme.Mechanism == core.SharedMem && shm == nil {
		panic("kv: SharedMem scheme needs a mem.System")
	}
	if p.StoreProcs <= 0 || p.Touches <= 0 || len(keys) == 0 {
		panic("kv: bad params")
	}
	s := &Store{
		rt: rt, shm: shm, scheme: scheme, p: p,
		keys:         append([]uint64{}, keys...),
		AccessCycles: 40,
	}

	// Partitions, one per storage processor; keys assigned by hash so
	// skewed key popularity still spreads across partitions.
	s.parts = make([]gid.GID, p.StoreProcs)
	states := make([]*partState, p.StoreProcs)
	s.byGID = make(map[gid.GID]*partState, p.StoreProcs)
	for i := range s.parts {
		states[i] = &partState{vals: make(map[uint64]uint64), slot: make(map[uint64]int)}
		s.parts[i] = rt.Objects.New(i, states[i])
		s.byGID[s.parts[i]] = states[i]
	}
	s.states = states
	for id := range s.keys {
		ps := states[s.partOf(uint64(id))]
		ps.slot[uint64(id)] = len(ps.slot)
	}
	if shm != nil {
		for i, ps := range states {
			records := len(ps.slot)
			if records == 0 {
				records = 1
			}
			ps.base = shm.Alloc(i, uint64(records*p.Touches*mem.LineBytes))
		}
	}

	s.index = btree.Build(rt, shm, nil, scheme,
		btree.Params{Fanout: p.IndexFanout, NodeProcs: p.StoreProcs, Fill: 0.7}, s.keys)
	s.register()
	return s
}

// partOf maps a keyID to its partition (Fibonacci hashing, so partition
// load stays even under the generator's rank-correlated key IDs).
func (s *Store) partOf(id uint64) int {
	return int(((id + 1) * 0x9e3779b97f4a7c15) % uint64(s.p.StoreProcs))
}

// PartProc returns the home processor of a key's partition.
func (s *Store) PartProc(id uint64) int { return s.partOf(id) }

// NumKeys returns the population size.
func (s *Store) NumKeys() int { return len(s.keys) }

// Index exposes the range-scan index (tests).
func (s *Store) Index() *btree.Tree { return s.index }

// Value returns a key's current version, host-level (invariant checks
// at quiescence).
func (s *Store) Value(id uint64) uint64 {
	ps := s.rt.Objects.State(s.parts[s.partOf(id)]).(*partState)
	return ps.vals[id]
}

// ackReply is the one-word acknowledgement of a record touch.
type ackReply struct{}

func (r *ackReply) MarshalWords(w *msg.Writer)          { w.PutU32(0) }
func (r *ackReply) UnmarshalWords(rd *msg.Reader) error { rd.U32(); return rd.Err() }

// valueReply carries a point operation's result version.
//
//compmig:record
type valueReply struct{ value uint64 }

// keyArg carries the operation keyID.
//
//compmig:record
type keyArg struct{ key uint64 }

func (s *Store) register() {
	// The fine-grained record read: under RPC every one of an
	// operation's Touches accesses is a short call (§4.4's per-access
	// costing applied to a serving workload).
	s.mTouch = s.rt.RegisterMethod("kv.touch", true,
		func(t *core.Task, _ any, _ *msg.Reader, reply *msg.Writer) {
			t.Work(s.AccessCycles)
			reply.PutU32(0)
		})
	s.mGet = s.rt.RegisterMethod("kv.get", true,
		func(t *core.Task, self any, args *msg.Reader, reply *msg.Writer) {
			ps := self.(*partState)
			t.Work(s.AccessCycles)
			reply.PutU64(ps.vals[args.U64()])
		})
	// Writes get a real handler thread (they update the record, like the
	// B-tree's leaf put).
	s.mPut = s.rt.RegisterMethod("kv.put", false,
		func(t *core.Task, self any, args *msg.Reader, reply *msg.Writer) {
			ps := self.(*partState)
			key := args.U64()
			t.Work(s.AccessCycles)
			ps.vals[key]++
			s.logPut(t, key, ps.vals[key])
			reply.PutU64(ps.vals[key])
		})
	s.cOp = s.rt.RegisterCont("kv.op",
		func() core.Continuation { return &kvCont{st: s} })
}

// Get returns the key's current version, using the store's scheme or
// the attached policy's per-operation decision.
func (s *Store) Get(t *core.Task, id uint64) uint64 {
	if s.polGet != nil {
		mech := s.polGet.Begin(t.Proc(), s.parts[s.partOf(id)])
		start := t.Now()
		v := s.getWith(t, id, mech)
		s.polGet.End(t.Proc(), mech, uint64(t.Now()-start))
		return v
	}
	return s.getWith(t, id, s.scheme.Mechanism)
}

// Put bumps the key's version and returns the new version.
func (s *Store) Put(t *core.Task, id uint64) uint64 {
	if s.polPut != nil {
		mech := s.polPut.Begin(t.Proc(), s.parts[s.partOf(id)])
		start := t.Now()
		v := s.putWith(t, id, mech)
		s.polPut.End(t.Proc(), mech, uint64(t.Now()-start))
		return v
	}
	return s.putWith(t, id, s.scheme.Mechanism)
}

// Scan counts up to limit population keys >= keyID lo's value through
// the index.
func (s *Store) Scan(t *core.Task, lo uint64, limit int) int {
	loVal := s.keys[int(lo)%len(s.keys)]
	if s.polScan != nil {
		mech := s.polScan.Begin(t.Proc(), s.index.Root())
		start := t.Now()
		n := s.index.ScanVia(t, loVal, limit, mech)
		s.polScan.End(t.Proc(), mech, uint64(t.Now()-start))
		return n
	}
	return s.index.ScanVia(t, loVal, limit, s.scheme.Mechanism)
}

func (s *Store) getWith(t *core.Task, id uint64, mech core.Mechanism) uint64 {
	g := s.parts[s.partOf(id)]
	switch mech {
	case core.RPC:
		for i := 0; i < s.p.Touches-1; i++ {
			s.touch(t, g)
		}
		var rep valueReply
		if err := t.Call(g, s.mGet, &keyArg{key: id}, &rep); err != nil {
			panic("kv: get failed: " + err.Error())
		}
		return rep.value
	case core.Migrate:
		var rep valueReply
		if err := t.Do(&kvCont{st: s, key: id, cur: g}, &rep); err != nil {
			panic("kv: get failed: " + err.Error())
		}
		return rep.value
	case core.SharedMem:
		th, proc := t.Thread(), t.Proc()
		ps := s.rt.Objects.State(g).(*partState)
		base := s.recordBase(ps, id)
		for i := 0; i < s.p.Touches; i++ {
			s.shm.Read(th, proc, base+mem.Addr(i*mem.LineBytes), 8)
		}
		t.Work(s.AccessCycles * uint64(s.p.Touches))
		return ps.vals[id]
	}
	panic(fmt.Sprintf("kv: unsupported mechanism %v", mech))
}

func (s *Store) putWith(t *core.Task, id uint64, mech core.Mechanism) uint64 {
	g := s.parts[s.partOf(id)]
	switch mech {
	case core.RPC:
		for i := 0; i < s.p.Touches-1; i++ {
			s.touch(t, g)
		}
		var rep valueReply
		if err := t.Call(g, s.mPut, &keyArg{key: id}, &rep); err != nil {
			panic("kv: put failed: " + err.Error())
		}
		return rep.value
	case core.Migrate:
		var rep valueReply
		if err := t.Do(&kvCont{st: s, key: id, put: true, cur: g}, &rep); err != nil {
			panic("kv: put failed: " + err.Error())
		}
		return rep.value
	case core.SharedMem:
		th, proc := t.Thread(), t.Proc()
		ps := s.rt.Objects.State(g).(*partState)
		base := s.recordBase(ps, id)
		// Atomic RMW on the record's first line (the version word), then
		// the update itself with no intervening yield, then the remaining
		// line writes — so concurrent writers never lose an increment.
		s.shm.RMW(th, proc, base)
		ps.vals[id]++
		v := ps.vals[id]
		s.logPut(t, id, v)
		for i := 1; i < s.p.Touches; i++ {
			s.shm.Write(th, proc, base+mem.Addr(i*mem.LineBytes), 8)
		}
		t.Work(s.AccessCycles * uint64(s.p.Touches))
		return v
	}
	panic(fmt.Sprintf("kv: unsupported mechanism %v", mech))
}

// recordBase returns the SM address of a key's record image.
func (s *Store) recordBase(ps *partState, id uint64) mem.Addr {
	return ps.base + mem.Addr(ps.slot[id]*s.p.Touches*mem.LineBytes)
}

// touch performs one short record access under RPC.
func (s *Store) touch(t *core.Task, g gid.GID) {
	var rep ackReply
	if err := t.Call(g, s.mTouch, nil, &rep); err != nil {
		panic("kv: touch failed: " + err.Error())
	}
}

// kvCont is the continuation for a migrating point operation: the frame
// ships to the partition's home, performs all Touches accesses locally,
// and returns only the result version — the paper's locality argument
// applied to a storage record. Wire stubs generated by cmd/contgen.
//
//compmig:record
type kvCont struct {
	st  *Store
	key uint64
	put bool
	cur gid.GID
}

func (c *kvCont) Run(t *core.Task) {
	s := c.st
	if !t.IsLocal(c.cur) {
		t.Migrate(c.cur, s.cOp, c)
		return
	}
	ps := t.State(c.cur).(*partState)
	t.Work(s.AccessCycles * uint64(s.p.Touches))
	if c.put {
		ps.vals[c.key]++
		s.logPut(t, c.key, ps.vals[c.key])
	}
	t.Return(&valueReply{value: ps.vals[c.key]})
}

// AttachPolicy registers the store's three call sites (get, put, scan)
// with a policy engine. The static profiles carry what a compiler would
// emit: Touches accesses per partition visit for point ops, short reads
// for gets, a full method for puts, and the index descent shape for
// scans.
func (s *Store) AttachPolicy(e *policy.Engine) {
	chain := float64(s.index.Height()) + 1
	s.polGet = e.NewSite("kv.get", advisor.SiteProfile{
		AccessesPerVisit: float64(s.p.Touches),
		ArgWords:         2, // keyID
		ReplyWords:       2, // version
		ContWords:        5, // keyID + op + cursor
		ShortMethod:      true,
		ChainLength:      1,
		WorkCycles:       float64(s.AccessCycles) * float64(s.p.Touches),
	})
	s.polPut = e.NewSite("kv.put", advisor.SiteProfile{
		AccessesPerVisit: float64(s.p.Touches),
		ArgWords:         2,
		ReplyWords:       2,
		ContWords:        5,
		ShortMethod:      false,
		ChainLength:      1,
		WorkCycles:       float64(s.AccessCycles) * float64(s.p.Touches),
	})
	s.polScan = e.NewSite("kv.scan", advisor.SiteProfile{
		AccessesPerVisit: 2,
		ArgWords:         3, // lo + remaining
		ReplyWords:       3, // count + next
		ContWords:        7, // cursor + count + remaining
		ShortMethod:      true,
		ChainLength:      chain,
	})
}

// Decisions sums the per-mechanism decision counts across the store's
// call sites (zero when no policy is attached).
func (s *Store) Decisions() [4]uint64 {
	var out [4]uint64
	for _, site := range []*policy.Site{s.polGet, s.polPut, s.polScan} {
		if site == nil {
			continue
		}
		d := site.Decisions()
		for i := range out {
			out[i] += d[i]
		}
	}
	return out
}
