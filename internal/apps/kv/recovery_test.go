package kv

import (
	"reflect"
	"strings"
	"testing"

	"compmig/internal/core"
)

// wipeCfg crashes storage processor 2 mid-run with enough puts before
// and after the window to make lost updates observable.
func wipeCfg(t *testing.T, mech core.Mechanism) Config {
	return Config{
		Scheme: core.Scheme{Mechanism: mech},
		Load:   mustSpec(t, "keys=128,ops=400,period=500,zipf=0.9,mix=40:55:5,scan=8"),
		Faults: mustFault(t, "wipe=p2@60000+8000"),
		Seed:   9,
	}
}

// TestWipeRecoveryKeepsAckedWrites is the headline serving-system
// durability check: no acked write may be lost across a wipe, for every
// supported mechanism.
func TestWipeRecoveryKeepsAckedWrites(t *testing.T) {
	for _, mech := range []core.Mechanism{core.RPC, core.Migrate, core.SharedMem} {
		res := RunExperiment(wipeCfg(t, mech))
		if res.InvariantErr != "" {
			t.Errorf("%v: %s", mech, res.InvariantErr)
		}
		if res.Recovery == nil {
			t.Fatalf("%v: wipe window did not switch durability on", mech)
		}
		if res.Recovery.Wipes != 1 {
			t.Errorf("%v: %d wipes recovered, want 1", mech, res.Recovery.Wipes)
		}
		if res.Recovery.Appends == 0 || res.Recovery.RecoveryCycles == 0 {
			t.Errorf("%v: durability did no work: %+v", mech, *res.Recovery)
		}
	}
}

// TestWipeRecoveryDeterministic pins the reproducible-recovery-trace
// contract: identical configs produce identical results and counters.
func TestWipeRecoveryDeterministic(t *testing.T) {
	a := RunExperiment(wipeCfg(t, core.RPC))
	b := RunExperiment(wipeCfg(t, core.RPC))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("wipe recovery runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestDurableFaultFreeVerifies forces the WAL on with no faults: the
// run must log every put, recover nothing, and keep all invariants.
func TestDurableFaultFreeVerifies(t *testing.T) {
	cfg := wipeCfg(t, core.Migrate)
	cfg.Faults = nil
	cfg.Durable = true
	res := RunExperiment(cfg)
	if res.InvariantErr != "" {
		t.Errorf("durable fault-free run: %s", res.InvariantErr)
	}
	if res.Recovery == nil || res.Recovery.Appends == 0 {
		t.Fatal("durable run logged nothing")
	}
	if res.Recovery.Appends < res.Puts {
		t.Errorf("%d appends for %d puts: some acked writes unlogged", res.Recovery.Appends, res.Puts)
	}
	if res.Recovery.Wipes != 0 {
		t.Errorf("no wipe scheduled but %d recoveries ran", res.Recovery.Wipes)
	}
}

// lateWipeCfg crashes storage processor 2 near the end of the
// workload, so nearly every append precedes the wipe and the negative
// tests can find a droppable ordinal near the end of the schedule.
func lateWipeCfg(t *testing.T) Config {
	return Config{
		Scheme: core.Scheme{Mechanism: core.RPC},
		Load:   mustSpec(t, "keys=128,ops=400,period=500,zipf=0.9,mix=30:65:5,scan=8"),
		Faults: mustFault(t, "wipe=p2@190000+6000"),
		Seed:   9,
	}
}

// TestDropAppendLosesAckedWrite loses one put's WAL record: after the
// wipe, that version is gone and the lost-update checker must fire.
func TestDropAppendLosesAckedWrite(t *testing.T) {
	cfg := lateWipeCfg(t)
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	// Determinism fixes the append schedule, so ordinal n names the same
	// record in every run; scan near the wipe for one whose loss shows.
	const scanCap = 80
	for n, tried := clean.Recovery.Appends, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthAppend = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if !strings.Contains(res.InvariantErr, "lost update") {
			t.Errorf("unexpected verdict: %s", res.InvariantErr)
		}
		if res.Recovery.AppendDropped != 1 {
			t.Errorf("AppendDropped = %d, want 1", res.Recovery.AppendDropped)
		}
		return
	}
	t.Fatalf("no dropped append detected within %d ordinals of %d", scanCap, clean.Recovery.Appends)
}

// TestDropReplaySkipsRecord skips one record during recovery replay;
// the store reverts that key and the checker must fire.
func TestDropReplaySkipsRecord(t *testing.T) {
	cfg := lateWipeCfg(t)
	clean := RunExperiment(cfg)
	if clean.InvariantErr != "" {
		t.Fatalf("clean run already fails: %s", clean.InvariantErr)
	}
	if clean.Recovery.Replays == 0 {
		t.Fatal("clean run replayed nothing: wipe/checkpoint timing leaves no suffix to drop")
	}
	const scanCap = 80
	for n, tried := clean.Recovery.Replays, 0; n >= 1 && tried < scanCap; n, tried = n-1, tried+1 {
		probe := cfg
		probe.DropNthReplay = n
		res := RunExperiment(probe)
		if res.InvariantErr == "" {
			continue
		}
		if res.Recovery.ReplayDropped != 1 {
			t.Errorf("ReplayDropped = %d, want 1", res.Recovery.ReplayDropped)
		}
		return
	}
	t.Fatalf("no dropped replay detected within %d ordinals of %d", scanCap, clean.Recovery.Replays)
}
