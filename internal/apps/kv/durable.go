package kv

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/store"
)

// Durability: every acked put logs a (partition, keyID, version) record
// at the partition's home, and the range-scan index logs node images
// through its own WAL hooks (internal/apps/btree). Versions are
// absolute values, not increments, so replay is idempotent and a
// second wipe of the same processor recovers to the same state.

// logPut durably logs a put's new version at the key's home partition.
// At the home (RPC handler, migrated frame) the charge blocks the
// mutating thread — the put is not acknowledged until the log write is
// paid for; from a shared-memory frontend the home is charged
// asynchronously, with the record still registered before any yield.
func (s *Store) logPut(t *core.Task, id, v uint64) {
	if s.wal == nil {
		return
	}
	g := s.parts[s.partOf(id)]
	s.wal.Append(t.Thread(), t.Proc(), store.Record{Kind: store.KindState, G: g, Sub: id, A: v})
}

// EnableDurability attaches the store (and its embedded index) to a
// WAL: index node images seed the checkpoints, and the store's replay,
// wipe, and snapshot hooks dispatch between partition records and index
// records. Partition version maps start empty (version 0 = never
// written), so they need no seeding.
func (s *Store) EnableDurability(w *store.Store) {
	s.wal = w
	s.index.SetWAL(w)
	s.index.SeedImages(w)
	w.OnApply(s.applyRecord)
	w.OnSnapshot(s.snapshotBlob)
	w.OnWipe(func(proc int) int {
		s.wipeProc(proc)
		return s.rt.WipeVolatile(proc)
	})
}

// applyRecord reinstalls one logged record during recovery replay:
// partition version records land in the version map, everything else is
// an index node image.
func (s *Store) applyRecord(r store.Record) {
	if ps, ok := s.byGID[r.G]; ok {
		ps.vals[r.Sub] = r.A
		return
	}
	s.index.ApplyRecord(r)
}

// snapshotBlob encodes an object's state for a move record. Partitions
// never move; index nodes can under object-migration scan decisions.
func (s *Store) snapshotBlob(g gid.GID) []uint64 {
	if _, ok := s.byGID[g]; ok {
		panic("kv: partitions do not move")
	}
	return s.index.SnapshotBlob(g)
}

// wipeProc models the crash on a storage processor: the partition's
// version map is discarded (the record-slot layout and shared-memory
// base are allocation metadata and survive), and the index's nodes
// homed there lose their contents.
func (s *Store) wipeProc(proc int) {
	if proc < len(s.states) {
		s.states[proc].vals = make(map[uint64]uint64)
	}
	s.index.WipeProc(proc)
}
