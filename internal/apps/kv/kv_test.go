package kv

import (
	"reflect"
	"testing"

	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/load"
)

func mustSpec(t *testing.T, text string) *load.Spec {
	t.Helper()
	s, err := load.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRunAllMechanisms drives the default workload through every
// supported scheme and checks the invariants hold and work was done.
func TestRunAllMechanisms(t *testing.T) {
	for _, scheme := range []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.Migrate},
		{Mechanism: core.SharedMem},
	} {
		res := RunExperiment(Config{
			Scheme: scheme,
			Load:   mustSpec(t, "keys=256,ops=400,period=400,zipf=0.9,mix=70:25:5,scan=8"),
			Seed:   3,
		})
		if res.InvariantErr != "" {
			t.Errorf("%v: invariant violated: %s", scheme.Mechanism, res.InvariantErr)
		}
		if res.Ops != 400 {
			t.Errorf("%v: %d ops completed, want 400", scheme.Mechanism, res.Ops)
		}
		if res.Puts == 0 || res.Gets == 0 || res.Scans == 0 {
			t.Errorf("%v: mix not exercised: %d/%d/%d", scheme.Mechanism, res.Gets, res.Puts, res.Scans)
		}
		if res.Throughput <= 0 || res.P99 < res.P50 {
			t.Errorf("%v: bad stats: thr=%f p50=%d p99=%d", scheme.Mechanism, res.Throughput, res.P50, res.P99)
		}
	}
}

// TestDeterminism pins the byte-for-byte reproducibility contract: two
// runs of the same config produce identical results.
func TestDeterminism(t *testing.T) {
	cfg := Config{
		Scheme: core.Scheme{Mechanism: core.Migrate},
		Load:   mustSpec(t, "keys=128,ops=300,period=300,zipf=0.99,mix=60:30:10"),
		Hetero: &cost.Hetero{Kind: "bimodal", Factor: 3, Frac: 0.5},
		Seed:   11,
	}
	a, b := RunExperiment(cfg), RunExperiment(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPolicies checks each policy spec routes operations and keeps the
// invariants; adaptive policies must record decisions.
func TestPolicies(t *testing.T) {
	for _, polSpec := range []string{"static:rpc", "static:cm", "static:sm", "costmodel", "bandit"} {
		res := RunExperiment(Config{
			Scheme: core.Scheme{Mechanism: core.RPC},
			Policy: polSpec,
			Load:   mustSpec(t, "keys=128,ops=300,period=400,zipf=0.9,mix=70:20:10"),
			Seed:   5,
		})
		if res.InvariantErr != "" {
			t.Errorf("%s: invariant violated: %s", polSpec, res.InvariantErr)
		}
		if res.Policy == "" {
			t.Errorf("%s: result does not name the policy", polSpec)
		}
		total := res.Decisions[0] + res.Decisions[1] + res.Decisions[2] + res.Decisions[3]
		if total != 300 {
			t.Errorf("%s: %d decisions recorded, want 300", polSpec, total)
		}
	}
}

// TestHeterogeneitySlowsStorage checks that slowing the storage tier
// stretches the makespan of a storage-bound run.
func TestHeterogeneitySlowsStorage(t *testing.T) {
	base := Config{
		Scheme: core.Scheme{Mechanism: core.RPC},
		Load:   mustSpec(t, "keys=128,ops=300,period=200,mix=50:50:0"),
		Seed:   7,
	}
	uni := RunExperiment(base)
	slow := base
	slow.Hetero = &cost.Hetero{Kind: "bimodal", Factor: 8, Frac: 1}
	het := RunExperiment(slow)
	if het.InvariantErr != "" || uni.InvariantErr != "" {
		t.Fatalf("invariants: %q / %q", uni.InvariantErr, het.InvariantErr)
	}
	if het.MeanLatency <= uni.MeanLatency {
		t.Errorf("8x-slower storage did not raise latency: %.0f vs %.0f", het.MeanLatency, uni.MeanLatency)
	}
}

// TestScanResultsMatchIndex checks scans return genuine counts from the
// index: a scan over the whole population from its smallest key counts
// every key.
func TestScanResultsMatchIndex(t *testing.T) {
	res := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.Migrate},
		Load:   mustSpec(t, "keys=64,ops=100,period=500,mix=0:0:100,scan=64"),
		Seed:   2,
	})
	if res.InvariantErr != "" {
		t.Fatalf("invariant violated: %s", res.InvariantErr)
	}
	if res.Scans != 100 {
		t.Fatalf("%d scans, want 100", res.Scans)
	}
}

// TestFaultyRunKeepsInvariants checks the recovery protocol preserves
// the store's invariants under message loss.
func TestFaultyRunKeepsInvariants(t *testing.T) {
	res := RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.RPC},
		Load:   mustSpec(t, "keys=64,ops=200,period=600,mix=60:40:0"),
		Faults: mustFault(t, "drop=0.02,seed=5"),
		Seed:   13,
	})
	if res.InvariantErr != "" {
		t.Fatalf("invariant violated under faults: %s", res.InvariantErr)
	}
	if res.Fault == nil {
		t.Fatal("fault counters missing")
	}
	if res.Fault.Dropped == 0 {
		t.Error("no drops injected at drop=0.02")
	}
}

// TestObjMigrateRejected pins the unsupported-scheme contract.
func TestObjMigrateRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ObjMigrate scheme accepted")
		}
	}()
	RunExperiment(Config{
		Scheme: core.Scheme{Mechanism: core.ObjMigrate},
		Load:   mustSpec(t, "keys=16,ops=10"),
	})
}

func mustFault(t *testing.T, text string) *fault.Spec {
	t.Helper()
	s, err := fault.ParseSpec(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
