// Package store is the durability substrate: a per-processor
// append-only write-ahead log plus periodic checkpoints, both simulated
// structures whose appends, group-commit fsync barriers, checkpoint
// folds, and crash-recovery replays are charged in simulated cycles
// through cost.Durability — durability overhead competes for processor
// time like every other subsystem.
//
// The contract that makes the guarantee hold is host-side atomicity:
// a record is registered in its home processor's log at the moment the
// host-level mutation happens, before any simulated-time yield, so at
// every yield point a processor's object state equals the fold of its
// log. A wipe fault (fault.Window.Wipe) can then discard the volatile
// state at any cycle and recovery rebuilds exactly what was there:
// restore the checkpoint, replay the WAL suffix in LSN order, and
// re-register the processor's objects — all in simulated time booked on
// the recovering processor, so work queued behind the outage waits for
// replay to finish.
//
// Recovery is deterministic: checkpoint entries are applied in sorted
// key order, the suffix in append order, and no PRNG is consulted, so
// the same seed reproduces the same recovery trace byte-for-byte.
package store

import (
	"fmt"
	"sort"

	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/gid"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Kind tags a log record.
type Kind uint8

const (
	// KindCreate records an object's birth; replay re-registers it.
	KindCreate Kind = iota
	// KindState records an object (or sub-key) state change: the app
	// payload lives in Sub/A/B and Blob, and the app's Apply hook
	// reinstalls it during replay.
	KindState
	// KindMoveOut records an object leaving the processor; it cancels the
	// object's earlier entries when the log folds into a checkpoint.
	KindMoveOut
	// KindMoveIn records an object arriving with a full state snapshot in
	// Blob; replay reinstalls the snapshot like a KindState image.
	KindMoveIn
	// KindDrop records a replication drop at the object's home — a
	// mechanism switch the recovered processor must remember; it carries
	// no replayable state.
	KindDrop
)

func (k Kind) String() string {
	switch k {
	case KindCreate:
		return "create"
	case KindState:
		return "state"
	case KindMoveOut:
		return "move-out"
	case KindMoveIn:
		return "move-in"
	case KindDrop:
		return "drop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// headerWords is a record's fixed wire size in 64-bit words: LSN, kind
// tag + GID, Sub, A, B.
const headerWords = 5

// Record is one WAL entry. The store assigns LSN; everything else is
// the appender's. Sub distinguishes independent sub-states of one
// object (a KV partition's key); A and B are small scalar payloads and
// Blob carries bulk images (B-tree node encodings, move snapshots).
type Record struct {
	LSN  uint64
	Kind Kind
	G    gid.GID
	Sub  uint64
	A, B uint64
	Blob []uint64
}

// Words returns the record's size in 64-bit words.
func (r Record) Words() uint64 { return headerWords + uint64(len(r.Blob)) }

// ckptKey identifies a record's slot in the checkpoint fold: later
// records for the same (object, sub-key) supersede earlier ones.
type ckptKey struct {
	g   gid.GID
	sub uint64
}

// plog is one processor's log: the checkpoint (folded prefix) plus the
// WAL suffix appended since.
type plog struct {
	ckpt      map[ckptKey]Record
	ckptWords uint64
	suffix    []Record
	lsn       uint64
	appends   uint64   // appends since the last fsync barrier
	lastCkpt  sim.Time // cycle of the last checkpoint fold
}

// Counters tallies one run's durability activity. Plain integers: a
// durable run is single-goroutine (serial engine only).
type Counters struct {
	Appends         uint64 // WAL records appended
	AppendWords     uint64 // total words appended
	Fsyncs          uint64 // group-commit barriers forced
	Checkpoints     uint64 // checkpoint folds
	CheckpointWords uint64 // live words written by checkpoint folds
	Wipes           uint64 // wipe windows recovered from
	Restores        uint64 // checkpoint entries applied during recovery
	Replays         uint64 // WAL-suffix records re-applied during recovery
	Reregistered    uint64 // objects re-registered during recovery
	ReplayDropped   uint64 // records lost to the ScriptDropReplay test hook
	AppendDropped   uint64 // records lost to the ScriptDropAppend test hook
	RecoveryCycles  uint64 // simulated cycles spent in recovery
}

// Store is the machine-wide durability layer: one log per processor.
// It implements object.Journal and repl.Journal so structural events
// (creations, moves, replication drops) log themselves.
type Store struct {
	mach     *sim.Machine
	col      *stats.Collector
	prices   cost.Durability
	interval sim.Time
	logs     []*plog
	home     func(gid.GID) int

	// apply reinstalls one record's state during replay (app hook).
	apply func(Record)
	// wipeHook discards a processor's volatile app + runtime state at the
	// start of a wipe window, returning the number of objects the
	// recovery must re-register.
	wipeHook func(proc int) int
	// snapshot encodes an object's full state for a KindMoveIn record;
	// required only by apps that move objects while durable.
	snapshot func(g gid.GID) []uint64

	Counters Counters

	// Test hooks: 1-based global ordinals of a record to lose.
	dropAppend, dropReplay uint64
	nAppend, nReplay       uint64
}

// New creates a store for the machine, pricing operations with prices
// and folding each log into a checkpoint every interval cycles
// (0 means cost.DefaultCkptInterval). home resolves a GID's current
// home processor (object.Space.Home); records always land in their home
// processor's log. A durable run must use the serial engine: the store
// keeps one global LSN sequence per processor and one collector.
func New(mach *sim.Machine, col *stats.Collector, prices cost.Durability, interval uint64, home func(gid.GID) int) *Store {
	if interval == 0 {
		interval = cost.DefaultCkptInterval
	}
	s := &Store{
		mach: mach, col: col, prices: prices,
		interval: sim.Time(interval),
		logs:     make([]*plog, mach.N()),
		home:     home,
	}
	for i := range s.logs {
		s.logs[i] = &plog{ckpt: make(map[ckptKey]Record)}
	}
	return s
}

// OnApply installs the app's replay hook: reinstall one record's state.
func (s *Store) OnApply(fn func(Record)) { s.apply = fn }

// OnWipe installs the wipe hook: discard processor proc's volatile
// state and return the number of objects recovery re-registers.
func (s *Store) OnWipe(fn func(proc int) int) { s.wipeHook = fn }

// OnSnapshot installs the app's state encoder for object moves.
func (s *Store) OnSnapshot(fn func(g gid.GID) []uint64) { s.snapshot = fn }

// Interval returns the checkpoint interval in cycles.
func (s *Store) Interval() uint64 { return uint64(s.interval) }

// ScriptDropAppend makes the nth (1-based, counted across all
// processors) appended record vanish before it reaches the log — the
// negative-test lever for the durability checkers.
func (s *Store) ScriptDropAppend(nth uint64) { s.dropAppend = nth }

// ScriptDropReplay makes the nth (1-based) replayed suffix record be
// skipped during recovery.
func (s *Store) ScriptDropReplay(nth uint64) { s.dropReplay = nth }

// register appends r to processor p's log host-side and returns the
// simulated cycles the append costs (append + any fsync barrier + any
// checkpoint fold it triggers). It must run at the host-level mutation
// point, before any simulated-time yield.
func (s *Store) register(p int, r Record) uint64 {
	lg := s.logs[p]
	s.nAppend++
	if s.nAppend == s.dropAppend {
		// The record is charged but never durably written: the "write
		// acknowledged before reaching the log" bug the checkers exist to
		// catch.
		s.Counters.AppendDropped++
		return s.prices.Append(r.Words())
	}
	lg.lsn++
	r.LSN = lg.lsn
	lg.suffix = append(lg.suffix, r)
	s.Counters.Appends++
	s.Counters.AppendWords += r.Words()
	cycles := s.prices.Append(r.Words())
	lg.appends++
	if lg.appends >= s.prices.GroupSize() {
		lg.appends = 0
		s.Counters.Fsyncs++
		cycles += s.prices.Fsync
	}
	if now := s.mach.Proc(p).Engine().Now(); now >= lg.lastCkpt+s.interval {
		cycles += s.checkpoint(p, now)
	}
	return cycles
}

// checkpoint folds processor p's WAL suffix into its checkpoint and
// returns the fold's cycle cost.
func (s *Store) checkpoint(p int, now sim.Time) uint64 {
	lg := s.logs[p]
	for _, r := range lg.suffix {
		switch r.Kind {
		case KindCreate, KindDrop:
			// Metadata-only records: their durable effect is complete once
			// logged; the fold keeps no entry (recovery re-registers objects
			// from the live-object count, not from creates).
		case KindMoveOut:
			// The object left this processor: its state is the destination
			// log's responsibility now.
			for k := range lg.ckpt {
				if k.g == r.G {
					delete(lg.ckpt, k)
				}
			}
		default:
			lg.ckpt[ckptKey{r.G, r.Sub}] = r
		}
	}
	lg.suffix = lg.suffix[:0]
	lg.lastCkpt = now
	var live uint64
	for _, r := range lg.ckpt {
		live += r.Words()
	}
	lg.ckptWords = live
	s.Counters.Checkpoints++
	s.Counters.CheckpointWords += live
	return s.prices.Checkpoint(live)
}

// Append durably logs recs at their home processors and blocks the
// calling thread for the records homed on processor at — the
// ack-after-durable path: the mutation is not acknowledged until its
// log write is paid for. Records homed elsewhere (a frontend mutating a
// remote partition through shared memory) are charged asynchronously at
// their homes. All records are registered host-side before any yield,
// so a multi-record mutation (a node split's two images) is atomic with
// respect to wipes.
func (s *Store) Append(th *sim.Thread, at int, recs ...Record) {
	var local uint64
	for _, r := range recs {
		p := s.home(r.G)
		c := s.register(p, r)
		if p == at {
			local += c
		} else {
			s.chargeAsync(p, c)
		}
	}
	if local > 0 {
		s.col.AddCycles(stats.CatDurability, local)
		th.Exec(s.mach.Proc(at), sim.Time(local))
	}
}

// AppendAsync durably logs recs at their home processors, charging each
// home asynchronously without blocking any thread — for records emitted
// from contexts with no thread handle (journal hooks) or where the
// mutator should not wait for the remote log (move bookkeeping).
func (s *Store) AppendAsync(recs ...Record) {
	for _, r := range recs {
		p := s.home(r.G)
		s.chargeAsync(p, s.register(p, r))
	}
}

// Seed installs a base record — an object's initial state at
// build time — directly into its home checkpoint, free of charge:
// pre-run population is loaded state, not runtime work.
func (s *Store) Seed(r Record) {
	p := s.home(r.G)
	lg := s.logs[p]
	lg.ckpt[ckptKey{r.G, r.Sub}] = r
	lg.ckptWords += r.Words()
}

func (s *Store) chargeAsync(p int, cycles uint64) {
	if cycles == 0 {
		return
	}
	s.col.AddCycles(stats.CatDurability, cycles)
	s.mach.Proc(p).ExecAsync(sim.Time(cycles), nil)
}

// ScheduleRecovery arms one recovery event per wipe window: at the
// window's start the processor's volatile state is discarded and
// rebuilt from checkpoint + WAL suffix. Scheduling at setup time gives
// the wipe an earlier event sequence than any same-cycle delivery, so
// retransmissions that land exactly at the window start see the
// post-wipe state. The recovery's cycle cost is booked on the wiped
// processor; sim down windows push the booking past the window end, and
// deliveries queued behind the outage then serialize behind the replay.
func (s *Store) ScheduleRecovery(eng *sim.Engine, windows []fault.Window) {
	for _, w := range windows {
		if !w.Wipe {
			continue
		}
		proc := w.Proc
		eng.At(sim.Time(w.Start), func() { s.recoverProc(proc) })
	}
}

// recoverProc wipes processor proc and replays its log. Wipe and replay
// are host-atomic — by the time any other event runs, the processor's
// state is fully rebuilt — while the simulated recovery time is booked
// on the processor, stalling its post-window work behind the replay.
func (s *Store) recoverProc(proc int) {
	s.Counters.Wipes++
	var cycles uint64
	reregister := 0
	if s.wipeHook != nil {
		reregister = s.wipeHook(proc)
	}

	lg := s.logs[proc]
	// Restore the checkpoint in sorted key order (determinism): only
	// entries still homed here apply — an entry whose object has since
	// moved away is the destination log's responsibility.
	keys := make([]ckptKey, 0, len(lg.ckpt))
	for k := range lg.ckpt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].g != keys[j].g {
			return keys[i].g < keys[j].g
		}
		return keys[i].sub < keys[j].sub
	})
	for _, k := range keys {
		if s.home(k.g) != proc {
			continue
		}
		r := lg.ckpt[k]
		s.applyRecord(r)
		s.Counters.Restores++
		cycles += s.prices.RestorePerWord * r.Words()
	}
	// Replay the WAL suffix in append order.
	for _, r := range lg.suffix {
		if s.home(r.G) != proc {
			continue
		}
		s.nReplay++
		if s.nReplay == s.dropReplay {
			s.Counters.ReplayDropped++
			continue
		}
		s.applyRecord(r)
		s.Counters.Replays++
		cycles += s.prices.Replay(r.Words())
	}
	s.Counters.Reregistered += uint64(reregister)
	cycles += s.prices.Reregister * uint64(reregister)
	s.Counters.RecoveryCycles += cycles
	s.col.AddCycles(stats.CatDurability, cycles)
	s.mach.Proc(proc).ExecAsync(sim.Time(cycles), nil)
}

// applyRecord hands one record to the app's replay hook. Structural
// records with no app state short-circuit.
func (s *Store) applyRecord(r Record) {
	switch r.Kind {
	case KindCreate, KindMoveOut, KindDrop:
		return
	}
	if s.apply == nil {
		panic("store: replaying app state without an OnApply hook")
	}
	s.apply(r)
}

// ObjectNew implements object.Journal: creations log themselves at the
// object's home.
func (s *Store) ObjectNew(g gid.GID, home int) {
	s.AppendAsync(Record{Kind: KindCreate, G: g})
}

// ObjectMove implements object.Journal: a move-out record at the old
// home cancels the object's entries there, and a move-in record with a
// full state snapshot seeds the new home's log. The hook runs after
// object.Space updated the home, so AppendAsync's home resolution
// already answers the destination for both the move-in and any later
// state records.
func (s *Store) ObjectMove(g gid.GID, from, to int) {
	if s.snapshot == nil {
		panic("store: object moved while durable but no OnSnapshot hook is installed")
	}
	out := Record{Kind: KindMoveOut, G: g}
	s.chargeAsync(from, s.register(from, out))
	in := Record{Kind: KindMoveIn, G: g, Blob: s.snapshot(g)}
	s.chargeAsync(to, s.register(to, in))
}

// ReplicaDrop implements repl.Journal.
func (s *Store) ReplicaDrop(g gid.GID, home int) {
	s.chargeAsync(home, s.register(home, Record{Kind: KindDrop, G: g}))
}

// FlushProfile adds the run's durability counters to the process-wide
// profile sections (reported by paperfigs -profile and bench JSON).
func (s *Store) FlushProfile() {
	c := &s.Counters
	profile.StoreAppends.Add(c.Appends)
	profile.StoreCheckpointBytes.Add(c.CheckpointWords * 8)
	profile.StoreReplays.Add(c.Replays)
	profile.StoreRecoveryCycles.Add(c.RecoveryCycles)
}
