package store

import (
	"reflect"
	"testing"

	"compmig/internal/cost"
	"compmig/internal/fault"
	"compmig/internal/gid"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// harness is a tiny durable "app": per-object uint64 states addressed by
// (gid, sub), with a moved map standing in for object.Space mobility.
type harness struct {
	eng   *sim.Engine
	mach  *sim.Machine
	col   *stats.Collector
	st    *Store
	state map[ckptKey]uint64
	moved map[gid.GID]int
	wipes []int
}

func newHarness(t *testing.T, interval uint64) *harness {
	t.Helper()
	h := &harness{
		eng:   sim.NewEngine(1),
		col:   stats.NewCollector(),
		state: make(map[ckptKey]uint64),
		moved: make(map[gid.GID]int),
	}
	h.mach = sim.NewMachine(h.eng, 4)
	home := func(g gid.GID) int {
		if p, ok := h.moved[g]; ok {
			return p
		}
		return g.Home()
	}
	h.st = New(h.mach, h.col, cost.DefaultDurability(), interval, home)
	h.st.OnApply(func(r Record) {
		h.state[ckptKey{r.G, r.Sub}] = r.A
	})
	h.st.OnWipe(func(proc int) int {
		h.wipes = append(h.wipes, proc)
		for k := range h.state {
			if home(k.g) == proc {
				delete(h.state, k)
			}
		}
		return 1
	})
	return h
}

func (h *harness) put(th *sim.Thread, at int, g gid.GID, sub, v uint64) {
	h.state[ckptKey{g, sub}] = v
	h.st.Append(th, at, Record{Kind: KindState, G: g, Sub: sub, A: v})
}

func TestAppendChargesAndCounts(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(1, 1)
	var elapsed sim.Time
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 1, g, 0, 7)
		elapsed = th.Now()
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	d := cost.DefaultDurability()
	want := sim.Time(d.Append(headerWords))
	if elapsed != want {
		t.Errorf("synchronous append took %d cycles, want %d", elapsed, want)
	}
	if h.st.Counters.Appends != 1 || h.st.Counters.AppendWords != headerWords {
		t.Errorf("counters = %+v", h.st.Counters)
	}
	if got := h.col.Cycles(stats.CatDurability); got != uint64(want) {
		t.Errorf("CatDurability = %d, want %d", got, want)
	}
}

func TestGroupCommitFsync(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(0, 1)
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		for i := uint64(0); i < 2*cost.DefaultDurability().GroupSize(); i++ {
			h.put(th, 0, g, i, i)
		}
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.st.Counters.Fsyncs != 2 {
		t.Errorf("fsyncs = %d, want 2", h.st.Counters.Fsyncs)
	}
}

// A remote-homed record (the shared-memory path) is charged at its home
// without blocking the appender.
func TestAppendRemoteHomeIsAsync(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(2, 1)
	var elapsed sim.Time
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 0, g, 0, 7) // appender on p0, record homed on p2
		elapsed = th.Now()
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Errorf("remote-homed append blocked the appender for %d cycles", elapsed)
	}
	if h.mach.Proc(2).Busy == 0 {
		t.Error("home processor was not charged")
	}
}

func TestCheckpointFoldsAndSupersedes(t *testing.T) {
	h := newHarness(t, 100)
	g := gid.Make(0, 1)
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 0, g, 5, 1)
		h.put(th, 0, g, 5, 2) // supersedes in the fold
		th.Sleep(200)         // cross the checkpoint interval
		h.put(th, 0, g, 6, 3) // triggers the fold
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.st.Counters.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", h.st.Counters.Checkpoints)
	}
	lg := h.st.logs[0]
	// The fold runs as part of the third append and covers it too: the
	// first two records collapse to one live entry, the third is its own.
	if len(lg.ckpt) != 2 || lg.ckpt[ckptKey{g, 5}].A != 2 || lg.ckpt[ckptKey{g, 6}].A != 3 {
		t.Errorf("checkpoint = %+v, want two entries with the superseding values", lg.ckpt)
	}
	if len(lg.suffix) != 0 {
		t.Errorf("suffix has %d records, want 0", len(lg.suffix))
	}
	if h.st.Counters.CheckpointWords != 2*headerWords {
		t.Errorf("checkpoint words = %d, want %d", h.st.Counters.CheckpointWords, 2*headerWords)
	}
}

func TestWipeRecoversCheckpointAndSuffix(t *testing.T) {
	h := newHarness(t, 100)
	g := gid.Make(1, 1)
	h.st.Seed(Record{Kind: KindState, G: g, Sub: 0, A: 10})
	h.state[ckptKey{g, 0}] = 10
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 1, g, 1, 20)
	})
	h.st.ScheduleRecovery(h.eng, []fault.Window{
		{Proc: 1, Start: 500, Dur: 100, Wipe: true},
		{Proc: 3, Start: 600, Dur: 100}, // plain crash: no recovery event
	})
	h.mach.Proc(1).AddDownWindow(500, 600)
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.wipes, []int{1}) {
		t.Fatalf("wipe hooks ran for %v, want [1]", h.wipes)
	}
	if h.state[ckptKey{g, 0}] != 10 || h.state[ckptKey{g, 1}] != 20 {
		t.Errorf("post-recovery state = %+v", h.state)
	}
	c := h.st.Counters
	if c.Wipes != 1 || c.Restores != 1 || c.Replays != 1 || c.Reregistered != 1 {
		t.Errorf("recovery counters = %+v", c)
	}
	if c.RecoveryCycles == 0 {
		t.Error("recovery charged no cycles")
	}
	// The recovery work was booked on the wiped processor past the down
	// window: its free point must be after the window end.
	if h.mach.Proc(1).FreeAt() <= 600 {
		t.Errorf("recovery not serialized after the window: free at %d", h.mach.Proc(1).FreeAt())
	}
}

// An object that moved away is not replayed at its old home; its
// move-in snapshot recovers it at the new home.
func TestMoveRecordsFollowTheObject(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(0, 1)
	h.st.OnSnapshot(func(gg gid.GID) []uint64 { return []uint64{h.state[ckptKey{gg, 0}]} })
	h.st.OnApply(func(r Record) {
		if r.Kind == KindMoveIn {
			h.state[ckptKey{r.G, 0}] = r.Blob[0]
			return
		}
		h.state[ckptKey{r.G, r.Sub}] = r.A
	})
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 0, g, 0, 5)
		// Move p0 -> p2, as object.Space would: update homes, then journal.
		h.moved[g] = 2
		h.st.ObjectMove(g, 0, 2)
		h.state[ckptKey{g, 0}] = 6
		h.st.Append(th, 2, Record{Kind: KindState, G: g, Sub: 0, A: 6})
	})
	h.st.ScheduleRecovery(h.eng, []fault.Window{
		{Proc: 0, Start: 1000, Dur: 10, Wipe: true},
		{Proc: 2, Start: 2000, Dur: 10, Wipe: true},
	})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// p0's recovery must skip g entirely (home filter); p2's must land on
	// the final value via move-in + state replay.
	if h.state[ckptKey{g, 0}] != 6 {
		t.Errorf("post-recovery state = %+v, want 6", h.state)
	}
	if h.st.Counters.Wipes != 2 {
		t.Errorf("wipes = %d, want 2", h.st.Counters.Wipes)
	}
}

func TestScriptDropAppendLosesTheWrite(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(0, 1)
	h.st.ScriptDropAppend(2)
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 0, g, 1, 1)
		h.put(th, 0, g, 2, 2) // vanishes before the log
		h.put(th, 0, g, 3, 3)
	})
	h.st.ScheduleRecovery(h.eng, []fault.Window{{Proc: 0, Start: 1000, Dur: 10, Wipe: true}})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.st.Counters.AppendDropped != 1 {
		t.Fatalf("append-drop hook fired %d times", h.st.Counters.AppendDropped)
	}
	if _, ok := h.state[ckptKey{g, 2}]; ok {
		t.Error("dropped write survived the wipe")
	}
	if h.state[ckptKey{g, 1}] != 1 || h.state[ckptKey{g, 3}] != 3 {
		t.Errorf("durable writes lost: %+v", h.state)
	}
}

func TestScriptDropReplaySkipsTheRecord(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(0, 1)
	h.st.ScriptDropReplay(1)
	h.eng.Spawn("w", 0, func(th *sim.Thread) {
		h.put(th, 0, g, 1, 1)
		h.put(th, 0, g, 2, 2)
	})
	h.st.ScheduleRecovery(h.eng, []fault.Window{{Proc: 0, Start: 1000, Dur: 10, Wipe: true}})
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if h.st.Counters.ReplayDropped != 1 || h.st.Counters.Replays != 1 {
		t.Fatalf("replay counters = %+v", h.st.Counters)
	}
	if _, ok := h.state[ckptKey{g, 1}]; ok {
		t.Error("dropped replay record was applied anyway")
	}
	if h.state[ckptKey{g, 2}] != 2 {
		t.Errorf("surviving record not applied: %+v", h.state)
	}
}

// Two identical runs produce identical counters and identical state —
// the recovery path consumes no randomness.
func TestRecoveryDeterministic(t *testing.T) {
	run := func() (Counters, map[ckptKey]uint64) {
		h := newHarness(t, 150)
		h.eng.Spawn("w", 0, func(th *sim.Thread) {
			for i := uint64(0); i < 40; i++ {
				h.put(th, 0, gid.Make(0, uint32(1+i%3)), i%5, i)
				th.Sleep(17)
			}
		})
		h.st.ScheduleRecovery(h.eng, []fault.Window{{Proc: 0, Start: 300, Dur: 50, Wipe: true}})
		h.mach.Proc(0).AddDownWindow(300, 350)
		if err := h.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return h.st.Counters, h.state
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Errorf("counters diverged:\n%+v\n%+v", c1, c2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("state diverged")
	}
}

func TestJournalKinds(t *testing.T) {
	h := newHarness(t, 0)
	g := gid.Make(1, 1)
	h.st.ObjectNew(g, 1)
	h.st.ReplicaDrop(g, 1)
	if err := h.eng.Run(); err != nil {
		t.Fatal(err)
	}
	lg := h.st.logs[1]
	if len(lg.suffix) != 2 || lg.suffix[0].Kind != KindCreate || lg.suffix[1].Kind != KindDrop {
		t.Fatalf("journal suffix = %+v", lg.suffix)
	}
	// Structural records replay as accounting only: no Apply calls.
	h.st.OnApply(func(r Record) { t.Errorf("unexpected Apply(%+v)", r) })
	h.st.recoverProc(1)
	if h.st.Counters.Replays != 2 {
		t.Errorf("replays = %d, want 2", h.st.Counters.Replays)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindCreate: "create", KindState: "state", KindMoveOut: "move-out",
		KindMoveIn: "move-in", KindDrop: "drop", Kind(99): "Kind(99)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
