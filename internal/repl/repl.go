// Package repl implements software replication of hot objects, after the
// multi-version memory scheme of Weihl and Wang [WW90] that the paper
// uses to replicate the B-tree root ("w/repl." rows in Tables 1-4).
//
// A replicated object's state is readable on every processor at local
// cost — no messages, no directory traffic — which removes the resource
// contention that otherwise bottlenecks both RPC and computation
// migration at the root. Writes are rare (root splits); each write
// publishes a new version and broadcasts an update to every processor,
// priced through the same software messaging model as everything else.
package repl

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/network"
)

type entry struct {
	version   uint64
	state     any
	sizeWords uint64
}

// Table tracks which objects are replicated and their current version.
type Table struct {
	rt      *core.Runtime
	entries map[gid.GID]*entry

	// ReadCycles is the local cost charged per replica read (a cached
	// table lookup); calibrated small, like a handful of loads.
	ReadCycles uint64

	// journal, when set, observes replication drops (see Journal).
	journal Journal
}

// Journal observes replication-table events a durability layer must
// survive: dropping an object's replicas changes which mechanism owns
// its state, so the switch itself is logged at the object's home.
type Journal interface {
	ReplicaDrop(g gid.GID, home int)
}

// SetJournal installs (or clears, with nil) the table's journal.
func (tb *Table) SetJournal(j Journal) { tb.journal = j }

// NewTable returns an empty replication table for rt.
func NewTable(rt *core.Runtime) *Table {
	return &Table{rt: rt, entries: make(map[gid.GID]*entry), ReadCycles: 10}
}

// Replicate starts replicating object g. state is the snapshot every
// processor reads; sizeWords is its wire size, used to price update
// broadcasts.
func (tb *Table) Replicate(g gid.GID, state any, sizeWords uint64) {
	if _, dup := tb.entries[g]; dup {
		panic("repl: object already replicated")
	}
	tb.entries[g] = &entry{version: 1, state: state, sizeWords: sizeWords}
}

// Drop stops replicating g, returning the final snapshot and its
// version so the caller can seed whatever mechanism takes over (e.g. a
// policy switching the object from replication to migration mid-run).
// Subsequent Reads of g panic; in-flight update broadcasts are
// unaffected — they only adjust per-processor accounting.
func (tb *Table) Drop(g gid.GID) (state any, version uint64) {
	e, ok := tb.entries[g]
	if !ok {
		panic("repl: Drop of unreplicated object")
	}
	delete(tb.entries, g)
	if tb.journal != nil {
		tb.journal.ReplicaDrop(g, tb.rt.Objects.Home(g))
	}
	return e.state, e.version
}

// IsReplicated reports whether g has local replicas.
func (tb *Table) IsReplicated(g gid.GID) bool {
	_, ok := tb.entries[g]
	return ok
}

// Version returns the current version number of g's replicas.
func (tb *Table) Version(g gid.GID) uint64 { return tb.entries[g].version }

// Read returns the local replica of g's state, charging only local
// lookup cycles. It may be called from any processor.
func (tb *Table) Read(t *core.Task, g gid.GID) any {
	e, ok := tb.entries[g]
	if !ok {
		panic("repl: Read of unreplicated object")
	}
	tb.rt.Col.ReplicaReads++
	t.Work(tb.ReadCycles)
	return e.state
}

// Publish installs a new snapshot of g and broadcasts version updates to
// every other processor. The publisher pays the send path once per
// destination; each destination pays a receive path asynchronously.
func (tb *Table) Publish(t *core.Task, g gid.GID, state any, sizeWords uint64) {
	e, ok := tb.entries[g]
	if !ok {
		panic("repl: Publish of unreplicated object")
	}
	rt := tb.rt
	rt.Col.ReplicaWrites++
	e.version++
	e.state = state
	e.sizeWords = sizeWords

	self := t.Proc()
	for p := 0; p < rt.Mach.N(); p++ {
		if p == self {
			continue
		}
		payload := make([]uint32, sizeWords)
		words := sizeWords + network.HeaderWords
		t.Thread().Exec(rt.Mach.Proc(self), rt.ChargeSendPath(words))
		dst := p
		rt.Net.Send(&network.Message{Src: self, Dst: dst, Kind: "repl-update", Payload: payload},
			func(m *network.Message) {
				rt.Mach.Proc(dst).ExecAsync(rt.ChargeRecvReplyPath(words), nil)
			})
	}
}
