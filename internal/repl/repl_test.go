package repl

import (
	"testing"

	"compmig/internal/cost"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"

	"compmig/internal/core"
)

type rootState struct{ children []int }

func newRig(nprocs int) (*sim.Engine, *core.Runtime, *Table, *stats.Collector) {
	eng := sim.NewEngine(3)
	m := sim.NewMachine(eng, nprocs)
	col := stats.NewCollector()
	model := cost.Software()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, m, net, col, model)
	return eng, rt, NewTable(rt), col
}

func TestReplicaReadIsLocal(t *testing.T) {
	eng, rt, tbl, col := newRig(8)
	g := rt.Objects.New(3, &rootState{children: []int{1, 2, 3}})
	tbl.Replicate(g, rt.Objects.State(g), 16)

	reads := 0
	for p := 0; p < 8; p++ {
		p := p
		eng.Spawn("reader", 0, func(th *sim.Thread) {
			task := rt.NewTask(th, p)
			st := tbl.Read(task, g).(*rootState)
			if len(st.children) != 3 {
				t.Errorf("proc %d read wrong state", p)
			}
			reads++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if reads != 8 {
		t.Fatalf("reads = %d", reads)
	}
	if col.TotalMessages() != 0 {
		t.Errorf("replica reads sent %d messages", col.TotalMessages())
	}
	if col.ReplicaReads != 8 {
		t.Errorf("ReplicaReads = %d", col.ReplicaReads)
	}
	if tbl.Version(g) != 1 {
		t.Errorf("version = %d", tbl.Version(g))
	}
}

func TestPublishBroadcasts(t *testing.T) {
	eng, rt, tbl, col := newRig(6)
	g := rt.Objects.New(0, &rootState{children: []int{1}})
	tbl.Replicate(g, rt.Objects.State(g), 8)

	eng.Spawn("writer", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 2)
		tbl.Publish(task, g, &rootState{children: []int{1, 2}}, 12)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if col.Messages["repl-update"] != 5 {
		t.Errorf("update messages = %d, want 5 (all procs but publisher)", col.Messages["repl-update"])
	}
	if tbl.Version(g) != 2 {
		t.Errorf("version = %d", tbl.Version(g))
	}
	if col.ReplicaWrites != 1 {
		t.Errorf("ReplicaWrites = %d", col.ReplicaWrites)
	}
}

func TestReadAfterPublishSeesNewState(t *testing.T) {
	eng, rt, tbl, _ := newRig(4)
	g := rt.Objects.New(0, &rootState{children: []int{9}})
	tbl.Replicate(g, rt.Objects.State(g), 4)

	var got int
	eng.Spawn("seq", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 1)
		tbl.Publish(task, g, &rootState{children: []int{7, 8}}, 6)
		th.Sleep(1000)
		got = len(tbl.Read(task, g).(*rootState).children)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("read stale replica after publish: %d children", got)
	}
}

func TestIsReplicated(t *testing.T) {
	_, rt, tbl, _ := newRig(2)
	g := rt.Objects.New(0, &rootState{})
	h := rt.Objects.New(1, &rootState{})
	tbl.Replicate(g, rt.Objects.State(g), 4)
	if !tbl.IsReplicated(g) || tbl.IsReplicated(h) {
		t.Error("IsReplicated wrong")
	}
}

// TestDropSwitchesToMigrationMidRun drives the replication table the way
// an online policy would: writers publish new versions concurrently
// (each publish broadcasts invalidating updates to every processor)
// while a policy thread switches the object from replication to
// migration mid-run by calling Drop and routing later writes through the
// object's home. Every increment must survive the handoff, and the whole
// interleaving must be deterministic.
func TestDropSwitchesToMigrationMidRun(t *testing.T) {
	const (
		nprocs     = 8
		nwriters   = 6
		increments = 10
	)
	type counterState struct{ n int }

	run := func() (final, version int, updates uint64) {
		eng, rt, tbl, col := newRig(nprocs)
		g := rt.Objects.New(0, &counterState{})
		tbl.Replicate(g, rt.Objects.State(g), 4)

		var (
			lock     sim.Mutex
			migrated *counterState
		)
		for w := 0; w < nwriters; w++ {
			w := w
			eng.Spawn("writer", sim.Time(w*7), func(th *sim.Thread) {
				task := rt.NewTask(th, w%nprocs)
				for i := 0; i < increments; i++ {
					lock.Lock(th)
					if tbl.IsReplicated(g) {
						cur := tbl.Read(task, g).(*counterState)
						tbl.Publish(task, g, &counterState{n: cur.n + 1}, 4)
					} else {
						// Migration path: mutate the single home copy.
						task.Work(20)
						migrated.n++
					}
					lock.Unlock(th)
					th.Sleep(sim.Time(50 + w*13))
				}
			})
		}
		eng.Spawn("policy-switch", 2500, func(th *sim.Thread) {
			lock.Lock(th)
			st, _ := tbl.Drop(g)
			migrated = st.(*counterState)
			lock.Unlock(th)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if tbl.IsReplicated(g) {
			t.Fatal("object still replicated after Drop")
		}
		if migrated == nil {
			t.Fatal("policy switch never ran")
		}
		return migrated.n, int(col.ReplicaWrites) + 1, col.Messages["repl-update"]
	}

	final, version, updates := run()
	if final != nwriters*increments {
		t.Fatalf("lost updates across the switch: counter = %d, want %d",
			final, nwriters*increments)
	}
	if updates == 0 {
		t.Fatal("no update broadcasts before the switch: switch happened too early to test anything")
	}
	f2, v2, u2 := run()
	if f2 != final || v2 != version || u2 != updates {
		t.Fatalf("nondeterministic interleaving: run1=(%d,%d,%d) run2=(%d,%d,%d)",
			final, version, updates, f2, v2, u2)
	}
}

func TestDropUnreplicatedPanics(t *testing.T) {
	_, rt, tbl, _ := newRig(2)
	g := rt.Objects.New(0, &rootState{})
	defer func() {
		if recover() == nil {
			t.Fatal("Drop of unreplicated object did not panic")
		}
	}()
	tbl.Drop(g)
}

func TestDoubleReplicatePanics(t *testing.T) {
	_, rt, tbl, _ := newRig(2)
	g := rt.Objects.New(0, &rootState{})
	tbl.Replicate(g, rt.Objects.State(g), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("double Replicate did not panic")
		}
	}()
	tbl.Replicate(g, rt.Objects.State(g), 4)
}

func TestReadUnreplicatedPanics(t *testing.T) {
	eng, rt, tbl, _ := newRig(2)
	g := rt.Objects.New(0, &rootState{})
	caught := false
	eng.Spawn("reader", 0, func(th *sim.Thread) {
		defer func() { caught = recover() != nil }()
		_ = tbl.Read(rt.NewTask(th, 0), g)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !caught {
		t.Fatal("Read of unreplicated object did not panic")
	}
}
