package load

import "testing"

type ev struct {
	at   uint64
	kind Kind
	key  uint64
}

// TestGenGolden pins the exact event sequence per (spec, seed). These
// are load's determinism contract: a golden change means every pinned
// experiment table downstream silently changes too.
func TestGenGolden(t *testing.T) {
	cases := []struct {
		name string
		spec string
		seed uint64
		want []ev
	}{
		{"uniform", "keys=64,ops=12,period=100", 1, []ev{{19, 0, 28}, {55, 0, 63}, {93, 0, 1}, {103, 0, 49}, {114, 0, 16}, {172, 0, 55}, {218, 0, 19}, {371, 0, 45}, {425, 0, 1}, {428, 0, 42}, {471, 0, 44}, {538, 0, 21}}},
		{"zipf99", "keys=64,ops=12,period=100,zipf=0.99", 1, []ev{{19, 0, 12}, {55, 0, 33}, {93, 0, 0}, {103, 0, 1}, {114, 0, 4}, {172, 0, 41}, {218, 0, 27}, {371, 0, 2}, {425, 0, 3}, {428, 0, 1}, {471, 0, 0}, {538, 0, 26}}},
		{"zipf99seed9", "keys=64,ops=12,period=100,zipf=0.99", 9, []ev{{40, 0, 22}, {214, 0, 18}, {231, 0, 11}, {233, 0, 42}, {361, 1, 5}, {494, 0, 0}, {600, 0, 10}, {675, 0, 6}, {803, 0, 6}, {1265, 0, 2}, {1300, 0, 52}, {1309, 0, 3}}},
		{"hot", "keys=64,ops=12,period=100,zipf=0.99,hot=0.5:300", 1, []ev{{19, 0, 12}, {55, 0, 33}, {93, 0, 0}, {103, 0, 1}, {114, 0, 4}, {172, 0, 41}, {218, 0, 27}, {371, 0, 34}, {425, 0, 35}, {428, 0, 33}, {471, 0, 32}, {538, 0, 58}}},
		{"burst", "keys=64,ops=12,period=100,burst=10:200:600", 1, []ev{{19, 0, 28}, {55, 0, 63}, {93, 0, 1}, {103, 0, 49}, {114, 0, 16}, {172, 0, 55}, {218, 0, 19}, {233, 0, 45}, {238, 0, 1}, {239, 0, 42}, {243, 0, 44}, {249, 0, 21}}},
		{"mix", "keys=64,ops=12,period=100,mix=40:30:30,scan=4", 1, []ev{{19, 0, 28}, {55, 2, 63}, {93, 0, 1}, {103, 0, 49}, {114, 0, 16}, {172, 1, 55}, {218, 1, 19}, {371, 2, 45}, {425, 1, 1}, {428, 0, 42}, {471, 2, 44}, {538, 0, 21}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := ParseSpec(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			got := NewGen(s, c.seed).Events()
			if len(got) != len(c.want) {
				t.Fatalf("%d events, want %d", len(got), len(c.want))
			}
			for i, e := range got {
				w := c.want[i]
				if uint64(e.At) != w.at || e.Op.Kind != w.kind || e.Op.Key != w.key {
					t.Fatalf("event %d = {at %d, %v, key %d}, want {at %d, %v, key %d}",
						i, e.At, e.Op.Kind, e.Op.Key, w.at, w.kind, w.key)
				}
			}
		})
	}
}

// TestGenStreamAlignment pins the forked-stream property the goldens
// rely on: changing one workload axis leaves the draws on the others
// untouched.
func TestGenStreamAlignment(t *testing.T) {
	base, _ := ParseSpec("keys=256,ops=200,period=100")
	zipf, _ := ParseSpec("keys=256,ops=200,period=100,zipf=0.9")
	mixed, _ := ParseSpec("keys=256,ops=200,period=100,mix=40:30:30")
	be := NewGen(base, 3).Events()
	ze := NewGen(zipf, 3).Events()
	me := NewGen(mixed, 3).Events()
	for i := range be {
		if be[i].At != ze[i].At || be[i].At != me[i].At {
			t.Fatalf("arrival %d diverges across specs: %d/%d/%d", i, be[i].At, ze[i].At, me[i].At)
		}
		if be[i].Op.Key != me[i].Op.Key {
			t.Fatalf("key %d diverges when only the mix changed: %d vs %d", i, be[i].Op.Key, me[i].Op.Key)
		}
		if be[i].Op.Kind != ze[i].Op.Kind {
			t.Fatalf("kind %d diverges when only the skew changed", i)
		}
	}
}

// TestGenZipfSkew checks the sampler actually skews: under theta=0.99
// the most popular key must dominate a uniform draw's share by a wide
// margin, and the arrival order must be strictly increasing.
func TestGenZipfSkew(t *testing.T) {
	s, _ := ParseSpec("keys=1024,ops=20000,period=10,zipf=0.99,mix=100:0:0")
	counts := make(map[uint64]int)
	var last uint64
	for _, e := range NewGen(s, 42).Events() {
		if uint64(e.At) <= last {
			t.Fatalf("arrivals not strictly increasing at %d", e.At)
		}
		last = uint64(e.At)
		counts[e.Op.Key]++
	}
	if frac := float64(counts[0]) / 20000; frac < 0.05 {
		t.Fatalf("rank-0 key got %.3f of draws, want the Zipfian head (> 0.05)", frac)
	}
	uni, _ := ParseSpec("keys=1024,ops=20000,period=10,mix=100:0:0")
	uniCounts := make(map[uint64]int)
	for _, e := range NewGen(uni, 42).Events() {
		uniCounts[e.Op.Key]++
	}
	if uniMax := maxCount(uniCounts); uniMax*3 > counts[0] {
		t.Fatalf("zipf head %d not clearly above uniform max %d", counts[0], uniMax)
	}
}

func maxCount(m map[uint64]int) int {
	max := 0
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// TestGenHotspotRotates checks the moving hotspot actually moves: with
// hot=0.5:N the head key in the first period differs from the head key
// after one rotation, and both map back to the same underlying rank.
func TestGenHotspotRotates(t *testing.T) {
	s, _ := ParseSpec("keys=100,ops=30000,period=10,zipf=0.99,hot=0.5:100000,mix=100:0:0")
	early := make(map[uint64]int)
	late := make(map[uint64]int)
	for _, e := range NewGen(s, 7).Events() {
		if uint64(e.At) < 100000 {
			early[e.Op.Key]++
		} else if uint64(e.At) < 200000 {
			late[e.Op.Key]++
		}
	}
	eHead := argmax(early)
	lHead := argmax(late)
	if eHead == lHead {
		t.Fatalf("hotspot did not move: head key %d in both periods", eHead)
	}
	if want := (eHead + 50) % 100; lHead != want {
		t.Fatalf("late head = %d, want rotation of early head to %d", lHead, want)
	}
}

func argmax(m map[uint64]int) uint64 {
	bestK, bestV := uint64(0), -1
	for k, v := range m {
		if v > bestV || (v == bestV && k < bestK) {
			bestK, bestV = k, v
		}
	}
	return bestK
}

// TestGenBurstCompresses checks the flash crowd multiplies the arrival
// rate inside its window.
func TestGenBurstCompresses(t *testing.T) {
	s, _ := ParseSpec("keys=16,ops=20000,period=100,burst=10:100000:100000")
	inBurst, outBurst := 0, 0
	for _, e := range NewGen(s, 5).Events() {
		t := uint64(e.At)
		switch {
		case t >= 100000 && t < 200000:
			inBurst++
		case t < 100000:
			outBurst++
		}
	}
	if outBurst == 0 || inBurst < 4*outBurst {
		t.Fatalf("burst window got %d arrivals vs %d in the same pre-burst span; want ~10x", inBurst, outBurst)
	}
}

// TestGenNilSpec checks the nil spec yields the default workload and the
// generator is reproducible.
func TestGenNilSpec(t *testing.T) {
	a := NewGen(nil, 0).Events()
	b := NewGen(nil, 0).Events()
	if len(a) != DefaultOps {
		t.Fatalf("nil spec emitted %d events, want %d", len(a), DefaultOps)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed generators diverge at event %d", i)
		}
	}
	for _, e := range a {
		if e.Op.Key >= DefaultKeys {
			t.Fatalf("key %d out of the default population", e.Op.Key)
		}
		if e.Op.Kind == KindScan {
			t.Fatal("default mix has no scans")
		}
	}
}

// TestSpecSeedOverridesRunSeed checks a workload script can pin its own
// stream.
func TestSpecSeedOverridesRunSeed(t *testing.T) {
	s, _ := ParseSpec("keys=64,ops=50,seed=99")
	a := NewGen(s, 1).Events()
	b := NewGen(s, 2).Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("spec seed did not override the run seed")
		}
	}
}
