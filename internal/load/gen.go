package load

import (
	"math"

	"compmig/internal/sim"
)

// Kind is the operation class of one generated request.
type Kind int

// Operation kinds.
const (
	KindGet Kind = iota
	KindPut
	KindScan
)

// String names the kind for rendering.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "get"
	case KindPut:
		return "put"
	case KindScan:
		return "scan"
	}
	return "?"
}

// Op is one generated request.
type Op struct {
	Kind    Kind
	Key     uint64 // key index in [0, Keys)
	ScanLen int    // keys to cover, scans only
}

// Event is one open-loop arrival: the request and the simulated cycle
// it enters the system.
type Event struct {
	At sim.Time
	Op Op
}

// Gen generates the event stream for one spec. It draws from three
// forked PRNG streams — arrival gaps, key choice, operation mix — so
// changing one axis of the workload (say the mix) never perturbs the
// draws on another (the key sequence). The emitted stream is a pure
// function of (spec, seed).
type Gen struct {
	spec    *Spec
	arr     *sim.PRNG
	keyRng  *sim.PRNG
	mixRng  *sim.PRNG
	zipf    *zipfian
	keys    uint64
	hotStep uint64 // key positions the ranking rotates per hot period
	total   uint64
	emitted uint64
	now     sim.Time
}

// NewGen builds the generator. A spec Seed overrides the seed argument,
// letting a workload script pin its own stream independent of the run
// seed. spec may be nil (the default workload).
func NewGen(spec *Spec, seed uint64) *Gen {
	if spec != nil && spec.Seed != 0 {
		seed = spec.Seed
	}
	if seed == 0 {
		seed = 1
	}
	base := sim.NewPRNG(seed)
	g := &Gen{
		spec:   spec,
		arr:    base.Fork(),
		keyRng: base.Fork(),
		mixRng: base.Fork(),
		keys:   spec.keys(),
		total:  spec.ops(),
	}
	if theta := spec.theta(); theta > 0 {
		g.zipf = newZipfian(g.keys, theta)
	}
	if spec != nil && spec.HotPeriod > 0 {
		g.hotStep = uint64(spec.HotShift * float64(g.keys))
	}
	return g
}

// Remaining returns how many events Next will still emit.
func (g *Gen) Remaining() uint64 { return g.total - g.emitted }

// Next emits the next arrival event; ok is false once the spec's op
// count is exhausted. Every event consumes exactly one draw per stream
// (arrival, mix, key), keeping the sequences aligned across specs that
// differ on a single axis.
func (g *Gen) Next() (ev Event, ok bool) {
	if g.emitted >= g.total {
		return Event{}, false
	}
	g.emitted++

	// Arrival gap: exponential inter-arrival around the mean period,
	// floored at one cycle. A burst window divides the mean, multiplying
	// the arrival rate while the window covers the clock.
	mean := g.spec.period()
	if g.spec != nil && g.spec.BurstLen > 0 {
		if t := uint64(g.now); t >= g.spec.BurstStart && t < g.spec.BurstStart+g.spec.BurstLen {
			mean /= g.spec.BurstMult
		}
	}
	gap := sim.Time(-mean * math.Log(1-g.arr.Float64()))
	if gap < 1 {
		gap = 1
	}
	g.now += gap

	// Operation kind from the mix percentages.
	read, write, _ := g.spec.mixPcts()
	var kind Kind
	switch d := int(g.mixRng.Uint64n(100)); {
	case d < read:
		kind = KindGet
	case d < read+write:
		kind = KindPut
	default:
		kind = KindScan
	}

	// Key: a popularity rank (Zipfian or uniform), rotated by the moving
	// hotspot so which keys are popular changes over time while the
	// popularity *distribution* stays fixed.
	var rank uint64
	if g.zipf != nil {
		rank = g.zipf.next(g.keyRng)
	} else {
		rank = g.keyRng.Uint64n(g.keys)
	}
	key := rank
	if g.hotStep > 0 {
		shift := (uint64(g.now) / g.spec.HotPeriod) * g.hotStep
		key = (rank + shift%g.keys) % g.keys
	}

	op := Op{Kind: kind, Key: key}
	if kind == KindScan {
		op.ScanLen = g.spec.scanLen()
	}
	return Event{At: g.now, Op: op}, true
}

// Events materializes the whole stream. Drivers use this to schedule
// every arrival before the run starts (open loop: arrivals never depend
// on service progress).
func (g *Gen) Events() []Event {
	out := make([]Event, 0, g.Remaining())
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// zipfian samples popularity ranks 0..n-1 with P(rank i) proportional to
// 1/(i+1)^theta — the standard YCSB construction: precompute the
// generalized harmonic number zeta(n, theta) once, then invert the CDF
// approximately per draw in O(1).
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, the rank-1 CDF step
}

func newZipfian(n uint64, theta float64) *zipfian {
	z := &zipfian{n: n, theta: theta}
	for i := uint64(1); i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	z.half = math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := 1 + z.half
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

func (z *zipfian) next(r *sim.PRNG) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	rank := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if rank >= z.n {
		rank = z.n - 1
	}
	return rank
}
