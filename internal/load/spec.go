// Package load is a deterministic open-loop workload generator for the
// serving apps: seeded Zipfian key popularity with a moving hotspot,
// flash-crowd bursts, and a read/write/scan operation mix, emitted as a
// stream of arrival events timestamped in simulated cycles. Open-loop
// means arrivals do not wait for completions — the generator decides
// when requests arrive, and a slow server builds queueing delay instead
// of throttling the offered load, which is what exposes tail latency.
//
// All randomness comes from forked sim.PRNG streams (one per decision
// axis: arrival gaps, key choice, operation mix), so the sequence for a
// given (spec, seed) is a pure function — the determinism contract the
// rest of the simulator keeps.
package load

import (
	"fmt"
	"strconv"
	"strings"
)

// Limits keep a parsed spec cheap to instantiate: the Zipfian sampler
// precomputes an O(Keys) normalization constant, and drivers materialize
// the full event list up front.
const (
	// MaxKeys bounds the key population.
	MaxKeys = 1 << 22
	// MaxOps bounds the number of generated events.
	MaxOps = 1 << 24
)

// Defaults applied when the spec leaves a field zero.
const (
	// DefaultKeys is the key-population size.
	DefaultKeys = 1024
	// DefaultOps is the number of generated arrival events.
	DefaultOps = 2000
	// DefaultPeriod is the mean inter-arrival gap in cycles.
	DefaultPeriod = 500
	// DefaultScanLen is the range-scan length in keys.
	DefaultScanLen = 16
	// DefaultReadPct/DefaultWritePct is the operation mix when the spec
	// sets none (no scans by default — scans need an app with an index).
	DefaultReadPct  = 90
	DefaultWritePct = 10
)

// Spec describes one open-loop workload. The zero Spec (and a nil *Spec)
// is a valid default workload: uniform key popularity, the default mix,
// no hotspot, no burst. Fields left zero take the package defaults.
type Spec struct {
	Keys   uint64  // key-population size (default DefaultKeys)
	Ops    uint64  // number of arrival events (default DefaultOps)
	Period float64 // mean inter-arrival gap in cycles (default DefaultPeriod)
	Theta  float64 // Zipfian skew in [0,1); 0 means uniform

	// ReadPct/WritePct/ScanPct set the operation mix in percent; they
	// must sum to 100 when any is set. All zero means the default mix.
	ReadPct, WritePct, ScanPct int
	ScanLen                    int // keys per scan (default DefaultScanLen)

	// HotShift/HotPeriod make the popularity ranking rotate: every
	// HotPeriod cycles the whole ranking shifts by floor(HotShift*Keys)
	// key positions, so yesterday's hot keys go cold. Zero HotPeriod
	// disables the hotspot.
	HotShift  float64
	HotPeriod uint64

	// BurstMult/BurstStart/BurstLen inject one flash crowd: inside
	// [BurstStart, BurstStart+BurstLen) the mean inter-arrival gap is
	// divided by BurstMult. Zero BurstLen disables the burst.
	BurstMult  float64
	BurstStart uint64
	BurstLen   uint64

	// Seed overrides the generator seed the driver passes; 0 defers.
	Seed uint64
}

func (s *Spec) keys() uint64 {
	if s == nil || s.Keys == 0 {
		return DefaultKeys
	}
	return s.Keys
}

func (s *Spec) ops() uint64 {
	if s == nil || s.Ops == 0 {
		return DefaultOps
	}
	return s.Ops
}

func (s *Spec) period() float64 {
	if s == nil || s.Period == 0 {
		return DefaultPeriod
	}
	return s.Period
}

func (s *Spec) scanLen() int {
	if s == nil || s.ScanLen == 0 {
		return DefaultScanLen
	}
	return s.ScanLen
}

func (s *Spec) theta() float64 {
	if s == nil {
		return 0
	}
	return s.Theta
}

// NumKeys returns the effective key-population size (defaults applied).
// Drivers size their stores from it.
func (s *Spec) NumKeys() uint64 { return s.keys() }

// NumOps returns the effective event count (defaults applied).
func (s *Spec) NumOps() uint64 { return s.ops() }

// mixPcts returns the effective read/write/scan percentages.
func (s *Spec) mixPcts() (read, write, scan int) {
	if s == nil || s.ReadPct+s.WritePct+s.ScanPct == 0 {
		return DefaultReadPct, DefaultWritePct, 0
	}
	return s.ReadPct, s.WritePct, s.ScanPct
}

// String renders the spec in the grammar ParseSpec accepts. Only fields
// that differ from the defaults appear, so String of a zero spec is ""
// (which re-parses to a nil spec — the same workload).
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	addU := func(k string, v uint64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatUint(v, 10))
		}
	}
	addU("keys", s.Keys)
	addU("ops", s.Ops)
	if s.Period != 0 {
		parts = append(parts, "period="+fmtF(s.Period))
	}
	if s.Theta != 0 {
		parts = append(parts, "zipf="+fmtF(s.Theta))
	}
	if s.ReadPct+s.WritePct+s.ScanPct != 0 {
		parts = append(parts, fmt.Sprintf("mix=%d:%d:%d", s.ReadPct, s.WritePct, s.ScanPct))
	}
	if s.ScanLen != 0 {
		parts = append(parts, fmt.Sprintf("scan=%d", s.ScanLen))
	}
	if s.HotPeriod != 0 {
		parts = append(parts, fmt.Sprintf("hot=%s:%d", fmtF(s.HotShift), s.HotPeriod))
	}
	if s.BurstLen != 0 {
		parts = append(parts, fmt.Sprintf("burst=%s:%d:%d", fmtF(s.BurstMult), s.BurstStart, s.BurstLen))
	}
	addU("seed", s.Seed)
	return strings.Join(parts, ",")
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseSpec parses a comma-separated workload spec, e.g.
//
//	keys=4096,ops=5000,period=300,zipf=0.99,mix=70:25:5,hot=0.25:100000,burst=4:200000:50000
//
// Keys: keys, ops, period (mean inter-arrival cycles), zipf (skew theta
// in [0,1)), mix=READ:WRITE:SCAN (percentages summing to 100),
// scan (keys per scan), hot=SHIFT:PERIOD (ranking rotation: fraction of
// the key space per PERIOD cycles), burst=MULT:START:LEN (flash crowd:
// arrival rate times MULT inside the window), seed. An empty string
// parses to a nil spec (the default workload).
func ParseSpec(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	s := &Spec{}
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok || val == "" {
			return nil, fmt.Errorf("load: malformed token %q (want key=value)", tok)
		}
		switch key {
		case "keys":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n < 1 || n > MaxKeys {
				return nil, fmt.Errorf("load: keys wants an integer in [1,%d], got %q", MaxKeys, val)
			}
			s.Keys = n
		case "ops":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n < 1 || n > MaxOps {
				return nil, fmt.Errorf("load: ops wants an integer in [1,%d], got %q", MaxOps, val)
			}
			s.Ops = n
		case "period":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || !(p >= 1) || p > 1e12 {
				return nil, fmt.Errorf("load: period wants mean inter-arrival cycles >= 1, got %q", val)
			}
			s.Period = p
		case "zipf":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil || !(t >= 0) || t >= 1 {
				return nil, fmt.Errorf("load: zipf wants a skew theta in [0,1), got %q", val)
			}
			s.Theta = t
		case "mix":
			f := strings.Split(val, ":")
			pcts := make([]int, len(f))
			sum, bad := 0, len(f) != 3
			for i, part := range f {
				if bad {
					break
				}
				n, err := strconv.Atoi(part)
				if err != nil || n < 0 {
					bad = true
					break
				}
				pcts[i], sum = n, sum+n
			}
			if bad || sum != 100 {
				return nil, fmt.Errorf("load: mix wants READ:WRITE:SCAN percentages summing to 100, got %q", val)
			}
			s.ReadPct, s.WritePct, s.ScanPct = pcts[0], pcts[1], pcts[2]
		case "scan":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 1<<16 {
				return nil, fmt.Errorf("load: scan wants a length in [1,%d], got %q", 1<<16, val)
			}
			s.ScanLen = n
		case "hot":
			shiftStr, perStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("load: hot wants SHIFT:PERIOD, got %q", val)
			}
			shift, err1 := strconv.ParseFloat(shiftStr, 64)
			per, err2 := strconv.ParseUint(perStr, 10, 64)
			if err1 != nil || err2 != nil || !(shift > 0) || shift > 1 || per == 0 {
				return nil, fmt.Errorf("load: hot wants SHIFT in (0,1] and PERIOD cycles > 0, got %q", val)
			}
			s.HotShift, s.HotPeriod = shift, per
		case "burst":
			f := strings.SplitN(val, ":", 3)
			if len(f) != 3 {
				return nil, fmt.Errorf("load: burst wants MULT:START:LEN, got %q", val)
			}
			mult, err1 := strconv.ParseFloat(f[0], 64)
			start, err2 := strconv.ParseUint(f[1], 10, 64)
			length, err3 := strconv.ParseUint(f[2], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || !(mult > 1) || mult > 1e6 || length == 0 {
				return nil, fmt.Errorf("load: burst wants MULT > 1 and LEN > 0, got %q", val)
			}
			s.BurstMult, s.BurstStart, s.BurstLen = mult, start, length
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("load: seed wants a positive integer, got %q", val)
			}
			s.Seed = n
		default:
			return nil, fmt.Errorf("load: unknown key %q (want keys, ops, period, zipf, mix, scan, hot, burst, seed)", key)
		}
	}
	return s, nil
}
