package load

import "testing"

func TestParseSpecRoundTrip(t *testing.T) {
	for _, text := range []string{
		"keys=4096",
		"keys=4096,ops=5000,period=300,zipf=0.99,mix=70:25:5,scan=8",
		"hot=0.25:100000",
		"burst=4:200000:50000,seed=7",
		"zipf=0.5,mix=100:0:0",
		"period=1.5",
	} {
		s, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Fatalf("ParseSpec(%q).String() = %q", text, got)
		}
	}
	if s, err := ParseSpec(""); err != nil || s != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", s, err)
	}
	if s, err := ParseSpec(" keys=10 , ops=20 "); err != nil || s.String() != "keys=10,ops=20" {
		t.Fatalf("whitespace tolerance: (%v, %v)", s, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, text := range []string{
		"keys=0", "keys=4194305", "keys=x",
		"ops=0", "ops=16777217",
		"period=0", "period=0.5", "period=Inf",
		"zipf=1", "zipf=-0.1", "zipf=NaN",
		"mix=50:50", "mix=50:50:50", "mix=101:-1:0", "mix=a:b:c",
		"scan=0", "scan=65537",
		"hot=0:100", "hot=1.5:100", "hot=0.5:0", "hot=0.5",
		"burst=1:0:100", "burst=4:0:0", "burst=4:0", "burst=Inf:0:1",
		"seed=0", "bogus=1", "keys",
		"keys=",
	} {
		if _, err := ParseSpec(text); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", text)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	var s *Spec
	if s.keys() != DefaultKeys || s.ops() != DefaultOps || s.period() != DefaultPeriod || s.scanLen() != DefaultScanLen {
		t.Fatal("nil spec does not yield defaults")
	}
	r, w, c := s.mixPcts()
	if r != DefaultReadPct || w != DefaultWritePct || c != 0 {
		t.Fatalf("nil spec mix = %d:%d:%d", r, w, c)
	}
	s2 := &Spec{Keys: 10, ReadPct: 50, WritePct: 30, ScanPct: 20}
	r, w, c = s2.mixPcts()
	if r != 50 || w != 30 || c != 20 {
		t.Fatalf("explicit mix = %d:%d:%d", r, w, c)
	}
	if s2.keys() != 10 || s2.ops() != DefaultOps {
		t.Fatal("partial spec does not merge defaults")
	}
}
