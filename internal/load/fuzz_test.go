package load

import "testing"

// FuzzParseSpec checks that every accepted workload spec renders back to
// a canonical string that re-parses to the same spec (String/ParseSpec
// are a fixed point), and that rejection never panics.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"keys=4096,ops=5000,period=300,zipf=0.99,mix=70:25:5,scan=8",
		"hot=0.25:100000,burst=4:200000:50000,seed=7",
		"zipf=0",
		"zipf=0.5,mix=100:0:0",
		"mix=0:0:100,scan=65536",
		"keys=1,ops=1,period=1",
		"keys=4194304,ops=16777216",
		"period=1e6",
		"mix=33:33:34",
		" keys=10 , ops=20 ",
		"seed=18446744073709551615",
		"hot=1:1",
		"burst=1000000:0:1",
		"zipf=1",
		"mix=50:50",
		"period=0.5",
		"bogus=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, text, err)
		}
		if s2.String() != canon {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", text, canon, s2.String())
		}
	})
}
