package harness

import (
	"fmt"
	"strings"

	"compmig/internal/core"
)

// ParseScheme parses a command-line scheme spec: a mechanism ("rpc",
// "cm", "sm", or "om") optionally followed by "+hw" and/or "+repl",
// e.g. "cm+repl+hw".
func ParseScheme(spec string) (core.Scheme, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(spec)), "+")
	var s core.Scheme
	switch parts[0] {
	case "rpc":
		s.Mechanism = core.RPC
	case "cm", "cp", "migrate":
		s.Mechanism = core.Migrate
	case "sm", "shm", "sharedmem":
		s.Mechanism = core.SharedMem
	case "om", "obj", "objmigrate":
		s.Mechanism = core.ObjMigrate
	default:
		return s, fmt.Errorf("unknown mechanism %q (want rpc, cm, sm, or om)", parts[0])
	}
	for _, opt := range parts[1:] {
		switch opt {
		case "hw":
			s.HWMessaging = true
			s.HWTranslate = true
		case "repl":
			s.Replication = true
		default:
			return s, fmt.Errorf("unknown scheme option %q (want hw or repl)", opt)
		}
	}
	if s.Mechanism == core.SharedMem && (s.HWMessaging || s.Replication) {
		return s, fmt.Errorf("shared memory already includes hardware support and replication")
	}
	return s, nil
}
