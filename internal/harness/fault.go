package harness

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/fault"
)

// faultRates are the ext-fault sweep's per-transmission drop rates.
// Each faulty point also duplicates at half the drop rate and jitters
// deliveries by up to 40 cycles; rate 0 is the clean baseline (no
// injector attached at all).
var faultRates = []float64{0, 0.02, 0.05}

// faultSchemes are the mechanisms the sweep degrades. Object migration
// is covered by the recovery unit tests; the paper's three core
// mechanisms are what the figure compares.
func faultSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.RPC},
		{Mechanism: core.Migrate},
		{Mechanism: core.SharedMem},
	}
}

// faultPlan builds the sweep's plan for one drop rate (nil at rate 0).
// This experiment ignores Options.Faults — the sweep is the plan.
func faultPlan(rate float64, seed uint64) *fault.Spec {
	if rate == 0 {
		return nil
	}
	return &fault.Spec{Drop: rate, Dup: rate / 2, DelayMax: 40, Seed: seed}
}

// faultExp sweeps fault rate against counting-network completion
// throughput for each mechanism, and reports the recovery work and the
// post-run invariant verdict at the highest rate.
func faultExp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := faultSchemes()
	var specs []RunSpec
	for _, s := range schemes {
		for _, rate := range faultRates {
			cfg := countnet.Config{
				Threads: 16, Scheme: s,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
				Faults: faultPlan(rate, o.seed()),
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("ext-fault/%s/drop=%g", s.Name(), rate),
				Run:   func() any { return countnet.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-FAULT",
			Title: "Counting network under message faults, requests/1000 cycles",
			Note: "drop=R also duplicates at R/2 and jitters deliveries up to 40 cycles; " +
				"retransmissions keep every mechanism correct (invariants column) at the " +
				"cost of throughput",
			Headers: faultHeaders(),
		}
		i := 0
		for _, s := range schemes {
			row := []string{s.Name()}
			var worst countnet.Result
			for range faultRates {
				r := results[i].(countnet.Result)
				i++
				row = append(row, fmt.Sprintf("%.2f", r.Throughput))
				worst = r
			}
			t.Rows = append(t.Rows, append(row, faultCells(worst.Fault, worst.InvariantErr)...))
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// btreeFaultExp is the same sweep on the B-tree workload.
func btreeFaultExp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := faultSchemes()
	var specs []RunSpec
	for _, s := range schemes {
		for _, rate := range faultRates {
			cfg := btree.Config{
				Scheme: s, Think: 0,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
				Faults: faultPlan(rate, o.seed()),
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("ext-fault-btree/%s/drop=%g", s.Name(), rate),
				Run:   func() any { return btree.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-FAULT-BTREE",
			Title: "B-tree under message faults, ops/1000 cycles (0 think time)",
			Note: "invariants = structural B-link checks plus exact key-set integrity " +
				"against the host-tracked successful inserts",
			Headers: faultHeaders(),
		}
		i := 0
		for _, s := range schemes {
			row := []string{s.Name()}
			var worst btree.Result
			for range faultRates {
				r := results[i].(btree.Result)
				i++
				row = append(row, fmt.Sprintf("%.3f", r.Throughput))
				worst = r
			}
			t.Rows = append(t.Rows, append(row, faultCells(worst.Fault, worst.InvariantErr)...))
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

func faultHeaders() []string {
	h := []string{"scheme"}
	for _, rate := range faultRates {
		h = append(h, fmt.Sprintf("drop=%g%%", rate*100))
	}
	return append(h, "retx@5%", "invariants")
}

// faultCells renders the highest-rate point's recovery work and
// invariant verdict.
func faultCells(c *fault.Counters, invErr string) []string {
	retx := "-"
	if c != nil {
		retx = fmt.Sprintf("%d", c.Retransmits)
	}
	inv := "ok"
	if invErr != "" {
		inv = "VIOLATED: " + invErr
	}
	return []string{retx, inv}
}

// FaultSweep runs the ext-fault extension on both applications and
// returns the counting-network and B-tree tables.
func FaultSweep(o Options) (Table, Table) {
	tabs := append(faultExp(o).run(o.workers()), btreeFaultExp(o).run(o.workers())...)
	return tabs[0], tabs[1]
}
