package harness

import (
	"testing"
)

// renderKV runs the ext-kv sweep at the given worker count and returns
// the rendered tables plus their concatenated text.
func renderKV(t *testing.T, workers int) ([]Table, string) {
	t.Helper()
	o := quick
	o.Workers = workers
	tabs, err := Run("ext-kv", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(kvHeteros()) {
		t.Fatalf("ext-kv rendered %d tables, want %d", len(tabs), len(kvHeteros()))
	}
	var out string
	for _, tb := range tabs {
		out += tb.String()
	}
	return tabs, out
}

// TestKVWorkerIdentity pins the determinism contract: the rendered
// ext-kv tables are byte-identical at any worker count.
func TestKVWorkerIdentity(t *testing.T) {
	_, serial := renderKV(t, 1)
	_, pooled := renderKV(t, 4)
	if serial != pooled {
		t.Fatalf("ext-kv rendered differently at workers=1 vs workers=4:\n%s\nvs\n%s", serial, pooled)
	}
}

// kvThr extracts a policy row's throughput at the skewed workload
// (column 3: thr at zipf=0.99).
func kvThr(t *testing.T, tb Table, policy string) float64 {
	t.Helper()
	return parse(t, rowByScheme(t, tb, policy)[3])
}

// TestKVCrossover pins the extension's headline claim: the machine's
// speed profile decides the best static mechanism, and the speed-aware
// cost model tracks it on both sides of the crossover.
//
// On the uniform machine shared memory wins (its record accesses execute
// on the requesting frontends, and nothing is slow). On the gradient
// machine the frontends are the slowest processors, so migrating the
// computation to the faster storage tier beats shared memory — the best
// static flips from static:sm to static:cm. The cost model must match
// the winner on the uniform machine and at least match every static on
// the gradient machine (per-processor pricing lets it beat them by
// mixing mechanisms across origins).
func TestKVCrossover(t *testing.T) {
	tabs, _ := renderKV(t, 0)
	uniform, gradient := tabs[0], tabs[2]

	// Uniform machine: static:sm is the best static.
	smU := kvThr(t, uniform, "static:sm")
	for _, p := range []string{"static:rpc", "static:cm"} {
		if v := kvThr(t, uniform, p); v >= smU {
			t.Errorf("uniform: %s (%.3f) should lose to static:sm (%.3f)", p, v, smU)
		}
	}
	// Gradient machine: the best static differs from the uniform winner.
	cmG, smG := kvThr(t, gradient, "static:cm"), kvThr(t, gradient, "static:sm")
	if cmG <= smG {
		t.Errorf("gradient: static:cm (%.3f) should beat static:sm (%.3f) — no crossover", cmG, smG)
	}
	// The adaptive cost model tracks the winner on both sides. The 2%%
	// slack absorbs sampling noise without letting a wrong pick through
	// (picking the loser costs far more than 2%%).
	cmlU, cmlG := kvThr(t, uniform, "costmodel"), kvThr(t, gradient, "costmodel")
	if cmlU < 0.98*smU {
		t.Errorf("uniform: costmodel (%.3f) does not track static:sm (%.3f)", cmlU, smU)
	}
	for _, p := range []string{"static:rpc", "static:cm", "static:sm"} {
		if v := kvThr(t, gradient, p); cmlG < 0.98*v {
			t.Errorf("gradient: costmodel (%.3f) loses to %s (%.3f)", cmlG, p, v)
		}
	}
}

// TestKVLatencyPercentilesRendered checks every table carries a merged
// latency histogram and monotone percentile columns.
func TestKVLatencyPercentilesRendered(t *testing.T) {
	tabs, _ := renderKV(t, 0)
	for _, tb := range tabs {
		if tb.Latency == nil || tb.Latency.Count() == 0 {
			t.Errorf("%s (%s): no merged latency histogram", tb.ID, tb.Title)
			continue
		}
		p50, p99 := tb.Latency.Quantile(0.50), tb.Latency.Quantile(0.99)
		if p50 == 0 || p99 < p50 {
			t.Errorf("%s (%s): bad percentiles p50=%d p99=%d", tb.ID, tb.Title, p50, p99)
		}
	}
}
