package harness

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
)

// scalePoints are the large-mesh machine shapes of the scale sweep,
// from just above 256 processors to 1,024. The countnet width fixes its
// balancer count (a width-w bitonic network uses w/2 balancers across
// (log2 w)(log2 w+1)/2 stages), so processors = balancers + threads;
// the B-tree reaches the same machine sizes through NodeProcs.
type scalePoint struct {
	cnWidth   int // counting-network width
	cnThreads int
	btProcs   int // B-tree node processors
	btThreads int
}

func scalePoints(quick bool) []scalePoint {
	if quick {
		// One >=256-processor point keeps the smoke run honest without
		// paying for the 1,024-processor builds.
		return []scalePoint{{cnWidth: 32, cnThreads: 64, btProcs: 240, btThreads: 64}}
	}
	return []scalePoint{
		{cnWidth: 32, cnThreads: 64, btProcs: 240, btThreads: 64},   // 304 procs
		{cnWidth: 64, cnThreads: 128, btProcs: 672, btThreads: 128}, // 800 procs
		{cnWidth: 64, cnThreads: 352, btProcs: 960, btThreads: 64},  // 1024 procs
	}
}

// scaleExp is the 256-1,024 processor mesh sweep on both applications.
// Both apps run on a 2D mesh (per-hop latency is what gives the shard
// lanes a real lookahead window); countnet CM/RPC points honor
// Options.Shards and run on the sharded engine, while the B-tree — whose
// root-serialized accesses defeat processor partitioning — always runs
// serially and serves as the serial-scaling baseline.
func scaleExp(o Options) experiment {
	warmup, measure := o.windows()
	points := scalePoints(o.Quick)
	schemes := []core.Scheme{{Mechanism: core.Migrate}, {Mechanism: core.RPC}}
	var specs []RunSpec
	for _, pt := range points {
		for _, s := range schemes {
			cnProcs := countnetProcs(pt.cnWidth, pt.cnThreads)
			cfg := countnet.Config{
				Width: pt.cnWidth, Threads: pt.cnThreads, Scheme: s,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
				Mesh: true, Shards: o.Shards,
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("scale/countnet/%s/procs=%d/shards=%d", s.Name(), cnProcs, o.Shards),
				Run:   func() any { return countnet.RunExperiment(cfg) },
			})
		}
	}
	for _, pt := range points {
		for _, s := range schemes {
			p := btree.DefaultParams()
			p.NodeProcs = pt.btProcs
			cfg := btree.Config{
				Params: p, Threads: pt.btThreads, Scheme: s,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
				Mesh: true, Shards: o.Shards,
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("scale/btree/%s/procs=%d", s.Name(), pt.btProcs+pt.btThreads),
				Run:   func() any { return btree.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:      "SCALE",
			Title:   "Large-mesh scaling, 256-1024 processors (0 think time)",
			Headers: []string{"app", "scheme", "procs", "tput/1000cyc", "words/10cyc", "ops"},
			Note:    "countnet CM/RPC points run on the sharded engine when -shards >= 1; the B-tree is always serial",
		}
		i := 0
		for _, pt := range points {
			for _, s := range schemes {
				r := results[i].(countnet.Result)
				i++
				t.Rows = append(t.Rows, []string{
					"countnet", s.Name(), fmt.Sprintf("%d", countnetProcs(pt.cnWidth, pt.cnThreads)),
					fmt.Sprintf("%.2f", r.Throughput), fmt.Sprintf("%.2f", r.Bandwidth),
					fmt.Sprintf("%d", r.Ops),
				})
			}
		}
		for _, pt := range points {
			for _, s := range schemes {
				r := results[i].(btree.Result)
				i++
				t.Rows = append(t.Rows, []string{
					"btree", s.Name(), fmt.Sprintf("%d", pt.btProcs+pt.btThreads),
					fmt.Sprintf("%.3f", r.Throughput), fmt.Sprintf("%.2f", r.Bandwidth),
					fmt.Sprintf("%d", r.Ops),
				})
			}
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// countnetProcs returns the machine size of a countnet run: one
// processor per balancer plus one per requester thread.
func countnetProcs(width, threads int) int {
	n := 0
	for _, st := range countnet.Bitonic(width).Stages {
		n += len(st)
	}
	return n + threads
}
