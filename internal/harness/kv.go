package harness

import (
	"fmt"

	"compmig/internal/apps/kv"
	"compmig/internal/cost"
	"compmig/internal/load"
	"compmig/internal/stats"
)

// kvSkews lists the two Zipfian thetas the KV extension sweeps: uniform
// popularity and YCSB's heavily skewed 0.99.
func kvSkews() []float64 { return []float64{0, 0.99} }

// kvHeteros lists the processor-speed profiles: a uniform machine, a
// bimodal one whose storage tier (the low-numbered processors, where the
// partitions live) runs 4x slower, and a gradient machine spanning 1-4x.
func kvHeteros() []*cost.Hetero {
	return []*cost.Hetero{
		nil,
		{Kind: "bimodal", Factor: 4, Frac: 0.5},
		{Kind: "gradient", Min: 1, Max: 4},
	}
}

func heteroName(h *cost.Hetero) string {
	if s := h.String(); s != "" {
		return s
	}
	return "uniform"
}

// kvWorkload is the open-loop workload at one skew: a moving hotspot
// rotates a quarter of the key space every 60k cycles and a flash crowd
// triples the arrival rate for 30k cycles, so the offered load is
// time-varying along both the key and time axes.
func kvWorkload(theta float64, quick bool) *load.Spec {
	ops := uint64(4000)
	if quick {
		ops = 800
	}
	return &load.Spec{
		Keys: 512, Ops: ops, Period: 220, Theta: theta,
		ReadPct: 70, WritePct: 25, ScanPct: 5, ScanLen: 8,
		HotShift: 0.25, HotPeriod: 60000,
		BurstMult: 3, BurstStart: 40000, BurstLen: 30000,
	}
}

// kvExp decomposes the KV/session-store extension: every policy at every
// (skew, heterogeneity) point of the sweep. The headline claim is a
// mechanism crossover — the best static mechanism under a slow storage
// tier differs from the uniform-machine winner (shared memory does its
// work on the fast requester processor; RPC and migration execute on the
// slow storage processors) — and the adaptive policies track the winner
// on both sides of the crossover without being told the machine shape.
func kvExp(o Options) experiment {
	pols := policySpecs()
	skews := kvSkews()
	heteros := kvHeteros()
	var specs []RunSpec
	for _, h := range heteros {
		for _, p := range pols {
			for _, theta := range skews {
				cfg := kv.Config{
					Policy: p,
					// 200 cycles per record access makes the per-op compute
					// dominate the mechanism overheads, so where that compute
					// executes — storage tier vs requester — decides the
					// winner on a non-uniform machine.
					AccessCycles: 200,
					Load:         kvWorkload(theta, o.Quick),
					Hetero:       h,
					Faults:       o.Faults,
					Seed:         o.seed(),
				}
				specs = append(specs, RunSpec{
					Label: fmt.Sprintf("ext-kv/%s/zipf=%g/hetero=%s", p, theta, heteroName(h)),
					Run:   func() any { return kv.RunExperiment(cfg) },
				})
			}
		}
	}
	render := func(results []any) []Table {
		var tabs []Table
		i := 0
		for _, h := range heteros {
			t := Table{
				ID:    "EXT-KV",
				Title: fmt.Sprintf("KV store under open-loop load, hetero=%s", heteroName(h)),
				Note: "extension beyond the paper: open-loop arrivals with a moving hotspot and a " +
					"flash crowd; thr is requests/1000 cycles, p99 the tail latency in cycles; " +
					"decisions column is the choice mix at zipf=0.99",
				Headers: []string{"policy", "thr zipf=0", "p99 zipf=0", "thr zipf=0.99", "p99 zipf=0.99", "decisions"},
			}
			hist := &stats.Histogram{}
			for _, p := range pols {
				row := []string{p}
				mix := "-"
				for range skews {
					r := results[i].(kv.Result)
					i++
					if r.InvariantErr != "" {
						panic(fmt.Sprintf("harness: ext-kv %s/%s invariant violated: %s", heteroName(h), p, r.InvariantErr))
					}
					row = append(row, fmt.Sprintf("%.3f", r.Throughput), fmt.Sprintf("%d", r.P99))
					mix = decisionMix(r.Decisions)
					hist.AddFrom(r.Latency)
				}
				row = append(row, mix)
				t.Rows = append(t.Rows, row)
			}
			t.Latency = hist
			tabs = append(tabs, t)
		}
		return tabs
	}
	return experiment{specs: specs, render: render}
}

// KVExtension runs the KV/session-store extension sweep.
func KVExtension(o Options) []Table {
	return kvExp(o).run(o.workers())
}
