package harness

import (
	"strings"
	"testing"

	"compmig/internal/mem"
)

// TestFastPathABIdentity is the suite-level half of the tentpole's
// correctness bar: every experiment rendered with the shared-memory
// inline fast paths enabled must be byte-identical to the same
// experiment with every access forced through the event-driven
// protocol. The tables embed the simulated cycle counts and word
// traffic, so identical bytes means identical simulated metrics.
func TestFastPathABIdentity(t *testing.T) {
	t.Cleanup(func() { mem.SetFastPath(true) })
	render := func(id string, fast bool) string {
		mem.SetFastPath(fast)
		tabs, err := Run(id, quick)
		if err != nil {
			t.Fatalf("Run(%q, fastpath=%v): %v", id, fast, err)
		}
		var b strings.Builder
		for _, tb := range tabs {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			on := render(id, true)
			off := render(id, false)
			if on != off {
				t.Errorf("experiment %q renders differently with fast paths on vs off:\n--- on ---\n%s\n--- off ---\n%s",
					id, on, off)
			}
		})
	}
}
