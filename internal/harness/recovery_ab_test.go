package harness

import (
	"strings"
	"testing"

	"compmig/internal/fault"
)

// TestDurabilityOffIsByteIdentical is the tentpole's A/B identity
// contract: with durability disabled and no wipe windows, the store is
// never constructed, so the whole suite renders byte-identically to a
// run that never heard of it. A ckpt-only spec (interval set, no
// windows) is the sharpest probe: it is non-nil yet must change
// nothing, because the interval only matters once a wipe or -durable
// switches the store on.
func TestDurabilityOffIsByteIdentical(t *testing.T) {
	base := renderAll(t, Options{Quick: true, Workers: 4})
	ckptOnly := renderAll(t, Options{Quick: true, Workers: 4, Faults: &fault.Spec{Ckpt: 10000}})
	if base != ckptOnly {
		t.Error("ckpt-only fault spec perturbed the suite output — durability switched on without a wipe")
	}
}

// TestRecoverySweepReproducible pins the reproducible-recovery-trace
// contract at the harness level: same seed, same table — serial and
// parallel alike.
func TestRecoverySweepReproducible(t *testing.T) {
	render := func(workers int) string {
		tabs, err := Run("ext-recovery", Options{Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tabs {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	first := render(1)
	if again := render(1); again != first {
		t.Error("same-seed recovery sweep diverged between runs")
	}
	if par := render(4); par != first {
		t.Error("recovery sweep differs between workers=1 and workers=4")
	}
}

// TestRecoverySweepInvariantsHold asserts the durability guarantee at
// every sweep point — the renderer already panics if a point ran
// without the store or recovered the wrong number of wipes; here the
// invariant column must be clean and the heaviest plan must have done
// real replay work.
func TestRecoverySweepInvariantsHold(t *testing.T) {
	tb := RecoverySweep(Options{Quick: true, Workers: 4})
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3 mechanisms", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if inv := row[len(row)-1]; inv != "ok" {
			t.Errorf("%s: invariants %q", row[0], inv)
		}
		if replays := row[len(row)-3]; replays == "0" {
			t.Errorf("%s: two wipes recovered with zero WAL replays", row[0])
		}
	}
}
