package harness

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
)

// policySpecs lists the selectors the adaptive-policy extension compares:
// the three static pins (run through the policy engine, so the identity
// contract is exercised on every sweep) against the two adaptive
// policies. Object migration is omitted — it is not an adaptive
// candidate (see internal/policy).
func policySpecs() []string {
	return []string{"static:rpc", "static:cm", "static:sm", "costmodel", "bandit"}
}

// decisionMix renders a policy run's per-mechanism decision counts as a
// compact "rpc:12 cm:3 sm:985" cell (mechanisms with zero decisions are
// omitted).
func decisionMix(d [4]uint64) string {
	out := ""
	for _, m := range []core.Mechanism{core.RPC, core.Migrate, core.SharedMem, core.ObjMigrate} {
		if d[m] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", m.String(), d[m])
	}
	if out == "" {
		return "-"
	}
	return out
}

// policyExp decomposes the adaptive-policy extension on the counting
// network: every policy across the Figure 2 sweep axes (think time x
// thread count). The headline claim is that costmodel tracks the best
// static mechanism at every point without knowing the workload, while
// the statics each lose somewhere.
func policyExp(o Options) experiment {
	warmup, measure := o.windows()
	threads := threadCounts(o.Quick)
	thinks := []uint64{0, 10000}
	pols := policySpecs()
	var specs []RunSpec
	for _, think := range thinks {
		for _, p := range pols {
			for _, n := range threads {
				cfg := countnet.Config{
					Threads: n, Think: think, Policy: p,
					Seed: o.seed(), Warmup: warmup, Measure: measure,
					Faults: o.Faults,
				}
				specs = append(specs, RunSpec{
					Label: fmt.Sprintf("ext-policy/%s/think=%d/threads=%d", p, think, n),
					Run:   func() any { return countnet.RunExperiment(cfg) },
				})
			}
		}
	}
	render := func(results []any) []Table {
		var tabs []Table
		i := 0
		for _, think := range thinks {
			t := Table{
				ID:    "EXT-POLICY",
				Title: fmt.Sprintf("Counting network under online mechanism selection, requests/1000 cycles (think=%d)", think),
				Note: "extension beyond the paper (§6's open direction): costmodel picks per " +
					"operation from live statistics and tracks the best static mechanism; " +
					"decisions column is the per-mechanism choice mix at the largest thread count",
			}
			t.Headers = []string{"policy"}
			for _, n := range threads {
				t.Headers = append(t.Headers, fmt.Sprintf("%d", n))
			}
			t.Headers = append(t.Headers, "decisions")
			for _, p := range pols {
				row := []string{p}
				mix := "-"
				for range threads {
					r := results[i].(countnet.Result)
					i++
					row = append(row, fmt.Sprintf("%.2f", r.Throughput))
					mix = decisionMix(r.Decisions)
				}
				row = append(row, mix)
				t.Rows = append(t.Rows, row)
			}
			tabs = append(tabs, t)
		}
		return tabs
	}
	return experiment{specs: specs, render: render}
}

// btreePolicyExp decomposes the same extension on the B-tree, at the
// paper's two contention levels.
func btreePolicyExp(o Options) experiment {
	warmup, measure := o.windows()
	thinks := []uint64{0, 10000}
	pols := policySpecs()
	var specs []RunSpec
	for _, p := range pols {
		for _, think := range thinks {
			cfg := btree.Config{
				Think: think, Policy: p, Seed: o.seed(),
				Warmup: warmup, Measure: measure,
				Faults: o.Faults,
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("ext-policy-btree/%s/think=%d", p, think),
				Run:   func() any { return btree.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-POLICY-BTREE",
			Title: "B-tree under online mechanism selection, ops/1000 cycles",
			Note: "extension beyond the paper: the lookup and insert call sites decide " +
				"independently; decisions column is the combined choice mix at think=0",
			Headers: []string{"policy", "think=0", "think=10000", "decisions"},
		}
		i := 0
		for _, p := range pols {
			row := []string{p}
			mix := "-"
			for ti := range thinks {
				r := results[i].(btree.Result)
				i++
				row = append(row, fmt.Sprintf("%.3f", r.Throughput))
				if ti == 0 {
					mix = decisionMix(r.Decisions)
				}
			}
			row = append(row, mix)
			t.Rows = append(t.Rows, row)
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// PolicyExtension runs the adaptive-policy extension on both apps.
func PolicyExtension(o Options) []Table {
	exp := policyExp(o)
	bexp := btreePolicyExp(o)
	specs := append(append([]RunSpec{}, exp.specs...), bexp.specs...)
	results := runSpecs(specs, o.workers())
	tabs := exp.render(results[:len(exp.specs)])
	return append(tabs, bexp.render(results[len(exp.specs):])...)
}
