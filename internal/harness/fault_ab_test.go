package harness

import (
	"strings"
	"testing"

	"compmig/internal/fault"
)

func renderAll(t *testing.T, o Options) string {
	t.Helper()
	tabs, err := Run("all", o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tb := range tabs {
		b.WriteString(tb.String())
		b.WriteString(tb.Markdown())
	}
	return b.String()
}

// TestFaultZeroSpecIsByteIdentical is the tentpole's zero-fault
// contract: a disabled fault plan (zero spec, or an empty -faults string
// nil) attaches no injector, so the whole suite renders byte-identically
// to a run that never heard of faults.
func TestFaultZeroSpecIsByteIdentical(t *testing.T) {
	nilPlan := renderAll(t, Options{Quick: true, Workers: 4})
	zeroPlan := renderAll(t, Options{Quick: true, Workers: 4, Faults: &fault.Spec{}})
	if nilPlan != zeroPlan {
		t.Error("zero fault spec perturbed the suite output")
	}
	parsed, err := ParseFaults("")
	if err != nil || parsed != nil {
		t.Fatalf(`ParseFaults("") = %v, %v; want nil, nil`, parsed, err)
	}
	emptyFlag := renderAll(t, Options{Quick: true, Workers: 4, Faults: parsed})
	if nilPlan != emptyFlag {
		t.Error(`-faults "" perturbed the suite output`)
	}
}

// An enabled plan must actually reach the applications through
// Options.Faults — otherwise the zero-spec identity above is vacuous.
func TestFaultSpecPerturbsExperiments(t *testing.T) {
	clean, err := Run("table1", quick)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run("table1", Options{Quick: true, Faults: &fault.Spec{Drop: 0.05, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if clean[0].String() == faulty[0].String() {
		t.Error("5% drop plan left table1 untouched — Options.Faults not plumbed?")
	}
}

// TestFaultSweepReproducible pins the determinism contract for faulty
// runs: same seed, same tables — serial and parallel alike.
func TestFaultSweepReproducible(t *testing.T) {
	render := func(workers int) string {
		tabs, err := Run("ext-fault", Options{Quick: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, tb := range tabs {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	first := render(1)
	if again := render(1); again != first {
		t.Error("same-seed faulty sweep diverged between runs")
	}
	if par := render(4); par != first {
		t.Error("faulty sweep differs between workers=1 and workers=4")
	}
}

// TestFaultSweepInvariantsHold asserts both applications survive the
// sweep's highest drop rate with their invariant checkers clean, and
// that recovery work actually happened.
func TestFaultSweepInvariantsHold(t *testing.T) {
	cn, bt := FaultSweep(Options{Quick: true, Workers: 4})
	for _, tb := range []Table{cn, bt} {
		if len(tb.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3 mechanisms", tb.ID, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			inv := row[len(row)-1]
			if inv != "ok" {
				t.Errorf("%s %s: invariants %q", tb.ID, row[0], inv)
			}
			if retx := row[len(row)-2]; retx == "-" || retx == "0" {
				t.Errorf("%s %s: no retransmissions at 5%% drop (retx=%s)", tb.ID, row[0], retx)
			}
		}
	}
}
