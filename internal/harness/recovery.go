package harness

import (
	"fmt"

	"compmig/internal/apps/kv"
	"compmig/internal/fault"
	"compmig/internal/load"
)

// recoveryPoint is one column of the ext-recovery sweep: how many
// storage processors get wiped, and the checkpoint interval in force
// (0 = cost.DefaultCkptInterval).
type recoveryPoint struct {
	wipes int
	ckpt  uint64
	label string
}

// recoveryPoints sweeps wipe frequency at the default checkpoint
// interval, plus the heaviest crash plan under frequent checkpoints
// (shorter WAL suffixes to replay, more fold work during the run).
func recoveryPoints() []recoveryPoint {
	return []recoveryPoint{
		{0, 0, "wipes=0"},
		{1, 0, "wipes=1"},
		{2, 0, "wipes=2"},
		{2, 10000, "wipes=2,ckpt=10k"},
	}
}

// recoveryPlan builds the fault plan for one sweep point. Every window
// is a wipe: the processor's volatile state is discarded at the window
// start and rebuilt from checkpoint + WAL suffix. nil when the point
// has neither wipes nor a checkpoint override (the run is still durable
// — the experiment forces the WAL on at every point).
func recoveryPlan(p recoveryPoint) *fault.Spec {
	var ws []fault.Window
	if p.wipes >= 1 {
		ws = append(ws, fault.Window{Proc: 2, Start: 60000, Dur: 8000, Wipe: true})
	}
	if p.wipes >= 2 {
		ws = append(ws, fault.Window{Proc: 5, Start: 120000, Dur: 8000, Wipe: true})
	}
	if len(ws) == 0 && p.ckpt == 0 {
		return nil
	}
	return &fault.Spec{Windows: ws, Ckpt: p.ckpt}
}

// recoveryLoad is a steady write-heavy open-loop workload: no bursts or
// hotspot motion, so throughput differences across the sweep are the
// durability and recovery costs, not workload drift. The makespan
// (ops x period) comfortably covers both wipe windows.
func recoveryLoad(quick bool) *load.Spec {
	ops := uint64(4000)
	if quick {
		ops = 1000
	}
	return &load.Spec{
		Keys: 256, Ops: ops, Period: 220, Theta: 0.9,
		ReadPct: 45, WritePct: 50, ScanPct: 5, ScanLen: 8,
	}
}

// recoveryExp sweeps mechanism x wipe frequency x checkpoint interval
// on the KV store with the WAL on at every point. The durability
// guarantee — no acknowledged write lost across a wipe — is asserted at
// every point; the table reports how much throughput each mechanism
// pays and the recovery work at the heaviest default-interval plan.
func recoveryExp(o Options) experiment {
	schemes := faultSchemes()
	points := recoveryPoints()
	var specs []RunSpec
	for _, s := range schemes {
		for _, p := range points {
			cfg := kv.Config{
				Scheme:  s,
				Durable: true,
				Load:    recoveryLoad(o.Quick),
				Faults:  recoveryPlan(p),
				Seed:    o.seed(),
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("ext-recovery/%s/%s", s.Name(), p.label),
				Run:   func() any { return kv.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-RECOVERY",
			Title: "KV durability under loss-inducing crashes, requests/1000 cycles",
			Note: "every point runs with the per-processor WAL on; a wipe discards a storage " +
				"processor's volatile state mid-run and recovery replays checkpoint + WAL " +
				"suffix in simulated time; the invariant column asserts no acked write was " +
				"lost; CM's appends stay home-local (§2.5) so it degrades least, while RPC " +
				"serializes handler-side appends behind the recovering processor's replay",
			Headers: []string{"scheme"},
		}
		for _, p := range points {
			t.Headers = append(t.Headers, p.label)
		}
		t.Headers = append(t.Headers, "replays@w2", "rec-cycles@w2", "invariants")
		i := 0
		for range schemes {
			r0 := results[i].(kv.Result)
			row := []string{r0.Scheme}
			var atW2 kv.Result
			inv := "ok"
			for _, p := range points {
				r := results[i].(kv.Result)
				i++
				row = append(row, fmt.Sprintf("%.3f", r.Throughput))
				if r.Recovery == nil {
					panic("harness: ext-recovery point ran without the durability store")
				}
				if uint64(p.wipes) != r.Recovery.Wipes {
					panic(fmt.Sprintf("harness: ext-recovery %s/%s recovered %d wipes, want %d",
						r.Scheme, p.label, r.Recovery.Wipes, p.wipes))
				}
				if p.wipes == 2 && p.ckpt == 0 {
					atW2 = r
				}
				if r.InvariantErr != "" && inv == "ok" {
					inv = "VIOLATED: " + r.InvariantErr
				}
			}
			row = append(row,
				fmt.Sprintf("%d", atW2.Recovery.Replays),
				fmt.Sprintf("%d", atW2.Recovery.RecoveryCycles),
				inv)
			t.Rows = append(t.Rows, row)
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// RecoverySweep runs the ext-recovery extension and returns its table.
func RecoverySweep(o Options) Table {
	return recoveryExp(o).run(o.workers())[0]
}
