package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunSpec is one independent simulation job: a fully-configured machine
// build + run that produces raw metrics. A spec owns its engine and seed
// and shares no state with any other spec, so any subset of a spec list
// may execute concurrently without changing its result.
type RunSpec struct {
	// Label identifies the job (experiment/scheme/point) in logs and
	// bench output.
	Label string
	// Run builds a fresh machine, runs the workload, and returns the raw
	// metrics the experiment's renderer consumes.
	Run func() any
}

// experiment pairs one sweep's spec list with a renderer that assembles
// the rendered tables from the results, which arrive in spec order. The
// split lets Run pool the specs of many experiments onto one set of
// workers while table assembly stays deterministic.
type experiment struct {
	specs  []RunSpec
	render func(results []any) []Table
}

// run executes the experiment's specs on workers host goroutines and
// renders its tables.
func (ex experiment) run(workers int) []Table {
	return ex.render(runSpecs(ex.specs, workers))
}

// runSpecs executes specs on a pool of workers host goroutines and
// returns the results in spec order. workers <= 1 runs every spec
// serially in the calling goroutine; because each spec is self-contained,
// the results are identical for every worker count.
func runSpecs(specs []RunSpec, workers int) []any {
	results := make([]any, len(specs))
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			results[i] = specs[i].Run()
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				results[i] = specs[i].Run()
			}
		}()
	}
	wg.Wait()
	return results
}

// workers resolves Options.Workers: 0 (or negative) means one worker per
// available CPU.
func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}
