// Package harness regenerates every table and figure in the paper's
// evaluation section (§4). Each experiment builds a fresh simulated
// machine, runs the paper's workload, and renders a text table with the
// paper's reported value alongside the measured one where the paper
// gives a number.
//
// Every experiment is decomposed into independent RunSpec jobs — one
// fully-configured machine build + run each — executed on a host-side
// worker pool (Options.Workers). Tables are assembled from the results
// in deterministic spec order, so the output is byte-identical for any
// worker count.
//
// Absolute cycle counts differ from the paper's (our substrate is a
// reimplemented simulator, not the authors' Proteus setup); the claims
// under reproduction are the orderings and rough factors — see
// EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/fault"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Options controls experiment scale and execution.
type Options struct {
	// Quick shrinks the measurement windows for tests and smoke runs.
	Quick bool
	// Seed makes the whole suite reproducible; 0 means 1.
	Seed uint64
	// Workers is the number of host goroutines running simulation jobs
	// concurrently: 0 means one per available CPU, 1 runs everything
	// serially in the calling goroutine. Results do not depend on it.
	Workers int
	// Faults applies a deterministic fault plan to every workload
	// experiment (the fig2/table/smallnode/ext sweeps; the fig1 and
	// table5 microbenchmarks are exempt). A nil or all-zero plan changes
	// nothing — output stays byte-identical to a fault-free run. The
	// ext-fault experiment ignores this field: it sweeps its own plans.
	Faults *fault.Spec
	// Shards, when >= 1, runs parallel-eligible simulations on that many
	// sharded event engines (countnet CM/RPC points; everything else
	// falls back to the serial engine — see countnet.Config.Shards).
	// Results are identical for any Shards >= 1 but differ from the
	// serial engine's, so the pinned-baseline suites keep Shards == 0.
	Shards int
}

// ParseFaults parses the -faults flag grammar into a plan for
// Options.Faults: comma-separated drop=F, dup=F, reorder=F,
// delay=MIN:MAX, crash=pN@START+DUR, pause=pN@START+DUR, seed=N,
// rto=N, rtomax=N, retries=N. An empty string yields nil (no faults).
func ParseFaults(text string) (*fault.Spec, error) {
	return fault.ParseSpec(text)
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) windows() (warmup, measure sim.Time) {
	if o.Quick {
		return 10000, 60000
	}
	return 20000, 300000
}

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
	// Latency, when an experiment measures per-request latency (ext-kv),
	// carries the merged latency distribution across the table's runs so
	// bench output can report percentiles. The text and Markdown
	// renderers ignore it.
	Latency *stats.Histogram
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// btreeSchemes lists the nine rows of Tables 1 and 2 in the paper's order.
func btreeSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.RPC},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.RPC, Replication: true},
		{Mechanism: core.RPC, Replication: true, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.Migrate, Replication: true},
		{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
	}
}

// lowContentionSchemes lists the rows of Tables 3 and 4.
func lowContentionSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
		{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
	}
}

// countnetSchemes lists the five curves of Figures 2 and 3.
func countnetSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.RPC},
	}
}

// abPolicyStatic, when true, reroutes every scheme-driven experiment
// config through the policy engine pinned to the scheme's own mechanism
// (Policy: "static:<mech>"). The A/B identity suite uses it to assert
// that the policy layer reproduces every rendered table byte-identically
// when it always decides what the static scheme would have done.
var abPolicyStatic bool

func abPolicy(m core.Mechanism) string {
	if !abPolicyStatic {
		return ""
	}
	return "static:" + strings.ToLower(m.String())
}

// threadCounts are Figure 2/3's x axis.
func threadCounts(quick bool) []int {
	if quick {
		return []int{8, 32, 64}
	}
	return []int{8, 16, 32, 48, 64}
}

// ExperimentIDs lists every experiment id Run accepts, excluding "all".
func ExperimentIDs() []string {
	return []string{"fig1", "fig2", "fig3", "table1", "table2", "table3",
		"table4", "table5", "smallnode", "ext-objmig", "ext-policy",
		"ext-fault", "ext-kv", "ext-recovery", "scale"}
}

// plan maps an experiment id to the sweeps it needs plus an optional
// table-ID filter (for ids that share a sweep, like fig2/fig3).
func plan(id string, o Options) ([]experiment, string, error) {
	switch id {
	case "fig1":
		return []experiment{fig1Exp(o)}, "", nil
	case "fig2":
		return []experiment{countnetExp(o)}, "FIG2", nil
	case "fig3":
		return []experiment{countnetExp(o)}, "FIG3", nil
	case "table1":
		return []experiment{btree12Exp(o)}, "TABLE1", nil
	case "table2":
		return []experiment{btree12Exp(o)}, "TABLE2", nil
	case "table3":
		return []experiment{btree34Exp(o)}, "TABLE3", nil
	case "table4":
		return []experiment{btree34Exp(o)}, "TABLE4", nil
	case "table5":
		return []experiment{table5Exp(o)}, "", nil
	case "smallnode":
		return []experiment{smallNodeExp(o)}, "", nil
	case "ext-objmig":
		return []experiment{objMigExp(o), btreeObjMigExp(o)}, "", nil
	case "ext-policy":
		return []experiment{policyExp(o), btreePolicyExp(o)}, "", nil
	case "ext-fault":
		return []experiment{faultExp(o), btreeFaultExp(o)}, "", nil
	case "ext-kv":
		// ext-kv stays out of "all" like ext-fault and scale: "all" is the
		// pinned byte-identity baseline and must not change shape.
		return []experiment{kvExp(o)}, "", nil
	case "ext-recovery":
		// ext-recovery also stays out of "all": every point runs durable,
		// so it can never be part of the fault-free identity baseline.
		return []experiment{recoveryExp(o)}, "", nil
	case "scale":
		return []experiment{scaleExp(o)}, "", nil
	case "all":
		// ext-fault and scale stay out of "all" on purpose: "all" is the
		// byte-identity baseline the A/B suite pins, and it must remain a
		// fault-free run of moderate size (the scale sweep builds
		// 256-1024 processor machines).
		return []experiment{
			fig1Exp(o), countnetExp(o), btree12Exp(o), btree34Exp(o),
			table5Exp(o), smallNodeExp(o), objMigExp(o), btreeObjMigExp(o),
			policyExp(o), btreePolicyExp(o),
		}, "", nil
	default:
		return nil, "", fmt.Errorf("harness: unknown experiment %q (want fig1, fig2, fig3, table1..table5, smallnode, ext-objmig, ext-policy, ext-fault, ext-kv, ext-recovery, scale, all)", id)
	}
}

// Run dispatches an experiment by id: fig1, fig2, fig3, table1, table2,
// table3, table4, table5, smallnode, ext-objmig, or all. The specs of
// every selected experiment are pooled onto one set of workers, and the
// tables are assembled in the experiments' declared order.
func Run(id string, o Options) ([]Table, error) {
	exps, filter, err := plan(id, o)
	if err != nil {
		return nil, err
	}
	var specs []RunSpec
	for _, ex := range exps {
		specs = append(specs, ex.specs...)
	}
	results := runSpecs(specs, o.workers())
	var tables []Table
	off := 0
	for _, ex := range exps {
		tables = append(tables, ex.render(results[off:off+len(ex.specs)])...)
		off += len(ex.specs)
	}
	if filter != "" {
		var kept []Table
		for _, t := range tables {
			if t.ID == filter {
				kept = append(kept, t)
			}
		}
		tables = kept
	}
	return tables, nil
}

// countnetExp decomposes the Figure 2/3 sweep into one spec per
// (think time, scheme, thread count) point. Its renderer emits the four
// tables in the order FIG2 think=0, FIG2 think=10000, FIG3 think=0,
// FIG3 think=10000.
func countnetExp(o Options) experiment {
	warmup, measure := o.windows()
	threads := threadCounts(o.Quick)
	thinks := []uint64{0, 10000}
	schemes := countnetSchemes()
	var specs []RunSpec
	for _, think := range thinks {
		for _, s := range schemes {
			for _, n := range threads {
				cfg := countnet.Config{
					Threads: n, Think: think, Scheme: s,
					Seed: o.seed(), Warmup: warmup, Measure: measure,
					Policy: abPolicy(s.Mechanism), Faults: o.Faults,
					Shards: o.Shards,
				}
				specs = append(specs, RunSpec{
					Label: fmt.Sprintf("countnet/%s/think=%d/threads=%d", s.Name(), think, n),
					Run:   func() any { return countnet.RunExperiment(cfg) },
				})
			}
		}
	}
	render := func(results []any) []Table {
		var fig2, fig3 []Table
		i := 0
		for _, think := range thinks {
			t2 := Table{
				ID:    "FIG2",
				Title: fmt.Sprintf("Counting network throughput, requests/1000 cycles (think=%d)", think),
				Note:  "paper shape: CM above RPC; HW helps both; SM and CM w/HW close at high contention",
			}
			t3 := Table{
				ID:    "FIG3",
				Title: fmt.Sprintf("Counting network bandwidth, words/10 cycles (think=%d)", think),
				Note:  "paper shape: SM consumes the most under contention; CM under half of RPC and SM",
			}
			t2.Headers = []string{"scheme"}
			for _, n := range threads {
				t2.Headers = append(t2.Headers, fmt.Sprintf("%d", n))
			}
			t3.Headers = t2.Headers
			for _, s := range schemes {
				row2 := []string{s.Name()}
				row3 := []string{s.Name()}
				for range threads {
					r := results[i].(countnet.Result)
					i++
					row2 = append(row2, fmt.Sprintf("%.2f", r.Throughput))
					row3 = append(row3, fmt.Sprintf("%.2f", r.Bandwidth))
				}
				t2.Rows = append(t2.Rows, row2)
				t3.Rows = append(t3.Rows, row3)
			}
			fig2 = append(fig2, t2)
			fig3 = append(fig3, t3)
		}
		return append(fig2, fig3...)
	}
	return experiment{specs: specs, render: render}
}

// CountnetFigures runs the Figure 2/3 sweep once and renders both
// figures (throughput and bandwidth), each at the paper's two think
// times.
func CountnetFigures(o Options) (fig2, fig3 []Table) {
	tabs := countnetExp(o).run(o.workers())
	return tabs[:2], tabs[2:]
}

// paperTable1 and paperTable2 are the values printed in the paper.
var paperTable1 = map[string]string{
	"SM": "1.837", "RPC": "0.3828", "RPC w/HW": "0.5133",
	"RPC w/repl.": "0.6060", "RPC w/repl. & HW": "0.7830",
	"CP": "0.8018", "CP w/HW": "0.9570", "CP w/repl.": "1.155",
	"CP w/repl. & HW": "1.341",
}

var paperTable2 = map[string]string{
	"SM": "75", "RPC": "7.3", "RPC w/HW": "9.9",
	"RPC w/repl.": "7.0", "RPC w/repl. & HW": "9.3",
	"CP": "3.5", "CP w/HW": "4.3", "CP w/repl.": "3.8",
	"CP w/repl. & HW": "3.9",
}

// btree12Exp decomposes the nine-scheme B-tree experiment at zero think
// time; its renderer emits Table 1 (throughput) then Table 2 (bandwidth).
func btree12Exp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := btreeSchemes()
	var specs []RunSpec
	for _, s := range schemes {
		cfg := btree.Config{
			Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
			Policy: abPolicy(s.Mechanism), Faults: o.Faults,
			Shards: o.Shards,
		}
		specs = append(specs, RunSpec{
			Label: "table1/" + s.Name(),
			Run:   func() any { return btree.RunExperiment(cfg) },
		})
	}
	render := func(results []any) []Table {
		t1 := Table{
			ID:      "TABLE1",
			Title:   "B-tree throughput, ops/1000 cycles (0 think time)",
			Headers: []string{"scheme", "measured", "paper"},
			Note:    "paper shape: SM > CP > RPC; replication and hardware support each help",
		}
		t2 := Table{
			ID:      "TABLE2",
			Title:   "B-tree bandwidth, words/10 cycles (0 think time)",
			Headers: []string{"scheme", "measured", "paper"},
			Note:    "paper shape: SM uses an order of magnitude more bandwidth; CP the least",
		}
		for i, s := range schemes {
			r := results[i].(btree.Result)
			t1.Rows = append(t1.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paperTable1[s.Name()]})
			t2.Rows = append(t2.Rows, []string{s.Name(), fmt.Sprintf("%.2f", r.Bandwidth), paperTable2[s.Name()]})
		}
		return []Table{t1, t2}
	}
	return experiment{specs: specs, render: render}
}

// BtreeTables12 runs the nine-scheme B-tree experiment at zero think
// time and renders Table 1 (throughput) and Table 2 (bandwidth).
func BtreeTables12(o Options) (Table, Table) {
	tabs := btree12Exp(o).run(o.workers())
	return tabs[0], tabs[1]
}

var paperTable3 = map[string]string{
	"SM": "1.071", "CP w/repl.": "0.9816", "CP w/repl. & HW": "1.053",
}

var paperTable4 = map[string]string{
	"SM": "16", "CP w/repl.": "2.5", "CP w/repl. & HW": "2.7",
}

// btree34Exp decomposes the low-contention B-tree experiment
// (think=10000); its renderer emits Tables 3 and 4.
func btree34Exp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := lowContentionSchemes()
	var specs []RunSpec
	for _, s := range schemes {
		cfg := btree.Config{
			Scheme: s, Think: 10000, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
			Policy: abPolicy(s.Mechanism), Faults: o.Faults,
			Shards: o.Shards,
		}
		specs = append(specs, RunSpec{
			Label: "table3/" + s.Name(),
			Run:   func() any { return btree.RunExperiment(cfg) },
		})
	}
	render := func(results []any) []Table {
		t3 := Table{
			ID:      "TABLE3",
			Title:   "B-tree throughput, ops/1000 cycles (10000 think time)",
			Headers: []string{"scheme", "measured", "paper"},
			Note:    "paper shape: with light root contention, CP w/repl. & HW matches SM",
		}
		t4 := Table{
			ID:      "TABLE4",
			Title:   "B-tree bandwidth, words/10 cycles (10000 think time)",
			Headers: []string{"scheme", "measured", "paper"},
			Note:    "paper shape: SM still uses several times CP's bandwidth (coherence upkeep)",
		}
		for i, s := range schemes {
			r := results[i].(btree.Result)
			t3.Rows = append(t3.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paperTable3[s.Name()]})
			t4.Rows = append(t4.Rows, []string{s.Name(), fmt.Sprintf("%.2f", r.Bandwidth), paperTable4[s.Name()]})
		}
		return []Table{t3, t4}
	}
	return experiment{specs: specs, render: render}
}

// BtreeTables34 runs the low-contention B-tree experiment (think=10000)
// and renders Tables 3 and 4.
func BtreeTables34(o Options) (Table, Table) {
	tabs := btree34Exp(o).run(o.workers())
	return tabs[0], tabs[1]
}

// smallNodeExp decomposes §4.2's fanout-10 variant: with the bottleneck
// below the root relieved, CP w/repl. closes most of the gap to SM.
func smallNodeExp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
	}
	var specs []RunSpec
	for _, s := range schemes {
		p := btree.DefaultParams()
		p.Fanout = 10
		cfg := btree.Config{
			Params: p, Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
			Policy: abPolicy(s.Mechanism), Faults: o.Faults,
		}
		specs = append(specs, RunSpec{
			Label: "smallnode/" + s.Name(),
			Run:   func() any { return btree.RunExperiment(cfg) },
		})
	}
	render := func(results []any) []Table {
		t := Table{
			ID:      "SMALLNODE",
			Title:   "B-tree throughput with fanout 10, ops/1000 cycles (0 think time)",
			Headers: []string{"scheme", "measured", "paper"},
			Note:    "paper: SM 2.427 vs CP w/repl. 2.076 — SM still ahead, but the gap narrows",
		}
		paper := map[string]string{"SM": "2.427", "CP w/repl.": "2.076"}
		for i, s := range schemes {
			r := results[i].(btree.Result)
			t.Rows = append(t.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paper[s.Name()]})
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// SmallNode runs §4.2's fanout-10 variant.
func SmallNode(o Options) Table {
	return smallNodeExp(o).run(o.workers())[0]
}
