// Package harness regenerates every table and figure in the paper's
// evaluation section (§4). Each experiment builds a fresh simulated
// machine, runs the paper's workload, and renders a text table with the
// paper's reported value alongside the measured one where the paper
// gives a number.
//
// Absolute cycle counts differ from the paper's (our substrate is a
// reimplemented simulator, not the authors' Proteus setup); the claims
// under reproduction are the orderings and rough factors — see
// EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/sim"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks the measurement windows for tests and smoke runs.
	Quick bool
	// Seed makes the whole suite reproducible; 0 means 1.
	Seed uint64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) windows() (warmup, measure sim.Time) {
	if o.Quick {
		return 10000, 60000
	}
	return 20000, 300000
}

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	return b.String()
}

// btreeSchemes lists the nine rows of Tables 1 and 2 in the paper's order.
func btreeSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.RPC},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.RPC, Replication: true},
		{Mechanism: core.RPC, Replication: true, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.Migrate, Replication: true},
		{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
	}
}

// lowContentionSchemes lists the rows of Tables 3 and 4.
func lowContentionSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
		{Mechanism: core.Migrate, Replication: true, HWMessaging: true},
	}
}

// countnetSchemes lists the five curves of Figures 2 and 3.
func countnetSchemes() []core.Scheme {
	return []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, HWMessaging: true},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC, HWMessaging: true},
		{Mechanism: core.RPC},
	}
}

// threadCounts are Figure 2/3's x axis.
func threadCounts(quick bool) []int {
	if quick {
		return []int{8, 32, 64}
	}
	return []int{8, 16, 32, 48, 64}
}

// Run dispatches an experiment by id: fig1, fig2, fig3, table1, table2,
// table3, table4, table5, smallnode, or all.
func Run(id string, o Options) ([]Table, error) {
	switch id {
	case "fig1":
		return []Table{Fig1(o)}, nil
	case "fig2", "fig3":
		f2, f3 := CountnetFigures(o)
		if id == "fig2" {
			return f2, nil
		}
		return f3, nil
	case "table1", "table2":
		t1, t2 := BtreeTables12(o)
		if id == "table1" {
			return []Table{t1}, nil
		}
		return []Table{t2}, nil
	case "table3", "table4":
		t3, t4 := BtreeTables34(o)
		if id == "table3" {
			return []Table{t3}, nil
		}
		return []Table{t4}, nil
	case "table5":
		return []Table{Table5(o)}, nil
	case "smallnode":
		return []Table{SmallNode(o)}, nil
	case "ext-objmig":
		return []Table{ObjMigration(o), BtreeObjMigration(o)}, nil
	case "all":
		var out []Table
		out = append(out, Fig1(o))
		f2, f3 := CountnetFigures(o)
		out = append(out, f2...)
		out = append(out, f3...)
		t1, t2 := BtreeTables12(o)
		t3, t4 := BtreeTables34(o)
		out = append(out, t1, t2, t3, t4, Table5(o), SmallNode(o), ObjMigration(o), BtreeObjMigration(o))
		return out, nil
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q (want fig1, fig2, fig3, table1..table5, smallnode, ext-objmig, all)", id)
	}
}

// CountnetFigures runs the Figure 2/3 sweep once and renders both
// figures (throughput and bandwidth), each at the paper's two think
// times.
func CountnetFigures(o Options) (fig2, fig3 []Table) {
	warmup, measure := o.windows()
	threads := threadCounts(o.Quick)
	for _, think := range []uint64{0, 10000} {
		t2 := Table{
			ID:    "FIG2",
			Title: fmt.Sprintf("Counting network throughput, requests/1000 cycles (think=%d)", think),
			Note:  "paper shape: CM above RPC; HW helps both; SM and CM w/HW close at high contention",
		}
		t3 := Table{
			ID:    "FIG3",
			Title: fmt.Sprintf("Counting network bandwidth, words/10 cycles (think=%d)", think),
			Note:  "paper shape: SM consumes the most under contention; CM under half of RPC and SM",
		}
		t2.Headers = []string{"scheme"}
		for _, n := range threads {
			t2.Headers = append(t2.Headers, fmt.Sprintf("%d", n))
		}
		t3.Headers = t2.Headers
		for _, s := range countnetSchemes() {
			row2 := []string{s.Name()}
			row3 := []string{s.Name()}
			for _, n := range threads {
				r := countnet.RunExperiment(countnet.Config{
					Threads: n, Think: think, Scheme: s,
					Seed: o.seed(), Warmup: warmup, Measure: measure,
				})
				row2 = append(row2, fmt.Sprintf("%.2f", r.Throughput))
				row3 = append(row3, fmt.Sprintf("%.2f", r.Bandwidth))
			}
			t2.Rows = append(t2.Rows, row2)
			t3.Rows = append(t3.Rows, row3)
		}
		fig2 = append(fig2, t2)
		fig3 = append(fig3, t3)
	}
	return fig2, fig3
}

// paperTable1 and paperTable2 are the values printed in the paper.
var paperTable1 = map[string]string{
	"SM": "1.837", "RPC": "0.3828", "RPC w/HW": "0.5133",
	"RPC w/repl.": "0.6060", "RPC w/repl. & HW": "0.7830",
	"CP": "0.8018", "CP w/HW": "0.9570", "CP w/repl.": "1.155",
	"CP w/repl. & HW": "1.341",
}

var paperTable2 = map[string]string{
	"SM": "75", "RPC": "7.3", "RPC w/HW": "9.9",
	"RPC w/repl.": "7.0", "RPC w/repl. & HW": "9.3",
	"CP": "3.5", "CP w/HW": "4.3", "CP w/repl.": "3.8",
	"CP w/repl. & HW": "3.9",
}

// BtreeTables12 runs the nine-scheme B-tree experiment at zero think
// time and renders Table 1 (throughput) and Table 2 (bandwidth).
func BtreeTables12(o Options) (Table, Table) {
	warmup, measure := o.windows()
	t1 := Table{
		ID:      "TABLE1",
		Title:   "B-tree throughput, ops/1000 cycles (0 think time)",
		Headers: []string{"scheme", "measured", "paper"},
		Note:    "paper shape: SM > CP > RPC; replication and hardware support each help",
	}
	t2 := Table{
		ID:      "TABLE2",
		Title:   "B-tree bandwidth, words/10 cycles (0 think time)",
		Headers: []string{"scheme", "measured", "paper"},
		Note:    "paper shape: SM uses an order of magnitude more bandwidth; CP the least",
	}
	for _, s := range btreeSchemes() {
		r := btree.RunExperiment(btree.Config{
			Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
		})
		t1.Rows = append(t1.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paperTable1[s.Name()]})
		t2.Rows = append(t2.Rows, []string{s.Name(), fmt.Sprintf("%.2f", r.Bandwidth), paperTable2[s.Name()]})
	}
	return t1, t2
}

var paperTable3 = map[string]string{
	"SM": "1.071", "CP w/repl.": "0.9816", "CP w/repl. & HW": "1.053",
}

var paperTable4 = map[string]string{
	"SM": "16", "CP w/repl.": "2.5", "CP w/repl. & HW": "2.7",
}

// BtreeTables34 runs the low-contention B-tree experiment (think=10000)
// and renders Tables 3 and 4.
func BtreeTables34(o Options) (Table, Table) {
	warmup, measure := o.windows()
	t3 := Table{
		ID:      "TABLE3",
		Title:   "B-tree throughput, ops/1000 cycles (10000 think time)",
		Headers: []string{"scheme", "measured", "paper"},
		Note:    "paper shape: with light root contention, CP w/repl. & HW matches SM",
	}
	t4 := Table{
		ID:      "TABLE4",
		Title:   "B-tree bandwidth, words/10 cycles (10000 think time)",
		Headers: []string{"scheme", "measured", "paper"},
		Note:    "paper shape: SM still uses several times CP's bandwidth (coherence upkeep)",
	}
	for _, s := range lowContentionSchemes() {
		r := btree.RunExperiment(btree.Config{
			Scheme: s, Think: 10000, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
		})
		t3.Rows = append(t3.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paperTable3[s.Name()]})
		t4.Rows = append(t4.Rows, []string{s.Name(), fmt.Sprintf("%.2f", r.Bandwidth), paperTable4[s.Name()]})
	}
	return t3, t4
}

// SmallNode runs §4.2's fanout-10 variant: with the bottleneck below the
// root relieved, CP w/repl. closes most of the gap to SM.
func SmallNode(o Options) Table {
	warmup, measure := o.windows()
	t := Table{
		ID:      "SMALLNODE",
		Title:   "B-tree throughput with fanout 10, ops/1000 cycles (0 think time)",
		Headers: []string{"scheme", "measured", "paper"},
		Note:    "paper: SM 2.427 vs CP w/repl. 2.076 — SM still ahead, but the gap narrows",
	}
	paper := map[string]string{"SM": "2.427", "CP w/repl.": "2.076"}
	for _, s := range []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate, Replication: true},
	} {
		p := btree.DefaultParams()
		p.Fanout = 10
		r := btree.RunExperiment(btree.Config{
			Params: p, Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
		})
		t.Rows = append(t.Rows, []string{s.Name(), fmt.Sprintf("%.3f", r.Throughput), paper[s.Name()]})
	}
	return t
}
