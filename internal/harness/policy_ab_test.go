package harness

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
)

// TestPolicyStaticABIdentity is the suite-level half of the policy
// layer's correctness bar: every scheme-driven experiment, re-run with
// each config routed through the policy engine pinned to the scheme's
// own mechanism (-policy static:<mech>), must render byte-identical
// tables. The tables embed the simulated cycle counts and word traffic,
// so identical bytes means the policy engine observed without perturbing
// the simulation.
func TestPolicyStaticABIdentity(t *testing.T) {
	t.Cleanup(func() { abPolicyStatic = false })
	render := func(id string, viaPolicy bool) string {
		abPolicyStatic = viaPolicy
		tabs, err := Run(id, quick)
		if err != nil {
			t.Fatalf("Run(%q, policy=%v): %v", id, viaPolicy, err)
		}
		var b strings.Builder
		for _, tb := range tabs {
			b.WriteString(tb.String())
		}
		return b.String()
	}
	// fig1 and table5 are analytic (no scheme-driven app runs); the
	// ext-policy experiment always goes through the engine. Everything
	// else must be unchanged by the rerouting.
	for _, id := range []string{"fig2", "fig3", "table1", "table2", "table3",
		"table4", "smallnode", "ext-objmig"} {
		id := id
		t.Run(id, func(t *testing.T) {
			plain := render(id, false)
			via := render(id, true)
			if plain != via {
				t.Errorf("experiment %q renders differently via policy static pins:\n--- scheme ---\n%s\n--- policy ---\n%s",
					id, plain, via)
			}
		})
	}
}

// TestCostModelTracksBestStatic is the adaptive acceptance bar: at every
// sweep point of the policy experiment, on both apps, costmodel's
// throughput is within 5% of the best static mechanism's and strictly
// above the worst static mechanism's.
func TestCostModelTracksBestStatic(t *testing.T) {
	check := func(t *testing.T, label string, static []float64, adaptive float64) {
		best, worst := static[0], static[0]
		for _, v := range static[1:] {
			if v > best {
				best = v
			}
			if v < worst {
				worst = v
			}
		}
		if adaptive < 0.95*best {
			t.Errorf("%s: costmodel throughput %.3f below 95%% of best static %.3f", label, adaptive, best)
		}
		if adaptive <= worst {
			t.Errorf("%s: costmodel throughput %.3f does not beat worst static %.3f", label, adaptive, worst)
		}
	}

	statics := []string{"static:rpc", "static:cm", "static:sm"}
	for _, think := range []uint64{0, 10000} {
		for _, n := range threadCounts(true) {
			label := fmt.Sprintf("countnet/think=%d/threads=%d", think, n)
			t.Run(label, func(t *testing.T) {
				var st []float64
				for _, p := range statics {
					r := countnet.RunExperiment(countnet.Config{
						Threads: n, Think: think, Policy: p,
						Warmup: 10000, Measure: 60000,
					})
					st = append(st, r.Throughput)
				}
				r := countnet.RunExperiment(countnet.Config{
					Threads: n, Think: think, Policy: "costmodel",
					Warmup: 10000, Measure: 60000,
				})
				check(t, label, st, r.Throughput)
			})
		}
	}
	for _, think := range []uint64{0, 10000} {
		label := "btree/think=" + strconv.FormatUint(think, 10)
		t.Run(label, func(t *testing.T) {
			var st []float64
			for _, p := range statics {
				r := btree.RunExperiment(btree.Config{
					Think: think, Policy: p, Warmup: 10000, Measure: 60000,
				})
				st = append(st, r.Throughput)
			}
			r := btree.RunExperiment(btree.Config{
				Think: think, Policy: "costmodel", Warmup: 10000, Measure: 60000,
			})
			check(t, label, st, r.Throughput)
		})
	}
}

// TestParseSchemeOM covers the object-migration spelling accepted by the
// scheme parser used across the CLIs.
func TestParseSchemeOM(t *testing.T) {
	s, err := ParseScheme("om")
	if err != nil {
		t.Fatalf("ParseScheme(om): %v", err)
	}
	if s.Mechanism != core.ObjMigrate {
		t.Fatalf("ParseScheme(om) = %v, want ObjMigrate", s.Mechanism)
	}
}
