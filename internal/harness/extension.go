package harness

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
)

// objMigExp decomposes the comparison the paper wanted but could not
// ("We would like to compare our results to object migration, such as
// the mechanism in Emerald, but our group has not finished implementing
// object migration in Prelude yet", §4): Emerald-style whole-object
// migration against the paper's three mechanisms on the counting
// network, at both contention levels — one spec per (scheme, think).
func objMigExp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.ObjMigrate},
	}
	thinks := []uint64{0, 10000}
	var specs []RunSpec
	for _, s := range schemes {
		for _, think := range thinks {
			cfg := countnet.Config{
				Threads: 16, Think: think, Scheme: s,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
				Policy: abPolicy(s.Mechanism), Faults: o.Faults,
			}
			specs = append(specs, RunSpec{
				Label: fmt.Sprintf("ext-objmig/%s/think=%d", s.Name(), think),
				Run:   func() any { return countnet.RunExperiment(cfg) },
			})
		}
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-OBJMIG",
			Title: "Counting network with Emerald-style object migration, requests/1000 cycles",
			Note: "extension beyond the paper: write-shared balancers ping-pong between " +
				"requesters under object migration, so it behaves like unreplicated data " +
				"migration — §2.2's prediction",
			Headers: []string{"scheme", "think=0", "think=10000", "moves", "forwards"},
		}
		i := 0
		for _, s := range schemes {
			row := []string{s.Name()}
			var moves, forwards string
			for range thinks {
				r := results[i].(countnet.Result)
				i++
				row = append(row, fmt.Sprintf("%.2f", r.Throughput))
				moves = fmt.Sprintf("%d", r.ObjectMoves)
				forwards = fmt.Sprintf("%d", r.Forwards)
			}
			row = append(row, moves, forwards)
			t.Rows = append(t.Rows, row)
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// ObjMigration runs the counting-network object-migration extension.
func ObjMigration(o Options) Table {
	return objMigExp(o).run(o.workers())[0]
}

// btreeObjMigExp decomposes the same extension on the B-tree: pulling
// the read-mostly upper nodes around is better than ping-ponging
// balancers, but the shared root still makes whole-object migration lose
// to computation migration.
func btreeObjMigExp(o Options) experiment {
	warmup, measure := o.windows()
	schemes := []core.Scheme{
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.ObjMigrate},
	}
	var specs []RunSpec
	for _, s := range schemes {
		cfg := btree.Config{
			Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
			Policy: abPolicy(s.Mechanism), Faults: o.Faults,
		}
		specs = append(specs, RunSpec{
			Label: "ext-objmig-btree/" + s.Name(),
			Run:   func() any { return btree.RunExperiment(cfg) },
		})
	}
	render := func(results []any) []Table {
		t := Table{
			ID:    "EXT-OBJMIG-BTREE",
			Title: "B-tree with Emerald-style object migration, ops/1000 cycles (0 think time)",
			Note: "extension beyond the paper: every requester pulls the root and interior " +
				"nodes to itself, so the hot upper levels ping-pong instead of being shared",
			Headers: []string{"scheme", "throughput", "moves", "forwards"},
		}
		for i, s := range schemes {
			r := results[i].(btree.Result)
			t.Rows = append(t.Rows, []string{
				s.Name(), fmt.Sprintf("%.3f", r.Throughput),
				fmt.Sprintf("%d", r.ObjectMoves), fmt.Sprintf("%d", r.Forwards),
			})
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// BtreeObjMigration runs the B-tree object-migration extension.
func BtreeObjMigration(o Options) Table {
	return btreeObjMigExp(o).run(o.workers())[0]
}
