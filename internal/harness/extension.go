package harness

import (
	"fmt"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
)

// ObjMigration runs the comparison the paper wanted but could not
// ("We would like to compare our results to object migration, such as
// the mechanism in Emerald, but our group has not finished implementing
// object migration in Prelude yet", §4): Emerald-style whole-object
// migration against the paper's three mechanisms on the counting
// network, at both contention levels.
func ObjMigration(o Options) Table {
	warmup, measure := o.windows()
	t := Table{
		ID:    "EXT-OBJMIG",
		Title: "Counting network with Emerald-style object migration, requests/1000 cycles",
		Note: "extension beyond the paper: write-shared balancers ping-pong between " +
			"requesters under object migration, so it behaves like unreplicated data " +
			"migration — §2.2's prediction",
		Headers: []string{"scheme", "think=0", "think=10000", "moves", "forwards"},
	}
	for _, s := range []core.Scheme{
		{Mechanism: core.SharedMem},
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.ObjMigrate},
	} {
		row := []string{s.Name()}
		var moves, forwards string
		for _, think := range []uint64{0, 10000} {
			r := countnet.RunExperiment(countnet.Config{
				Threads: 16, Think: think, Scheme: s,
				Seed: o.seed(), Warmup: warmup, Measure: measure,
			})
			row = append(row, fmt.Sprintf("%.2f", r.Throughput))
			moves = fmt.Sprintf("%d", r.ObjectMoves)
			forwards = fmt.Sprintf("%d", r.Forwards)
		}
		row = append(row, moves, forwards)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// BtreeObjMigration runs the same extension on the B-tree: pulling the
// read-mostly upper nodes around is better than ping-ponging balancers,
// but the shared root still makes whole-object migration lose to
// computation migration.
func BtreeObjMigration(o Options) Table {
	warmup, measure := o.windows()
	t := Table{
		ID:    "EXT-OBJMIG-BTREE",
		Title: "B-tree with Emerald-style object migration, ops/1000 cycles (0 think time)",
		Note: "extension beyond the paper: every requester pulls the root and interior " +
			"nodes to itself, so the hot upper levels ping-pong instead of being shared",
		Headers: []string{"scheme", "throughput", "moves", "forwards"},
	}
	for _, s := range []core.Scheme{
		{Mechanism: core.Migrate},
		{Mechanism: core.RPC},
		{Mechanism: core.ObjMigrate},
	} {
		r := btree.RunExperiment(btree.Config{
			Scheme: s, Think: 0, Seed: o.seed(),
			Warmup: warmup, Measure: measure,
		})
		t.Rows = append(t.Rows, []string{
			s.Name(), fmt.Sprintf("%.3f", r.Throughput),
			fmt.Sprintf("%d", r.ObjectMoves), fmt.Sprintf("%d", r.Forwards),
		})
	}
	return t
}
