package harness

import (
	"strings"
	"testing"
)

// renderTables renders an experiment's tables as one string.
func renderTables(t *testing.T, id string, o Options) string {
	t.Helper()
	tabs, err := Run(id, o)
	if err != nil {
		t.Fatalf("Run(%q, shards=%d): %v", id, o.Shards, err)
	}
	var b strings.Builder
	for _, tb := range tabs {
		b.WriteString(tb.String())
	}
	return b.String()
}

// TestShardCountIdentity is the sharded engine's suite-level identity
// bar: a full rendered experiment must come out byte-identical at every
// shard count. fig2 exercises the clustered countnet runner (its CM and
// RPC curves run on the sharded engine; its SM curve falls back to the
// serial engine on every shard count); table1 exercises the B-tree,
// which always falls back, pinning that Shards is inert there.
func TestShardCountIdentity(t *testing.T) {
	for _, id := range []string{"fig2", "table1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := quick
			o.Shards = 1
			base := renderTables(t, id, o)
			for _, shards := range []int{2, 4, 8} {
				o.Shards = shards
				if got := renderTables(t, id, o); got != base {
					t.Errorf("experiment %q renders differently at shards=%d vs shards=1:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
						id, shards, base, shards, got)
				}
			}
		})
	}
}

// TestShardScaleIdentity pins the scale sweep itself: the large-mesh
// experiment renders identically at shards=1 and shards=8, including
// its serial B-tree rows.
func TestShardScaleIdentity(t *testing.T) {
	o := quick
	o.Shards = 1
	base := renderTables(t, "scale", o)
	o.Shards = 8
	if got := renderTables(t, "scale", o); got != base {
		t.Errorf("scale sweep renders differently at shards=8 vs shards=1:\n--- shards=1 ---\n%s\n--- shards=8 ---\n%s",
			base, got)
	}
}
