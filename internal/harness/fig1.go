package harness

import (
	"fmt"

	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/model"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// fig1Exp decomposes §2.5's message-count model validation (Figure 1)
// into one spec per (mechanism, m) simulation: a thread on P0 makes n
// consecutive accesses to each of m data items on processors 1..m; the
// analytic counts must match the messages the runtime actually sends.
func fig1Exp(o Options) experiment {
	const n = 2
	ms := []int{1, 2, 4, 8, 16}
	var specs []RunSpec
	for _, m := range ms {
		specs = append(specs,
			RunSpec{
				Label: fmt.Sprintf("fig1/rpc/m=%d", m),
				Run:   func() any { return fig1Messages(core.RPC, n, m, o.seed()) },
			},
			RunSpec{
				Label: fmt.Sprintf("fig1/cm/m=%d", m),
				Run:   func() any { return fig1Messages(core.Migrate, n, m, o.seed()) },
			},
			RunSpec{
				Label: fmt.Sprintf("fig1/dm/m=%d", m),
				Run:   func() any { return fig1DataMigration(n, m, o.seed()) },
			})
	}
	render := func(results []any) []Table {
		t := Table{
			ID:      "FIG1",
			Title:   fmt.Sprintf("Messages for %d accesses to each of m remote data items (model vs simulated)", n),
			Headers: []string{"m", "RPC model", "RPC sim", "data-mig model", "data-mig sim", "comp-mig model", "comp-mig sim"},
			Note:    "model: RPC=2nm, data migration=2m, computation migration=m+1 (return short-circuits)",
		}
		for i, m := range ms {
			rpcSim := results[3*i].(uint64)
			cmSim := results[3*i+1].(uint64)
			dmSim := results[3*i+2].(uint64)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m),
				fmt.Sprintf("%d", model.Messages(model.RPC, n, m)),
				fmt.Sprintf("%d", rpcSim),
				fmt.Sprintf("%d", model.Messages(model.DataMigration, n, m)),
				fmt.Sprintf("%d", dmSim),
				fmt.Sprintf("%d", model.Messages(model.ComputationMigration, n, m)),
				fmt.Sprintf("%d", cmSim),
			})
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// Fig1 renders §2.5's message-count model (Figure 1) validated against
// the simulator.
func Fig1(o Options) Table {
	return fig1Exp(o).run(o.workers())[0]
}

// fig1Cell is a trivial data item for the Figure 1 scenario.
type fig1Cell struct{ touched int }

// fig1Cont visits a fixed access sequence, migrating to each item.
type fig1Cont struct {
	h   *fig1Env
	idx uint32
	seq []gid.GID
}

func (c *fig1Cont) MarshalWords(w *msg.Writer) {
	w.PutU32(c.idx)
	w.PutU32(uint32(len(c.seq)))
	for _, g := range c.seq {
		w.PutU64(uint64(g))
	}
}

func (c *fig1Cont) UnmarshalWords(r *msg.Reader) error {
	c.idx = r.U32()
	c.seq = make([]gid.GID, int(r.U32()))
	for i := range c.seq {
		c.seq[i] = gid.GID(r.U64())
	}
	return r.Err()
}

func (c *fig1Cont) Run(t *core.Task) {
	for int(c.idx) < len(c.seq) {
		g := c.seq[c.idx]
		if !t.IsLocal(g) {
			t.Migrate(g, c.h.cont, c)
			return
		}
		t.State(g).(*fig1Cell).touched++
		t.Work(10)
		c.idx++
	}
	t.Return(nil)
}

type fig1Env struct {
	rt    *core.Runtime
	cells []gid.GID
	mGet  core.MethodID
	cont  core.ContID
}

// fig1Messages runs the access pattern through the software runtime and
// returns the number of messages sent.
func fig1Messages(mech core.Mechanism, n, m int, seed uint64) uint64 {
	eng := sim.NewEngine(seed)
	mach := sim.NewMachine(eng, m+1)
	col := stats.NewCollector()
	md := core.Scheme{Mechanism: mech}.Model()
	net := network.New(eng, network.Crossbar{}, col, md.NetTransitBase, md.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, md)

	env := &fig1Env{rt: rt}
	env.mGet = rt.RegisterMethod("fig1.get", true,
		func(t *core.Task, self any, _ *msg.Reader, reply *msg.Writer) {
			self.(*fig1Cell).touched++
			t.Work(10)
			reply.PutU32(0)
		})
	env.cont = rt.RegisterCont("fig1.visit",
		func() core.Continuation { return &fig1Cont{h: env} })
	for p := 1; p <= m; p++ {
		env.cells = append(env.cells, rt.Objects.New(p, &fig1Cell{}))
	}

	eng.Spawn("fig1", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 0)
		switch mech {
		case core.RPC:
			for _, g := range env.cells {
				for a := 0; a < n; a++ {
					var rep fig1Reply
					if err := task.Call(g, env.mGet, nil, &rep); err != nil {
						panic(err)
					}
				}
			}
		case core.Migrate:
			var seq []gid.GID
			for _, g := range env.cells {
				for a := 0; a < n; a++ {
					seq = append(seq, g)
				}
			}
			if err := task.Do(&fig1Cont{h: env, seq: seq}, nil); err != nil {
				panic(err)
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic("harness: fig1 deadlocked: " + err.Error())
	}
	return col.TotalMessages()
}

type fig1Reply struct{ v uint32 }

func (r *fig1Reply) MarshalWords(w *msg.Writer)          { w.PutU32(r.v) }
func (r *fig1Reply) UnmarshalWords(rd *msg.Reader) error { r.v = rd.U32(); return rd.Err() }

// fig1DataMigration measures the same pattern through the hardware
// shared-memory substrate: the first access to each datum moves its line
// (request + data = two messages); the rest hit locally.
func fig1DataMigration(n, m int, seed uint64) uint64 {
	eng := sim.NewEngine(seed)
	mach := sim.NewMachine(eng, m+1)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, 17, 0)
	shm := mem.New(eng, mach, net, col, mem.DefaultParams())
	defer shm.Release()

	var addrs []mem.Addr
	for p := 1; p <= m; p++ {
		addrs = append(addrs, shm.Alloc(p, 8))
	}
	eng.Spawn("fig1", 0, func(th *sim.Thread) {
		for _, a := range addrs {
			for k := 0; k < n; k++ {
				shm.Read(th, 0, a, 8)
			}
		}
	})
	if err := eng.Run(); err != nil {
		panic("harness: fig1 dm deadlocked: " + err.Error())
	}
	return col.TotalMessages()
}

// table5Breakdown runs the Table 5 scenario: a single thread traverses
// the counting network under computation migration (software model) and
// the collector's cycle categories are averaged over the migrations
// performed.
func table5Breakdown(seed uint64) []stats.BreakdownRow {
	eng := sim.NewEngine(seed)
	scheme := core.Scheme{Mechanism: core.Migrate}
	md := scheme.Model()
	mach := sim.NewMachine(eng, 25)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, md.NetTransitBase, md.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, md)
	cn := countnet.Build(rt, nil, scheme, 8)

	const requests = 200
	eng.Spawn("req", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 24)
		for i := 0; i < requests; i++ {
			cn.Traverse(task, i%8)
		}
	})
	if err := eng.Run(); err != nil {
		panic("harness: table5 deadlocked: " + err.Error())
	}
	return col.Breakdown(col.MigrationsSent)
}

// table5Exp wraps the per-migration cost breakdown as a single spec.
func table5Exp(o Options) experiment {
	specs := []RunSpec{{
		Label: "table5/migration-breakdown",
		Run:   func() any { return table5Breakdown(o.seed()) },
	}}
	render := func(results []any) []Table {
		paper := map[string]string{
			"Total time": "651", "User code": "150", "Network transit": "17",
			"Message overhead total": "484", "Receiver total": "341",
			"Copy packet": "76", "Thread creation": "66",
			"Procedure linkage (recv)": "66", "Unmarshaling": "51",
			"Object ID translation": "36", "Scheduler": "36",
			"Forwarding check": "23", "Allocate packet (recv)": "16",
			"Sender total": "143", "Procedure linkage (send)": "44",
			"Allocate packet (send)": "35", "Message send": "23",
			"Marshaling": "22",
		}
		t := Table{
			ID:      "TABLE5",
			Title:   "Approximate costs for one migration in the counting network (cycles)",
			Headers: []string{"category", "measured", "percent", "paper"},
			Note:    "averaged over migrations; includes the once-per-request short-circuit return",
		}
		for _, r := range results[0].([]stats.BreakdownRow) {
			label := r.Label
			t.Rows = append(t.Rows, []string{
				indent(r.Indent) + label,
				fmt.Sprintf("%.0f", r.Cycles),
				fmt.Sprintf("%.0f%%", r.Percent),
				paper[label],
			})
		}
		return []Table{t}
	}
	return experiment{specs: specs, render: render}
}

// Table5 reproduces the per-migration cost breakdown.
func Table5(o Options) Table {
	return table5Exp(o).run(o.workers())[0]
}

func indent(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "  "
	}
	return s
}
