package harness

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func cell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q: %v", tb.ID, row, col, tb.Rows[row][col], err)
	}
	return v
}

// rowByScheme finds a row whose first cell matches the scheme name.
func rowByScheme(t *testing.T, tb Table, name string) []string {
	t.Helper()
	for _, r := range tb.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("table %s has no row %q", tb.ID, name)
	return nil
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig1ModelMatchesSimulator(t *testing.T) {
	tb := Fig1(quick)
	if len(tb.Rows) == 0 {
		t.Fatal("empty fig1 table")
	}
	for _, row := range tb.Rows {
		if row[1] != row[2] {
			t.Errorf("m=%s: RPC model %s != sim %s", row[0], row[1], row[2])
		}
		if row[3] != row[4] {
			t.Errorf("m=%s: data-migration model %s != sim %s", row[0], row[3], row[4])
		}
		if row[5] != row[6] {
			t.Errorf("m=%s: computation-migration model %s != sim %s", row[0], row[5], row[6])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	t1, t2 := BtreeTables12(quick)
	get := func(name string) float64 { return parse(t, rowByScheme(t, t1, name)[1]) }
	// SM on top.
	sm := get("SM")
	for _, r := range t1.Rows {
		if r[0] != "SM" && parse(t, r[1]) >= sm {
			t.Errorf("table1: %s (%s) not below SM (%.3f)", r[0], r[1], sm)
		}
	}
	// CP beats RPC at equal options.
	pairs := [][2]string{
		{"CP", "RPC"},
		{"CP w/HW", "RPC w/HW"},
		{"CP w/repl.", "RPC w/repl."},
		{"CP w/repl. & HW", "RPC w/repl. & HW"},
	}
	for _, p := range pairs {
		if get(p[0]) <= get(p[1]) {
			t.Errorf("table1: %s (%.3f) not above %s (%.3f)", p[0], get(p[0]), p[1], get(p[1]))
		}
	}
	// Hardware support and replication each help within a family.
	mono := [][2]string{
		{"RPC w/HW", "RPC"}, {"RPC w/repl.", "RPC"},
		{"RPC w/repl. & HW", "RPC w/repl."}, {"RPC w/repl. & HW", "RPC w/HW"},
		{"CP w/HW", "CP"}, {"CP w/repl.", "CP"},
		{"CP w/repl. & HW", "CP w/repl."}, {"CP w/repl. & HW", "CP w/HW"},
	}
	for _, p := range mono {
		if get(p[0]) <= get(p[1]) {
			t.Errorf("table1: %s (%.3f) not above %s (%.3f)", p[0], get(p[0]), p[1], get(p[1]))
		}
	}

	// Table 2: SM bandwidth dominates; CP uses less than RPC.
	bw := func(name string) float64 { return parse(t, rowByScheme(t, t2, name)[1]) }
	if bw("SM") < 4*bw("RPC") {
		t.Errorf("table2: SM bandwidth (%.2f) not far above RPC (%.2f)", bw("SM"), bw("RPC"))
	}
	if bw("CP") >= bw("RPC") {
		t.Errorf("table2: CP bandwidth (%.2f) not below RPC (%.2f)", bw("CP"), bw("RPC"))
	}
}

func TestTable3Shape(t *testing.T) {
	t3, t4 := BtreeTables34(quick)
	sm := parse(t, rowByScheme(t, t3, "SM")[1])
	cprh := parse(t, rowByScheme(t, t3, "CP w/repl. & HW")[1])
	// The paper's headline: with light contention they are nearly equal.
	if cprh < 0.6*sm || cprh > 1.5*sm {
		t.Errorf("table3: CP w/repl. & HW (%.3f) not close to SM (%.3f)", cprh, sm)
	}
	// Bandwidth: SM pays coherence upkeep.
	smBW := parse(t, rowByScheme(t, t4, "SM")[1])
	cpBW := parse(t, rowByScheme(t, t4, "CP w/repl. & HW")[1])
	if smBW <= cpBW {
		t.Errorf("table4: SM bandwidth (%.2f) not above CP (%.2f)", smBW, cpBW)
	}
}

func TestTable5Shape(t *testing.T) {
	tb := Table5(quick)
	find := func(label string) []string {
		for _, r := range tb.Rows {
			if strings.TrimSpace(r[0]) == label {
				return r
			}
		}
		t.Fatalf("table5 missing row %q", label)
		return nil
	}
	total := parse(t, find("Total time")[1])
	if total < 400 || total > 1100 {
		t.Errorf("per-migration total = %.0f cycles, want same ballpark as paper's 651", total)
	}
	// Message overhead dominates (paper: 74%).
	pct := strings.TrimSuffix(find("Message overhead total")[2], "%")
	if p := parse(t, pct); p < 55 || p > 90 {
		t.Errorf("message overhead percent = %v, paper says 74%%", p)
	}
	// Receiver side costs more than sender side (341 vs 143).
	recv := parse(t, find("Receiver total")[1])
	send := parse(t, find("Sender total")[1])
	if recv <= send {
		t.Errorf("receiver total (%.0f) not above sender total (%.0f)", recv, send)
	}
}

func TestSmallNodeShape(t *testing.T) {
	tb := SmallNode(quick)
	sm := parse(t, rowByScheme(t, tb, "SM")[1])
	cp := parse(t, rowByScheme(t, tb, "CP w/repl.")[1])
	// Paper: 2.427 vs 2.076 — CP w/repl. within ~15% of SM. Our SM is
	// relatively faster, so just require the gap to be much narrower
	// than Table 1's (where SM leads CP w/repl. by several times).
	t1, _ := BtreeTables12(quick)
	smBig := parse(t, rowByScheme(t, t1, "SM")[1])
	cpBig := parse(t, rowByScheme(t, t1, "CP w/repl.")[1])
	if (sm / cp) >= (smBig / cpBig) {
		t.Errorf("smallnode: gap SM/CP (%.2f) did not narrow vs fanout-100 (%.2f)",
			sm/cp, smBig/cpBig)
	}
}

func TestCountnetFiguresShape(t *testing.T) {
	fig2, fig3 := CountnetFigures(quick)
	if len(fig2) != 2 || len(fig3) != 2 {
		t.Fatalf("want 2 think-time tables per figure, got %d/%d", len(fig2), len(fig3))
	}
	think0 := fig2[0]
	lastCol := len(think0.Headers) - 1
	get := func(tb Table, name string) float64 {
		return parse(t, rowByScheme(t, tb, name)[lastCol])
	}
	// Throughput at the highest thread count, 0 think time.
	if get(think0, "CP") <= get(think0, "RPC") {
		t.Error("fig2: CP not above RPC at high contention")
	}
	if get(think0, "CP w/HW") <= get(think0, "CP") {
		t.Error("fig2: hardware support did not help CP")
	}
	// Bandwidth: CM lowest, SM highest at 0 think.
	bw0 := fig3[0]
	if get(bw0, "CP") >= get(bw0, "RPC") {
		t.Error("fig3: CP bandwidth not below RPC")
	}
	if get(bw0, "SM") <= get(bw0, "RPC") {
		t.Error("fig3: SM bandwidth not above RPC at high contention")
	}
	// Low contention (think=10000): per completed request, CM moves well
	// under half the words of RPC and SM (§4.1; the figure's per-cycle
	// bandwidth comparison is confounded by CM's higher op rate here).
	bw1, th1 := fig3[1], fig2[1]
	perOp := func(name string) float64 {
		thr := get(th1, name)
		if thr == 0 {
			t.Fatalf("zero throughput for %s", name)
		}
		return get(bw1, name) / thr
	}
	if got := perOp("CP"); got >= 0.5*perOp("RPC") || got >= 0.5*perOp("SM") {
		t.Errorf("fig3 think=10000: CP words/op (%.2f) not under half of RPC (%.2f) and SM (%.2f)",
			got, perOp("RPC"), perOp("SM"))
	}
}

func TestRunDispatcher(t *testing.T) {
	for _, id := range []string{"fig1", "table5", "smallnode"} {
		tabs, err := Run(id, quick)
		if err != nil || len(tabs) == 0 {
			t.Errorf("Run(%q) = %v, %v", id, tabs, err)
		}
	}
	if _, err := Run("nosuch", quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID: "X", Title: "demo", Note: "n",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.String()
	for _, want := range []string{"== X: demo", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestExtensionObjMigration(t *testing.T) {
	cn := ObjMigration(quick)
	get := func(tb Table, name string, col int) float64 {
		return parse(t, rowByScheme(t, tb, name)[col])
	}
	// Counting network: OM lands between RPC and CP at high contention
	// (it saves the per-access round trips but ping-pongs the balancers).
	if om := get(cn, "OM", 1); om >= get(cn, "CP", 1) {
		t.Errorf("ext: OM (%.2f) not below CP (%.2f) on write-shared balancers", om, get(cn, "CP", 1))
	}
	// Mobility actually happened.
	omRow := rowByScheme(t, cn, "OM")
	if parse(t, omRow[3]) == 0 || parse(t, omRow[4]) == 0 {
		t.Errorf("ext: OM row shows no moves/forwards: %v", omRow)
	}

	bt := BtreeObjMigration(quick)
	if om := get(bt, "OM", 1); om >= get(bt, "CP", 1) {
		t.Errorf("ext-btree: OM (%.3f) not below CP (%.3f)", om, get(bt, "CP", 1))
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := Table{
		ID: "T", Title: "demo", Note: "a note",
		Headers: []string{"x", "y"},
		Rows:    [][]string{{"1", "2"}},
	}
	out := tb.Markdown()
	for _, want := range []string{"### T: demo", "| x | y |", "| --- | --- |", "| 1 | 2 |", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestParallelRunIsByteIdentical asserts the tentpole determinism
// contract: the full suite rendered with one worker and with four
// workers must be byte-identical, in both output formats.
func TestParallelRunIsByteIdentical(t *testing.T) {
	render := func(workers int) (string, string) {
		tabs, err := Run("all", Options{Quick: true, Workers: workers})
		if err != nil {
			t.Fatalf("Run(all, workers=%d): %v", workers, err)
		}
		var text, md strings.Builder
		for _, tb := range tabs {
			text.WriteString(tb.String())
			md.WriteString(tb.Markdown())
		}
		return text.String(), md.String()
	}
	serialText, serialMD := render(1)
	parallelText, parallelMD := render(4)
	if serialText != parallelText {
		t.Error("text tables differ between workers=1 and workers=4")
	}
	if serialMD != parallelMD {
		t.Error("markdown tables differ between workers=1 and workers=4")
	}
}

// TestRunSpecsOrderAndWorkerCounts asserts results always come back in
// spec order regardless of worker count, including more workers than
// specs.
func TestRunSpecsOrderAndWorkerCounts(t *testing.T) {
	specs := make([]RunSpec, 9)
	for i := range specs {
		specs[i] = RunSpec{
			Label: strconv.Itoa(i),
			Run:   func() any { return i },
		}
	}
	for _, workers := range []int{0, 1, 2, 4, 16} {
		results := runSpecs(specs, workers)
		if len(results) != len(specs) {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.(int) != i {
				t.Fatalf("workers=%d: result %d = %v, out of spec order", workers, i, r)
			}
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	w, m := o.windows()
	if w == 0 || m == 0 {
		t.Error("zero windows")
	}
	qw, qm := Options{Quick: true}.windows()
	if qw >= w || qm >= m {
		t.Error("quick windows not smaller")
	}
	if len(threadCounts(false)) <= len(threadCounts(true)) {
		t.Error("full sweep not wider than quick sweep")
	}
}
