package harness

import (
	"testing"

	"compmig/internal/core"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want core.Scheme
	}{
		{"rpc", core.Scheme{Mechanism: core.RPC}},
		{"cm", core.Scheme{Mechanism: core.Migrate}},
		{"cp", core.Scheme{Mechanism: core.Migrate}},
		{"sm", core.Scheme{Mechanism: core.SharedMem}},
		{"CM+HW", core.Scheme{Mechanism: core.Migrate, HWMessaging: true, HWTranslate: true}},
		{"rpc+repl", core.Scheme{Mechanism: core.RPC, Replication: true}},
		{"cm+repl+hw", core.Scheme{Mechanism: core.Migrate, Replication: true, HWMessaging: true, HWTranslate: true}},
	}
	for _, c := range cases {
		got, err := ParseScheme(c.in)
		if err != nil {
			t.Errorf("ParseScheme(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseScheme(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSchemeErrors(t *testing.T) {
	for _, in := range []string{"", "tcp", "cm+turbo", "sm+hw", "sm+repl"} {
		if _, err := ParseScheme(in); err == nil {
			t.Errorf("ParseScheme(%q) accepted", in)
		}
	}
}
