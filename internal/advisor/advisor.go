// Package advisor implements the paper's §6 direction of "compiler
// analysis techniques for automatically choosing among the remote
// access mechanisms": given the machine's cost model and a profile of a
// call site (how many consecutive accesses hit the same remote object,
// how big the argument, reply, and continuation records are), it
// predicts the cycle cost of performing the access run under RPC versus
// migrating the activation, and picks the cheaper mechanism.
//
// The estimates come straight from the Table 5 cost model, so the
// advisor's crossovers match the measured runtime: shipping a small
// frame wins as soon as an object is touched more than about once, and
// loses only when the frame dwarfs the argument records.
package advisor

import (
	"fmt"

	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/network"
)

// SiteProfile describes one remote call site, in 32-bit words. The
// numbers are what a compiler would derive statically (record sizes)
// plus what profiling supplies (mean run length).
type SiteProfile struct {
	// AccessesPerVisit is the mean number of consecutive accesses the
	// procedure makes to the same remote object (the model's n).
	AccessesPerVisit float64
	// ArgWords and ReplyWords size the RPC records per access.
	ArgWords, ReplyWords uint64
	// ContWords sizes the continuation record (live variables).
	ContWords uint64
	// ShortMethod marks the access as eligible for the active-message
	// fast path under RPC.
	ShortMethod bool
	// ChainLength is how many objects the procedure visits in sequence
	// (the model's m); the migration return is amortized over it.
	ChainLength float64
	// WorkCycles is the user-code compute per object visit. The advisor's
	// own estimates exclude it: every mechanism runs the same user code,
	// so on a uniform machine it cancels out of the comparison. It exists
	// for speed-aware selectors (internal/policy), where the same work
	// costs different amounts depending on which processor executes it —
	// the storage home under RPC and migration, the requester under
	// shared memory.
	WorkCycles float64
}

// Advisor chooses mechanisms under a fixed machine cost model.
type Advisor struct {
	model cost.Model
}

// New returns an advisor for the given cost model.
func New(model cost.Model) *Advisor { return &Advisor{model: model} }

// rpcCost estimates the cycles one remote ACCESS costs under RPC:
// request send + transit + server receive, then the symmetric reply.
func (a *Advisor) rpcCost(p SiteProfile) float64 {
	m := a.model
	req := uint64(5) + p.ArgWords + network.HeaderWords // method, gid, linkage
	rep := uint64(1) + p.ReplyWords + network.HeaderWords
	c := m.SendOverhead(req) + m.Transit(1) + m.RecvOverhead(req, p.ShortMethod) +
		m.SendOverhead(rep) + m.Transit(1) +
		m.CopyPacket(rep) + m.RecvLinkage + m.Unmarshal(rep) + m.Scheduler + m.RecvAllocPacket
	return float64(c)
}

// migrateCost estimates the cycles one HOP of computation migration
// costs: one message carrying the continuation, received with a handler
// thread; the return message is amortized over the chain.
func (a *Advisor) migrateCost(p SiteProfile) float64 {
	m := a.model
	mig := uint64(3) + p.ContWords + network.HeaderWords // cont id + linkage
	hop := float64(m.SendOverhead(mig) + m.Transit(1) + m.RecvOverhead(mig, false))
	rep := uint64(1) + p.ReplyWords + network.HeaderWords
	ret := float64(m.SendOverhead(rep) + m.Transit(1) +
		m.CopyPacket(rep) + m.RecvLinkage + m.Unmarshal(rep) + m.Scheduler + m.RecvAllocPacket)
	chain := p.ChainLength
	if chain < 1 {
		chain = 1
	}
	return hop + ret/chain
}

// EstimateRPC returns the predicted cycles for the whole visit (all
// consecutive accesses) under RPC.
func (a *Advisor) EstimateRPC(p SiteProfile) float64 {
	n := p.AccessesPerVisit
	if n < 1 {
		n = 1
	}
	return n * a.rpcCost(p)
}

// EstimateMigrate returns the predicted cycles for the whole visit under
// computation migration: one hop, then every access is local.
func (a *Advisor) EstimateMigrate(p SiteProfile) float64 {
	return a.migrateCost(p)
}

// Choose picks the cheaper mechanism for the profile.
func (a *Advisor) Choose(p SiteProfile) core.Mechanism {
	if a.EstimateMigrate(p) <= a.EstimateRPC(p) {
		return core.Migrate
	}
	return core.RPC
}

// CrossoverAccesses returns the smallest mean run length at which
// migration wins for the given record sizes, or -1 if it never does
// within limit.
func (a *Advisor) CrossoverAccesses(p SiteProfile, limit int) float64 {
	for n := 1; n <= limit; n++ {
		p.AccessesPerVisit = float64(n)
		if a.Choose(p) == core.Migrate {
			return float64(n)
		}
	}
	return -1
}

// Explain renders the decision for humans (and for the tuning docs).
func (a *Advisor) Explain(p SiteProfile) string {
	rpc := a.EstimateRPC(p)
	mig := a.EstimateMigrate(p)
	return fmt.Sprintf("rpc=%.0f cycles, migrate=%.0f cycles -> %v",
		rpc, mig, a.Choose(p))
}

// Profiler accumulates run-length observations for a call site, the
// dynamic half of the §6 proposal. Feed it the length of each
// consecutive-access run; its Profile supplies the advisor.
type Profiler struct {
	base   SiteProfile
	visits uint64
	total  uint64
}

// NewProfiler wraps static record sizes with an empty profile.
func NewProfiler(base SiteProfile) *Profiler { return &Profiler{base: base} }

// Observe records one visit with the given consecutive-access count.
func (p *Profiler) Observe(accesses int) {
	p.visits++
	p.total += uint64(accesses)
}

// Visits returns how many visits have been observed.
func (p *Profiler) Visits() uint64 { return p.visits }

// Profile returns the site profile with the observed mean run length.
func (p *Profiler) Profile() SiteProfile {
	prof := p.base
	if p.visits > 0 {
		prof.AccessesPerVisit = float64(p.total) / float64(p.visits)
	}
	return prof
}
