package advisor

import (
	"strings"
	"testing"
	"testing/quick"

	"compmig/internal/core"
	"compmig/internal/cost"
)

func base() SiteProfile {
	return SiteProfile{
		AccessesPerVisit: 1,
		ArgWords:         2,
		ReplyWords:       2,
		ContWords:        8,
		ChainLength:      4,
	}
}

func TestRepeatedAccessPrefersMigration(t *testing.T) {
	a := New(cost.Software())
	p := base()
	p.AccessesPerVisit = 5
	if got := a.Choose(p); got != core.Migrate {
		t.Fatalf("5 accesses/visit chose %v: %s", got, a.Explain(p))
	}
}

func TestHugeFramePrefersRPC(t *testing.T) {
	a := New(cost.Software())
	p := base()
	p.AccessesPerVisit = 1
	p.ShortMethod = true
	p.ContWords = 4096 // a frame the size of a small stack
	if got := a.Choose(p); got != core.RPC {
		t.Fatalf("huge frame chose %v: %s", got, a.Explain(p))
	}
}

func TestCrossoverExistsAndIsSmall(t *testing.T) {
	a := New(cost.Software())
	p := base()
	p.ShortMethod = true
	n := a.CrossoverAccesses(p, 100)
	if n < 0 {
		t.Fatal("no crossover found")
	}
	// With an 8-word frame, migration should win within a few accesses —
	// the §2 story that repeated access makes shipping the frame cheap.
	if n > 4 {
		t.Errorf("crossover at %v accesses, expected <= 4", n)
	}
}

func TestEstimatesMonotone(t *testing.T) {
	a := New(cost.Software())
	if err := quick.Check(func(n8 uint8, extra uint16) bool {
		p := base()
		p.AccessesPerVisit = float64(n8%30) + 1
		rpc1 := a.EstimateRPC(p)
		p.AccessesPerVisit++
		rpc2 := a.EstimateRPC(p)
		if rpc2 <= rpc1 {
			return false // RPC cost grows with run length
		}
		q := base()
		mig1 := a.EstimateMigrate(q)
		q.ContWords += uint64(extra % 1000)
		mig2 := a.EstimateMigrate(q)
		return mig2 >= mig1 // migration cost grows with frame size
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareShiftsCrossoverDown(t *testing.T) {
	p := base()
	p.ShortMethod = true
	p.ContWords = 64
	sw := New(cost.Software()).CrossoverAccesses(p, 1000)
	hw := New(cost.Hardware()).CrossoverAccesses(p, 1000)
	if sw < 0 || hw < 0 {
		t.Fatalf("crossovers not found: sw=%v hw=%v", sw, hw)
	}
	// Cheaper messaging makes shipping a fat frame viable earlier (copy
	// and marshal costs scale with size and shrink under HW support).
	if hw > sw {
		t.Errorf("hardware crossover (%v) above software (%v)", hw, sw)
	}
}

func TestProfilerMeansRuns(t *testing.T) {
	p := NewProfiler(base())
	for _, n := range []int{1, 2, 3, 6} {
		p.Observe(n)
	}
	if p.Visits() != 4 {
		t.Fatalf("visits = %d", p.Visits())
	}
	if got := p.Profile().AccessesPerVisit; got != 3 {
		t.Fatalf("mean accesses = %v, want 3", got)
	}
}

func TestProfilerDrivesDecision(t *testing.T) {
	a := New(cost.Software())
	prof := NewProfiler(SiteProfile{
		ArgWords: 2, ReplyWords: 2, ContWords: 8,
		ShortMethod: true, ChainLength: 1,
	})
	// One access per visit: RPC territory.
	for i := 0; i < 10; i++ {
		prof.Observe(1)
	}
	if a.Choose(prof.Profile()) != core.RPC {
		t.Fatalf("single-access profile chose migration: %s", a.Explain(prof.Profile()))
	}
	// The workload shifts: long runs of accesses.
	for i := 0; i < 40; i++ {
		prof.Observe(12)
	}
	if a.Choose(prof.Profile()) != core.Migrate {
		t.Fatalf("long-run profile chose RPC: %s", a.Explain(prof.Profile()))
	}
}

func TestExplain(t *testing.T) {
	a := New(cost.Software())
	out := a.Explain(base())
	if !strings.Contains(out, "rpc=") || !strings.Contains(out, "migrate=") {
		t.Errorf("explain output %q", out)
	}
}
