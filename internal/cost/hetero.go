package cost

import (
	"fmt"
	"strconv"
	"strings"
)

// SpeedDen is the fixed denominator of the per-processor speed ratios a
// Hetero spec produces: a factor f becomes the integer ratio
// round(f*SpeedDen)/SpeedDen, so the scaled cycle charges stay exact
// integer arithmetic (no floats ever reach the event heap).
const SpeedDen = 100

// Hetero describes per-processor speed heterogeneity: each processor
// gets a slowdown factor >= 1 applied to every cycle it books (see
// sim.Proc.SetSpeed). A nil *Hetero, or Kind "uniform", leaves every
// processor at full speed.
//
// Kinds:
//
//	uniform              every processor at factor 1
//	bimodal:FACTOR:FRAC  the first ceil(FRAC*n) processors run FACTOR
//	                     times slower; the rest at full speed. The slow
//	                     block is contiguous from processor 0 because
//	                     the serving apps home their partitions on the
//	                     low-numbered processors — bimodal models a slow
//	                     storage tier directly.
//	gradient:MIN:MAX     factors interpolate linearly from MIN at
//	                     processor 0 to MAX at processor n-1.
type Hetero struct {
	Kind   string  // "uniform", "bimodal", "gradient"
	Factor float64 // bimodal slowdown factor (>= 1)
	Frac   float64 // bimodal slow fraction in [0,1]
	Min    float64 // gradient endpoints (1 <= Min <= Max)
	Max    float64
}

// Enabled reports whether the spec can slow any processor at all.
func (h *Hetero) Enabled() bool {
	if h == nil {
		return false
	}
	switch h.Kind {
	case "bimodal":
		return h.Factor > 1 && h.Frac > 0
	case "gradient":
		return h.Max > 1
	}
	return false
}

// String renders the spec in the grammar ParseHetero accepts.
func (h *Hetero) String() string {
	if h == nil {
		return ""
	}
	switch h.Kind {
	case "bimodal":
		return fmt.Sprintf("bimodal:%s:%s", fmtFloat(h.Factor), fmtFloat(h.Frac))
	case "gradient":
		return fmt.Sprintf("gradient:%s:%s", fmtFloat(h.Min), fmtFloat(h.Max))
	}
	return "uniform"
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseHetero parses a heterogeneity spec: "uniform",
// "bimodal:FACTOR:FRAC", or "gradient:MIN:MAX". An empty string parses
// to a nil spec (uniform machine).
func ParseHetero(text string) (*Hetero, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	kind, rest, _ := strings.Cut(text, ":")
	switch kind {
	case "uniform":
		if rest != "" {
			return nil, fmt.Errorf("cost: uniform takes no arguments, got %q", text)
		}
		return &Hetero{Kind: "uniform"}, nil
	case "bimodal":
		fs, ok := splitFloats(rest, 2)
		if !ok || fs[0] < 1 || fs[1] < 0 || fs[1] > 1 {
			return nil, fmt.Errorf("cost: bimodal wants FACTOR:FRAC with FACTOR >= 1 and FRAC in [0,1], got %q", text)
		}
		return &Hetero{Kind: "bimodal", Factor: fs[0], Frac: fs[1]}, nil
	case "gradient":
		fs, ok := splitFloats(rest, 2)
		if !ok || fs[0] < 1 || fs[1] < fs[0] {
			return nil, fmt.Errorf("cost: gradient wants MIN:MAX with 1 <= MIN <= MAX, got %q", text)
		}
		return &Hetero{Kind: "gradient", Min: fs[0], Max: fs[1]}, nil
	default:
		return nil, fmt.Errorf("cost: unknown heterogeneity kind %q (want uniform, bimodal:FACTOR:FRAC, gradient:MIN:MAX)", kind)
	}
}

func splitFloats(s string, n int) ([]float64, bool) {
	parts := strings.Split(s, ":")
	if len(parts) != n {
		return nil, false
	}
	out := make([]float64, n)
	for i, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil || v != v { // reject NaN
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// Factors returns the per-processor speed numerators for an n-processor
// machine: processor i books cycles scaled by Factors(n)[i]/SpeedDen
// (ceiling division). A numerator of SpeedDen means full speed. The
// mapping is a pure function of the spec and n — no randomness — so a
// heterogeneous run is as deterministic as a uniform one.
func (h *Hetero) Factors(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = SpeedDen
	}
	if !h.Enabled() || n == 0 {
		return out
	}
	switch h.Kind {
	case "bimodal":
		slow := int(h.Frac*float64(n) + 0.999999)
		if slow > n {
			slow = n
		}
		num := uint64(h.Factor*SpeedDen + 0.5)
		for i := 0; i < slow; i++ {
			out[i] = num
		}
	case "gradient":
		for i := range out {
			f := h.Min
			if n > 1 {
				f += (h.Max - h.Min) * float64(i) / float64(n-1)
			}
			out[i] = uint64(f*SpeedDen + 0.5)
		}
	}
	return out
}
