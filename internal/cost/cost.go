// Package cost holds the cycle-cost model for the software messaging
// runtime, calibrated from Table 5 of the paper ("Approximate costs for
// migration in counting network"). The paper measured these costs in RISC
// cycles on Proteus; we charge the same amounts per runtime operation, so
// the relative costs of RPC, computation migration, and shared memory are
// preserved.
//
// Costs with a per-word component (marshal, unmarshal, copy, wire time)
// are expressed as base + perWord*n and calibrated so that the paper's
// 8-word (32-byte) counting-network migration message reproduces the
// Table 5 numbers.
package cost

// Model is the set of cycle prices for one machine configuration.
type Model struct {
	// Sender side (Table 5 "Sender total": 143 cycles for an 8-word payload).
	SendLinkage     uint64 // procedure linkage into the client stub: 44
	SendAllocPacket uint64 // allocate packet: 35 (0 with HW messaging)
	MessageSend     uint64 // message send / network injection: 23
	MarshalBase     uint64 // marshal fixed part
	MarshalPerWord  uint64 // marshal per payload word (22 total at 8 words)

	// Network.
	NetTransitBase   uint64 // transit latency: 17 in Table 5
	NetTransitPerHop uint64 // extra cycles per mesh hop (0 for constant-latency)

	// Receiver side (Table 5 "Receiver total": 341 cycles).
	CopyPacketBase    uint64 // copy fixed part
	CopyPacketPerWord uint64 // copy per word (76 total for 8 words sw; ~12 hw)
	ThreadCreation    uint64 // create handler thread: 66 (skipped for short methods)
	RecvLinkage       uint64 // procedure linkage on receive: 66
	UnmarshalBase     uint64 // unmarshal fixed part
	UnmarshalPerWord  uint64 // unmarshal per word (51 total at 8 words)
	GIDTranslation    uint64 // global object identifier translation: 36 (0 with HW)
	Scheduler         uint64 // scheduler dispatch: 36
	ForwardingCheck   uint64 // check whether the object moved: 23
	RecvAllocPacket   uint64 // allocate packet on receiver: 16 (0 with HW)

	// HWMessaging marks the Henry/Joerg register-mapped network interface
	// estimate; HWTranslation the J-Machine-style GID translation hardware.
	// These flags record how the model was derived; the cycle fields above
	// already reflect them.
	HWMessaging   bool
	HWTranslation bool
}

// CalibrationWords is the payload size (32-bit words) of the paper's
// counting-network migration message: 32 bytes copied at the receiver.
const CalibrationWords = 8

// Software returns the measured software-runtime model of Table 5.
func Software() Model {
	return Model{
		SendLinkage:     44,
		SendAllocPacket: 35,
		MessageSend:     23,
		MarshalBase:     6,
		MarshalPerWord:  2, // 6 + 2*8 = 22

		NetTransitBase:   17,
		NetTransitPerHop: 0,

		CopyPacketBase:    4,
		CopyPacketPerWord: 9, // 4 + 9*8 = 76
		ThreadCreation:    66,
		RecvLinkage:       66,
		UnmarshalBase:     11,
		UnmarshalPerWord:  5, // 11 + 5*8 = 51
		GIDTranslation:    36,
		Scheduler:         36,
		ForwardingCheck:   23,
		RecvAllocPacket:   16,
	}
}

// WithHWMessaging applies the paper's register-mapped network-interface
// estimate (§4): copy overhead drops to ~12 cycles, packets need not be
// allocated (messages are composed in registers), and marshal/unmarshal
// costs are halved.
func (m Model) WithHWMessaging() Model {
	m.HWMessaging = true
	m.SendAllocPacket = 0
	m.RecvAllocPacket = 0
	m.CopyPacketBase = 4
	m.CopyPacketPerWord = 1 // 4 + 1*8 = 12
	m.MarshalBase = (m.MarshalBase + 1) / 2
	m.MarshalPerWord = (m.MarshalPerWord + 1) / 2
	m.UnmarshalBase = (m.UnmarshalBase + 1) / 2
	m.UnmarshalPerWord = (m.UnmarshalPerWord + 1) / 2
	return m
}

// WithHWTranslation applies the paper's J-Machine-style hardware
// global-object-identifier translation estimate: the translation cost
// disappears.
func (m Model) WithHWTranslation() Model {
	m.HWTranslation = true
	m.GIDTranslation = 0
	return m
}

// Hardware returns the full hardware-support model ("w/HW" in the paper's
// tables): both the network-interface and translation estimates.
func Hardware() Model {
	return Software().WithHWMessaging().WithHWTranslation()
}

// WithActiveMessages applies the paper's §6 proposal of rewriting the
// runtime in an Active-Messages style [vECGS92]: incoming messages run
// their handler directly out of the network interrupt, so no handler
// thread is created and dispatch through the scheduler is minimal.
func (m Model) WithActiveMessages() Model {
	m.ThreadCreation = 0
	m.Scheduler = (m.Scheduler + 1) / 2
	return m
}

// Marshal returns the cycles to marshal a payload of n words.
func (m Model) Marshal(n uint64) uint64 { return m.MarshalBase + m.MarshalPerWord*n }

// Unmarshal returns the cycles to unmarshal a payload of n words.
func (m Model) Unmarshal(n uint64) uint64 { return m.UnmarshalBase + m.UnmarshalPerWord*n }

// CopyPacket returns the cycles to copy an n-word payload out of the
// network interface.
func (m Model) CopyPacket(n uint64) uint64 { return m.CopyPacketBase + m.CopyPacketPerWord*n }

// Transit returns the network transit latency over hops mesh hops.
func (m Model) Transit(hops uint64) uint64 { return m.NetTransitBase + m.NetTransitPerHop*hops }

// SendOverhead returns total sender-side cycles for an n-word payload.
func (m Model) SendOverhead(n uint64) uint64 {
	return m.SendLinkage + m.SendAllocPacket + m.MessageSend + m.Marshal(n)
}

// RecvOverhead returns total receiver-side cycles for an n-word payload.
// If short is true the active-message fast path is used and no handler
// thread is created (Prelude's optimization for short methods, §4.3).
func (m Model) RecvOverhead(n uint64, short bool) uint64 {
	t := m.CopyPacket(n) + m.RecvLinkage + m.Unmarshal(n) +
		m.GIDTranslation + m.Scheduler + m.ForwardingCheck + m.RecvAllocPacket
	if !short {
		t += m.ThreadCreation
	}
	return t
}
