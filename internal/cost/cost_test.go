package cost

import "testing"

// TestTable5Calibration checks that the software model reproduces the
// per-category cycle counts of Table 5 for the paper's 8-word
// counting-network migration message.
func TestTable5Calibration(t *testing.T) {
	m := Software()
	n := uint64(CalibrationWords)

	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"marshal", m.Marshal(n), 22},
		{"unmarshal", m.Unmarshal(n), 51},
		{"copy packet", m.CopyPacket(n), 76},
		{"transit", m.Transit(0), 17},
		{"send linkage", m.SendLinkage, 44},
		{"send alloc", m.SendAllocPacket, 35},
		{"message send", m.MessageSend, 23},
		{"thread creation", m.ThreadCreation, 66},
		{"recv linkage", m.RecvLinkage, 66},
		{"gid translation", m.GIDTranslation, 36},
		{"scheduler", m.Scheduler, 36},
		{"forwarding check", m.ForwardingCheck, 23},
		{"recv alloc", m.RecvAllocPacket, 16},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}

	// The paper's totals are stated as "approximate": sender 143,
	// receiver 341. Our component sums must land near them.
	send := m.SendOverhead(n)
	if send < 120 || send > 150 {
		t.Errorf("sender total = %d, want ~143 (Table 5)", send)
	}
	recv := m.RecvOverhead(n, false)
	if recv < 330 || recv > 380 {
		t.Errorf("receiver total = %d, want ~341 (Table 5)", recv)
	}
}

// TestHWMessagingReductions checks the paper's §4 estimates: copy drops to
// ~12 cycles, packet allocation disappears, marshal/unmarshal halve.
func TestHWMessagingReductions(t *testing.T) {
	sw, hw := Software(), Software().WithHWMessaging()
	n := uint64(CalibrationWords)
	if got := hw.CopyPacket(n); got != 12 {
		t.Errorf("hw copy = %d, want 12", got)
	}
	if hw.SendAllocPacket != 0 || hw.RecvAllocPacket != 0 {
		t.Error("hw messaging should remove packet allocation")
	}
	if hw.Marshal(n) > sw.Marshal(n)/2+2 {
		t.Errorf("hw marshal = %d, not ~half of %d", hw.Marshal(n), sw.Marshal(n))
	}
	if hw.Unmarshal(n) > sw.Unmarshal(n)/2+5 {
		t.Errorf("hw unmarshal = %d, not ~half of %d", hw.Unmarshal(n), sw.Unmarshal(n))
	}
	if !hw.HWMessaging || hw.HWTranslation {
		t.Error("flag bookkeeping wrong")
	}
}

func TestHWTranslation(t *testing.T) {
	hw := Software().WithHWTranslation()
	if hw.GIDTranslation != 0 {
		t.Errorf("translation = %d, want 0", hw.GIDTranslation)
	}
	if !hw.HWTranslation {
		t.Error("flag not set")
	}
}

// TestHWSavingsMagnitude reproduces the paper's statement that hardware
// message support improves migration cost by about twenty percent, and
// translation hardware removes another ~6%.
func TestHWSavingsMagnitude(t *testing.T) {
	n := uint64(CalibrationWords)
	sw := Software()
	// One migration hop: sender + transit + receiver + user code (150).
	total := func(m Model) uint64 {
		return m.SendOverhead(n) + m.Transit(0) + m.RecvOverhead(n, false) + 150
	}
	base := total(sw)
	if base < 600 || base > 700 {
		t.Fatalf("software migration hop = %d cycles, want ~651 (Table 5)", base)
	}
	msgHW := total(sw.WithHWMessaging())
	saving := float64(base-msgHW) / float64(base)
	if saving < 0.12 || saving > 0.30 {
		t.Errorf("hw messaging saves %.0f%%, paper says ~20%%", saving*100)
	}
	full := total(Hardware())
	extra := float64(msgHW-full) / float64(base)
	if extra < 0.03 || extra > 0.10 {
		t.Errorf("hw translation saves extra %.0f%%, paper says ~6%%", extra*100)
	}
}

func TestShortMethodSkipsThreadCreation(t *testing.T) {
	m := Software()
	long := m.RecvOverhead(4, false)
	short := m.RecvOverhead(4, true)
	if long-short != m.ThreadCreation {
		t.Errorf("short-method saving = %d, want %d", long-short, m.ThreadCreation)
	}
}

func TestOverheadMonotonicInSize(t *testing.T) {
	m := Software()
	for n := uint64(1); n < 64; n++ {
		if m.SendOverhead(n) >= m.SendOverhead(n+1) {
			t.Fatalf("send overhead not increasing at %d words", n)
		}
		if m.RecvOverhead(n, false) >= m.RecvOverhead(n+1, false) {
			t.Fatalf("recv overhead not increasing at %d words", n)
		}
	}
}

func TestWithActiveMessagesInPackage(t *testing.T) {
	am := Software().WithActiveMessages()
	if am.ThreadCreation != 0 {
		t.Error("AM model still creates threads")
	}
	if am.Scheduler >= Software().Scheduler {
		t.Error("AM model scheduler not reduced")
	}
	if am.RecvOverhead(8, false) != am.RecvOverhead(8, true) {
		t.Error("short and long receive should match under AM")
	}
}
