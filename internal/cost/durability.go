// Durability prices the simulated persistence substrate: per-processor
// write-ahead log appends, group-commit fsync barriers, periodic
// checkpoints, and crash recovery (checkpoint restore plus WAL-suffix
// replay). The numbers are chosen on the same scale as the Table-5
// messaging costs — an append costs about as much as marshaling the
// record, an fsync barrier costs a few message round trips (a battery-
// backed log device, not a spinning disk), and replay re-applies records
// at memory speed — so durability overhead and messaging overhead stay
// comparable in the figures.
package cost

// Durability is the cycle-price table for the WAL/checkpoint store.
type Durability struct {
	// AppendBase/AppendPerWord price one log record append into the
	// processor's volatile log tail.
	AppendBase    uint64
	AppendPerWord uint64
	// Fsync is the group-commit barrier forced every GroupOps appends: the
	// log tail reaches the durable device and acknowledged writes become
	// crash-proof.
	Fsync uint64
	// GroupOps is the group-commit size; every GroupOps-th append on a
	// processor pays Fsync. Minimum 1 (fsync on every append).
	GroupOps uint64
	// CkptBase/CkptPerWord price writing one checkpoint: the live folded
	// state of the processor's log, after which the WAL suffix is truncated.
	CkptBase    uint64
	CkptPerWord uint64
	// RestorePerWord prices reading the checkpoint back during recovery.
	RestorePerWord uint64
	// ReplayBase/ReplayPerWord price re-applying one WAL-suffix record
	// during recovery.
	ReplayBase    uint64
	ReplayPerWord uint64
	// Reregister prices re-registering one recovered object with the
	// runtime (GID table entry, directory residence).
	Reregister uint64
}

// DefaultCkptInterval is the checkpoint period in cycles when the fault
// spec leaves ckpt unset.
const DefaultCkptInterval = 50000

// DefaultDurability returns the standard price table.
func DefaultDurability() Durability {
	return Durability{
		AppendBase:     40,
		AppendPerWord:  2,
		Fsync:          800,
		GroupOps:       8,
		CkptBase:       200,
		CkptPerWord:    2,
		RestorePerWord: 2,
		ReplayBase:     30,
		ReplayPerWord:  3,
		Reregister:     36, // one GID-translation-table install
	}
}

// Append returns the cycles to append one n-word record.
func (d Durability) Append(n uint64) uint64 { return d.AppendBase + d.AppendPerWord*n }

// Checkpoint returns the cycles to write an n-word checkpoint image.
func (d Durability) Checkpoint(n uint64) uint64 { return d.CkptBase + d.CkptPerWord*n }

// Replay returns the cycles to re-apply one n-word record.
func (d Durability) Replay(n uint64) uint64 { return d.ReplayBase + d.ReplayPerWord*n }

// GroupSize returns the group-commit size, treating zero as 1.
func (d Durability) GroupSize() uint64 {
	if d.GroupOps == 0 {
		return 1
	}
	return d.GroupOps
}
