package cost

import "testing"

func TestParseHeteroRoundTrip(t *testing.T) {
	for _, text := range []string{
		"uniform",
		"bimodal:4:0.25",
		"bimodal:2.5:1",
		"gradient:1:4",
		"gradient:1.5:1.5",
	} {
		h, err := ParseHetero(text)
		if err != nil {
			t.Fatalf("ParseHetero(%q): %v", text, err)
		}
		if got := h.String(); got != text {
			t.Fatalf("ParseHetero(%q).String() = %q", text, got)
		}
		h2, err := ParseHetero(h.String())
		if err != nil || h2.String() != h.String() {
			t.Fatalf("String not a fixed point for %q: %v", text, err)
		}
	}
	if h, err := ParseHetero(""); err != nil || h != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", h, err)
	}
}

func TestParseHeteroRejects(t *testing.T) {
	for _, text := range []string{
		"bimodal", "bimodal:4", "bimodal:0.5:0.5", "bimodal:4:1.5",
		"gradient:4:1", "gradient:0.5:2", "gradient:1",
		"uniform:1", "trimodal:1:2", "bimodal:x:0.5", "bimodal:NaN:0.5",
	} {
		if _, err := ParseHetero(text); err == nil {
			t.Fatalf("ParseHetero(%q) accepted", text)
		}
	}
}

func TestHeteroFactors(t *testing.T) {
	uniform := &Hetero{Kind: "uniform"}
	for _, f := range uniform.Factors(4) {
		if f != SpeedDen {
			t.Fatalf("uniform factor %d, want %d", f, SpeedDen)
		}
	}
	var nilSpec *Hetero
	if f := nilSpec.Factors(2); f[0] != SpeedDen || f[1] != SpeedDen {
		t.Fatalf("nil spec factors = %v", f)
	}

	bi, _ := ParseHetero("bimodal:4:0.25")
	got := bi.Factors(8)
	want := []uint64{400, 400, 100, 100, 100, 100, 100, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bimodal factors = %v, want %v", got, want)
		}
	}

	gr, _ := ParseHetero("gradient:1:4")
	g := gr.Factors(4)
	wantG := []uint64{100, 200, 300, 400}
	for i := range wantG {
		if g[i] != wantG[i] {
			t.Fatalf("gradient factors = %v, want %v", g, wantG)
		}
	}
	// A single-proc gradient pins to Min.
	if g := gr.Factors(1); g[0] != 100 {
		t.Fatalf("1-proc gradient = %v, want [100]", g)
	}
}

func TestHeteroEnabled(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"uniform", false},
		{"bimodal:1:0.5", false},
		{"bimodal:4:0", false},
		{"bimodal:4:0.5", true},
		{"gradient:1:1", false},
		{"gradient:1:2", true},
	}
	for _, c := range cases {
		h, err := ParseHetero(c.text)
		if err != nil {
			t.Fatalf("ParseHetero(%q): %v", c.text, err)
		}
		if h.Enabled() != c.want {
			t.Fatalf("Enabled(%q) = %v, want %v", c.text, h.Enabled(), c.want)
		}
	}
}
