// Package gid defines global object identifiers for the simulated
// distributed object space. A GID names an object anywhere on the
// machine; in the software runtime, translating a GID to a local pointer
// costs cycles (Table 5 "Object ID translation"), which hardware support
// à la the J-Machine removes.
//
// A GID packs the object's home processor in its upper half so that
// locality checks — which the paper notes happen on every instance
// method call — are a single comparison.
package gid

// GID is a global object identifier.
type GID uint64

// Nil is the zero GID; it names no object.
const Nil GID = 0

const homeShift = 32

// Make builds a GID for serial number serial homed on processor home.
// Serial numbers start at 1 so that Nil stays invalid.
func Make(home int, serial uint32) GID {
	if home < 0 || home > 1<<30 {
		panic("gid: home processor out of range")
	}
	if serial == 0 {
		panic("gid: serial must be nonzero")
	}
	return GID(uint64(home)<<homeShift | uint64(serial))
}

// Home returns the processor the object lives on.
func (g GID) Home() int { return int(uint64(g) >> homeShift) }

// Serial returns the per-run unique serial number.
func (g GID) Serial() uint32 { return uint32(g) }

// IsNil reports whether g names no object.
func (g GID) IsNil() bool { return g == Nil }

// Allocator hands out serial numbers.
type Allocator struct {
	next uint32
}

// Next returns a fresh GID homed on the given processor.
func (a *Allocator) Next(home int) GID {
	a.next++
	return Make(home, a.next)
}
