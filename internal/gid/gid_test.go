package gid

import (
	"testing"
	"testing/quick"
)

func TestMakeRoundTrip(t *testing.T) {
	g := Make(17, 42)
	if g.Home() != 17 {
		t.Errorf("home = %d", g.Home())
	}
	if g.Serial() != 42 {
		t.Errorf("serial = %d", g.Serial())
	}
	if g.IsNil() {
		t.Error("valid gid reported nil")
	}
	if !Nil.IsNil() {
		t.Error("Nil not nil")
	}
}

func TestMakeRejectsZeroSerial(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero serial accepted")
		}
	}()
	Make(0, 0)
}

func TestAllocatorUnique(t *testing.T) {
	var a Allocator
	seen := make(map[GID]bool)
	for i := 0; i < 1000; i++ {
		g := a.Next(i % 48)
		if seen[g] {
			t.Fatalf("duplicate gid %v", g)
		}
		seen[g] = true
		if g.Home() != i%48 {
			t.Fatalf("home = %d, want %d", g.Home(), i%48)
		}
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	if err := quick.Check(func(home uint16, serial uint32) bool {
		if serial == 0 {
			serial = 1
		}
		g := Make(int(home), serial)
		return g.Home() == int(home) && g.Serial() == serial && !g.IsNil()
	}, nil); err != nil {
		t.Fatal(err)
	}
}
