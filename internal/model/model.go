// Package model implements the analytic message-count model of §2.5 and
// Figure 1: one thread on processor P0 makes n consecutive accesses to
// each of m data items living on processors 1..m.
//
//   - RPC: every access is remote — two messages per access, 2·n·m total.
//   - Data migration: each datum moves to the thread once — two messages
//     per datum (request + data), 2·m total, after which accesses are
//     local. Coherence traffic for write-shared data comes on top and is
//     deliberately outside this model (the paper measures it instead).
//   - Computation migration: the thread portion hops to each datum in
//     turn — one message per datum — and the final return short-circuits
//     directly back to P0: m+1 total.
package model

import "fmt"

// Mechanism identifies a remote-access mechanism in the model.
type Mechanism int

const (
	RPC Mechanism = iota
	DataMigration
	ComputationMigration
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case RPC:
		return "RPC"
	case DataMigration:
		return "data migration"
	case ComputationMigration:
		return "computation migration"
	default:
		return fmt.Sprintf("Mechanism(%d)", int(m))
	}
}

// Messages returns the number of messages mech needs for the §2.5
// scenario: n consecutive accesses to each of m remote data items.
func Messages(mech Mechanism, n, m int) int {
	if n < 0 || m < 0 {
		panic("model: negative scenario parameters")
	}
	if m == 0 {
		return 0
	}
	switch mech {
	case RPC:
		return 2 * n * m
	case DataMigration:
		return 2 * m
	case ComputationMigration:
		return m + 1
	default:
		panic("model: unknown mechanism")
	}
}

// Point is one (m, messages) pair of a Figure 1 series.
type Point struct {
	M        int
	Messages int
}

// Series tabulates Messages for m = 1..maxM at fixed n.
func Series(mech Mechanism, n, maxM int) []Point {
	pts := make([]Point, 0, maxM)
	for m := 1; m <= maxM; m++ {
		pts = append(pts, Point{M: m, Messages: Messages(mech, n, m)})
	}
	return pts
}

// Crossover returns the smallest n (accesses per datum) at which
// computation migration sends strictly fewer messages than the given
// mechanism, for any m >= 1, or -1 if it never does.
func Crossover(mech Mechanism, maxN int) int {
	for n := 0; n <= maxN; n++ {
		// Compare at m = 1, the least favourable case for migration.
		if Messages(ComputationMigration, n, 1) < Messages(mech, n, 1) {
			return n
		}
	}
	return -1
}

// Winner returns the cheapest mechanism for the (n, m) scenario. Data
// migration's count excludes coherence traffic, so the answer matches
// the paper's idealized read-only comparison.
func Winner(n, m int) Mechanism {
	best := RPC
	for _, mech := range []Mechanism{DataMigration, ComputationMigration} {
		if Messages(mech, n, m) < Messages(best, n, m) {
			best = mech
		}
	}
	return best
}
