package model

import (
	"testing"
	"testing/quick"
)

func TestFigure1Counts(t *testing.T) {
	// Figure 1's drawn scenario: n accesses to each of m data items.
	cases := []struct {
		mech Mechanism
		n, m int
		want int
	}{
		{RPC, 1, 1, 2},
		{RPC, 3, 4, 24},
		{DataMigration, 3, 4, 8},
		{ComputationMigration, 3, 4, 5},
		{ComputationMigration, 1, 1, 2},
		{RPC, 5, 0, 0},
		{DataMigration, 0, 3, 6},
		{ComputationMigration, 0, 3, 4},
	}
	for _, c := range cases {
		if got := Messages(c.mech, c.n, c.m); got != c.want {
			t.Errorf("Messages(%v, n=%d, m=%d) = %d, want %d", c.mech, c.n, c.m, got, c.want)
		}
	}
}

// TestOrderingForRepeatedAccess encodes §2.5's claim: for a series of
// accesses, both migration forms beat RPC, and computation migration
// sends the fewest messages of all.
func TestOrderingForRepeatedAccess(t *testing.T) {
	if err := quick.Check(func(n8, m8 uint8) bool {
		n := int(n8%20) + 1
		m := int(m8%20) + 1
		rpc := Messages(RPC, n, m)
		dm := Messages(DataMigration, n, m)
		cm := Messages(ComputationMigration, n, m)
		if cm > dm {
			return false // CM never worse than data migration in the model
		}
		if n >= 2 && (dm >= rpc || cm >= rpc) {
			return false // for repeated access both migrations beat RPC
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSinglesAccessRPCTies(t *testing.T) {
	// With a single access per datum, RPC and data migration tie (2m),
	// and computation migration wins for m > 1 via the short-circuit.
	for m := 1; m <= 10; m++ {
		if Messages(RPC, 1, m) != Messages(DataMigration, 1, m) {
			t.Errorf("m=%d: single-access RPC != data migration", m)
		}
		if m > 1 && Messages(ComputationMigration, 1, m) >= Messages(RPC, 1, m) {
			t.Errorf("m=%d: CM should beat RPC on a chain of single accesses", m)
		}
	}
}

func TestSeries(t *testing.T) {
	s := Series(RPC, 2, 5)
	if len(s) != 5 {
		t.Fatalf("series length %d", len(s))
	}
	for i, p := range s {
		if p.M != i+1 || p.Messages != 2*2*(i+1) {
			t.Errorf("series point %d = %+v", i, p)
		}
	}
}

func TestWinner(t *testing.T) {
	if w := Winner(10, 5); w != ComputationMigration {
		t.Errorf("winner(10,5) = %v", w)
	}
	// n=0: no accesses at all — RPC's 2·n·m = 0 wins trivially, while
	// both migration forms would still move things around.
	if w := Winner(0, 3); w != RPC {
		t.Errorf("winner(0,3) = %v", w)
	}
	// Single access to a single datum: RPC's 2 ties migration's 2; ties
	// go to RPC (first in comparison order).
	if w := Winner(1, 1); w != RPC {
		t.Errorf("winner(1,1) = %v", w)
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative n accepted")
		}
	}()
	Messages(RPC, -1, 2)
}

func TestMechanismString(t *testing.T) {
	cases := map[Mechanism]string{
		RPC:                  "RPC",
		DataMigration:        "data migration",
		ComputationMigration: "computation migration",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Mechanism(42).String() == "" {
		t.Error("unknown mechanism has empty name")
	}
}

func TestCrossover(t *testing.T) {
	// Against RPC at m=1: CM costs 2 always; RPC costs 2n. CM wins
	// strictly from n=2.
	if n := Crossover(RPC, 100); n != 2 {
		t.Errorf("crossover vs RPC = %d, want 2", n)
	}
	// Against data migration at m=1 both cost 2 forever: no strict win.
	if n := Crossover(DataMigration, 50); n != -1 {
		t.Errorf("crossover vs data migration = %d, want -1", n)
	}
}
