package policy

import (
	"encoding/json"
	"testing"

	"compmig/internal/advisor"
	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

func newEngine(t *testing.T, spec string) *Engine {
	t.Helper()
	eng := sim.NewEngine(1)
	col := stats.NewCollector()
	e, err := New(spec, cost.Software(), mem.DefaultParams(), eng, col, 8, 1)
	if err != nil {
		t.Fatalf("New(%q): %v", spec, err)
	}
	return e
}

func TestSpecParsing(t *testing.T) {
	good := map[string]string{
		"static:rpc":  "static:rpc",
		"static:cm":   "static:cm",
		"static:sm":   "static:sm",
		"static:om":   "static:om",
		"STATIC:SM":   "static:sm",
		"costmodel":   "costmodel",
		"bandit":      "bandit(eps=0.05)",
		"bandit:0.25": "bandit(eps=0.25)",
	}
	for spec, name := range good {
		if got := newEngine(t, spec).Name(); got != name {
			t.Errorf("New(%q).Name() = %q, want %q", spec, got, name)
		}
	}
	for _, spec := range []string{"", "static:", "static:tcp", "bandit:2", "bandit:x", "greedy"} {
		eng := sim.NewEngine(1)
		if _, err := New(spec, cost.Software(), mem.DefaultParams(), eng, stats.NewCollector(), 8, 1); err == nil {
			t.Errorf("New(%q) succeeded, want error", spec)
		}
	}
}

// TestHeaderWordsInSync pins the package-local copy of the network
// header size to the real constant.
func TestHeaderWordsInSync(t *testing.T) {
	if networkHeaderWords != network.HeaderWords {
		t.Fatalf("networkHeaderWords = %d, network.HeaderWords = %d",
			networkHeaderWords, network.HeaderWords)
	}
}

// TestStaticDecides verifies the static mode always returns its pin and
// counts decisions.
func TestStaticDecides(t *testing.T) {
	e := newEngine(t, "static:cm")
	s := e.NewSite("site", advisor.SiteProfile{AccessesPerVisit: 1, ChainLength: 1})
	for i := 0; i < 5; i++ {
		if m := s.Begin(0, gid.GID(1)); m != core.Migrate {
			t.Fatalf("decision %d = %v, want Migrate", i, m)
		}
		s.End(0, core.Migrate, 100)
	}
	if d := s.Decisions(); d[core.Migrate] != 5 {
		t.Fatalf("decisions = %v, want 5 under Migrate", d)
	}
}

// TestLiveProfileReplacesPriors drives the observer hooks and checks the
// site's live profile converges to the observed run and chain lengths.
func TestLiveProfileReplacesPriors(t *testing.T) {
	e := newEngine(t, "costmodel")
	s := e.NewSite("site", advisor.SiteProfile{AccessesPerVisit: 10, ChainLength: 7})
	g1, g2 := gid.GID(1), gid.GID(2)
	for op := 0; op < 4; op++ {
		m := s.Begin(0, g1)
		// Each op: 2 hops (g1 then g2), each object touched twice.
		e.MigrateHop(0, g1, 9)
		e.RemoteCall(0, g1, 8, 3, true)
		e.MigrateHop(0, g2, 9)
		e.RemoteCall(0, g2, 8, 3, true)
		s.End(0, m, 500)
	}
	p := s.Profile()
	if p.ChainLength != 2 {
		t.Errorf("ChainLength = %v, want 2", p.ChainLength)
	}
	// 4 accesses per op (2 per object visit counting the hop + call),
	// 2 visits per op => 2 accesses per visit.
	if p.AccessesPerVisit != 2 {
		t.Errorf("AccessesPerVisit = %v, want 2", p.AccessesPerVisit)
	}
	obj, _ := e.ObjectPressure(g1)
	if obj == nil || obj.Accesses != 8 {
		t.Errorf("object pressure for g1 = %+v, want 8 accesses", obj)
	}
}

// TestBanditDeterministic: two engines with the same seed make the same
// decision sequence; a different seed is allowed to differ.
func TestBanditDeterministic(t *testing.T) {
	run := func(seed uint64) []core.Mechanism {
		eng := sim.NewEngine(seed)
		e, err := New("bandit:0.5", cost.Software(), mem.DefaultParams(), eng, stats.NewCollector(), 4, seed)
		if err != nil {
			t.Fatal(err)
		}
		s := e.NewSite("site", advisor.SiteProfile{AccessesPerVisit: 1, ChainLength: 1})
		var seq []core.Mechanism
		for i := 0; i < 50; i++ {
			m := s.Begin(0, gid.GID(1))
			seq = append(seq, m)
			// Feed distinct mean costs so exploitation has a gradient.
			s.End(0, m, uint64(100*(int(m)+1)))
		}
		return seq
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBanditConverges: with epsilon 0 after the forced exploration
// round, the bandit exploits the arm with the lowest observed cycles.
func TestBanditConverges(t *testing.T) {
	e := newEngine(t, "bandit:0")
	s := e.NewSite("site", advisor.SiteProfile{AccessesPerVisit: 1, ChainLength: 1})
	costs := map[core.Mechanism]uint64{core.RPC: 900, core.Migrate: 500, core.SharedMem: 150}
	for i := 0; i < 20; i++ {
		m := s.Begin(0, gid.GID(1))
		s.End(0, m, costs[m])
	}
	d := s.Decisions()
	// 3 forced exploration plays, then every pick is SM.
	if d[core.SharedMem] != 18 || d[core.RPC] != 1 || d[core.Migrate] != 1 {
		t.Fatalf("decisions = %v, want RPC:1 CM:1 SM:18", d)
	}
}

// TestCostModelPrefersSMByDefault: under the software model's prices the
// hardware-priced shared-memory substrate wins even with the pessimistic
// all-miss prior, which is what makes costmodel track static:sm on the
// paper's workloads.
func TestCostModelPrefersSMByDefault(t *testing.T) {
	e := newEngine(t, "costmodel")
	s := e.NewSite("site", advisor.SiteProfile{
		AccessesPerVisit: 1, ReplyWords: 1, ShortMethod: true, ChainLength: 4,
	})
	rpc, cm, sm := s.Estimates()
	if !(sm < cm && cm < rpc) {
		t.Fatalf("estimates rpc=%.0f cm=%.0f sm=%.0f, want sm < cm < rpc", rpc, cm, sm)
	}
	if m := s.Begin(0, gid.GID(1)); m != core.SharedMem {
		t.Fatalf("first decision = %v, want SharedMem", m)
	}
}

// TestEstimateSMRespondsToPressure: the shared-memory estimate grows
// with the sampled miss and invalidation rates.
func TestEstimateSMRespondsToPressure(t *testing.T) {
	p := advisor.SiteProfile{AccessesPerVisit: 4}
	model, mp := cost.Software(), mem.DefaultParams()
	quiet := EstimateSM(model, mp, p, 0.05, 0)
	missy := EstimateSM(model, mp, p, 0.9, 0)
	stormy := EstimateSM(model, mp, p, 0.9, 0.5)
	if !(quiet < missy && missy < stormy) {
		t.Fatalf("EstimateSM quiet=%.0f missy=%.0f stormy=%.0f, want increasing", quiet, missy, stormy)
	}
}

// TestSampling: the engine folds collector coherence deltas into its
// miss-rate estimate lazily, without touching the event queue.
func TestSampling(t *testing.T) {
	e := newEngine(t, "costmodel")
	if e.MissRate() != 1.0 {
		t.Fatalf("prior miss rate = %v, want 1.0", e.MissRate())
	}
	e.col.CacheHits = 90
	e.col.CacheMisses = 10
	e.sample()
	if e.MissRate() != 0.1 {
		t.Fatalf("sampled miss rate = %v, want 0.1", e.MissRate())
	}
	before := e.MissRate()
	// Within the sampling period the estimate must not move.
	e.col.CacheMisses = 1000
	e.sample()
	if e.MissRate() != before {
		t.Fatalf("miss rate moved within sampling period")
	}
}

// TestStatsDump: the JSON dump round-trips and carries the live profile.
func TestStatsDump(t *testing.T) {
	e := newEngine(t, "static:rpc")
	s := e.NewSite("app.op", advisor.SiteProfile{AccessesPerVisit: 3, ChainLength: 2})
	m := s.Begin(0, gid.GID(5))
	e.RemoteCall(0, gid.GID(5), 8, 2, true)
	s.End(0, m, 800)
	data, err := e.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if st.Policy != "static:rpc" || len(st.Sites) != 1 || st.Sites[0].Name != "app.op" {
		t.Fatalf("unexpected dump: %+v", st)
	}
	if st.Sites[0].Ops != 1 || st.Sites[0].Decisions["RPC"] != 1 {
		t.Fatalf("site stats wrong: %+v", st.Sites[0])
	}
}
