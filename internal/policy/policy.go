// Package policy is the runtime half of the paper's §6 open direction:
// an online, per-call-site, per-object selector that chooses among the
// remote-access mechanisms — RPC, data migration through cache-coherent
// shared memory, and computation migration — while the program runs.
//
// Where internal/advisor makes the choice offline from a hand-fed
// profile, a policy Engine is wired into the live runtime: the core
// dispatch paths report every remote access to it (run lengths, chain
// lengths, record sizes, all in simulated time), the shared-memory
// substrate supplies contention and invalidation pressure, and each
// high-level operation consults the engine for the mechanism to use.
//
// Three policies are provided:
//
//   - static:<mech> pins every decision to one mechanism and reproduces
//     the corresponding scheme-based run exactly — the engine observes
//     but never perturbs the simulation, so the rendered tables are
//     byte-identical (the A/B identity contract).
//   - costmodel runs the advisor's Table 5 arithmetic on the live
//     statistics, plus an analogous hardware-priced estimate for shared
//     memory fed by the sampled miss and invalidation rates.
//   - bandit is an epsilon-greedy bandit over the observed cycles each
//     mechanism actually cost at this site, with a deterministic PRNG
//     derived from the run seed.
//
// All engine state is host-side: decisions take zero simulated time and
// consume no events and no draws from the engine's PRNG stream, so a
// policy that happens to always choose mechanism M simulates the exact
// same machine as a run hard-wired to M.
package policy

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"compmig/internal/advisor"
	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/gid"
	"compmig/internal/mem"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Mode is the decision procedure an Engine runs.
type Mode int

const (
	// Static always returns the configured mechanism.
	Static Mode = iota
	// CostModel picks the cheapest mechanism under the advisor's cost
	// model evaluated on live statistics.
	CostModel
	// Bandit picks by epsilon-greedy selection over observed cycle costs.
	Bandit
)

// adaptiveMechs is the candidate set adaptive policies choose from: the
// paper's three mechanisms. Emerald-style whole-object migration stays
// available through static:om but is not an adaptive candidate (the cost
// model has no estimator for ping-pong object movement).
var adaptiveMechs = []core.Mechanism{core.RPC, core.Migrate, core.SharedMem}

// banditSalt decorrelates the bandit's exploration stream from the
// engine's workload PRNG without consuming any draws from it.
const banditSalt = 0x9e3779b97f4a7c15

// Engine is one run's mechanism selector. It is driven from exactly one
// simulation (the simulator runs one goroutine at a time), so its state
// needs no synchronization; the profile counters it exports are atomics.
type Engine struct {
	mode       Mode
	staticMech core.Mechanism
	eps        float64 // bandit exploration rate

	adv   *advisor.Advisor
	model cost.Model
	mp    mem.Params

	eng *sim.Engine
	col *stats.Collector
	shm *mem.System // nil when the run has no shared-memory substrate
	rng *sim.PRNG   // bandit exploration; seeded from the run seed

	// speeds[p] is processor p's slowdown factor (1 = full speed), set by
	// SetSpeeds on heterogeneous machines. nil means a uniform machine.
	speeds []float64

	sites []*Site

	// open[p] is the site of the operation currently running on origin
	// processor p, so core access hooks can attribute wire observations.
	open []*Site

	// origin[p] tracks the consecutive-access run in flight on p: the
	// object being accessed and how many accesses it has received.
	origin []originState

	// objects accumulates per-object access pressure across all sites.
	objects map[gid.GID]*ObjectStats

	// Sampled shared-memory pressure, refreshed lazily in simulated time
	// from the collector's coherence counters. missRate starts at the
	// pessimistic prior 1.0 (every access misses) until shared memory has
	// actually been exercised.
	lastSample   sim.Time
	lastHits     uint64
	lastMisses   uint64
	lastInval    uint64
	missRate     float64
	invalRate    float64 // invalidations per shared-memory line access
	sampledOnce  bool
	samplePeriod sim.Time
}

// originState tracks the consecutive-access run of one origin processor.
type originState struct {
	last   gid.GID
	run    uint64
	opHops uint64 // migration hops observed during the open operation
}

// ObjectStats is the per-object pressure record the engine maintains.
type ObjectStats struct {
	Accesses uint64 `json:"accesses"` // remote accesses observed (all mechanisms)
	Pulls    uint64 `json:"pulls"`    // whole-object moves (static:om runs)
}

// New parses spec and builds an engine for one run. Accepted specs:
//
//	static:rpc | static:cm | static:sm | static:om
//	costmodel
//	bandit | bandit:<epsilon>
//
// model prices the software messaging paths, mp the shared-memory
// substrate; seed derives the bandit's private PRNG (no draws are taken
// from the simulation's own stream).
func New(spec string, model cost.Model, mp mem.Params, eng *sim.Engine, col *stats.Collector, nprocs int, seed uint64) (*Engine, error) {
	e := &Engine{
		model: model, mp: mp, eng: eng, col: col,
		adv:          advisor.New(model),
		rng:          sim.NewPRNG(seed ^ banditSalt),
		eps:          0.05,
		open:         make([]*Site, nprocs),
		origin:       make([]originState, nprocs),
		objects:      make(map[gid.GID]*ObjectStats),
		missRate:     1.0,
		samplePeriod: 500,
	}
	s := strings.ToLower(strings.TrimSpace(spec))
	switch {
	case strings.HasPrefix(s, "static:"):
		e.mode = Static
		switch strings.TrimPrefix(s, "static:") {
		case "rpc":
			e.staticMech = core.RPC
		case "cm", "cp", "migrate":
			e.staticMech = core.Migrate
		case "sm", "shm", "sharedmem":
			e.staticMech = core.SharedMem
		case "om", "obj", "objmigrate":
			e.staticMech = core.ObjMigrate
		default:
			return nil, fmt.Errorf("policy: unknown mechanism in %q (want static:rpc, static:cm, static:sm, or static:om)", spec)
		}
	case s == "costmodel":
		e.mode = CostModel
	case s == "bandit":
		e.mode = Bandit
	case strings.HasPrefix(s, "bandit:"):
		e.mode = Bandit
		eps, err := strconv.ParseFloat(strings.TrimPrefix(s, "bandit:"), 64)
		if err != nil || eps < 0 || eps >= 1 {
			return nil, fmt.Errorf("policy: bad bandit epsilon in %q (want bandit:<0..1>)", spec)
		}
		e.eps = eps
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (want static:<mech>, costmodel, or bandit)", spec)
	}
	return e, nil
}

// Validate reports whether spec is a well-formed policy spec, without
// building an engine. CLIs use it to reject bad flags before a run.
func Validate(spec string) error {
	_, err := New(spec, cost.Software(), mem.DefaultParams(), nil, nil, 0, 0)
	return err
}

// Name renders the policy for table rows and result labels.
func (e *Engine) Name() string {
	switch e.mode {
	case Static:
		return "static:" + strings.ToLower(e.staticMech.String())
	case CostModel:
		return "costmodel"
	default:
		return fmt.Sprintf("bandit(eps=%.2g)", e.eps)
	}
}

// Mode returns the engine's decision procedure.
func (e *Engine) Mode() Mode { return e.mode }

// AttachMem hands the engine the run's shared-memory substrate so object
// pressure can be read per home module. Optional; without it the engine
// falls back to machine-wide collector counters only.
func (e *Engine) AttachMem(s *mem.System) { e.shm = s }

// SetSpeeds hands the engine the machine's per-processor slowdown
// factors (1 = full speed), the same profile the driver applied with
// sim.Proc.SetSpeed. The cost model then prices each mechanism at the
// speed of the processor that executes the visit — the target object's
// home under RPC and migration, the requester under shared memory.
// Without it every processor is assumed full speed, which leaves the
// selection on a uniform machine untouched.
func (e *Engine) SetSpeeds(factors []float64) {
	e.speeds = append([]float64{}, factors...)
}

// speedOf returns processor p's slowdown factor (1 when unknown).
func (e *Engine) speedOf(p int) float64 {
	if p < 0 || p >= len(e.speeds) || e.speeds[p] <= 1 {
		return 1
	}
	return e.speeds[p]
}

// NewSite registers one annotated call site. base carries what a
// compiler would know statically — record sizes and the short-method
// flag — plus priors for the profiled quantities (run length n, chain
// length m); live observations replace the priors as they arrive.
func (e *Engine) NewSite(name string, base advisor.SiteProfile) *Site {
	s := &Site{e: e, name: name, base: base}
	e.sites = append(e.sites, s)
	return s
}

// Sites returns the registered sites in registration order.
func (e *Engine) Sites() []*Site { return e.sites }

// Site is one annotated call site: the unit of decision-making and of
// statistics collection.
type Site struct {
	e    *Engine
	name string
	base advisor.SiteProfile

	// Live wire statistics, accumulated by the core access hooks.
	visits     uint64 // object visits (consecutive-access runs)
	accesses   uint64 // individual remote accesses across those visits
	ops        uint64 // completed high-level operations
	hops       uint64 // migration hops across those operations
	hopOps     uint64 // ops that made at least one hop (CM ops)
	argWords   uint64 // total request payload words observed
	replyWords uint64 // total reply payload words observed
	contWords  uint64 // total continuation payload words observed
	contHops   uint64 // hops contributing to contWords

	// Per-mechanism outcome statistics (the bandit's arms).
	tries     [4]uint64 // completed ops per mechanism
	cycleSum  [4]uint64 // total observed cycles per mechanism
	decisions [4]uint64 // Decide outcomes per mechanism
}

// Name returns the site's registration name.
func (s *Site) Name() string { return s.name }

// Decisions returns how many times each mechanism was chosen at this
// site, indexed by core.Mechanism.
func (s *Site) Decisions() [4]uint64 { return s.decisions }

// Begin opens one high-level operation at this site on origin processor
// proc, whose first remote target is g, and returns the mechanism the
// operation must use. All bookkeeping is host-side: zero simulated time.
func (s *Site) Begin(proc int, g gid.GID) core.Mechanism {
	e := s.e
	if e.open[proc] != nil {
		e.flushRun(proc)
	}
	e.open[proc] = s
	e.origin[proc].opHops = 0
	m := s.decide(proc, g)
	s.decisions[m]++
	profileDecision(m)
	return m
}

// End closes the operation Begin opened, recording the cycles it took
// under the mechanism it ran with.
func (s *Site) End(proc int, m core.Mechanism, cycles uint64) {
	e := s.e
	e.flushRun(proc)
	e.open[proc] = nil
	if e.origin[proc].opHops > 0 {
		s.hopOps++
		e.origin[proc].opHops = 0
	}
	s.ops++
	s.tries[m]++
	s.cycleSum[m] += cycles
}

// decide picks the mechanism for one operation starting on processor
// proc whose first target is g.
func (s *Site) decide(proc int, g gid.GID) core.Mechanism {
	e := s.e
	switch e.mode {
	case Static:
		return e.staticMech
	case CostModel:
		e.sample()
		rpc, cm, sm := s.Estimates()
		// Add the user compute back in, priced at the speed of the
		// processor that executes it: RPC handlers and migrated
		// continuations run at the target's home, shared-memory accesses
		// run the user code on the requester. On a uniform machine every
		// factor is 1 and the work term cancels — the comparison reduces
		// to the advisor's overhead arithmetic.
		p := s.Profile()
		chain := p.ChainLength
		if chain < 1 {
			chain = 1
		}
		work := p.WorkCycles * chain
		home, origin := e.speedOf(g.Home()), e.speedOf(proc)
		rpc = (rpc + work) * home
		cm = (cm + work) * home
		sm = (sm + work) * origin
		best, bestCost := core.RPC, rpc
		if cm < bestCost {
			best, bestCost = core.Migrate, cm
		}
		if sm < bestCost {
			best = core.SharedMem
		}
		return best
	default: // Bandit
		for _, m := range adaptiveMechs {
			if s.tries[m] == 0 {
				return m // play every arm once before exploiting
			}
		}
		if e.rng.Float64() < e.eps {
			return adaptiveMechs[e.rng.Intn(len(adaptiveMechs))]
		}
		best, bestMean := adaptiveMechs[0], meanCycles(s.cycleSum[adaptiveMechs[0]], s.tries[adaptiveMechs[0]])
		for _, m := range adaptiveMechs[1:] {
			if mc := meanCycles(s.cycleSum[m], s.tries[m]); mc < bestMean {
				best, bestMean = m, mc
			}
		}
		return best
	}
}

func meanCycles(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Profile returns the site's live profile: the static base with every
// profiled quantity replaced by its observed mean once data exists.
func (s *Site) Profile() advisor.SiteProfile {
	// Observed payloads include the fixed method/linkage words the
	// advisor adds back itself, so the base record sizes (which exclude
	// them) are kept; the run-length and chain statistics are the
	// profiled part.
	p := s.base
	if s.visits > 0 {
		p.AccessesPerVisit = float64(s.accesses) / float64(s.visits)
	}
	// Chain length averages over the ops that actually hopped: shared-
	// memory ops make no hops at all, and counting them would drag the
	// estimate of "how long would the chain be under CM" toward zero.
	if s.hopOps > 0 {
		p.ChainLength = float64(s.hops) / float64(s.hopOps)
	}
	if s.contHops > 0 {
		w := s.contWords / s.contHops
		// Strip the migrate header the advisor adds back (cont id +
		// linkage + target gid = 5 words + network header).
		if over := uint64(5) + networkHeaderWords; w > over {
			p.ContWords = w - over
		}
	}
	return p
}

// networkHeaderWords mirrors network.HeaderWords without importing the
// package (kept in sync by a unit test).
const networkHeaderWords = 2

// Estimates returns the predicted cycles for one operation at this site
// under RPC, computation migration, and shared memory, from the live
// profile and sampled memory pressure. Estimates are per object visit,
// scaled to the operation's observed chain length.
func (s *Site) Estimates() (rpc, cm, sm float64) {
	e := s.e
	p := s.Profile()
	chain := p.ChainLength
	if chain < 1 {
		chain = 1
	}
	// Advisor estimates are per visit; an operation makes chain visits.
	rpc = e.adv.EstimateRPC(p) * chain
	cm = e.adv.EstimateMigrate(p) * chain
	sm = e.estimateSMVisit(p) * chain
	return rpc, cm, sm
}

// estimateSMVisit prices one object visit (n line accesses) through the
// hardware shared-memory substrate: a hit costs the cache lookup; a miss
// pays a request/data round trip through the home directory; and under
// write sharing each access additionally forces its share of
// invalidation rounds. The miss and invalidation rates are the sampled
// live values (prior: every access misses, nobody invalidates).
func (e *Engine) estimateSMVisit(p advisor.SiteProfile) float64 {
	n := p.AccessesPerVisit
	if n < 1 {
		n = 1
	}
	m := e.model
	mp := e.mp
	hit := float64(mp.HitCycles)
	miss := float64(2*m.Transit(1)) + // request out, data back
		float64(2*mp.CtrlCycles) + // controller handling each way
		float64(mp.DirCycles+mp.MemCycles+mp.InstallCyc) +
		hit
	inval := float64(2*m.Transit(1)) + float64(2*mp.CtrlCycles) + float64(mp.DirCycles)
	perAccess := hit + e.missRate*miss + e.invalRate*inval
	return n * perAccess
}

// sample refreshes the shared-memory pressure estimates from the
// collector's coherence counters. It runs at most once per samplePeriod
// of simulated time and is entirely host-side (no events, no cycles).
func (e *Engine) sample() {
	now := e.eng.Now()
	if e.sampledOnce && now < e.lastSample+e.samplePeriod {
		return
	}
	hits, misses, inval := e.col.CacheHits, e.col.CacheMisses, e.col.Invalidations
	dh, dm, di := hits-e.lastHits, misses-e.lastMisses, inval-e.lastInval
	if acc := dh + dm; acc > 0 {
		newMiss := float64(dm) / float64(acc)
		newInval := float64(di) / float64(acc)
		if !e.sampledOnce {
			e.missRate, e.invalRate = newMiss, newInval
		} else {
			// Exponentially weighted so bursts of invalidation pressure
			// show up quickly but a single quiet window does not erase
			// the history.
			const alpha = 0.3
			e.missRate += alpha * (newMiss - e.missRate)
			e.invalRate += alpha * (newInval - e.invalRate)
		}
		e.sampledOnce = true
	}
	e.lastSample = now
	e.lastHits, e.lastMisses, e.lastInval = hits, misses, inval
}

// MissRate returns the sampled shared-memory miss rate (prior 1.0).
func (e *Engine) MissRate() float64 { return e.missRate }

// InvalRate returns the sampled invalidations per line access.
func (e *Engine) InvalRate() float64 { return e.invalRate }

// flushRun folds the consecutive-access run in flight on proc into the
// statistics of the site that owns the open operation.
func (e *Engine) flushRun(proc int) {
	o := &e.origin[proc]
	if o.run == 0 {
		return
	}
	if s := e.open[proc]; s != nil {
		s.visits++
		s.accesses += o.run
	}
	o.last, o.run = gid.Nil, 0
}

// touch records one remote access to g from origin proc, extending or
// starting the consecutive-access run.
func (e *Engine) touch(proc int, g gid.GID) {
	if proc < 0 || proc >= len(e.origin) {
		return
	}
	o := &e.origin[proc]
	if o.run > 0 && o.last == g {
		o.run++
	} else {
		e.flushRun(proc)
		o.last, o.run = g, 1
	}
	obj := e.objects[g]
	if obj == nil {
		obj = &ObjectStats{}
		e.objects[g] = obj
	}
	obj.Accesses++
}

// Engine implements core.AccessObserver; the runtime invokes these hooks
// on its dispatch paths. All three are host-side only.

// RemoteCall records one RPC request/reply pair from origin to object g.
func (e *Engine) RemoteCall(origin int, g gid.GID, reqWords, replyWords int, short bool) {
	e.touch(origin, g)
	if s := e.siteOf(origin); s != nil {
		s.argWords += uint64(reqWords)
		s.replyWords += uint64(replyWords)
	}
}

// MigrateHop records one computation-migration hop of the operation
// whose reply linkage lives on origin, toward object g.
func (e *Engine) MigrateHop(origin int, g gid.GID, contWords int) {
	e.touch(origin, g)
	if s := e.siteOf(origin); s != nil {
		s.hops++
		s.contHops++
		s.contWords += uint64(contWords)
		e.origin[origin].opHops++
	}
}

// ObjectPull records one Emerald-style whole-object move to origin.
func (e *Engine) ObjectPull(origin int, g gid.GID, stateWords int) {
	e.touch(origin, g)
	if obj := e.objects[g]; obj != nil {
		obj.Pulls++
	}
}

func (e *Engine) siteOf(origin int) *Site {
	if origin < 0 || origin >= len(e.open) {
		return nil
	}
	return e.open[origin]
}

// ObjectPressure returns the accumulated pressure record for g (nil if
// the object was never observed) plus the invalidation count at its
// current home module when a substrate is attached.
func (e *Engine) ObjectPressure(g gid.GID) (*ObjectStats, uint64) {
	obj := e.objects[g]
	var inval uint64
	if e.shm != nil {
		inval = e.shm.ModuleInvalidations(g.Home())
	}
	return obj, inval
}

// profileDecision bumps the process-wide decision counters surfaced by
// the -profile flag.
func profileDecision(m core.Mechanism) {
	switch m {
	case core.RPC:
		profile.PolicyRPC.Add(1)
	case core.Migrate:
		profile.PolicyCM.Add(1)
	case core.SharedMem:
		profile.PolicySM.Add(1)
	case core.ObjMigrate:
		profile.PolicyOM.Add(1)
	}
}

// SiteStats is the JSON form of one site's live profile, consumable by
// cmd/advise -from-stats for offline cross-checking.
type SiteStats struct {
	Name             string             `json:"name"`
	Ops              uint64             `json:"ops"`
	Visits           uint64             `json:"visits"`
	AccessesPerVisit float64            `json:"accesses_per_visit"`
	ChainLength      float64            `json:"chain_length"`
	ArgWords         uint64             `json:"arg_words"`
	ReplyWords       uint64             `json:"reply_words"`
	ContWords        uint64             `json:"cont_words"`
	ShortMethod      bool               `json:"short_method"`
	Decisions        map[string]uint64  `json:"decisions"`
	MeanCycles       map[string]float64 `json:"mean_cycles"`
}

// Stats is the engine's dumpable state.
type Stats struct {
	Policy    string      `json:"policy"`
	MissRate  float64     `json:"sm_miss_rate"`
	InvalRate float64     `json:"sm_inval_rate"`
	Sites     []SiteStats `json:"sites"`
}

// Stats snapshots the engine's live statistics.
func (e *Engine) Stats() Stats {
	st := Stats{Policy: e.Name(), MissRate: e.missRate, InvalRate: e.invalRate}
	for _, s := range e.sites {
		p := s.Profile()
		ss := SiteStats{
			Name:             s.name,
			Ops:              s.ops,
			Visits:           s.visits,
			AccessesPerVisit: p.AccessesPerVisit,
			ChainLength:      p.ChainLength,
			ArgWords:         p.ArgWords,
			ReplyWords:       p.ReplyWords,
			ContWords:        p.ContWords,
			ShortMethod:      p.ShortMethod,
			Decisions:        map[string]uint64{},
			MeanCycles:       map[string]float64{},
		}
		for _, m := range []core.Mechanism{core.RPC, core.Migrate, core.SharedMem, core.ObjMigrate} {
			if s.decisions[m] > 0 {
				ss.Decisions[m.String()] = s.decisions[m]
			}
			if s.tries[m] > 0 {
				ss.MeanCycles[m.String()] = meanCycles(s.cycleSum[m], s.tries[m])
			}
		}
		st.Sites = append(st.Sites, ss)
	}
	return st
}

// DumpJSON renders Stats as indented JSON (the -policy-stats format).
func (e *Engine) DumpJSON() ([]byte, error) {
	data, err := json.MarshalIndent(e.Stats(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// EstimateSM exposes the shared-memory visit estimator for offline use
// (cmd/advise -from-stats): predicted cycles for one visit of
// p.AccessesPerVisit line accesses under the given miss and invalidation
// rates.
func EstimateSM(model cost.Model, mp mem.Params, p advisor.SiteProfile, missRate, invalRate float64) float64 {
	e := &Engine{model: model, mp: mp, missRate: missRate, invalRate: invalRate}
	return e.estimateSMVisit(p)
}
