package mem

import (
	"testing"

	"compmig/internal/sim"
)

func TestCheckCoherenceCleanRuns(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		p := DefaultParams()
		p.CacheBytes = 512
		r := newRig(6, p)
		rng := sim.NewPRNG(seed)
		var addrs []Addr
		for i := 0; i < 24; i++ {
			addrs = append(addrs, r.shm.Alloc(rng.Intn(6), 16))
		}
		for pid := 0; pid < 6; pid++ {
			pid := pid
			r.eng.Spawn("mutator", 0, func(th *sim.Thread) {
				for i := 0; i < 80; i++ {
					a := addrs[rng.Intn(len(addrs))]
					if rng.Intn(2) == 0 {
						r.shm.Read(th, pid, a, 16)
					} else {
						r.shm.Write(th, pid, a, 8)
					}
				}
			})
		}
		if err := r.eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := r.shm.CheckCoherence(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckCoherenceDetectsCorruption(t *testing.T) {
	r := newRig(3, DefaultParams())
	addr := r.shm.Alloc(0, 4)
	r.eng.Spawn("w", 0, func(th *sim.Thread) {
		r.shm.Write(th, 1, addr, 4)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.shm.CheckCoherence(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	// Corrupt: force a second modified copy.
	r.shm.caches[2].install(lineOf(addr), modified)
	if err := r.shm.CheckCoherence(); err == nil {
		t.Fatal("double-modified line not detected")
	}
}

func TestLimitlessTrapsOnWideSharing(t *testing.T) {
	p := DefaultParams()
	p.DirPointers = 3
	r := newRig(10, p)
	addr := r.shm.Alloc(9, 4)

	// Nine readers overflow the 3 hardware pointers.
	barrier := sim.NewBarrier(9)
	for pid := 0; pid < 9; pid++ {
		pid := pid
		r.eng.Spawn("reader", 0, func(th *sim.Thread) {
			r.shm.Read(th, pid, addr, 4)
			barrier.Arrive(th)
			// Second round of reads on the overflowed line traps.
			r.shm.Read(th, pid, addr, 4)
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.LimitlessTraps == 0 {
		t.Fatal("no LimitLESS software traps on a widely shared line")
	}
	// The traps ran on the home CPU, not just the memory module.
	if r.m.Proc(9).Busy == 0 {
		t.Error("home processor never charged for software directory handling")
	}
	if err := r.shm.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestFullMapNeverTraps(t *testing.T) {
	r := newRig(10, DefaultParams())
	addr := r.shm.Alloc(9, 4)
	for pid := 0; pid < 9; pid++ {
		pid := pid
		r.eng.Spawn("reader", 0, func(th *sim.Thread) {
			r.shm.Read(th, pid, addr, 4)
			th.Sleep(100)
			r.shm.Read(th, pid, addr, 4)
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.LimitlessTraps != 0 {
		t.Fatalf("full-map directory trapped %d times", r.col.LimitlessTraps)
	}
}

// TestLimitlessSlowsWideInvalidation: invalidating a widely shared line
// is costlier under LimitLESS than under a full-map directory.
func TestLimitlessSlowsWideInvalidation(t *testing.T) {
	run := func(pointers int) sim.Time {
		p := DefaultParams()
		p.DirPointers = pointers
		r := newRig(10, p)
		addr := r.shm.Alloc(9, 4)
		barrier := sim.NewBarrier(10)
		var writeDone sim.Time
		for pid := 0; pid < 9; pid++ {
			pid := pid
			r.eng.Spawn("reader", 0, func(th *sim.Thread) {
				r.shm.Read(th, pid, addr, 4)
				barrier.Arrive(th)
			})
		}
		r.eng.Spawn("writer", 0, func(th *sim.Thread) {
			barrier.Arrive(th)
			start := th.Now()
			r.shm.Write(th, 9, addr, 4)
			writeDone = th.Now() - start
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return writeDone
	}
	full := run(0)
	limited := run(2)
	if limited <= full {
		t.Errorf("LimitLESS invalidation (%d cycles) not slower than full-map (%d)", limited, full)
	}
}
