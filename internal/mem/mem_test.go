package mem

import (
	"testing"

	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// rig builds a machine + shared-memory system for tests.
type rig struct {
	eng *sim.Engine
	m   *sim.Machine
	col *stats.Collector
	shm *System
}

func newRig(nprocs int, p Params) *rig {
	eng := sim.NewEngine(7)
	m := sim.NewMachine(eng, nprocs)
	col := stats.NewCollector()
	net := network.New(eng, network.Crossbar{}, col, 17, 0)
	return &rig{eng: eng, m: m, col: col, shm: New(eng, m, net, col, p)}
}

func TestAllocAlignmentAndHome(t *testing.T) {
	r := newRig(4, DefaultParams())
	a := r.shm.Alloc(2, 5)
	b := r.shm.Alloc(2, 40)
	if HomeOf(a) != 2 || HomeOf(b) != 2 {
		t.Fatalf("homes = %d,%d", HomeOf(a), HomeOf(b))
	}
	if uint64(a)%LineBytes != 0 || uint64(b)%LineBytes != 0 {
		t.Fatalf("allocations not line-aligned: %x %x", a, b)
	}
	if lineOf(a) == lineOf(b) {
		t.Fatal("distinct objects share a cache line")
	}
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig(4, DefaultParams())
	addr := r.shm.Alloc(1, 8)
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Read(th, 0, addr, 8)
		r.shm.Read(th, 0, addr, 8)
		r.shm.Read(th, 0, addr, 8)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1", r.col.CacheMisses)
	}
	if r.col.CacheHits != 2 {
		t.Errorf("hits = %d, want 2", r.col.CacheHits)
	}
	// Miss traffic: request + data reply.
	if r.col.WordsSent == 0 {
		t.Error("remote miss produced no traffic")
	}
	words := r.col.WordsSent
	// Hits must add no traffic (checked by construction above — re-read).
	r.eng.Spawn("again", 0, func(th *sim.Thread) { r.shm.Read(th, 0, addr, 8) })
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.WordsSent != words {
		t.Error("cache hit generated traffic")
	}
}

func TestLocalMissNoTraffic(t *testing.T) {
	r := newRig(4, DefaultParams())
	addr := r.shm.Alloc(0, 8)
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Read(th, 0, addr, 8)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.CacheMisses != 1 {
		t.Errorf("misses = %d", r.col.CacheMisses)
	}
	if r.col.WordsSent != 0 {
		t.Errorf("local miss sent %d words on the network", r.col.WordsSent)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(4, DefaultParams())
	addr := r.shm.Alloc(3, 4)
	phase := sim.NewBarrier(3)
	for p := 0; p < 2; p++ {
		p := p
		r.eng.Spawn("reader", 0, func(th *sim.Thread) {
			r.shm.Read(th, p, addr, 4)
			phase.Arrive(th)
		})
	}
	r.eng.Spawn("writer", 0, func(th *sim.Thread) {
		phase.Arrive(th) // wait until both readers cached the line
		r.shm.Write(th, 2, addr, 4)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.Invalidations != 2 {
		t.Errorf("invalidations = %d, want 2", r.col.Invalidations)
	}
}

func TestDirtyRecallOnRead(t *testing.T) {
	r := newRig(4, DefaultParams())
	addr := r.shm.Alloc(3, 4)
	done := &sim.Future{}
	r.eng.Spawn("writer", 0, func(th *sim.Thread) {
		r.shm.Write(th, 0, addr, 4)
		done.Complete(nil)
	})
	var hitsAfter uint64
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		done.Wait(th)
		r.shm.Read(th, 1, addr, 4)
		// The recall downgraded the writer's copy to shared: a read by the
		// writer should now hit.
		before := r.col.CacheHits
		r.shm.Read(th, 0, addr, 4) // note: issued from p1's thread for simplicity
		_ = before
		hitsAfter = r.col.CacheHits
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if hitsAfter == 0 {
		t.Error("writer's downgraded copy not shared-hittable")
	}
}

func TestWriteSharedPingPong(t *testing.T) {
	r := newRig(2, DefaultParams())
	addr := r.shm.Alloc(0, 4)
	// Two procs alternately RMW the same line: every access after the
	// first exchange must miss (the migratory write-shared pattern that
	// makes shared memory expensive in the paper).
	turn := 0
	var q sim.WaitQueue
	const rounds = 10
	for p := 0; p < 2; p++ {
		p := p
		r.eng.Spawn("toggler", 0, func(th *sim.Thread) {
			for i := 0; i < rounds; i++ {
				for turn%2 != p {
					q.Wait(th, "turn")
				}
				r.shm.RMW(th, p, addr)
				turn++
				q.Broadcast()
			}
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.CacheMisses < 2*rounds-2 {
		t.Errorf("misses = %d, want ~%d (ping-pong)", r.col.CacheMisses, 2*rounds)
	}
	if r.col.Invalidations == 0 {
		t.Error("no invalidations during write ping-pong")
	}
}

func TestEvictionWriteback(t *testing.T) {
	p := DefaultParams()
	p.CacheBytes = 256 // 16 lines, 2 ways -> 8 sets
	p.Ways = 2
	r := newRig(2, p)
	// Write 3 lines that map to the same set (stride = sets*LineBytes).
	stride := uint64(8 * LineBytes)
	base := r.shm.Alloc(1, 4*uint64(stride))
	r.eng.Spawn("writer", 0, func(th *sim.Thread) {
		for i := uint64(0); i < 3; i++ {
			r.shm.Write(th, 0, base+Addr(i*stride), 4)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Three dirty installs into a 2-way set force at least one writeback.
	if r.col.Messages["coherence"] == 0 {
		t.Fatal("no coherence messages at all")
	}
	// The written-back line returned to uncached-everywhere, so its
	// directory entry was reclaimed; only the two still-cached lines keep
	// directory state.
	if r.shm.DirEntries(1) != 2 {
		t.Errorf("dir entries = %d, want 2 (evicted line reclaimed)", r.shm.DirEntries(1))
	}
}

func TestMultiLineAccess(t *testing.T) {
	r := newRig(2, DefaultParams())
	addr := r.shm.Alloc(1, 64) // 4 lines
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Read(th, 0, addr, 64)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.CacheMisses != 4 {
		t.Errorf("misses = %d, want 4 (one per line)", r.col.CacheMisses)
	}
}

func TestModuleSerialization(t *testing.T) {
	r := newRig(9, DefaultParams())
	addr := r.shm.Alloc(8, 4)
	for p := 0; p < 8; p++ {
		p := p
		r.eng.Spawn("reader", 0, func(th *sim.Thread) {
			r.shm.Read(th, p, addr, 4)
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.shm.modules[8].Busy == 0 {
		t.Error("memory module never busy")
	}
	// All 8 procs should now share the line: a write triggers 8... 7
	// invalidations at least (stale sharers allowed).
	r.eng.Spawn("writer", 0, func(th *sim.Thread) {
		r.shm.Write(th, 8, addr, 4)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.Invalidations < 7 {
		t.Errorf("invalidations = %d, want >= 7", r.col.Invalidations)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	r := newRig(8, DefaultParams())
	addr := r.shm.Alloc(0, 4)
	completed := 0
	for p := 0; p < 8; p++ {
		p := p
		r.eng.Spawn("writer", 0, func(th *sim.Thread) {
			for i := 0; i < 5; i++ {
				r.shm.Write(th, p, addr, 4)
				th.Sleep(sim.Time(1 + p))
			}
			completed++
		})
	}
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 8 {
		t.Fatalf("only %d/8 writers completed (protocol deadlock?)", completed)
	}
}

// TestRandomizedProtocolNoDeadlock drives random reads/writes from random
// processors and checks the protocol always quiesces.
func TestRandomizedProtocolNoDeadlock(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := DefaultParams()
		p.CacheBytes = 512 // tiny cache to force evictions
		p.Ways = 2
		r := newRig(6, p)
		rng := sim.NewPRNG(seed)
		var addrs []Addr
		for i := 0; i < 20; i++ {
			addrs = append(addrs, r.shm.Alloc(rng.Intn(6), 16))
		}
		finished := 0
		for pid := 0; pid < 6; pid++ {
			pid := pid
			r.eng.Spawn("mutator", 0, func(th *sim.Thread) {
				for i := 0; i < 100; i++ {
					a := addrs[rng.Intn(len(addrs))]
					switch rng.Intn(3) {
					case 0:
						r.shm.Read(th, pid, a, 16)
					case 1:
						r.shm.Write(th, pid, a, 8)
					default:
						r.shm.RMW(th, pid, a)
					}
				}
				finished++
			})
		}
		if err := r.eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if finished != 6 {
			t.Fatalf("seed %d: %d/6 mutators finished", seed, finished)
		}
		// Every op touches exactly one line (line-aligned 16-byte objects).
		if total := r.col.CacheHits + r.col.CacheMisses; total != 6*100 {
			t.Fatalf("seed %d: hits+misses = %d, want 600", seed, total)
		}
	}
}

func TestHitMissAccountingConsistent(t *testing.T) {
	r := newRig(3, DefaultParams())
	addr := r.shm.Alloc(1, 4)
	accesses := 0
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			r.shm.Read(th, 0, addr, 4)
			accesses++
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.col.CacheHits + r.col.CacheMisses; got != uint64(accesses) {
		t.Errorf("hits+misses = %d, want %d", got, accesses)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	p := DefaultParams()
	p.Ways = 4 // LRU only matters in associative configurations
	c := newCache(p)
	sets := uint64(len(c.lines) / c.ways)
	stride := Addr(sets * LineBytes)
	// Fill one set (4 ways), touch line 0 to refresh it, then install a
	// 5th line: the victim must be line 1 (LRU), not line 0.
	for i := 0; i < 4; i++ {
		c.install(Addr(i)*stride, shared)
	}
	if c.lookup(0) == nil {
		t.Fatal("line 0 missing")
	}
	victim, vstate := c.install(4*stride, shared)
	if vstate == invalid {
		t.Fatal("no eviction from full set")
	}
	if victim != stride {
		t.Errorf("victim = %#x, want %#x (LRU)", victim, stride)
	}
	if c.lookup(0) == nil {
		t.Error("recently used line evicted")
	}
}

func TestSystemAccessors(t *testing.T) {
	r := newRig(2, DefaultParams())
	if r.shm.Collector() != r.col {
		t.Error("collector accessor wrong")
	}
	addr := r.shm.Alloc(1, 4)
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Read(th, 0, addr, 4)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.shm.ModuleUtilization(1) <= 0 {
		t.Error("home module utilization zero after a remote miss")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	run := func(prefetch bool) sim.Time {
		r := newRig(2, DefaultParams())
		base := r.shm.Alloc(1, 8*LineBytes)
		var elapsed sim.Time
		r.eng.Spawn("reader", 0, func(th *sim.Thread) {
			start := th.Now()
			if prefetch {
				r.shm.Prefetch(0, base, 8*LineBytes)
			}
			for i := 0; i < 8; i++ {
				r.shm.Read(th, 0, base+Addr(i*LineBytes), 8)
			}
			elapsed = th.Now() - start
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	demand := run(false)
	overlapped := run(true)
	if overlapped >= demand {
		t.Errorf("prefetch (%d cycles) not faster than demand misses (%d)", overlapped, demand)
	}
}

func TestPrefetchJoinNoDuplicateFetch(t *testing.T) {
	r := newRig(2, DefaultParams())
	addr := r.shm.Alloc(1, 8)
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Prefetch(0, addr, 8)
		// Demand read while the prefetch is in flight must join it.
		r.shm.Read(th, 0, addr, 8)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.col.Prefetches != 1 {
		t.Errorf("prefetches = %d", r.col.Prefetches)
	}
	if r.col.PrefetchJoins != 1 {
		t.Errorf("joins = %d, want 1", r.col.PrefetchJoins)
	}
	// One line moved once: exactly one request + one data reply.
	if got := r.col.Messages["coherence"]; got != 2 {
		t.Errorf("coherence messages = %d, want 2 (no duplicate fetch)", got)
	}
	if err := r.shm.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchCachedLineIsNoop(t *testing.T) {
	r := newRig(2, DefaultParams())
	addr := r.shm.Alloc(1, 8)
	r.eng.Spawn("reader", 0, func(th *sim.Thread) {
		r.shm.Read(th, 0, addr, 8)
		before := r.col.Prefetches
		r.shm.Prefetch(0, addr, 8)
		if r.col.Prefetches != before {
			t.Error("prefetch of a cached line issued a fetch")
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
