package mem

import (
	"fmt"
	"sort"
)

// LimitLESS support. The Alewife protocol the paper points to [CKA91]
// keeps a small fixed number of hardware directory pointers per line;
// when a line gains more sharers than that, directory operations on it
// trap to software on the home node's CPU. Widely read-shared lines are
// therefore cheap to read but expensive to invalidate — and the home
// processor, not just its memory module, pays for it.
//
// DirPointers == 0 selects a full-map hardware directory (the default,
// and what the experiments in the paper's tables assume); a positive
// value enables the LimitLESS behaviour for ablation studies.

// softwareHandled reports whether a directory operation on this entry
// must trap to software, and charges the home CPU when it does.
func (s *System) softwareHandled(home int, d *dirEntry, done func()) bool {
	if s.p.DirPointers <= 0 || len(d.sharers) <= s.p.DirPointers {
		return false
	}
	s.col.LimitlessTraps++
	// The trap runs on the home processor itself: interrupt entry, walk
	// of the overflowed sharer set, interrupt exit.
	cost := s.p.SoftDirBase + s.p.SoftDirPerSharer*uint64(len(d.sharers))
	s.mach.Proc(home).ExecAsync(cost, done)
	return true
}

// CheckCoherence validates the protocol's single-writer/multi-reader
// invariant at quiescence (no transactions in flight):
//
//   - at most one cache holds a given line modified;
//   - a modified copy excludes shared copies elsewhere;
//   - a modified copy is recorded as the directory owner;
//   - every cached copy is known to the directory (sharer or owner) —
//     silent shared evictions may leave stale directory entries, but
//     never the reverse.
//
// Tests call it after the event heap drains.
func (s *System) CheckCoherence() error {
	type holder struct {
		proc  int
		state lineState
	}
	holders := make(map[Addr][]holder)
	for p, c := range s.caches {
		for i := range c.lines {
			l := &c.lines[i]
			if c.valid(l) {
				holders[l.tag] = append(holders[l.tag], holder{proc: p, state: l.state})
			}
		}
	}
	lines := make([]Addr, 0, len(holders))
	for line := range holders {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })

	for _, line := range lines {
		hs := holders[line]
		d := s.dirs[HomeOf(line)][line]
		if d == nil {
			return fmt.Errorf("mem: line %#x cached with no directory entry", line)
		}
		if d.busy {
			return fmt.Errorf("mem: line %#x directory busy at quiescence", line)
		}
		modOwner := -1
		for _, h := range hs {
			if h.state != modified {
				continue
			}
			if modOwner >= 0 {
				return fmt.Errorf("mem: line %#x modified in caches %d and %d", line, modOwner, h.proc)
			}
			modOwner = h.proc
		}
		if modOwner >= 0 {
			if len(hs) > 1 {
				return fmt.Errorf("mem: line %#x has %d copies alongside a modified one", line, len(hs))
			}
			if d.owner != modOwner {
				return fmt.Errorf("mem: line %#x modified in cache %d but directory owner is %d",
					line, modOwner, d.owner)
			}
			continue
		}
		// Shared copies: each must be a recorded sharer (or the stale
		// owner whose recall raced a writeback hint).
		for _, h := range hs {
			if _, ok := d.sharers[h.proc]; !ok && d.owner != h.proc {
				return fmt.Errorf("mem: line %#x cached shared on %d unknown to directory", line, h.proc)
			}
		}
	}
	return nil
}
