// Package mem implements the paper's data-migration substrate:
// Alewife-style cache-coherent shared memory. Each processor has a 64KB,
// 16-byte-line cache; each line has a home memory module holding a
// full-map directory entry; the protocol is MSI with invalidation on
// write (the same family as LimitLESS/DASH).
//
// The simulation is execution-driven in the Proteus sense: the substrate
// tracks tags, states, sharers, latency, processor/memory-module
// occupancy, and word traffic, while the actual datum lives in ordinary
// Go objects owned by the application. Coherence messages travel on the
// same simulated network as runtime messages but are priced as hardware:
// they pay wire latency and consume bandwidth, with no software stub
// overhead — exactly the asymmetry the paper studies ("we are actually
// comparing a software implementation of RPC and computation migration
// to a hardware implementation of data migration").
package mem

import (
	"fmt"
	"sort"
	"sync"

	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Addr is a simulated shared-memory address. The home processor is packed
// into the upper bits.
type Addr uint64

const (
	// LineBytes is the cache line size (16 bytes, as in the paper).
	LineBytes = 16
	// LineWords is the line size in 32-bit words.
	LineWords = LineBytes / 4

	homeShift = 40
)

// HomeOf returns the processor whose memory module owns addr.
func HomeOf(a Addr) int { return int(uint64(a) >> homeShift) }

// lineOf returns the line-aligned address containing a.
func lineOf(a Addr) Addr { return a &^ (LineBytes - 1) }

// Params prices the hardware substrate.
type Params struct {
	CacheBytes int    // per-processor cache capacity (default 64KB)
	Ways       int    // set associativity (default 1: direct-mapped)
	HitCycles  uint64 // CPU cycles for a cache hit / lookup
	DirCycles  uint64 // memory-module occupancy per directory transaction
	MemCycles  uint64 // additional DRAM access time for data
	CtrlCycles uint64 // cache/directory controller handling per protocol message
	InstallCyc uint64 // CPU cycles to install an arriving line
	AddrWords  uint64 // words to name an address on the wire

	// LimitLESS directory emulation (0 = full-map hardware directory).
	// With DirPointers > 0, directory work on a line whose sharer set
	// exceeds the pointer count traps to software on the home CPU at
	// SoftDirBase + SoftDirPerSharer·|sharers| cycles.
	DirPointers      int
	SoftDirBase      uint64
	SoftDirPerSharer uint64
}

// DefaultParams returns the configuration used throughout the paper's
// experiments: 64K direct-mapped caches with 16-byte lines, as on the
// Alewife machine the paper's target resembles.
func DefaultParams() Params {
	return Params{
		CacheBytes: 64 << 10,
		Ways:       1,
		HitCycles:  2,
		DirCycles:  25,
		MemCycles:  25,
		CtrlCycles: 30,
		InstallCyc: 2,
		AddrWords:  2,

		SoftDirBase:      150,
		SoftDirPerSharer: 20,
	}
}

type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// cacheLine is kept to 16 bytes (tag + packed lru/gen/state) so a 64KB
// cache's metadata is one 64KB block: building and walking it is far
// cheaper than the naive layout. The 32-bit lru tick is plenty: it
// counts cache accesses within one experiment run, far below 2^32.
//
// gen makes entries from a previous life of a pooled backing array
// invisible without clearing it: a line is valid only when its gen
// matches the owning cache's generation.
type cacheLine struct {
	tag   Addr
	lru   uint32
	gen   uint16
	state lineState
}

type cache struct {
	lines []cacheLine // flat: set i occupies lines[i*ways : (i+1)*ways]
	back  *cacheBacking
	mask  uint64
	ways  int
	tick  uint32
	gen   uint16
}

// cacheBacking is a recyclable cacheLine array plus the generation its
// entries were last written under. The process-wide pool lets a harness
// sweep build thousands of machines without allocating (or zeroing) a
// fresh 64KB metadata block each time.
type cacheBacking struct {
	lines []cacheLine
	gen   uint16
}

var backingPool sync.Pool

func getBacking(n int) *cacheBacking {
	if v := backingPool.Get(); v != nil {
		b := v.(*cacheBacking)
		if len(b.lines) == n {
			b.gen++
			if b.gen == 0 {
				// Generation counter wrapped: entries written 2^16 lives
				// ago could collide with the new generation, so clear.
				clear(b.lines)
				b.gen = 1
			}
			return b
		}
	}
	// Fresh zeroed lines carry gen 0, invisible under generation 1.
	return &cacheBacking{lines: make([]cacheLine, n), gen: 1}
}

func newCache(p Params) *cache {
	lines := p.CacheBytes / LineBytes
	sets := lines / p.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache must have a power-of-two set count, got %d", sets))
	}
	b := getBacking(sets * p.Ways)
	return &cache{lines: b.lines, back: b, mask: uint64(sets - 1), ways: p.Ways, gen: b.gen}
}

// release returns the cache's backing array to the pool. The cache must
// not be used afterwards.
func (c *cache) release() {
	if c.back == nil {
		return
	}
	backingPool.Put(c.back)
	c.back = nil
	c.lines = nil
}

func (c *cache) set(line Addr) []cacheLine {
	i := int((uint64(line)/LineBytes)&c.mask) * c.ways
	return c.lines[i : i+c.ways : i+c.ways]
}

// valid reports whether l holds a live entry of this cache (not invalid,
// not a leftover from a previous life of the backing array).
func (c *cache) valid(l *cacheLine) bool {
	return l.gen == c.gen && l.state != invalid
}

// lookup returns the cached line or nil.
func (c *cache) lookup(line Addr) *cacheLine {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if c.valid(l) && l.tag == line {
			c.tick++
			l.lru = c.tick
			return l
		}
	}
	return nil
}

// install places line with the given state, returning the evicted victim
// (state modified or shared) if one was displaced.
func (c *cache) install(line Addr, st lineState) (victim Addr, victimState lineState) {
	set := c.set(line)
	c.tick++
	// Reuse an existing entry for the same tag (upgrade) or an invalid way.
	var lru *cacheLine
	for i := range set {
		l := &set[i]
		if !c.valid(l) {
			lru = l
			continue
		}
		if l.tag == line {
			l.state = st
			l.lru = c.tick
			return 0, invalid
		}
	}
	if lru == nil {
		lru = &set[0]
		for i := range set {
			if set[i].lru < lru.lru {
				lru = &set[i]
			}
		}
		victim, victimState = lru.tag, lru.state
	}
	lru.tag = line
	lru.state = st
	lru.lru = c.tick
	lru.gen = c.gen
	return victim, victimState
}

// drop removes line if present and returns its previous state.
func (c *cache) drop(line Addr) lineState {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if c.valid(l) && l.tag == line {
			st := l.state
			l.state = invalid
			return st
		}
	}
	return invalid
}

// dirEntry is the full-map directory state for one line, kept at its home
// memory module. Transactions on a line serialize through the busy flag.
type dirEntry struct {
	sharers map[int]struct{}
	owner   int // proc holding the line modified, or -1
	busy    bool
	pending []func()
}

// System is the machine-wide shared-memory substrate.
type System struct {
	eng  *sim.Engine
	mach *sim.Machine
	net  *network.Network
	col  *stats.Collector
	p    Params

	caches  []*cache
	modules []*sim.Proc // memory-module serial servers (not CPU procs)
	dirs    []map[Addr]*dirEntry
	heaps   []uint64 // per-proc bump allocators

	// inflight[p] tracks lines processor p is already fetching (MSHRs),
	// so demand reads join pending prefetches instead of duplicating
	// them. Allocated lazily per processor.
	inflight []map[Addr]*sim.Future

	// ctrlPool recycles the message-plus-adapter pair used for remote
	// coherence sends; the protocol ships millions of them per run.
	ctrlPool []*ctrlMsg
}

// ctrlMsg is one in-flight coherence message: the wire message and the
// adapter that charges controller handling at the receiver before
// invoking the protocol continuation. fn is the bound deliver method,
// built once when the adapter is created.
type ctrlMsg struct {
	s      *System
	m      network.Message
	arrive func()
	fn     func(*network.Message)
}

// deliver fires at the receiving controller: the adapter is returned to
// the pool first (locals keep its state), so the continuation may itself
// send and reuse it immediately.
func (c *ctrlMsg) deliver(*network.Message) {
	s, arrive := c.s, c.arrive
	c.arrive = nil
	s.ctrlPool = append(s.ctrlPool, c)
	s.eng.Schedule(s.p.CtrlCycles, arrive)
}

// New creates the substrate for the given machine and network.
func New(eng *sim.Engine, mach *sim.Machine, net *network.Network, col *stats.Collector, p Params) *System {
	s := &System{
		eng: eng, mach: mach, net: net, col: col, p: p,
		caches:   make([]*cache, mach.N()),
		modules:  make([]*sim.Proc, mach.N()),
		dirs:     make([]map[Addr]*dirEntry, mach.N()),
		heaps:    make([]uint64, mach.N()),
		inflight: make([]map[Addr]*sim.Future, mach.N()),
	}
	for i := 0; i < mach.N(); i++ {
		s.caches[i] = newCache(p)
		s.modules[i] = sim.NewMachine(eng, 1).Proc(0)
		s.dirs[i] = make(map[Addr]*dirEntry)
		// Stagger heap bases so different homes' allocations spread over
		// the cache index space, as real heap addresses do; identical
		// bases would alias every node's data into the same few sets.
		s.heaps[i] = (uint64(i) * 2654435761) % (1 << 20) &^ (LineBytes - 1)
	}
	return s
}

// Alloc reserves size bytes of shared memory homed on processor home and
// returns the (line-aligned) base address.
func (s *System) Alloc(home int, size uint64) Addr {
	if home < 0 || home >= len(s.heaps) {
		panic("mem: alloc home out of range")
	}
	// Align to line boundaries so distinct objects never share lines
	// (avoids false sharing perturbing the experiments).
	base := (s.heaps[home] + LineBytes - 1) &^ (LineBytes - 1)
	s.heaps[home] = base + size
	if s.heaps[home] >= 1<<homeShift {
		panic("mem: heap exhausted")
	}
	return Addr(uint64(home)<<homeShift | base)
}

// Release returns the per-processor cache metadata to the process-wide
// pool. Call it when the experiment that built the system is done with
// it; the system must not be used afterwards. Releasing twice is a no-op.
func (s *System) Release() {
	if s == nil {
		return
	}
	for _, c := range s.caches {
		c.release()
	}
}

// Collector returns the stats sink.
func (s *System) Collector() *stats.Collector { return s.col }

// ModuleUtilization returns the busy fraction of processor p's memory
// module (used to demonstrate the resource-contention results).
func (s *System) ModuleUtilization(p int) float64 { return s.modules[p].Utilization() }

func (s *System) dir(line Addr) *dirEntry {
	home := HomeOf(line)
	d := s.dirs[home][line]
	if d == nil {
		d = &dirEntry{sharers: make(map[int]struct{}), owner: -1}
		s.dirs[home][line] = d
	}
	return d
}

// withLine serializes fn against other transactions on the same line.
// fn receives a release callback it must invoke exactly once when the
// transaction completes.
func (s *System) withLine(line Addr, fn func(d *dirEntry, release func())) {
	d := s.dir(line)
	run := func() {
		d.busy = true
		fn(d, func() {
			d.busy = false
			if len(d.pending) > 0 {
				next := d.pending[0]
				copy(d.pending, d.pending[1:])
				d.pending = d.pending[:len(d.pending)-1]
				s.eng.Schedule(0, next)
			}
		})
	}
	if d.busy {
		d.pending = append(d.pending, run)
		return
	}
	run()
}

// send ships a protocol message, or schedules locally with no traffic if
// src == dst (a processor talking to its own memory module). Each remote
// delivery pays controller handling latency at the receiving end on top
// of wire transit — hardware, but not free.
func (s *System) send(src, dst int, dataWords uint64, arrive func()) {
	s.col.ProtocolMsgs++
	if src == dst {
		s.eng.Schedule(1+s.p.CtrlCycles/4, arrive)
		return
	}
	var c *ctrlMsg
	if k := len(s.ctrlPool); k > 0 {
		c = s.ctrlPool[k-1]
		s.ctrlPool[k-1] = nil
		s.ctrlPool = s.ctrlPool[:k-1]
	} else {
		c = &ctrlMsg{s: s}
		c.fn = c.deliver
	}
	// The receiver never reads coherence payloads, so the address and
	// data words are charged via ExtraWords instead of a live slice.
	c.m = network.Message{Src: src, Dst: dst, Kind: "coherence", ExtraWords: s.p.AddrWords + dataWords}
	c.arrive = arrive
	s.net.Send(&c.m, c.fn)
}

// Read performs a shared-memory load of size bytes at addr by thread th
// running on processor proc, blocking until every covered line is present.
func (s *System) Read(th *sim.Thread, proc int, addr Addr, size uint64) {
	s.access(th, proc, addr, size, false)
}

// Write performs a store: every covered line is fetched exclusive
// (invalidating other copies) before the write completes.
func (s *System) Write(th *sim.Thread, proc int, addr Addr, size uint64) {
	s.access(th, proc, addr, size, true)
}

// RMW performs an atomic read-modify-write on the line containing addr
// (e.g. a balancer toggle or a lock word): it is a Write of one word.
func (s *System) RMW(th *sim.Thread, proc int, addr Addr) {
	s.access(th, proc, addr, 4, true)
}

func (s *System) access(th *sim.Thread, proc int, addr Addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	first := lineOf(addr)
	last := lineOf(addr + Addr(size) - 1)
	for line := first; ; line += LineBytes {
		s.accessLine(th, proc, line, write)
		if line == last {
			break
		}
	}
}

func (s *System) accessLine(th *sim.Thread, proc int, line Addr, write bool) {
	cpu := s.mach.Proc(proc)
	th.Exec(cpu, s.p.HitCycles) // tag lookup always costs a hit time
	c := s.caches[proc]
	if l := c.lookup(line); l != nil {
		if !write || l.state == modified {
			s.col.CacheHits++
			return
		}
	}
	s.col.CacheMisses++
	if s.eng.Tracing() {
		s.eng.Tracef("miss", "p%d line %#x write=%v", proc, uint64(line), write)
	}
	if !write && s.joinInflight(th, proc, line) {
		// The line was already on its way (prefetch); it is installed by
		// the fill helper once the wait returns.
		if c.lookup(line) != nil {
			th.Exec(cpu, s.p.InstallCyc)
			return
		}
		// Evicted between fill and resume: fall through to a fresh fetch.
	}
	fut := &sim.Future{}
	if write {
		s.fetchExclusive(proc, line, fut)
	} else {
		s.fetchShared(proc, line, fut)
	}
	// The directory transaction stays open until the line is installed
	// here; completing it earlier would let a queued request invalidate a
	// copy that has not arrived yet (two-owners race).
	release := fut.Wait(th).(func())
	st := shared
	if write {
		st = modified
	}
	victim, vstate := c.install(line, st)
	release()
	if vstate == modified {
		// Dirty eviction: fire-and-forget writeback to the victim's home.
		s.writeback(proc, victim)
	}
	th.Exec(cpu, s.p.InstallCyc)
}

// dirWork runs a directory transaction's bookkeeping: in software on the
// home CPU when the line's sharer set has overflowed the hardware
// pointers (LimitLESS), on the memory module otherwise.
func (s *System) dirWork(home int, d *dirEntry, cycles uint64, done func()) {
	if s.softwareHandled(home, d, done) {
		return
	}
	s.modules[home].ExecAsync(cycles, done)
}

// fetchShared obtains a read copy of line for proc and completes fut.
func (s *System) fetchShared(proc int, line Addr, fut *sim.Future) {
	home := HomeOf(line)
	s.send(proc, home, 0, func() {
		s.withLine(line, func(d *dirEntry, release func()) {
			finish := func() {
				d.sharers[proc] = struct{}{}
				// Data reply home -> proc; the transaction is released by
				// the requester once the line is installed.
				s.send(home, proc, LineWords, func() {
					fut.Complete(release)
				})
			}
			if d.owner >= 0 && d.owner != proc {
				owner := d.owner
				// Recall the dirty copy: home -> owner, owner downgrades
				// and returns data, home writes memory, then serves.
				s.send(home, owner, 0, func() {
					if s.caches[owner].drop(line) == modified {
						s.caches[owner].install(line, shared)
					}
					s.send(owner, home, LineWords, func() {
						d.owner = -1
						d.sharers[owner] = struct{}{}
						s.dirWork(home, d, s.p.DirCycles+s.p.MemCycles, finish)
					})
				})
				return
			}
			d.owner = -1
			s.dirWork(home, d, s.p.DirCycles+s.p.MemCycles, finish)
		})
	})
}

// fetchExclusive obtains an exclusive (writable) copy of line for proc,
// invalidating all other cached copies, and completes fut.
func (s *System) fetchExclusive(proc int, line Addr, fut *sim.Future) {
	home := HomeOf(line)
	s.send(proc, home, 0, func() {
		s.withLine(line, func(d *dirEntry, release func()) {
			grant := func(withData bool) {
				for q := range d.sharers {
					delete(d.sharers, q)
				}
				d.owner = proc
				words := uint64(0)
				if withData {
					words = LineWords
				}
				s.send(home, proc, words, func() { fut.Complete(release) })
			}
			if d.owner >= 0 && d.owner != proc {
				owner := d.owner
				// Fetch-and-invalidate the dirty copy.
				s.send(home, owner, 0, func() {
					s.caches[owner].drop(line)
					s.col.Invalidations++
					s.send(owner, home, LineWords, func() {
						s.dirWork(home, d, s.p.DirCycles, func() { grant(true) })
					})
				})
				return
			}
			_, wasSharer := d.sharers[proc]
			var others []int
			for q := range d.sharers {
				if q != proc {
					others = append(others, q)
				}
			}
			sort.Ints(others) // keep event order independent of map iteration
			if len(others) == 0 {
				s.dirWork(home, d, s.p.DirCycles+s.p.MemCycles, func() { grant(!wasSharer) })
				return
			}
			// Invalidate every other sharer; collect acks.
			acks := 0
			for _, q := range others {
				q := q
				s.send(home, q, 0, func() {
					s.caches[q].drop(line)
					s.col.Invalidations++
					s.send(q, home, 0, func() {
						acks++
						if acks == len(others) {
							s.dirWork(home, d, s.p.DirCycles, func() { grant(!wasSharer) })
						}
					})
				})
			}
		})
	})
}

// writeback retires a dirty evicted line to its home (fire-and-forget).
// By the time it is processed the directory may have moved on (a recall
// raced ahead), so it degrades to a replacement hint in that case.
func (s *System) writeback(proc int, line Addr) {
	home := HomeOf(line)
	s.send(proc, home, LineWords, func() {
		s.withLine(line, func(d *dirEntry, release func()) {
			if d.owner == proc {
				d.owner = -1
			}
			delete(d.sharers, proc)
			s.modules[home].ExecAsync(s.p.DirCycles+s.p.MemCycles, release)
		})
	})
}

// DirEntries returns how many lines homed on the given processor have
// directory state (useful in tests and reports).
func (s *System) DirEntries(home int) int { return len(s.dirs[home]) }
