// Package mem implements the paper's data-migration substrate:
// Alewife-style cache-coherent shared memory. Each processor has a 64KB,
// 16-byte-line cache; each line has a home memory module holding a
// full-map directory entry; the protocol is MSI with invalidation on
// write (the same family as LimitLESS/DASH).
//
// The simulation is execution-driven in the Proteus sense: the substrate
// tracks tags, states, sharers, latency, processor/memory-module
// occupancy, and word traffic, while the actual datum lives in ordinary
// Go objects owned by the application. Coherence messages travel on the
// same simulated network as runtime messages but are priced as hardware:
// they pay wire latency and consume bandwidth, with no software stub
// overhead — exactly the asymmetry the paper studies ("we are actually
// comparing a software implementation of RPC and computation migration
// to a hardware implementation of data migration").
package mem

import (
	"fmt"
	"sort"
	"sync"        //simvet:allow host-side cache-backing pool shared across harness workers; never touches simulated state
	"sync/atomic" //simvet:allow host-side cache-backing pool shared across harness workers; never touches simulated state

	"compmig/internal/network"
	"compmig/internal/profile"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// Addr is a simulated shared-memory address. The home processor is packed
// into the upper bits.
type Addr uint64

const (
	// LineBytes is the cache line size (16 bytes, as in the paper).
	LineBytes = 16
	// LineWords is the line size in 32-bit words.
	LineWords = LineBytes / 4

	homeShift = 40
)

// HomeOf returns the processor whose memory module owns addr.
func HomeOf(a Addr) int { return int(uint64(a) >> homeShift) }

// lineOf returns the line-aligned address containing a.
func lineOf(a Addr) Addr { return a &^ (LineBytes - 1) }

// Params prices the hardware substrate.
type Params struct {
	CacheBytes int    // per-processor cache capacity (default 64KB)
	Ways       int    // set associativity (default 1: direct-mapped)
	HitCycles  uint64 // CPU cycles for a cache hit / lookup
	DirCycles  uint64 // memory-module occupancy per directory transaction
	MemCycles  uint64 // additional DRAM access time for data
	CtrlCycles uint64 // cache/directory controller handling per protocol message
	InstallCyc uint64 // CPU cycles to install an arriving line
	AddrWords  uint64 // words to name an address on the wire

	// LimitLESS directory emulation (0 = full-map hardware directory).
	// With DirPointers > 0, directory work on a line whose sharer set
	// exceeds the pointer count traps to software on the home CPU at
	// SoftDirBase + SoftDirPerSharer·|sharers| cycles.
	DirPointers      int
	SoftDirBase      uint64
	SoftDirPerSharer uint64
}

// DefaultParams returns the configuration used throughout the paper's
// experiments: 64K direct-mapped caches with 16-byte lines, as on the
// Alewife machine the paper's target resembles.
func DefaultParams() Params {
	return Params{
		CacheBytes: 64 << 10,
		Ways:       1,
		HitCycles:  2,
		DirCycles:  25,
		MemCycles:  25,
		CtrlCycles: 30,
		InstallCyc: 2,
		AddrWords:  2,

		SoftDirBase:      150,
		SoftDirPerSharer: 20,
	}
}

type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// cacheLine is kept to 16 bytes (tag + packed lru/gen/state) so a 64KB
// cache's metadata is one 64KB block: building and walking it is far
// cheaper than the naive layout. The 32-bit lru tick is plenty: it
// counts cache accesses within one experiment run, far below 2^32.
//
// gen makes entries from a previous life of a pooled backing array
// invisible without clearing it: a line is valid only when its gen
// matches the owning cache's generation.
type cacheLine struct {
	tag   Addr
	lru   uint32
	gen   uint16
	state lineState
}

type cache struct {
	lines []cacheLine // flat: set i occupies lines[i*ways : (i+1)*ways]
	back  *cacheBacking
	mask  uint64
	ways  int
	tick  uint32
	gen   uint16
}

// cacheBacking is a recyclable cacheLine array plus the generation its
// entries were last written under. The process-wide pool lets a harness
// sweep build thousands of machines without allocating (or zeroing) a
// fresh 64KB metadata block each time.
type cacheBacking struct {
	lines []cacheLine
	gen   uint16
}

// The backing free lists are sharded plain stacks rather than a
// sync.Pool: the pool's GC clearing threw the 64KB blocks away between
// sweep batches (alloc_bytes grew with worker count), and its per-P
// caches are useless under GOMAXPROCS=1. Round-robin shard selection
// spreads harness workers across locks; the per-shard cap bounds
// process-wide retention.
const (
	backingShardCount = 8
	backingShardCap   = 64
)

type backingShard struct {
	mu   sync.Mutex
	free []*cacheBacking
}

var (
	backingShards [backingShardCount]backingShard
	backingCursor atomic.Uint32
)

func getBacking(n int) *cacheBacking {
	shard := &backingShards[backingCursor.Add(1)%backingShardCount]
	shard.mu.Lock()
	for k := len(shard.free) - 1; k >= 0; k-- {
		b := shard.free[k]
		if len(b.lines) != n {
			continue
		}
		last := len(shard.free) - 1
		shard.free[k] = shard.free[last]
		shard.free[last] = nil
		shard.free = shard.free[:last]
		shard.mu.Unlock()
		b.gen++
		if b.gen == 0 {
			// Generation counter wrapped: entries written 2^16 lives
			// ago could collide with the new generation, so clear.
			clear(b.lines)
			b.gen = 1
		}
		return b
	}
	shard.mu.Unlock()
	// Fresh zeroed lines carry gen 0, invisible under generation 1.
	return &cacheBacking{lines: make([]cacheLine, n), gen: 1}
}

func putBacking(b *cacheBacking) {
	shard := &backingShards[backingCursor.Add(1)%backingShardCount]
	shard.mu.Lock()
	if len(shard.free) < backingShardCap {
		shard.free = append(shard.free, b)
	}
	shard.mu.Unlock()
}

func newCache(p Params) *cache {
	lines := p.CacheBytes / LineBytes
	sets := lines / p.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("mem: cache must have a power-of-two set count, got %d", sets))
	}
	b := getBacking(sets * p.Ways)
	return &cache{lines: b.lines, back: b, mask: uint64(sets - 1), ways: p.Ways, gen: b.gen}
}

// release returns the cache's backing array to the pool. The cache must
// not be used afterwards.
func (c *cache) release() {
	if c.back == nil {
		return
	}
	putBacking(c.back)
	c.back = nil
	c.lines = nil
}

func (c *cache) set(line Addr) []cacheLine {
	i := int((uint64(line)/LineBytes)&c.mask) * c.ways
	return c.lines[i : i+c.ways : i+c.ways]
}

// valid reports whether l holds a live entry of this cache (not invalid,
// not a leftover from a previous life of the backing array).
func (c *cache) valid(l *cacheLine) bool {
	return l.gen == c.gen && l.state != invalid
}

// lookup returns the cached line or nil.
func (c *cache) lookup(line Addr) *cacheLine {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if c.valid(l) && l.tag == line {
			c.tick++
			l.lru = c.tick
			return l
		}
	}
	return nil
}

// peek reports whether line is present in a state sufficient for the
// access (any valid state for reads, modified for writes) without
// touching the LRU bookkeeping, so a declined fast path leaves the cache
// exactly as an untried one.
func (c *cache) peek(line Addr, write bool) bool {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if c.valid(l) && l.tag == line {
			return !write || l.state == modified
		}
	}
	return false
}

// victimState reports the state of the entry install(line, ...) would
// evict, or invalid when installing would displace nothing (a free or
// same-tag way exists). Like peek it is mutation-free.
func (c *cache) victimState(line Addr) lineState {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if !c.valid(l) || l.tag == line {
			return invalid
		}
	}
	lru := &set[0]
	for i := range set {
		if set[i].lru < lru.lru {
			lru = &set[i]
		}
	}
	return lru.state
}

// install places line with the given state, returning the evicted victim
// (state modified or shared) if one was displaced.
func (c *cache) install(line Addr, st lineState) (victim Addr, victimState lineState) {
	set := c.set(line)
	c.tick++
	// Reuse an existing entry for the same tag (upgrade) or an invalid way.
	var lru *cacheLine
	for i := range set {
		l := &set[i]
		if !c.valid(l) {
			lru = l
			continue
		}
		if l.tag == line {
			l.state = st
			l.lru = c.tick
			return 0, invalid
		}
	}
	if lru == nil {
		lru = &set[0]
		for i := range set {
			if set[i].lru < lru.lru {
				lru = &set[i]
			}
		}
		victim, victimState = lru.tag, lru.state
	}
	lru.tag = line
	lru.state = st
	lru.lru = c.tick
	lru.gen = c.gen
	return victim, victimState
}

// drop removes line if present and returns its previous state.
func (c *cache) drop(line Addr) lineState {
	set := c.set(line)
	for i := range set {
		l := &set[i]
		if c.valid(l) && l.tag == line {
			st := l.state
			l.state = invalid
			return st
		}
	}
	return invalid
}

// dirEntry is the full-map directory state for one line, kept at its home
// memory module. Transactions on a line serialize through the busy flag.
type dirEntry struct {
	sharers map[int]struct{}
	owner   int // proc holding the line modified, or -1
	busy    bool
	pending []func()
}

// fastPathOn controls whether newly created Systems take the inline fast
// paths. It exists so tests can force every access through the
// event-driven protocol and assert both modes produce identical
// simulated results.
var fastPathOn atomic.Bool

func init() { fastPathOn.Store(true) }

// SetFastPath enables or disables the inline fast paths for Systems
// created afterwards; existing Systems keep the setting they were built
// with. The fast paths never change simulated outcomes — only how much
// host work it takes to compute them — so this is purely a testing and
// debugging knob.
func SetFastPath(on bool) { fastPathOn.Store(on) }

// FastPathEnabled reports the current process-wide setting.
func FastPathEnabled() bool { return fastPathOn.Load() }

// System is the machine-wide shared-memory substrate.
type System struct {
	eng  *sim.Engine
	mach *sim.Machine
	net  *network.Network
	col  *stats.Collector
	p    Params
	fast bool // snapshot of fastPathOn at creation

	// Host-side profiling tallies (plain fields: a System is driven by
	// one engine), flushed to the profile package on Release.
	nFastHits  uint64 // line accesses satisfied by the inline all-hit path
	nFastLocal uint64 // misses completed inline at the home module
	nSlow      uint64 // line accesses through the event-driven protocol

	// modInval[p] counts invalidations of lines homed on module p — the
	// per-object write-sharing pressure signal the policy layer reads
	// (objects are homed with their lines, so a hot object's invalidation
	// storm shows up at its home module).
	modInval []uint64

	caches  []*cache
	modules []*sim.Proc // memory-module serial servers (not CPU procs)
	dirs    []map[Addr]*dirEntry
	heaps   []uint64 // per-proc bump allocators

	// inflight[p] tracks lines processor p is already fetching (MSHRs),
	// so demand reads join pending prefetches instead of duplicating
	// them. Allocated lazily per processor.
	inflight []map[Addr]*sim.Future

	// ctrlPool recycles the message-plus-adapter pair used for remote
	// coherence sends; the protocol ships millions of them per run.
	ctrlPool []*ctrlMsg

	// txnPool recycles miss-transaction objects (see txn).
	txnPool []*txn
}

// ctrlMsg is one in-flight coherence message: the wire message and the
// adapter that charges controller handling at the receiver before
// invoking the protocol continuation. fn is the bound deliver method,
// built once when the adapter is created.
type ctrlMsg struct {
	s      *System
	m      network.Message
	arrive func()
	fn     func(*network.Message)
}

// deliver fires at the receiving controller, after wire transit plus the
// controller handling delay (folded into the delivery event by
// SendAfter, so a coherence message costs one heap event, not two). The
// adapter is returned to the pool first (locals keep its state), so the
// continuation may itself send and reuse it immediately.
func (c *ctrlMsg) deliver(*network.Message) {
	s, arrive := c.s, c.arrive
	c.arrive = nil
	s.ctrlPool = append(s.ctrlPool, c)
	arrive()
}

// New creates the substrate for the given machine and network.
func New(eng *sim.Engine, mach *sim.Machine, net *network.Network, col *stats.Collector, p Params) *System {
	s := &System{
		eng: eng, mach: mach, net: net, col: col, p: p,
		fast:     fastPathOn.Load(),
		caches:   make([]*cache, mach.N()),
		modules:  make([]*sim.Proc, mach.N()),
		dirs:     make([]map[Addr]*dirEntry, mach.N()),
		heaps:    make([]uint64, mach.N()),
		inflight: make([]map[Addr]*sim.Future, mach.N()),
		modInval: make([]uint64, mach.N()),
	}
	for i := 0; i < mach.N(); i++ {
		s.caches[i] = newCache(p)
		s.modules[i] = sim.NewMachine(eng, 1).Proc(0)
		s.dirs[i] = make(map[Addr]*dirEntry)
		// Stagger heap bases so different homes' allocations spread over
		// the cache index space, as real heap addresses do; identical
		// bases would alias every node's data into the same few sets.
		s.heaps[i] = (uint64(i) * 2654435761) % (1 << 20) &^ (LineBytes - 1)
	}
	return s
}

// Alloc reserves size bytes of shared memory homed on processor home and
// returns the (line-aligned) base address.
func (s *System) Alloc(home int, size uint64) Addr {
	if home < 0 || home >= len(s.heaps) {
		panic("mem: alloc home out of range")
	}
	// Align to line boundaries so distinct objects never share lines
	// (avoids false sharing perturbing the experiments).
	base := (s.heaps[home] + LineBytes - 1) &^ (LineBytes - 1)
	s.heaps[home] = base + size
	if s.heaps[home] >= 1<<homeShift {
		panic("mem: heap exhausted")
	}
	return Addr(uint64(home)<<homeShift | base)
}

// Release returns the per-processor cache metadata to the process-wide
// pool. Call it when the experiment that built the system is done with
// it; the system must not be used afterwards. Releasing twice is a no-op.
func (s *System) Release() {
	if s == nil {
		return
	}
	if s.nFastHits|s.nFastLocal|s.nSlow != 0 {
		profile.MemFastHits.Add(s.nFastHits)
		profile.MemFastLocal.Add(s.nFastLocal)
		profile.MemSlow.Add(s.nSlow)
		s.nFastHits, s.nFastLocal, s.nSlow = 0, 0, 0
	}
	for _, c := range s.caches {
		c.release()
	}
}

// FastPathCounts returns this System's (fast hits, fast local misses,
// slow accesses) tallies so far, at line-access granularity.
func (s *System) FastPathCounts() (fastHits, fastLocal, slow uint64) {
	return s.nFastHits, s.nFastLocal, s.nSlow
}

// Collector returns the stats sink.
func (s *System) Collector() *stats.Collector { return s.col }

// ModuleUtilization returns the busy fraction of processor p's memory
// module (used to demonstrate the resource-contention results).
func (s *System) ModuleUtilization(p int) float64 { return s.modules[p].Utilization() }

// ModuleInvalidations returns the number of invalidations of lines homed
// on processor p's module so far — the write-sharing pressure signal the
// policy layer samples per object home.
func (s *System) ModuleInvalidations(p int) uint64 { return s.modInval[p] }

func (s *System) dir(line Addr) *dirEntry {
	home := HomeOf(line)
	d := s.dirs[home][line]
	if d == nil {
		d = &dirEntry{sharers: make(map[int]struct{}), owner: -1}
		s.dirs[home][line] = d
	}
	return d
}

// withLine serializes fn against other transactions on the same line.
// fn receives a release callback it must invoke exactly once when the
// transaction completes.
func (s *System) withLine(line Addr, fn func(d *dirEntry, release func())) {
	d := s.dir(line)
	run := func() {
		d.busy = true
		fn(d, func() {
			d.busy = false
			if len(d.pending) > 0 {
				next := d.pending[0]
				copy(d.pending, d.pending[1:])
				d.pending = d.pending[:len(d.pending)-1]
				s.eng.Schedule(0, next)
			}
		})
	}
	if d.busy {
		d.pending = append(d.pending, run)
		return
	}
	run()
}

// send ships a protocol message, or schedules locally with no traffic if
// src == dst (a processor talking to its own memory module). Each remote
// delivery pays controller handling latency at the receiving end on top
// of wire transit — hardware, but not free.
func (s *System) send(src, dst int, dataWords uint64, arrive func()) {
	s.col.ProtocolMsgs++
	if src == dst {
		s.eng.Schedule(1+s.p.CtrlCycles/4, arrive)
		return
	}
	var c *ctrlMsg
	if k := len(s.ctrlPool); k > 0 {
		c = s.ctrlPool[k-1]
		s.ctrlPool[k-1] = nil
		s.ctrlPool = s.ctrlPool[:k-1]
	} else {
		c = &ctrlMsg{s: s}
		c.fn = c.deliver
	}
	// The receiver never reads coherence payloads, so the address and
	// data words are charged via ExtraWords instead of a live slice.
	c.m = network.Message{Src: src, Dst: dst, Kind: "coherence", ExtraWords: s.p.AddrWords + dataWords}
	c.arrive = arrive
	s.net.SendAfter(&c.m, s.p.CtrlCycles, c.fn)
}

// Read performs a shared-memory load of size bytes at addr by thread th
// running on processor proc, blocking until every covered line is present.
func (s *System) Read(th *sim.Thread, proc int, addr Addr, size uint64) {
	s.access(th, proc, addr, size, false)
}

// Write performs a store: every covered line is fetched exclusive
// (invalidating other copies) before the write completes.
func (s *System) Write(th *sim.Thread, proc int, addr Addr, size uint64) {
	s.access(th, proc, addr, size, true)
}

// RMW performs an atomic read-modify-write on the line containing addr
// (e.g. a balancer toggle or a lock word): it is a Write of one word.
func (s *System) RMW(th *sim.Thread, proc int, addr Addr) {
	s.access(th, proc, addr, 4, true)
}

func (s *System) access(th *sim.Thread, proc int, addr Addr, size uint64, write bool) {
	if size == 0 {
		return
	}
	first := lineOf(addr)
	last := lineOf(addr + Addr(size) - 1)
	if s.fast && s.fastAllHit(proc, first, last, write) {
		return
	}
	for line := first; ; line += LineBytes {
		if !s.fast || !s.fastLocalMiss(proc, line, write) {
			s.accessLine(th, proc, line, write)
		}
		if line == last {
			break
		}
	}
}

// fastAllHit satisfies an access entirely from the local cache in one
// clock jump: every covered line must already be present in a sufficient
// state, and nothing else may be scheduled inside the access's charge
// window (TryAdvance). Under those conditions it replicates the slow
// path exactly — the same per-line lookup order (hence LRU tick
// assignment), hit counts, processor occupancy, and completion time —
// with no Future, no directory lock, and no event-heap traffic.
func (s *System) fastAllHit(proc int, first, last Addr, write bool) bool {
	if s.p.HitCycles == 0 {
		return false
	}
	c := s.caches[proc]
	n := uint64(0)
	for line := first; ; line += LineBytes {
		if !c.peek(line, write) {
			return false
		}
		n++
		if line == last {
			break
		}
	}
	cpu := s.mach.Proc(proc)
	now := s.eng.Now()
	start := cpu.FreeAt()
	if start < now {
		start = now
	}
	if !s.eng.TryAdvance(start + n*s.p.HitCycles) {
		return false
	}
	cpu.ReserveAt(now, n*s.p.HitCycles)
	for line := first; ; line += LineBytes {
		c.lookup(line)
		if line == last {
			break
		}
	}
	s.col.CacheHits += n
	s.nFastHits += n
	return true
}

// fastLocalMiss completes a miss whose home module is on the accessing
// processor inline. When the directory entry is idle with no conflicting
// remote copies and nothing else is scheduled before the transaction
// would complete, the whole exchange — tag probe, self-addressed request,
// directory + DRAM occupancy, local reply, line install — collapses into
// synchronous bookkeeping plus one clock jump with identical statistics
// and occupancy accounting. It reports false (leaving no trace of the
// attempt) whenever any precondition fails; the event-driven path then
// handles the access.
func (s *System) fastLocalMiss(proc int, line Addr, write bool) bool {
	if HomeOf(line) != proc || s.p.DirPointers != 0 || s.p.HitCycles == 0 || s.eng.Tracing() {
		return false
	}
	c := s.caches[proc]
	if c.peek(line, write) {
		return false // hit: the regular path charges it
	}
	if !write {
		if m := s.inflight[proc]; m != nil {
			if _, pending := m[line]; pending {
				return false // must join the in-flight prefetch
			}
		}
	}
	d := s.dir(line)
	if d.busy || len(d.pending) > 0 || d.owner != -1 {
		return false
	}
	if write && len(d.sharers) > 0 {
		if _, self := d.sharers[proc]; !self || len(d.sharers) > 1 {
			return false // remote sharers need invalidations
		}
	}
	if c.victimState(line) == modified {
		return false // dirty eviction: the slow path issues the writeback
	}
	// Replay the slow path's timeline: hit-time tag probe on the CPU (t0),
	// self-addressed request (t1), directory + DRAM work queued on the
	// home module (t2), local data reply (t3), install charge on the CPU.
	cpu := s.mach.Proc(proc)
	now := s.eng.Now()
	t0 := cpu.FreeAt()
	if t0 < now {
		t0 = now
	}
	t0 += s.p.HitCycles
	t1 := t0 + 1 + s.p.CtrlCycles/4
	t2 := s.modules[proc].FreeAt()
	if t2 < t1 {
		t2 = t1
	}
	t2 += s.p.DirCycles + s.p.MemCycles
	t3 := t2 + 1 + s.p.CtrlCycles/4
	if !s.eng.TryAdvance(t3 + s.p.InstallCyc) {
		return false
	}
	cpu.ReserveAt(now, s.p.HitCycles)
	s.modules[proc].ReserveAt(t1, s.p.DirCycles+s.p.MemCycles)
	if s.p.InstallCyc > 0 {
		cpu.ReserveAt(t3, s.p.InstallCyc)
	}
	s.col.CacheMisses++
	s.col.ProtocolMsgs += 2 // request and reply, both module-local: no traffic
	st := shared
	if write {
		st = modified
		clear(d.sharers)
		d.owner = proc
	} else {
		d.sharers[proc] = struct{}{}
	}
	c.install(line, st)
	s.nFastLocal++
	return true
}

func (s *System) accessLine(th *sim.Thread, proc int, line Addr, write bool) {
	s.nSlow++
	if profile.Enabled() {
		defer profile.MemSlow.TimeNs()()
	}
	cpu := s.mach.Proc(proc)
	th.Exec(cpu, s.p.HitCycles) // tag lookup always costs a hit time
	c := s.caches[proc]
	if l := c.lookup(line); l != nil {
		if !write || l.state == modified {
			s.col.CacheHits++
			return
		}
	}
	s.col.CacheMisses++
	if s.eng.Tracing() {
		s.eng.Tracef("miss", "p%d line %#x write=%v", proc, uint64(line), write)
	}
	if !write && s.joinInflight(th, proc, line) {
		// The line was already on its way (prefetch); it is installed by
		// the fill helper once the wait returns.
		if c.lookup(line) != nil {
			th.Exec(cpu, s.p.InstallCyc)
			return
		}
		// Evicted between fill and resume: fall through to a fresh fetch.
	}
	// One demand miss is in flight per thread at a time, so the thread's
	// scratch future serves the rendezvous without allocating.
	fut := th.ScratchFuture()
	s.fetch(proc, line, write, fut)
	// The directory transaction stays open until the line is installed
	// here (see fetch).
	release := fut.Wait(th).(func())
	st := shared
	if write {
		st = modified
	}
	victim, vstate := c.install(line, st)
	release()
	if vstate == modified {
		// Dirty eviction: fire-and-forget writeback to the victim's home.
		s.writeback(proc, victim)
	}
	th.Exec(cpu, s.p.InstallCyc)
}

// dirWork runs a directory transaction's bookkeeping: in software on the
// home CPU when the line's sharer set has overflowed the hardware
// pointers (LimitLESS), on the memory module otherwise.
func (s *System) dirWork(home int, d *dirEntry, cycles uint64, done func()) {
	if s.softwareHandled(home, d, done) {
		return
	}
	s.modules[home].ExecAsync(cycles, done)
}

// txn is one in-flight miss transaction: the requester's fetch of a line
// in shared (read) or exclusive (write) state. The protocol steps are
// methods bound once per pooled object, so the slow path's spine — the
// request, directory serialization, recall, grant, and reply — allocates
// nothing per miss; only the multi-sharer invalidation fan-out still
// captures per-sharer state.
type txn struct {
	s        *System
	proc     int // requester
	home     int
	owner    int // dirty owner being recalled, when >= 0
	line     Addr
	write    bool
	withData bool // the grant must carry line data (requester had no copy)
	acks     int  // invalidation acks outstanding
	fut      *sim.Future
	d        *dirEntry

	enterFn, runFn, recallFn, recallAckFn, ackFn, dirDoneFn, replyFn func()
	releaseFn                                                        func()
}

func (s *System) newTxn(proc int, line Addr, write bool, fut *sim.Future) *txn {
	var t *txn
	if k := len(s.txnPool); k > 0 {
		t = s.txnPool[k-1]
		s.txnPool[k-1] = nil
		s.txnPool = s.txnPool[:k-1]
	} else {
		t = &txn{s: s}
		t.enterFn = t.enter
		t.runFn = t.run
		t.recallFn = t.recall
		t.recallAckFn = t.recallAck
		t.ackFn = t.ack
		t.dirDoneFn = t.dirDone
		t.replyFn = t.reply
		t.releaseFn = t.releaseLine
	}
	t.proc, t.home, t.line, t.write, t.fut = proc, HomeOf(line), line, write, fut
	t.owner, t.withData, t.acks, t.d = -1, false, 0, nil
	return t
}

// fetch obtains line for proc — shared for reads, exclusive (invalidating
// other copies) for writes — and completes fut with the transaction's
// release callback. The requester invokes it after installing the line;
// completing earlier would let a queued request invalidate a copy that
// has not arrived yet (two-owners race).
func (s *System) fetch(proc int, line Addr, write bool, fut *sim.Future) {
	t := s.newTxn(proc, line, write, fut)
	s.send(proc, t.home, 0, t.enterFn)
}

// enter runs at the home: serialize on the line's directory entry.
func (t *txn) enter() {
	t.d = t.s.dir(t.line)
	if t.d.busy {
		t.d.pending = append(t.d.pending, t.runFn)
		return
	}
	t.run()
}

// run starts the directory transaction proper.
func (t *txn) run() {
	s, d := t.s, t.d
	d.busy = true
	if d.owner >= 0 && d.owner != t.proc {
		// Recall the dirty copy: home -> owner; the owner replies with
		// data and the directory work proceeds on its return.
		t.owner = d.owner
		s.send(t.home, t.owner, 0, t.recallFn)
		return
	}
	if !t.write {
		d.owner = -1
		s.dirWork(t.home, d, s.p.DirCycles+s.p.MemCycles, t.dirDoneFn)
		return
	}
	_, wasSharer := d.sharers[t.proc]
	t.withData = !wasSharer
	var others []int
	for q := range d.sharers {
		if q != t.proc {
			others = append(others, q)
		}
	}
	if len(others) == 0 {
		s.dirWork(t.home, d, s.p.DirCycles+s.p.MemCycles, t.dirDoneFn)
		return
	}
	sort.Ints(others) // keep event order independent of map iteration
	t.acks = len(others)
	// Invalidate every other sharer; collect acks.
	for _, q := range others {
		q := q
		s.send(t.home, q, 0, func() {
			s.caches[q].drop(t.line)
			s.col.Invalidations++
			s.modInval[t.home]++
			s.send(q, t.home, 0, t.ackFn)
		})
	}
}

// recall runs at the dirty owner: downgrade (read) or invalidate (write)
// its copy, then return the data to the home.
func (t *txn) recall() {
	s := t.s
	if t.write {
		s.caches[t.owner].drop(t.line)
		s.col.Invalidations++
		s.modInval[t.home]++
	} else if s.caches[t.owner].drop(t.line) == modified {
		s.caches[t.owner].install(t.line, shared)
	}
	s.send(t.owner, t.home, LineWords, t.recallAckFn)
}

// recallAck runs at the home with the owner's data in hand.
func (t *txn) recallAck() {
	s, d := t.s, t.d
	if t.write {
		t.withData = true
		s.dirWork(t.home, d, s.p.DirCycles, t.dirDoneFn)
		return
	}
	d.owner = -1
	d.sharers[t.owner] = struct{}{}
	s.dirWork(t.home, d, s.p.DirCycles+s.p.MemCycles, t.dirDoneFn)
}

// ack counts one invalidation acknowledgement.
func (t *txn) ack() {
	t.acks--
	if t.acks == 0 {
		t.s.dirWork(t.home, t.d, t.s.p.DirCycles, t.dirDoneFn)
	}
}

// dirDone runs once the directory + memory work has been charged: update
// the entry and send the grant/data reply to the requester.
func (t *txn) dirDone() {
	s, d := t.s, t.d
	if t.write {
		clear(d.sharers)
		d.owner = t.proc
		words := uint64(0)
		if t.withData {
			words = LineWords
		}
		s.send(t.home, t.proc, words, t.replyFn)
		return
	}
	d.sharers[t.proc] = struct{}{}
	s.send(t.home, t.proc, LineWords, t.replyFn)
}

// reply runs at the requester when the data arrives.
func (t *txn) reply() {
	t.fut.Complete(t.releaseFn)
}

// releaseLine is the value the future resolves to: the requester invokes
// it after installing the line, which closes the transaction, reopens the
// directory entry (running the next queued request), and recycles the
// object.
func (t *txn) releaseLine() {
	s, d := t.s, t.d
	d.busy = false
	if len(d.pending) > 0 {
		next := d.pending[0]
		copy(d.pending, d.pending[1:])
		d.pending = d.pending[:len(d.pending)-1]
		s.eng.Schedule(0, next)
	}
	t.fut, t.d = nil, nil
	s.txnPool = append(s.txnPool, t)
}

// writeback retires a dirty evicted line to its home (fire-and-forget).
// By the time it is processed the directory may have moved on (a recall
// raced ahead), so it degrades to a replacement hint in that case.
func (s *System) writeback(proc int, line Addr) {
	home := HomeOf(line)
	s.send(proc, home, LineWords, func() {
		s.withLine(line, func(d *dirEntry, release func()) {
			if d.owner == proc {
				d.owner = -1
			}
			delete(d.sharers, proc)
			s.modules[home].ExecAsync(s.p.DirCycles+s.p.MemCycles, func() {
				// The writeback may have returned the line to
				// uncached-everywhere. If no transaction is queued behind
				// this one the entry is dead weight: a later access
				// recreates an identical empty entry, so reclaiming it
				// here keeps long-running directories bounded by the
				// *live* working set instead of every line ever touched.
				// (Silent shared evictions leave stale sharer bits, so
				// only the writeback path can observe emptiness.)
				if d.owner == -1 && len(d.sharers) == 0 && len(d.pending) == 0 {
					delete(s.dirs[home], line)
				}
				release()
			})
		})
	})
}

// DirEntries returns how many lines homed on the given processor have
// directory state (useful in tests and reports).
func (s *System) DirEntries(home int) int { return len(s.dirs[home]) }
