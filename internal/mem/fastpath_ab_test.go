package mem

import (
	"testing"

	"compmig/internal/sim"
)

// abWorkload drives a mixed access pattern designed to exercise every
// protocol corner: repeated hits, home-local misses, remote misses,
// write invalidations of multi-proc sharer sets, dirty recalls, and
// capacity evictions with writebacks (via a working set larger than the
// tiny cache below).
func abWorkload(r *rig, nprocs int) {
	const objs = 96
	addrs := make([]Addr, objs)
	for i := range addrs {
		addrs[i] = r.shm.Alloc(i%nprocs, 8)
	}
	phase := sim.NewBarrier(nprocs)
	for p := 0; p < nprocs; p++ {
		p := p
		r.eng.Spawn("worker", 0, func(th *sim.Thread) {
			// Round 1: everyone reads everything (shared replication,
			// capacity evictions in the small cache).
			for _, a := range addrs {
				r.shm.Read(th, p, a, 8)
			}
			phase.Arrive(th)
			// Round 2: strided writes (invalidations, dirty lines).
			for i := p; i < objs; i += nprocs {
				r.shm.Write(th, p, addrs[i], 8)
			}
			phase.Arrive(th)
			// Round 3: re-read own home lines (local misses after the
			// remote writes, then hits) and RMW a shared counter.
			for i := p; i < objs; i += nprocs {
				r.shm.Read(th, p, addrs[i%nprocs], 8)
			}
			r.shm.RMW(th, p, addrs[0])
			phase.Arrive(th)
		})
	}
}

// abRun executes the workload with the fast paths set as given and
// returns the rig for inspection.
func abRun(t *testing.T, fast bool) *rig {
	t.Helper()
	SetFastPath(fast)
	t.Cleanup(func() { SetFastPath(true) })
	p := DefaultParams()
	p.CacheBytes = 1 << 10 // force capacity evictions
	r := newRig(4, p)
	abWorkload(r, 4)
	if err := r.eng.Run(); err != nil {
		t.Fatalf("fastpath=%v: %v", fast, err)
	}
	// Solo phase: with every other thread done the event heap is quiet,
	// which is the regime where the inline paths can actually commit —
	// fresh home-local lines miss inline, re-reads hit inline.
	solo := make([]Addr, 8)
	for i := range solo {
		solo[i] = r.shm.Alloc(0, 8)
	}
	r.eng.Spawn("solo", 0, func(th *sim.Thread) {
		for _, a := range solo {
			r.shm.Read(th, 0, a, 8)
			r.shm.Read(th, 0, a, 8)
			r.shm.Write(th, 0, a, 8)
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("fastpath=%v solo: %v", fast, err)
	}
	return r
}

// TestFastPathCollectorIdentity is the substrate-level half of the A/B
// identity contract: every simulated metric — the clock included — must
// be identical whether accesses take the inline fast paths or the
// event-driven protocol.
func TestFastPathCollectorIdentity(t *testing.T) {
	on := abRun(t, true)
	off := abRun(t, false)

	if got, want := on.eng.Now(), off.eng.Now(); got != want {
		t.Errorf("simulated end time: fastpath=%d, slowpath=%d", got, want)
	}
	type metric struct {
		name    string
		on, off uint64
	}
	metrics := []metric{
		{"cycles", on.col.TotalCycles(), off.col.TotalCycles()},
		{"words sent", on.col.WordsSent, off.col.WordsSent},
		{"cache hits", on.col.CacheHits, off.col.CacheHits},
		{"cache misses", on.col.CacheMisses, off.col.CacheMisses},
		{"invalidations", on.col.Invalidations, off.col.Invalidations},
		{"protocol msgs", on.col.ProtocolMsgs, off.col.ProtocolMsgs},
	}
	for _, m := range metrics {
		if m.on != m.off {
			t.Errorf("%s: fastpath=%d, slowpath=%d", m.name, m.on, m.off)
		}
	}
	for home := 0; home < 4; home++ {
		if got, want := on.shm.DirEntries(home), off.shm.DirEntries(home); got != want {
			t.Errorf("dir entries at home %d: fastpath=%d, slowpath=%d", home, got, want)
		}
	}

	// The A/B must actually have exercised both regimes.
	fastHits, fastLocal, _ := on.shm.FastPathCounts()
	if fastHits == 0 {
		t.Error("fastpath run never took the inline hit path")
	}
	if fastLocal == 0 {
		t.Error("fastpath run never took the inline local-miss path")
	}
	offHits, offLocal, _ := off.shm.FastPathCounts()
	if offHits != 0 || offLocal != 0 {
		t.Errorf("disabled run took fast paths: hits=%d local=%d", offHits, offLocal)
	}
}

// TestDirEntriesBoundedUnderCycling is the directory-reclamation
// contract: a working set cycled through a small cache forces endless
// dirty evictions, and each writeback that leaves a line uncached
// everywhere must delete its directory entry — the table must stay
// bounded by the set of lines that can actually be cached or in flight,
// not grow with every line ever touched.
func TestDirEntriesBoundedUnderCycling(t *testing.T) {
	p := DefaultParams()
	p.CacheBytes = 1 << 10 // 64 lines
	r := newRig(2, p)

	const objs = 512 // working set 8x the cache
	addrs := make([]Addr, objs)
	for i := range addrs {
		addrs[i] = r.shm.Alloc(0, 8)
	}
	r.eng.Spawn("cycler", 0, func(th *sim.Thread) {
		for round := 0; round < 4; round++ {
			for _, a := range addrs {
				r.shm.Write(th, 1, a, 8) // dirty every line: evictions write back
			}
		}
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := r.shm.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	// Everything is homed at 0; proc 1's cache holds at most 64 lines,
	// so with reclamation the directory cannot hold many more than that.
	cacheLines := p.CacheBytes / int(LineBytes)
	if got := r.shm.DirEntries(0); got > 2*cacheLines {
		t.Errorf("dir entries = %d after cycling %d lines, want bounded near cache capacity %d",
			got, objs, cacheLines)
	}
}
