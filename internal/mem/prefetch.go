package mem

import (
	"compmig/internal/sim"
)

// Prefetching — §2.5's latency-hiding factor for data migration:
// "Prefetching will lower the relative cost of performing data
// migration, since the delays involved with data migration can be
// overlapped with computation."
//
// Prefetch issues non-blocking shared fetches; an in-flight table (the
// hardware's MSHRs) ensures a demand Read that arrives while the line is
// already on its way joins the pending fetch instead of duplicating it.

// Prefetch starts fetching every line of [addr, addr+size) for proc in
// shared state without blocking. Lines already cached or already in
// flight are skipped.
func (s *System) Prefetch(proc int, addr Addr, size uint64) {
	if size == 0 {
		return
	}
	first := lineOf(addr)
	last := lineOf(addr + Addr(size) - 1)
	for line := first; ; line += LineBytes {
		s.prefetchLine(proc, line)
		if line == last {
			break
		}
	}
}

func (s *System) prefetchLine(proc int, line Addr) {
	c := s.caches[proc]
	if c.lookup(line) != nil {
		return
	}
	if s.inflight[proc] == nil {
		s.inflight[proc] = make(map[Addr]*sim.Future)
	}
	if _, pending := s.inflight[proc][line]; pending {
		return
	}
	s.col.Prefetches++
	fut := &sim.Future{}
	s.inflight[proc][line] = fut
	s.fetch(proc, line, false, fut)
	// Install on arrival without a waiting thread: the cache controller
	// does it in the background.
	s.eng.Schedule(0, func() { s.awaitPrefetch(proc, line, fut) })
}

// awaitPrefetch installs a prefetched line when its data arrives. It
// runs as a tiny helper thread standing in for the cache controller's
// fill logic.
func (s *System) awaitPrefetch(proc int, line Addr, fut *sim.Future) {
	s.eng.Spawn("prefetch-fill", 0, func(th *sim.Thread) {
		release := fut.Wait(th).(func())
		victim, vstate := s.caches[proc].install(line, shared)
		release()
		delete(s.inflight[proc], line)
		if vstate == modified {
			s.writeback(proc, victim)
		}
	})
}

// joinInflight lets a demand read wait on a pending prefetch of the same
// line instead of issuing a duplicate fetch. It reports whether it
// joined (and therefore waited).
func (s *System) joinInflight(th *sim.Thread, proc int, line Addr) bool {
	m := s.inflight[proc]
	if m == nil {
		return false
	}
	fut, ok := m[line]
	if !ok {
		return false
	}
	s.col.PrefetchJoins++
	// Wait for the fill; the prefetch helper installs the line. waiting
	// on a completed future returns immediately.
	fut.Wait(th)
	return true
}
