// Ablation benchmarks for the design choices DESIGN.md calls out — these
// go beyond the paper's published results, probing the knobs its §4.3
// and §6 discuss: an Active-Messages runtime, the short-method fast
// path, network topology, cache geometry, the LimitLESS directory, and
// frame- vs thread-granularity migration.
package compmig

import (
	"testing"

	"compmig/internal/apps/btree"
	"compmig/internal/apps/countnet"
	"compmig/internal/core"
	"compmig/internal/cost"
	"compmig/internal/mem"
)

// BenchmarkAblationActiveMessages measures §6's proposed Active-Messages
// runtime rewrite: migration receive paths stop creating handler
// threads, which the paper predicts "could lead to far better
// performance".
func BenchmarkAblationActiveMessages(b *testing.B) {
	for _, am := range []bool{false, true} {
		name := "threaded"
		if am {
			name = "active-messages"
		}
		b.Run(name, func(b *testing.B) {
			cfg := countnetConfig(core.Scheme{Mechanism: core.Migrate}, 32, 0)
			if am {
				m := cost.Software().WithActiveMessages()
				cfg.Model = &m
			}
			var r countnet.Result
			for i := 0; i < b.N; i++ {
				r = countnet.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "req/1000cyc")
		})
	}
}

// BenchmarkAblationTopology compares the paper's flat-latency crossbar
// against a 2D mesh with per-hop latency.
func BenchmarkAblationTopology(b *testing.B) {
	for _, mesh := range []bool{false, true} {
		name := "crossbar"
		if mesh {
			name = "mesh"
		}
		b.Run(name, func(b *testing.B) {
			cfg := btreeConfig(core.Scheme{Mechanism: core.Migrate}, 0)
			cfg.Mesh = mesh
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
		})
	}
}

// BenchmarkAblationCacheGeometry probes the shared-memory substrate's
// sensitivity to cache size and associativity (the paper fixed 64K
// direct-mapped).
func BenchmarkAblationCacheGeometry(b *testing.B) {
	geometries := []struct {
		name  string
		bytes int
		ways  int
	}{
		{"16K-direct", 16 << 10, 1},
		{"64K-direct", 64 << 10, 1},
		{"64K-4way", 64 << 10, 4},
		{"256K-direct", 256 << 10, 1},
	}
	for _, g := range geometries {
		b.Run(g.name, func(b *testing.B) {
			p := mem.DefaultParams()
			p.CacheBytes = g.bytes
			p.Ways = g.ways
			cfg := btreeConfig(core.Scheme{Mechanism: core.SharedMem}, 0)
			cfg.MemParams = &p
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
			b.ReportMetric(r.HitRate*100, "hit%")
		})
	}
}

// BenchmarkAblationLimitless compares a full-map hardware directory with
// Alewife's LimitLESS software-extended directory on the B-tree, whose
// upper levels are widely read-shared.
func BenchmarkAblationLimitless(b *testing.B) {
	for _, pointers := range []int{0, 5} {
		name := "full-map"
		if pointers > 0 {
			name = "limitless-5ptr"
		}
		b.Run(name, func(b *testing.B) {
			p := mem.DefaultParams()
			p.DirPointers = pointers
			cfg := btreeConfig(core.Scheme{Mechanism: core.SharedMem}, 0)
			cfg.MemParams = &p
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
		})
	}
}

// BenchmarkAblationShortMethods measures the active-message fast path
// for short methods that §4.4 says RPC already benefits from: disabling
// it (thread creation on every call) shows what RPC would cost without
// Prelude's optimization.
func BenchmarkAblationShortMethods(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "fastpath"
		if disabled {
			name = "always-thread"
		}
		b.Run(name, func(b *testing.B) {
			cfg := countnetConfig(core.Scheme{Mechanism: core.RPC}, 32, 0)
			if disabled {
				// A model where short methods save nothing.
				m := cost.Software()
				cfg.Model = &m
				// Short methods skip ThreadCreation in the runtime; to
				// neutralize the saving, make it free for everyone —
				// then add it back as scheduler cost for all messages.
				m.Scheduler += m.ThreadCreation
				m.ThreadCreation = 0
				cfg.Model = &m
			}
			var r countnet.Result
			for i := 0; i < b.N; i++ {
				r = countnet.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "req/1000cyc")
		})
	}
}

// BenchmarkAblationMigrationGranularity compares migrating a single
// small activation frame against shipping the whole thread (§2.3: "the
// grain of migration is too coarse"), across thread-state sizes.
func BenchmarkAblationMigrationGranularity(b *testing.B) {
	for _, stackWords := range []uint64{0, 128, 1024} {
		name := "frame-only"
		if stackWords > 0 {
			name = "thread-" + itoa(stackWords*4) + "B"
		}
		b.Run(name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				cycles = migrationChainCycles(stackWords)
			}
			b.ReportMetric(cycles, "cycles/chain")
		})
	}
}

// BenchmarkAblationPrefetch measures §2.5's prefetching factor for data
// migration: overlapping a node's key-array fetches with the descent
// lifts SM throughput at the cost of extra speculative bandwidth.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, pf := range []bool{false, true} {
		name := "demand"
		if pf {
			name = "prefetch"
		}
		b.Run(name, func(b *testing.B) {
			cfg := btreeConfig(core.Scheme{Mechanism: core.SharedMem}, 0)
			cfg.SMPrefetch = pf
			var r btree.Result
			for i := 0; i < b.N; i++ {
				r = btree.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "ops/1000cyc")
			b.ReportMetric(r.Bandwidth, "words/10cyc")
		})
	}
}

// BenchmarkAblationMultithreading restores the Alewife capability the
// paper's machine omitted: several requester threads per processor hide
// miss and reply latency behind each other's computation.
func BenchmarkAblationMultithreading(b *testing.B) {
	// Hold the requester-processor count at 8 and stack more threads on
	// each; the win is latency hiding, the limit is the shared CPU.
	for _, per := range []int{1, 2, 4} {
		b.Run("threads-per-proc-"+itoa(uint64(per)), func(b *testing.B) {
			cfg := countnetConfig(core.Scheme{Mechanism: core.SharedMem}, 8*per, 0)
			cfg.ThreadsPerProc = per
			var r countnet.Result
			for i := 0; i < b.N; i++ {
				r = countnet.RunExperiment(cfg)
			}
			b.ReportMetric(r.Throughput, "req/1000cyc")
		})
	}
}

// BenchmarkAblationSkew probes workload skew: when most operations hit a
// small slice of the key space, shared memory caches the hot leaves
// while computation migration funnels activations onto their home
// processors — contention §2.5 flags as "likely to be a very important
// factor in determining the best mechanism".
func BenchmarkAblationSkew(b *testing.B) {
	for _, hot := range []bool{false, true} {
		name := "uniform"
		if hot {
			name = "hot-90-10"
		}
		for _, s := range []core.Scheme{
			{Mechanism: core.Migrate, Replication: true},
			{Mechanism: core.SharedMem},
		} {
			b.Run(name+"/"+s.Name(), func(b *testing.B) {
				cfg := btreeConfig(s, 0)
				if hot {
					cfg.HotOpFrac = 0.9
					cfg.HotKeyFrac = 0.1
				}
				var r btree.Result
				for i := 0; i < b.N; i++ {
					r = btree.RunExperiment(cfg)
				}
				b.ReportMetric(r.Throughput, "ops/1000cyc")
			})
		}
	}
}
