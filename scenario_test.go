package compmig

import (
	"compmig/internal/core"
	"compmig/internal/gid"
	"compmig/internal/msg"
	"compmig/internal/network"
	"compmig/internal/sim"
	"compmig/internal/stats"
)

// chainCell and chainCont build a minimal pointer-chase scenario used by
// the migration-granularity ablation: visit m objects on m processors.
type chainCell struct{ visits int }

type chainCont struct {
	id    core.ContID
	idx   uint32
	cells []gid.GID
	// stackWords > 0 makes every hop a whole-thread migration.
	stackWords uint64
}

func (c *chainCont) MarshalWords(w *msg.Writer) {
	w.PutU32(c.idx)
	w.PutU64(c.stackWords)
	w.PutU32(uint32(len(c.cells)))
	for _, g := range c.cells {
		w.PutU64(uint64(g))
	}
}

func (c *chainCont) UnmarshalWords(r *msg.Reader) error {
	c.idx = r.U32()
	c.stackWords = r.U64()
	c.cells = make([]gid.GID, int(r.U32()))
	for i := range c.cells {
		c.cells[i] = gid.GID(r.U64())
	}
	return r.Err()
}

type chainDone struct{}

func (chainDone) MarshalWords(w *msg.Writer)          { w.PutU32(1) }
func (*chainDone) UnmarshalWords(r *msg.Reader) error { r.U32(); return r.Err() }

func (c *chainCont) Run(t *core.Task) {
	for int(c.idx) < len(c.cells) {
		g := c.cells[c.idx]
		if !t.IsLocal(g) {
			if c.stackWords > 0 {
				t.MigrateThread(g, c.id, c, c.stackWords)
			} else {
				t.Migrate(g, c.id, c)
			}
			return
		}
		t.State(g).(*chainCell).visits++
		t.Work(50)
		c.idx++
	}
	t.Return(chainDone{})
}

// migrationChainCycles runs an 8-hop chain and returns the simulated
// cycles the whole operation took.
func migrationChainCycles(stackWords uint64) float64 {
	const m = 8
	eng := sim.NewEngine(3)
	mach := sim.NewMachine(eng, m+1)
	col := stats.NewCollector()
	model := core.Scheme{Mechanism: core.Migrate}.Model()
	net := network.New(eng, network.Crossbar{}, col, model.NetTransitBase, model.NetTransitPerHop)
	rt := core.New(eng, mach, net, col, model)

	var env chainCont
	env.id = rt.RegisterCont("chain", func() core.Continuation { return &chainCont{id: env.id} })
	var cells []gid.GID
	for p := 1; p <= m; p++ {
		cells = append(cells, rt.Objects.New(p, &chainCell{}))
	}

	var elapsed sim.Time
	eng.Spawn("walker", 0, func(th *sim.Thread) {
		task := rt.NewTask(th, 0)
		start := th.Now()
		var done chainDone
		if err := task.Do(&chainCont{id: env.id, cells: cells, stackWords: stackWords}, &done); err != nil {
			panic(err)
		}
		elapsed = th.Now() - start
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(elapsed)
}
