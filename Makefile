# make check is the CI gate: vet, build, tests, the race detector (the
# harness worker pool is real host-side concurrency), the fast-path and
# policy A/B identity tests, a short fuzz pass over the wire codec, a
# quick parallel smoke run of the full evaluation suite, and a benchdiff
# smoke against the committed baseline report.

GO ?= go

# Committed full-scale benchmark reports, oldest first; benchdiff-smoke
# compares the two most recent.
BENCH_BASELINE := BENCH_2026-08-06-fastpath.json
BENCH_CURRENT  := BENCH_2026-08-06-policy.json

.PHONY: check vet build test race ab-identity fuzz-smoke smoke benchdiff-smoke bench-gate bench bench-json

check: vet build test race ab-identity fuzz-smoke smoke benchdiff-smoke
	@echo "check: all green"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ab-identity re-runs just the fast-path A/B contracts by name so a CI
# log shows them explicitly: every rendered table and every simulated
# metric must be identical with the inline fast paths on and off.
ab-identity:
	$(GO) test ./internal/harness/ -run TestFastPathABIdentity -count=1
	$(GO) test ./internal/mem/ -run TestFastPathCollectorIdentity -count=1
	$(GO) test ./internal/harness/ -run TestPolicyStaticABIdentity -count=1
	@echo "ab-identity: fast paths and static policies are observationally equivalent"

# fuzz-smoke runs each msg codec fuzz target briefly over the committed
# seed corpus (internal/msg/testdata/fuzz) plus fresh mutations; a
# decoding panic or round-trip mismatch fails the build.
fuzz-smoke:
	$(GO) test ./internal/msg/ -run '^$$' -fuzz FuzzReaderNeverPanics -fuzztime 5s
	$(GO) test ./internal/msg/ -run '^$$' -fuzz FuzzWriterReaderRoundTrip -fuzztime 5s
	@echo "fuzz-smoke: msg codec survived fuzzing"

smoke:
	$(GO) run ./cmd/paperfigs -exp all -quick -workers 4 > /dev/null
	@echo "smoke: paperfigs -exp all -quick -workers 4 ok"

# benchdiff-smoke exercises the diff tool against the committed reports.
# No -threshold: recorded wall clocks are from different commits of the
# simulator, so this gates only on the tool and report format working.
benchdiff-smoke:
	$(GO) run ./cmd/benchdiff $(BENCH_BASELINE) $(BENCH_CURRENT) > /dev/null
	@echo "benchdiff-smoke: $(BENCH_BASELINE) vs $(BENCH_CURRENT) ok"

# bench-gate regenerates a full-scale report from the working tree and
# gates it against the committed $(BENCH_CURRENT) with a wall-clock
# regression threshold. Both reports must come from the same machine for
# the threshold to mean anything, so this is the perf-work loop (run it
# after regenerating $(BENCH_CURRENT) on your machine), not part of
# check — cross-commit reports are compared ungated by benchdiff-smoke.
bench-gate:
	$(GO) run ./cmd/paperfigs -exp all -workers 4 -bench-json BENCH_gate.json
	$(GO) run ./cmd/benchdiff -threshold 25 $(BENCH_CURRENT) BENCH_gate.json
	@rm -f BENCH_gate.json
	@echo "bench-gate: no experiment regressed more than 25% vs $(BENCH_CURRENT)"

# bench regenerates the suite benchmarks (quick scale) with allocation
# statistics; see BENCH_*.json for recorded full-scale runs.
bench:
	$(GO) test -bench BenchmarkSuite -benchmem -run '^$$' .

# bench-json regenerates a full-scale benchmark report; rename and
# commit it alongside the existing BENCH_*.json files, then point
# BENCH_CURRENT at it.
bench-json:
	$(GO) run ./cmd/paperfigs -exp all -workers 4 -bench-json BENCH_new.json
