# make check is the CI gate: vet, build, tests, the race detector (the
# harness worker pool is real host-side concurrency), the fast-path,
# policy, and fault A/B identity tests, a short fuzz pass over the wire
# codec and the fault-plan parser, a quick parallel smoke run of the
# full evaluation suite, a faulty smoke run with invariant checking, a
# crash-recovery smoke run (WAL/checkpoint durability under wipe
# faults), and a benchdiff smoke against the committed baseline report.

GO ?= go

# Committed full-scale benchmark reports, oldest first; benchdiff-smoke
# compares the two most recent. BENCH_SHARDS is the sharded-engine
# report (shards=1 vs shards=N entries, carrying per-shard
# synchronization counters); it matches no serial report's keys, so it
# is smoked separately.
BENCH_BASELINE := BENCH_2026-08-06-policy.json
BENCH_CURRENT  := BENCH_2026-08-06-fault.json
BENCH_SHARDS   := BENCH_2026-08-08-shards.json
BENCH_RECOVERY := BENCH_2026-08-08-recovery.json

.PHONY: check lint vet simvet build test race ab-identity shard-identity fuzz-smoke smoke kv-smoke fault-smoke recovery-smoke benchdiff-smoke bench-gate bench bench-json

check: lint build test race ab-identity shard-identity fuzz-smoke smoke kv-smoke fault-smoke recovery-smoke benchdiff-smoke
	@echo "check: all green"

# lint is go vet plus simvet, the repo's own determinism/purity analyzer
# suite (cmd/simvet): nondeterministic inputs, map-order leaks, host-side
# purity, seeded randomness, and cost-model charging are all build
# failures, not conventions. simvet -json emits machine-readable findings.
lint: vet simvet

vet:
	$(GO) vet ./...

simvet:
	$(GO) run ./cmd/simvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ab-identity re-runs just the fast-path A/B contracts by name so a CI
# log shows them explicitly: every rendered table and every simulated
# metric must be identical with the inline fast paths on and off.
ab-identity:
	$(GO) test ./internal/harness/ -run TestFastPathABIdentity -count=1
	$(GO) test ./internal/mem/ -run TestFastPathCollectorIdentity -count=1
	$(GO) test ./internal/harness/ -run TestPolicyStaticABIdentity -count=1
	$(GO) test ./internal/harness/ -run TestFaultZeroSpecIsByteIdentical -count=1
	@echo "ab-identity: fast paths, static policies, and zero fault plans are observationally equivalent"

# shard-identity pins the sharded event engine's determinism contract:
# clustered runs render byte-identical output at every shard count (the
# engine-level synthetic workload, the countnet application, and the
# harness-rendered tables), and the parallel lane drivers are race-clean.
shard-identity:
	$(GO) test ./internal/sim/ -run 'Cluster|CrossSend' -count=1
	$(GO) test ./internal/apps/countnet/ -run TestCluster -count=1
	$(GO) test ./internal/harness/ -run 'TestShardCountIdentity|TestShardScaleIdentity' -count=1
	GOMAXPROCS=4 $(GO) test -race ./internal/sim/ ./internal/apps/countnet/ -run 'Cluster|Shard' -count=1
	@echo "shard-identity: rendered output is byte-identical at every shard count"

# fuzz-smoke runs the msg codec and fault-plan parser fuzz targets
# briefly over their seed corpora plus fresh mutations; a decoding
# panic or round-trip mismatch fails the build.
fuzz-smoke:
	$(GO) test ./internal/msg/ -run '^$$' -fuzz FuzzReaderNeverPanics -fuzztime 5s
	$(GO) test ./internal/msg/ -run '^$$' -fuzz FuzzWriterReaderRoundTrip -fuzztime 5s
	$(GO) test ./internal/fault/ -run '^$$' -fuzz FuzzParseSpec -fuzztime 5s
	@echo "fuzz-smoke: msg codec and fault-plan parser survived fuzzing"

smoke:
	$(GO) run ./cmd/paperfigs -exp all -quick -workers 4 > /dev/null
	@echo "smoke: paperfigs -exp all -quick -workers 4 ok"

# kv-smoke drives the KV/session store end to end: the ext-kv sweep
# (skew x heterogeneity x policy, invariant checkers run inside every
# cell and its renderer panics on a violation), the worker-count
# byte-identity and mechanism-crossover tests, and one CLI run per
# scheme — each exits nonzero if read-your-writes or no-lost-updates is
# violated.
kv-smoke:
	$(GO) run ./cmd/paperfigs -exp ext-kv -quick -workers 4 > /dev/null
	$(GO) test ./internal/harness/ -run 'TestKVWorkerIdentity|TestKVCrossover' -count=1
	$(GO) run ./cmd/kv -scheme rpc -workload 'keys=128,ops=500,period=300,zipf=0.9,mix=60:35:5' > /dev/null
	$(GO) run ./cmd/kv -scheme cm -hetero gradient:1:4 -workload 'keys=128,ops=500,period=300' > /dev/null
	$(GO) run ./cmd/kv -scheme sm -hetero bimodal:4:0.5 -faults 'drop=0.02,seed=5' > /dev/null
	@echo "kv-smoke: store invariants held across schemes, heterogeneity, and faults"

# fault-smoke drives both applications through a faulty run end to end:
# the ext-fault sweep (invariant checkers run inside, and the harness
# test asserts every cell is "ok"), plus one CLI run per app under a
# plan with drop, duplication, jitter, and a mid-run crash window — a
# nonzero exit means an invariant was violated or a run hung.
fault-smoke:
	$(GO) run ./cmd/paperfigs -exp ext-fault -quick -workers 4 > /dev/null
	$(GO) test ./internal/harness/ -run TestFaultSweepInvariantsHold -count=1
	$(GO) run ./cmd/countnet -scheme cm -faults 'drop=0.03,dup=0.01,delay=0:40,crash=p3@30000+10000,seed=7' -measure 100000 > /dev/null
	$(GO) run ./cmd/btree -scheme rpc -faults 'drop=0.03,dup=0.01,delay=0:40,crash=p5@30000+10000,seed=7' -measure 100000 > /dev/null
	@echo "fault-smoke: both applications recovered with invariants intact"

# recovery-smoke drives the durability tentpole end to end: the
# ext-recovery sweep (mechanism x wipe count x checkpoint interval; its
# renderer panics if any point ran without the WAL or recovered the
# wrong number of wipes), the harness-level A/B identity and
# reproducibility contracts, and one CLI wipe run per application — a
# nonzero exit means an acked write was lost or replay diverged.
recovery-smoke:
	$(GO) run ./cmd/paperfigs -exp ext-recovery -quick -workers 4 > /dev/null
	$(GO) test ./internal/harness/ -run 'TestDurabilityOffIsByteIdentical|TestRecoverySweepReproducible|TestRecoverySweepInvariantsHold' -count=1
	$(GO) run ./cmd/kv -scheme cm -workload 'keys=128,ops=500,period=300' -faults 'wipe=p2@30000+8000,ckpt=20000,seed=7' > /dev/null
	$(GO) run ./cmd/countnet -scheme cm -faults 'wipe=p2@60000+8000,ckpt=20000,seed=7' -measure 100000 > /dev/null
	$(GO) run ./cmd/btree -scheme rpc -faults 'wipe=p5@30000+8000,ckpt=20000,seed=7' -measure 100000 > /dev/null
	@echo "recovery-smoke: no acked write lost across wipes; recovery traces reproducible"

# benchdiff-smoke exercises the diff tool against the committed reports.
# No -threshold: recorded wall clocks are from different commits of the
# simulator, so this gates only on the tool and report format working.
benchdiff-smoke:
	$(GO) run ./cmd/benchdiff $(BENCH_BASELINE) $(BENCH_CURRENT) > /dev/null
	$(GO) run ./cmd/benchdiff $(BENCH_SHARDS) $(BENCH_SHARDS)
	$(GO) run ./cmd/benchdiff $(BENCH_SHARDS) $(BENCH_SHARDS) | grep 'windows=' > /dev/null
	$(GO) run ./cmd/benchdiff $(BENCH_RECOVERY) $(BENCH_RECOVERY) | grep 'wal appends=' > /dev/null
	@echo "benchdiff-smoke: $(BENCH_BASELINE) vs $(BENCH_CURRENT) ok; $(BENCH_SHARDS) shard counters and $(BENCH_RECOVERY) WAL counters render"

# bench-gate regenerates a full-scale report from the working tree and
# gates it against the committed $(BENCH_CURRENT) with a wall-clock
# regression threshold. Both reports must come from the same machine for
# the threshold to mean anything, so this is the perf-work loop (run it
# after regenerating $(BENCH_CURRENT) on your machine), not part of
# check — cross-commit reports are compared ungated by benchdiff-smoke.
bench-gate:
	$(GO) run ./cmd/paperfigs -exp all -workers 4 -bench-json BENCH_gate.json
	$(GO) run ./cmd/benchdiff -threshold 25 $(BENCH_CURRENT) BENCH_gate.json
	@rm -f BENCH_gate.json
	@echo "bench-gate: no experiment regressed more than 25% vs $(BENCH_CURRENT)"

# bench regenerates the suite benchmarks (quick scale) with allocation
# statistics; see BENCH_*.json for recorded full-scale runs.
bench:
	$(GO) test -bench BenchmarkSuite -benchmem -run '^$$' .

# bench-json regenerates a full-scale benchmark report; rename and
# commit it alongside the existing BENCH_*.json files, then point
# BENCH_CURRENT at it.
bench-json:
	$(GO) run ./cmd/paperfigs -exp all -workers 4 -bench-json BENCH_new.json

# bench-json-shards regenerates the sharded-engine report: the scale
# sweep at shards=1 vs shards=8 with per-shard synchronization counters.
bench-json-shards:
	$(GO) run ./cmd/paperfigs -exp scale -shards 8 -bench-json BENCH_new-shards.json

# bench-json-recovery regenerates the durability report: the
# ext-recovery sweep, whose entries carry the WAL/checkpoint/replay
# counters benchdiff renders on detail lines.
bench-json-recovery:
	$(GO) run ./cmd/paperfigs -exp ext-recovery -bench-json BENCH_new-recovery.json
