# make check is the CI gate: vet, build, tests, the race detector (the
# harness worker pool is real host-side concurrency), the fast-path A/B
# identity test, a quick parallel smoke run of the full evaluation
# suite, and a benchdiff smoke against the committed baseline report.

GO ?= go

# Committed full-scale benchmark reports, oldest first; benchdiff-smoke
# compares the two most recent.
BENCH_BASELINE := BENCH_2026-08-06.json
BENCH_CURRENT  := BENCH_2026-08-06-fastpath.json

.PHONY: check vet build test race ab-identity smoke benchdiff-smoke bench bench-json

check: vet build test race ab-identity smoke benchdiff-smoke
	@echo "check: all green"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# ab-identity re-runs just the fast-path A/B contracts by name so a CI
# log shows them explicitly: every rendered table and every simulated
# metric must be identical with the inline fast paths on and off.
ab-identity:
	$(GO) test ./internal/harness/ -run TestFastPathABIdentity -count=1
	$(GO) test ./internal/mem/ -run TestFastPathCollectorIdentity -count=1
	@echo "ab-identity: fast paths are observationally equivalent"

smoke:
	$(GO) run ./cmd/paperfigs -exp all -quick -workers 4 > /dev/null
	@echo "smoke: paperfigs -exp all -quick -workers 4 ok"

# benchdiff-smoke exercises the diff tool against the committed reports.
# No -threshold: recorded wall clocks are from different commits of the
# simulator, so this gates only on the tool and report format working.
benchdiff-smoke:
	$(GO) run ./cmd/benchdiff $(BENCH_BASELINE) $(BENCH_CURRENT) > /dev/null
	@echo "benchdiff-smoke: $(BENCH_BASELINE) vs $(BENCH_CURRENT) ok"

# bench regenerates the suite benchmarks (quick scale) with allocation
# statistics; see BENCH_*.json for recorded full-scale runs.
bench:
	$(GO) test -bench BenchmarkSuite -benchmem -run '^$$' .

# bench-json regenerates a full-scale benchmark report; rename and
# commit it alongside the existing BENCH_*.json files, then point
# BENCH_CURRENT at it.
bench-json:
	$(GO) run ./cmd/paperfigs -exp all -workers 4 -bench-json BENCH_new.json
