# make check is the CI gate: vet, build, tests, the race detector (the
# harness worker pool is real host-side concurrency), and a quick
# parallel smoke run of the full evaluation suite.

GO ?= go

.PHONY: check vet build test race smoke bench

check: vet build test race smoke
	@echo "check: all green"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

smoke:
	$(GO) run ./cmd/paperfigs -exp all -quick -workers 4 > /dev/null
	@echo "smoke: paperfigs -exp all -quick -workers 4 ok"

# bench regenerates the suite benchmarks (quick scale) with allocation
# statistics; see BENCH_*.json for recorded full-scale runs.
bench:
	$(GO) test -bench BenchmarkSuite -benchmem -run '^$$' .
