// Package compmig is a from-scratch reproduction of "Computation
// Migration: Enhancing Locality for Distributed-Memory Parallel Systems"
// (Hsieh, Wang, Weihl; PPoPP 1993).
//
// The repository contains the paper's entire experimental stack, rebuilt
// in Go on a deterministic discrete-event simulator:
//
//   - internal/sim — the Proteus-style simulated machine: a cycle clock,
//     coroutine threads, serially-occupied processors;
//   - internal/cost — the software messaging cost model calibrated from
//     the paper's Table 5, plus its hardware-support variants;
//   - internal/mem — the data-migration substrate: Alewife-style
//     cache-coherent shared memory (64K direct-mapped caches, 16-byte
//     lines, full-map MSI directory);
//   - internal/core — the contribution: a Prelude-like object runtime
//     offering RPC and computation migration of single activation
//     frames, with conditional migration and short-circuited returns;
//   - internal/repl — software replication of hot objects (multi-version
//     memory) for the paper's "w/repl." schemes;
//   - internal/apps/countnet, internal/apps/btree — the two evaluation
//     applications;
//   - internal/harness — regenerates every table and figure of §4;
//   - cmd/paperfigs, cmd/countnet, cmd/btree, cmd/msgmodel — drivers.
//
// This root package holds no code; see README.md for a tour and
// DESIGN.md for the system inventory.
package compmig
